#!/usr/bin/env bash
# Run the six gated qdbench experiments at the pinned small scale and
# either compare against the checked-in BENCH_<exp>.json baselines
# (default) or regenerate them in place (UPDATE_BENCH=1, which folds the
# previous envelope into each file's history — the perf trajectory).
#
#   scripts/bench.sh                 # compare, exit 1 on >15% regression
#   UPDATE_BENCH=1 scripts/bench.sh  # rewrite baselines at repo root
#
# Env knobs:
#   BENCH_DIR      where fresh results land in compare mode (default: mktemp)
#   BENCH_SUMMARY  also write the markdown delta table here
#   BENCH_LABEL    free-text label stamped into each envelope
#   TOLERANCE      gate tolerance (default 0.15)
set -euo pipefail
cd "$(dirname "$0")/.."

# Pinned scale — baselines were generated with exactly these flags; the
# gate is only meaningful when compare runs match them.
ROWS=20000
QUERIES=80
SEED=42
PARALLELISM=4
EXPERIMENTS=(parscan compress agg ingest scatter rows)

if [ "${UPDATE_BENCH:-0}" = "1" ]; then
  dir=.
else
  dir="${BENCH_DIR:-$(mktemp -d)}"
  mkdir -p "$dir"
fi

for exp in "${EXPERIMENTS[@]}"; do
  echo "==== qdbench -exp $exp (rows=$ROWS queries=$QUERIES seed=$SEED p=$PARALLELISM) ===="
  go run ./cmd/qdbench -exp "$exp" -rows "$ROWS" -queries "$QUERIES" \
    -seed "$SEED" -parallelism "$PARALLELISM" -bench-dir "$dir"
done

if [ "${UPDATE_BENCH:-0}" = "1" ]; then
  echo "baselines updated in place (previous envelopes kept in history)"
  exit 0
fi

go run ./cmd/benchdiff -baseline . -new "$dir" \
  -tolerance "${TOLERANCE:-0.15}" ${BENCH_SUMMARY:+-summary "$BENCH_SUMMARY"}
