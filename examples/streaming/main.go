// Streaming example: the online half of the paper's architecture
// (Fig. 1). A qd-tree is learned offline on a historical sample; new
// records then stream through the deployed tree into per-leaf columnar
// segments on disk, while the adaptive maintainer splits overflowing
// leaves in place as the data distribution drifts (Problem 2 / Sec. 8).
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/qd"
)

func genDay(schema *qd.Schema, day int, n int, hotService int64, rng *rand.Rand) *qd.Table {
	tbl := qd.NewTable(schema, n)
	for i := 0; i < n; i++ {
		service := int64(rng.Intn(6))
		if rng.Intn(3) == 0 {
			service = hotService // drifting hot spot
		}
		tbl.AppendRow([]int64{
			int64(day),
			int64(rng.Intn(24)),
			service,
			int64(rng.Intn(1000)),
		})
	}
	return tbl
}

func main() {
	schema := qd.MustSchema([]qd.Column{
		{Name: "day", Kind: qd.Numeric, Min: 0, Max: 30},
		{Name: "hour", Kind: qd.Numeric, Min: 0, Max: 23},
		{Name: "service", Kind: qd.Categorical, Dom: 6,
			Dict: []string{"auth", "billing", "frontend", "search", "storage", "batch"}},
		{Name: "latency_ms", Kind: qd.Numeric, Min: 0, Max: 999},
	})
	// Offline: learn the tree on the first week of data.
	rng := rand.New(rand.NewSource(1))
	history := qd.NewTable(schema, 0)
	for day := 0; day < 7; day++ {
		history.Concat(genDay(schema, day, 20_000, 0, rng))
	}
	ds, err := qd.NewDataset(schema, history).WithWorkload(
		"service = 'auth' AND latency_ms >= 800",
		"service IN ('billing','frontend') AND hour >= 9 AND hour < 17",
		"latency_ms >= 950",
		"day >= 25 AND service = 'storage'",
	)
	if err != nil {
		log.Fatal(err)
	}
	queries, acs := ds.Queries, ds.ACs
	plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 5_000})
	if err != nil {
		log.Fatal(err)
	}
	tree := plan.Tree
	fmt.Printf("learned tree on %d historical rows: %d leaves\n", history.N, len(tree.Leaves()))

	// Online path 1: stream new days into per-leaf segments on disk.
	dir, err := os.MkdirTemp("", "qd-streaming-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ing, err := qd.NewIngester(tree, dir, 8_192)
	if err != nil {
		log.Fatal(err)
	}
	for day := 7; day < 10; day++ {
		if err := ing.Ingest(genDay(schema, day, 20_000, 0, rng)); err != nil {
			log.Fatal(err)
		}
	}
	if err := ing.Flush(); err != nil {
		log.Fatal(err)
	}
	segs := ing.Segments()
	fmt.Printf("streamed 3 days into %d columnar segments under %s\n", len(segs), dir)

	// Online path 2: adaptive refinement under drift. The hot spot moves
	// to 'storage'; the maintainer splits overflowing leaves in place.
	adaptive, err := qd.NewAdaptive(tree, history, acs, queries, 5_000, 3)
	if err != nil {
		log.Fatal(err)
	}
	leavesBefore := len(tree.Leaves())
	for day := 10; day < 20; day++ {
		if err := adaptive.InsertBatch(genDay(schema, day, 20_000, 4, rng)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after 10 drifted days: %d -> %d leaves (%d in-place splits), %d rows total\n",
		leavesBefore, len(tree.Leaves()), adaptive.Splits(), adaptive.Rows())
	layout := adaptive.Layout("adaptive")
	fmt.Printf("refined layout accesses %.2f%% of tuples for the workload\n",
		layout.AccessedFraction(queries)*100)
}
