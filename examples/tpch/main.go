// TPC-H example: the paper's primary benchmark scenario (Sec. 7.4).
// Generates a denormalized TPC-H-style fact table with the 15 filter
// templates, compares the random, Bottom-Up, greedy, and Woodblock
// planners from the strategy registry, then materializes the best plan to
// disk and executes the workload through an Engine.
//
//	go run ./examples/tpch [-rows 100000] [-episodes 32]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/workload"
	"repro/qd"
)

func main() {
	rows := flag.Int("rows", 100_000, "fact table rows")
	episodes := flag.Int("episodes", 32, "Woodblock episodes")
	flag.Parse()

	spec := workload.TPCH(workload.TPCHConfig{Rows: *rows, Seed: 7})
	ds := qd.NewDataset(spec.Table.Schema, spec.Table).WithQueries(spec.Queries, spec.ACs)
	b := *rows / 770 // the paper's b=100K over 77M rows, rescaled
	if b < 32 {
		b = 32
	}
	fmt.Printf("TPC-H style: %d rows x %d cols, %d queries, b=%d\n",
		ds.Table.N, ds.Schema.NumCols(), len(ds.Queries), b)

	// Plan with every strategy of interest via the registry.
	plans := map[string]*qd.Plan{}
	for name, opt := range map[string]qd.PlanOptions{
		"greedy":    {MinBlockSize: b},
		"bottomup":  {MinBlockSize: b, SelectivityCap: 0.10},
		"woodblock": {MinBlockSize: b, Seed: 7, Hidden: 64, MaxEpisodes: *episodes},
	} {
		planner, err := qd.NewPlanner(name)
		if err != nil {
			log.Fatal(err)
		}
		if plans[name], err = planner.Plan(ds, opt); err != nil {
			log.Fatal(err)
		}
	}
	// Random baseline with a comparable number of blocks.
	random, err := qd.RandomPlanner{}.Plan(ds, qd.PlanOptions{
		NumBlocks: plans["greedy"].Layout.NumBlocks(), Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nLogical access percentage (Table 2 metric, lower is better):")
	fmt.Printf("  random:    %6.2f%%\n", random.AccessedFraction(nil)*100)
	fmt.Printf("  BU+:       %6.2f%%\n", plans["bottomup"].AccessedFraction(nil)*100)
	fmt.Printf("  greedy:    %6.2f%%\n", plans["greedy"].AccessedFraction(nil)*100)
	fmt.Printf("  woodblock: %6.2f%%\n", plans["woodblock"].AccessedFraction(nil)*100)
	fmt.Printf("  lower bnd: %6.2f%% (true selectivity)\n", ds.Selectivity()*100)

	// Pick the better qd-tree plan and serve the workload through it.
	best := plans["greedy"]
	if plans["woodblock"].AccessedFraction(nil) < best.AccessedFraction(nil) {
		best = plans["woodblock"]
	}
	dir, err := os.MkdirTemp("", "tpch-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := qd.WriteStore(dir, ds.Table, best.Layout)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := qd.NewEngine(store, best, qd.EngineSpark, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	routed, err := eng.Workload(ds.Queries)
	if err != nil {
		log.Fatal(err)
	}
	noRoute, err := qd.NewEngine(store, best, qd.EngineSpark, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		log.Fatal(err)
	}
	nrRes, err := noRoute.WithMode(qd.NoRoute).Workload(ds.Queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPhysical execution (%s plan, Spark profile, %d blocks):\n", best.Strategy, best.Layout.NumBlocks())
	fmt.Printf("  with qd-tree routing: %v\n", routed.TotalSimTime.Round(time.Millisecond))
	fmt.Printf("  no route (SMA only):  %v\n", nrRes.TotalSimTime.Round(time.Millisecond))

	// Interpret the tree (Fig. 9 style).
	fmt.Println("\nTop cut columns of the deployed tree:")
	for col, perDepth := range best.Tree.CutCounts() {
		total := 0
		for _, n := range perDepth {
			total += n
		}
		if total >= 2 {
			fmt.Printf("  %-16s %d cuts\n", col, total)
		}
	}
}
