// TPC-H example: the paper's primary benchmark scenario (Sec. 7.4).
// Generates a denormalized TPC-H-style fact table with the 15 filter
// templates, compares the random, Bottom-Up, greedy, and Woodblock
// planners from the strategy registry, then materializes the best plan to
// disk and executes the workload through an Engine.
//
//	go run ./examples/tpch [-rows 100000] [-episodes 32]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/workload"
	"repro/qd"
)

func main() {
	rows := flag.Int("rows", 100_000, "fact table rows")
	episodes := flag.Int("episodes", 32, "Woodblock episodes")
	flag.Parse()

	spec := workload.TPCH(workload.TPCHConfig{Rows: *rows, Seed: 7})
	ds := qd.NewDataset(spec.Table.Schema, spec.Table).WithQueries(spec.Queries, spec.ACs)
	b := *rows / 770 // the paper's b=100K over 77M rows, rescaled
	if b < 32 {
		b = 32
	}
	fmt.Printf("TPC-H style: %d rows x %d cols, %d queries, b=%d\n",
		ds.Table.N, ds.Schema.NumCols(), len(ds.Queries), b)

	// Plan with every strategy of interest via the registry.
	plans := map[string]*qd.Plan{}
	for name, opt := range map[string]qd.PlanOptions{
		"greedy":    {MinBlockSize: b},
		"bottomup":  {MinBlockSize: b, SelectivityCap: 0.10},
		"woodblock": {MinBlockSize: b, Seed: 7, Hidden: 64, MaxEpisodes: *episodes},
	} {
		planner, err := qd.NewPlanner(name)
		if err != nil {
			log.Fatal(err)
		}
		if plans[name], err = planner.Plan(ds, opt); err != nil {
			log.Fatal(err)
		}
	}
	// Random baseline with a comparable number of blocks.
	random, err := qd.RandomPlanner{}.Plan(ds, qd.PlanOptions{
		NumBlocks: plans["greedy"].Layout.NumBlocks(), Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nLogical access percentage (Table 2 metric, lower is better):")
	fmt.Printf("  random:    %6.2f%%\n", random.AccessedFraction(nil)*100)
	fmt.Printf("  BU+:       %6.2f%%\n", plans["bottomup"].AccessedFraction(nil)*100)
	fmt.Printf("  greedy:    %6.2f%%\n", plans["greedy"].AccessedFraction(nil)*100)
	fmt.Printf("  woodblock: %6.2f%%\n", plans["woodblock"].AccessedFraction(nil)*100)
	fmt.Printf("  lower bnd: %6.2f%% (true selectivity)\n", ds.Selectivity()*100)

	// Pick the better qd-tree plan and serve the workload through it.
	best := plans["greedy"]
	if plans["woodblock"].AccessedFraction(nil) < best.AccessedFraction(nil) {
		best = plans["woodblock"]
	}
	dir, err := os.MkdirTemp("", "tpch-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := qd.WriteStore(dir, ds.Table, best.Layout)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := qd.NewEngine(store, best, qd.EngineSpark, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	routed, err := eng.Workload(ds.Queries)
	if err != nil {
		log.Fatal(err)
	}
	noRoute, err := qd.NewEngine(store, best, qd.EngineSpark, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		log.Fatal(err)
	}
	nrRes, err := noRoute.WithMode(qd.NoRoute).Workload(ds.Queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPhysical execution (%s plan, Spark profile, %d blocks):\n", best.Strategy, best.Layout.NumBlocks())
	fmt.Printf("  with qd-tree routing: %v\n", routed.TotalSimTime.Round(time.Millisecond))
	fmt.Printf("  no route (SMA only):  %v\n", nrRes.TotalSimTime.Round(time.Millisecond))

	// Interpret the tree (Fig. 9 style).
	fmt.Println("\nTop cut columns of the deployed tree:")
	for col, perDepth := range best.Tree.CutCounts() {
		total := 0
		for _, n := range perDepth {
			total += n
		}
		if total >= 2 {
			fmt.Printf("  %-16s %d cuts\n", col, total)
		}
	}

	// TPC-H Q1 and Q6: full aggregation statements pushed into the same
	// skipping layout. Dates parse against the 1992-01-01 TPC-H epoch;
	// 0.05/0.07 scale to the fixed-point discount encoding.
	q1 := "SELECT l_returnflag, l_linestatus, COUNT(*), SUM(l_quantity), SUM(l_extendedprice), AVG(l_quantity), AVG(l_discount) " +
		"FROM lineitem WHERE l_shipdate <= '1998-09-02' GROUP BY l_returnflag, l_linestatus"
	q6 := "SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem " +
		"WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"

	schema := ds.Schema
	aqs, _, err := qd.ParseAggWorkload(schema, []string{q1, q6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTPC-H Q1 (pricing summary report):")
	r1, err := eng.Aggregate(aqs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-10s %-10s %10s %10s %14s %8s %8s\n",
		"returnflag", "linestatus", "count", "sum_qty", "sum_price", "avg_qty", "avg_disc")
	rf, lst := schema.Cols[r1.GroupBy[0]].Dict, schema.Cols[r1.GroupBy[1]].Dict
	for _, row := range r1.Rows {
		fmt.Printf("  %-10s %-10s %10d %10d %14d %8.2f %8.4f\n",
			rf[row.Key[0]], lst[row.Key[1]],
			row.Vals[0].Int, row.Vals[1].Int, row.Vals[2].Int, row.Vals[3].Float, row.Vals[4].Float/100)
	}

	fmt.Println("\nTPC-H Q6 (forecasting revenue change):")
	r6, err := eng.Aggregate(aqs[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  revenue-ish SUM(l_extendedprice) = %d over %d matching rows\n",
		r6.Rows[0].Vals[0].Int, r6.Rows[0].Vals[1].Int)
	fmt.Printf("  scanned %d of %d rows (skip rate %.1f%%)\n",
		r6.RowsScanned, r6.RowsTotal, r6.SkipRate()*100)

	// Both statements must agree exactly with the naive row-at-a-time
	// reference evaluator (the differential-test ground truth).
	for i, res := range []*qd.AggResult{r1, r6} {
		name := []string{"Q1", "Q6"}[i]
		truth := qd.ReferenceAggregate(ds.Table, aqs[i], best.ACs)
		if len(res.Rows) != len(truth) {
			log.Fatalf("%s: %d rows vs reference %d", name, len(res.Rows), len(truth))
		}
		for r := range truth {
			for v := range truth[r].Vals {
				if res.Rows[r].Vals[v].Int != truth[r].Vals[v].Int {
					log.Fatalf("%s: aggregate diverges from reference at row %d", name, r)
				}
			}
		}
	}
	fmt.Println("\naggregates verified against the reference evaluator: OK")

	// Row-returning statements through the same layout: a TopK scan and a
	// code-space self-join (both sides share the l_shipmode dictionary).
	rowSQL := "SELECT l_orderkey, l_extendedprice, l_shipdate FROM lineitem " +
		"WHERE l_shipdate >= '1995-06-01' AND l_discount BETWEEN 0.05 AND 0.07 " +
		"ORDER BY l_extendedprice DESC, l_orderkey LIMIT 5"
	stmt, _, err := qd.ParseRowSelect(schema, rowSQL)
	if err != nil {
		log.Fatal(err)
	}
	rres, err := eng.Select(stmt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop discounted line items by price (TopK over the heap, not a full sort):")
	for _, row := range rres.Rows {
		fmt.Printf("  order %-8d price %-7d shipdate %d\n", row[0], row[1], row[2])
	}
	if truth := qd.ReferenceSelect(ds.Table, *stmt.Row, best.ACs); len(truth) != len(rres.Rows) {
		log.Fatalf("row query: %d rows vs reference %d", len(rres.Rows), len(truth))
	} else {
		for r := range truth {
			for c := range truth[r] {
				if rres.Rows[r][c] != truth[r][c] {
					log.Fatalf("row query diverges from reference at row %d", r)
				}
			}
		}
	}

	joinSQL := "SELECT a.l_orderkey, b.l_orderkey, a.l_shipmode FROM a JOIN b ON a.l_shipmode = b.l_shipmode " +
		"WHERE a.l_extendedprice >= 104500 AND b.l_extendedprice >= 104800 " +
		"ORDER BY a.l_orderkey, b.l_orderkey LIMIT 8"
	jstmt, _, err := qd.ParseRowSelect(schema, joinSQL)
	if err != nil {
		log.Fatal(err)
	}
	jres, err := eng.Select(jstmt)
	if err != nil {
		log.Fatal(err)
	}
	modeDict := schema.Cols[schema.MustCol("l_shipmode")].Dict
	fmt.Printf("\nself-join on l_shipmode (code-space build: %v, build %d probe %d):\n",
		jres.Join.CodeSpace, jres.Join.RowsBuild, jres.Join.RowsProbe)
	for _, row := range jres.Rows {
		fmt.Printf("  orders %-8d x %-8d via %s\n", row[0], row[1], modeDict[row[2]])
	}
	jtruth := qd.ReferenceJoin(ds.Table, *jstmt.Join, best.ACs)
	if len(jtruth) != len(jres.Rows) {
		log.Fatalf("join: %d rows vs reference %d", len(jres.Rows), len(jtruth))
	}
	for r := range jtruth {
		for c := range jtruth[r] {
			if jres.Rows[r][c] != jtruth[r][c] {
				log.Fatalf("join diverges from reference at row %d", r)
			}
		}
	}
	fmt.Println("\nrow statements verified against the reference evaluator: OK")
}
