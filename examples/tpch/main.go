// TPC-H example: the paper's primary benchmark scenario (Sec. 7.4).
// Generates a denormalized TPC-H-style fact table with the 15 filter
// templates, compares a random layout, Bottom-Up, greedy qd-tree, and
// Woodblock, then materializes the best layout to disk and executes the
// workload through the scan engine.
//
//	go run ./examples/tpch [-rows 100000] [-episodes 32]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/blockstore"
	"repro/internal/exec"
	"repro/internal/workload"
	"repro/qd"
)

func main() {
	rows := flag.Int("rows", 100_000, "fact table rows")
	episodes := flag.Int("episodes", 32, "Woodblock episodes")
	flag.Parse()

	spec := workload.TPCH(workload.TPCHConfig{Rows: *rows, Seed: 7})
	tbl, queries, acs := spec.Table, spec.Queries, spec.ACs
	b := *rows / 770 // the paper's b=100K over 77M rows, rescaled
	if b < 32 {
		b = 32
	}
	fmt.Printf("TPC-H style: %d rows x %d cols, %d queries, b=%d\n",
		tbl.N, tbl.Schema.NumCols(), len(queries), b)

	// Baseline: random shuffling into same-size blocks.
	greedyTree, err := qd.BuildGreedy(tbl, queries, acs, qd.BuildOptions{MinBlockSize: b})
	if err != nil {
		log.Fatal(err)
	}
	greedyLayout := qd.LayoutFromTree("greedy", greedyTree, tbl)
	random, err := qd.RandomLayout(tbl, greedyLayout.NumBlocks(), acs, 7)
	if err != nil {
		log.Fatal(err)
	}
	buPlus, _, err := qd.BuildBottomUp(tbl, queries, acs, qd.BuildOptions{MinBlockSize: b}, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	rlRes, err := qd.BuildWoodblock(tbl, queries, acs, qd.WoodblockOptions{
		BuildOptions: qd.BuildOptions{MinBlockSize: b, Seed: 7},
		Hidden:       64,
		MaxEpisodes:  *episodes,
	})
	if err != nil {
		log.Fatal(err)
	}
	rlLayout := qd.LayoutFromTree("woodblock", rlRes.Tree, tbl)

	fmt.Println("\nLogical access percentage (Table 2 metric, lower is better):")
	fmt.Printf("  random:    %6.2f%%\n", random.AccessedFraction(queries)*100)
	fmt.Printf("  BU+:       %6.2f%%\n", buPlus.AccessedFraction(queries)*100)
	fmt.Printf("  greedy:    %6.2f%%\n", greedyLayout.AccessedFraction(queries)*100)
	fmt.Printf("  woodblock: %6.2f%%\n", rlLayout.AccessedFraction(queries)*100)
	fmt.Printf("  lower bnd: %6.2f%% (true selectivity)\n", qd.Selectivity(tbl, queries, acs)*100)

	// Pick the better qd-tree and run the physical engine over it.
	best := greedyLayout
	if rlLayout.AccessedFraction(queries) < greedyLayout.AccessedFraction(queries) {
		best = rlLayout
	}
	dir, err := os.MkdirTemp("", "tpch-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := blockstore.Write(dir, tbl, best.BIDs, best.NumBlocks())
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	_, simTotal, err := exec.RunWorkload(store, best, queries, acs, exec.EngineSpark, exec.RouteQdTree)
	if err != nil {
		log.Fatal(err)
	}
	_, simNoRoute, err := exec.RunWorkload(store, best, queries, acs, exec.EngineSpark, exec.NoRoute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPhysical execution (%s layout, Spark profile, %d blocks):\n", best.Name, best.NumBlocks())
	fmt.Printf("  with qd-tree routing: %v\n", simTotal.Round(time.Millisecond))
	fmt.Printf("  no route (SMA only):  %v\n", simNoRoute.Round(time.Millisecond))

	// Interpret the tree (Fig. 9 style).
	fmt.Println("\nTop cut columns of the deployed tree:")
	counts := bestTreeOf(best, greedyTree, rlRes).CutCounts()
	for col, perDepth := range counts {
		total := 0
		for _, n := range perDepth {
			total += n
		}
		if total >= 2 {
			fmt.Printf("  %-16s %d cuts\n", col, total)
		}
	}
}

func bestTreeOf(best *qd.Layout, greedyTree *qd.Tree, rlRes *qd.RLResult) *qd.Tree {
	if best.Name == "woodblock" {
		return rlRes.Tree
	}
	return greedyTree
}
