// Drift: the online serving loop end to end. A layout is planned for
// workload A (queries over the low end of a timestamp-like column), then
// workload B — the same shapes migrated to the high end — is replayed
// against it. The background drift monitor notices the logged window is
// badly served, replans it, and hot-swaps a new generation; the example
// prints the per-query skip rate before and after the swap.
//
//	go run ./examples/drift
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/qd"
)

const (
	rows      = 100_000
	domain    = 1000 // ts values cycle [0, domain)
	bandWidth = 50
)

func bandSQL(lo int) string {
	return fmt.Sprintf("ts >= %d AND ts < %d", lo, lo+bandWidth)
}

func main() {
	// Data: ts uniform over [0, domain), plus a payload column.
	schema := qd.MustSchema([]qd.Column{
		{Name: "ts", Kind: qd.Numeric, Min: 0, Max: domain - 1},
		{Name: "val", Kind: qd.Numeric, Min: 0, Max: 9999},
	})
	rng := rand.New(rand.NewSource(7))
	tbl := qd.NewTable(schema, rows)
	for i := 0; i < rows; i++ {
		tbl.AppendRow([]int64{int64(rng.Intn(domain)), int64(rng.Intn(10000))})
	}

	// Workload A: four 50-wide bands in ts ∈ [0, 200). Workload B is the
	// same shape drifted to ts ∈ [800, 1000).
	var sqlsA, sqlsB []string
	for i := 0; i < 4; i++ {
		sqlsA = append(sqlsA, bandSQL(i*bandWidth))
		sqlsB = append(sqlsB, bandSQL(domain-200+i*bandWidth))
	}

	// Plan the initial layout for A only and bootstrap a serving root.
	ds, err := qd.NewDataset(schema, tbl).WithWorkload(sqlsA...)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: rows / 40})
	if err != nil {
		log.Fatal(err)
	}
	root, err := os.MkdirTemp("", "qd-drift-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	if err := qd.InitServing(root, tbl, plan); err != nil {
		log.Fatal(err)
	}

	srv, err := qd.NewServer(root, qd.ServeOptions{
		Plan:          qd.PlanOptions{MinBlockSize: rows / 40},
		LogCapacity:   64,
		MinWindow:     8,
		CheckInterval: 25 * time.Millisecond, // aggressive for the demo; think minutes in production
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	replay := func(sqls []string, reps int) float64 {
		var sum float64
		n := 0
		for r := 0; r < reps; r++ {
			for _, sql := range sqls {
				res, err := srv.QuerySQL(sql)
				if err != nil {
					log.Fatal(err)
				}
				sum += res.SkipRate()
				n++
			}
		}
		return sum / float64(n)
	}

	fmt.Printf("layout planned for workload A (ts < 200), generation %d\n", srv.Generation())
	fmt.Printf("replaying A:            mean skip rate %.1f%%  (well served)\n", replay(sqlsA, 4)*100)

	before := replay(sqlsB, 4)
	fmt.Printf("workload drifts to B (ts >= 800):\n")
	fmt.Printf("  before re-layout:     mean skip rate %.1f%%  (layout is stale)\n", before*100)

	// Keep replaying B; the background monitor replans the logged window
	// and swaps once the candidate clears the improvement threshold.
	deadline := time.Now().Add(30 * time.Second)
	for srv.Stats().Swaps == 0 && time.Now().Before(deadline) {
		replay(sqlsB, 1)
	}
	st := srv.Stats()
	if st.Swaps == 0 {
		log.Fatal("drift monitor never swapped")
	}
	after := replay(sqlsB, 4)
	fmt.Printf("  after auto re-layout: mean skip rate %.1f%%  (generation %d)\n", after*100, srv.Generation())
	if chk := st.LastCheck; chk != nil && chk.Swapped {
		fmt.Printf("\ndrift check that triggered the swap:\n  estimated scan cost %.1f%% -> %.1f%% of the table per query (%.0f%% improvement)\n",
			chk.LiveFraction*100, chk.CandidateFraction*100, chk.Improvement*100)
	}
	fmt.Printf("served %d queries, 0 failed, across %d generation swap(s)\n", st.Queries, st.Swaps)
}
