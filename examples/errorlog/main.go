// ErrorLog example: the paper's real-workload scenario (Sec. 7.5) — a
// telemetry table with heavily correlated columns and an ultra-selective
// 1000-query workload. Shows the range-partitioned production default
// reading everything while a qd-tree plan reads a fraction of a percent,
// and demonstrates incremental ingestion through the learned tree.
//
//	go run ./examples/errorlog [-rows 100000] [-queries 400]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/router"
	"repro/internal/workload"
	"repro/qd"
)

func main() {
	rows := flag.Int("rows", 100_000, "log rows")
	nq := flag.Int("queries", 400, "workload queries")
	flag.Parse()

	spec := workload.ErrorLogInt(workload.ErrorLogConfig{Rows: *rows, NumQueries: *nq, Seed: 3})
	ds := qd.NewDataset(spec.Table.Schema, spec.Table).WithQueries(spec.Queries, nil)
	b := *rows / 2000 // the paper's b=50K over 100M rows, rescaled
	if b < 16 {
		b = 16
	}
	fmt.Printf("ErrorLog-Int style: %d rows x %d cols, %d queries (selectivity %.5f%%)\n",
		ds.Table.N, ds.Schema.NumCols(), len(ds.Queries), ds.Selectivity()*100)

	plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: b})
	if err != nil {
		log.Fatal(err)
	}

	// The deployed default: range partitioning on the ingest column.
	baseline, err := qd.RangePlanner{}.Plan(ds, qd.PlanOptions{
		RangeColumn: workload.IngestColumn(ds.Schema),
		NumBlocks:   plan.Layout.NumBlocks(),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nLogical access percentage:")
	fmt.Printf("  range-on-ingest baseline: %7.3f%%  (the deployed default)\n",
		baseline.AccessedFraction(nil)*100)
	fmt.Printf("  greedy qd-tree:           %7.3f%%\n", plan.AccessedFraction(nil)*100)

	// Per-query speedup distribution (Fig. 7c style).
	speedups := make([]float64, 0, len(ds.Queries))
	for _, q := range ds.Queries {
		base := float64(baseline.Layout.AccessedTuples(q))
		qdt := float64(plan.Layout.AccessedTuples(q))
		speedups = append(speedups, (base+1)/(qdt+1))
	}
	sorted, _ := router.CDF(speedups)
	fmt.Println("\nPer-query tuple-access speedup over the baseline:")
	for _, p := range []float64{0.25, 0.5, 0.9} {
		fmt.Printf("  p%-3.0f  %8.1fx\n", p*100, sorted[int(p*float64(len(sorted)))])
	}

	// Online ingestion (Fig. 1's online path): route a fresh day of logs
	// through the learned tree with 8 threads.
	fresh := workload.ErrorLogInt(workload.ErrorLogConfig{Rows: *rows / 4, NumQueries: 1, Seed: 99}).Table
	res := router.MeasureThroughput(plan.Tree, fresh, 8, 4096)
	fmt.Printf("\nIngested %d new records through the tree at %.0f records/s (8 threads)\n",
		res.Records, res.RecordsPS)

	// Query rewrite for an engine that knows nothing about qd-trees.
	qr := &router.QueryRouter{Tree: plan.Tree}
	fmt.Printf("\nrewritten SQL: %s\n",
		qr.Rewrite("SELECT COUNT(*) FROM errorlog WHERE event_type = 'BUGCHECK'", ds.Queries[0]))
}
