// Quickstart: build a qd-tree over a small synthetic table from a SQL
// workload, inspect the layout, and route data and queries through it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/qd"
)

func main() {
	// 1. Define a schema: numeric columns take range cuts, categorical
	//    columns take =/IN cuts over dictionary codes.
	schema := qd.MustSchema([]qd.Column{
		{Name: "event_date", Kind: qd.Numeric, Min: 0, Max: 364},
		{Name: "severity", Kind: qd.Numeric, Min: 0, Max: 9},
		{Name: "service", Kind: qd.Categorical, Dom: 5,
			Dict: []string{"auth", "billing", "frontend", "search", "storage"}},
	})

	// 2. Load data (here: 200K synthetic rows; errors cluster by service).
	rng := rand.New(rand.NewSource(1))
	tbl := qd.NewTable(schema, 200_000)
	for i := 0; i < 200_000; i++ {
		service := int64(rng.Intn(5))
		sev := int64(rng.Intn(10))
		if service == 0 { // auth incidents skew severe
			sev = int64(5 + rng.Intn(5))
		}
		tbl.AppendRow([]int64{int64(rng.Intn(365)), sev, service})
	}

	// 3. Describe the workload as SQL filters. The candidate cuts are
	//    extracted from these predicates (paper Sec. 3.4).
	queries, acs, err := qd.ParseWorkload(schema, []string{
		"service = 'auth' AND severity >= 8",
		"service IN ('billing', 'frontend') AND event_date BETWEEN 100 AND 130",
		"severity >= 9",
		"event_date >= 350",
		"service = 'search' AND severity < 2 AND event_date < 50",
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Build the tree with the greedy constructor (Algorithm 1);
	//    b = 10K rows per block.
	tree, err := qd.BuildGreedy(tbl, queries, acs, qd.BuildOptions{MinBlockSize: 10_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("qd-tree: %d leaves, depth %d\n\n%s\n", len(tree.Leaves()), tree.Depth(), tree)

	// 5. Deploy: route all rows to blocks and freeze min-max metadata.
	layout := qd.LayoutFromTree("greedy", tree, tbl)
	fmt.Printf("workload accesses %.1f%% of tuples (full scan = 100%%, lower bound = %.1f%%)\n",
		layout.AccessedFraction(queries)*100, qd.Selectivity(tbl, queries, acs)*100)

	// 6. Query routing: each query gets an explicit block list.
	for _, q := range queries {
		blocks := tree.QueryBlocks(q)
		fmt.Printf("  %-60s -> scans %d/%d blocks\n", q.StringWith(schema.Names(), acs), len(blocks), len(tree.Leaves()))
	}

	// 7. Data routing: new records descend the tree to their block.
	newRow := []int64{200, 9, 0} // severe auth incident
	leaf := tree.RouteRow(newRow)
	fmt.Printf("\nnew record routes to block %d: %s\n", leaf.BlockID, tree.LeafPredicate(leaf))
}
