// Quickstart: the Dataset → Planner → Engine pipeline on a small
// synthetic table. A dataset binds schema + data + SQL workload, a
// planner turns it into a deployable plan, and an engine serves queries
// over the materialized blocks.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/qd"
)

func main() {
	// 1. Define a schema: numeric columns take range cuts, categorical
	//    columns take =/IN cuts over dictionary codes.
	schema := qd.MustSchema([]qd.Column{
		{Name: "event_date", Kind: qd.Numeric, Min: 0, Max: 364},
		{Name: "severity", Kind: qd.Numeric, Min: 0, Max: 9},
		{Name: "service", Kind: qd.Categorical, Dom: 5,
			Dict: []string{"auth", "billing", "frontend", "search", "storage"}},
	})

	// 2. Load data (here: 200K synthetic rows; errors cluster by service).
	rng := rand.New(rand.NewSource(1))
	tbl := qd.NewTable(schema, 200_000)
	for i := 0; i < 200_000; i++ {
		service := int64(rng.Intn(5))
		sev := int64(rng.Intn(10))
		if service == 0 { // auth incidents skew severe
			sev = int64(5 + rng.Intn(5))
		}
		tbl.AppendRow([]int64{int64(rng.Intn(365)), sev, service})
	}

	// 3. Bind table + workload into a Dataset. The candidate cuts are
	//    extracted from these predicates (paper Sec. 3.4).
	ds, err := qd.NewDataset(schema, tbl).WithWorkload(
		"service = 'auth' AND severity >= 8",
		"service IN ('billing', 'frontend') AND event_date BETWEEN 100 AND 130",
		"severity >= 9",
		"event_date >= 350",
		"service = 'search' AND severity < 2 AND event_date < 50",
	)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Plan the layout with the greedy constructor (Algorithm 1);
	//    b = 10K rows per block. Strategies can also be resolved by name
	//    via qd.NewPlanner("greedy" | "woodblock" | ...).
	plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 10_000})
	if err != nil {
		log.Fatal(err)
	}
	tree := plan.Tree
	fmt.Printf("qd-tree: %d leaves, depth %d\n\n%s\n", len(tree.Leaves()), tree.Depth(), tree)
	fmt.Printf("workload accesses %.1f%% of tuples (full scan = 100%%, lower bound = %.1f%%)\n",
		plan.AccessedFraction(nil)*100, ds.Selectivity()*100)

	// 5. Query routing: each query gets an explicit block list.
	for _, q := range ds.Queries {
		blocks := tree.QueryBlocks(q)
		fmt.Printf("  %-60s -> scans %d/%d blocks\n", q.StringWith(schema.Names(), ds.ACs), len(blocks), len(tree.Leaves()))
	}

	// 6. Data routing: new records descend the tree to their block.
	newRow := []int64{200, 9, 0} // severe auth incident
	leaf := tree.RouteRow(newRow)
	fmt.Printf("\nnew record routes to block %d: %s\n", leaf.BlockID, tree.LeafPredicate(leaf))

	// 7. Physical execution: materialize the plan's blocks and serve the
	//    workload through an Engine.
	dir, err := os.MkdirTemp("", "qd-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := qd.WriteStore(dir, tbl, plan.Layout)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: 4, ShareReads: true})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	wr, err := eng.Workload(ds.Queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nengine ran %d queries: %d physical block reads, simulated %v\n",
		len(wr.Results), wr.PhysicalReads, wr.TotalSimTime.Round(time.Millisecond))
}
