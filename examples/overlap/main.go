// Overlap & replication example: the Sec. 6 framework extensions.
// Reproduces the Figure 4 scenario where replicating a single hot record
// into its neighboring blocks removes all cross-block fetches, then shows
// the two-tree (Sec. 6.3) deployment serving a conflicted workload.
//
//	go run ./examples/overlap
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/workload"
	"repro/qd"
)

func main() {
	// ---- Part 1: data overlap (Sec. 6.2, Figure 4) ----
	armN := 5000
	spec := workload.Fig4(armN, 1)
	ds := qd.NewDataset(spec.Table.Schema, spec.Table).WithQueries(spec.Queries, spec.ACs)
	fmt.Printf("Fig. 4 cross dataset: 4 arms x %d records + 1 center record; 4 queries of %d records each\n",
		armN, armN+1)

	plainPlan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: armN})
	if err != nil {
		log.Fatal(err)
	}
	var plainTotal int64
	for _, q := range ds.Queries {
		plainTotal += plainPlan.Layout.AccessedTuples(q)
	}

	ovPlan, err := qd.OverlapPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: armN})
	if err != nil {
		log.Fatal(err)
	}
	ov := ovPlan.Overlap
	var ovTotal int64
	for _, q := range ds.Queries {
		ovTotal += ov.AccessedTuples(q, ds.Schema)
	}
	fmt.Printf("  plain qd-tree:   %6d tuples read (3 queries fetch the center's block)\n", plainTotal)
	fmt.Printf("  overlap layout:  %6d tuples read, %.4f%% extra storage\n",
		ovTotal, ov.StorageOverhead()*100)
	fmt.Printf("  ideal:           %6d tuples (every query reads exactly its result region)\n",
		int64(4*(armN+1)))

	// ---- Part 2: two-tree replication (Sec. 6.3) ----
	// A workload whose two halves want incompatible layouts.
	rng := rand.New(rand.NewSource(2))
	schema := qd.MustSchema([]qd.Column{
		{Name: "x", Kind: qd.Numeric, Min: 0, Max: 999},
		{Name: "y", Kind: qd.Numeric, Min: 0, Max: 999},
	})
	tbl := qd.NewTable(schema, 50_000)
	for i := 0; i < 50_000; i++ {
		tbl.AppendRow([]int64{int64(rng.Intn(1000)), int64(rng.Intn(1000))})
	}
	var queries []qd.Query
	for k := 0; k < 8; k++ {
		lo := int64(k * 125)
		queries = append(queries,
			qd.NewQuery("x-range", qd.And(
				qd.P(qd.Pred{Col: 0, Op: qd.Ge, Literal: lo}),
				qd.P(qd.Pred{Col: 0, Op: qd.Lt, Literal: lo + 125}))),
			qd.NewQuery("y-range", qd.And(
				qd.P(qd.Pred{Col: 1, Op: qd.Ge, Literal: lo}),
				qd.P(qd.Pred{Col: 1, Op: qd.Lt, Literal: lo + 125}))))
	}
	conflicted := qd.NewDataset(schema, tbl).WithQueries(queries, nil)

	onePlan, err := qd.GreedyPlanner{}.Plan(conflicted, qd.PlanOptions{MinBlockSize: 1500})
	if err != nil {
		log.Fatal(err)
	}
	twoPlan, err := qd.TwoTreePlanner{}.Plan(conflicted, qd.PlanOptions{MinBlockSize: 1500})
	if err != nil {
		log.Fatal(err)
	}
	two := twoPlan.TwoTree
	fmt.Println("\nTwo-tree replication on a conflicted workload (x-ranges vs y-ranges):")
	fmt.Printf("  one tree:  %.1f%% of tuples accessed\n", onePlan.AccessedFraction(nil)*100)
	fmt.Printf("  two trees: %.1f%% of tuples accessed (2x storage)\n", two.AccessedFraction(queries)*100)
	t1, t2 := 0, 0
	for _, c := range two.PerQueryChoice {
		if c == 1 {
			t1++
		} else {
			t2++
		}
	}
	fmt.Printf("  dispatch: %d queries served by T1, %d by T2\n", t1, t2)
}
