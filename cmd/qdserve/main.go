// Command qdserve runs the online serving subsystem as an HTTP/JSON
// service: queries execute against the live layout generation, every
// execution lands in a sliding workload log, and a background drift
// monitor replans the logged window — when the candidate layout beats the
// live one by the configured margin, the store is rewritten into a new
// generation and hot-swapped with zero failed queries.
//
//	qdserve -demo                             # bootstrap a synthetic store and serve it
//	qdserve -store /data/qd                   # serve an existing generation root
//	qdserve -store /data/qd -interval 10s -threshold 0.2 -strategy woodblock
//
// Endpoints:
//
//	POST /query    {"sql": "severity >= 8"}   one filter query; returns scan stats
//	POST /query    {"sql": "SELECT service, COUNT(*) FROM logs GROUP BY service"}
//	                                          aggregation; returns typed rows + stats
//	POST /ingest   {"columns": [...], "rows": [[...], ...]}
//	                                          stream rows into the delta; visible immediately
//	POST /compact                             force a delta-compaction cycle
//	GET  /stats                               serving counters + last drift check
//	POST /relayout                            force a replan + swap cycle
//	GET  /healthz                             liveness
//
// A generation root is created from any planned layout with
// qd.InitServing (or -demo, which synthesizes data, plans an initial
// layout for a deliberately narrow workload, and serves it — replay a
// different workload and watch /stats report a swap).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/qd"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		store     = flag.String("store", "", "generation root to serve (created by qd.InitServing or -demo)")
		demo      = flag.Bool("demo", false, "bootstrap a synthetic demo store under -store (or a temp dir) before serving")
		rows      = flag.Int("rows", 200_000, "demo table rows")
		strategy  = flag.String("strategy", "greedy", "replan strategy (qd planner registry name)")
		minBlock  = flag.Int("min-block", 0, "replan min rows per block (0 = rows/64)")
		window    = flag.Int("window", 0, "drift window: logged queries replanned per check (0 = log capacity)")
		minWindow = flag.Int("min-window", 16, "minimum logged queries before the monitor replans")
		threshold = flag.Float64("threshold", 0.10, "minimum relative cost improvement before a swap (0 = default 0.10, negative = any improvement)")
		interval  = flag.Duration("interval", 30*time.Second, "background drift-check period (0 disables the monitor)")
		keep      = flag.Int("keep", 0, "retired generations kept on disk after a swap")
		parallel  = flag.Int("parallelism", 0, "scan worker pool size (0 = GOMAXPROCS)")
		profile   = flag.String("profile", "spark", "engine cost profile: spark | dbms")
		memRows   = flag.Int("memtable-rows", 0, "ingest memtable rows before sealing to a delta segment (0 = default 4096)")
		compRows  = flag.Int("compact-rows", 0, "uncompacted delta rows before a background compaction (0 = default 65536)")
		compEvery = flag.Duration("compact-interval", 10*time.Second, "background compaction check period (0 disables; POST /compact still works)")
	)
	flag.Parse()
	if err := run(*addr, *store, *demo, *rows, *strategy, *minBlock, *window, *minWindow, *threshold, *interval, *keep, *parallel, *profile, *memRows, *compRows, *compEvery); err != nil {
		fmt.Fprintf(os.Stderr, "qdserve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, store string, demo bool, rows int, strategy string, minBlock, window, minWindow int,
	threshold float64, interval time.Duration, keep, parallel int, profile string,
	memRows, compRows int, compEvery time.Duration) error {
	prof := qd.EngineSpark
	switch profile {
	case "spark":
	case "dbms":
		prof = qd.EngineDBMS
	default:
		return fmt.Errorf("unknown profile %q (spark | dbms)", profile)
	}
	if demo {
		if store == "" {
			dir, err := os.MkdirTemp("", "qdserve-demo-")
			if err != nil {
				return err
			}
			store = dir
		}
		// Idempotent: restarting with the same -demo -store serves the
		// existing generations instead of failing on generation 1.
		if _, err := os.Stat(filepath.Join(store, "CURRENT")); err == nil {
			log.Printf("store %s already initialized; serving it", store)
		} else {
			if err := bootstrapDemo(store, rows); err != nil {
				return fmt.Errorf("demo bootstrap: %w", err)
			}
			log.Printf("demo store bootstrapped at %s (%d rows)", store, rows)
		}
	}
	if store == "" {
		return fmt.Errorf("need -store (or -demo)")
	}

	srv, err := qd.NewServer(store, qd.ServeOptions{
		Strategy:        strategy,
		Plan:            qd.PlanOptions{MinBlockSize: minBlock},
		Profile:         prof,
		Exec:            qd.ExecOptions{Parallelism: parallel, ShareReads: true},
		WindowSize:      window,
		MinWindow:       minWindow,
		MinImprovement:  threshold,
		CheckInterval:   interval,
		KeepGenerations: keep,
		MemtableRows:    memRows,
		CompactRows:     compRows,
		CompactInterval: compEvery,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("serving %s (generation %d, %d rows) on http://%s", store, srv.Generation(), srv.Rows(), ln.Addr())
	log.Printf(`try: curl -s -X POST http://%s/query -d '{"sql": "..."}'`, ln.Addr())

	httpSrv := &http.Server{Handler: qd.ServerHandler(srv)}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v, draining", s)
		// Drain in-flight requests (zero failed queries extends to
		// shutdown); fall back to a hard close after a grace period.
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			httpSrv.Close()
		}
		return nil
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
}

// bootstrapDemo synthesizes an ops-log style table and plans the initial
// layout for a deliberately narrow workload (recent high-severity auth
// traffic), so replaying anything else drifts the log and exercises the
// background re-layout.
func bootstrapDemo(root string, rows int) error {
	schema := qd.MustSchema([]qd.Column{
		{Name: "event_date", Kind: qd.Numeric, Min: 0, Max: 364},
		{Name: "severity", Kind: qd.Numeric, Min: 0, Max: 9},
		{Name: "service", Kind: qd.Categorical, Dom: 5,
			Dict: []string{"auth", "billing", "frontend", "search", "storage"}},
	})
	rng := rand.New(rand.NewSource(1))
	tbl := qd.NewTable(schema, rows)
	for i := 0; i < rows; i++ {
		service := int64(rng.Intn(5))
		sev := int64(rng.Intn(10))
		if service == 0 {
			sev = int64(5 + rng.Intn(5))
		}
		tbl.AppendRow([]int64{int64(rng.Intn(365)), sev, service})
	}
	ds, err := qd.NewDataset(schema, tbl).WithWorkload(
		"service = 'auth' AND severity >= 8",
		"severity >= 9 AND event_date >= 300",
		"service = 'auth' AND event_date >= 340",
	)
	if err != nil {
		return err
	}
	plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: max(1, rows/64)})
	if err != nil {
		return err
	}
	return qd.InitServing(root, tbl, plan)
}
