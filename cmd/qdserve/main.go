// Command qdserve runs the online serving subsystem as an HTTP/JSON
// service: queries execute against the live layout generation, every
// execution lands in a sliding workload log, and a background drift
// monitor replans the logged window — when the candidate layout beats the
// live one by the configured margin, the store is rewritten into a new
// generation and hot-swapped with zero failed queries.
//
// Three roles cover standalone and distributed serving:
//
//	qdserve -demo                             # standalone: bootstrap a synthetic store and serve it
//	qdserve -store /data/qd                   # standalone: serve an existing generation root
//	qdserve -role shard -demo -shards 3 -shard-index 1 -store /data/cluster
//	                                          # store node: bootstrap + serve shard 1 of a 3-shard demo cluster
//	qdserve -role shard -store /data/cluster/shard_001
//	                                          # store node: serve an existing shard root
//	qdserve -role frontdoor -peers 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
//	                                          # front door: scatter/gather over the shard peers
//
// Endpoints (standalone and shard):
//
//	POST /query    {"sql": "severity >= 8"}   one filter query; returns scan stats
//	POST /query    {"sql": "SELECT service, COUNT(*) FROM logs GROUP BY service"}
//	                                          aggregation; returns typed rows + stats
//	POST /ingest   {"columns": [...], "rows": [[...], ...]}
//	                                          stream rows into the delta; visible immediately
//	POST /compact                             force a delta-compaction cycle
//	GET  /stats                               serving counters + last drift check
//	GET  /metrics                             Prometheus text exposition
//	GET  /debug/traces                        recent + slow query traces
//	POST /relayout                            force a replan + swap cycle
//	GET  /healthz                             liveness
//
// A shard additionally serves GET /cluster/summary (its pruning envelope)
// and POST /cluster/select (partial aggregation for the front door's
// gather). A front door serves POST /query, POST /ingest, GET /stats,
// GET /metrics, GET /debug/traces, POST /refresh, and GET /healthz —
// queries are parsed once, shards whose envelope cannot match are pruned,
// and the rest are scattered in parallel; answers are bit-identical to a
// single-node run unless the response carries "partial": true.
//
// Every role's POST /query honors {"trace": true} (inline per-stage
// spans; the front door also gathers each shard's spans), -slow-ms sets
// the slow-query threshold, and -pprof mounts net/http/pprof under
// /debug/pprof/.
//
// A generation root is created from any planned layout with
// qd.InitServing, a sharded cluster with qd.InitCluster (or the -demo
// shard role, which bootstraps its own slice deterministically).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/qd"
)

type config struct {
	addr       string
	addrFile   string
	role       string
	store      string
	demo       bool
	rows       int
	shards     int
	shardIndex int
	peers      string
	strategy   string
	minBlock   int
	window     int
	minWindow  int
	threshold  float64
	interval   time.Duration
	keep       int
	parallel   int
	profile    string
	memRows    int
	compRows   int
	compEvery  time.Duration
	fdTimeout  time.Duration
	fdRetries  int
	fdWait     time.Duration
	slowMS     int
	pprof      bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	flag.StringVar(&cfg.addrFile, "addr-file", "", "write the bound address (host:port) to this file after listen — for orchestrating port-0 clusters")
	flag.StringVar(&cfg.role, "role", "standalone", "process role: standalone | shard | frontdoor")
	flag.StringVar(&cfg.store, "store", "", "generation root to serve; for -role shard -demo, the cluster directory")
	flag.BoolVar(&cfg.demo, "demo", false, "bootstrap a synthetic demo store under -store (or a temp dir) before serving")
	flag.IntVar(&cfg.rows, "rows", 200_000, "demo table rows")
	flag.IntVar(&cfg.shards, "shards", 1, "demo cluster size (role=shard with -demo)")
	flag.IntVar(&cfg.shardIndex, "shard-index", 0, "which shard this process serves (role=shard with -demo)")
	flag.StringVar(&cfg.peers, "peers", "", "comma-separated shard addresses (role=frontdoor)")
	flag.StringVar(&cfg.strategy, "strategy", "greedy", "replan strategy (qd planner registry name)")
	flag.IntVar(&cfg.minBlock, "min-block", 0, "replan min rows per block (0 = rows/64)")
	flag.IntVar(&cfg.window, "window", 0, "drift window: logged queries replanned per check (0 = log capacity)")
	flag.IntVar(&cfg.minWindow, "min-window", 16, "minimum logged queries before the monitor replans")
	flag.Float64Var(&cfg.threshold, "threshold", 0.10, "minimum relative cost improvement before a swap (0 = default 0.10, negative = any improvement)")
	flag.DurationVar(&cfg.interval, "interval", 30*time.Second, "background drift-check period (0 disables the monitor)")
	flag.IntVar(&cfg.keep, "keep", 0, "retired generations kept on disk after a swap")
	flag.IntVar(&cfg.parallel, "parallelism", 0, "scan worker pool size (0 = GOMAXPROCS)")
	flag.StringVar(&cfg.profile, "profile", "spark", "engine cost profile: spark | dbms")
	flag.IntVar(&cfg.memRows, "memtable-rows", 0, "ingest memtable rows before sealing to a delta segment (0 = default 4096)")
	flag.IntVar(&cfg.compRows, "compact-rows", 0, "uncompacted delta rows before a background compaction (0 = default 65536)")
	flag.DurationVar(&cfg.compEvery, "compact-interval", 10*time.Second, "background compaction check period (0 disables; POST /compact still works)")
	flag.DurationVar(&cfg.fdTimeout, "shard-timeout", 10*time.Second, "front door: per-shard request timeout")
	flag.IntVar(&cfg.fdRetries, "shard-retries", 1, "front door: extra attempts per failed shard call")
	flag.DurationVar(&cfg.fdWait, "peer-wait", 15*time.Second, "front door: how long to wait for peers at startup")
	flag.IntVar(&cfg.slowMS, "slow-ms", 250, "slow-query threshold in milliseconds for Stats.SlowQueries, the slow-trace ring, and qd_slow_queries_total (0 disables)")
	flag.BoolVar(&cfg.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "qdserve: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	switch cfg.role {
	case "standalone", "shard":
		return runServer(cfg)
	case "frontdoor":
		return runFrontDoor(cfg)
	default:
		return fmt.Errorf("unknown role %q (standalone | shard | frontdoor)", cfg.role)
	}
}

// runServer serves one generation root — the whole table (standalone) or
// one shard's slice (role=shard, which adds the /cluster endpoints).
func runServer(cfg config) error {
	prof := qd.EngineSpark
	switch cfg.profile {
	case "spark":
	case "dbms":
		prof = qd.EngineDBMS
	default:
		return fmt.Errorf("unknown profile %q (spark | dbms)", cfg.profile)
	}
	store := cfg.store
	label := ""
	if cfg.role == "shard" {
		label = fmt.Sprintf("shard_%03d", cfg.shardIndex)
	}
	if cfg.demo {
		if store == "" {
			dir, err := os.MkdirTemp("", "qdserve-demo-")
			if err != nil {
				return err
			}
			store = dir
		}
		if cfg.role == "shard" {
			// Every shard process derives the same table and plan from the
			// same seed and materializes only its own slice — no
			// coordinator process needed for the demo cluster.
			if cfg.shardIndex < 0 || cfg.shardIndex >= cfg.shards {
				return fmt.Errorf("-shard-index %d out of range for -shards %d", cfg.shardIndex, cfg.shards)
			}
			root := qd.ClusterShardRoot(store, cfg.shardIndex)
			if _, err := os.Stat(filepath.Join(root, "CURRENT")); err == nil {
				log.Printf("shard root %s already initialized; serving it", root)
			} else {
				tbl, plan, err := demoPlan(cfg.rows)
				if err != nil {
					return fmt.Errorf("demo bootstrap: %w", err)
				}
				if err := qd.InitClusterShard(store, tbl, plan, cfg.shards, cfg.shardIndex); err != nil {
					return fmt.Errorf("demo bootstrap: %w", err)
				}
				log.Printf("demo shard %d/%d bootstrapped at %s", cfg.shardIndex, cfg.shards, root)
			}
			store = root
		} else if _, err := os.Stat(filepath.Join(store, "CURRENT")); err == nil {
			// Idempotent: restarting with the same -demo -store serves the
			// existing generations instead of failing on generation 1.
			log.Printf("store %s already initialized; serving it", store)
		} else {
			if err := bootstrapDemo(store, cfg.rows); err != nil {
				return fmt.Errorf("demo bootstrap: %w", err)
			}
			log.Printf("demo store bootstrapped at %s (%d rows)", store, cfg.rows)
		}
	} else if cfg.role == "shard" && store != "" {
		// Serving an existing shard root directly (e.g. one written by
		// qd.InitCluster): -store points at the root itself.
		if _, err := os.Stat(filepath.Join(store, "CURRENT")); err != nil {
			if alt := qd.ClusterShardRoot(store, cfg.shardIndex); fileExists(filepath.Join(alt, "CURRENT")) {
				store = alt
			}
		}
	}
	if store == "" {
		return fmt.Errorf("need -store (or -demo)")
	}

	srv, err := qd.NewServer(store, qd.ServeOptions{
		Strategy:        cfg.strategy,
		Plan:            qd.PlanOptions{MinBlockSize: cfg.minBlock},
		Profile:         prof,
		Exec:            qd.ExecOptions{Parallelism: cfg.parallel, ShareReads: true},
		WindowSize:      cfg.window,
		MinWindow:       cfg.minWindow,
		MinImprovement:  cfg.threshold,
		CheckInterval:   cfg.interval,
		KeepGenerations: cfg.keep,
		MemtableRows:    cfg.memRows,
		CompactRows:     cfg.compRows,
		CompactInterval: cfg.compEvery,
		ShardLabel:      label,
		SlowQuery:       slowThreshold(cfg.slowMS),
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	handler := qd.ServerHandler(srv)
	if cfg.role == "shard" {
		handler = qd.ShardServerHandler(srv)
	}
	what := fmt.Sprintf("serving %s (generation %d, %d rows)", store, srv.Generation(), srv.Rows())
	if label != "" {
		what = label + ": " + what
	}
	return serveHTTP(cfg, handler, what)
}

// runFrontDoor starts the stateless scatter/gather tier over the -peers
// shard addresses, waiting up to -peer-wait for them to come up.
func runFrontDoor(cfg config) error {
	var peers []string
	for _, p := range strings.Split(cfg.peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	if len(peers) == 0 {
		return fmt.Errorf("role frontdoor needs -peers host:port,host:port,...")
	}
	retries := cfg.fdRetries
	if retries <= 0 {
		retries = -1 // flag 0 means no retries; the option's 0 means default
	}
	opt := qd.FrontDoorOptions{Timeout: cfg.fdTimeout, Retries: retries, SlowQuery: slowThreshold(cfg.slowMS)}
	var fd *qd.FrontDoor
	var err error
	deadline := time.Now().Add(cfg.fdWait)
	for {
		fd, err = qd.NewFrontDoor(peers, opt)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("peers not ready after %v: %w", cfg.fdWait, err)
		}
		time.Sleep(250 * time.Millisecond)
	}
	rows := 0
	for _, sum := range fd.Summaries() {
		rows += sum.Rows + sum.DeltaRows
	}
	what := fmt.Sprintf("front door over %d shards (%d rows)", fd.NumShards(), rows)
	return serveHTTP(cfg, qd.FrontDoorHandler(fd), what)
}

// slowThreshold maps the -slow-ms flag to the option semantics: 0 on
// the flag disables slow-query accounting (internally negative), any
// positive value is the threshold.
func slowThreshold(ms int) time.Duration {
	if ms <= 0 {
		return -1
	}
	return time.Duration(ms) * time.Millisecond
}

// withPprof mounts net/http/pprof in front of the role handler. The
// pprof mux entries are registered on http.DefaultServeMux by the
// package's init; routing /debug/pprof/ there keeps the role handler's
// own /debug/traces path intact.
func withPprof(handler http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", handler)
	return mux
}

// serveHTTP binds the listener, optionally publishes the bound address to
// -addr-file, and serves until SIGINT/SIGTERM drains it.
func serveHTTP(cfg config, handler http.Handler, what string) error {
	if cfg.pprof {
		handler = withPprof(handler)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if cfg.addrFile != "" {
		tmp := cfg.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, cfg.addrFile); err != nil {
			return err
		}
	}
	log.Printf("%s on http://%s", what, ln.Addr())
	log.Printf(`try: curl -s -X POST http://%s/query -d '{"sql": "..."}'`, ln.Addr())

	httpSrv := &http.Server{Handler: handler}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v, draining", s)
		// Drain in-flight requests (zero failed queries extends to
		// shutdown); fall back to a hard close after a grace period.
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			httpSrv.Close()
		}
		return nil
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// demoPlan synthesizes the ops-log demo table and plans the initial
// layout for a deliberately narrow workload (recent high-severity auth
// traffic). Deterministic: every call with the same rows yields the same
// table and plan, which is what lets independent shard processes
// bootstrap consistent slices.
func demoPlan(rows int) (*qd.Table, *qd.Plan, error) {
	schema := qd.MustSchema([]qd.Column{
		{Name: "event_date", Kind: qd.Numeric, Min: 0, Max: 364},
		{Name: "severity", Kind: qd.Numeric, Min: 0, Max: 9},
		{Name: "service", Kind: qd.Categorical, Dom: 5,
			Dict: []string{"auth", "billing", "frontend", "search", "storage"}},
	})
	rng := rand.New(rand.NewSource(1))
	tbl := qd.NewTable(schema, rows)
	for i := 0; i < rows; i++ {
		service := int64(rng.Intn(5))
		sev := int64(rng.Intn(10))
		if service == 0 {
			sev = int64(5 + rng.Intn(5))
		}
		tbl.AppendRow([]int64{int64(rng.Intn(365)), sev, service})
	}
	ds, err := qd.NewDataset(schema, tbl).WithWorkload(
		"service = 'auth' AND severity >= 8",
		"severity >= 9 AND event_date >= 300",
		"service = 'auth' AND event_date >= 340",
	)
	if err != nil {
		return nil, nil, err
	}
	plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: max(1, rows/64)})
	if err != nil {
		return nil, nil, err
	}
	return tbl, plan, nil
}

// bootstrapDemo materializes the demo table as a standalone generation
// root.
func bootstrapDemo(root string, rows int) error {
	tbl, plan, err := demoPlan(rows)
	if err != nil {
		return err
	}
	return qd.InitServing(root, tbl, plan)
}
