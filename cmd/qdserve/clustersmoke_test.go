package main

// Multi-process cluster smoke: builds the qdserve binary, starts three
// demo shard processes and one front door on ephemeral ports, and drives
// the distributed serving loop end to end — ingest through the front
// door, scattered queries, a forced re-layout on one shard mid-stream,
// and the degradation contract when a shard dies.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

const smokeRows = 20000

// buildQdserve compiles the binary once per test run.
func buildQdserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "qdserve")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

type proc struct {
	cmd  *exec.Cmd
	addr string
	logf string
}

// startProc launches qdserve with -addr 127.0.0.1:0 -addr-file and waits
// for the bound address plus a 200 from /healthz.
func startProc(t *testing.T, bin, dir, name string, args ...string) *proc {
	t.Helper()
	addrFile := filepath.Join(dir, name+".addr")
	logf := filepath.Join(dir, name+".log")
	lf, err := os.Create(logf)
	if err != nil {
		t.Fatal(err)
	}
	full := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, args...)
	cmd := exec.Command(bin, full...)
	cmd.Stdout = lf
	cmd.Stderr = lf
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	p := &proc{cmd: cmd, logf: logf}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
		lf.Close()
	})
	deadline := time.Now().Add(60 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil {
			p.addr = strings.TrimSpace(string(data))
			break
		}
		if time.Now().After(deadline) {
			logs, _ := os.ReadFile(logf)
			t.Fatalf("%s never published its address; log:\n%s", name, logs)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for {
		resp, err := http.Get("http://" + p.addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			logs, _ := os.ReadFile(p.logf)
			t.Fatalf("%s never became healthy; log:\n%s", name, logs)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return resp.StatusCode, out
}

func queryCount(t *testing.T, addr, sql string) (int64, map[string]any) {
	t.Helper()
	code, out := postJSON(t, "http://"+addr+"/query", map[string]string{"sql": sql})
	if code != http.StatusOK {
		t.Fatalf("query %q: status %d (%v)", sql, code, out)
	}
	matched, ok := out["rows_matched"].(float64)
	if !ok {
		t.Fatalf("query %q: no rows_matched in %v", sql, out)
	}
	return int64(matched), out
}

// scrapeMetric fetches GET /metrics and returns the first sample value
// whose line starts with prefix (-1 when absent).
func scrapeMetric(t *testing.T, addr, prefix string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET /metrics Content-Type %q", ct)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	for _, line := range strings.Split(body.String(), "\n") {
		if strings.HasPrefix(line, prefix) {
			var v float64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v); err == nil {
				return v
			}
		}
	}
	return -1
}

// TestStandaloneObsSmoke boots one standalone demo process with -pprof
// and checks the observability surface end to end: /metrics moves with
// traffic, "trace": true returns spans, /debug/traces records them, and
// /debug/pprof answers.
func TestStandaloneObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke")
	}
	bin := buildQdserve(t)
	dir := t.TempDir()
	p := startProc(t, bin, dir, "standalone",
		"-demo", "-store", filepath.Join(dir, "store"),
		"-rows", "5000", "-interval", "0", "-compact-interval", "0",
		"-pprof", "-slow-ms", "1",
	)

	// Labelled series materialize on first use: absent before traffic.
	if got := scrapeMetric(t, p.addr, `qd_queries_total{type="filter"}`); got > 0 {
		t.Fatalf("fresh server qd_queries_total = %v, want absent/0", got)
	}
	code, out := postJSON(t, "http://"+p.addr+"/query",
		map[string]any{"sql": "severity >= 8", "trace": true})
	if code != http.StatusOK {
		t.Fatalf("traced query: status %d (%v)", code, out)
	}
	tr, ok := out["trace"].(map[string]any)
	if !ok {
		t.Fatalf("no trace in response: %v", out)
	}
	spans, _ := tr["spans"].([]any)
	names := map[string]bool{}
	for _, sp := range spans {
		names[sp.(map[string]any)["name"].(string)] = true
	}
	for _, want := range []string{"parse", "block_prune", "scan"} {
		if !names[want] {
			t.Fatalf("trace missing span %q: %v", want, names)
		}
	}
	if got := scrapeMetric(t, p.addr, `qd_queries_total{type="filter"}`); got != 1 {
		t.Fatalf("qd_queries_total = %v, want 1 after one query", got)
	}
	// The slow-query counter is registered (its value depends on actual
	// latency vs -slow-ms; exact accounting is covered in internal/serve).
	if got := scrapeMetric(t, p.addr, "qd_slow_queries_total"); got < 0 {
		t.Fatalf("qd_slow_queries_total missing from /metrics")
	}

	resp, err := http.Get("http://" + p.addr + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var ring map[string]any
	json.NewDecoder(resp.Body).Decode(&ring)
	resp.Body.Close()
	if total, _ := ring["traces_total"].(float64); total < 1 {
		t.Fatalf("/debug/traces total = %v", ring)
	}

	resp, err = http.Get("http://" + p.addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d with -pprof", resp.StatusCode)
	}
}

func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke")
	}
	bin := buildQdserve(t)
	dir := t.TempDir()
	clusterDir := filepath.Join(dir, "cluster")

	const nshards = 3
	var shards []*proc
	var peerAddrs []string
	for i := 0; i < nshards; i++ {
		p := startProc(t, bin, dir, fmt.Sprintf("shard%d", i),
			"-role", "shard", "-demo",
			"-store", clusterDir,
			"-shards", fmt.Sprint(nshards), "-shard-index", fmt.Sprint(i),
			"-rows", fmt.Sprint(smokeRows),
			"-interval", "0", "-compact-interval", "0", "-min-window", "1",
		)
		shards = append(shards, p)
		peerAddrs = append(peerAddrs, p.addr)
	}
	front := startProc(t, bin, dir, "frontdoor",
		"-role", "frontdoor", "-peers", strings.Join(peerAddrs, ","),
		"-shard-retries", "0", "-shard-timeout", "5s",
	)

	// The scattered count must equal the single-table row count: the
	// shards partition the demo table exactly.
	total, out := queryCount(t, front.addr, "severity >= 0")
	if total != smokeRows {
		t.Fatalf("cluster-wide count %d, want %d (%v)", total, smokeRows, out)
	}
	if part, _ := out["partial"].(bool); part {
		t.Fatalf("clean scatter flagged partial: %v", out)
	}
	if st, _ := out["shards_total"].(float64); int(st) != nshards {
		t.Fatalf("shards_total %v, want %d", out["shards_total"], nshards)
	}

	// Every role serves /metrics, and the query above moved the counters:
	// the front door's gather counter and some shard's serve counter.
	if got := scrapeMetric(t, front.addr, `qd_fd_queries_total{type="filter"}`); got < 1 {
		t.Fatalf("front door qd_fd_queries_total = %v, want >= 1", got)
	}
	var shardQueries float64
	for _, p := range shards {
		if v := scrapeMetric(t, p.addr, `qd_queries_total{type="filter"}`); v > 0 {
			shardQueries += v
		}
	}
	if shardQueries < float64(nshards) {
		t.Fatalf("shard qd_queries_total sum = %v, want >= %d (unpruned scatter hits all shards)", shardQueries, nshards)
	}

	// Aggregation through the front door matches the filter count.
	code, agg := postJSON(t, "http://"+front.addr+"/query",
		map[string]string{"sql": "SELECT COUNT(*), MIN(severity), MAX(severity) FROM logs"})
	if code != http.StatusOK {
		t.Fatalf("aggregate: status %d (%v)", code, agg)
	}
	rows, _ := agg["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("aggregate rows: %v", agg)
	}
	aggs := rows[0].(map[string]any)["aggs"].([]any)
	if cnt := aggs[0].(map[string]any)["int"].(float64); int64(cnt) != smokeRows {
		t.Fatalf("COUNT(*) = %v, want %d", cnt, smokeRows)
	}

	// Ingest through the front door: rows land in some shard's delta and
	// are immediately visible cluster-wide.
	code, ing := postJSON(t, "http://"+front.addr+"/ingest", map[string]any{
		"rows": [][]any{{360, 9, "auth"}, {361, 9, "billing"}, {362, 9, "auth"}},
	})
	if code != http.StatusOK {
		t.Fatalf("ingest: status %d (%v)", code, ing)
	}
	if ins, _ := ing["inserted"].(float64); int(ins) != 3 {
		t.Fatalf("ingest inserted %v, want 3", ing)
	}
	total2, _ := queryCount(t, front.addr, "severity >= 0")
	if total2 != smokeRows+3 {
		t.Fatalf("post-ingest count %d, want %d", total2, smokeRows+3)
	}

	// Force a re-layout on shard 0 while a query stream is in flight; the
	// merged counts must stay exact throughout the swap.
	relayoutDone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, "http://"+shards[0].addr+"/relayout", strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("relayout status %d", resp.StatusCode)
			}
		}
		relayoutDone <- err
	}()
	for i := 0; i < 20; i++ {
		if got, _ := queryCount(t, front.addr, "severity >= 0"); got != smokeRows+3 {
			t.Fatalf("mid-relayout count %d, want %d", got, smokeRows+3)
		}
	}
	if err := <-relayoutDone; err != nil {
		t.Fatalf("forced relayout: %v", err)
	}
	if got, _ := queryCount(t, front.addr, "severity >= 0"); got != smokeRows+3 {
		t.Fatalf("post-relayout count %d, want %d", got, smokeRows+3)
	}

	// Kill shard 2 → scatters still answer, flagged partial; only when
	// every owning shard is down does the front door return 503.
	shards[2].cmd.Process.Signal(syscall.SIGKILL)
	shards[2].cmd.Wait()
	code, out = postJSON(t, "http://"+front.addr+"/query", map[string]string{"sql": "severity >= 0"})
	if code != http.StatusOK {
		t.Fatalf("degraded scatter: status %d (%v)", code, out)
	}
	if part, _ := out["partial"].(bool); !part {
		t.Fatalf("degraded scatter not flagged partial: %v", out)
	}
	if failed, _ := out["shards_failed"].(float64); int(failed) != 1 {
		t.Fatalf("shards_failed %v, want 1", out["shards_failed"])
	}

	// Kill the remaining shards: every owner down → 503.
	shards[0].cmd.Process.Signal(syscall.SIGKILL)
	shards[0].cmd.Wait()
	shards[1].cmd.Process.Signal(syscall.SIGKILL)
	shards[1].cmd.Wait()
	code, out = postJSON(t, "http://"+front.addr+"/query", map[string]string{"sql": "severity >= 0"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("all shards down: status %d, want 503 (%v)", code, out)
	}
	if msg, _ := out["error"].(string); msg == "" {
		t.Fatalf("503 body must carry a JSON error: %v", out)
	}
}
