// Command benchdiff compares a directory of freshly generated
// BENCH_<exp>.json files against the checked-in baselines and fails on
// regression. Only the deterministic envelope fields gate: sim_ns
// (cost-model time, bit-identical across machines and parallelism) and
// bytes_read. Wall time and allocs/op are reported in the delta table
// but never gate — they depend on the host.
//
//	benchdiff -baseline . -new /tmp/bench [-tolerance 0.15] [-summary delta.md]
//
// Exit status: 0 all experiments within tolerance, 1 regression (or a
// baseline experiment missing from -new), 2 usage/IO error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// envelope mirrors the gate-relevant subset of qdbench's benchEnvelope.
type envelope struct {
	Experiment  string  `json:"experiment"`
	Commit      string  `json:"commit"`
	Label       string  `json:"label"`
	WallNS      int64   `json:"wall_ns"`
	SimNS       int64   `json:"sim_ns"`
	BytesRead   int64   `json:"bytes_read"`
	SkipRate    float64 `json:"skip_rate"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func readEnvelope(path string) (envelope, error) {
	var e envelope
	data, err := os.ReadFile(path)
	if err != nil {
		return e, err
	}
	if err := json.Unmarshal(data, &e); err != nil {
		return e, fmt.Errorf("%s: %w", path, err)
	}
	if e.Experiment == "" {
		return e, fmt.Errorf("%s: missing experiment field (pre-envelope file? regenerate with UPDATE_BENCH=1)", path)
	}
	return e, nil
}

// delta returns the relative change cur vs base; 0 when base is 0.
func delta(base, cur int64) float64 {
	if base == 0 {
		return 0
	}
	return float64(cur-base) / float64(base)
}

func fmtDelta(d float64) string {
	return fmt.Sprintf("%+.1f%%", 100*d)
}

func main() {
	baseDir := flag.String("baseline", ".", "directory holding the checked-in BENCH_<exp>.json baselines")
	newDir := flag.String("new", "", "directory holding the freshly generated BENCH_<exp>.json files")
	tolerance := flag.Float64("tolerance", 0.15, "allowed relative regression on sim_ns and bytes_read")
	summary := flag.String("summary", "", "optional path to also write the markdown delta table to")
	flag.Parse()
	if *newDir == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}

	baselines, err := filepath.Glob(filepath.Join(*baseDir, "BENCH_*.json"))
	if err != nil || len(baselines) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no BENCH_*.json baselines in %s\n", *baseDir)
		os.Exit(2)
	}
	sort.Strings(baselines)

	var b strings.Builder
	b.WriteString("### Bench regression gate (tolerance ")
	fmt.Fprintf(&b, "%.0f%%, sim_ns + bytes_read)\n\n", 100**tolerance)
	b.WriteString("| experiment | sim_ns base → new | Δ sim | bytes base → new | Δ bytes | wall Δ | status |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")

	failed := false
	for _, basePath := range baselines {
		name := filepath.Base(basePath)
		base, err := readEnvelope(basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: baseline %v\n", err)
			os.Exit(2)
		}
		newPath := filepath.Join(*newDir, name)
		cur, err := readEnvelope(newPath)
		if err != nil {
			fmt.Fprintf(&b, "| %s | %d → ? | — | %d → ? | — | — | MISSING |\n",
				base.Experiment, base.SimNS, base.BytesRead)
			fmt.Fprintf(os.Stderr, "benchdiff: %s present in baseline but not regenerated: %v\n", name, err)
			failed = true
			continue
		}
		simD, bytesD := delta(base.SimNS, cur.SimNS), delta(base.BytesRead, cur.BytesRead)
		wallD := delta(base.WallNS, cur.WallNS)
		status := "ok"
		if simD > *tolerance || bytesD > *tolerance {
			status = "REGRESSION"
			failed = true
		} else if simD < -*tolerance || bytesD < -*tolerance {
			status = "improved" // large improvement: consider UPDATE_BENCH=1 to ratchet
		}
		fmt.Fprintf(&b, "| %s | %d → %d | %s | %d → %d | %s | %s | %s |\n",
			base.Experiment, base.SimNS, cur.SimNS, fmtDelta(simD),
			base.BytesRead, cur.BytesRead, fmtDelta(bytesD), fmtDelta(wallD), status)
	}

	table := b.String()
	fmt.Print(table)
	if *summary != "" {
		if err := os.WriteFile(*summary, []byte(table), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: write summary: %v\n", err)
			os.Exit(2)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "\nbenchdiff: regression beyond tolerance (or missing experiment) — investigate, or regenerate baselines with UPDATE_BENCH=1 scripts/bench.sh if the change is intentional")
		os.Exit(1)
	}
	fmt.Println("\nbenchdiff: all experiments within tolerance")
}
