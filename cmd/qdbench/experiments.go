package main

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/router"
	"repro/internal/workload"
	"repro/qd"
)

// expTable2 regenerates Table 2: percentage of tuples accessed under each
// layout scheme, for TPC-H and both ErrorLog workloads.
func expTable2(cfg config) error {
	fmt.Println("Table 2: logical I/O — % tuples accessed (lower is better)")
	fmt.Printf("%-12s %10s %10s %10s %10s %10s %12s\n",
		"workload", "baseline", "BU", "BU+", "greedy", "RL", "selectivity")

	type wl struct {
		name     string
		spec     *workload.Spec
		b        int
		rangeCol int
	}
	wls := []wl{
		{"TPC-H", workload.TPCH(workload.TPCHConfig{Rows: cfg.rows, Seed: cfg.seed}),
			cfg.rows / 770, -1}, // paper: b=100K of 77M ≈ 1/770 of the data
		{"ErrLog-Int", workload.ErrorLogInt(workload.ErrorLogConfig{Rows: cfg.rows, NumQueries: cfg.queries, Seed: cfg.seed}),
			cfg.rows / 2000, 0}, // paper: b=50K of 100M
		{"ErrLog-Ext", workload.ErrorLogExt(workload.ErrorLogConfig{Rows: cfg.rows, NumQueries: cfg.queries, Seed: cfg.seed}),
			cfg.rows / 1620, 0},
	}
	for _, w := range wls {
		if w.b < 16 {
			w.b = 16
		}
		rangeCol := -1
		if w.rangeCol >= 0 {
			rangeCol = workload.IngestColumn(w.spec.Table.Schema)
		}
		ls, err := buildAll(w.spec, w.b, rangeCol, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", w.name, err)
		}
		sel := ls.ds.Selectivity()
		fmt.Printf("%-12s %10s %10s %10s %10s %10s %12s\n", w.name,
			pct(ls.baseline.AccessedFraction(w.spec.Queries)),
			pct(ls.bu.AccessedFraction(w.spec.Queries)),
			pct(ls.buPlus.AccessedFraction(w.spec.Queries)),
			pct(ls.greedy.AccessedFraction(w.spec.Queries)),
			pct(ls.rlLayout.AccessedFraction(w.spec.Queries)),
			pct(sel))
	}
	fmt.Println("\npaper (Table 2): TPC-H 56/46.1/26.3/25.8; ErrLog-Int 100/5.6*/3.1/0.4; ErrLog-Ext 100/12.2*/1.7/0.2 (* = BU+)")
	return nil
}

// expFig3 regenerates the Sec. 5.1 microbenchmark (Figure 3).
func expFig3(cfg config) error {
	spec := workload.Fig3(cfg.rows, cfg.seed)
	ds := dataset(spec)
	base := qd.PlanOptions{MinBlockSize: cfg.rows / 200, Cuts: toCuts(spec.Cuts)}
	gPlan, err := planWith("greedy", ds, base)
	if err != nil {
		return err
	}
	gFrac := gPlan.AccessedFraction(nil)
	rlOpt := base
	rlOpt.Hidden = 32
	rlOpt.MaxEpisodes = cfg.episodes
	rlOpt.Seed = cfg.seed
	rPlan, err := planWith("woodblock", ds, rlOpt)
	if err != nil {
		return err
	}
	rFrac := rPlan.AccessedFraction(nil)
	fmt.Println("Figure 3 micro: disjunctive queries")
	fmt.Printf("greedy scan ratio:    %s  (paper: 50.5%%)\n", pct(gFrac))
	fmt.Printf("woodblock scan ratio: %s  (paper: 10.4%%)\n", pct(rFrac))
	fmt.Printf("improvement:          %.1fx (paper: 4.8x)\n", gFrac/rFrac)
	return nil
}

// expFig4 regenerates the Sec. 6.2 overlap microbenchmark (Figure 4).
func expFig4(cfg config) error {
	armN := cfg.rows / 4
	spec := workload.Fig4(armN, cfg.seed)
	ds := dataset(spec)
	opt := qd.PlanOptions{MinBlockSize: armN, Cuts: toCuts(spec.Cuts)}
	plainPlan, err := planWith("greedy", ds, opt)
	if err != nil {
		return err
	}
	ovPlan, err := planWith("overlap", ds, opt)
	if err != nil {
		return err
	}
	var plainAcc, ovAcc int64
	for _, q := range spec.Queries {
		plainAcc += plainPlan.Layout.AccessedTuples(q)
		ovAcc += ovPlan.Overlap.AccessedTuples(q, spec.Table.Schema)
	}
	ideal := int64(4 * (armN + 1))
	fmt.Println("Figure 4 micro: replicating one record removes cross-block fetches")
	fmt.Printf("queries select:        %d tuples total (4 x (N+1))\n", ideal)
	fmt.Printf("plain qd-tree reads:   %d tuples (3N extra, paper's analysis)\n", plainAcc)
	fmt.Printf("overlap layout reads:  %d tuples\n", ovAcc)
	fmt.Printf("storage overhead:      %.4f%% (paper: 'virtually no extra storage')\n", ovPlan.Overlap.StorageOverhead()*100)
	return nil
}

// expFig5 regenerates Figure 5: per-template TPC-H runtimes under an
// engine profile, bottom-up (BU+) vs qd-tree.
func expFig5(cfg config, engine string) error {
	prof := qd.EngineSpark
	if engine == "dbms" {
		prof = qd.EngineDBMS
	}
	spec := workload.TPCH(workload.TPCHConfig{Rows: cfg.rows, Seed: cfg.seed})
	b := cfg.rows / 770
	if b < 16 {
		b = 16
	}
	ds := dataset(spec)
	gPlan, err := planWith("greedy", ds, qd.PlanOptions{MinBlockSize: b, Cuts: toCuts(spec.Cuts)})
	if err != nil {
		return err
	}
	buPlan, err := planBottomUp(spec, b, 0.10)
	if err != nil {
		return err
	}

	dir, cleanup, err := tempDir(cfg, "fig5-"+engine)
	if err != nil {
		return err
	}
	defer cleanup()
	qdStore, err := qd.WriteStore(dir+"/qd", spec.Table, gPlan.Layout)
	if err != nil {
		return err
	}
	buStore, err := qd.WriteStore(dir+"/bu", spec.Table, buPlan.Layout)
	if err != nil {
		return err
	}
	qdEng, err := qd.NewEngine(qdStore, gPlan, prof, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		return err
	}
	defer qdEng.Close()
	buEng, err := qd.NewEngine(buStore, buPlan, prof, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		return err
	}
	defer buEng.Close()

	qdWL, err := qdEng.Workload(spec.Queries)
	if err != nil {
		return err
	}
	buWL, err := buEng.Workload(spec.Queries)
	if err != nil {
		return err
	}
	qdTimes := make([]time.Duration, len(qdWL.Results))
	buTimes := make([]time.Duration, len(buWL.Results))
	for i := range qdWL.Results {
		qdTimes[i] = qdWL.Results[i].SimTime
		buTimes[i] = buWL.Results[i].SimTime
	}
	qdByT := groupByTemplate(spec.Queries, qdTimes)
	buByT := groupByTemplate(spec.Queries, buTimes)

	fmt.Printf("Figure 5 (%s profile): mean simulated runtime per template\n", prof.Name)
	fmt.Printf("%-6s %14s %14s %9s\n", "tmpl", "bottom-up", "qd-tree", "speedup")
	for _, k := range sortedTemplates(qdByT) {
		bu, qdt := meanSim(buByT[k]), meanSim(qdByT[k])
		sp := float64(bu) / float64(qdt+1)
		fmt.Printf("%-6s %14s %14s %8.1fx\n", k, bu.Round(time.Microsecond), qdt.Round(time.Microsecond), sp)
	}
	fmt.Printf("TOTAL  %14s %14s %8.1fx  (paper: 1.6x spark / 1.3x dbms overall)\n",
		buWL.TotalSimTime.Round(time.Millisecond), qdWL.TotalSimTime.Round(time.Millisecond),
		float64(buWL.TotalSimTime)/float64(qdWL.TotalSimTime+1))
	return nil
}

// expFig6a regenerates the data-routing throughput series (Figure 6a).
func expFig6a(cfg config) error {
	spec := workload.TPCH(workload.TPCHConfig{Rows: cfg.rows, Seed: cfg.seed})
	b := cfg.rows / 770
	if b < 16 {
		b = 16
	}
	plan, err := planWith("greedy", dataset(spec), qd.PlanOptions{MinBlockSize: b, Cuts: toCuts(spec.Cuts)})
	if err != nil {
		return err
	}
	fmt.Println("Figure 6a: data-routing throughput (records/s) vs threads")
	fmt.Printf("%-8s %14s %12s\n", "threads", "records/s", "elapsed")
	for _, threads := range []int{1, 2, 4, 8, 16, 32, 64} {
		res := router.MeasureThroughput(plan.Tree, spec.Table, threads, 4096)
		fmt.Printf("%-8d %14.0f %12s\n", threads, res.RecordsPS, res.Elapsed.Round(time.Millisecond))
	}
	fmt.Println("(paper: linear scaling to 16 threads, 400K rec/s at 64 — Python impl)")
	return nil
}

// expFig6b regenerates the query-routing latency CDF (Figure 6b).
func expFig6b(cfg config) error {
	spec := workload.TPCH(workload.TPCHConfig{Rows: cfg.rows, Seed: cfg.seed})
	b := cfg.rows / 770
	if b < 16 {
		b = 16
	}
	// Planning routes the table and freezes leaf descriptions, so the
	// tree is deployment-ready for the router.
	plan, err := planWith("greedy", dataset(spec), qd.PlanOptions{MinBlockSize: b, Cuts: toCuts(spec.Cuts)})
	if err != nil {
		return err
	}
	lat := router.Latencies(plan.Tree, spec.Queries)
	vals := make([]float64, len(lat))
	for i, l := range lat {
		vals[i] = float64(l.Microseconds())
	}
	sorted, fracs := router.CDF(vals)
	fmt.Printf("Figure 6b: query-routing latency CDF over %d queries, %d leaves\n",
		len(spec.Queries), len(plan.Tree.Leaves()))
	for _, p := range []float64{0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		idx := int(p*float64(len(sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		fmt.Printf("p%-4.0f %10.0f us (cumulative %.2f)\n", p*100, sorted[idx], fracs[idx])
	}
	fmt.Println("(paper: max < 16ms, most < 10ms — Python impl)")
	return nil
}

// expFig7 regenerates Figures 7a/7b: aggregate ErrorLog runtimes for BU+,
// qd-tree with routing, and qd-tree without routing.
func expFig7(cfg config) error {
	for _, w := range []struct {
		name string
		spec *workload.Spec
		div  int
	}{
		{"ErrorLog-Int (Fig 7a)", workload.ErrorLogInt(workload.ErrorLogConfig{Rows: cfg.rows, NumQueries: cfg.queries, Seed: cfg.seed}), 2000},
		{"ErrorLog-Ext (Fig 7b)", workload.ErrorLogExt(workload.ErrorLogConfig{Rows: cfg.rows, NumQueries: cfg.queries, Seed: cfg.seed}), 1620},
	} {
		b := cfg.rows / w.div
		if b < 16 {
			b = 16
		}
		gPlan, err := planWith("greedy", dataset(w.spec), qd.PlanOptions{MinBlockSize: b, Cuts: toCuts(w.spec.Cuts)})
		if err != nil {
			return err
		}
		buPlan, err := planBottomUp(w.spec, b, 0.10)
		if err != nil {
			return err
		}
		// Inner function so engines and the temp dir release per workload.
		buTotal, qdTotal, nrTotal, err := func() (bu, qdt, nr time.Duration, err error) {
			dir, cleanup, err := tempDir(cfg, "fig7")
			if err != nil {
				return 0, 0, 0, err
			}
			defer cleanup()
			qdStore, err := qd.WriteStore(dir+"/qd", w.spec.Table, gPlan.Layout)
			if err != nil {
				return 0, 0, 0, err
			}
			buStore, err := qd.WriteStore(dir+"/bu", w.spec.Table, buPlan.Layout)
			if err != nil {
				return 0, 0, 0, err
			}
			buEng, err := qd.NewEngine(buStore, buPlan, qd.EngineSpark, qd.ExecOptions{Parallelism: 1})
			if err != nil {
				return 0, 0, 0, err
			}
			defer buEng.Close()
			qdEng, err := qd.NewEngine(qdStore, gPlan, qd.EngineSpark, qd.ExecOptions{Parallelism: 1})
			if err != nil {
				return 0, 0, 0, err
			}
			defer qdEng.Close()
			nrEng, err := qd.NewEngine(qdStore, gPlan, qd.EngineSpark, qd.ExecOptions{Parallelism: 1})
			if err != nil {
				return 0, 0, 0, err
			}
			nrEng.WithMode(qd.NoRoute)
			buWL, err := buEng.Workload(w.spec.Queries)
			if err != nil {
				return 0, 0, 0, err
			}
			qdWL, err := qdEng.Workload(w.spec.Queries)
			if err != nil {
				return 0, 0, 0, err
			}
			nrWL, err := nrEng.Workload(w.spec.Queries)
			if err != nil {
				return 0, 0, 0, err
			}
			return buWL.TotalSimTime, qdWL.TotalSimTime, nrWL.TotalSimTime, nil
		}()
		if err != nil {
			return err
		}
		fmt.Printf("%s: aggregate simulated runtime over %d queries\n", w.name, len(w.spec.Queries))
		fmt.Printf("  BU+:              %12s\n", buTotal.Round(time.Millisecond))
		fmt.Printf("  qd-tree:          %12s  (%.1fx over BU+; paper: 14x int / 5x ext)\n",
			qdTotal.Round(time.Millisecond), float64(buTotal)/float64(qdTotal+1))
		fmt.Printf("  qd-tree no route: %12s\n", nrTotal.Round(time.Millisecond))
	}
	return nil
}

// expFig7c regenerates the per-query speedup CDF of Figure 7c.
func expFig7c(cfg config) error {
	fmt.Println("Figure 7c: CDF of per-query speedups of qd-tree over BU+")
	for _, w := range []struct {
		name string
		spec *workload.Spec
		div  int
	}{
		{"ErrorLog-Int", workload.ErrorLogInt(workload.ErrorLogConfig{Rows: cfg.rows, NumQueries: cfg.queries, Seed: cfg.seed}), 2000},
		{"ErrorLog-Ext", workload.ErrorLogExt(workload.ErrorLogConfig{Rows: cfg.rows, NumQueries: cfg.queries, Seed: cfg.seed}), 1620},
	} {
		b := cfg.rows / w.div
		if b < 16 {
			b = 16
		}
		gPlan, err := planWith("greedy", dataset(w.spec), qd.PlanOptions{MinBlockSize: b, Cuts: toCuts(w.spec.Cuts)})
		if err != nil {
			return err
		}
		buPlan, err := planBottomUp(w.spec, b, 0.10)
		if err != nil {
			return err
		}
		speedups := make([]float64, 0, len(w.spec.Queries))
		for _, q := range w.spec.Queries {
			bu := float64(buPlan.Layout.AccessedTuples(q))
			qdt := float64(gPlan.Layout.AccessedTuples(q))
			speedups = append(speedups, (bu+1)/(qdt+1))
		}
		sorted, _ := router.CDF(speedups)
		fmt.Printf("%s:\n", w.name)
		for _, p := range []float64{0.25, 0.5, 0.75, 0.9} {
			idx := int(p * float64(len(sorted)))
			if idx >= len(sorted) {
				idx = len(sorted) - 1
			}
			fmt.Printf("  p%-3.0f speedup %8.1fx\n", p*100, sorted[idx])
		}
	}
	fmt.Println("(paper: 50% of queries ≥25x int / ≥20x ext)")
	return nil
}

// expFig8 regenerates the Woodblock learning curves (Figure 8).
func expFig8(cfg config) error {
	for _, w := range []struct {
		name string
		spec *workload.Spec
		div  int
	}{
		{"TPC-H", workload.TPCH(workload.TPCHConfig{Rows: cfg.rows, Seed: cfg.seed}), 770},
		{"ErrorLog-Ext", workload.ErrorLogExt(workload.ErrorLogConfig{Rows: cfg.rows, NumQueries: cfg.queries, Seed: cfg.seed}), 1620},
	} {
		b := cfg.rows / w.div
		if b < 16 {
			b = 16
		}
		fmt.Printf("Figure 8 — %s learning curve (scan ratio vs elapsed):\n", w.name)
		plan, err := planWith("woodblock", dataset(w.spec), qd.PlanOptions{
			MinBlockSize: b, Cuts: toCuts(w.spec.Cuts),
			Hidden: cfg.hidden, MaxEpisodes: cfg.episodes, Seed: cfg.seed})
		if err != nil {
			return err
		}
		res := plan.RL
		step := len(res.Curve) / 8
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(res.Curve); i += step {
			pt := res.Curve[i]
			fmt.Printf("  ep %3d  %8s  ratio %s  best %s\n",
				pt.Episode, pt.Elapsed.Round(time.Millisecond), pct(pt.Ratio), pct(pt.Best))
		}
		last := res.Curve[len(res.Curve)-1]
		fmt.Printf("  final best: %s after %d episodes (%s)\n", pct(last.Best), res.Episodes, last.Elapsed.Round(time.Millisecond))
	}
	fmt.Println("(paper: TPC-H improves from ~39% to ~26% in 10 min; ErrLog starts high-quality immediately)")
	return nil
}

// expFig9 regenerates the cut-interpretation analysis (Figure 9).
func expFig9(cfg config) error {
	spec := workload.TPCH(workload.TPCHConfig{Rows: cfg.rows, Seed: cfg.seed})
	b := cfg.rows / 770
	if b < 16 {
		b = 16
	}
	plan, err := planWith("woodblock", dataset(spec), qd.PlanOptions{
		MinBlockSize: b, Cuts: toCuts(spec.Cuts),
		Hidden: cfg.hidden, MaxEpisodes: cfg.episodes, Seed: cfg.seed})
	if err != nil {
		return err
	}
	counts := plan.Tree.CutCounts()
	fmt.Printf("Figure 9: cuts per column across depths of the best Woodblock tree (depth %d, %d leaves)\n",
		plan.Tree.Depth(), len(plan.Tree.Leaves()))
	type kv struct {
		col   string
		total int
	}
	var items []kv
	for col, perDepth := range counts {
		t := 0
		for _, n := range perDepth {
			t += n
		}
		items = append(items, kv{col, t})
	}
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].total > items[j-1].total; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	for _, it := range items {
		fmt.Printf("  %-16s %4d cuts  per-depth %v\n", it.col, it.total, counts[it.col])
	}
	if root := plan.Tree.Root; root.Cut != nil {
		fmt.Printf("root cut: %s\n", root.Cut.StringWith(spec.Table.Schema.Names(), spec.ACs))
	}
	return nil
}

// expRobust regenerates the Sec. 7.4.1 robustness check: a tree built on
// the 150 train queries evaluated on 10x unseen test queries.
func expRobust(cfg config) error {
	spec := workload.TPCH(workload.TPCHConfig{Rows: cfg.rows, Seed: cfg.seed})
	b := cfg.rows / 770
	if b < 16 {
		b = 16
	}
	plan, err := planWith("greedy", dataset(spec), qd.PlanOptions{MinBlockSize: b, Cuts: toCuts(spec.Cuts)})
	if err != nil {
		return err
	}
	trainFrac := plan.AccessedFraction(nil)
	test := workload.TPCHQueries(spec.Table.Schema, 10*len(spec.Queries)/len(workload.TPCHTemplates)/1, cfg.seed+999)
	testFrac := plan.AccessedFraction(test)
	fmt.Println("Robustness (Sec. 7.4.1): fixed tree, unseen query literals")
	fmt.Printf("train queries (%4d): accessed %s\n", len(spec.Queries), pct(trainFrac))
	fmt.Printf("test  queries (%4d): accessed %s\n", len(test), pct(testFrac))
	fmt.Printf("ratio: %.3f (paper: 7776ms vs 7752ms ≈ 1.003)\n", testFrac/trainFrac)
	return nil
}

// expBuildTime regenerates the Sec. 7.6 construction-time comparison.
func expBuildTime(cfg config) error {
	spec := workload.ErrorLogInt(workload.ErrorLogConfig{Rows: cfg.rows, NumQueries: cfg.queries, Seed: cfg.seed})
	b := cfg.rows / 2000
	if b < 16 {
		b = 16
	}
	ls, err := buildAll(spec, b, workload.IngestColumn(spec.Table.Schema), cfg)
	if err != nil {
		return err
	}
	fmt.Println("Section 7.6: wall-clock time to produce layouts (ErrorLog-Int)")
	fmt.Printf("bottom-up: %12s (paper: 432 min at 100M rows)\n", ls.times["bottom-up"].Round(time.Millisecond))
	fmt.Printf("greedy:    %12s (paper: 12 min)\n", ls.times["greedy"].Round(time.Millisecond))
	fmt.Printf("woodblock: %12s to best of %d episodes (paper: top trees within 30 s)\n",
		ls.times["woodblock"].Round(time.Millisecond), ls.rlResult.Episodes)
	return nil
}

// expParScan measures the parallel block-scan engine: the same multi-query
// workload executed sequentially and with a worker pool, both as wall
// clock (measured) and under the deterministic critical-path time model.
// Counts must be bit-identical at every parallelism level.
func expParScan(cfg config) error {
	spec := workload.TPCH(workload.TPCHConfig{Rows: cfg.rows, Seed: cfg.seed})
	b := cfg.rows / 770
	if b < 16 {
		b = 16
	}
	plan, err := planWith("greedy", dataset(spec), qd.PlanOptions{MinBlockSize: b, Cuts: toCuts(spec.Cuts)})
	if err != nil {
		return err
	}
	dir, cleanup, err := tempDir(cfg, "parscan")
	if err != nil {
		return err
	}
	defer cleanup()
	store, err := qd.WriteStore(dir, spec.Table, plan.Layout)
	if err != nil {
		return err
	}

	maxP := cfg.parallel
	if maxP <= 0 {
		maxP = runtime.GOMAXPROCS(0)
	}
	var levels []int
	for p := 1; p <= maxP; p *= 2 {
		levels = append(levels, p)
	}
	if levels[len(levels)-1] != maxP {
		levels = append(levels, maxP)
	}

	baseEng, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		return err
	}
	defer baseEng.Close()
	base, err := baseEng.Workload(spec.Queries)
	if err != nil {
		return err
	}
	fmt.Printf("Parallel scan engine: %d queries, %d blocks, read-once/filter-many\n",
		len(spec.Queries), plan.Layout.NumBlocks())
	fmt.Printf("%-8s %12s %12s %10s %12s %10s %8s\n",
		"workers", "wall", "wall-speedup", "sim", "sim-speedup", "physreads", "counts")
	var scanned, totalRows, bytesRead int64
	for _, r := range base.Results {
		scanned += r.RowsScanned
		totalRows = r.RowsTotal
		bytesRead += r.BytesRead
	}
	skipRate := 1.0
	if totalRows > 0 {
		skipRate = 1 - float64(scanned)/float64(totalRows*int64(len(base.Results)))
	}
	type parscanLevel struct {
		Workers       int     `json:"workers"`
		WallNS        int64   `json:"wall_ns"`
		SimNS         int64   `json:"sim_ns"`
		WallSpeedup   float64 `json:"wall_speedup"`
		SimSpeedup    float64 `json:"sim_speedup"`
		PhysicalReads int     `json:"physical_reads"`
		PhysicalBytes int64   `json:"physical_bytes"`
		Identical     bool    `json:"counts_identical"`
	}
	bench := struct {
		Experiment string         `json:"experiment"`
		Rows       int            `json:"rows"`
		Queries    int            `json:"queries"`
		Blocks     int            `json:"blocks"`
		BytesRead  int64          `json:"bytes_read"`
		SkipRate   float64        `json:"skip_rate"`
		Levels     []parscanLevel `json:"levels"`
	}{
		Experiment: "parscan",
		Rows:       spec.Table.N,
		Queries:    len(spec.Queries),
		Blocks:     plan.Layout.NumBlocks(),
		BytesRead:  bytesRead,
		SkipRate:   skipRate,
	}
	for _, p := range levels {
		eng, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: p, ShareReads: true})
		if err != nil {
			return err
		}
		wr, err := eng.Workload(spec.Queries)
		if err != nil {
			return err
		}
		identical := true
		for i := range wr.Results {
			if wr.Results[i].ScanStats != base.Results[i].ScanStats {
				identical = false
				break
			}
		}
		status := "same"
		if !identical {
			status = "DIFFER"
		}
		fmt.Printf("%-8d %12s %11.2fx %10s %11.2fx %10d %8s\n",
			p, wr.WallTime.Round(time.Microsecond),
			float64(base.WallTime)/float64(wr.WallTime+1),
			wr.SimTime.Round(time.Microsecond),
			float64(base.SimTime)/float64(wr.SimTime+1),
			wr.PhysicalReads, status)
		bench.Levels = append(bench.Levels, parscanLevel{
			Workers:       p,
			WallNS:        int64(wr.WallTime),
			SimNS:         int64(wr.SimTime),
			WallSpeedup:   float64(base.WallTime) / float64(wr.WallTime+1),
			SimSpeedup:    float64(base.SimTime) / float64(wr.SimTime+1),
			PhysicalReads: wr.PhysicalReads,
			PhysicalBytes: wr.PhysicalBytes,
			Identical:     identical,
		})
	}

	// Envelope headline: the widest level, plus a steady-state allocs/op
	// sample from one extra workload pass.
	allocEng, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: maxP, ShareReads: true})
	if err != nil {
		return err
	}
	defer allocEng.Close()
	if _, err := allocEng.Workload(spec.Queries); err != nil { // warm pools
		return err
	}
	allocsPerOp, err := measureAllocs(len(spec.Queries), func() error {
		_, err := allocEng.Workload(spec.Queries)
		return err
	})
	if err != nil {
		return err
	}
	last := bench.Levels[len(bench.Levels)-1]
	return writeBenchJSON(cfg, benchEnvelope{
		Experiment:  "parscan",
		Rows:        spec.Table.N,
		Queries:     len(spec.Queries),
		WallNS:      last.WallNS,
		SimNS:       last.SimNS,
		BytesRead:   bench.BytesRead,
		SkipRate:    bench.SkipRate,
		AllocsPerOp: allocsPerOp,
	}, bench)
}

// expLayout plans the TPC-H micro workload with the strategy named by
// -strategy, resolved through the planner registry — the generic
// single-strategy entry point.
func expLayout(cfg config) error {
	spec := workload.TPCH(workload.TPCHConfig{Rows: cfg.rows, Seed: cfg.seed})
	b := cfg.rows / 770
	if b < 16 {
		b = 16
	}
	ds := dataset(spec)
	plan, err := planWith(cfg.strategy, ds, qd.PlanOptions{
		MinBlockSize: b, Cuts: toCuts(spec.Cuts), Seed: cfg.seed,
		Hidden: cfg.hidden, MaxEpisodes: cfg.episodes})
	if err != nil {
		return err
	}
	fmt.Printf("strategy %s on TPC-H (%d rows, %d queries, b=%d):\n",
		plan.Strategy, spec.Table.N, len(spec.Queries), b)
	fmt.Printf("  blocks:            %d\n", plan.Layout.NumBlocks())
	fmt.Printf("  accessed fraction: %s (selectivity bound %s)\n",
		pct(plan.AccessedFraction(nil)), pct(ds.Selectivity()))
	fmt.Printf("  planned in:        %s\n", plan.Elapsed.Round(time.Millisecond))
	return nil
}

// expAgg measures the vectorized aggregation layer on the ErrorLog-Int
// demo: a SELECT/GROUP BY workload executed through the pushdown engine
// (encoded-column kernels, zone-map shortcuts) and through a naive
// decode-then-aggregate baseline, verified row-for-row against the
// reference evaluator.
func expAgg(cfg config) error {
	spec := workload.ErrorLogInt(workload.ErrorLogConfig{Rows: cfg.rows, NumQueries: cfg.queries, Seed: cfg.seed})
	b := cfg.rows / 2000
	if b < 16 {
		b = 16
	}
	plan, err := planWith("greedy", dataset(spec), qd.PlanOptions{MinBlockSize: b, Cuts: toCuts(spec.Cuts)})
	if err != nil {
		return err
	}
	dir, cleanup, err := tempDir(cfg, "agg")
	if err != nil {
		return err
	}
	defer cleanup()
	store, err := qd.WriteStore(dir, spec.Table, plan.Layout)
	if err != nil {
		return err
	}
	eng, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: cfg.parallel})
	if err != nil {
		return err
	}
	defer eng.Close()

	sqls := []string{
		"SELECT COUNT(*) FROM logs",
		"SELECT MIN(ingest_date), MAX(ingest_date) FROM logs",
		"SELECT SUM(x_num06), COUNT(*) FROM logs WHERE ingest_date >= 48 AND validity = 'VALID'",
		"SELECT event_type, COUNT(*), AVG(x_num06) FROM logs WHERE validity = 'VALID' GROUP BY event_type",
		"SELECT validity, event_type, COUNT(*), SUM(x_num09) FROM logs WHERE ingest_date < 120 GROUP BY validity, event_type",
	}
	aqs, _, err := qd.ParseAggWorkload(spec.Table.Schema, sqls)
	if err != nil {
		return err
	}

	fmt.Printf("Vectorized aggregation: ErrorLog-Int, %d rows, %d blocks, v2 store\n",
		spec.Table.N, plan.Layout.NumBlocks())
	fmt.Printf("%-4s %-7s %12s %12s %8s %10s %8s %s\n",
		"q", "rows", "push-sim", "naive-sim", "speedup", "bytes-read", "result", "statement")
	type aggRecord struct {
		SQL        string  `json:"sql"`
		ResultRows int     `json:"result_rows"`
		WallNS     int64   `json:"wall_ns"`
		PushSimNS  int64   `json:"push_sim_ns"`
		NaiveSimNS int64   `json:"naive_sim_ns"`
		Speedup    float64 `json:"speedup"`
		BytesRead  int64   `json:"bytes_read"`
		SkipRate   float64 `json:"skip_rate"`
		Identical  bool    `json:"identical"`
	}
	bench := struct {
		Experiment         string      `json:"experiment"`
		Rows               int         `json:"rows"`
		Blocks             int         `json:"blocks"`
		Queries            []aggRecord `json:"queries"`
		FilteredSumSpeedup float64     `json:"filtered_sum_speedup"`
	}{Experiment: "agg", Rows: spec.Table.N, Blocks: plan.Layout.NumBlocks()}
	var filteredSumSpeedup float64
	for i, aq := range aqs {
		push, err := eng.Aggregate(aq)
		if err != nil {
			return err
		}
		naive, err := qd.AggregateNaive(store, plan, aq, qd.EngineSpark, qd.RouteQdTree)
		if err != nil {
			return err
		}
		truth := qd.ReferenceAggregate(spec.Table, aq, plan.ACs)
		status := "same"
		if !sameRows(push.Rows, truth) || !sameRows(naive.Rows, truth) {
			status = "DIFFER"
		}
		speedup := float64(naive.SimTime) / float64(push.SimTime+1)
		if i == 2 {
			filteredSumSpeedup = speedup
		}
		spStr := fmt.Sprintf("%7.1fx", speedup)
		if push.SimTime == 0 {
			spStr = "   meta" // answered from catalog metadata: no physical work
		}
		fmt.Printf("%-4d %-7d %12s %12s %8s %9dK %8s %s\n",
			i, len(push.Rows), push.SimTime.Round(time.Microsecond), naive.SimTime.Round(time.Microsecond),
			spStr, push.BytesRead/1000, status, sqls[i])
		bench.Queries = append(bench.Queries, aggRecord{
			SQL:        sqls[i],
			ResultRows: len(push.Rows),
			WallNS:     int64(push.WallTime),
			PushSimNS:  int64(push.SimTime),
			NaiveSimNS: int64(naive.SimTime),
			Speedup:    speedup,
			BytesRead:  push.BytesRead,
			SkipRate:   push.SkipRate(),
			Identical:  status == "same",
		})
	}

	// Show one grouped result with dictionary keys (the event_type cut).
	res, err := eng.Aggregate(aqs[3])
	if err != nil {
		return err
	}
	fmt.Println("\ngrouped result (q3):")
	dict := spec.Table.Schema.Cols[res.GroupBy[0]].Dict
	for _, row := range res.Rows {
		name := fmt.Sprintf("%d", row.Key[0])
		if row.Key[0] >= 0 && row.Key[0] < int64(len(dict)) {
			name = dict[row.Key[0]]
		}
		fmt.Printf("  %-18s count %8d  avg %12.2f\n", name, row.Vals[0].Int, row.Vals[1].Float)
	}
	fmt.Printf("\nacceptance: filtered-SUM pushdown speedup %.2fx (target >= 1.5x)\n", filteredSumSpeedup)
	bench.FilteredSumSpeedup = filteredSumSpeedup

	env := benchEnvelope{Experiment: "agg", Rows: spec.Table.N, Queries: len(bench.Queries)}
	for _, r := range bench.Queries {
		env.WallNS += r.WallNS
		env.SimNS += r.PushSimNS
		env.BytesRead += r.BytesRead
		env.SkipRate += r.SkipRate / float64(len(bench.Queries))
	}
	if _, err := eng.Aggregate(aqs[2]); err != nil { // warm pools
		return err
	}
	env.AllocsPerOp, err = measureAllocs(len(aqs), func() error {
		for _, aq := range aqs {
			if _, err := eng.Aggregate(aq); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return writeBenchJSON(cfg, env, bench)
}

// sameRows compares aggregate result sets exactly (AVG within 1e-9).
func sameRows(a, b qd.Rows) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Key) != len(b[i].Key) || len(a[i].Vals) != len(b[i].Vals) {
			return false
		}
		for k := range a[i].Key {
			if a[i].Key[k] != b[i].Key[k] {
				return false
			}
		}
		for v := range a[i].Vals {
			x, y := a[i].Vals[v], b[i].Vals[v]
			if x.Valid != y.Valid || x.Int != y.Int {
				return false
			}
			rel := math.Abs(x.Float - y.Float)
			if y.Float != 0 {
				rel /= math.Abs(y.Float)
			}
			if rel > 1e-9 {
				return false
			}
		}
	}
	return true
}

// expTwoTree regenerates the Sec. 6.3 two-tree replication experiment.
func expTwoTree(cfg config) error {
	spec := workload.TPCH(workload.TPCHConfig{Rows: cfg.rows, Seed: cfg.seed})
	b := cfg.rows / 770
	if b < 16 {
		b = 16
	}
	ds := dataset(spec)
	opt := qd.PlanOptions{MinBlockSize: b, Cuts: toCuts(spec.Cuts)}
	singlePlan, err := planWith("greedy", ds, opt)
	if err != nil {
		return err
	}
	ttPlan, err := planWith("twotree", ds, opt)
	if err != nil {
		return err
	}
	tt := ttPlan.TwoTree
	served := map[int]int{}
	for _, c := range tt.PerQueryChoice {
		served[c]++
	}
	// Worst-decile improvement: mean access over the worst 10% of queries.
	worstMean := func(acc func(qd.Query) int64) float64 {
		vals := make([]float64, 0, len(spec.Queries))
		for _, q := range spec.Queries {
			vals = append(vals, float64(acc(q)))
		}
		sorted, _ := router.CDF(vals)
		tail := sorted[len(sorted)*9/10:]
		s := 0.0
		for _, v := range tail {
			s += v
		}
		return s / float64(len(tail))
	}
	fmt.Println("Two-tree replication (Sec. 6.3): 2x storage for better worst-case skipping")
	fmt.Printf("one tree:  accessed %s   worst-decile mean %.0f tuples\n",
		pct(singlePlan.AccessedFraction(nil)), worstMean(singlePlan.Layout.AccessedTuples))
	fmt.Printf("two trees: accessed %s   worst-decile mean %.0f tuples\n",
		pct(tt.AccessedFraction(spec.Queries)), worstMean(tt.AccessedTuples))
	fmt.Printf("dispatch: %d queries -> T1, %d queries -> T2\n", served[1], served[2])
	return nil
}

// expCompress measures block format v2 on the categorical-heavy
// ErrorLog-Int workload: the same greedy layout materialized as a v1
// (plain fixed-width) and a v2 (encoded) store, compared on on-disk
// footprint, per-column encoding choices, and scan cost under both engine
// profiles — with a bit-identical match-count check between the formats.
func expCompress(cfg config) error {
	spec := workload.ErrorLogInt(workload.ErrorLogConfig{Rows: cfg.rows, NumQueries: cfg.queries, Seed: cfg.seed})
	b := cfg.rows / 2000
	if b < 16 {
		b = 16
	}
	plan, err := planWith("greedy", dataset(spec), qd.PlanOptions{MinBlockSize: b, Cuts: toCuts(spec.Cuts)})
	if err != nil {
		return err
	}
	dir, cleanup, err := tempDir(cfg, "compress")
	if err != nil {
		return err
	}
	defer cleanup()
	v1, err := qd.WriteStore(dir+"/v1", spec.Table, plan.Layout, qd.StoreOptions{FormatVersion: qd.StoreFormatV1})
	if err != nil {
		return err
	}
	v2, err := qd.WriteStore(dir+"/v2", spec.Table, plan.Layout)
	if err != nil {
		return err
	}

	s1, s2 := v1.Sizes(), v2.Sizes()
	fmt.Printf("Block format v2 compression: ErrorLog-Int, %d rows, %d cols, %d blocks\n",
		spec.Table.N, spec.Table.Schema.NumCols(), plan.Layout.NumBlocks())
	fmt.Printf("on-disk payload: v1 %.2f MB (plain)  v2 %.2f MB (encoded)  ratio %.2fx\n",
		float64(s1.EncodedBytes)/1e6, float64(s2.EncodedBytes)/1e6, s2.Ratio())

	type compressColumn struct {
		Name         string  `json:"name"`
		Kind         string  `json:"kind"`
		Encodings    string  `json:"encodings"`
		LogicalBytes int64   `json:"logical_bytes"`
		EncodedBytes int64   `json:"encoded_bytes"`
		Ratio        float64 `json:"ratio"`
	}
	type compressProfile struct {
		Profile   string  `json:"profile"`
		Format    string  `json:"format"`
		SimNS     int64   `json:"sim_ns"`
		WallNS    int64   `json:"wall_ns"`
		BytesRead int64   `json:"bytes_read"`
		Speedup   float64 `json:"speedup"`
		Identical bool    `json:"identical"`
	}
	bench := struct {
		Experiment string            `json:"experiment"`
		Rows       int               `json:"rows"`
		Cols       int               `json:"cols"`
		Blocks     int               `json:"blocks"`
		V1Bytes    int64             `json:"v1_bytes"`
		V2Bytes    int64             `json:"v2_bytes"`
		Ratio      float64           `json:"ratio"`
		Columns    []compressColumn  `json:"columns"`
		Profiles   []compressProfile `json:"profiles"`
	}{
		Experiment: "compress",
		Rows:       spec.Table.N,
		Cols:       spec.Table.Schema.NumCols(),
		Blocks:     plan.Layout.NumBlocks(),
		V1Bytes:    s1.EncodedBytes,
		V2Bytes:    s2.EncodedBytes,
		Ratio:      s2.Ratio(),
	}

	fmt.Printf("\nper-column encodings (first 12 of %d columns):\n", spec.Table.Schema.NumCols())
	fmt.Printf("%-14s %-12s %-26s %10s %10s %7s\n", "column", "kind", "encodings(blocks)", "logical", "encoded", "ratio")
	for i, cs := range v2.ColumnStats() {
		encs := ""
		for _, e := range []qd.ColumnEncoding{qd.EncPlain, qd.EncFOR, qd.EncDict, qd.EncRLE} {
			if n := cs.Encs[e]; n > 0 {
				if encs != "" {
					encs += " "
				}
				encs += fmt.Sprintf("%s:%d", e, n)
			}
		}
		bench.Columns = append(bench.Columns, compressColumn{
			Name: cs.Name, Kind: fmt.Sprintf("%v", cs.Kind), Encodings: encs,
			LogicalBytes: cs.Sizes.LogicalBytes, EncodedBytes: cs.Sizes.EncodedBytes,
			Ratio: cs.Sizes.Ratio(),
		})
		if i >= 12 {
			continue
		}
		fmt.Printf("%-14s %-12s %-26s %9dK %9dK %6.1fx\n",
			cs.Name, cs.Kind, encs, cs.Sizes.LogicalBytes/1000, cs.Sizes.EncodedBytes/1000, cs.Sizes.Ratio())
	}

	fmt.Printf("\nworkload scan comparison (%d queries, qd-tree routing):\n", len(spec.Queries))
	fmt.Printf("%-8s %-4s %12s %12s %12s %12s %9s %8s\n",
		"profile", "fmt", "sim-time", "bytes-read", "sim-MB/s", "wall", "speedup", "counts")
	for _, prof := range []qd.EngineProfile{qd.EngineSpark, qd.EngineDBMS} {
		var baseSim time.Duration
		var baseCounts []int64
		for fi, store := range []*qd.BlockStore{v1, v2} {
			eng, err := qd.NewEngine(store, plan, prof, qd.ExecOptions{Parallelism: 1, ShareReads: true})
			if err != nil {
				return err
			}
			wr, err := eng.Workload(spec.Queries)
			if err != nil {
				eng.Close()
				return err
			}
			var bytes, logical int64
			counts := make([]int64, len(wr.Results))
			for i, r := range wr.Results {
				bytes += r.BytesRead
				logical += r.BytesLogical
				counts[i] = r.RowsMatched
			}
			status := "base"
			speedup := 1.0
			if fi == 0 {
				baseSim = wr.TotalSimTime
				baseCounts = counts
			} else {
				speedup = float64(baseSim) / float64(wr.TotalSimTime+1)
				status = "same"
				for i := range counts {
					if counts[i] != baseCounts[i] {
						status = "DIFFER"
						break
					}
				}
			}
			name := "v1"
			if fi == 1 {
				name = "v2"
			}
			fmt.Printf("%-8s %-4s %12s %11dK %12.0f %12s %8.2fx %8s\n",
				prof.Name, name, wr.TotalSimTime.Round(time.Microsecond), bytes/1000,
				float64(logical)/float64(wr.TotalSimTime+1)*1e3,
				wr.WallTime.Round(time.Microsecond), speedup, status)
			bench.Profiles = append(bench.Profiles, compressProfile{
				Profile: prof.Name, Format: name,
				SimNS: int64(wr.TotalSimTime), WallNS: int64(wr.WallTime),
				BytesRead: bytes, Speedup: speedup, Identical: status != "DIFFER",
			})
			eng.Close()
		}
	}
	fmt.Printf("\nacceptance: on-disk reduction %.2fx (target >= 2x); scan SimTime charges encoded bytes\n", s2.Ratio())

	// Envelope headline: the Spark-profile v2 scan (profiles[1] — the
	// encoded format the store actually serves).
	env := benchEnvelope{Experiment: "compress", Rows: spec.Table.N, Queries: len(spec.Queries)}
	if len(bench.Profiles) > 1 {
		env.WallNS = bench.Profiles[1].WallNS
		env.SimNS = bench.Profiles[1].SimNS
		env.BytesRead = bench.Profiles[1].BytesRead
	}
	return writeBenchJSON(cfg, env, bench)
}

// expIngest measures the streaming-ingest lifecycle: rows inserted into
// the LSM delta are visible immediately but scanned unpruned, so the
// workload's skip rate degrades as the delta fills; one compaction routes
// them through the live qd-tree into a fresh generation and restores the
// skip rate to what a cold bulk load of the same rows achieves.
func expIngest(cfg config) error {
	spec := workload.ErrorLogInt(workload.ErrorLogConfig{Rows: cfg.rows, NumQueries: cfg.queries, Seed: cfg.seed})
	b := cfg.rows / 2000
	if b < 16 {
		b = 16
	}
	popt := qd.PlanOptions{MinBlockSize: b, Cuts: toCuts(spec.Cuts)}

	// 80% of the table bulk-loads as the base; 20% arrives as the stream.
	nbase := spec.Table.N * 4 / 5
	base := qd.NewTable(spec.Table.Schema, nbase)
	stream := make([][]int64, 0, spec.Table.N-nbase)
	row := make([]int64, spec.Table.Schema.NumCols())
	for r := 0; r < spec.Table.N; r++ {
		row = spec.Table.Row(r, row)
		if r < nbase {
			base.AppendRow(row)
		} else {
			stream = append(stream, append([]int64(nil), row...))
		}
	}

	plan, err := planWith("greedy", qd.NewDataset(nil, base).WithQueries(spec.Queries, spec.ACs), popt)
	if err != nil {
		return err
	}
	root, cleanup, err := tempDir(cfg, "ingest")
	if err != nil {
		return err
	}
	defer cleanup()
	if err := qd.InitServing(root, base, plan); err != nil {
		return err
	}
	srv, err := qd.NewServer(root, qd.ServeOptions{
		Strategy: "greedy",
		Plan:     popt,
		Profile:  qd.EngineSpark,
		Exec:     qd.ExecOptions{Parallelism: cfg.parallel, ShareReads: true},
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	eval := func() (skip float64, sim time.Duration, err error) {
		var scanned, total int64
		for _, q := range spec.Queries {
			res, err := srv.Query(q)
			if err != nil {
				return 0, 0, err
			}
			scanned += res.RowsScanned
			total += res.RowsTotal
			sim += res.SimTime
		}
		if total > 0 {
			skip = 1 - float64(scanned)/float64(total)
		}
		return skip, sim / time.Duration(len(spec.Queries)), nil
	}

	fmt.Printf("Streaming ingest: ErrorLog-Int, %d base rows (%d blocks) + %d streamed rows, %d queries\n",
		base.N, plan.Layout.NumBlocks(), len(stream), len(spec.Queries))
	fmt.Printf("%-12s %10s %7s %9s %12s\n", "phase", "delta-rows", "fill%", "skip", "mean-sim")

	type ingestPhase struct {
		Phase     string  `json:"phase"`
		DeltaRows int     `json:"delta_rows"`
		FillPct   float64 `json:"fill_pct"`
		SkipRate  float64 `json:"skip_rate"`
		MeanSimNS int64   `json:"mean_sim_ns"`
	}
	bench := struct {
		Experiment         string        `json:"experiment"`
		BaseRows           int           `json:"base_rows"`
		StreamRows         int           `json:"stream_rows"`
		Blocks             int           `json:"blocks"`
		Queries            int           `json:"queries"`
		Phases             []ingestPhase `json:"phases"`
		Compactions        int64         `json:"compactions"`
		CompactedRows      int64         `json:"compacted_rows"`
		WriteAmplification float64       `json:"write_amplification"`
		PostSkipRate       float64       `json:"post_skip_rate"`
		ColdSkipRate       float64       `json:"cold_skip_rate"`
		SkipDiffPts        float64       `json:"skip_diff_pts"`
	}{
		Experiment: "ingest",
		BaseRows:   base.N,
		StreamRows: len(stream),
		Blocks:     plan.Layout.NumBlocks(),
		Queries:    len(spec.Queries),
	}

	report := func(phase string) error {
		skip, sim, err := eval()
		if err != nil {
			return err
		}
		st := srv.Stats()
		fill := 100 * float64(st.DeltaRows) / float64(base.N+len(stream))
		fmt.Printf("%-12s %10d %6.1f%% %8.1f%% %12s\n",
			phase, st.DeltaRows, fill, 100*skip, sim.Round(time.Microsecond))
		bench.Phases = append(bench.Phases, ingestPhase{
			Phase: phase, DeltaRows: st.DeltaRows, FillPct: fill,
			SkipRate: skip, MeanSimNS: int64(sim),
		})
		return nil
	}
	if err := report("base"); err != nil {
		return err
	}
	steps := 4
	for s := 0; s < steps; s++ {
		lo, hi := s*len(stream)/steps, (s+1)*len(stream)/steps
		if err := srv.Insert(stream[lo:hi]); err != nil {
			return err
		}
		if err := report(fmt.Sprintf("ingest %d/%d", s+1, steps)); err != nil {
			return err
		}
	}

	if err := srv.Compact(); err != nil {
		return err
	}
	postSkip, postSim, err := eval()
	if err != nil {
		return err
	}
	st := srv.Stats()
	if rep := st.LastCompact; rep != nil {
		fmt.Printf("\ncompaction: %d rows folded via %q into generation %d, %dK written, freshness erased %.2fs\n",
			rep.Rows, rep.Routed, rep.Generation, rep.BytesWritten/1000, rep.FreshnessSeconds)
	}
	fmt.Printf("write amplification %.1fx over %d compacted rows (%d compactions)\n",
		st.WriteAmplification, st.CompactedRows, st.Compactions)
	fmt.Printf("%-12s %10d %6.1f%% %8.1f%% %12s\n", "compacted", st.DeltaRows, 0.0, 100*postSkip, postSim.Round(time.Microsecond))
	bench.Phases = append(bench.Phases, ingestPhase{
		Phase: "compacted", DeltaRows: st.DeltaRows,
		SkipRate: postSkip, MeanSimNS: int64(postSim),
	})
	bench.Compactions = int64(st.Compactions)
	bench.CompactedRows = int64(st.CompactedRows)
	bench.WriteAmplification = st.WriteAmplification

	// Cold baseline: bulk-load base+stream in one shot and replan.
	coldPlan, err := planWith("greedy", dataset(spec), popt)
	if err != nil {
		return err
	}
	coldDir, coldCleanup, err := tempDir(cfg, "ingest-cold")
	if err != nil {
		return err
	}
	defer coldCleanup()
	coldStore, err := qd.WriteStore(coldDir, spec.Table, coldPlan.Layout)
	if err != nil {
		return err
	}
	coldEng, err := qd.NewEngine(coldStore, coldPlan, qd.EngineSpark, qd.ExecOptions{Parallelism: cfg.parallel})
	if err != nil {
		return err
	}
	defer coldEng.Close()
	var coldScanned, coldTotal int64
	for _, q := range spec.Queries {
		res, err := coldEng.Query(q)
		if err != nil {
			return err
		}
		coldScanned += res.RowsScanned
		coldTotal += res.RowsTotal
	}
	coldSkip := 1 - float64(coldScanned)/float64(coldTotal)

	diff := 100 * math.Abs(postSkip-coldSkip)
	fmt.Printf("\nacceptance: post-compaction skip %.1f%% vs cold bulk-load %.1f%% (|diff| %.1f pts, target <= 5)\n",
		100*postSkip, 100*coldSkip, diff)
	bench.PostSkipRate = postSkip
	bench.ColdSkipRate = coldSkip
	bench.SkipDiffPts = diff

	// Envelope headline: post-compaction steady state (mean sim over the
	// workload; the ingest experiment tracks no byte counters).
	return writeBenchJSON(cfg, benchEnvelope{
		Experiment: "ingest",
		Rows:       base.N + len(stream),
		Queries:    len(spec.Queries),
		SimNS:      int64(postSim),
		SkipRate:   postSkip,
	}, bench)
}
