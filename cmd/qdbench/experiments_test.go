package main

import "testing"

// TestExperimentSmoke runs the deterministic experiments at toy scale —
// the same code paths CI's bench-smoke job drives at full size, but
// cheap enough for the unit suite (and counted by the coverage gate).
// Acceptance thresholds inside the experiments (compression speedup,
// ingest skip-rate recovery) must hold even at this scale.
func TestExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke at -short")
	}
	cfg := config{rows: 6000, queries: 40, episodes: 2, hidden: 8, seed: 42, parallel: 2, strategy: "greedy",
		outDir: t.TempDir()} // BENCH_*.json and block stores land here, not the package dir
	for _, tc := range []struct {
		name string
		run  func(config) error
	}{
		{"table2", expTable2},
		{"fig3", expFig3},
		{"fig4", expFig4},
		{"fig6a", expFig6a},
		{"fig6b", expFig6b},
		{"fig9", expFig9},
		{"layout", expLayout},
		{"agg", expAgg},
		{"compress", expCompress},
		{"ingest", expIngest},
		{"scatter", expScatter},
		{"rows", expRows},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}
