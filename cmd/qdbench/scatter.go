package main

// Experiment "scatter": distributed serving through the cluster front
// door. The learned layout is partitioned across 1/2/4 store nodes
// (in-process HTTP servers), the same ErrorLog workload is scattered
// through the front door at each width, and every merged answer is
// checked against single-node ground truth. Reported per width: wall
// and (critical-path) sim time, bytes read, skip rate, and how many
// shard contacts the summary envelopes pruned away.

import (
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/workload"
	"repro/qd"
)

func expScatter(cfg config) error {
	nq := cfg.queries
	if nq > 100 {
		nq = 100 // each query is an HTTP scatter; keep -exp all bounded
	}
	spec := workload.ErrorLogInt(workload.ErrorLogConfig{Rows: cfg.rows, NumQueries: nq, Seed: cfg.seed})
	b := cfg.rows / 2000
	if b < 16 {
		b = 16
	}
	plan, err := planWith("greedy", dataset(spec), qd.PlanOptions{MinBlockSize: b, Cuts: toCuts(spec.Cuts)})
	if err != nil {
		return err
	}
	names := spec.Table.Schema.Names()
	matchTruth := qd.PerQueryMatches(spec.Table, spec.Queries, plan.ACs)

	aggSQLs := []string{
		"SELECT COUNT(*) FROM logs",
		"SELECT SUM(x_num06), COUNT(*) FROM logs WHERE ingest_date >= 48 AND validity = 'VALID'",
		"SELECT event_type, COUNT(*), AVG(x_num06) FROM logs WHERE validity = 'VALID' GROUP BY event_type",
	}
	aggQueries, _, err := qd.ParseAggWorkload(spec.Table.Schema, aggSQLs)
	if err != nil {
		return err
	}
	aggTruth := make([]qd.Rows, len(aggQueries))
	for i, aq := range aggQueries {
		aggTruth[i] = qd.ReferenceAggregate(spec.Table, aq, plan.ACs)
	}

	type scatterRecord struct {
		Shards          int     `json:"shards"`
		WallNS          int64   `json:"wall_ns"`
		SimNS           int64   `json:"sim_ns"`
		BytesRead       int64   `json:"bytes_read"`
		SkipRate        float64 `json:"skip_rate"`
		ShardsContacted int     `json:"shards_contacted"`
		ShardsPruned    int     `json:"shards_pruned"`
		ProbePruned     int     `json:"probe_pruned"`
		Identical       bool    `json:"identical"`
	}
	bench := struct {
		Experiment string          `json:"experiment"`
		Rows       int             `json:"rows"`
		Queries    int             `json:"queries"`
		Blocks     int             `json:"blocks"`
		Widths     []scatterRecord `json:"widths"`
	}{Experiment: "scatter", Rows: spec.Table.N, Queries: len(spec.Queries), Blocks: plan.Layout.NumBlocks()}

	fmt.Printf("Scatter/gather front door: ErrorLog-Int, %d rows, %d blocks, %d filter + %d agg queries\n",
		spec.Table.N, plan.Layout.NumBlocks(), len(spec.Queries), len(aggSQLs))
	fmt.Printf("%-8s %12s %12s %10s %8s %12s %8s\n",
		"shards", "wall", "sim", "bytes", "skip", "contacted", "result")

	for _, nshards := range []int{1, 2, 4} {
		dir, cleanup, err := tempDir(cfg, fmt.Sprintf("scatter%d", nshards))
		if err != nil {
			return err
		}
		m, err := qd.InitCluster(dir, spec.Table, plan, nshards)
		if err != nil {
			cleanup()
			return err
		}
		var addrs []string
		for _, asn := range m.Shards {
			s, err := qd.NewServer(qd.ClusterShardRoot(dir, asn.ID), qd.ServeOptions{
				ACs:        plan.ACs,
				ShardLabel: fmt.Sprintf("shard_%03d", asn.ID),
			})
			if err != nil {
				cleanup()
				return err
			}
			hs := httptest.NewServer(qd.ShardServerHandler(s))
			addrs = append(addrs, hs.URL)
			defer func() { hs.Close(); s.Close() }()
		}
		fd, err := qd.NewFrontDoor(addrs, qd.FrontDoorOptions{ACs: plan.ACs})
		if err != nil {
			cleanup()
			return err
		}

		rec := scatterRecord{Shards: nshards, Identical: true}
		var scanned, total int64
		start := time.Now()
		for i, q := range spec.Queries {
			res, err := fd.Query(q.StringWith(names, plan.ACs))
			if err != nil {
				cleanup()
				return fmt.Errorf("shards=%d query %d: %w", nshards, i, err)
			}
			if res.Filter.RowsMatched != matchTruth[i] {
				rec.Identical = false
			}
			rec.SimNS += int64(res.Filter.SimTime)
			rec.BytesRead += res.Filter.BytesRead
			scanned += res.Filter.RowsScanned
			total += res.Filter.RowsTotal
			rec.ShardsContacted += res.ShardsContacted
			rec.ShardsPruned += res.ShardsPruned
		}
		for i, sql := range aggSQLs {
			res, err := fd.Query(sql)
			if err != nil {
				cleanup()
				return fmt.Errorf("shards=%d agg %d: %w", nshards, i, err)
			}
			if !sameRows(res.Agg.Rows, aggTruth[i]) {
				rec.Identical = false
			}
			rec.SimNS += int64(res.Agg.SimTime)
			rec.BytesRead += res.Agg.BytesRead
			scanned += res.Agg.RowsScanned
			total += res.Agg.RowsTotal
			rec.ShardsContacted += res.ShardsContacted
			rec.ShardsPruned += res.ShardsPruned
		}
		rec.WallNS = int64(time.Since(start))
		if total > 0 {
			rec.SkipRate = 1 - float64(scanned)/float64(total)
		}

		// An out-of-domain probe must be answered entirely from the
		// cached shard summaries: zero contacts at every width.
		probe, err := fd.Query("ingest_date > 1099511627776")
		if err != nil {
			cleanup()
			return err
		}
		rec.ProbePruned = probe.ShardsPruned
		if probe.ShardsContacted != 0 {
			rec.Identical = false
		}

		status := "same"
		if !rec.Identical {
			status = "DIFFER"
		}
		fmt.Printf("%-8d %12s %12s %9dK %7.1f%% %6d/%-5d %8s\n",
			nshards,
			time.Duration(rec.WallNS).Round(time.Microsecond),
			time.Duration(rec.SimNS).Round(time.Microsecond),
			rec.BytesRead/1000, 100*rec.SkipRate,
			rec.ShardsContacted, rec.ShardsContacted+rec.ShardsPruned, status)
		bench.Widths = append(bench.Widths, rec)
		cleanup()
	}

	// Envelope headline: the widest deployment (last width swept).
	env := benchEnvelope{Experiment: "scatter", Rows: spec.Table.N, Queries: len(spec.Queries) + len(aggSQLs)}
	if n := len(bench.Widths); n > 0 {
		last := bench.Widths[n-1]
		env.WallNS = last.WallNS
		env.SimNS = last.SimNS
		env.BytesRead = last.BytesRead
		env.SkipRate = last.SkipRate
	}
	return writeBenchJSON(cfg, env, bench)
}
