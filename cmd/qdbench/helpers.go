package main

import (
	"encoding/json"
	"fmt"
	"os"
	osexec "os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/workload"
	"repro/qd"
)

// toCuts converts workload candidate cuts into facade cuts.
func toCuts(ps []workload.Pred2Cut) []qd.Cut {
	out := make([]qd.Cut, len(ps))
	for i, p := range ps {
		if p.IsAdv {
			out[i] = qd.AdvancedCut(p.Adv)
		} else {
			out[i] = qd.UnaryCut(p.Pred)
		}
	}
	return out
}

// dataset wraps a generated workload spec as a qd.Dataset.
func dataset(spec *workload.Spec) *qd.Dataset {
	return qd.NewDataset(spec.Table.Schema, spec.Table).WithQueries(spec.Queries, spec.ACs)
}

// planWith resolves a strategy through the planner registry and plans the
// dataset with it — the single path every experiment builds layouts
// through.
func planWith(strategy string, ds *qd.Dataset, opt qd.PlanOptions) (*qd.Plan, error) {
	planner, err := qd.NewPlanner(strategy)
	if err != nil {
		return nil, err
	}
	return planner.Plan(ds, opt)
}

// layouts bundles the five approaches of Sec. 7.3 for one workload.
type layoutSet struct {
	spec     *workload.Spec
	ds       *qd.Dataset
	baseline *qd.Layout
	bu       *qd.Layout // untuned Bottom-Up
	buPlus   *qd.Layout
	greedy   *qd.Layout
	rlLayout *qd.Layout
	rlResult *qd.RLResult
	times    map[string]time.Duration
}

// buildAll constructs every layout for a spec via the planner registry.
// b is the min block size; rangeCol < 0 selects the random baseline
// (TPC-H), otherwise range partitioning on that column (ErrorLog).
func buildAll(spec *workload.Spec, b int, rangeCol int, cfg config) (*layoutSet, error) {
	ds := dataset(spec)
	base := qd.PlanOptions{MinBlockSize: b, Cuts: toCuts(spec.Cuts)}
	ls := &layoutSet{spec: spec, ds: ds, times: make(map[string]time.Duration)}

	gPlan, err := planWith("greedy", ds, base)
	if err != nil {
		return nil, fmt.Errorf("greedy: %w", err)
	}
	ls.greedy = gPlan.Layout
	ls.times["greedy"] = gPlan.Elapsed
	numBlocks := ls.greedy.NumBlocks()
	if numBlocks < 1 {
		numBlocks = 1
	}

	// Baseline with a comparable number of blocks (Sec. 7.1).
	baselineStrategy := "random"
	if rangeCol >= 0 {
		baselineStrategy = "range"
	}
	basePlan, err := planWith(baselineStrategy, ds, qd.PlanOptions{
		NumBlocks: numBlocks, Seed: cfg.seed, RangeColumn: rangeCol})
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	ls.baseline = basePlan.Layout

	buPlan, err := planWith("bottomup", ds, base)
	if err != nil {
		return nil, fmt.Errorf("bottom-up: %w", err)
	}
	ls.times["bottom-up"] = buPlan.Elapsed
	ls.bu = buPlan.Layout

	buPlusOpt := base
	buPlusOpt.SelectivityCap = 0.10
	buPlusPlan, err := planWith("bottomup", ds, buPlusOpt)
	if err != nil {
		return nil, fmt.Errorf("BU+: %w", err)
	}
	ls.buPlus = buPlusPlan.Layout

	rlOpt := base
	rlOpt.Hidden = cfg.hidden
	rlOpt.MaxEpisodes = cfg.episodes
	rlOpt.Seed = cfg.seed
	rlPlan, err := planWith("woodblock", ds, rlOpt)
	if err != nil {
		return nil, fmt.Errorf("woodblock: %w", err)
	}
	ls.times["woodblock"] = rlPlan.Elapsed
	ls.rlResult = rlPlan.RL
	ls.rlLayout = rlPlan.Layout
	return ls, nil
}

// pct formats an access fraction the way Table 2 does.
func pct(f float64) string {
	switch {
	case f >= 0.10:
		return fmt.Sprintf("%.0f%%", f*100)
	case f >= 0.01:
		return fmt.Sprintf("%.1f%%", f*100)
	default:
		return fmt.Sprintf("%.2g%%", f*100)
	}
}

// meanSim returns the mean of a duration slice.
func meanSim(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// groupByTemplate splits TPC-H query results by template id (name "q<t>#<k>").
func groupByTemplate(queries []qd.Query, vals []time.Duration) map[string][]time.Duration {
	out := make(map[string][]time.Duration)
	for i, q := range queries {
		name := q.Name
		if j := strings.IndexByte(name, '#'); j >= 0 {
			name = name[:j]
		}
		out[name] = append(out[name], vals[i])
	}
	return out
}

// sortedTemplates returns template keys in numeric order (q1, q3, ...).
func sortedTemplates(m map[string][]time.Duration) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(keys[i], "q%d", &a)
		fmt.Sscanf(keys[j], "q%d", &b)
		return a < b
	})
	return keys
}

// benchSchemaVersion versions the envelope layout below; bump it when a
// field changes meaning so trajectory tooling can tell eras apart.
const benchSchemaVersion = 1

// benchHistoryCap bounds the trajectory kept inside each BENCH file.
const benchHistoryCap = 24

// benchEnvelope is the common machine-readable header every
// BENCH_<exp>.json shares — the fields the CI regression gate and
// trajectory tooling read without knowing experiment specifics. SimNS
// and BytesRead are deterministic (cost model + pruning), so the gate
// compares those; WallNS and AllocsPerOp are informational (hardware-
// and GC-dependent).
type benchEnvelope struct {
	Experiment    string  `json:"experiment"`
	SchemaVersion int     `json:"schema_version"`
	Commit        string  `json:"commit"`
	Label         string  `json:"label,omitempty"`
	Rows          int     `json:"rows"`
	Queries       int     `json:"queries"`
	WallNS        int64   `json:"wall_ns"`
	SimNS         int64   `json:"sim_ns"`
	BytesRead     int64   `json:"bytes_read"`
	SkipRate      float64 `json:"skip_rate"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
}

// benchFile is the on-disk shape: the current envelope, the
// experiment-specific details, and the envelopes of previous runs
// (newest first) — the before/after trajectory.
type benchFile struct {
	benchEnvelope
	Details any             `json:"details"`
	History []benchEnvelope `json:"history,omitempty"`
}

// writeBenchJSON persists an experiment's machine-readable results as
// BENCH_<name>.json in -bench-dir (falling back to -out, then the
// working directory). If the destination already holds a previous run,
// its envelope is prepended to the history so successive UPDATE_BENCH
// runs accrete a before/after trajectory.
func writeBenchJSON(cfg config, env benchEnvelope, payload any) error {
	dir := cfg.benchDir
	if dir == "" {
		dir = cfg.outDir
	}
	if dir == "" {
		dir = "."
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	env.SchemaVersion = benchSchemaVersion
	env.Commit = benchCommit()
	env.Label = os.Getenv("BENCH_LABEL")
	path := filepath.Join(dir, "BENCH_"+env.Experiment+".json")
	out := benchFile{benchEnvelope: env, Details: payload, History: benchHistory(path)}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

// benchHistory folds the envelope already at path (plus its own
// history) into the next file's history, newest first.
func benchHistory(path string) []benchEnvelope {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var prev benchFile
	if err := json.Unmarshal(data, &prev); err != nil || prev.Experiment == "" {
		return nil
	}
	hist := append([]benchEnvelope{prev.benchEnvelope}, prev.History...)
	if len(hist) > benchHistoryCap {
		hist = hist[:benchHistoryCap]
	}
	return hist
}

// benchCommit resolves the commit an envelope was generated at: CI's
// GITHUB_SHA, else the local git HEAD, else "unknown".
func benchCommit() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	if out, err := osexec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return sha
		}
	}
	return "unknown"
}

// measureAllocs runs fn once and reports heap mallocs per op — an
// informational envelope field (GC timing makes it unfit for gating).
func measureAllocs(ops int, fn func() error) (float64, error) {
	if ops <= 0 {
		return 0, fn()
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	err := fn()
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(ops), err
}

// tempDir resolves the block-store directory.
func tempDir(cfg config, name string) (string, func(), error) {
	if cfg.outDir != "" {
		dir := cfg.outDir + "/" + name
		return dir, func() {}, os.MkdirAll(dir, 0o755)
	}
	dir, err := os.MkdirTemp("", "qdbench-"+name+"-")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

// planBottomUp plans a Bottom-Up layout with the given selectivity cap
// (0.10 = the paper's BU+ tuning).
func planBottomUp(spec *workload.Spec, b int, cap float64) (*qd.Plan, error) {
	return planWith("bottomup", dataset(spec), qd.PlanOptions{
		MinBlockSize: b, Cuts: toCuts(spec.Cuts), SelectivityCap: cap})
}
