package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/bottomup"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/greedy"
	"repro/internal/rl"
	"repro/internal/workload"
)

// toCuts converts workload candidate cuts into core cuts.
func toCuts(ps []workload.Pred2Cut) []core.Cut {
	out := make([]core.Cut, len(ps))
	for i, p := range ps {
		if p.IsAdv {
			out[i] = core.AdvancedCut(p.Adv)
		} else {
			out[i] = core.UnaryCut(p.Pred)
		}
	}
	return out
}

// layouts bundles the five approaches of Sec. 7.3 for one workload.
type layoutSet struct {
	spec     *workload.Spec
	baseline *cost.Layout
	bu       *cost.Layout // untuned Bottom-Up
	buPlus   *cost.Layout
	greedy   *cost.Layout
	rlLayout *cost.Layout
	rlResult *rl.Result
	times    map[string]time.Duration
}

// buildAll constructs every layout for a spec. b is the min block size;
// rangeCol < 0 selects the random baseline (TPC-H), otherwise range
// partitioning on that column (ErrorLog).
func buildAll(spec *workload.Spec, b int, rangeCol int, cfg config) (*layoutSet, error) {
	cuts := toCuts(spec.Cuts)
	ls := &layoutSet{spec: spec, times: make(map[string]time.Duration)}

	gStart := time.Now()
	gTree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
		MinSize: b, Cuts: cuts, Queries: spec.Queries})
	if err != nil {
		return nil, fmt.Errorf("greedy: %w", err)
	}
	ls.times["greedy"] = time.Since(gStart)
	ls.greedy = cost.FromTree("greedy", gTree, spec.Table)
	numBlocks := ls.greedy.NumBlocks()
	if numBlocks < 1 {
		numBlocks = 1
	}

	// Baseline with a comparable number of blocks (Sec. 7.1).
	if rangeCol < 0 {
		ls.baseline, err = randomBaseline(spec, numBlocks, cfg.seed)
	} else {
		ls.baseline, err = rangeBaseline(spec, rangeCol, numBlocks)
	}
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}

	buStart := time.Now()
	buRes, err := bottomup.Build(spec.Table, spec.ACs, bottomup.Options{
		MinSize: b, Cuts: cuts, Queries: spec.Queries})
	if err != nil {
		return nil, fmt.Errorf("bottom-up: %w", err)
	}
	ls.times["bottom-up"] = time.Since(buStart)
	ls.bu = buRes.Layout

	buPlusRes, err := bottomup.Build(spec.Table, spec.ACs, bottomup.Options{
		MinSize: b, Cuts: cuts, Queries: spec.Queries, SelectivityCap: 0.10})
	if err != nil {
		return nil, fmt.Errorf("BU+: %w", err)
	}
	ls.buPlus = buPlusRes.Layout

	rlStart := time.Now()
	ls.rlResult, err = rl.Build(spec.Table, spec.ACs, rl.Options{
		MinSize: b, Cuts: cuts, Queries: spec.Queries,
		Hidden: cfg.hidden, MaxEpisodes: cfg.episodes, Seed: cfg.seed})
	if err != nil {
		return nil, fmt.Errorf("woodblock: %w", err)
	}
	ls.times["woodblock"] = time.Since(rlStart)
	ls.rlLayout = cost.FromTree("woodblock", ls.rlResult.Tree, spec.Table)
	return ls, nil
}

func randomBaseline(spec *workload.Spec, numBlocks int, seed int64) (*cost.Layout, error) {
	return baselines.Random(spec.Table, numBlocks, spec.ACs, seed)
}

func rangeBaseline(spec *workload.Spec, col, numBlocks int) (*cost.Layout, error) {
	return baselines.Range(spec.Table, col, numBlocks, spec.ACs)
}

// pct formats an access fraction the way Table 2 does.
func pct(f float64) string {
	switch {
	case f >= 0.10:
		return fmt.Sprintf("%.0f%%", f*100)
	case f >= 0.01:
		return fmt.Sprintf("%.1f%%", f*100)
	default:
		return fmt.Sprintf("%.2g%%", f*100)
	}
}

// meanSim returns the mean of a duration slice.
func meanSim(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// groupByTemplate splits TPC-H query results by template id (name "q<t>#<k>").
func groupByTemplate(queries []expr.Query, vals []time.Duration) map[string][]time.Duration {
	out := make(map[string][]time.Duration)
	for i, q := range queries {
		name := q.Name
		if j := strings.IndexByte(name, '#'); j >= 0 {
			name = name[:j]
		}
		out[name] = append(out[name], vals[i])
	}
	return out
}

// sortedTemplates returns template keys in numeric order (q1, q3, ...).
func sortedTemplates(m map[string][]time.Duration) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(keys[i], "q%d", &a)
		fmt.Sscanf(keys[j], "q%d", &b)
		return a < b
	})
	return keys
}

// tempDir resolves the block-store directory.
func tempDir(cfg config, name string) (string, func(), error) {
	if cfg.outDir != "" {
		dir := cfg.outDir + "/" + name
		return dir, func() {}, os.MkdirAll(dir, 0o755)
	}
	dir, err := os.MkdirTemp("", "qdbench-"+name+"-")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

// buildBottomUpOpt builds a Bottom-Up layout with the given selectivity
// cap (0.10 = the paper's BU+ tuning).
func buildBottomUpOpt(spec *workload.Spec, b int, cap float64) (*cost.Layout, error) {
	res, err := bottomup.Build(spec.Table, spec.ACs, bottomup.Options{
		MinSize: b, Cuts: toCuts(spec.Cuts), Queries: spec.Queries, SelectivityCap: cap})
	if err != nil {
		return nil, err
	}
	return res.Layout, nil
}
