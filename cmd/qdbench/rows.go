package main

// Experiment "rows": the row-returning executor. Three measurements over
// the ErrorLog-Int workload, each pinned to ground truth before timing:
//
//  1. TopK (bounded heap + SMA short-circuit) vs the full-sort-then-limit
//     baseline (SelectNaive): decode everything, sort everything, cut to
//     LIMIT. The acceptance target is >= 2x sim speedup.
//  2. Code-space join probe (both sides share the event_type dictionary,
//     build table indexed by code) vs the decoded hash-partition path,
//     forced by re-typing the same key column as Numeric over the very
//     same column data.
//  3. Plan-cache hit vs miss parse latency through the serving handle —
//     the repeated-statement shape serving traffic actually has.

import (
	"fmt"
	"time"

	"repro/internal/serve"
	"repro/internal/table"
	"repro/internal/workload"
	"repro/qd"
)

func sameTuples(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func expRows(cfg config) error {
	spec := workload.ErrorLogInt(workload.ErrorLogConfig{Rows: cfg.rows, NumQueries: cfg.queries, Seed: cfg.seed})
	b := cfg.rows / 2000
	if b < 16 {
		b = 16
	}
	plan, err := planWith("greedy", dataset(spec), qd.PlanOptions{MinBlockSize: b, Cuts: toCuts(spec.Cuts)})
	if err != nil {
		return err
	}
	dir, cleanup, err := tempDir(cfg, "rows")
	if err != nil {
		return err
	}
	defer cleanup()
	store, err := qd.WriteStore(dir+"/code", spec.Table, plan.Layout)
	if err != nil {
		return err
	}
	eng, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: cfg.parallel})
	if err != nil {
		return err
	}
	defer eng.Close()
	schema := spec.Table.Schema
	lastHour := schema.Cols[schema.MustCol("ingest_date")].Max

	// --- 1. TopK vs full-sort-then-limit -------------------------------
	topSQLs := []string{
		"SELECT ingest_date, x_num06 FROM logs ORDER BY ingest_date DESC LIMIT 10",
		"SELECT x_num06, event_type FROM logs WHERE validity = 'VALID' ORDER BY x_num06 DESC LIMIT 100",
		fmt.Sprintf("SELECT ingest_date, x_num09 FROM logs WHERE ingest_date >= %d ORDER BY x_num09, ingest_date LIMIT 25", lastHour-24),
	}
	type topkRecord struct {
		SQL        string  `json:"sql"`
		ResultRows int     `json:"result_rows"`
		TopKSimNS  int64   `json:"topk_sim_ns"`
		NaiveSimNS int64   `json:"naive_sim_ns"`
		Speedup    float64 `json:"speedup"`
		BytesRead  int64   `json:"bytes_read"`
		// RowsMatched counts filter survivors in the blocks the TopK
		// path actually visited. When the short-circuit stopped early it
		// is only a lower bound (flagged below), so nothing — not the
		// identical check here, not the CI gate — may compare it against
		// the naive path's exhaustive count. Identical compares result
		// tuples only.
		RowsMatched           int64 `json:"rows_matched"`
		RowsMatchedLowerBound bool  `json:"rows_matched_lower_bound"`
		Identical             bool  `json:"identical"`
	}
	bench := struct {
		Experiment        string       `json:"experiment"`
		Rows              int          `json:"rows"`
		Blocks            int          `json:"blocks"`
		TopK              []topkRecord `json:"topk"`
		TopKSpeedup       float64      `json:"topk_speedup"`
		JoinCodeWallNS    int64        `json:"join_code_wall_ns"`
		JoinDecodedWallNS int64        `json:"join_decoded_wall_ns"`
		JoinSpeedup       float64      `json:"join_speedup"`
		JoinRowsBuild     int64        `json:"join_rows_build"`
		JoinRowsProbe     int64        `json:"join_rows_probe"`
		PlanMissNS        int64        `json:"plan_miss_ns"`
		PlanHitNS         int64        `json:"plan_hit_ns"`
		PlanCacheSpeedup  float64      `json:"plan_cache_speedup"`
	}{Experiment: "rows", Rows: spec.Table.N, Blocks: plan.Layout.NumBlocks()}

	fmt.Printf("Row executor: ErrorLog-Int, %d rows, %d blocks, v2 store\n\n", spec.Table.N, plan.Layout.NumBlocks())
	fmt.Printf("%-4s %-5s %12s %12s %8s %s\n", "q", "rows", "topk-sim", "naive-sim", "speedup", "statement")
	minSpeedup := 0.0
	var topkSkip float64
	for i, sql := range topSQLs {
		stmt, _, err := qd.ParseRowSelect(schema, sql)
		if err != nil {
			return err
		}
		res, err := eng.Select(stmt)
		if err != nil {
			return err
		}
		naive, err := qd.SelectNaive(store, plan, *stmt.Row, qd.EngineSpark, qd.RouteQdTree)
		if err != nil {
			return err
		}
		truth := qd.ReferenceSelect(spec.Table, *stmt.Row, plan.ACs)
		// Result rows only: RowsMatched is a lower bound under the TopK
		// short-circuit and must never be compared to the naive path's.
		same := sameTuples(res.Rows, truth) && sameTuples(naive.Rows, truth)
		speedup := float64(naive.SimTime) / float64(res.SimTime+1)
		topkSkip += res.SkipRate() / float64(len(topSQLs))
		if i == 0 || speedup < minSpeedup {
			minSpeedup = speedup
		}
		fmt.Printf("%-4d %-5d %12s %12s %7.1fx %s\n",
			i, len(res.Rows), res.SimTime.Round(time.Microsecond), naive.SimTime.Round(time.Microsecond), speedup, sql)
		bench.TopK = append(bench.TopK, topkRecord{
			SQL: sql, ResultRows: len(res.Rows),
			TopKSimNS: int64(res.SimTime), NaiveSimNS: int64(naive.SimTime),
			Speedup: speedup, BytesRead: res.BytesRead,
			RowsMatched: res.RowsMatched, RowsMatchedLowerBound: res.MatchedLowerBound,
			Identical: same,
		})
		if !same {
			return fmt.Errorf("rows: %q differs from reference", sql)
		}
	}
	bench.TopKSpeedup = minSpeedup

	// --- 2. Code-space vs decoded join probe ---------------------------
	// Same key column, same values, two physical paths: the categorical
	// schema joins in dictionary code space; re-typing event_type as
	// Numeric over the identical column slices forces the generic
	// hash-partition build with decoded keys.
	evt := schema.MustCol("event_type")
	ing := schema.MustCol("ingest_date")
	jq := qd.JoinQuery{
		Name: "evt_join", LeftTable: "a", RightTable: "b", LeftKey: evt, RightKey: evt,
		Cols:        []qd.ColRef{{Side: 0, Col: ing}, {Side: 1, Col: ing}, {Side: 0, Col: evt}},
		LeftFilter:  qd.Query{Root: qd.P(qd.Pred{Col: ing, Op: qd.Lt, Literal: 24})},
		RightFilter: qd.Query{Root: qd.P(qd.Pred{Col: ing, Op: qd.Ge, Literal: lastHour - 23})},
		OrderBy:     []qd.OrderKey{{Pos: 0}, {Pos: 1}}, Limit: 50,
	}
	jres, err := eng.Select(qd.RowStmt{Join: &jq})
	if err != nil {
		return err
	}
	if jres.Join == nil || !jres.Join.CodeSpace {
		return fmt.Errorf("rows: event_type join did not take the code-space path: %+v", jres.Join)
	}
	numCols := append([]qd.Column(nil), schema.Cols...)
	numCols[evt] = qd.Column{Name: "event_type", Kind: qd.Numeric, Min: 0, Max: numCols[evt].Dom - 1}
	numSchema, err := qd.NewSchema(numCols)
	if err != nil {
		return err
	}
	numTbl, err := table.FromColumns(numSchema, spec.Table.Cols)
	if err != nil {
		return err
	}
	numStore, err := qd.WriteStore(dir+"/decoded", numTbl, plan.Layout)
	if err != nil {
		return err
	}
	numEng, err := qd.NewEngine(numStore, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: cfg.parallel})
	if err != nil {
		return err
	}
	defer numEng.Close()
	nres, err := numEng.Select(qd.RowStmt{Join: &jq})
	if err != nil {
		return err
	}
	if nres.Join == nil || nres.Join.CodeSpace {
		return fmt.Errorf("rows: numeric-key join must take the hash path: %+v", nres.Join)
	}
	if truth := qd.ReferenceJoin(spec.Table, jq, plan.ACs); !sameTuples(jres.Rows, truth) || !sameTuples(nres.Rows, truth) {
		return fmt.Errorf("rows: join paths disagree with reference")
	}
	// Sim time charges the scan I/O — identical for both paths — so the
	// probe-path difference is a wall-clock measurement: best of 3 runs
	// each, over day-wide sides so build+probe dominate.
	codeWall, decodedWall := jres.WallTime, nres.WallTime
	for i := 0; i < 2; i++ {
		if r, err := eng.Select(qd.RowStmt{Join: &jq}); err == nil && r.WallTime < codeWall {
			codeWall = r.WallTime
		}
		if r, err := numEng.Select(qd.RowStmt{Join: &jq}); err == nil && r.WallTime < decodedWall {
			decodedWall = r.WallTime
		}
	}
	joinSpeedup := float64(decodedWall) / float64(codeWall+1)
	fmt.Printf("\njoin on event_type (build %d, probe %d, %d partitions):\n",
		jres.Join.RowsBuild, jres.Join.RowsProbe, nres.Join.PartitionCount)
	fmt.Printf("  code-space %12s   decoded-hash %12s   wall speedup %.2fx\n",
		codeWall.Round(time.Microsecond), decodedWall.Round(time.Microsecond), joinSpeedup)
	bench.JoinCodeWallNS = int64(codeWall)
	bench.JoinDecodedWallNS = int64(decodedWall)
	bench.JoinSpeedup = joinSpeedup
	bench.JoinRowsBuild = jres.Join.RowsBuild
	bench.JoinRowsProbe = jres.Join.RowsProbe

	// --- 3. Plan-cache hit vs miss parse latency -----------------------
	root := dir + "/serve"
	lay, err := serve.GreedyReplan(b)(spec.Table, nil, spec.Queries)
	if err != nil {
		return err
	}
	if err := serve.Init(root, spec.Table, lay); err != nil {
		return err
	}
	srv, err := serve.New(root, serve.Config{Replan: serve.GreedyReplan(b)})
	if err != nil {
		return err
	}
	defer srv.Close()
	const reps = 3000
	start := time.Now()
	for i := 0; i < reps; i++ {
		sql := fmt.Sprintf("SELECT event_type, ingest_date FROM logs WHERE ingest_date < %d ORDER BY ingest_date DESC LIMIT 10", i+1)
		if _, err := srv.ParseRowSelectSQL(sql); err != nil {
			return err
		}
	}
	missNS := time.Since(start).Nanoseconds() / reps
	hot := "SELECT event_type, ingest_date FROM logs WHERE ingest_date < 24 ORDER BY ingest_date DESC LIMIT 10"
	if _, err := srv.ParseRowSelectSQL(hot); err != nil { // warm the entry
		return err
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err := srv.ParseRowSelectSQL(hot); err != nil {
			return err
		}
	}
	hitNS := time.Since(start).Nanoseconds() / reps
	cacheSpeedup := float64(missNS) / float64(hitNS+1)
	fmt.Printf("\nplan cache: miss %s/stmt, hit %s/stmt, speedup %.1fx over %d reps\n",
		time.Duration(missNS), time.Duration(hitNS), cacheSpeedup, reps)
	bench.PlanMissNS = missNS
	bench.PlanHitNS = hitNS
	bench.PlanCacheSpeedup = cacheSpeedup

	fmt.Printf("\nacceptance: TopK speedup %.2fx (target >= 2x), join code-space %.2fx, plan cache %.1fx\n",
		minSpeedup, joinSpeedup, cacheSpeedup)

	// Envelope headline: the TopK statements (sim/bytes are
	// deterministic there; the join and plan-cache sections are
	// wall-clock measurements and stay in the details).
	env := benchEnvelope{Experiment: "rows", Rows: spec.Table.N, Queries: len(bench.TopK), SkipRate: topkSkip}
	for _, r := range bench.TopK {
		env.SimNS += r.TopKSimNS
		env.BytesRead += r.BytesRead
	}
	env.WallNS = int64(codeWall)
	env.AllocsPerOp, err = measureAllocs(len(topSQLs), func() error {
		for _, sql := range topSQLs {
			stmt, _, err := qd.ParseRowSelect(schema, sql)
			if err != nil {
				return err
			}
			if _, err := eng.Select(stmt); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return writeBenchJSON(cfg, env, bench)
}
