// Command qdbench regenerates every table and figure of the paper's
// evaluation (Sec. 7) on the synthetic substrates:
//
//	qdbench -exp table2     Table 2  logical access percentages
//	qdbench -exp fig3       Figure 3 disjunctive microbenchmark
//	qdbench -exp fig4       Figure 4 data-overlap microbenchmark
//	qdbench -exp fig5a      Figure 5a TPC-H runtimes (Spark profile)
//	qdbench -exp fig5b      Figure 5b TPC-H runtimes (DBMS profile)
//	qdbench -exp fig6a      Figure 6a data-routing throughput
//	qdbench -exp fig6b      Figure 6b query-routing latency CDF
//	qdbench -exp fig7       Figure 7a/7b ErrorLog runtimes
//	qdbench -exp fig7c      Figure 7c per-query speedup CDF
//	qdbench -exp fig8       Figure 8 Woodblock learning curves
//	qdbench -exp fig9       Figure 9 cut interpretation
//	qdbench -exp robust     Sec. 7.4.1 train/test robustness
//	qdbench -exp buildtime  Sec. 7.6 layout construction time
//	qdbench -exp twotree    Sec. 6.3 two-tree replication benefit
//	qdbench -exp parscan    parallel scan engine: wall-clock speedup sweep
//	qdbench -exp compress   block format v2: encodings, size, scan speedup
//	qdbench -exp agg        vectorized aggregation: pushdown vs decode-then-aggregate
//	qdbench -exp ingest     streaming ingest: delta fill vs skip rate, compaction recovery
//	qdbench -exp scatter    distributed serving: scatter/gather front door over 1/2/4 shards
//	qdbench -exp rows       row executor: TopK vs full sort, code-space join, plan cache
//	qdbench -exp layout     plan one strategy (-strategy) via the registry
//	qdbench -exp all        everything above (except layout)
//
// Sizes are scaled down from the paper's 77–100M rows (see -rows); all
// skipping metrics are scale-free.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/qd"
)

type config struct {
	rows     int
	queries  int
	episodes int
	seed     int64
	hidden   int
	outDir   string
	benchDir string
	parallel int
	strategy string
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table2, fig3..fig9, robust, buildtime, twotree, all)")
		rows     = flag.Int("rows", 100_000, "dataset rows (paper: 77M-100M)")
		queries  = flag.Int("queries", 300, "ErrorLog workload size (paper: 1000)")
		episodes = flag.Int("episodes", 48, "Woodblock episodes per run")
		hidden   = flag.Int("hidden", 64, "Woodblock hidden width (paper: 512)")
		seed     = flag.Int64("seed", 42, "master seed")
		outDir   = flag.String("out", "", "optional directory for block stores (default: temp)")
		benchDir = flag.String("bench-dir", "", "directory for BENCH_<exp>.json emissions (default: -out, else cwd)")
		parallel = flag.Int("parallelism", 0, "max scan workers for parscan (0 = GOMAXPROCS)")
		strategy = flag.String("strategy", "greedy",
			fmt.Sprintf("layout strategy for -exp layout (%s)", strings.Join(qd.PlannerNames(), " | ")))
	)
	flag.Parse()
	cfg := config{rows: *rows, queries: *queries, episodes: *episodes, seed: *seed, hidden: *hidden, outDir: *outDir, benchDir: *benchDir, parallel: *parallel, strategy: *strategy}

	runs := map[string]func(config) error{
		"table2":    expTable2,
		"fig3":      expFig3,
		"fig4":      expFig4,
		"fig5a":     func(c config) error { return expFig5(c, "spark") },
		"fig5b":     func(c config) error { return expFig5(c, "dbms") },
		"fig6a":     expFig6a,
		"fig6b":     expFig6b,
		"fig7":      expFig7,
		"fig7c":     expFig7c,
		"fig8":      expFig8,
		"fig9":      expFig9,
		"robust":    expRobust,
		"buildtime": expBuildTime,
		"twotree":   expTwoTree,
		"parscan":   expParScan,
		"compress":  expCompress,
		"agg":       expAgg,
		"ingest":    expIngest,
		"scatter":   expScatter,
		"rows":      expRows,
		"layout":    expLayout,
	}
	order := []string{"table2", "fig3", "fig4", "fig5a", "fig5b", "fig6a", "fig6b",
		"fig7", "fig7c", "fig8", "fig9", "robust", "buildtime", "twotree", "parscan", "compress", "agg", "ingest", "scatter", "rows"}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("\n======== %s ========\n", name)
			if err := runs[name](cfg); err != nil {
				fmt.Fprintf(os.Stderr, "qdbench %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	fn, ok := runs[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "qdbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err := fn(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "qdbench %s: %v\n", *exp, err)
		os.Exit(1)
	}
}
