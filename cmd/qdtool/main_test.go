package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture creates a CSV + schema + workload on disk.
func writeFixture(t *testing.T, dir string, rows int) (data, schema, wl string) {
	t.Helper()
	data = filepath.Join(dir, "data.csv")
	schema = filepath.Join(dir, "schema.json")
	wl = filepath.Join(dir, "workload.sql")
	var sb strings.Builder
	sb.WriteString("temp,status\n")
	rng := rand.New(rand.NewSource(1))
	statuses := []string{"ok", "warn", "crit"}
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,%s\n", rng.Intn(100), statuses[rng.Intn(3)])
	}
	if err := os.WriteFile(data, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(schema, []byte(
		`[{"name":"temp","kind":"numeric"},{"name":"status","kind":"categorical"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wl, []byte(
		"-- workload\ntemp < 20 AND status = 'crit'\ntemp >= 80\nstatus IN ('warn', 'crit')\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return data, schema, wl
}

func TestLoadData(t *testing.T) {
	dir := t.TempDir()
	data, schema, _ := writeFixture(t, dir, 100)
	tbl, err := loadData(schema, data)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.N != 100 || tbl.Schema.NumCols() != 2 {
		t.Fatalf("loaded %d rows, %d cols", tbl.N, tbl.Schema.NumCols())
	}
	if tbl.Schema.Cols[1].Kind != 1 || tbl.Schema.Cols[1].Dom == 0 {
		t.Error("categorical column not dictionary-encoded")
	}
	if tbl.Schema.Cols[0].Max == 0 {
		t.Error("numeric bounds not inferred")
	}
}

func TestBuildShowPruneEvalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	data, schema, wl := writeFixture(t, dir, 2000)
	tree := filepath.Join(dir, "tree.json")
	if err := cmdBuild([]string{"-data", data, "-schema", schema, "-workload", wl,
		"-b", "100", "-out", tree}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := cmdShow([]string{"-tree", tree, "-leaves"}); err != nil {
		t.Fatalf("show: %v", err)
	}
	if err := cmdPrune([]string{"-tree", tree, "-query", "temp < 10"}); err != nil {
		t.Fatalf("prune: %v", err)
	}
	if err := cmdEval([]string{"-tree", tree, "-data", data, "-schema", schema, "-workload", wl}); err != nil {
		t.Fatalf("eval: %v", err)
	}
	out := filepath.Join(dir, "bids.csv")
	if err := cmdRoute([]string{"-tree", tree, "-data", data, "-schema", schema, "-out", out}); err != nil {
		t.Fatalf("route: %v", err)
	}
	routed, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(routed), "\n")
	if lines != 2001 { // header + 2000 rows
		t.Errorf("route output has %d lines, want 2001", lines)
	}
}

func TestBuildStrategyRegistry(t *testing.T) {
	dir := t.TempDir()
	data, schema, wl := writeFixture(t, dir, 800)
	tree := filepath.Join(dir, "tree.json")
	// A registry strategy beyond the old greedy|rl switch ladder.
	if err := cmdBuild([]string{"-data", data, "-schema", schema, "-workload", wl,
		"-b", "100", "-strategy", "twotree", "-out", tree}); err != nil {
		t.Fatalf("build twotree: %v", err)
	}
	if _, err := os.Stat(tree); err != nil {
		t.Fatal("tree file missing")
	}
	if err := cmdBuild([]string{"-data", data, "-schema", schema, "-workload", wl,
		"-b", "100", "-strategy", "bogus", "-out", tree}); err == nil {
		t.Fatal("unknown strategy must error")
	}
	// Tree-less strategies cannot be serialized by qdtool build.
	if err := cmdBuild([]string{"-data", data, "-schema", schema, "-workload", wl,
		"-b", "100", "-strategy", "random", "-out", tree}); err == nil {
		t.Fatal("tree-less strategy must error")
	}
}

func TestBuildRLAlgo(t *testing.T) {
	dir := t.TempDir()
	data, schema, wl := writeFixture(t, dir, 800)
	tree := filepath.Join(dir, "tree.json")
	if err := cmdBuild([]string{"-data", data, "-schema", schema, "-workload", wl,
		"-b", "100", "-algo", "rl", "-episodes", "4", "-out", tree}); err != nil {
		t.Fatalf("build rl: %v", err)
	}
	if _, err := os.Stat(tree); err != nil {
		t.Fatal("tree file missing")
	}
}

func TestLoadDataErrors(t *testing.T) {
	dir := t.TempDir()
	data, schema, _ := writeFixture(t, dir, 10)
	if _, err := loadData(filepath.Join(dir, "missing.json"), data); err == nil {
		t.Error("missing schema must error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`[{"name":"a","kind":"wat"}]`), 0o644)
	if _, err := loadData(bad, data); err == nil {
		t.Error("unknown kind must error")
	}
	short := filepath.Join(dir, "short.json")
	os.WriteFile(short, []byte(`[{"name":"a","kind":"numeric"}]`), 0o644)
	if _, err := loadData(short, data); err == nil {
		t.Error("column-count mismatch must error")
	}
	_ = schema
}

func TestLoadDataWithSchemaRejectsUnknownValue(t *testing.T) {
	dir := t.TempDir()
	data, schemaPath, _ := writeFixture(t, dir, 50)
	tbl, err := loadData(schemaPath, data)
	if err != nil {
		t.Fatal(err)
	}
	// New data containing a value outside the dictionary must be rejected.
	alien := filepath.Join(dir, "alien.csv")
	os.WriteFile(alien, []byte("temp,status\n5,unseen_status\n"), 0o644)
	if _, err := loadDataWithSchema(tbl.Schema, alien); err == nil {
		t.Error("unknown dictionary value must error")
	}
	// Known values round-trip.
	ok := filepath.Join(dir, "ok.csv")
	os.WriteFile(ok, []byte("temp,status\n5,ok\n7,crit\n"), 0o644)
	tbl2, err := loadDataWithSchema(tbl.Schema, ok)
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.N != 2 {
		t.Errorf("rows = %d", tbl2.N)
	}
}
