// Command qdtool builds, inspects, and applies qd-trees from CSV data and
// SQL workloads — the operational CLI around the library.
//
//	qdtool build  -data d.csv -schema s.json -workload w.sql -b 1000 -out tree.json [-strategy greedy|woodblock|...]
//	qdtool show   -tree tree.json
//	qdtool route  -tree tree.json -data d.csv -out assignments.csv
//	qdtool prune  -tree tree.json -query "a < 10 AND b = 'x'"
//	qdtool eval   -tree tree.json -data d.csv -workload w.sql
//
// The schema file is JSON: [{"name":"a","kind":"numeric"},
// {"name":"b","kind":"categorical"}]. Dictionary codes and numeric bounds
// are inferred from the data. Workload files hold one WHERE clause (or
// full SELECT) per line; lines starting with -- are skipped.
//
// Layout strategies are resolved through the qd planner registry
// (qd.PlannerNames lists them); build requires one that produces a
// serializable qd-tree (greedy, woodblock, overlap, twotree).
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/qd"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = cmdBuild(args)
	case "show":
		err = cmdShow(args)
	case "route":
		err = cmdRoute(args)
	case "prune":
		err = cmdPrune(args)
	case "eval":
		err = cmdEval(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qdtool %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: qdtool {build|show|route|prune|eval} [flags]")
	os.Exit(2)
}

type schemaCol struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// loadData reads the schema description and CSV, dictionary-encoding
// categorical columns and inferring numeric bounds.
func loadData(schemaPath, dataPath string) (*qd.Table, error) {
	sdata, err := os.ReadFile(schemaPath)
	if err != nil {
		return nil, err
	}
	var scols []schemaCol
	if err := json.Unmarshal(sdata, &scols); err != nil {
		return nil, fmt.Errorf("decode schema: %w", err)
	}
	f, err := os.Open(dataPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(bufio.NewReader(f))
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("empty csv")
	}
	header := records[0]
	if len(header) != len(scols) {
		return nil, fmt.Errorf("csv has %d columns, schema has %d", len(header), len(scols))
	}
	// First pass: build dictionaries.
	dicts := make([]map[string]int64, len(scols))
	dictLists := make([][]string, len(scols))
	cols := make([]qd.Column, len(scols))
	for c, sc := range scols {
		switch sc.Kind {
		case "numeric":
			cols[c] = qd.Column{Name: sc.Name, Kind: qd.Numeric}
		case "categorical":
			cols[c] = qd.Column{Name: sc.Name, Kind: qd.Categorical}
			dicts[c] = make(map[string]int64)
		default:
			return nil, fmt.Errorf("column %q: unknown kind %q", sc.Name, sc.Kind)
		}
	}
	for _, rec := range records[1:] {
		for c := range scols {
			if dicts[c] == nil {
				continue
			}
			if _, ok := dicts[c][rec[c]]; !ok {
				dicts[c][rec[c]] = int64(len(dictLists[c]))
				dictLists[c] = append(dictLists[c], rec[c])
			}
		}
	}
	for c := range scols {
		if dicts[c] != nil {
			cols[c].Dom = int64(len(dictLists[c]))
			if cols[c].Dom == 0 {
				cols[c].Dom = 1
				dictLists[c] = []string{""}
			}
			cols[c].Dict = dictLists[c]
		}
	}
	schema, err := qd.NewSchema(cols)
	if err != nil {
		return nil, err
	}
	tbl := qd.NewTable(schema, len(records)-1)
	row := make([]int64, len(scols))
	for i, rec := range records[1:] {
		for c := range scols {
			if dicts[c] != nil {
				row[c] = dicts[c][rec[c]]
				continue
			}
			v, err := strconv.ParseInt(strings.TrimSpace(rec[c]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("row %d col %s: %w", i+1, scols[c].Name, err)
			}
			row[c] = v
		}
		tbl.AppendRow(row)
	}
	tbl.InferBounds()
	return tbl, nil
}

func loadWorkload(path string, schema *qd.Schema) ([]qd.Query, []qd.AdvCut, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var sqls []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		sqls = append(sqls, line)
	}
	return qd.ParseWorkload(schema, sqls)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	dataPath := fs.String("data", "", "CSV data file (with header)")
	schemaPath := fs.String("schema", "", "schema JSON file")
	wlPath := fs.String("workload", "", "workload file (one WHERE clause per line)")
	b := fs.Int("b", 1000, "minimum rows per block")
	strategy := fs.String("strategy", "greedy",
		fmt.Sprintf("layout strategy from the planner registry (%s)", strings.Join(qd.PlannerNames(), " | ")))
	algo := fs.String("algo", "", "deprecated alias for -strategy")
	episodes := fs.Int("episodes", 64, "RL episodes")
	sample := fs.Float64("sample", 0, "construction sample rate (0 = full data)")
	out := fs.String("out", "tree.json", "output tree file")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	name := *strategy
	if *algo != "" {
		name = *algo
	}

	tbl, err := loadData(*schemaPath, *dataPath)
	if err != nil {
		return err
	}
	queries, acs, err := loadWorkload(*wlPath, tbl.Schema)
	if err != nil {
		return err
	}
	planner, err := qd.NewPlanner(name)
	if err != nil {
		return err
	}
	ds := qd.NewDataset(tbl.Schema, tbl).WithQueries(queries, acs)
	plan, err := planner.Plan(ds, qd.PlanOptions{
		MinBlockSize: *b, SampleRate: *sample, Seed: *seed, MaxEpisodes: *episodes})
	if err != nil {
		return err
	}
	if plan.Tree == nil {
		return fmt.Errorf("strategy %q does not produce a serializable qd-tree", name)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := plan.Tree.Save(f); err != nil {
		return err
	}
	fmt.Printf("built %s tree: %d leaves, depth %d\n", plan.Strategy, len(plan.Tree.Leaves()), plan.Tree.Depth())
	fmt.Printf("workload access fraction: %.4f (selectivity lower bound %.4f)\n",
		plan.AccessedFraction(nil), ds.Selectivity())
	fmt.Printf("tree written to %s\n", *out)
	return nil
}

// loadDataWithSchema reads a CSV against an existing schema (typically the
// one embedded in a saved tree), so dictionary codes line up with the
// tree's cuts. Unknown categorical values are rejected — a deployed
// qd-tree cannot route values outside its dictionary.
func loadDataWithSchema(schema *qd.Schema, dataPath string) (*qd.Table, error) {
	f, err := os.Open(dataPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(bufio.NewReader(f))
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("empty csv")
	}
	if len(records[0]) != schema.NumCols() {
		return nil, fmt.Errorf("csv has %d columns, tree schema has %d", len(records[0]), schema.NumCols())
	}
	tbl := qd.NewTable(schema, len(records)-1)
	row := make([]int64, schema.NumCols())
	for i, rec := range records[1:] {
		for c := 0; c < schema.NumCols(); c++ {
			if schema.Cols[c].Kind == qd.Categorical {
				code := schema.Code(c, rec[c])
				if code < 0 {
					return nil, fmt.Errorf("row %d col %s: value %q not in tree dictionary", i+1, schema.Cols[c].Name, rec[c])
				}
				row[c] = code
				continue
			}
			v, err := strconv.ParseInt(strings.TrimSpace(rec[c]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("row %d col %s: %w", i+1, schema.Cols[c].Name, err)
			}
			row[c] = v
		}
		tbl.AppendRow(row)
	}
	return tbl, nil
}

func loadTree(path string) (*qd.Tree, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return qd.LoadTree(data)
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	treePath := fs.String("tree", "tree.json", "tree file")
	leaves := fs.Bool("leaves", false, "print per-leaf semantic predicates")
	fs.Parse(args)
	tree, err := loadTree(*treePath)
	if err != nil {
		return err
	}
	fmt.Printf("qd-tree: %d nodes, %d leaves, depth %d, %d advanced cuts\n",
		tree.NumNodes(), len(tree.Leaves()), tree.Depth(), len(tree.ACs))
	fmt.Print(tree.String())
	if *leaves {
		for _, leaf := range tree.Leaves() {
			fmt.Printf("B%d: %s\n", leaf.BlockID, tree.LeafPredicate(leaf))
		}
	}
	return nil
}

func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	treePath := fs.String("tree", "tree.json", "tree file")
	dataPath := fs.String("data", "", "CSV data file")
	schemaPath := fs.String("schema", "", "schema JSON file")
	out := fs.String("out", "", "output CSV of block IDs (default stdout)")
	fs.Parse(args)
	tree, err := loadTree(*treePath)
	if err != nil {
		return err
	}
	tbl, err := loadData(*schemaPath, *dataPath)
	if err != nil {
		return err
	}
	bids := tree.RouteTable(tbl)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "row,bid")
	for r, b := range bids {
		fmt.Fprintf(bw, "%d,%d\n", r, b)
	}
	return bw.Flush()
}

func cmdPrune(args []string) error {
	fs := flag.NewFlagSet("prune", flag.ExitOnError)
	treePath := fs.String("tree", "tree.json", "tree file")
	queryStr := fs.String("query", "", "WHERE clause to route")
	fs.Parse(args)
	tree, err := loadTree(*treePath)
	if err != nil {
		return err
	}
	queries, _, err := qd.ParseWorkload(tree.Schema, []string{*queryStr})
	if err != nil {
		return err
	}
	bids := tree.QueryBlocks(queries[0])
	total := len(tree.Leaves())
	fmt.Printf("query intersects %d of %d blocks\n", len(bids), total)
	fmt.Printf("BID IN %v\n", bids)
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	treePath := fs.String("tree", "tree.json", "tree file")
	dataPath := fs.String("data", "", "CSV data file")
	schemaPath := fs.String("schema", "", "schema JSON file")
	wlPath := fs.String("workload", "", "workload file")
	fs.Parse(args)
	tree, err := loadTree(*treePath)
	if err != nil {
		return err
	}
	tbl, err := loadData(*schemaPath, *dataPath)
	if err != nil {
		return err
	}
	queries, acs, err := loadWorkload(*wlPath, tbl.Schema)
	if err != nil {
		return err
	}
	layout := qd.LayoutFromTree("eval", tree, tbl)
	fmt.Printf("blocks: %d   rows: %d   queries: %d\n", layout.NumBlocks(), tbl.N, len(queries))
	fmt.Printf("accessed fraction: %.4f\n", layout.AccessedFraction(queries))
	fmt.Printf("selectivity bound: %.4f\n", qd.Selectivity(tbl, queries, acs))
	return nil
}
