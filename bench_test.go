// Benchmarks regenerating every table and figure of the paper's
// evaluation (Sec. 7), plus ablations of the design choices called out in
// DESIGN.md. Each benchmark prints the headline metric it reproduces via
// b.ReportMetric, so `go test -bench=. -benchmem` yields the full
// experiment record (see EXPERIMENTS.md for paper-vs-measured).
//
// Sizes are scaled down from the paper's 77M–100M rows; the skipping
// metrics are scale-free (see DESIGN.md, Substitutions).
package main

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/blockstore"
	"repro/internal/bottomup"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/greedy"
	"repro/internal/overlap"
	"repro/internal/replicate"
	"repro/internal/rl"
	"repro/internal/router"
	"repro/internal/workload"
)

const (
	benchRows    = 40_000
	benchQueries = 200
	benchSeed    = 42
)

func toCuts(ps []workload.Pred2Cut) []core.Cut {
	out := make([]core.Cut, len(ps))
	for i, p := range ps {
		if p.IsAdv {
			out[i] = core.AdvancedCut(p.Adv)
		} else {
			out[i] = core.UnaryCut(p.Pred)
		}
	}
	return out
}

// --- cached specs: generating workloads once keeps bench time sane ---

var (
	tpchSpec  *workload.Spec
	elIntSpec *workload.Spec
	elExtSpec *workload.Spec
)

func getTPCH() *workload.Spec {
	if tpchSpec == nil {
		tpchSpec = workload.TPCH(workload.TPCHConfig{Rows: benchRows, Seed: benchSeed})
	}
	return tpchSpec
}

func getELInt() *workload.Spec {
	if elIntSpec == nil {
		elIntSpec = workload.ErrorLogInt(workload.ErrorLogConfig{Rows: benchRows, NumQueries: benchQueries, Seed: benchSeed})
	}
	return elIntSpec
}

func getELExt() *workload.Spec {
	if elExtSpec == nil {
		elExtSpec = workload.ErrorLogExt(workload.ErrorLogConfig{Rows: benchRows, NumQueries: benchQueries, Seed: benchSeed})
	}
	return elExtSpec
}

func buildGreedyLayout(b *testing.B, spec *workload.Spec, minSize int) *cost.Layout {
	b.Helper()
	tree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
		MinSize: minSize, Cuts: toCuts(spec.Cuts), Queries: spec.Queries})
	if err != nil {
		b.Fatal(err)
	}
	return cost.FromTree("greedy", tree, spec.Table)
}

// ---------- Table 2: logical access percentage ----------

func benchTable2(b *testing.B, spec *workload.Spec, minSize, rangeCol int) {
	cuts := toCuts(spec.Cuts)
	var fractions map[string]float64
	for i := 0; i < b.N; i++ {
		fractions = map[string]float64{}
		gl := buildGreedyLayout(b, spec, minSize)
		fractions["greedy"] = gl.AccessedFraction(spec.Queries)
		var base *cost.Layout
		var err error
		if rangeCol < 0 {
			base, err = baselines.Random(spec.Table, gl.NumBlocks(), spec.ACs, benchSeed)
		} else {
			base, err = baselines.Range(spec.Table, rangeCol, gl.NumBlocks(), spec.ACs)
		}
		if err != nil {
			b.Fatal(err)
		}
		fractions["baseline"] = base.AccessedFraction(spec.Queries)
		bu, err := bottomup.Build(spec.Table, spec.ACs, bottomup.Options{
			MinSize: minSize, Cuts: cuts, Queries: spec.Queries, SelectivityCap: 0.10})
		if err != nil {
			b.Fatal(err)
		}
		fractions["bu+"] = bu.Layout.AccessedFraction(spec.Queries)
		res, err := rl.Build(spec.Table, spec.ACs, rl.Options{
			MinSize: minSize, Cuts: cuts, Queries: spec.Queries,
			Hidden: 48, MaxEpisodes: 24, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		fractions["rl"] = cost.FromTree("rl", res.Tree, spec.Table).AccessedFraction(spec.Queries)
	}
	for k, v := range fractions {
		b.ReportMetric(v*100, k+"_%accessed")
	}
}

func BenchmarkTable2TPCH(b *testing.B) { benchTable2(b, getTPCH(), benchRows/770, -1) }
func BenchmarkTable2ErrorLogInt(b *testing.B) {
	benchTable2(b, getELInt(), benchRows/2000, workload.IngestColumn(getELInt().Table.Schema))
}
func BenchmarkTable2ErrorLogExt(b *testing.B) {
	benchTable2(b, getELExt(), benchRows/1620, workload.IngestColumn(getELExt().Table.Schema))
}

// ---------- Figure 3: disjunctive microbenchmark ----------

func BenchmarkFig3GreedyVsRL(b *testing.B) {
	spec := workload.Fig3(20_000, benchSeed)
	cuts := toCuts(spec.Cuts)
	var gFrac, rFrac float64
	for i := 0; i < b.N; i++ {
		tree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
			MinSize: 100, Cuts: cuts, Queries: spec.Queries})
		if err != nil {
			b.Fatal(err)
		}
		gFrac = cost.FromTree("g", tree, spec.Table).AccessedFraction(spec.Queries)
		res, err := rl.Build(spec.Table, spec.ACs, rl.Options{
			MinSize: 100, Cuts: cuts, Queries: spec.Queries,
			Hidden: 32, MaxEpisodes: 32, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		rFrac = cost.FromTree("r", res.Tree, spec.Table).AccessedFraction(spec.Queries)
	}
	b.ReportMetric(gFrac*100, "greedy_%")        // paper: 50.5
	b.ReportMetric(rFrac*100, "rl_%")            // paper: 10.4
	b.ReportMetric(gFrac/rFrac, "improvement_x") // paper: 4.8
}

// ---------- Figure 4: overlap microbenchmark ----------

func BenchmarkFig4Overlap(b *testing.B) {
	armN := 2000
	spec := workload.Fig4(armN, benchSeed)
	cuts := toCuts(spec.Cuts)
	var plainAcc, ovAcc int64
	for i := 0; i < b.N; i++ {
		tree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
			MinSize: armN, Cuts: cuts, Queries: spec.Queries})
		if err != nil {
			b.Fatal(err)
		}
		plain := cost.FromTree("p", tree, spec.Table)
		lay, err := overlap.Build(spec.Table, spec.ACs, overlap.Options{
			MinSize: armN, Cuts: cuts, Queries: spec.Queries})
		if err != nil {
			b.Fatal(err)
		}
		plainAcc, ovAcc = 0, 0
		for _, q := range spec.Queries {
			plainAcc += plain.AccessedTuples(q)
			ovAcc += lay.AccessedTuples(q, spec.Table.Schema)
		}
	}
	ideal := float64(4 * (armN + 1))
	b.ReportMetric(float64(plainAcc)/ideal, "plain_vs_ideal") // paper: ~1.75 (3N extra)
	b.ReportMetric(float64(ovAcc)/ideal, "overlap_vs_ideal")  // paper: 1.0
}

// ---------- Figure 5: TPC-H physical runtimes ----------

func benchFig5(b *testing.B, prof exec.Profile) {
	spec := getTPCH()
	minSize := benchRows / 770
	gl := buildGreedyLayout(b, spec, minSize)
	buRes, err := bottomup.Build(spec.Table, spec.ACs, bottomup.Options{
		MinSize: minSize, Cuts: toCuts(spec.Cuts), Queries: spec.Queries, SelectivityCap: 0.10})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	qdStore, err := blockstore.Write(dir+"/qd", spec.Table, gl.BIDs, gl.NumBlocks())
	if err != nil {
		b.Fatal(err)
	}
	buStore, err := blockstore.Write(dir+"/bu", spec.Table, buRes.Layout.BIDs, buRes.Layout.NumBlocks())
	if err != nil {
		b.Fatal(err)
	}
	defer qdStore.Close()
	defer buStore.Close()
	b.ResetTimer()
	var qdTotal, buTotal time.Duration
	for i := 0; i < b.N; i++ {
		_, qdTotal, err = exec.RunWorkload(qdStore, gl, spec.Queries, spec.ACs, prof, exec.RouteQdTree)
		if err != nil {
			b.Fatal(err)
		}
		_, buTotal, err = exec.RunWorkload(buStore, buRes.Layout, spec.Queries, spec.ACs, prof, exec.RouteQdTree)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(buTotal.Seconds(), "bu_sim_s")
	b.ReportMetric(qdTotal.Seconds(), "qd_sim_s")
	b.ReportMetric(float64(buTotal)/float64(qdTotal+1), "speedup_x") // paper: 1.6x spark, 1.3x dbms
}

func BenchmarkFig5aSparkProfile(b *testing.B) { benchFig5(b, exec.EngineSpark) }
func BenchmarkFig5bDBMSProfile(b *testing.B)  { benchFig5(b, exec.EngineDBMS) }

// ---------- Figure 6: routing performance ----------

func BenchmarkFig6aRouting(b *testing.B) {
	spec := getTPCH()
	tree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
		MinSize: benchRows / 770, Cuts: toCuts(spec.Cuts), Queries: spec.Queries})
	if err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			var rps float64
			for i := 0; i < b.N; i++ {
				res := router.MeasureThroughput(tree, spec.Table, threads, 4096)
				rps = res.RecordsPS
			}
			b.ReportMetric(rps, "records/s")
		})
	}
}

func BenchmarkFig6bQueryRouting(b *testing.B) {
	spec := getTPCH()
	tree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
		MinSize: benchRows / 770, Cuts: toCuts(spec.Cuts), Queries: spec.Queries})
	if err != nil {
		b.Fatal(err)
	}
	bids := tree.RouteTable(spec.Table)
	tree.Freeze(spec.Table, bids)
	qr := &router.QueryRouter{Tree: tree}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qr.Route(spec.Queries[i%len(spec.Queries)])
	}
	// Per-op time is the Fig. 6b latency; the paper reports < 16 ms max.
}

// ---------- Figure 7: ErrorLog physical runtimes ----------

func benchFig7(b *testing.B, spec *workload.Spec, minSize int) {
	gl := buildGreedyLayout(b, spec, minSize)
	buRes, err := bottomup.Build(spec.Table, spec.ACs, bottomup.Options{
		MinSize: minSize, Cuts: toCuts(spec.Cuts), Queries: spec.Queries, SelectivityCap: 0.10})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	qdStore, err := blockstore.Write(dir+"/qd", spec.Table, gl.BIDs, gl.NumBlocks())
	if err != nil {
		b.Fatal(err)
	}
	buStore, err := blockstore.Write(dir+"/bu", spec.Table, buRes.Layout.BIDs, buRes.Layout.NumBlocks())
	if err != nil {
		b.Fatal(err)
	}
	defer qdStore.Close()
	defer buStore.Close()
	b.ResetTimer()
	var qdT, buT, nrT time.Duration
	for i := 0; i < b.N; i++ {
		_, buT, err = exec.RunWorkload(buStore, buRes.Layout, spec.Queries, spec.ACs, exec.EngineSpark, exec.RouteQdTree)
		if err != nil {
			b.Fatal(err)
		}
		_, qdT, err = exec.RunWorkload(qdStore, gl, spec.Queries, spec.ACs, exec.EngineSpark, exec.RouteQdTree)
		if err != nil {
			b.Fatal(err)
		}
		_, nrT, err = exec.RunWorkload(qdStore, gl, spec.Queries, spec.ACs, exec.EngineSpark, exec.NoRoute)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(buT.Seconds(), "bu+_sim_s")
	b.ReportMetric(qdT.Seconds(), "qd_sim_s")
	b.ReportMetric(nrT.Seconds(), "noroute_sim_s")
	b.ReportMetric(float64(buT)/float64(qdT+1), "speedup_x") // paper: 14x int / 5x ext
}

func BenchmarkFig7aErrorLogInt(b *testing.B) { benchFig7(b, getELInt(), benchRows/2000) }
func BenchmarkFig7bErrorLogExt(b *testing.B) { benchFig7(b, getELExt(), benchRows/1620) }

// ---------- Figure 8: learning curve ----------

func BenchmarkFig8LearningCurve(b *testing.B) {
	spec := getELExt()
	var first, last float64
	for i := 0; i < b.N; i++ {
		res, err := rl.Build(spec.Table, spec.ACs, rl.Options{
			MinSize: benchRows / 1620, Cuts: toCuts(spec.Cuts), Queries: spec.Queries,
			Hidden: 48, MaxEpisodes: 24, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		first, last = res.Curve[0].Best, res.Curve[len(res.Curve)-1].Best
	}
	b.ReportMetric(first*100, "first_%")
	b.ReportMetric(last*100, "final_%")
}

// ---------- Figure 9: cut interpretation (tree statistics cost) ----------

func BenchmarkFig9CutCounts(b *testing.B) {
	spec := getTPCH()
	tree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
		MinSize: benchRows / 770, Cuts: toCuts(spec.Cuts), Queries: spec.Queries})
	if err != nil {
		b.Fatal(err)
	}
	var distinct int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := tree.CutCounts()
		distinct = len(counts)
	}
	b.ReportMetric(float64(distinct), "columns_cut") // paper: 8 columns cut >= 20 times
}

// ---------- Robustness: train vs unseen queries ----------

func BenchmarkRobustnessUnseenQueries(b *testing.B) {
	spec := getTPCH()
	gl := buildGreedyLayout(b, spec, benchRows/770)
	test := workload.TPCHQueries(spec.Table.Schema, 20, benchSeed+999)
	var train, unseen float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		train = gl.AccessedFraction(spec.Queries)
		unseen = gl.AccessedFraction(test)
	}
	b.ReportMetric(train*100, "train_%")
	b.ReportMetric(unseen*100, "test_%")
	b.ReportMetric(unseen/train, "ratio") // paper: ≈1.003
}

// ---------- Section 7.6: construction time ----------

func BenchmarkBuildTimeGreedy(b *testing.B) {
	spec := getELInt()
	cuts := toCuts(spec.Cuts)
	for i := 0; i < b.N; i++ {
		if _, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
			MinSize: benchRows / 2000, Cuts: cuts, Queries: spec.Queries}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildTimeBottomUp(b *testing.B) {
	spec := getELInt()
	cuts := toCuts(spec.Cuts)
	for i := 0; i < b.N; i++ {
		if _, err := bottomup.Build(spec.Table, spec.ACs, bottomup.Options{
			MinSize: benchRows / 2000, Cuts: cuts, Queries: spec.Queries, SelectivityCap: 0.10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildTimeWoodblockPerEpisode(b *testing.B) {
	spec := getELInt()
	cuts := toCuts(spec.Cuts)
	for i := 0; i < b.N; i++ {
		if _, err := rl.Build(spec.Table, spec.ACs, rl.Options{
			MinSize: benchRows / 2000, Cuts: cuts, Queries: spec.Queries,
			Hidden: 48, MaxEpisodes: 4, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- Section 6.3: two-tree replication ----------

func BenchmarkFig4TwoTree(b *testing.B) {
	spec := getTPCH()
	cuts := toCuts(spec.Cuts)
	var one, two float64
	for i := 0; i < b.N; i++ {
		single, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
			MinSize: benchRows / 770, Cuts: cuts, Queries: spec.Queries})
		if err != nil {
			b.Fatal(err)
		}
		one = cost.FromTree("one", single, spec.Table).AccessedFraction(spec.Queries)
		tt, err := replicate.Build(spec.Table, spec.ACs, replicate.Options{
			MinSize: benchRows / 770, Cuts: cuts, Queries: spec.Queries})
		if err != nil {
			b.Fatal(err)
		}
		two = tt.AccessedFraction(spec.Queries)
	}
	b.ReportMetric(one*100, "one_tree_%")
	b.ReportMetric(two*100, "two_tree_%")
}

// ---------- Ablations (DESIGN.md) ----------

// BenchmarkAblationCriterion compares the paper's ΔC greedy criterion to
// a balance-based (decision-tree style) split rule.
func BenchmarkAblationCriterion(b *testing.B) {
	spec := getTPCH()
	cuts := toCuts(spec.Cuts)
	var dc, ig float64
	for i := 0; i < b.N; i++ {
		t1, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
			MinSize: benchRows / 770, Cuts: cuts, Queries: spec.Queries, Criterion: greedy.DeltaSkip})
		if err != nil {
			b.Fatal(err)
		}
		dc = cost.FromTree("dc", t1, spec.Table).AccessedFraction(spec.Queries)
		t2, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
			MinSize: benchRows / 770, Cuts: cuts, Queries: spec.Queries, Criterion: greedy.InfoGain})
		if err != nil {
			b.Fatal(err)
		}
		ig = cost.FromTree("ig", t2, spec.Table).AccessedFraction(spec.Queries)
	}
	b.ReportMetric(dc*100, "deltaskip_%")
	b.ReportMetric(ig*100, "infogain_%")
}

// BenchmarkAblationWidth sweeps the Woodblock hidden width (paper: 512).
func BenchmarkAblationWidth(b *testing.B) {
	spec := workload.Fig3(10_000, benchSeed)
	cuts := toCuts(spec.Cuts)
	for _, hidden := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("hidden=%d", hidden), func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				res, err := rl.Build(spec.Table, spec.ACs, rl.Options{
					MinSize: 50, Cuts: cuts, Queries: spec.Queries,
					Hidden: hidden, MaxEpisodes: 16, Seed: benchSeed})
				if err != nil {
					b.Fatal(err)
				}
				frac = res.BestRatio
			}
			b.ReportMetric(frac*100, "best_%")
		})
	}
}

// BenchmarkAblationSample sweeps the construction sample rate (Sec. 5.2.1
// recommends 0.1%–1%; we sweep coarser rates at bench scale).
func BenchmarkAblationSample(b *testing.B) {
	spec := getTPCH()
	for _, rate := range []float64{0.05, 0.2, 1.0} {
		b.Run(fmt.Sprintf("rate=%v", rate), func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				build := spec.Table
				minSize := benchRows / 770
				if rate < 1 {
					build = spec.Table.Sample(rate, 1000, rand.New(rand.NewSource(benchSeed)))
					minSize = int(float64(minSize) * float64(build.N) / float64(spec.Table.N))
					if minSize < 1 {
						minSize = 1
					}
				}
				tree, err := greedy.Build(build, spec.ACs, greedy.Options{
					MinSize: minSize, Cuts: toCuts(spec.Cuts), Queries: spec.Queries})
				if err != nil {
					b.Fatal(err)
				}
				frac = cost.FromTree("s", tree, spec.Table).AccessedFraction(spec.Queries)
			}
			b.ReportMetric(frac*100, "deployed_%")
		})
	}
}

// BenchmarkAblationBlockSize sweeps b.
func BenchmarkAblationBlockSize(b *testing.B) {
	spec := getTPCH()
	for _, bsize := range []int{benchRows / 200, benchRows / 770, benchRows / 2000} {
		b.Run(fmt.Sprintf("b=%d", bsize), func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				frac = buildGreedyLayout(b, spec, bsize).AccessedFraction(spec.Queries)
			}
			b.ReportMetric(frac*100, "accessed_%")
		})
	}
}

// BenchmarkAblationAdvancedCuts removes the Sec. 6.1 advanced cuts from
// the search space.
func BenchmarkAblationAdvancedCuts(b *testing.B) {
	spec := getTPCH()
	all := toCuts(spec.Cuts)
	var unaryOnly []core.Cut
	for _, c := range all {
		if !c.IsAdv {
			unaryOnly = append(unaryOnly, c)
		}
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		t1, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
			MinSize: benchRows / 770, Cuts: all, Queries: spec.Queries})
		if err != nil {
			b.Fatal(err)
		}
		with = cost.FromTree("with", t1, spec.Table).AccessedFraction(spec.Queries)
		t2, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
			MinSize: benchRows / 770, Cuts: unaryOnly, Queries: spec.Queries})
		if err != nil {
			b.Fatal(err)
		}
		without = cost.FromTree("without", t2, spec.Table).AccessedFraction(spec.Queries)
	}
	b.ReportMetric(with*100, "with_AC_%")
	b.ReportMetric(without*100, "without_AC_%")
}

// ---------- parallel scan engine ----------

// parallelFixture materializes a coarse random layout (few, large blocks)
// so each scan task is chunky enough to expose pool scaling.
func parallelFixture(b *testing.B) (*blockstore.Store, *cost.Layout, *workload.Spec) {
	b.Helper()
	spec := getTPCH()
	lay, err := baselines.Random(spec.Table, 32, spec.ACs, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	store, err := blockstore.Write(b.TempDir(), spec.Table, lay.BIDs, lay.NumBlocks())
	if err != nil {
		b.Fatal(err)
	}
	return store, lay, spec
}

// BenchmarkParallelScanSpeedup measures the same multi-query workload at
// Parallelism=1 vs Parallelism=4 (both batched, shared reads) and reports
// the wall-clock speedup. On a single-core host the measured ratio
// degenerates to ~1x while the deterministic model still reports the
// 4x capacity; both are printed so the speedup is measured, not asserted.
func BenchmarkParallelScanSpeedup(b *testing.B) {
	store, lay, spec := parallelFixture(b)
	defer store.Close()
	var wall1, wall4, sim1, sim4 time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1, err := exec.RunWorkloadOpts(store, lay, spec.Queries, spec.ACs, exec.EngineSpark, exec.NoRoute,
			exec.Options{Parallelism: 1, ShareReads: true})
		if err != nil {
			b.Fatal(err)
		}
		r4, err := exec.RunWorkloadOpts(store, lay, spec.Queries, spec.ACs, exec.EngineSpark, exec.NoRoute,
			exec.Options{Parallelism: 4, ShareReads: true})
		if err != nil {
			b.Fatal(err)
		}
		for qi := range r1.Results {
			if r1.Results[qi].ScanStats != r4.Results[qi].ScanStats {
				b.Fatalf("parallel counts diverged for %s", r1.Results[qi].Query)
			}
		}
		wall1 += r1.WallTime
		wall4 += r4.WallTime
		sim1, sim4 = r1.SimTime, r4.SimTime
	}
	b.ReportMetric(wall1.Seconds()/float64(b.N), "p1_wall_s")
	b.ReportMetric(wall4.Seconds()/float64(b.N), "p4_wall_s")
	b.ReportMetric(float64(wall1)/float64(wall4+1), "wall_speedup_x")
	b.ReportMetric(float64(sim1)/float64(sim4+1), "model_speedup_x") // 4.0 by construction
}

// BenchmarkSharedReadSpeedup measures the batched read-once/filter-many
// engine against the per-query sequential engine on the same workload —
// the multi-user scan-sharing win, independent of core count.
func BenchmarkSharedReadSpeedup(b *testing.B) {
	store, lay, spec := parallelFixture(b)
	defer store.Close()
	var seqWall, batchWall time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, _, err := exec.RunWorkload(store, lay, spec.Queries, spec.ACs, exec.EngineSpark, exec.NoRoute); err != nil {
			b.Fatal(err)
		}
		seqWall += time.Since(start)
		wr, err := exec.RunWorkloadOpts(store, lay, spec.Queries, spec.ACs, exec.EngineSpark, exec.NoRoute,
			exec.Options{Parallelism: -1, ShareReads: true})
		if err != nil {
			b.Fatal(err)
		}
		batchWall += wr.WallTime
	}
	b.ReportMetric(seqWall.Seconds()/float64(b.N), "per_query_wall_s")
	b.ReportMetric(batchWall.Seconds()/float64(b.N), "batched_wall_s")
	b.ReportMetric(float64(seqWall)/float64(batchWall+1), "speedup_x")
}

// ---------- micro-benchmarks of the hot paths ----------

func BenchmarkRouteTable(b *testing.B) {
	spec := getTPCH()
	tree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
		MinSize: benchRows / 770, Cuts: toCuts(spec.Cuts), Queries: spec.Queries})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.RouteTable(spec.Table)
	}
	b.SetBytes(int64(spec.Table.N * spec.Table.Schema.NumCols() * 8))
}

func BenchmarkCounterSplit(b *testing.B) {
	spec := getTPCH()
	cuts := toCuts(spec.Cuts)
	cnt := core.NewCounter(spec.Table, spec.ACs, cuts, nil)
	inLeft := make([]bool, spec.Table.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt.Split(cuts[i%len(cuts)], inLeft)
	}
}

func BenchmarkBlockstoreScan(b *testing.B) {
	spec := getTPCH()
	gl := buildGreedyLayout(b, spec, benchRows/770)
	dir := b.TempDir()
	store, err := blockstore.Write(dir, spec.Table, gl.BIDs, gl.NumBlocks())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	q := spec.Queries[0]
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		res, err := exec.Run(store, gl, q, spec.ACs, exec.EngineSpark, exec.RouteQdTree)
		if err != nil {
			b.Fatal(err)
		}
		total += res.BytesRead
	}
	b.SetBytes(total / int64(b.N))
}

// TestMain gives the benches a place to report scale context once.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
