// Benchmarks regenerating every table and figure of the paper's
// evaluation (Sec. 7), plus ablations of the design choices called out in
// DESIGN.md. Each benchmark prints the headline metric it reproduces via
// b.ReportMetric, so `go test -bench=. -benchmem` yields the full
// experiment record (see EXPERIMENTS.md for paper-vs-measured).
//
// Everything drives the public Dataset / Planner / Engine surface of the
// qd package; internal imports remain only for substrates the facade does
// not wrap (workload generation, routing, split counters).
//
// Sizes are scaled down from the paper's 77M–100M rows; the skipping
// metrics are scale-free (see DESIGN.md, Substitutions).
package main

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/workload"
	"repro/qd"
)

const (
	benchRows    = 40_000
	benchQueries = 200
	benchSeed    = 42
)

func toCuts(ps []workload.Pred2Cut) []qd.Cut {
	out := make([]qd.Cut, len(ps))
	for i, p := range ps {
		if p.IsAdv {
			out[i] = qd.AdvancedCut(p.Adv)
		} else {
			out[i] = qd.UnaryCut(p.Pred)
		}
	}
	return out
}

func specDataset(spec *workload.Spec) *qd.Dataset {
	return qd.NewDataset(spec.Table.Schema, spec.Table).WithQueries(spec.Queries, spec.ACs)
}

// planSpec plans a spec with a registry strategy, failing the benchmark on
// error. The spec's precomputed cuts are used unless opt.Cuts is set.
func planSpec(b *testing.B, strategy string, spec *workload.Spec, opt qd.PlanOptions) *qd.Plan {
	b.Helper()
	if opt.Cuts == nil {
		opt.Cuts = toCuts(spec.Cuts)
	}
	planner, err := qd.NewPlanner(strategy)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := planner.Plan(specDataset(spec), opt)
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// --- cached specs: generating workloads once keeps bench time sane ---

var (
	tpchSpec  *workload.Spec
	elIntSpec *workload.Spec
	elExtSpec *workload.Spec
)

func getTPCH() *workload.Spec {
	if tpchSpec == nil {
		tpchSpec = workload.TPCH(workload.TPCHConfig{Rows: benchRows, Seed: benchSeed})
	}
	return tpchSpec
}

func getELInt() *workload.Spec {
	if elIntSpec == nil {
		elIntSpec = workload.ErrorLogInt(workload.ErrorLogConfig{Rows: benchRows, NumQueries: benchQueries, Seed: benchSeed})
	}
	return elIntSpec
}

func getELExt() *workload.Spec {
	if elExtSpec == nil {
		elExtSpec = workload.ErrorLogExt(workload.ErrorLogConfig{Rows: benchRows, NumQueries: benchQueries, Seed: benchSeed})
	}
	return elExtSpec
}

// newBenchEngine materializes a plan under a bench temp dir and binds an
// engine over it.
func newBenchEngine(b *testing.B, spec *workload.Spec, plan *qd.Plan, prof qd.EngineProfile, opt qd.ExecOptions) *qd.Engine {
	b.Helper()
	store, err := qd.WriteStore(b.TempDir(), spec.Table, plan.Layout)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := qd.NewEngine(store, plan, prof, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	return eng
}

// ---------- Table 2: logical access percentage ----------

func benchTable2(b *testing.B, spec *workload.Spec, minSize, rangeCol int) {
	var fractions map[string]float64
	for i := 0; i < b.N; i++ {
		fractions = map[string]float64{}
		gPlan := planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: minSize})
		fractions["greedy"] = gPlan.AccessedFraction(nil)
		baseStrategy := "random"
		if rangeCol >= 0 {
			baseStrategy = "range"
		}
		basePlan := planSpec(b, baseStrategy, spec, qd.PlanOptions{
			NumBlocks: gPlan.Layout.NumBlocks(), Seed: benchSeed, RangeColumn: rangeCol})
		fractions["baseline"] = basePlan.AccessedFraction(nil)
		buPlan := planSpec(b, "bottomup", spec, qd.PlanOptions{
			MinBlockSize: minSize, SelectivityCap: 0.10})
		fractions["bu+"] = buPlan.AccessedFraction(nil)
		rlPlan := planSpec(b, "woodblock", spec, qd.PlanOptions{
			MinBlockSize: minSize, Hidden: 48, MaxEpisodes: 24, Seed: benchSeed})
		fractions["rl"] = rlPlan.AccessedFraction(nil)
	}
	for k, v := range fractions {
		b.ReportMetric(v*100, k+"_%accessed")
	}
}

func BenchmarkTable2TPCH(b *testing.B) { benchTable2(b, getTPCH(), benchRows/770, -1) }
func BenchmarkTable2ErrorLogInt(b *testing.B) {
	benchTable2(b, getELInt(), benchRows/2000, workload.IngestColumn(getELInt().Table.Schema))
}
func BenchmarkTable2ErrorLogExt(b *testing.B) {
	benchTable2(b, getELExt(), benchRows/1620, workload.IngestColumn(getELExt().Table.Schema))
}

// ---------- Figure 3: disjunctive microbenchmark ----------

func BenchmarkFig3GreedyVsRL(b *testing.B) {
	spec := workload.Fig3(20_000, benchSeed)
	var gFrac, rFrac float64
	for i := 0; i < b.N; i++ {
		gFrac = planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: 100}).AccessedFraction(nil)
		rFrac = planSpec(b, "woodblock", spec, qd.PlanOptions{
			MinBlockSize: 100, Hidden: 32, MaxEpisodes: 32, Seed: benchSeed}).AccessedFraction(nil)
	}
	b.ReportMetric(gFrac*100, "greedy_%")        // paper: 50.5
	b.ReportMetric(rFrac*100, "rl_%")            // paper: 10.4
	b.ReportMetric(gFrac/rFrac, "improvement_x") // paper: 4.8
}

// ---------- Figure 4: overlap microbenchmark ----------

func BenchmarkFig4Overlap(b *testing.B) {
	armN := 2000
	spec := workload.Fig4(armN, benchSeed)
	var plainAcc, ovAcc int64
	for i := 0; i < b.N; i++ {
		plain := planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: armN})
		ov := planSpec(b, "overlap", spec, qd.PlanOptions{MinBlockSize: armN})
		plainAcc, ovAcc = 0, 0
		for _, q := range spec.Queries {
			plainAcc += plain.Layout.AccessedTuples(q)
			ovAcc += ov.Overlap.AccessedTuples(q, spec.Table.Schema)
		}
	}
	ideal := float64(4 * (armN + 1))
	b.ReportMetric(float64(plainAcc)/ideal, "plain_vs_ideal") // paper: ~1.75 (3N extra)
	b.ReportMetric(float64(ovAcc)/ideal, "overlap_vs_ideal")  // paper: 1.0
}

// ---------- Figure 5: TPC-H physical runtimes ----------

func benchFig5(b *testing.B, prof qd.EngineProfile) {
	spec := getTPCH()
	minSize := benchRows / 770
	gPlan := planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: minSize})
	buPlan := planSpec(b, "bottomup", spec, qd.PlanOptions{MinBlockSize: minSize, SelectivityCap: 0.10})
	qdEng := newBenchEngine(b, spec, gPlan, prof, qd.ExecOptions{Parallelism: 1})
	buEng := newBenchEngine(b, spec, buPlan, prof, qd.ExecOptions{Parallelism: 1})
	b.ResetTimer()
	var qdTotal, buTotal time.Duration
	for i := 0; i < b.N; i++ {
		qdWL, err := qdEng.Workload(spec.Queries)
		if err != nil {
			b.Fatal(err)
		}
		buWL, err := buEng.Workload(spec.Queries)
		if err != nil {
			b.Fatal(err)
		}
		qdTotal, buTotal = qdWL.TotalSimTime, buWL.TotalSimTime
	}
	b.ReportMetric(buTotal.Seconds(), "bu_sim_s")
	b.ReportMetric(qdTotal.Seconds(), "qd_sim_s")
	b.ReportMetric(float64(buTotal)/float64(qdTotal+1), "speedup_x") // paper: 1.6x spark, 1.3x dbms
}

func BenchmarkFig5aSparkProfile(b *testing.B) { benchFig5(b, qd.EngineSpark) }
func BenchmarkFig5bDBMSProfile(b *testing.B)  { benchFig5(b, qd.EngineDBMS) }

// ---------- Figure 6: routing performance ----------

func BenchmarkFig6aRouting(b *testing.B) {
	spec := getTPCH()
	plan := planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: benchRows / 770})
	for _, threads := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			var rps float64
			for i := 0; i < b.N; i++ {
				res := router.MeasureThroughput(plan.Tree, spec.Table, threads, 4096)
				rps = res.RecordsPS
			}
			b.ReportMetric(rps, "records/s")
		})
	}
}

func BenchmarkFig6bQueryRouting(b *testing.B) {
	spec := getTPCH()
	// Planning routes and freezes the tree, so it is deployment-ready.
	plan := planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: benchRows / 770})
	qr := &router.QueryRouter{Tree: plan.Tree}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qr.Route(spec.Queries[i%len(spec.Queries)])
	}
	// Per-op time is the Fig. 6b latency; the paper reports < 16 ms max.
}

// ---------- Figure 7: ErrorLog physical runtimes ----------

func benchFig7(b *testing.B, spec *workload.Spec, minSize int) {
	gPlan := planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: minSize})
	buPlan := planSpec(b, "bottomup", spec, qd.PlanOptions{MinBlockSize: minSize, SelectivityCap: 0.10})
	qdEng := newBenchEngine(b, spec, gPlan, qd.EngineSpark, qd.ExecOptions{Parallelism: 1})
	buEng := newBenchEngine(b, spec, buPlan, qd.EngineSpark, qd.ExecOptions{Parallelism: 1})
	nrEng, err := qd.NewEngine(qdEng.Store(), gPlan, qd.EngineSpark, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	nrEng.WithMode(qd.NoRoute)
	b.ResetTimer()
	var qdT, buT, nrT time.Duration
	for i := 0; i < b.N; i++ {
		buWL, err := buEng.Workload(spec.Queries)
		if err != nil {
			b.Fatal(err)
		}
		qdWL, err := qdEng.Workload(spec.Queries)
		if err != nil {
			b.Fatal(err)
		}
		nrWL, err := nrEng.Workload(spec.Queries)
		if err != nil {
			b.Fatal(err)
		}
		buT, qdT, nrT = buWL.TotalSimTime, qdWL.TotalSimTime, nrWL.TotalSimTime
	}
	b.ReportMetric(buT.Seconds(), "bu+_sim_s")
	b.ReportMetric(qdT.Seconds(), "qd_sim_s")
	b.ReportMetric(nrT.Seconds(), "noroute_sim_s")
	b.ReportMetric(float64(buT)/float64(qdT+1), "speedup_x") // paper: 14x int / 5x ext
}

func BenchmarkFig7aErrorLogInt(b *testing.B) { benchFig7(b, getELInt(), benchRows/2000) }
func BenchmarkFig7bErrorLogExt(b *testing.B) { benchFig7(b, getELExt(), benchRows/1620) }

// ---------- Figure 8: learning curve ----------

func BenchmarkFig8LearningCurve(b *testing.B) {
	spec := getELExt()
	var first, last float64
	for i := 0; i < b.N; i++ {
		plan := planSpec(b, "woodblock", spec, qd.PlanOptions{
			MinBlockSize: benchRows / 1620, Hidden: 48, MaxEpisodes: 24, Seed: benchSeed})
		curve := plan.RL.Curve
		first, last = curve[0].Best, curve[len(curve)-1].Best
	}
	b.ReportMetric(first*100, "first_%")
	b.ReportMetric(last*100, "final_%")
}

// ---------- Figure 9: cut interpretation (tree statistics cost) ----------

func BenchmarkFig9CutCounts(b *testing.B) {
	spec := getTPCH()
	plan := planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: benchRows / 770})
	var distinct int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := plan.Tree.CutCounts()
		distinct = len(counts)
	}
	b.ReportMetric(float64(distinct), "columns_cut") // paper: 8 columns cut >= 20 times
}

// ---------- Robustness: train vs unseen queries ----------

func BenchmarkRobustnessUnseenQueries(b *testing.B) {
	spec := getTPCH()
	plan := planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: benchRows / 770})
	test := workload.TPCHQueries(spec.Table.Schema, 20, benchSeed+999)
	var train, unseen float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		train = plan.AccessedFraction(nil)
		unseen = plan.AccessedFraction(test)
	}
	b.ReportMetric(train*100, "train_%")
	b.ReportMetric(unseen*100, "test_%")
	b.ReportMetric(unseen/train, "ratio") // paper: ≈1.003
}

// ---------- Section 7.6: construction time ----------

func BenchmarkBuildTimeGreedy(b *testing.B) {
	spec := getELInt()
	for i := 0; i < b.N; i++ {
		planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: benchRows / 2000})
	}
}

func BenchmarkBuildTimeBottomUp(b *testing.B) {
	spec := getELInt()
	for i := 0; i < b.N; i++ {
		planSpec(b, "bottomup", spec, qd.PlanOptions{MinBlockSize: benchRows / 2000, SelectivityCap: 0.10})
	}
}

func BenchmarkBuildTimeWoodblockPerEpisode(b *testing.B) {
	spec := getELInt()
	for i := 0; i < b.N; i++ {
		planSpec(b, "woodblock", spec, qd.PlanOptions{
			MinBlockSize: benchRows / 2000, Hidden: 48, MaxEpisodes: 4, Seed: int64(i)})
	}
}

// ---------- Section 6.3: two-tree replication ----------

func BenchmarkFig4TwoTree(b *testing.B) {
	spec := getTPCH()
	var one, two float64
	for i := 0; i < b.N; i++ {
		one = planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: benchRows / 770}).AccessedFraction(nil)
		tt := planSpec(b, "twotree", spec, qd.PlanOptions{MinBlockSize: benchRows / 770})
		two = tt.TwoTree.AccessedFraction(spec.Queries)
	}
	b.ReportMetric(one*100, "one_tree_%")
	b.ReportMetric(two*100, "two_tree_%")
}

// ---------- Ablations (DESIGN.md) ----------

// BenchmarkAblationCriterion compares the paper's ΔC greedy criterion to
// a balance-based (decision-tree style) split rule.
func BenchmarkAblationCriterion(b *testing.B) {
	spec := getTPCH()
	var dc, ig float64
	for i := 0; i < b.N; i++ {
		dc = planSpec(b, "greedy", spec, qd.PlanOptions{
			MinBlockSize: benchRows / 770, Criterion: qd.DeltaSkip}).AccessedFraction(nil)
		ig = planSpec(b, "greedy", spec, qd.PlanOptions{
			MinBlockSize: benchRows / 770, Criterion: qd.InfoGain}).AccessedFraction(nil)
	}
	b.ReportMetric(dc*100, "deltaskip_%")
	b.ReportMetric(ig*100, "infogain_%")
}

// BenchmarkAblationWidth sweeps the Woodblock hidden width (paper: 512).
func BenchmarkAblationWidth(b *testing.B) {
	spec := workload.Fig3(10_000, benchSeed)
	for _, hidden := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("hidden=%d", hidden), func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				plan := planSpec(b, "woodblock", spec, qd.PlanOptions{
					MinBlockSize: 50, Hidden: hidden, MaxEpisodes: 16, Seed: benchSeed})
				frac = plan.RL.BestRatio
			}
			b.ReportMetric(frac*100, "best_%")
		})
	}
}

// BenchmarkAblationSample sweeps the construction sample rate (Sec. 5.2.1
// recommends 0.1%–1%; we sweep coarser rates at bench scale). The planner
// scales b to the sample and deploys the tree over the full table.
func BenchmarkAblationSample(b *testing.B) {
	spec := getTPCH()
	for _, rate := range []float64{0.05, 0.2, 1.0} {
		b.Run(fmt.Sprintf("rate=%v", rate), func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				frac = planSpec(b, "greedy", spec, qd.PlanOptions{
					MinBlockSize: benchRows / 770, SampleRate: rate, Seed: benchSeed,
				}).AccessedFraction(nil)
			}
			b.ReportMetric(frac*100, "deployed_%")
		})
	}
}

// BenchmarkAblationBlockSize sweeps b.
func BenchmarkAblationBlockSize(b *testing.B) {
	spec := getTPCH()
	for _, bsize := range []int{benchRows / 200, benchRows / 770, benchRows / 2000} {
		b.Run(fmt.Sprintf("b=%d", bsize), func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				frac = planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: bsize}).AccessedFraction(nil)
			}
			b.ReportMetric(frac*100, "accessed_%")
		})
	}
}

// BenchmarkAblationAdvancedCuts removes the Sec. 6.1 advanced cuts from
// the search space.
func BenchmarkAblationAdvancedCuts(b *testing.B) {
	spec := getTPCH()
	all := toCuts(spec.Cuts)
	var unaryOnly []qd.Cut
	for _, c := range all {
		if !c.IsAdv {
			unaryOnly = append(unaryOnly, c)
		}
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = planSpec(b, "greedy", spec, qd.PlanOptions{
			MinBlockSize: benchRows / 770, Cuts: all}).AccessedFraction(nil)
		without = planSpec(b, "greedy", spec, qd.PlanOptions{
			MinBlockSize: benchRows / 770, Cuts: unaryOnly}).AccessedFraction(nil)
	}
	b.ReportMetric(with*100, "with_AC_%")
	b.ReportMetric(without*100, "without_AC_%")
}

// ---------- parallel scan engine ----------

// parallelFixture materializes a coarse random layout (few, large blocks)
// so each scan task is chunky enough to expose pool scaling.
func parallelFixture(b *testing.B) (*qd.Plan, *qd.BlockStore, *workload.Spec) {
	b.Helper()
	spec := getTPCH()
	plan := planSpec(b, "random", spec, qd.PlanOptions{NumBlocks: 32, Seed: benchSeed})
	store, err := qd.WriteStore(b.TempDir(), spec.Table, plan.Layout)
	if err != nil {
		b.Fatal(err)
	}
	return plan, store, spec
}

// BenchmarkParallelScanSpeedup measures the same multi-query workload at
// Parallelism=1 vs Parallelism=4 (both batched, shared reads) and reports
// the wall-clock speedup. On a single-core host the measured ratio
// degenerates to ~1x while the deterministic model still reports the
// 4x capacity; both are printed so the speedup is measured, not asserted.
func BenchmarkParallelScanSpeedup(b *testing.B) {
	plan, store, spec := parallelFixture(b)
	eng1, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: 1, ShareReads: true})
	if err != nil {
		b.Fatal(err)
	}
	defer eng1.Close()
	eng4, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: 4, ShareReads: true})
	if err != nil {
		b.Fatal(err)
	}
	eng1.WithMode(qd.NoRoute)
	eng4.WithMode(qd.NoRoute)
	var wall1, wall4, sim1, sim4 time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1, err := eng1.Workload(spec.Queries)
		if err != nil {
			b.Fatal(err)
		}
		r4, err := eng4.Workload(spec.Queries)
		if err != nil {
			b.Fatal(err)
		}
		for qi := range r1.Results {
			if r1.Results[qi].ScanStats != r4.Results[qi].ScanStats {
				b.Fatalf("parallel counts diverged for %s", r1.Results[qi].Query)
			}
		}
		wall1 += r1.WallTime
		wall4 += r4.WallTime
		sim1, sim4 = r1.SimTime, r4.SimTime
	}
	b.ReportMetric(wall1.Seconds()/float64(b.N), "p1_wall_s")
	b.ReportMetric(wall4.Seconds()/float64(b.N), "p4_wall_s")
	b.ReportMetric(float64(wall1)/float64(wall4+1), "wall_speedup_x")
	b.ReportMetric(float64(sim1)/float64(sim4+1), "model_speedup_x") // 4.0 by construction
}

// BenchmarkSharedReadSpeedup measures the batched read-once/filter-many
// engine against per-query sequential execution on the same workload —
// the multi-user scan-sharing win, independent of core count.
func BenchmarkSharedReadSpeedup(b *testing.B) {
	plan, store, spec := parallelFixture(b)
	seqEng, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer seqEng.Close()
	batchEng, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: -1, ShareReads: true})
	if err != nil {
		b.Fatal(err)
	}
	seqEng.WithMode(qd.NoRoute)
	batchEng.WithMode(qd.NoRoute)
	var seqWall, batchWall time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for _, q := range spec.Queries {
			if _, err := seqEng.Query(q); err != nil {
				b.Fatal(err)
			}
		}
		seqWall += time.Since(start)
		wr, err := batchEng.Workload(spec.Queries)
		if err != nil {
			b.Fatal(err)
		}
		batchWall += wr.WallTime
	}
	b.ReportMetric(seqWall.Seconds()/float64(b.N), "per_query_wall_s")
	b.ReportMetric(batchWall.Seconds()/float64(b.N), "batched_wall_s")
	b.ReportMetric(float64(seqWall)/float64(batchWall+1), "speedup_x")
}

// BenchmarkCompressedScanSpeedup compares block format v1 (plain) against
// v2 (encoded) on the categorical-heavy ErrorLog-Int workload: wall clock
// of a full batched scan of each store, plus the on-disk compression ratio
// and modeled (SimTime, encoded-byte-charged) speedup as metrics.
func BenchmarkCompressedScanSpeedup(b *testing.B) {
	spec := getELInt()
	plan := planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: benchRows / 64})
	v1Store, err := qd.WriteStore(b.TempDir(), spec.Table, plan.Layout, qd.StoreOptions{FormatVersion: qd.StoreFormatV1})
	if err != nil {
		b.Fatal(err)
	}
	v2Store, err := qd.WriteStore(b.TempDir(), spec.Table, plan.Layout)
	if err != nil {
		b.Fatal(err)
	}
	v1Eng, err := qd.NewEngine(v1Store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: 1, ShareReads: true})
	if err != nil {
		b.Fatal(err)
	}
	defer v1Eng.Close()
	v2Eng, err := qd.NewEngine(v2Store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: 1, ShareReads: true})
	if err != nil {
		b.Fatal(err)
	}
	defer v2Eng.Close()
	var v1Wall, v2Wall time.Duration
	var v1Sim, v2Sim time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w1, err := v1Eng.Workload(spec.Queries)
		if err != nil {
			b.Fatal(err)
		}
		w2, err := v2Eng.Workload(spec.Queries)
		if err != nil {
			b.Fatal(err)
		}
		for qi := range w1.Results {
			if w1.Results[qi].RowsMatched != w2.Results[qi].RowsMatched {
				b.Fatalf("query %d: counts differ between formats", qi)
			}
		}
		v1Wall += w1.WallTime
		v2Wall += w2.WallTime
		v1Sim += w1.TotalSimTime
		v2Sim += w2.TotalSimTime
	}
	b.ReportMetric(v1Store.Sizes().Ratio(), "v1_disk_ratio")
	b.ReportMetric(v2Store.Sizes().Ratio(), "v2_disk_ratio_x")
	b.ReportMetric(float64(v1Sim)/float64(v2Sim+1), "sim_speedup_x")
	b.ReportMetric(float64(v1Wall)/float64(v2Wall+1), "wall_speedup_x")
	b.ReportMetric(v1Wall.Seconds()/float64(b.N), "v1_wall_s")
	b.ReportMetric(v2Wall.Seconds()/float64(b.N), "v2_wall_s")
}

// BenchmarkAggregatePushdown compares the vectorized aggregation engine
// (encoded-column kernels, zone-map shortcuts) against decode-then-
// aggregate on a filtered SUM over the ErrorLog-Int demo. The acceptance
// bar — ≥1.5x modeled (sim-time) speedup with identical results — is
// pinned by TestAggregatePushdownAcceptance; this benchmark reports the
// measured ratio plus wall time.
func BenchmarkAggregatePushdown(b *testing.B) {
	spec := getELInt()
	plan := planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: benchRows / 64})
	store, err := qd.WriteStore(b.TempDir(), spec.Table, plan.Layout)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	aq, _, err := qd.ParseSelect(spec.Table.Schema,
		"SELECT SUM(x_num06), COUNT(*) FROM logs WHERE ingest_date >= 48 AND validity = 'VALID'")
	if err != nil {
		b.Fatal(err)
	}
	truth := qd.ReferenceAggregate(spec.Table, aq, plan.ACs)
	var pushSim, naiveSim, pushWall, naiveWall time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		push, err := eng.Aggregate(aq)
		if err != nil {
			b.Fatal(err)
		}
		naive, err := qd.AggregateNaive(store, plan, aq, qd.EngineSpark, qd.RouteQdTree)
		if err != nil {
			b.Fatal(err)
		}
		if push.Rows[0].Vals[0].Int != truth[0].Vals[0].Int || naive.Rows[0].Vals[0].Int != truth[0].Vals[0].Int {
			b.Fatal("aggregate results diverge from reference")
		}
		pushSim += push.SimTime
		naiveSim += naive.SimTime
		pushWall += push.WallTime
		naiveWall += naive.WallTime
	}
	b.ReportMetric(float64(naiveSim)/float64(pushSim+1), "sim_speedup_x")
	b.ReportMetric(float64(naiveWall)/float64(pushWall+1), "wall_speedup_x")
	b.ReportMetric(pushWall.Seconds()/float64(b.N)*1e3, "pushdown_ms")
	b.ReportMetric(naiveWall.Seconds()/float64(b.N)*1e3, "naive_ms")
}

// ---------- micro-benchmarks of the hot paths ----------

func BenchmarkRouteTable(b *testing.B) {
	spec := getTPCH()
	plan := planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: benchRows / 770})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Tree.RouteTable(spec.Table)
	}
	b.SetBytes(int64(spec.Table.N * spec.Table.Schema.NumCols() * 8))
}

func BenchmarkCounterSplit(b *testing.B) {
	spec := getTPCH()
	cuts := toCuts(spec.Cuts)
	cnt := core.NewCounter(spec.Table, spec.ACs, cuts, nil)
	inLeft := make([]bool, spec.Table.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt.Split(cuts[i%len(cuts)], inLeft)
	}
}

func BenchmarkBlockstoreScan(b *testing.B) {
	spec := getTPCH()
	plan := planSpec(b, "greedy", spec, qd.PlanOptions{MinBlockSize: benchRows / 770})
	eng := newBenchEngine(b, spec, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: 1})
	q := spec.Queries[0]
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		res, err := eng.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		total += res.BytesRead
	}
	b.SetBytes(total / int64(b.N))
}

// TestMain gives the benches a place to report scale context once.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
