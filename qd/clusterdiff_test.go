package qd_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/qd"
)

// encodeIngest renders integer rows as the JSON wire shape of POST
// /ingest bodies.
func encodeIngest(rows [][]int64) qd.IngestRequest {
	req := qd.IngestRequest{Rows: make([][]json.RawMessage, len(rows))}
	for i, row := range rows {
		vals := make([]json.RawMessage, len(row))
		for c, v := range row {
			vals[c] = json.RawMessage(fmt.Sprintf("%d", v))
		}
		req.Rows[i] = vals
	}
	return req
}

// startShardServers serves every shard root of an initialized cluster
// through httptest and returns the peer addresses.
func startShardServers(t *testing.T, dir string, m *qd.ClusterManifest, acs []qd.AdvCut) []string {
	t.Helper()
	var addrs []string
	for _, asn := range m.Shards {
		s, err := qd.NewServer(qd.ClusterShardRoot(dir, asn.ID), qd.ServeOptions{
			ACs:        acs,
			ShardLabel: fmt.Sprintf("shard_%03d", asn.ID),
			MinWindow:  1,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(qd.ShardServerHandler(s))
		t.Cleanup(func() { hs.Close(); s.Close() })
		addrs = append(addrs, hs.URL)
	}
	return addrs
}

// TestClusterDifferential is the distributed acceptance property: random
// tables and random filter/aggregate workloads through the front door
// return answers bit-identical to a single-node engine over the same
// rows — across 1, 2, and 4 shards and both block formats. Integer
// aggregates and match counts must be exact; AVG within 1e-9 relative
// (the same tolerance the single-node differential suite allows).
func TestClusterDifferential(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			tbl, queries, acs := randomSpec(seed)
			rng := rand.New(rand.NewSource(seed * 31))
			aggWorkload := randomAggWorkload(rng, tbl.Schema.Cols[1].Dom)

			// Ground truth: exact per-query match counts and the
			// row-at-a-time reference aggregates.
			matchTruth := qd.PerQueryMatches(tbl, queries, acs)
			aggTruth := make([]qd.Rows, len(aggWorkload))
			for i, aq := range aggWorkload {
				aggTruth[i] = qd.ReferenceAggregate(tbl, aq, acs)
			}

			ds := qd.NewDataset(tbl.Schema, tbl).WithQueries(queries, acs)
			plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 300})
			if err != nil {
				t.Fatal(err)
			}
			names := tbl.Schema.Names()

			formats := []struct {
				label string
				opt   qd.StoreOptions
			}{
				{"v1", qd.StoreOptions{FormatVersion: qd.StoreFormatV1}},
				{"v2", qd.StoreOptions{}},
			}
			for _, format := range formats {
				for _, nshards := range []int{1, 2, 4} {
					label := fmt.Sprintf("%s/shards%d", format.label, nshards)
					dir := t.TempDir()
					m, err := qd.InitCluster(dir, tbl, plan, nshards, format.opt)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					addrs := startShardServers(t, dir, m, acs)
					fd, err := qd.NewFrontDoor(addrs, qd.FrontDoorOptions{ACs: acs})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}

					for i, q := range queries {
						sql := q.StringWith(names, acs)
						res, err := fd.Query(sql)
						if err != nil {
							t.Fatalf("%s/%s: %v", label, sql, err)
						}
						if res.Partial {
							t.Fatalf("%s/%s: unexpected partial result", label, sql)
						}
						if res.Filter.RowsMatched != matchTruth[i] {
							t.Fatalf("%s/%s: matched %d, want %d", label, sql, res.Filter.RowsMatched, matchTruth[i])
						}
						if res.Filter.RowsTotal != int64(tbl.N) {
							t.Fatalf("%s/%s: RowsTotal %d, want %d", label, sql, res.Filter.RowsTotal, tbl.N)
						}
					}
					for i, aq := range aggWorkload {
						sql := aq.StringWith(names, acs)
						res, err := fd.Query(sql)
						if err != nil {
							t.Fatalf("%s/%s: %v", label, sql, err)
						}
						sameAggRows(t, fmt.Sprintf("%s/%s", label, sql), res.Agg.Rows, aggTruth[i])
						if res.Agg.RowsTotal != int64(tbl.N) {
							t.Fatalf("%s/%s: RowsTotal %d, want %d", label, sql, res.Agg.RowsTotal, tbl.N)
						}
					}
					// The workload includes a fully-out-of-domain filter;
					// with shard summaries loaded it must contact nothing.
					res, err := fd.Query("t > 1099511627776")
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if res.ShardsContacted != 0 || res.ShardsPruned != nshards {
						t.Fatalf("%s: out-of-domain query contacted %d, pruned %d of %d",
							label, res.ShardsContacted, res.ShardsPruned, nshards)
					}
				}
			}
		})
	}
}

// TestClusterIngestDifferential routes ingest through the front door and
// checks the cluster answer tracks a single-node server fed the same
// rows.
func TestClusterIngestDifferential(t *testing.T) {
	tbl, queries, acs := randomSpec(5)
	ds := qd.NewDataset(tbl.Schema, tbl).WithQueries(queries, acs)
	plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m, err := qd.InitCluster(dir, tbl, plan, 3)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startShardServers(t, dir, m, acs)
	fd, err := qd.NewFrontDoor(addrs, qd.FrontDoorOptions{ACs: acs})
	if err != nil {
		t.Fatal(err)
	}

	baseline, err := fd.Query("SELECT COUNT(*), SUM(v) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	baseCount := baseline.Agg.Rows[0].Vals[0].Int
	baseSum := baseline.Agg.Rows[0].Vals[1].Int
	if baseCount != int64(tbl.N) {
		t.Fatalf("baseline count %d, want %d", baseCount, tbl.N)
	}

	// Route 60 rows through the front door (values inside the schema
	// domains; v contributes a known sum delta).
	rng := rand.New(rand.NewSource(17))
	var rows [][]int64
	var sumDelta int64
	for i := 0; i < 60; i++ {
		v := int64(rng.Intn(1001)) - 500
		sumDelta += v
		rows = append(rows, []int64{rng.Int63n(10000), rng.Int63n(tbl.Schema.Cols[1].Dom), v, rng.Int63n(2), rng.Int63n(10000)})
	}
	ing, err := fd.Ingest(encodeIngest(rows))
	if err != nil {
		t.Fatal(err)
	}
	if ing.Inserted != 60 {
		t.Fatalf("inserted %d, want 60", ing.Inserted)
	}

	after, err := fd.Query("SELECT COUNT(*), SUM(v) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := after.Agg.Rows[0].Vals[0].Int; got != baseCount+60 {
		t.Fatalf("post-ingest count %d, want %d", got, baseCount+60)
	}
	if got := after.Agg.Rows[0].Vals[1].Int; got != baseSum+sumDelta {
		t.Fatalf("post-ingest sum %d, want %d", got, baseSum+sumDelta)
	}
}
