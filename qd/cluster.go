package qd

import (
	"fmt"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// Cluster re-exports. The cluster subsystem scales the learned layout
// across store nodes: the coordinator partitions a plan's leaves into
// shard assignments, every shard serves its slice as a full Server
// (own delta store, own drift monitor, independent re-layouts), and a
// stateless front door prunes shards by their summary envelopes,
// scatters the canonical SQL, and gathers partials into answers
// bit-identical to a single-node run.
type (
	// FrontDoor is the scatter/gather tier: shard-level SMA pruning,
	// parallel fan-out with per-shard timeout and bounded retry, and
	// order-independent partial merging.
	FrontDoor = cluster.FrontDoor
	// FrontDoorOptions tune the scatter client (timeout, retries, ACs).
	FrontDoorOptions = cluster.FrontDoorOptions
	// ClusterResult is one gathered cluster query: the merged answer plus
	// the scatter's shape (pruned/contacted/failed shards, partial flag).
	ClusterResult = cluster.Result
	// ClusterStats is the front door's observability snapshot.
	ClusterStats = cluster.Stats
	// ClusterManifest records a partitioned layout: schema plus every
	// shard's leaf assignment.
	ClusterManifest = cluster.Manifest
	// ShardAssignment is one shard's slice of a partitioned layout.
	ShardAssignment = cluster.ShardAssignment
	// ShardSummary is one shard's pruning envelope: per-column min/max
	// over its base blocks plus the uncompacted delta row count.
	ShardSummary = serve.Summary
	// IngestRequest is the POST /ingest body shape, shared by standalone
	// servers and the front door's routed ingest.
	IngestRequest = serve.IngestRequest
	// IngestRouteResult reports one front-door-routed ingest batch.
	IngestRouteResult = cluster.IngestResult
)

// InitCluster partitions the plan's leaves into nshards balanced
// assignments (LPT greedy on leaf row counts) and materializes each
// shard as its own generation root under dir/shard_000..NNN, writing
// manifest.json beside them. Each root is then servable by NewServer
// exactly like a standalone root.
func InitCluster(dir string, tbl *Table, plan *Plan, nshards int, opts ...StoreOptions) (*ClusterManifest, error) {
	if plan == nil || plan.Layout == nil {
		return nil, fmt.Errorf("qd: InitCluster needs a plan with a layout")
	}
	return cluster.InitShards(dir, tbl, plan.Layout, plan.ACs, nshards, opts...)
}

// InitClusterShard materializes only shard id of the plan's partition
// under dir (dir/shard_<id>). The partition is deterministic, so N
// processes calling this with the same table and plan bootstrap
// consistent slices without a coordinator process.
func InitClusterShard(dir string, tbl *Table, plan *Plan, nshards, id int, opts ...StoreOptions) error {
	if plan == nil || plan.Layout == nil {
		return fmt.Errorf("qd: InitClusterShard needs a plan with a layout")
	}
	m := cluster.BuildManifest(plan.Layout, nshards)
	if id < 0 || id >= len(m.Shards) {
		return fmt.Errorf("qd: shard id %d out of range (%d shards)", id, len(m.Shards))
	}
	return cluster.InitShard(dir, tbl, plan.Layout, plan.ACs, m.Shards[id], opts...)
}

// LoadClusterManifest reads the manifest InitCluster wrote.
func LoadClusterManifest(dir string) (*ClusterManifest, error) {
	return cluster.LoadManifest(dir)
}

// ClusterShardRoot is the generation-root directory of shard id under a
// cluster directory (dir/shard_000 ...).
func ClusterShardRoot(dir string, id int) string { return cluster.ShardRoot(dir, id) }

// NewFrontDoor connects to the shard addresses, learns the schema from
// their summaries, and returns the scatter/gather handle.
func NewFrontDoor(addrs []string, opt FrontDoorOptions) (*FrontDoor, error) {
	return cluster.NewFrontDoor(addrs, opt)
}

// FrontDoorHandler mounts the front door's HTTP/JSON API (POST /query,
// POST /ingest, GET /stats, POST /refresh, GET /healthz).
func FrontDoorHandler(fd *FrontDoor) http.Handler { return cluster.FrontDoorHandler(fd) }

// ShardServerHandler mounts a Server's store-node HTTP surface: the full
// standalone API plus GET /cluster/summary and POST /cluster/select.
func ShardServerHandler(s *Server) http.Handler { return cluster.ShardHandler(s) }
