package qd_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/qd"
)

// randomSpec draws a random schema, table, and workload: a mix of numeric
// and categorical columns (small domains so DICT/RLE fire), with queries
// combining range, equality, IN, OR, and advanced (column-vs-column)
// predicates — the full predicate language both scan paths must agree on.
func randomSpec(seed int64) (*qd.Table, []qd.Query, []qd.AdvCut) {
	rng := rand.New(rand.NewSource(seed))
	dict := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	schema := qd.MustSchema([]qd.Column{
		{Name: "t", Kind: qd.Numeric, Min: 0, Max: 9999},
		{Name: "cat", Kind: qd.Categorical, Dom: int64(2 + rng.Intn(7)), Dict: dict},
		{Name: "v", Kind: qd.Numeric, Min: -500, Max: 500},
		{Name: "flag", Kind: qd.Categorical, Dom: 2, Dict: []string{"N", "Y"}},
		{Name: "u", Kind: qd.Numeric, Min: 0, Max: 9999},
	})
	n := 2000 + rng.Intn(3000)
	tbl := qd.NewTable(schema, n)
	dom := schema.Cols[1].Dom
	t0 := int64(0)
	for i := 0; i < n; i++ {
		t0 += int64(rng.Intn(10)) // mostly-sorted time column -> runs
		if t0 > 9999 {
			t0 = 0
		}
		tbl.AppendRow([]int64{
			t0,
			rng.Int63n(dom),
			int64(rng.Intn(1001)) - 500,
			int64(rng.Intn(2)),
			rng.Int63n(10000),
		})
	}
	acs := []qd.AdvCut{{Left: 0, Op: qd.Lt, Right: 4}}
	var queries []qd.Query
	for i := 0; i < 10; i++ {
		var root *expr.Node
		switch i % 5 {
		case 0: // range + equality
			root = qd.And(
				qd.P(qd.Pred{Col: 0, Op: qd.Ge, Literal: int64(rng.Intn(9000))}),
				qd.P(qd.Pred{Col: 1, Op: qd.Eq, Literal: rng.Int63n(dom)}),
			)
		case 1: // IN + range
			root = qd.And(
				qd.P(qd.NewIn(1, []int64{rng.Int63n(dom), rng.Int63n(dom)})),
				qd.P(qd.Pred{Col: 2, Op: qd.Lt, Literal: int64(rng.Intn(400))}),
			)
		case 2: // disjunction
			root = qd.Or(
				qd.P(qd.Pred{Col: 2, Op: qd.Gt, Literal: 400}),
				qd.P(qd.Pred{Col: 2, Op: qd.Lt, Literal: -400}),
			)
		case 3: // advanced cut + flag
			root = qd.And(
				qd.AdvRef(0),
				qd.P(qd.Pred{Col: 3, Op: qd.Eq, Literal: 1}),
			)
		default: // nested and/or
			root = qd.And(
				qd.Or(
					qd.P(qd.Pred{Col: 0, Op: qd.Lt, Literal: int64(rng.Intn(5000))}),
					qd.P(qd.Pred{Col: 4, Op: qd.Ge, Literal: int64(rng.Intn(9000))}),
				),
				qd.P(qd.Pred{Col: 1, Op: qd.Le, Literal: rng.Int63n(dom)}),
			)
		}
		queries = append(queries, qd.NewQuery(fmt.Sprintf("xq%d", i), root))
	}
	return tbl, queries, acs
}

// TestCrossFormatEquivalence is the format-v2 acceptance property: the
// same randomized table and workload, materialized as both a v1 (plain)
// and a v2 (encoded) store, must return identical per-query match counts
// — equal to the exact row-at-a-time ground truth — and identical
// RowsScanned / BlocksScanned / RowsTotal through qd.Engine, across every
// engine profile, pruning mode, parallelism, and read-sharing setting.
func TestCrossFormatEquivalence(t *testing.T) {
	profiles := []qd.EngineProfile{qd.EngineSpark, qd.EngineDBMS}
	modes := []qd.ExecMode{qd.RouteQdTree, qd.NoRoute}
	options := []qd.ExecOptions{
		{Parallelism: 1},
		{Parallelism: 4},
		{Parallelism: 4, ShareReads: true},
	}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			tbl, queries, acs := randomSpec(seed)
			truth := qd.PerQueryMatches(tbl, queries, acs)

			// A qd-tree layout over the workload, plus its materialization
			// in both formats.
			ds := qd.NewDataset(tbl.Schema, tbl).WithQueries(queries, acs)
			plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 300})
			if err != nil {
				t.Fatal(err)
			}
			v1, err := qd.WriteStore(t.TempDir(), tbl, plan.Layout, qd.StoreOptions{FormatVersion: qd.StoreFormatV1})
			if err != nil {
				t.Fatal(err)
			}
			v2, err := qd.WriteStore(t.TempDir(), tbl, plan.Layout)
			if err != nil {
				t.Fatal(err)
			}
			s1, s2 := v1.Sizes(), v2.Sizes()
			if s2.EncodedBytes >= s1.EncodedBytes {
				t.Errorf("v2 store %d encoded bytes, v1 %d; expected compression", s2.EncodedBytes, s1.EncodedBytes)
			}

			for _, prof := range profiles {
				for _, mode := range modes {
					for _, opt := range options {
						label := fmt.Sprintf("%s/mode%d/p%d/share%v", prof.Name, mode, opt.Parallelism, opt.ShareReads)
						e1, err := qd.NewEngine(v1, plan, prof, opt)
						if err != nil {
							t.Fatal(err)
						}
						e2, err := qd.NewEngine(v2, plan, prof, opt)
						if err != nil {
							t.Fatal(err)
						}
						e1.WithMode(mode)
						e2.WithMode(mode)

						for qi, q := range queries {
							r1, err := e1.Query(q)
							if err != nil {
								t.Fatalf("%s: v1 query %s: %v", label, q.Name, err)
							}
							r2, err := e2.Query(q)
							if err != nil {
								t.Fatalf("%s: v2 query %s: %v", label, q.Name, err)
							}
							if r1.RowsMatched != truth[qi] || r2.RowsMatched != truth[qi] {
								t.Fatalf("%s: query %s matches v1=%d v2=%d truth=%d",
									label, q.Name, r1.RowsMatched, r2.RowsMatched, truth[qi])
							}
							if r1.RowsScanned != r2.RowsScanned || r1.BlocksScanned != r2.BlocksScanned {
								t.Fatalf("%s: query %s scan divergence: v1 %d rows/%d blocks, v2 %d rows/%d blocks",
									label, q.Name, r1.RowsScanned, r1.BlocksScanned, r2.RowsScanned, r2.BlocksScanned)
							}
							if r1.RowsTotal != r2.RowsTotal || r1.BlocksTotal != r2.BlocksTotal {
								t.Fatalf("%s: query %s store totals diverge", label, q.Name)
							}
							if r1.BytesLogical != r2.BytesLogical {
								t.Fatalf("%s: query %s logical bytes diverge: %d vs %d",
									label, q.Name, r1.BytesLogical, r2.BytesLogical)
							}
						}

						// The batched path must agree with itself and the truth too.
						w1, err := e1.Workload(queries)
						if err != nil {
							t.Fatalf("%s: v1 workload: %v", label, err)
						}
						w2, err := e2.Workload(queries)
						if err != nil {
							t.Fatalf("%s: v2 workload: %v", label, err)
						}
						for qi := range queries {
							a, b := w1.Results[qi], w2.Results[qi]
							if a.RowsMatched != truth[qi] || b.RowsMatched != truth[qi] {
								t.Fatalf("%s: workload query %d matches v1=%d v2=%d truth=%d",
									label, qi, a.RowsMatched, b.RowsMatched, truth[qi])
							}
							if a.RowsScanned != b.RowsScanned {
								t.Fatalf("%s: workload query %d rows scanned diverge", label, qi)
							}
						}
						e1.Close()
						e2.Close()
					}
				}
			}
		})
	}
}
