package qd_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/qd"
)

// randomAggWorkload draws aggregate statements over the randomSpec schema
// (t, cat, v, flag, u): every function, filters reusing the predicate mix
// of the scan-equivalence suite (including advanced cuts), and global /
// single / dense-categorical / multi-column groupings.
func randomAggWorkload(rng *rand.Rand, dom int64) []qd.AggQuery {
	filters := []*expr.Node{
		nil,
		qd.P(qd.Pred{Col: 0, Op: qd.Ge, Literal: int64(rng.Intn(9000))}),
		qd.And(
			qd.P(qd.NewIn(1, []int64{rng.Int63n(dom), rng.Int63n(dom)})),
			qd.P(qd.Pred{Col: 2, Op: qd.Lt, Literal: int64(rng.Intn(400))}),
		),
		qd.Or(
			qd.P(qd.Pred{Col: 2, Op: qd.Gt, Literal: 400}),
			qd.P(qd.Pred{Col: 2, Op: qd.Lt, Literal: -400}),
		),
		qd.And(qd.AdvRef(0), qd.P(qd.Pred{Col: 3, Op: qd.Eq, Literal: 1})),
		qd.P(qd.Pred{Col: 0, Op: qd.Gt, Literal: 1 << 40}), // fully pruned
	}
	groupings := [][]int{nil, {1}, {3}, {1, 3}, {4}}
	pool := []qd.Agg{
		{Func: qd.AggCountStar},
		{Func: qd.AggCount, Col: 2},
		{Func: qd.AggSum, Col: 2},
		{Func: qd.AggSum, Col: 0},
		{Func: qd.AggMin, Col: 2},
		{Func: qd.AggMax, Col: 0},
		{Func: qd.AggAvg, Col: 2},
		{Func: qd.AggAvg, Col: 4},
		{Func: qd.AggMin, Col: 4},
	}
	var out []qd.AggQuery
	for i, root := range filters {
		gb := groupings[rng.Intn(len(groupings))]
		aggs := []qd.Agg{pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))], {Func: qd.AggCountStar}, {Func: qd.AggAvg, Col: 2}}
		out = append(out, qd.AggQuery{
			Name:    fmt.Sprintf("aq%d", i),
			Aggs:    aggs,
			GroupBy: gb,
			Filter:  qd.Query{Root: root},
		})
	}
	return out
}

func sameAggRows(t *testing.T, label string, got, want qd.Rows) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if len(g.Key) != len(w.Key) {
			t.Fatalf("%s row %d: key %v, want %v", label, i, g.Key, w.Key)
		}
		for k := range w.Key {
			if g.Key[k] != w.Key[k] {
				t.Fatalf("%s row %d: key %v, want %v", label, i, g.Key, w.Key)
			}
		}
		for v := range w.Vals {
			gv, wv := g.Vals[v], w.Vals[v]
			// Integer aggregates must be exact; AVG within 1e-9 relative.
			if gv.Valid != wv.Valid || gv.Int != wv.Int {
				t.Fatalf("%s row %d val %d: got %+v, want %+v", label, i, v, gv, wv)
			}
			rel := math.Abs(gv.Float - wv.Float)
			if wv.Float != 0 {
				rel /= math.Abs(wv.Float)
			}
			if rel > 1e-9 {
				t.Fatalf("%s row %d val %d: AVG %v, want %v", label, i, v, gv.Float, wv.Float)
			}
		}
	}
}

// TestAggregateDifferential is the aggregation acceptance property:
// random tables and random aggregate/GROUP BY workloads return results
// identical to the naive row-at-a-time reference evaluator — exact for
// integer aggregates, within 1e-9 relative error for AVG — across both
// block formats, both engine profiles, both pruning modes, every
// parallelism/ShareReads setting, and the Engine facade.
func TestAggregateDifferential(t *testing.T) {
	profiles := []qd.EngineProfile{qd.EngineSpark, qd.EngineDBMS}
	modes := []qd.ExecMode{qd.RouteQdTree, qd.NoRoute}
	options := []qd.ExecOptions{
		{Parallelism: 1},
		{Parallelism: 4},
		{Parallelism: 4, ShareReads: true},
	}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			tbl, queries, acs := randomSpec(seed)
			rng := rand.New(rand.NewSource(seed * 31))
			workload := randomAggWorkload(rng, tbl.Schema.Cols[1].Dom)
			truth := make([]qd.Rows, len(workload))
			for i, aq := range workload {
				truth[i] = qd.ReferenceAggregate(tbl, aq, acs)
			}

			ds := qd.NewDataset(tbl.Schema, tbl).WithQueries(queries, acs)
			plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 300})
			if err != nil {
				t.Fatal(err)
			}
			v1, err := qd.WriteStore(t.TempDir(), tbl, plan.Layout, qd.StoreOptions{FormatVersion: qd.StoreFormatV1})
			if err != nil {
				t.Fatal(err)
			}
			v2, err := qd.WriteStore(t.TempDir(), tbl, plan.Layout)
			if err != nil {
				t.Fatal(err)
			}

			for _, prof := range profiles {
				for _, mode := range modes {
					for _, opt := range options {
						for fi, store := range []*qd.BlockStore{v1, v2} {
							label := fmt.Sprintf("v%d/%s/mode%d/p%d/share%v", fi+1, prof.Name, mode, opt.Parallelism, opt.ShareReads)
							eng, err := qd.NewEngine(store, plan, prof, opt)
							if err != nil {
								t.Fatal(err)
							}
							eng.WithMode(mode)
							results, err := eng.AggregateWorkload(workload)
							if err != nil {
								t.Fatalf("%s: %v", label, err)
							}
							for i, res := range results {
								sameAggRows(t, fmt.Sprintf("%s/%s", label, workload[i].Name), res.Rows, truth[i])
								if res.RowsTotal != int64(tbl.N) {
									t.Fatalf("%s/%s: RowsTotal %d, want %d", label, workload[i].Name, res.RowsTotal, tbl.N)
								}
							}
							eng.Close()
						}
					}
				}
			}
		})
	}
}

// TestAggregateSQLEndToEnd drives the whole path — SQL text through
// ParseSelect, a planned layout, a v2 store, and Engine.Aggregate — and
// checks the typed rows against the reference evaluator.
func TestAggregateSQLEndToEnd(t *testing.T) {
	tbl, queries, acs := randomSpec(42)
	ds := qd.NewDataset(tbl.Schema, tbl).WithQueries(queries, acs)
	plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 400})
	if err != nil {
		t.Fatal(err)
	}
	store, err := qd.WriteStore(t.TempDir(), tbl, plan.Layout)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := qd.NewEngine(store, plan, qd.EngineDBMS, qd.ExecOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	sqls := []string{
		"SELECT COUNT(*) FROM t",
		"SELECT COUNT(*), SUM(v), AVG(v) FROM t WHERE t >= 2000",
		"SELECT cat, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t WHERE flag = 'Y' GROUP BY cat",
		"SELECT flag, cat, AVG(u) FROM t GROUP BY flag, cat",
		"SELECT MIN(t), MAX(t) FROM t",
	}
	aqs, _, err := qd.ParseAggWorkload(tbl.Schema, sqls)
	if err != nil {
		t.Fatal(err)
	}
	for i, aq := range aqs {
		res, err := eng.Aggregate(aq)
		if err != nil {
			t.Fatalf("%s: %v", sqls[i], err)
		}
		sameAggRows(t, sqls[i], res.Rows, qd.ReferenceAggregate(tbl, aq, acs))
	}
	if _, err := eng.Aggregate(qd.AggQuery{Aggs: []qd.Agg{{Func: qd.AggSum, Col: 99}}}); err == nil {
		t.Error("out-of-schema aggregate must error through the engine")
	}
	// A filter referencing an advanced cut beyond the plan's table must
	// surface as an error, never an index panic in the kernels.
	if _, err := eng.Aggregate(qd.AggQuery{
		Aggs:   []qd.Agg{{Func: qd.AggCountStar}},
		Filter: qd.Query{Root: qd.AdvRef(len(acs) + 3)},
	}); err == nil {
		t.Error("out-of-range advanced cut must error through the engine")
	}
}
