package qd_test

// Differential property test for the streaming-ingest read path: random
// interleavings of Insert / Flush / Query / Aggregate must keep the
// merged `delta ∪ base` view bit-identical to a row-at-a-time reference
// over the table-so-far — across both store formats, both engine
// profiles, both pruning modes, and sequential vs parallel scans — and a
// final Compact must fold the delta without changing a single answer.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/qd"
)

// splitSpec splits a random spec into a bulk-loaded base and an insert
// stream (one []int64 per row).
func splitSpec(tbl *qd.Table, frac float64) (*qd.Table, [][]int64) {
	nbase := int(float64(tbl.N) * frac)
	base := qd.NewTable(tbl.Schema, nbase)
	var stream [][]int64
	row := make([]int64, tbl.Schema.NumCols())
	for r := 0; r < tbl.N; r++ {
		row = tbl.Row(r, row)
		if r < nbase {
			base.AppendRow(row)
		} else {
			stream = append(stream, append([]int64(nil), row...))
		}
	}
	return base, stream
}

func TestIngestDifferential(t *testing.T) {
	profiles := []qd.EngineProfile{qd.EngineSpark, qd.EngineDBMS}
	modes := []qd.ExecMode{qd.RouteQdTree, qd.NoRoute}
	options := []qd.ExecOptions{
		{Parallelism: 1},
		{Parallelism: 4, ShareReads: true},
	}
	formats := []int{qd.StoreFormatV1, qd.StoreFormatV2}

	for seed := int64(1); seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			tbl, queries, acs := randomSpec(seed)
			base, stream := splitSpec(tbl, 0.7)
			ds := qd.NewDataset(tbl.Schema, base).WithQueries(queries, acs)
			plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 300})
			if err != nil {
				t.Fatal(err)
			}

			combo := 0
			for _, format := range formats {
				for _, prof := range profiles {
					for _, mode := range modes {
						for _, opt := range options {
							combo++
							label := fmt.Sprintf("v%d/%s/mode%d/p%d", format, prof.Name, mode, opt.Parallelism)
							store, err := qd.WriteStore(t.TempDir(), base, plan.Layout, qd.StoreOptions{FormatVersion: format})
							if err != nil {
								t.Fatal(err)
							}
							eng, err := qd.NewEngine(store, plan, prof, opt)
							if err != nil {
								t.Fatal(err)
							}
							eng.WithMode(mode)
							runInterleaving(t, label, eng, rand.New(rand.NewSource(seed*1000+int64(combo))),
								base, stream, queries, acs)
							eng.Close()
						}
					}
				}
			}
		})
	}
}

// runInterleaving drives one engine through a random op sequence,
// checking every read against the reference over the rows inserted so
// far, then compacts and re-checks the whole workload.
func runInterleaving(t *testing.T, label string, eng *qd.Engine, rng *rand.Rand,
	base *qd.Table, stream [][]int64, queries []qd.Query, acs []qd.AdvCut) {
	t.Helper()
	ref := qd.NewTable(base.Schema, base.N+len(stream))
	ref.Concat(base)
	aggs := randomAggWorkload(rng, base.Schema.Cols[1].Dom)
	si := 0

	for step := 0; step < 16; step++ {
		switch rng.Intn(4) {
		case 0: // insert a chunk
			k := 1 + rng.Intn(150)
			if si+k > len(stream) {
				k = len(stream) - si
			}
			if k == 0 {
				continue
			}
			if err := eng.Insert(stream[si : si+k]); err != nil {
				t.Fatalf("%s step %d: insert: %v", label, step, err)
			}
			for _, row := range stream[si : si+k] {
				ref.AppendRow(row)
			}
			si += k
		case 1: // durability point
			if err := eng.Flush(); err != nil {
				t.Fatalf("%s step %d: flush: %v", label, step, err)
			}
		case 2: // filter query
			qi := rng.Intn(len(queries))
			res, err := eng.Query(queries[qi])
			if err != nil {
				t.Fatalf("%s step %d: query: %v", label, step, err)
			}
			want := qd.PerQueryMatches(ref, queries[qi:qi+1], acs)[0]
			if res.RowsMatched != want {
				t.Fatalf("%s step %d: %s matched %d, reference %d (delta %d rows)",
					label, step, queries[qi].Name, res.RowsMatched, want, ref.N-base.N)
			}
			if res.RowsTotal != int64(ref.N) {
				t.Fatalf("%s step %d: RowsTotal %d, want %d (delta rows count toward the universe)",
					label, step, res.RowsTotal, ref.N)
			}
		default: // aggregation
			ai := rng.Intn(len(aggs))
			res, err := eng.Aggregate(aggs[ai])
			if err != nil {
				t.Fatalf("%s step %d: aggregate: %v", label, step, err)
			}
			sameAggRows(t, fmt.Sprintf("%s step %d %s", label, step, aggs[ai].Name),
				res.Rows, qd.ReferenceAggregate(ref, aggs[ai], acs))
		}
	}

	// Compaction folds the delta without changing any answer.
	if err := eng.Compact(); err != nil {
		t.Fatalf("%s: compact: %v", label, err)
	}
	if eng.DeltaRows() != 0 {
		t.Fatalf("%s: %d delta rows survive compaction", label, eng.DeltaRows())
	}
	exact := qd.PerQueryMatches(ref, queries, acs)
	wr, err := eng.Workload(queries)
	if err != nil {
		t.Fatalf("%s: post-compaction workload: %v", label, err)
	}
	for i := range wr.Results {
		if wr.Results[i].RowsMatched != exact[i] {
			t.Fatalf("%s: post-compaction %s matched %d, reference %d",
				label, queries[i].Name, wr.Results[i].RowsMatched, exact[i])
		}
		if wr.Results[i].DeltaRows != 0 {
			t.Fatalf("%s: post-compaction scan still reads delta rows", label)
		}
	}
	for _, aq := range aggs {
		res, err := eng.Aggregate(aq)
		if err != nil {
			t.Fatalf("%s: post-compaction %s: %v", label, aq.Name, err)
		}
		sameAggRows(t, fmt.Sprintf("%s post-compaction %s", label, aq.Name),
			res.Rows, qd.ReferenceAggregate(ref, aq, acs))
	}
}
