package qd

import (
	"fmt"
)

// Dataset binds a schema, a table, and a workload (parsed queries plus the
// advanced-cut table) into one handle. It is the single input every
// Planner consumes, replacing the (tbl, queries, acs) parameter triple
// that earlier API revisions threaded through each constructor.
//
// A Dataset is cheap: it holds references, never copies the table.
type Dataset struct {
	Schema  *Schema
	Table   *Table
	Queries []Query
	ACs     []AdvCut

	err error // deferred construction error, surfaced by Planner.Plan
}

// NewDataset binds a schema and a table. The workload is attached with
// WithWorkload (SQL strings) or WithQueries (pre-parsed queries). A nil
// schema adopts the table's schema.
func NewDataset(s *Schema, tbl *Table) *Dataset {
	d := &Dataset{Schema: s, Table: tbl}
	if tbl == nil {
		d.err = fmt.Errorf("qd: dataset has no table")
		return d
	}
	if d.Schema == nil {
		d.Schema = tbl.Schema
	}
	if d.Schema == nil {
		d.err = fmt.Errorf("qd: dataset has no schema")
	} else if tbl.Schema != nil && tbl.Schema != d.Schema {
		d.err = fmt.Errorf("qd: dataset schema differs from the table's schema")
	}
	return d
}

// WithWorkload parses SQL WHERE clauses (or full SELECT statements) into
// the dataset's workload, discovering advanced cuts during parsing.
func (d *Dataset) WithWorkload(sqls ...string) (*Dataset, error) {
	if d.err != nil {
		return d, d.err
	}
	queries, acs, err := ParseWorkload(d.Schema, sqls)
	if err != nil {
		return d, err
	}
	d.Queries, d.ACs = queries, acs
	return d, nil
}

// WithQueries attaches a pre-parsed workload and its advanced-cut table.
func (d *Dataset) WithQueries(qs []Query, acs []AdvCut) *Dataset {
	d.Queries, d.ACs = qs, acs
	return d
}

// Cuts derives the candidate cut set from the dataset's workload
// (Sec. 3.4). Planners call this when PlanOptions.Cuts is nil.
func (d *Dataset) Cuts() []Cut { return ExtractCuts(d.Queries) }

// Selectivity returns the workload's exact match fraction — the lower
// bound on any layout's accessed fraction.
func (d *Dataset) Selectivity() float64 {
	return Selectivity(d.Table, d.Queries, d.ACs)
}

// check validates the dataset before planning.
func (d *Dataset) check() error {
	if d == nil {
		return fmt.Errorf("qd: nil dataset")
	}
	return d.err
}
