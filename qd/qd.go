// Package qd is the public API of the qd-tree library — a Go
// implementation of "Qd-tree: Learning Data Layouts for Big Data
// Analytics" (Yang et al., SIGMOD 2020).
//
// A qd-tree routes both data and queries: records descend the tree's
// predicate cuts into blocks with complete semantic descriptions, and
// queries are answered by scanning only the blocks whose descriptions they
// intersect.
//
// The API is organized around three handles that mirror the paper's
// pipeline — workload in, layout out, queries routed:
//
//   - Dataset binds schema + table + workload once.
//   - Planner turns a Dataset into a Plan (a deployable Layout plus
//     strategy metadata). Strategies — greedy (Algorithm 1, Sec. 4),
//     woodblock (the deep-RL agent, Sec. 5), bottomup, random, range,
//     overlap, twotree — are registered by name; resolve one with
//     NewPlanner or instantiate e.g. GreedyPlanner directly.
//   - Engine binds a materialized store + plan + engine profile +
//     ExecOptions and serves queries.
//
// Typical use:
//
//	schema := qd.MustSchema([]qd.Column{
//	    {Name: "ship", Kind: qd.Numeric, Min: 0, Max: 2500},
//	    {Name: "mode", Kind: qd.Categorical, Dom: 7},
//	})
//	tbl := qd.NewTable(schema, n)            // append rows...
//	ds, _ := qd.NewDataset(schema, tbl).WithWorkload(sqls...)
//	plan, _ := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 100_000})
//	bids := plan.Layout.BIDs                 // per-row block assignment
//	blocks := plan.Tree.QueryBlocks(ds.Queries[0]) // BID IN (...) pruning
//
//	store, _ := qd.WriteStore(dir, tbl, plan.Layout)
//	eng, _ := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: 8})
//	defer eng.Close()
//	res, _ := eng.Query(ds.Queries[0])
//
// The BuildGreedy / BuildWoodblock / Execute / ExecuteWorkload free
// functions of earlier revisions remain as thin deprecated wrappers over
// these handles and will be removed in a future release.
package qd

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/adapt"
	"repro/internal/blockstore"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/overlap"
	"repro/internal/replicate"
	"repro/internal/rl"
	"repro/internal/router"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// Re-exported core types. Aliases keep the internal packages as the single
// source of truth while giving users one import path.
type (
	// Schema describes a table's columns.
	Schema = table.Schema
	// Column is one attribute: numeric (range cuts) or categorical
	// (equality/IN cuts over dictionary codes).
	Column = table.Column
	// Table is a column-major table of dictionary-encoded int64 values.
	Table = table.Table
	// Query is an AND/OR tree of predicates (and advanced-cut refs).
	Query = expr.Query
	// Pred is a unary predicate (column, op, literal).
	Pred = expr.Pred
	// AdvCut is a column-vs-column predicate (Sec. 6.1).
	AdvCut = expr.AdvCut
	// Tree is a constructed qd-tree.
	Tree = core.Tree
	// Node is one tree node.
	Node = core.Node
	// Cut is a tree edge predicate: unary or advanced.
	Cut = core.Cut
	// Desc is a node's semantic description.
	Desc = core.Desc
	// Layout is a materialized row→block partitioning with per-block
	// skipping metadata.
	Layout = cost.Layout
	// OverlapLayout is a multi-assignment layout (Sec. 6.2).
	OverlapLayout = overlap.Layout
	// TwoTree is the two-tree replication deployment (Sec. 6.3).
	TwoTree = replicate.TwoTree
	// RLResult reports a Woodblock run: best tree + learning curve.
	RLResult = rl.Result
	// CurvePoint is one learning-curve sample (Fig. 8).
	CurvePoint = rl.CurvePoint
)

// Column kinds.
const (
	Numeric     = table.Numeric
	Categorical = table.Categorical
)

// Predicate operators.
const (
	Lt = expr.Lt
	Le = expr.Le
	Gt = expr.Gt
	Ge = expr.Ge
	Eq = expr.Eq
	In = expr.In
)

// NewSchema builds a schema, validating column definitions.
func NewSchema(cols []Column) (*Schema, error) { return table.NewSchema(cols) }

// MustSchema is NewSchema that panics on error.
func MustSchema(cols []Column) *Schema { return table.MustSchema(cols) }

// NewTable returns an empty table with a row-capacity hint.
func NewTable(s *Schema, capacity int) *Table { return table.New(s, capacity) }

// NewIn builds an IN predicate over the given literals.
func NewIn(col int, vals []int64) Pred { return expr.NewIn(col, vals) }

// And / Or / P compose query ASTs.
var (
	And = expr.And
	Or  = expr.Or
)

// P wraps a predicate into a query AST leaf.
func P(p Pred) *expr.Node { return expr.NewPred(p) }

// AdvRef wraps an advanced-cut table index into a query AST leaf.
func AdvRef(i int) *expr.Node { return expr.NewAdv(i) }

// NewQuery assembles a named query from an AST root.
func NewQuery(name string, root *expr.Node) Query { return Query{Name: name, Root: root} }

// UnaryCut and AdvancedCut build candidate cuts explicitly.
func UnaryCut(p Pred) Cut                   { return core.UnaryCut(p) }
func AdvancedCut(idx int) Cut               { return core.AdvancedCut(idx) }
func NewTree(s *Schema, acs []AdvCut) *Tree { return core.NewTree(s, acs) }

// ExtractCuts derives the candidate cut set from a workload (Sec. 3.4):
// all pushed-down unary predicates, de-duplicated, plus one advanced cut
// per distinct reference.
func ExtractCuts(queries []Query) []Cut { return core.ExtractCuts(queries) }

// ParseWorkload parses SQL WHERE clauses (or full SELECT statements) into
// queries plus the advanced-cut table discovered during parsing.
func ParseWorkload(s *Schema, sqls []string) ([]Query, []AdvCut, error) {
	p := sqlparse.NewParser(s)
	qs, err := p.ParseMany(sqls)
	if err != nil {
		return nil, nil, err
	}
	return qs, p.ACs, nil
}

// ParseSelect parses one full aggregation statement —
// SELECT <aggs> FROM t [WHERE ...] [GROUP BY ...] — against the schema.
// The returned cut table holds any column-vs-column advanced cuts the
// WHERE clause introduced; an engine executing the statement must be
// bound to a plan whose cut table covers them (execution rejects
// out-of-range cut references with an error).
func ParseSelect(s *Schema, sql string) (AggQuery, []AdvCut, error) {
	p := sqlparse.NewParser(s)
	aq, err := p.ParseSelect(sql)
	if err != nil {
		return AggQuery{}, nil, err
	}
	return aq, p.ACs, nil
}

// ParseAggWorkload parses an aggregation workload, returning the
// statements plus the advanced-cut table their filters discovered.
func ParseAggWorkload(s *Schema, sqls []string) ([]AggQuery, []AdvCut, error) {
	p := sqlparse.NewParser(s)
	aqs, err := p.ParseSelectMany(sqls)
	if err != nil {
		return nil, nil, err
	}
	return aqs, p.ACs, nil
}

// BuildOptions configure tree construction.
type BuildOptions struct {
	// MinBlockSize is b: the minimum rows per block, in full-table rows
	// (paper: 100K for TPC-H, 50K for ErrorLog).
	MinBlockSize int
	// SampleRate < 1 builds on a uniform sample (Sec. 5.2.1 recommends
	// 0.1%–1%); b is scaled accordingly. 0 or >= 1 uses the full table.
	SampleRate float64
	// Cuts overrides the candidate cut set; nil extracts from Queries.
	Cuts []Cut
	// MaxLeaves caps the leaf count (0 = unlimited).
	MaxLeaves int
	Seed      int64
}

// prepare resolves sampling and cut extraction shared by constructors.
func (o BuildOptions) prepare(tbl *Table, queries []Query) (*Table, int, []Cut, error) {
	if o.MinBlockSize < 1 {
		return nil, 0, nil, fmt.Errorf("qd: MinBlockSize must be >= 1")
	}
	cuts := o.Cuts
	if cuts == nil {
		cuts = ExtractCuts(queries)
	}
	if len(cuts) == 0 {
		return nil, 0, nil, fmt.Errorf("qd: no candidate cuts (empty workload?)")
	}
	build := tbl
	b := o.MinBlockSize
	if o.SampleRate > 0 && o.SampleRate < 1 {
		rng := rand.New(rand.NewSource(o.Seed))
		build = tbl.Sample(o.SampleRate, 1000, rng)
		scaled := int(float64(o.MinBlockSize) * float64(build.N) / float64(tbl.N))
		if scaled < 1 {
			scaled = 1
		}
		b = scaled
	}
	return build, b, cuts, nil
}

// planOptions lifts legacy BuildOptions into PlanOptions for the
// deprecated wrappers.
func (o BuildOptions) planOptions() PlanOptions {
	return PlanOptions{
		MinBlockSize: o.MinBlockSize,
		SampleRate:   o.SampleRate,
		Cuts:         o.Cuts,
		MaxLeaves:    o.MaxLeaves,
		Seed:         o.Seed,
	}
}

// BuildGreedy constructs a qd-tree with Algorithm 1 (Sec. 4).
//
// Deprecated: use GreedyPlanner with a Dataset; the returned Plan carries
// both the tree and its deployed layout.
//
// Unlike GreedyPlanner.Plan, the returned tree is not yet deployed (the
// table is not routed and leaf descriptions are not frozen) — deployment
// happens in LayoutFromTree, preserving this function's original
// contract.
func BuildGreedy(tbl *Table, queries []Query, acs []AdvCut, opt BuildOptions) (*Tree, error) {
	return greedyTree(NewDataset(nil, tbl).WithQueries(queries, acs), opt.planOptions())
}

// WoodblockOptions configure the deep-RL constructor (Sec. 5).
type WoodblockOptions struct {
	BuildOptions
	Hidden      int           // network width (paper: 512; default 128)
	MaxEpisodes int           // trees to attempt (default 64)
	TimeBudget  time.Duration // optional wall-clock budget
	// OnEpisode observes the learning curve (Fig. 8).
	OnEpisode func(episode int, elapsed time.Duration, ratio, best float64)
}

// BuildWoodblock trains the Woodblock agent and returns the best tree
// found plus the learning curve.
//
// Deprecated: use WoodblockPlanner with a Dataset; the returned Plan's RL
// field carries the learning curve.
func BuildWoodblock(tbl *Table, queries []Query, acs []AdvCut, opt WoodblockOptions) (*RLResult, error) {
	popt := opt.BuildOptions.planOptions()
	popt.Hidden = opt.Hidden
	popt.MaxEpisodes = opt.MaxEpisodes
	popt.TimeBudget = opt.TimeBudget
	popt.OnEpisode = opt.OnEpisode
	return woodblockResult(NewDataset(nil, tbl).WithQueries(queries, acs), popt)
}

// BuildBottomUp runs the Sun et al. baseline (Sec. 2.2.2). selectivityCap
// of ~0.10 gives the paper's tuned BU+; 0 disables the tuning. A sample
// rate is rejected — the baseline cannot build on a sample.
//
// Deprecated: use BottomUpPlanner with a Dataset and
// PlanOptions.SelectivityCap.
func BuildBottomUp(tbl *Table, queries []Query, acs []AdvCut, opt BuildOptions, selectivityCap float64) (*Layout, []Cut, error) {
	popt := opt.planOptions()
	popt.SelectivityCap = selectivityCap
	plan, err := BottomUpPlanner{}.Plan(NewDataset(nil, tbl).WithQueries(queries, acs), popt)
	if err != nil {
		return nil, nil, err
	}
	return plan.Layout, plan.Features, nil
}

// RandomLayout shuffles rows into fixed-size blocks (the TPC-H baseline).
//
// Deprecated: use RandomPlanner with a Dataset and PlanOptions.NumBlocks.
func RandomLayout(tbl *Table, numBlocks int, acs []AdvCut, seed int64) (*Layout, error) {
	plan, err := RandomPlanner{}.Plan(NewDataset(nil, tbl).WithQueries(nil, acs),
		PlanOptions{NumBlocks: numBlocks, Seed: seed})
	if err != nil {
		return nil, err
	}
	return plan.Layout, nil
}

// RangeLayout range-partitions on a column (the ErrorLog baseline).
//
// Deprecated: use RangePlanner with a Dataset, PlanOptions.RangeColumn,
// and PlanOptions.NumBlocks.
func RangeLayout(tbl *Table, col, numBlocks int, acs []AdvCut) (*Layout, error) {
	plan, err := RangePlanner{}.Plan(NewDataset(nil, tbl).WithQueries(nil, acs),
		PlanOptions{NumBlocks: numBlocks, RangeColumn: col})
	if err != nil {
		return nil, err
	}
	return plan.Layout, nil
}

// LayoutFromTree routes the full table through the tree, freezes leaf
// descriptions (Sec. 3.2), and returns the deployable layout.
func LayoutFromTree(name string, t *Tree, tbl *Table) *Layout {
	return cost.FromTree(name, t, tbl)
}

// BuildOverlap constructs a data-overlap layout (Sec. 6.2): relaxed cuts
// plus small-leaf replication.
//
// Deprecated: use OverlapPlanner with a Dataset; the returned Plan's
// Overlap field carries the multi-assignment layout.
func BuildOverlap(tbl *Table, queries []Query, acs []AdvCut, opt BuildOptions) (*OverlapLayout, error) {
	return overlapLayout(NewDataset(nil, tbl).WithQueries(queries, acs), opt.planOptions())
}

// BuildTwoTree constructs the two-tree replication deployment (Sec. 6.3).
// A sample rate is rejected — both trees are built on the full table.
//
// Deprecated: use TwoTreePlanner with a Dataset; the returned Plan's
// TwoTree field carries the deployment.
func BuildTwoTree(tbl *Table, queries []Query, acs []AdvCut, opt BuildOptions) (*TwoTree, error) {
	plan, err := TwoTreePlanner{}.Plan(NewDataset(nil, tbl).WithQueries(queries, acs), opt.planOptions())
	if err != nil {
		return nil, err
	}
	return plan.TwoTree, nil
}

// Selectivity returns the workload's exact match fraction — the lower
// bound on any layout's accessed fraction.
func Selectivity(tbl *Table, queries []Query, acs []AdvCut) float64 {
	return cost.Selectivity(tbl, queries, acs)
}

// PerQueryMatches evaluates every query exactly and returns the match
// count per query — the ground truth physical engines are checked against.
func PerQueryMatches(tbl *Table, queries []Query, acs []AdvCut) []int64 {
	return cost.PerQueryMatches(tbl, queries, acs)
}

// NewLayout wraps an arbitrary row→block assignment as a Layout with
// per-block skipping metadata, for layouts not produced by a planner.
func NewLayout(name string, tbl *Table, bids []int, numBlocks int, acs []AdvCut) *Layout {
	return cost.NewLayout(name, tbl, bids, numBlocks, acs)
}

// LoadTree deserializes a tree written with Tree.Save / Tree.Marshal.
func LoadTree(data []byte) (*Tree, error) { return core.Unmarshal(data) }

// Adaptive is the incremental-refinement wrapper (Problem 2 / Sec. 8):
// route new data through a deployed tree and split overflowing leaves in
// place using the greedy criterion.
type Adaptive = adapt.Adaptive

// Ingester streams records through a tree into per-leaf segment files
// (the Fig. 1 online path).
//
// Deprecated: use the Writer API instead — Engine.Insert (or
// Server.Insert) lands rows in an LSM-style delta that queries merge with
// the base blocks, and Compact folds them into the layout. Ingester's
// per-leaf segments are invisible to the execution engine.
type Ingester = router.Ingester

// NewAdaptive wraps an existing tree and its routed table for continuous
// ingestion with local refinement. splitFactor*b is the overflow
// threshold (0 selects the default of 4).
func NewAdaptive(t *Tree, tbl *Table, acs []AdvCut, queries []Query, minBlockSize, splitFactor int) (*Adaptive, error) {
	return adapt.New(t, tbl, acs, adapt.Options{
		MinSize:     minBlockSize,
		SplitFactor: splitFactor,
		Cuts:        ExtractCuts(queries),
		Queries:     queries,
	})
}

// NewIngester prepares a streaming ingester writing columnar segments
// under dir, flushing each leaf buffer at segmentRows.
//
// Deprecated: use the Writer API instead (Engine.Insert / Server.Insert
// + Compact); see Writer. NewIngester remains a thin wrapper over
// router.NewIngester for callers that manage segment files themselves.
func NewIngester(t *Tree, dir string, segmentRows int) (*Ingester, error) {
	return router.NewIngester(t, dir, segmentRows)
}

// --- physical execution ---

// Execution re-exports. The exec engine scans materialized block stores
// under a deterministic engine profile (Sec. 7.4/7.5).
type (
	// BlockStore is a materialized layout on disk; safe for concurrent
	// readers.
	BlockStore = blockstore.Store
	// EngineProfile models one execution engine's cost structure.
	EngineProfile = exec.Profile
	// ExecResult reports one query execution.
	ExecResult = exec.Result
	// ScanStats are the physical counters of a scan.
	ScanStats = exec.ScanStats
	// WorkloadResult reports a batched multi-query execution.
	WorkloadResult = exec.WorkloadResult
	// ExecMode selects block pruning: qd-tree routing or SMA-only.
	ExecMode = exec.Mode
	// AggQuery is a full aggregation statement: SELECT-list aggregates,
	// optional GROUP BY columns, and the filter the qd-tree routes.
	AggQuery = expr.AggQuery
	// Agg is one aggregate of a SELECT list (function over a column).
	Agg = expr.Agg
	// AggFunc identifies one aggregate function.
	AggFunc = expr.AggFunc
	// AggResult reports one aggregate query execution: scan stats plus
	// typed result rows sorted by group key.
	AggResult = exec.AggResult
	// AggRow is one typed result row: group key + one value per aggregate.
	AggRow = exec.AggRow
	// AggVal is one aggregate output cell (Valid, Int, Float).
	AggVal = exec.AggVal
	// ExecOptions tune physical execution: Parallelism is the scan worker
	// pool size (0 or negative selects GOMAXPROCS, 1 is sequential) and
	// ShareReads makes ExecuteWorkload read each block once for all
	// queries that scan it. Options change scheduling only — ScanStats
	// are identical for every value.
	ExecOptions = exec.Options
)

// Rows is the typed result set of an aggregate query, sorted by group key.
type Rows = []exec.AggRow

// Row-returning execution re-exports (SELECT cols ... [ORDER BY]
// [LIMIT], and two-table equi-joins).
type (
	// RowQuery is a single-table row-returning statement: projection,
	// filter, ORDER BY keys (positions into the projection), LIMIT.
	RowQuery = expr.RowQuery
	// JoinQuery is a two-table equi-join statement with per-side filters.
	JoinQuery = expr.JoinQuery
	// RowStmt is a parsed row-returning statement: exactly one of Row
	// (single table) or Join is set.
	RowStmt = expr.RowStmt
	// ColRef names an output column of a row statement (join side + col).
	ColRef = expr.ColRef
	// OrderKey is one ORDER BY key: SELECT-list position + direction.
	OrderKey = expr.OrderKey
	// RowsResult reports one row-returning execution: ordered output
	// tuples plus scan (and, for joins, per-side and join) stats.
	RowsResult = exec.RowsResult
	// JoinStats are the join-path physical counters.
	JoinStats = exec.JoinStats
)

// ParseRowSelect parses one row-returning statement — SELECT <cols>
// FROM t [JOIN t2 ON ...] [WHERE ...] [ORDER BY ...] [LIMIT k] —
// against the schema. Both sides of a join bind the same schema (the
// single-table serving shape); use an sqlparse.Parser with a Tables map
// for heterogeneous joins.
func ParseRowSelect(s *Schema, sql string) (RowStmt, []AdvCut, error) {
	p := sqlparse.NewParser(s)
	stmt, err := p.ParseRowSelect(sql)
	if err != nil {
		return RowStmt{}, nil, err
	}
	return stmt, p.ACs, nil
}

// ReferenceSelect evaluates a row query over an in-memory table row at
// a time — the ground truth the streaming executor is tested against.
func ReferenceSelect(tbl *Table, rq RowQuery, acs []AdvCut) [][]int64 {
	return exec.ReferenceSelect(tbl, rq, acs)
}

// ReferenceJoin evaluates an equi-join of the table with itself as a
// nested loop — the quadratic ground truth for the hash-join path.
func ReferenceJoin(tbl *Table, jq JoinQuery, acs []AdvCut) [][]int64 {
	return exec.ReferenceJoin(tbl, jq, acs)
}

// SelectNaive executes a row query over a store with no TopK pruning
// and no late materialization: decode everything, sort everything,
// then cut to the LIMIT — the full-sort-then-limit baseline qdbench
// -exp rows compares the bounded-heap path against.
func SelectNaive(store *BlockStore, plan *Plan, rq RowQuery, prof EngineProfile, mode ExecMode) (*RowsResult, error) {
	return exec.RunRowsNaive(store, plan.Layout, rq, plan.ACs, prof, mode)
}

// Aggregate functions for building AggQuery values programmatically.
const (
	AggCountStar = expr.AggCountStar
	AggCount     = expr.AggCount
	AggSum       = expr.AggSum
	AggMin       = expr.AggMin
	AggMax       = expr.AggMax
	AggAvg       = expr.AggAvg
)

// ReferenceAggregate evaluates an aggregate query over an in-memory table
// row at a time — the naive ground truth the vectorized engine is tested
// against (and a convenient way to aggregate without materializing a
// store).
func ReferenceAggregate(tbl *Table, aq AggQuery, acs []AdvCut) Rows {
	return exec.ReferenceAggregate(tbl, aq, acs)
}

// AggregateNaive executes an aggregate query over a store with no
// pushdown: every candidate block is fully decoded and aggregated row at
// a time, charging the decoded logical bytes — the decode-then-aggregate
// cost baseline qdbench -exp agg and BenchmarkAggregatePushdown compare
// the vectorized engine against.
func AggregateNaive(store *BlockStore, plan *Plan, aq AggQuery, prof EngineProfile, mode ExecMode) (*AggResult, error) {
	return exec.RunAggNaive(store, plan.Layout, aq, plan.ACs, prof, mode)
}

// Engine profiles and pruning modes.
var (
	EngineSpark = exec.EngineSpark
	EngineDBMS  = exec.EngineDBMS
)

const (
	RouteQdTree = exec.RouteQdTree
	NoRoute     = exec.NoRoute
)

// StoreOptions tune how WriteStore materializes a layout: FormatVersion
// selects block format v2 (default: per-column PLAIN/DICT/RLE/FOR
// encodings) or the legacy v1 plain layout, and PlainOnly keeps the v2
// container but disables encoding selection.
type StoreOptions = blockstore.WriteOptions

// Block store format versions for StoreOptions.FormatVersion.
const (
	StoreFormatV1 = blockstore.FormatV1
	StoreFormatV2 = blockstore.FormatV2
)

// SizeStats pairs a store's logical (decoded) and encoded (on-disk)
// footprints; see BlockStore.Sizes.
type SizeStats = cost.SizeStats

// ColumnEncoding identifies one block-format-v2 column encoding.
type ColumnEncoding = blockstore.Encoding

// Column encodings a v2 store may choose per column per block.
const (
	EncPlain = blockstore.EncPlain
	EncFOR   = blockstore.EncFOR
	EncDict  = blockstore.EncDict
	EncRLE   = blockstore.EncRLE
)

// WriteStore materializes a layout's row→block partitioning as a block
// directory usable by the execution engine. With no options it writes
// block format v2 (per-column encodings); pass a StoreOptions to select
// the format explicitly.
func WriteStore(dir string, tbl *Table, l *Layout, opts ...StoreOptions) (*BlockStore, error) {
	var opt StoreOptions
	if len(opts) > 0 {
		opt = opts[0]
	}
	return blockstore.WriteOpts(dir, tbl, l.BIDs, l.NumBlocks(), opt)
}

// OpenStore reopens a block directory from its catalog.
func OpenStore(dir string) (*BlockStore, error) { return blockstore.Open(dir) }

// Execute runs one query over a materialized store.
//
// Deprecated: construct an Engine with NewEngine and call Query; the
// engine binds the store, layout, cuts, profile, and options once.
func Execute(store *BlockStore, l *Layout, q Query, acs []AdvCut, prof EngineProfile, mode ExecMode, opt ExecOptions) (ExecResult, error) {
	eng, err := NewEngine(store, &Plan{Layout: l, ACs: acs}, prof, opt)
	if err != nil {
		return ExecResult{}, err
	}
	return eng.WithMode(mode).Query(q)
}

// ExecuteWorkload runs a whole workload as one batch.
//
// Deprecated: construct an Engine with NewEngine and call Workload; the
// engine binds the store, layout, cuts, profile, and options once.
func ExecuteWorkload(store *BlockStore, l *Layout, w []Query, acs []AdvCut, prof EngineProfile, mode ExecMode, opt ExecOptions) (*WorkloadResult, error) {
	eng, err := NewEngine(store, &Plan{Layout: l, ACs: acs}, prof, opt)
	if err != nil {
		return nil, err
	}
	return eng.WithMode(mode).Workload(w)
}
