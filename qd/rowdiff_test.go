package qd_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/qd"
)

// randomRowWorkload draws row-returning statements over the randomSpec
// schema (t, cat, v, flag, u): projection subsets (including a duplicate
// column), single- and multi-key ORDER BY with DESC, LIMIT with and
// without ORDER BY (the TopK path and the plain heap-less path), and the
// filter mix of the scan-equivalence suite including advanced cuts and a
// fully-pruned band.
func randomRowWorkload(rng *rand.Rand, dom int64) []qd.RowQuery {
	filters := []*expr.Node{
		nil,
		qd.P(qd.Pred{Col: 0, Op: qd.Ge, Literal: int64(rng.Intn(9000))}),
		qd.And(
			qd.P(qd.NewIn(1, []int64{rng.Int63n(dom), rng.Int63n(dom)})),
			qd.P(qd.Pred{Col: 2, Op: qd.Lt, Literal: int64(rng.Intn(400))}),
		),
		qd.Or(
			qd.P(qd.Pred{Col: 2, Op: qd.Gt, Literal: 400}),
			qd.P(qd.Pred{Col: 2, Op: qd.Lt, Literal: -400}),
		),
		qd.And(qd.AdvRef(0), qd.P(qd.Pred{Col: 3, Op: qd.Eq, Literal: 1})),
		qd.P(qd.Pred{Col: 0, Op: qd.Gt, Literal: 1 << 40}), // fully pruned
	}
	shapes := []qd.RowQuery{
		{Cols: []int{0, 2}, OrderBy: []qd.OrderKey{{Pos: 1, Desc: true}, {Pos: 0}}, Limit: 25},
		{Cols: []int{1, 3, 0}, OrderBy: []qd.OrderKey{{Pos: 2}}, Limit: 50},
		{Cols: []int{4}, Limit: 10}, // LIMIT without ORDER BY
		{Cols: []int{0, 1, 2, 3, 4}, OrderBy: []qd.OrderKey{{Pos: 0}, {Pos: 4, Desc: true}}},
		{Cols: []int{2, 2}, OrderBy: []qd.OrderKey{{Pos: 0, Desc: true}}, Limit: 7}, // duplicate projection
		{Cols: []int{3, 1}},
	}
	var out []qd.RowQuery
	for i, root := range filters {
		for j, shape := range shapes {
			rq := shape
			rq.Name = fmt.Sprintf("rq%d_%d", i, j)
			rq.Filter = qd.Query{Root: root}
			out = append(out, rq)
		}
	}
	return out
}

// randomJoinWorkload draws self-joins over the same schema: categorical
// keys exercising the dense code-space build (cat, flag — both sides
// share one dictionary), a numeric key through the partitioned hash
// path (t), advanced-cut side filters, and an empty build side. Side
// filters stay selective so the reference nested loop stays tractable.
func randomJoinWorkload(rng *rand.Rand) []qd.JoinQuery {
	return []qd.JoinQuery{
		{
			Name: "j_cat", LeftTable: "a", RightTable: "b", LeftKey: 1, RightKey: 1,
			Cols:        []qd.ColRef{{Side: 0, Col: 0}, {Side: 1, Col: 0}, {Side: 0, Col: 1}},
			LeftFilter:  qd.Query{Root: qd.P(qd.Pred{Col: 2, Op: qd.Gt, Literal: 460})},
			RightFilter: qd.Query{Root: qd.P(qd.Pred{Col: 2, Op: qd.Lt, Literal: -460})},
			OrderBy:     []qd.OrderKey{{Pos: 0}, {Pos: 1}}, Limit: 40,
		},
		{
			Name: "j_flag", LeftTable: "a", RightTable: "b", LeftKey: 3, RightKey: 3,
			Cols:        []qd.ColRef{{Side: 0, Col: 4}, {Side: 1, Col: 4}},
			LeftFilter:  qd.Query{Root: qd.P(qd.Pred{Col: 0, Op: qd.Gt, Literal: 9200})},
			RightFilter: qd.Query{Root: qd.P(qd.Pred{Col: 0, Op: qd.Lt, Literal: int64(300 + rng.Intn(200))})},
			OrderBy:     []qd.OrderKey{{Pos: 0, Desc: true}}, Limit: 25,
		},
		{
			Name: "j_hash_t", LeftTable: "a", RightTable: "b", LeftKey: 0, RightKey: 0,
			Cols:        []qd.ColRef{{Side: 0, Col: 2}, {Side: 1, Col: 2}, {Side: 1, Col: 0}},
			LeftFilter:  qd.Query{Root: qd.P(qd.Pred{Col: 2, Op: qd.Gt, Literal: 490})},
			RightFilter: qd.Query{Root: qd.P(qd.Pred{Col: 2, Op: qd.Gt, Literal: 490})},
			Limit:       30, // LIMIT without ORDER BY
		},
		{
			Name: "j_adv", LeftTable: "a", RightTable: "b", LeftKey: 1, RightKey: 1,
			Cols:        []qd.ColRef{{Side: 0, Col: 0}, {Side: 1, Col: 4}},
			LeftFilter:  qd.Query{Root: qd.And(qd.AdvRef(0), qd.P(qd.Pred{Col: 2, Op: qd.Gt, Literal: 470}))},
			RightFilter: qd.Query{Root: qd.P(qd.Pred{Col: 2, Op: qd.Lt, Literal: -470})},
			OrderBy:     []qd.OrderKey{{Pos: 1}}, Limit: 20,
		},
		{
			Name: "j_empty", LeftTable: "a", RightTable: "b", LeftKey: 3, RightKey: 3,
			Cols:       []qd.ColRef{{Side: 0, Col: 0}, {Side: 1, Col: 0}},
			LeftFilter: qd.Query{Root: qd.P(qd.Pred{Col: 0, Op: qd.Gt, Literal: 1 << 40})},
		},
	}
}

func sameTuples(t *testing.T, label string, got, want [][]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s row %d: %v, want %v", label, i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s row %d: %v, want %v", label, i, got[i], want[i])
			}
		}
	}
}

// TestRowDifferential is the row-query acceptance property: random
// tables and random projection/ORDER BY/LIMIT/join workloads return
// tuples bit-identical to the row-at-a-time reference evaluator across
// both block formats, both engine profiles, both pruning modes, and
// every parallelism/ShareReads setting — the deterministic comparator
// makes even unordered statements comparable without sorting the
// expectation.
func TestRowDifferential(t *testing.T) {
	profiles := []qd.EngineProfile{qd.EngineSpark, qd.EngineDBMS}
	modes := []qd.ExecMode{qd.RouteQdTree, qd.NoRoute}
	options := []qd.ExecOptions{
		{Parallelism: 1},
		{Parallelism: 4},
		{Parallelism: 4, ShareReads: true},
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			tbl, queries, acs := randomSpec(seed)
			rng := rand.New(rand.NewSource(seed * 77))
			rows := randomRowWorkload(rng, tbl.Schema.Cols[1].Dom)
			joins := randomJoinWorkload(rng)
			rowTruth := make([][][]int64, len(rows))
			for i, rq := range rows {
				rowTruth[i] = qd.ReferenceSelect(tbl, rq, acs)
			}
			joinTruth := make([][][]int64, len(joins))
			for i, jq := range joins {
				joinTruth[i] = qd.ReferenceJoin(tbl, jq, acs)
			}

			ds := qd.NewDataset(tbl.Schema, tbl).WithQueries(queries, acs)
			plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 300})
			if err != nil {
				t.Fatal(err)
			}
			v1, err := qd.WriteStore(t.TempDir(), tbl, plan.Layout, qd.StoreOptions{FormatVersion: qd.StoreFormatV1})
			if err != nil {
				t.Fatal(err)
			}
			v2, err := qd.WriteStore(t.TempDir(), tbl, plan.Layout)
			if err != nil {
				t.Fatal(err)
			}

			for _, prof := range profiles {
				for _, mode := range modes {
					for _, opt := range options {
						for fi, store := range []*qd.BlockStore{v1, v2} {
							label := fmt.Sprintf("v%d/%s/mode%d/p%d/share%v", fi+1, prof.Name, mode, opt.Parallelism, opt.ShareReads)
							eng, err := qd.NewEngine(store, plan, prof, opt)
							if err != nil {
								t.Fatal(err)
							}
							eng.WithMode(mode)
							for i, rq := range rows {
								res, err := eng.Select(qd.RowStmt{Row: &rq})
								if err != nil {
									t.Fatalf("%s/%s: %v", label, rq.Name, err)
								}
								sameTuples(t, fmt.Sprintf("%s/%s", label, rq.Name), res.Rows, rowTruth[i])
							}
							for i, jq := range joins {
								res, err := eng.Select(qd.RowStmt{Join: &jq})
								if err != nil {
									t.Fatalf("%s/%s: %v", label, jq.Name, err)
								}
								sameTuples(t, fmt.Sprintf("%s/%s", label, jq.Name), res.Rows, joinTruth[i])
							}
							eng.Close()
						}
					}
				}
			}
		})
	}
}

// TestRowDifferentialDelta extends the property to base ∪ delta: rows
// inserted through the engine's LSM delta are merged into row and join
// answers exactly as if the table had been written with them, across
// both formats and profiles.
func TestRowDifferentialDelta(t *testing.T) {
	tbl, queries, acs := randomSpec(5)
	rng := rand.New(rand.NewSource(99))
	dom := tbl.Schema.Cols[1].Dom
	extra := make([][]int64, 300)
	for i := range extra {
		extra[i] = []int64{
			rng.Int63n(10000), rng.Int63n(dom),
			int64(rng.Intn(1001)) - 500, rng.Int63n(2), rng.Int63n(10000),
		}
	}
	combined := qd.NewTable(tbl.Schema, tbl.N+len(extra))
	combined.Concat(tbl)
	for _, row := range extra {
		combined.AppendRow(row)
	}
	rows := randomRowWorkload(rng, dom)[:12]
	joins := randomJoinWorkload(rng)[:3]

	ds := qd.NewDataset(tbl.Schema, tbl).WithQueries(queries, acs)
	plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []int{1, 2} {
		opts := qd.StoreOptions{}
		if format == 1 {
			opts.FormatVersion = qd.StoreFormatV1
		}
		for _, prof := range []qd.EngineProfile{qd.EngineSpark, qd.EngineDBMS} {
			for _, par := range []int{1, 4} {
				label := fmt.Sprintf("v%d/%s/p%d", format, prof.Name, par)
				// Each engine gets its own store directory: delta segments
				// seal to disk beside the blocks, so sharing a directory
				// would double-count inserts across engines.
				store, err := qd.WriteStore(t.TempDir(), tbl, plan.Layout, opts)
				if err != nil {
					t.Fatal(err)
				}
				eng, err := qd.NewEngine(store, plan, prof, qd.ExecOptions{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				if err := eng.Insert(extra); err != nil {
					t.Fatal(err)
				}
				if got := eng.DeltaRows(); got != len(extra) {
					t.Fatalf("%s: delta rows %d, want %d", label, got, len(extra))
				}
				for _, rq := range rows {
					res, err := eng.Select(qd.RowStmt{Row: &rq})
					if err != nil {
						t.Fatalf("%s/%s: %v", label, rq.Name, err)
					}
					sameTuples(t, fmt.Sprintf("%s/%s", label, rq.Name), res.Rows, qd.ReferenceSelect(combined, rq, acs))
				}
				for _, jq := range joins {
					res, err := eng.Select(qd.RowStmt{Join: &jq})
					if err != nil {
						t.Fatalf("%s/%s: %v", label, jq.Name, err)
					}
					sameTuples(t, fmt.Sprintf("%s/%s", label, jq.Name), res.Rows, qd.ReferenceJoin(combined, jq, acs))
				}
				eng.Close()
			}
		}
	}
}
