package qd_test

import (
	"errors"
	"math"
	"testing"

	"repro/qd"
)

func TestBulkWriterLifecycle(t *testing.T) {
	ds := microDataset(t)
	dir := t.TempDir()
	w, err := qd.NewBulkWriter(dir, ds, "greedy", qd.PlanOptions{MinBlockSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Insert([][]int64{{5, 5, 0}, {6, 6, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Insert([][]int64{{1, 2}}); err == nil {
		t.Fatal("short row must be rejected")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Store() != nil {
		t.Fatal("no store before the first Compact")
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	if w.Rows() != ds.Table.N+2 {
		t.Fatalf("rows %d, want %d", w.Rows(), ds.Table.N+2)
	}
	// Idempotent with nothing new.
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}

	// The materialized store answers queries, including the inserted rows.
	eng, err := qd.NewEngine(w.Store(), w.Plan(), qd.EngineSpark, qd.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(ds.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	ref := qd.NewTable(ds.Table.Schema, ds.Table.N+2)
	ref.Concat(ds.Table)
	ref.AppendRow([]int64{5, 5, 0})
	ref.AppendRow([]int64{6, 6, 1})
	if want := qd.PerQueryMatches(ref, ds.Queries[:1], ds.ACs)[0]; res.RowsMatched != want {
		t.Fatalf("matched %d, want %d", res.RowsMatched, want)
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("Close must be idempotent:", err)
	}
	for name, call := range map[string]func() error{
		"insert":  func() error { return w.Insert([][]int64{{1, 1, 0}}) },
		"flush":   w.Flush,
		"compact": w.Compact,
	} {
		if err := call(); !errors.Is(err, qd.ErrWriterClosed) {
			t.Errorf("%s after close: %v, want ErrWriterClosed", name, err)
		}
	}
}

func TestEngineWriterClosed(t *testing.T) {
	ds, plan, store := planAndMaterialize(t)
	eng, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Insert([][]int64{{1, 1, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for name, call := range map[string]func() error{
		"insert":  func() error { return eng.Insert([][]int64{{1, 1, 0}}) },
		"flush":   eng.Flush,
		"compact": eng.Compact,
	} {
		if err := call(); !errors.Is(err, qd.ErrWriterClosed) {
			t.Errorf("%s after close: %v, want ErrWriterClosed", name, err)
		}
	}
	_ = ds
}

// TestEngineDeltaSurvivesReopen pins the durability path: rows inserted
// through an engine and sealed (here by Close) are recovered when the
// store directory is reopened, and served before any compaction.
func TestEngineDeltaSurvivesReopen(t *testing.T) {
	ds := microDataset(t)
	plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := qd.WriteStore(dir, ds.Table, plan.Layout)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Insert([][]int64{{50, 50, 0}, {51, 51, 1}, {52, 52, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil { // seals the memtable to disk
		t.Fatal(err)
	}

	re, err := qd.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Delta) == 0 {
		t.Fatal("reopened store must see the sealed delta segment")
	}
	eng2, err := qd.NewEngine(re, plan, qd.EngineSpark, qd.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if eng2.DeltaRows() != 3 {
		t.Fatalf("recovered %d delta rows, want 3", eng2.DeltaRows())
	}
	qs, _, err := qd.ParseWorkload(ds.Table.Schema, []string{"ship >= 50 AND ship <= 52"})
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	want := qd.PerQueryMatches(ds.Table, []qd.Query{q}, nil)[0] + 3
	res, err := eng2.Query(q)
	if err != nil || res.RowsMatched != want {
		t.Fatalf("matched %d err %v, want %d (recovered rows served)", res.RowsMatched, err, want)
	}
	// Compaction folds the recovered rows and deletes the segments.
	if err := eng2.Compact(); err != nil {
		t.Fatal(err)
	}
	res, err = eng2.Query(q)
	if err != nil || res.RowsMatched != want || res.DeltaRows != 0 {
		t.Fatalf("post-compaction: matched %d delta %d err %v", res.RowsMatched, res.DeltaRows, err)
	}
	re2, err := qd.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if len(re2.Delta) != 0 {
		t.Fatalf("segments %v survive compaction", re2.Delta)
	}
}

// TestCompactionRestoresSkipRate is the acceptance gate: after folding a
// 20% insert stream through the plan's qd-tree, the workload's skip rate
// must come within 5 points of a cold bulk load of the same rows.
func TestCompactionRestoresSkipRate(t *testing.T) {
	tbl, queries, acs := randomSpec(7)
	base, stream := splitSpec(tbl, 0.8)
	plan, err := qd.GreedyPlanner{}.Plan(
		qd.NewDataset(tbl.Schema, base).WithQueries(queries, acs), qd.PlanOptions{MinBlockSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	store, err := qd.WriteStore(t.TempDir(), base, plan.Layout)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	skipRate := func(e *qd.Engine) float64 {
		var scanned, total int64
		for _, q := range queries {
			res, err := e.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			scanned += res.RowsScanned
			total += res.RowsTotal
		}
		return 1 - float64(scanned)/float64(total)
	}

	before := skipRate(eng)
	if err := eng.Insert(stream); err != nil {
		t.Fatal(err)
	}
	during := skipRate(eng)
	if during >= before {
		t.Fatalf("skip rate %.3f with a full delta, %.3f without — unpruned delta rows must cost something", during, before)
	}
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	after := skipRate(eng)

	// Cold baseline: bulk-load base+stream in one shot with the same plan
	// options.
	coldPlan, err := qd.GreedyPlanner{}.Plan(
		qd.NewDataset(tbl.Schema, tbl).WithQueries(queries, acs), qd.PlanOptions{MinBlockSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	coldStore, err := qd.WriteStore(t.TempDir(), tbl, coldPlan.Layout)
	if err != nil {
		t.Fatal(err)
	}
	coldEng, err := qd.NewEngine(coldStore, coldPlan, qd.EngineSpark, qd.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer coldEng.Close()
	cold := skipRate(coldEng)

	if diff := math.Abs(after - cold); diff > 0.05 {
		t.Fatalf("post-compaction skip %.3f vs cold bulk-load %.3f (diff %.3f > 0.05)", after, cold, diff)
	}
}
