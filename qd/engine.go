package qd

import (
	"fmt"
	"sync"

	"repro/internal/exec"
)

// Engine binds everything query execution needs — a materialized block
// store, a plan's layout and advanced cuts, an engine profile, and
// execution options — at construction, so serving a query takes exactly
// one argument. It replaces the 7-argument Execute/ExecuteWorkload free
// functions.
//
// An Engine is safe for concurrent use. Close is idempotent: the first
// call waits for in-flight queries to drain, then releases the store's
// cached block handles; queries issued after Close fail.
type Engine struct {
	store  *BlockStore
	layout *Layout
	acs    []AdvCut
	prof   EngineProfile
	opt    ExecOptions

	// mu lets queries proceed concurrently (read lock held for the scan's
	// duration) while Close and WithMode take the write lock — so Close
	// never yanks cached block handles from under an in-flight scan.
	mu     sync.RWMutex
	mode   ExecMode
	closed bool
}

// NewEngine binds a store, a plan, a profile, and execution options. The
// plan supplies the layout and the advanced-cut table; block pruning
// defaults to qd-tree routing (see WithMode).
func NewEngine(store *BlockStore, plan *Plan, prof EngineProfile, opt ExecOptions) (*Engine, error) {
	if store == nil {
		return nil, fmt.Errorf("qd: engine needs a block store")
	}
	if plan == nil || plan.Layout == nil {
		return nil, fmt.Errorf("qd: engine needs a plan with a layout")
	}
	return &Engine{store: store, layout: plan.Layout, acs: plan.ACs, prof: prof, opt: opt, mode: RouteQdTree}, nil
}

// WithMode selects the block-pruning mode (RouteQdTree or NoRoute) and
// returns the engine for chaining.
func (e *Engine) WithMode(mode ExecMode) *Engine {
	e.mu.Lock()
	e.mode = mode
	e.mu.Unlock()
	return e
}

// Layout returns the layout the engine serves.
func (e *Engine) Layout() *Layout { return e.layout }

// Store returns the underlying block store.
func (e *Engine) Store() *BlockStore { return e.store }

// Query executes one query.
func (e *Engine) Query(q Query) (ExecResult, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ExecResult{}, fmt.Errorf("qd: engine is closed")
	}
	return exec.RunOpts(e.store, e.layout, q, e.acs, e.prof, e.mode, e.opt)
}

// Workload executes a whole workload as one batch: per-query SMA pruning
// before dispatch, one scan worker pool across all queries, and (with
// ExecOptions.ShareReads) one physical read per block shared by every
// query touching it.
func (e *Engine) Workload(w []Query) (*WorkloadResult, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, fmt.Errorf("qd: engine is closed")
	}
	return exec.RunWorkloadOpts(e.store, e.layout, w, e.acs, e.prof, e.mode, e.opt)
}

// Aggregate executes one aggregation statement (SELECT <aggs> FROM t
// [WHERE ...] [GROUP BY ...]) and returns typed result rows sorted by
// group key. The filter prunes blocks exactly like Query; aggregates
// evaluate over encoded columns with zone-map and RLE pushdown (see
// exec.RunAggOpts).
func (e *Engine) Aggregate(aq AggQuery) (*AggResult, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, fmt.Errorf("qd: engine is closed")
	}
	return exec.RunAggOpts(e.store, e.layout, aq, e.acs, e.prof, e.mode, e.opt)
}

// AggregateWorkload executes each aggregation statement in order,
// returning per-statement results.
func (e *Engine) AggregateWorkload(w []AggQuery) ([]*AggResult, error) {
	out := make([]*AggResult, len(w))
	for i, aq := range w {
		res, err := e.Aggregate(aq)
		if err != nil {
			return nil, fmt.Errorf("qd: aggregate %q: %w", aq.Name, err)
		}
		out[i] = res
	}
	return out, nil
}

// Close waits for in-flight queries to finish, releases the store's
// cached block-file handles, and marks the engine unusable. It is
// idempotent: later calls return nil without touching the store.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	return e.store.Close()
}
