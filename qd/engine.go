package qd

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/table"
)

// Engine binds everything query execution needs — a materialized block
// store, a plan's layout and advanced cuts, an engine profile, and
// execution options — at construction, so serving a query takes exactly
// one argument. It replaces the 7-argument Execute/ExecuteWorkload free
// functions.
//
// The engine is also a Writer: Insert lands rows in an LSM-style delta
// (an in-memory memtable sealed into delta_*.qdb segments beside the
// block files), queries merge the delta with the base blocks, and Compact
// folds the delta into the layout, rewriting the store in place. A store
// reopened with OpenStore recovers any delta segments a previous process
// left behind, so inserted-and-flushed rows survive restarts.
//
// An Engine is safe for concurrent use. Close is idempotent: the first
// call waits for in-flight queries to drain, then releases the store's
// cached block handles; queries issued after Close fail.
type Engine struct {
	store  *BlockStore
	layout *Layout
	acs    []AdvCut
	prof   EngineProfile
	opt    ExecOptions
	tree   *Tree // routes Compact when the plan carried one

	// mu lets queries proceed concurrently (read lock held for the scan's
	// duration) while Close, WithMode, and Compact take the write lock —
	// so Close never yanks cached block handles from under an in-flight
	// scan, and Compact never rewrites blocks one is reading.
	mu     sync.RWMutex
	mode   ExecMode
	closed bool
	delta  *delta.Store // nil until the first Insert (or segment recovery)
}

// NewEngine binds a store, a plan, a profile, and execution options. The
// plan supplies the layout and the advanced-cut table; block pruning
// defaults to qd-tree routing (see WithMode). When the store was opened
// over a directory holding delta segments from a previous process, the
// engine recovers them so their rows are served immediately.
func NewEngine(store *BlockStore, plan *Plan, prof EngineProfile, opt ExecOptions) (*Engine, error) {
	if store == nil {
		return nil, fmt.Errorf("qd: engine needs a block store")
	}
	if plan == nil || plan.Layout == nil {
		return nil, fmt.Errorf("qd: engine needs a plan with a layout")
	}
	e := &Engine{store: store, layout: plan.Layout, acs: plan.ACs, prof: prof, opt: opt, tree: plan.Tree, mode: RouteQdTree}
	if len(store.Delta) > 0 {
		if err := e.openDeltaLocked(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// openDeltaLocked opens the engine's delta store beside the blocks,
// recovering any segments already on disk. Caller holds mu (or is the
// constructor).
func (e *Engine) openDeltaLocked() error {
	d, _, err := delta.Open(e.store.Schema, delta.Options{Dir: e.store.Dir})
	if err != nil {
		return err
	}
	e.delta = d
	return nil
}

// WithMode selects the block-pruning mode (RouteQdTree or NoRoute) and
// returns the engine for chaining.
func (e *Engine) WithMode(mode ExecMode) *Engine {
	e.mu.Lock()
	e.mode = mode
	e.mu.Unlock()
	return e
}

// Layout returns the layout the engine serves.
func (e *Engine) Layout() *Layout { return e.layout }

// Store returns the underlying block store.
func (e *Engine) Store() *BlockStore { return e.store }

// DeltaRows returns how many inserted rows await compaction.
func (e *Engine) DeltaRows() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.delta == nil {
		return 0
	}
	return e.delta.Rows()
}

// deltaView snapshots the uncompacted delta for a merged read; nil when
// the delta is empty. Caller holds at least mu.RLock.
func (e *Engine) deltaView() *exec.DeltaView {
	if e.delta == nil || e.delta.Rows() == 0 {
		return nil
	}
	return &exec.DeltaView{Tables: e.delta.Snapshot()}
}

// Insert appends rows to the engine's delta store. The rows are visible
// to queries immediately and durable once the memtable seals (or Flush is
// called); Compact folds them into the block layout. After Close, Insert
// returns ErrWriterClosed.
func (e *Engine) Insert(rows [][]int64) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrWriterClosed
	}
	if e.delta == nil {
		if err := e.openDeltaLocked(); err != nil {
			e.mu.Unlock()
			return err
		}
	}
	d := e.delta
	e.mu.Unlock()
	return d.Insert(rows)
}

// Flush seals the delta memtable to an on-disk segment, making every
// inserted row durable. It is idempotent; with nothing buffered it does
// nothing.
func (e *Engine) Flush() error {
	e.mu.RLock()
	d, closed := e.delta, e.closed
	e.mu.RUnlock()
	if closed {
		return ErrWriterClosed
	}
	if d == nil {
		return nil
	}
	return d.Flush()
}

// Compact folds every inserted row into the block layout, rewriting the
// store directory in place. Delta rows route through the plan's qd-tree
// when the engine has one (so they land in the leaves their values
// belong to); tree-less layouts append them as one new block. Queries
// block for the duration — for non-blocking compaction into fresh
// generations, serve with a Server instead.
//
// The rewrite is not crash-atomic: a crash between the store rewrite and
// the segment deletion re-serves the folded rows from both copies at the
// next OpenStore. The Server compactor's generation flip + marker
// protocol is the crash-safe path.
func (e *Engine) Compact() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrWriterClosed
	}
	if e.delta == nil || e.delta.Rows() == 0 {
		return nil
	}
	cp, err := e.delta.BeginCompaction()
	if err != nil {
		return err
	}

	// Rebuild the base table in block order; bids in the same order is
	// exactly the live assignment.
	total := 0
	for _, m := range e.store.Blocks {
		total += m.Rows
	}
	merged := table.New(e.store.Schema, total+cp.Rows)
	bids := make([]int, 0, total+cp.Rows)
	for b := range e.store.Blocks {
		blk, err := e.store.ReadBlock(b)
		if err != nil {
			return err
		}
		merged.Concat(blk)
		for i := 0; i < blk.N; i++ {
			bids = append(bids, b)
		}
	}
	for _, t := range cp.Tables() {
		merged.Concat(t)
	}

	var cand *Layout
	if e.tree != nil {
		cand = cost.FromTree(e.layout.Name, e.tree, merged)
	} else {
		nb := len(e.store.Blocks)
		for r := len(bids); r < merged.N; r++ {
			bids = append(bids, nb)
		}
		cand = cost.NewLayout(e.layout.Name, merged, bids, nb+1, e.acs)
	}

	// Drop cached handles before the files under them are rewritten.
	if err := e.store.Close(); err != nil {
		return err
	}
	store, err := blockstore.WriteOpts(e.store.Dir, merged, cand.BIDs, cand.NumBlocks(), StoreOptions{FormatVersion: e.store.Format})
	if err != nil {
		return fmt.Errorf("qd: compact rewrite of %s: %w", e.store.Dir, err)
	}
	e.store, e.layout = store, cand
	for _, p := range e.delta.Complete(cp) {
		os.Remove(p)
	}
	return nil
}

// Query executes one query over base ∪ delta.
func (e *Engine) Query(q Query) (ExecResult, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ExecResult{}, fmt.Errorf("qd: engine is closed")
	}
	return exec.RunDelta(e.store, e.layout, q, e.acs, e.prof, e.mode, e.opt, e.deltaView())
}

// Workload executes a whole workload as one batch: per-query SMA pruning
// before dispatch, one scan worker pool across all queries, and (with
// ExecOptions.ShareReads) one physical read per block shared by every
// query touching it. Uncompacted delta rows are scanned by every query.
func (e *Engine) Workload(w []Query) (*WorkloadResult, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, fmt.Errorf("qd: engine is closed")
	}
	return exec.RunWorkloadDelta(e.store, e.layout, w, e.acs, e.prof, e.mode, e.opt, e.deltaView())
}

// Aggregate executes one aggregation statement (SELECT <aggs> FROM t
// [WHERE ...] [GROUP BY ...]) and returns typed result rows sorted by
// group key, over base ∪ delta. The filter prunes blocks exactly like
// Query; aggregates evaluate over encoded columns with zone-map and RLE
// pushdown (see exec.RunAggOpts).
func (e *Engine) Aggregate(aq AggQuery) (*AggResult, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, fmt.Errorf("qd: engine is closed")
	}
	return exec.RunAggDelta(e.store, e.layout, aq, e.acs, e.prof, e.mode, e.opt, e.deltaView())
}

// Select executes one row-returning statement (single-table row query
// or two-table equi-join) over base ∪ delta, returning the ordered
// output tuples. The deterministic comparator (ORDER BY keys, then the
// full tuple) makes the emitted rows bit-identical across execution
// options; see exec.RunRowsOpts and exec.RunJoinOpts.
func (e *Engine) Select(stmt RowStmt) (*RowsResult, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, fmt.Errorf("qd: engine is closed")
	}
	if stmt.Join != nil {
		return exec.RunJoinDelta(e.store, e.layout, *stmt.Join, e.acs, e.prof, e.mode, e.opt, e.deltaView())
	}
	if stmt.Row == nil {
		return nil, fmt.Errorf("qd: empty row statement")
	}
	return exec.RunRowsDelta(e.store, e.layout, *stmt.Row, e.acs, e.prof, e.mode, e.opt, e.deltaView())
}

// AggregateWorkload executes each aggregation statement in order,
// returning per-statement results.
func (e *Engine) AggregateWorkload(w []AggQuery) ([]*AggResult, error) {
	out := make([]*AggResult, len(w))
	for i, aq := range w {
		res, err := e.Aggregate(aq)
		if err != nil {
			return nil, fmt.Errorf("qd: aggregate %q: %w", aq.Name, err)
		}
		out[i] = res
	}
	return out, nil
}

// Close waits for in-flight queries to finish, seals and closes the
// delta store (buffered inserts become a durable segment recovered by the
// next OpenStore), releases the store's cached block-file handles, and
// marks the engine unusable. It is idempotent: later calls return nil
// without touching the store.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	var derr error
	if e.delta != nil {
		derr = e.delta.Close()
	}
	return errors.Join(derr, e.store.Close())
}
