package qd_test

import (
	"strings"
	"testing"

	"repro/qd"
)

// microDataset builds the small two-column dataset used across facade
// tests, through the Dataset handle.
func microDataset(t *testing.T) *qd.Dataset {
	t.Helper()
	schema := qd.MustSchema([]qd.Column{
		{Name: "ship", Kind: qd.Numeric, Min: 0, Max: 999},
		{Name: "commit_d", Kind: qd.Numeric, Min: 0, Max: 999},
		{Name: "mode", Kind: qd.Categorical, Dom: 3, Dict: []string{"AIR", "RAIL", "SHIP"}},
	})
	tbl := qd.NewTable(schema, 4000)
	for i := 0; i < 4000; i++ {
		ship := int64(i % 1000)
		tbl.AppendRow([]int64{ship, ship + int64(i%7) - 3, int64(i % 3)})
	}
	ds, err := qd.NewDataset(schema, tbl).WithWorkload(
		"ship < 100 AND mode = 'AIR'",
		"ship BETWEEN 500 AND 600",
		"ship < commit_d AND mode IN ('RAIL', 'SHIP')",
		"ship >= 900",
	)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestRegistryEveryStrategyPlans drives every registered strategy over
// the micro workload and checks the resulting Plan is deployable.
func TestRegistryEveryStrategyPlans(t *testing.T) {
	ds := microDataset(t)
	names := qd.PlannerNames()
	if len(names) < 7 {
		t.Fatalf("registry has %d strategies (%v), want >= 7", len(names), names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			planner, err := qd.NewPlanner(name)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := planner.Plan(ds, qd.PlanOptions{
				MinBlockSize: 200,
				Seed:         1,
				Hidden:       8,
				MaxEpisodes:  2,
			})
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			if plan == nil || plan.Layout == nil {
				t.Fatal("plan has no layout")
			}
			if plan.Strategy != name {
				t.Errorf("Strategy = %q, want %q", plan.Strategy, name)
			}
			if got := len(plan.Layout.BIDs); got != ds.Table.N {
				t.Errorf("layout assigns %d rows, table has %d", got, ds.Table.N)
			}
			frac := plan.AccessedFraction(nil)
			if frac <= 0 || frac > 1 {
				t.Errorf("accessed fraction %f out of (0, 1]", frac)
			}
			if frac < ds.Selectivity() {
				t.Errorf("fraction %f below selectivity bound %f", frac, ds.Selectivity())
			}
			switch name {
			case "greedy", "woodblock", "overlap", "twotree":
				if plan.Tree == nil {
					t.Error("tree-backed strategy returned nil Tree")
				}
			}
			switch name {
			case "woodblock":
				if plan.RL == nil || len(plan.RL.Curve) == 0 {
					t.Error("woodblock plan has no learning curve")
				}
			case "bottomup":
				if len(plan.Features) == 0 {
					t.Error("bottomup plan selected no features")
				}
			case "overlap":
				if plan.Overlap == nil {
					t.Error("overlap plan has no overlap layout")
				} else if err := plan.Overlap.Validate(ds.Table); err != nil {
					t.Error(err)
				}
			case "twotree":
				if plan.TwoTree == nil {
					t.Error("twotree plan has no two-tree deployment")
				}
			}
		})
	}
}

func TestRegistryUnknownStrategy(t *testing.T) {
	_, err := qd.NewPlanner("nope")
	if err == nil {
		t.Fatal("unknown strategy must error")
	}
	if !strings.Contains(err.Error(), "nope") || !strings.Contains(err.Error(), "greedy") {
		t.Errorf("error should name the strategy and the known set: %v", err)
	}
}

func TestRegistryAliases(t *testing.T) {
	for alias, canonical := range map[string]string{"rl": "woodblock", "bu": "bottomup"} {
		p, err := qd.NewPlanner(alias)
		if err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
		plan, err := p.Plan(microDataset(t), qd.PlanOptions{MinBlockSize: 400, Hidden: 8, MaxEpisodes: 2})
		if err != nil {
			t.Fatal(err)
		}
		if plan.Strategy != canonical {
			t.Errorf("alias %q planned %q, want %q", alias, plan.Strategy, canonical)
		}
	}
}

// TestSampleRateNeverSilentlyDropped: planners that cannot build on a
// sample must reject PlanOptions.SampleRate instead of ignoring it.
func TestSampleRateNeverSilentlyDropped(t *testing.T) {
	ds := microDataset(t)
	opt := qd.PlanOptions{MinBlockSize: 200, SampleRate: 0.5, Seed: 1, Hidden: 8, MaxEpisodes: 2}
	for _, name := range []string{"bottomup", "twotree", "overlap", "random", "range"} {
		planner, err := qd.NewPlanner(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := planner.Plan(ds, opt); err == nil {
			t.Errorf("%s: SampleRate must be an explicit error, not silently dropped", name)
		}
	}
	// The samplers proper still honor the rate.
	for _, name := range []string{"greedy", "woodblock"} {
		planner, err := qd.NewPlanner(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := planner.Plan(ds, opt); err != nil {
			t.Errorf("%s: sampling should be supported: %v", name, err)
		}
	}
}

func TestDatasetValidation(t *testing.T) {
	if _, err := (qd.GreedyPlanner{}).Plan(qd.NewDataset(nil, nil), qd.PlanOptions{MinBlockSize: 10}); err == nil {
		t.Error("dataset without a table must error")
	}
	ds := microDataset(t)
	if _, err := (qd.GreedyPlanner{}).Plan(ds, qd.PlanOptions{}); err == nil {
		t.Error("zero MinBlockSize must error")
	}
	empty := qd.NewDataset(ds.Schema, ds.Table) // no workload attached
	if _, err := (qd.GreedyPlanner{}).Plan(empty, qd.PlanOptions{MinBlockSize: 10}); err == nil {
		t.Error("empty workload must error")
	}
}
