package qd

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/serve"
)

// Serving re-exports. The serve subsystem closes the loop the paper
// leaves offline: observe live queries, detect that the deployed layout
// has drifted away from the workload, replan in the background, and
// hot-swap the new layout with zero failed queries.
type (
	// Server is the online serving handle: concurrent queries execute
	// against the live layout generation while a background drift monitor
	// replans the logged workload window and swaps improved generations in.
	Server = serve.Server
	// ServerStats is a point-in-time snapshot of the serving counters.
	ServerStats = serve.Stats
	// DriftReport is the outcome of one drift-check cycle.
	DriftReport = serve.Report
	// ServerResult is one served query's scan stats plus the generation
	// that served it.
	ServerResult = serve.QueryResult
	// ServerAggResult is one served aggregation's typed rows and stats
	// plus the generation that served it.
	ServerAggResult = serve.SelectResult
	// WorkloadLogEntry is one logged query execution.
	WorkloadLogEntry = serve.Entry
	// CompactReport is the outcome of one delta-compaction cycle (see
	// Server.Compact / Server.RunCompaction).
	CompactReport = serve.CompactReport
)

// ServeOptions configure NewServer. The zero value serves with the greedy
// replanner, Spark profile, and drift gates of 16 logged queries / 10%
// improvement; only Strategy-specific planning knobs usually need setting.
type ServeOptions struct {
	// Strategy names the registry planner used for background replans
	// (default "greedy"). Tree-producing strategies are recommended — the
	// replanned layout routes queries through frozen leaf descriptions.
	Strategy string
	// Plan configures each background replan. MinBlockSize 0 defaults to
	// table rows / 64 at replan time.
	Plan PlanOptions
	// ACs is the advanced-cut table served queries may reference.
	ACs []AdvCut
	// Profile / Mode / Exec configure physical execution (default
	// EngineSpark, RouteQdTree).
	Profile EngineProfile
	Mode    ExecMode
	Exec    ExecOptions
	// LogCapacity / WindowSize / MinWindow / MinImprovement /
	// CheckInterval / KeepGenerations tune the workload log and drift
	// monitor; see serve.Config for semantics and defaults.
	// MinImprovement 0 selects the default of 0.10; negative means swap
	// on any improvement.
	LogCapacity     int
	WindowSize      int
	MinWindow       int
	MinImprovement  float64
	CheckInterval   time.Duration
	KeepGenerations int
	// MemtableRows / CompactRows / CompactInterval tune the streaming
	// ingest path: the memtable seals into an on-disk delta segment at
	// MemtableRows, and the background compactor folds the delta into a
	// fresh generation once it holds CompactRows rows, checking every
	// CompactInterval (0 disables background compaction; Compact still
	// works on demand). See serve.Config for defaults.
	MemtableRows    int
	CompactRows     int
	CompactInterval time.Duration
	// ShardLabel names this server's shard when it runs as one store node
	// of a cluster (reported in Stats and the cluster summary); empty for
	// a standalone server.
	ShardLabel string
	// SlowQuery is the slow-query latency threshold (default 250ms;
	// negative disables slow-query accounting).
	SlowQuery time.Duration
	// Metrics is the registry behind GET /metrics (nil = the server makes
	// its own; pass a shared registry to co-host several servers).
	Metrics *MetricsRegistry
	// TraceRingSize bounds the recent/slow trace rings behind
	// GET /debug/traces.
	TraceRingSize int
}

// InitServing bootstraps a generation root from a planned layout: the
// plan's blocks become generation 1 and CURRENT points at it. The root is
// then servable by NewServer (and by cmd/qdserve).
func InitServing(root string, tbl *Table, plan *Plan) error {
	if plan == nil || plan.Layout == nil {
		return fmt.Errorf("qd: InitServing needs a plan with a layout")
	}
	return serve.Init(root, tbl, plan.Layout)
}

// NewServer opens the live generation under root and starts serving, with
// background replans driven by the named registry strategy.
func NewServer(root string, opt ServeOptions) (*Server, error) {
	strategy := opt.Strategy
	if strategy == "" {
		strategy = "greedy"
	}
	planner, err := NewPlanner(strategy)
	if err != nil {
		return nil, err
	}
	replan := func(tbl *Table, acs []AdvCut, window []Query) (*Layout, error) {
		popt := opt.Plan
		if popt.MinBlockSize < 1 {
			popt.MinBlockSize = max(1, tbl.N/64)
		}
		plan, err := planner.Plan(NewDataset(nil, tbl).WithQueries(window, acs), popt)
		if err != nil {
			return nil, err
		}
		return plan.Layout, nil
	}
	return serve.New(root, serve.Config{
		Profile:         opt.Profile,
		Mode:            opt.Mode,
		ExecOptions:     opt.Exec,
		ACs:             opt.ACs,
		LogCapacity:     opt.LogCapacity,
		WindowSize:      opt.WindowSize,
		MinWindow:       opt.MinWindow,
		MinImprovement:  opt.MinImprovement,
		CheckInterval:   opt.CheckInterval,
		KeepGenerations: opt.KeepGenerations,
		MemtableRows:    opt.MemtableRows,
		CompactRows:     opt.CompactRows,
		CompactInterval: opt.CompactInterval,
		ShardLabel:      opt.ShardLabel,
		SlowQuery:       opt.SlowQuery,
		Metrics:         opt.Metrics,
		TraceRingSize:   opt.TraceRingSize,
		Replan:          replan,
	})
}

// ServerHandler mounts a Server's HTTP/JSON API (POST /query, GET /stats,
// POST /relayout, GET /healthz) — the surface cmd/qdserve exposes.
func ServerHandler(s *Server) http.Handler { return serve.Handler(s) }
