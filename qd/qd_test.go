package qd_test

import (
	"bytes"
	"testing"

	"repro/qd"
)

// smallDataset builds a tiny two-column dataset with a SQL workload via
// the public API only — the facade must be self-sufficient.
func smallDataset(t *testing.T) (*qd.Table, []qd.Query, []qd.AdvCut) {
	t.Helper()
	schema := qd.MustSchema([]qd.Column{
		{Name: "ship", Kind: qd.Numeric, Min: 0, Max: 999},
		{Name: "commit_d", Kind: qd.Numeric, Min: 0, Max: 999},
		{Name: "mode", Kind: qd.Categorical, Dom: 3, Dict: []string{"AIR", "RAIL", "SHIP"}},
	})
	tbl := qd.NewTable(schema, 4000)
	for i := 0; i < 4000; i++ {
		ship := int64(i % 1000)
		tbl.AppendRow([]int64{ship, ship + int64(i%7) - 3, int64(i % 3)})
	}
	queries, acs, err := qd.ParseWorkload(schema, []string{
		"ship < 100 AND mode = 'AIR'",
		"ship BETWEEN 500 AND 600",
		"ship < commit_d AND mode IN ('RAIL', 'SHIP')",
		"ship >= 900",
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, queries, acs
}

func TestPublicGreedyPipeline(t *testing.T) {
	tbl, queries, acs := smallDataset(t)
	tree, err := qd.BuildGreedy(tbl, queries, acs, qd.BuildOptions{MinBlockSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	layout := qd.LayoutFromTree("greedy", tree, tbl)
	frac := layout.AccessedFraction(queries)
	sel := qd.Selectivity(tbl, queries, acs)
	if frac < sel {
		t.Fatalf("fraction %.4f below selectivity lower bound %.4f", frac, sel)
	}
	if frac >= 1.0 {
		t.Errorf("greedy achieved no skipping (%.4f)", frac)
	}
	// Serialization round trip through the public API.
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := qd.LoadTree(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(back.Leaves()), len(tree.Leaves()); got != want {
		t.Errorf("leaves after round trip: %d vs %d", got, want)
	}
}

func TestPublicWoodblockPipeline(t *testing.T) {
	tbl, queries, acs := smallDataset(t)
	res, err := qd.BuildWoodblock(tbl, queries, acs, qd.WoodblockOptions{
		BuildOptions: qd.BuildOptions{MinBlockSize: 200, Seed: 1},
		Hidden:       16,
		MaxEpisodes:  6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree == nil || res.Episodes != 6 {
		t.Fatalf("RL result: %+v", res)
	}
}

func TestPublicSamplingScalesB(t *testing.T) {
	tbl, queries, acs := smallDataset(t)
	tree, err := qd.BuildGreedy(tbl, queries, acs, qd.BuildOptions{
		MinBlockSize: 400, SampleRate: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Route the FULL table; blocks must be ≈ >= b (sampling noise aside).
	layout := qd.LayoutFromTree("sampled", tree, tbl)
	for b, n := range layout.Counts {
		if n > 0 && n < 100 {
			t.Errorf("block %d has %d rows; sampled construction degenerated", b, n)
		}
	}
}

func TestPublicBaselinesAndBottomUp(t *testing.T) {
	tbl, queries, acs := smallDataset(t)
	r1, err := qd.RandomLayout(tbl, 8, acs, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := qd.RangeLayout(tbl, 0, 8, acs)
	if err != nil {
		t.Fatal(err)
	}
	bu, feats, err := qd.BuildBottomUp(tbl, queries, acs, qd.BuildOptions{MinBlockSize: 200}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) == 0 {
		t.Error("bottom-up selected no features")
	}
	// Ordering sanity: range partitioning on ship must beat random for
	// this ship-heavy workload.
	f1 := r1.AccessedFraction(queries)
	f2 := r2.AccessedFraction(queries)
	fb := bu.AccessedFraction(queries)
	if f2 >= f1 {
		t.Errorf("range %.3f should beat random %.3f on ship-range workload", f2, f1)
	}
	if fb <= 0 || fb > 1 {
		t.Errorf("bottom-up fraction out of range: %f", fb)
	}
}

func TestPublicExtensions(t *testing.T) {
	tbl, queries, acs := smallDataset(t)
	ov, err := qd.BuildOverlap(tbl, queries, acs, qd.BuildOptions{MinBlockSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	if err := ov.Validate(tbl); err != nil {
		t.Fatal(err)
	}
	tt, err := qd.BuildTwoTree(tbl, queries, acs, qd.BuildOptions{MinBlockSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	if tt.AccessedFraction(queries) <= 0 {
		t.Error("two-tree fraction must be positive")
	}
}

func TestPublicValidation(t *testing.T) {
	tbl, queries, acs := smallDataset(t)
	if _, err := qd.BuildGreedy(tbl, queries, acs, qd.BuildOptions{}); err == nil {
		t.Error("zero MinBlockSize must error")
	}
	if _, err := qd.BuildGreedy(tbl, nil, acs, qd.BuildOptions{MinBlockSize: 10}); err == nil {
		t.Error("empty workload must error")
	}
	if _, err := qd.BuildOverlap(tbl, queries, acs, qd.BuildOptions{MinBlockSize: 10, SampleRate: 0.5}); err == nil {
		t.Error("overlap with sampling must error")
	}
}

func TestExplicitQueryConstruction(t *testing.T) {
	tbl, _, _ := smallDataset(t)
	q := qd.NewQuery("manual", qd.And(
		qd.P(qd.Pred{Col: 0, Op: qd.Lt, Literal: 50}),
		qd.Or(
			qd.P(qd.Pred{Col: 2, Op: qd.Eq, Literal: 0}),
			qd.P(qd.NewIn(2, []int64{1, 2})),
		),
	))
	tree, err := qd.BuildGreedy(tbl, []qd.Query{q}, nil, qd.BuildOptions{MinBlockSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.QueryBlocks(q); len(got) == 0 {
		t.Error("query must intersect at least one block")
	}
}

// TestPublicExecution drives the physical engine end-to-end through the
// facade: materialize a layout, scan it sequentially and in parallel, and
// require identical counters.
func TestPublicExecution(t *testing.T) {
	tbl, queries, acs := smallDataset(t)
	tree, err := qd.BuildGreedy(tbl, queries, acs, qd.BuildOptions{MinBlockSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	layout := qd.LayoutFromTree("greedy", tree, tbl)
	store, err := qd.WriteStore(t.TempDir(), tbl, layout)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	seq, err := qd.ExecuteWorkload(store, layout, queries, acs, qd.EngineDBMS, qd.RouteQdTree,
		qd.ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := qd.ExecuteWorkload(store, layout, queries, acs, qd.EngineDBMS, qd.RouteQdTree,
		qd.ExecOptions{Parallelism: 4, ShareReads: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Results {
		if seq.Results[i].ScanStats != par.Results[i].ScanStats {
			t.Errorf("%s: parallel stats %+v, sequential %+v",
				queries[i].Name, par.Results[i].ScanStats, seq.Results[i].ScanStats)
		}
	}
	if par.TotalSimTime != seq.TotalSimTime {
		t.Errorf("TotalSimTime %v vs %v", par.TotalSimTime, seq.TotalSimTime)
	}
	if par.PhysicalReads > seq.PhysicalReads {
		t.Errorf("shared reads did not reduce physical reads: %d vs %d", par.PhysicalReads, seq.PhysicalReads)
	}

	// Single-query path and reopened store.
	res, err := qd.Execute(store, layout, queries[0], acs, qd.EngineSpark, qd.RouteQdTree, qd.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScanned == 0 || res.RowsMatched == 0 {
		t.Errorf("query scanned %d matched %d", res.RowsScanned, res.RowsMatched)
	}
}
