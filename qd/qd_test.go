package qd_test

import (
	"bytes"
	"testing"

	"repro/qd"
)

func TestPublicGreedyPipeline(t *testing.T) {
	ds := microDataset(t)
	plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	frac := plan.AccessedFraction(nil)
	sel := ds.Selectivity()
	if frac < sel {
		t.Fatalf("fraction %.4f below selectivity lower bound %.4f", frac, sel)
	}
	if frac >= 1.0 {
		t.Errorf("greedy achieved no skipping (%.4f)", frac)
	}
	// Serialization round trip through the public API.
	var buf bytes.Buffer
	if err := plan.Tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := qd.LoadTree(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(back.Leaves()), len(plan.Tree.Leaves()); got != want {
		t.Errorf("leaves after round trip: %d vs %d", got, want)
	}
}

func TestPublicWoodblockPipeline(t *testing.T) {
	ds := microDataset(t)
	plan, err := qd.WoodblockPlanner{}.Plan(ds, qd.PlanOptions{
		MinBlockSize: 200, Seed: 1, Hidden: 16, MaxEpisodes: 6})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Tree == nil || plan.RL == nil || plan.RL.Episodes != 6 {
		t.Fatalf("RL plan: %+v", plan)
	}
}

func TestPublicSamplingScalesB(t *testing.T) {
	ds := microDataset(t)
	plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{
		MinBlockSize: 400, SampleRate: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The plan's layout routes the FULL table; blocks must be ≈ >= b
	// (sampling noise aside).
	for b, n := range plan.Layout.Counts {
		if n > 0 && n < 100 {
			t.Errorf("block %d has %d rows; sampled construction degenerated", b, n)
		}
	}
}

func TestPublicBaselinesAndBottomUp(t *testing.T) {
	ds := microDataset(t)
	r1, err := qd.RandomPlanner{}.Plan(ds, qd.PlanOptions{NumBlocks: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := qd.RangePlanner{}.Plan(ds, qd.PlanOptions{NumBlocks: 8, RangeColumn: 0})
	if err != nil {
		t.Fatal(err)
	}
	bu, err := qd.BottomUpPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 200, SelectivityCap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(bu.Features) == 0 {
		t.Error("bottom-up selected no features")
	}
	// Ordering sanity: range partitioning on ship must beat random for
	// this ship-heavy workload.
	f1 := r1.AccessedFraction(nil)
	f2 := r2.AccessedFraction(nil)
	fb := bu.AccessedFraction(nil)
	if f2 >= f1 {
		t.Errorf("range %.3f should beat random %.3f on ship-range workload", f2, f1)
	}
	if fb <= 0 || fb > 1 {
		t.Errorf("bottom-up fraction out of range: %f", fb)
	}
}

func TestPublicExtensions(t *testing.T) {
	ds := microDataset(t)
	ov, err := qd.OverlapPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	if err := ov.Overlap.Validate(ds.Table); err != nil {
		t.Fatal(err)
	}
	tt, err := qd.TwoTreePlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	if tt.TwoTree.AccessedFraction(ds.Queries) <= 0 {
		t.Error("two-tree fraction must be positive")
	}
}

func TestExplicitQueryConstruction(t *testing.T) {
	ds := microDataset(t)
	q := qd.NewQuery("manual", qd.And(
		qd.P(qd.Pred{Col: 0, Op: qd.Lt, Literal: 50}),
		qd.Or(
			qd.P(qd.Pred{Col: 2, Op: qd.Eq, Literal: 0}),
			qd.P(qd.NewIn(2, []int64{1, 2})),
		),
	))
	manual := qd.NewDataset(ds.Schema, ds.Table).WithQueries([]qd.Query{q}, nil)
	plan, err := qd.GreedyPlanner{}.Plan(manual, qd.PlanOptions{MinBlockSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Tree.QueryBlocks(q); len(got) == 0 {
		t.Error("query must intersect at least one block")
	}
}

// TestDeprecatedWrappersDelegate keeps the one-release compatibility
// surface honest: the legacy free functions must produce the same layouts
// and results as the handles they now wrap.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	ds := microDataset(t)
	tbl, queries, acs := ds.Table, ds.Queries, ds.ACs

	tree, err := qd.BuildGreedy(tbl, queries, acs, qd.BuildOptions{MinBlockSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	layout := qd.LayoutFromTree("greedy", tree, tbl)
	plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := layout.AccessedFraction(queries), plan.AccessedFraction(nil); got != want {
		t.Errorf("wrapper layout fraction %f, planner %f", got, want)
	}

	if _, err := qd.BuildGreedy(tbl, queries, acs, qd.BuildOptions{}); err == nil {
		t.Error("zero MinBlockSize must error")
	}
	if _, err := qd.BuildGreedy(tbl, nil, acs, qd.BuildOptions{MinBlockSize: 10}); err == nil {
		t.Error("empty workload must error")
	}
	if _, err := qd.BuildOverlap(tbl, queries, acs, qd.BuildOptions{MinBlockSize: 10, SampleRate: 0.5}); err == nil {
		t.Error("overlap with sampling must error")
	}
	if _, _, err := qd.BuildBottomUp(tbl, queries, acs, qd.BuildOptions{MinBlockSize: 200, SampleRate: 0.5}, 0.1); err == nil {
		t.Error("bottom-up with sampling must error, not silently drop the sample")
	}
	if _, err := qd.BuildTwoTree(tbl, queries, acs, qd.BuildOptions{MinBlockSize: 200, SampleRate: 0.5}); err == nil {
		t.Error("two-tree with sampling must error, not silently drop the sample")
	}

	// Execution wrappers against the Engine.
	store, err := qd.WriteStore(t.TempDir(), tbl, plan.Layout)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := qd.NewEngine(store, plan, qd.EngineDBMS, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	wrapRes, err := qd.Execute(store, plan.Layout, queries[0], acs, qd.EngineDBMS, qd.RouteQdTree, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	engRes, err := eng.Query(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if wrapRes.ScanStats != engRes.ScanStats {
		t.Errorf("Execute wrapper stats %+v, engine %+v", wrapRes.ScanStats, engRes.ScanStats)
	}
	wrapWL, err := qd.ExecuteWorkload(store, plan.Layout, queries, acs, qd.EngineDBMS, qd.RouteQdTree, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	engWL, err := eng.Workload(queries)
	if err != nil {
		t.Fatal(err)
	}
	if wrapWL.TotalSimTime != engWL.TotalSimTime {
		t.Errorf("ExecuteWorkload TotalSimTime %v, engine %v", wrapWL.TotalSimTime, engWL.TotalSimTime)
	}
}
