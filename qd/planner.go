package qd

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/baselines"
	"repro/internal/bottomup"
	"repro/internal/cost"
	"repro/internal/greedy"
	"repro/internal/overlap"
	"repro/internal/replicate"
	"repro/internal/rl"
)

// Criterion selects the greedy split-scoring rule.
type Criterion = greedy.Criterion

// Greedy split criteria: the paper's ΔC rule and the decision-tree-style
// information-gain ablation.
const (
	DeltaSkip = greedy.DeltaSkip
	InfoGain  = greedy.InfoGain
)

// PlanOptions configure layout planning. The core fields apply to every
// planner; the remaining fields are honored by the planners named in their
// comments and ignored by the rest.
type PlanOptions struct {
	// MinBlockSize is b: the minimum rows per block, in full-table rows
	// (paper: 100K for TPC-H, 50K for ErrorLog).
	MinBlockSize int
	// SampleRate < 1 builds on a uniform sample (Sec. 5.2.1 recommends
	// 0.1%–1%); b is scaled accordingly. 0 or >= 1 uses the full table.
	// Planners that cannot build on a sample (bottomup, overlap, twotree,
	// random, range) reject a SampleRate instead of silently ignoring it.
	SampleRate float64
	// Cuts overrides the candidate cut set; nil extracts it from the
	// dataset's workload.
	Cuts []Cut
	// MaxLeaves caps the leaf count (0 = unlimited).
	MaxLeaves int
	// Seed drives sampling, the Woodblock agent, and the random baseline.
	Seed int64

	// Criterion selects the greedy split rule (greedy, overlap, twotree).
	Criterion Criterion

	// SelectivityCap enables the BU+ tuning of the bottomup planner:
	// features whose match fraction exceeds the cap are discarded
	// (paper: 0.10). 0 disables the tuning.
	SelectivityCap float64

	// Woodblock (deep-RL) controls.
	Hidden      int           // network width (paper: 512; default 128)
	MaxEpisodes int           // trees to attempt (default 64)
	TimeBudget  time.Duration // optional wall-clock budget
	// OnEpisode observes the learning curve (Fig. 8).
	OnEpisode func(episode int, elapsed time.Duration, ratio, best float64)

	// NumBlocks fixes the block count of the random and range planners;
	// 0 derives it as Table.N / MinBlockSize.
	NumBlocks int
	// RangeColumn is the partition column of the range planner.
	RangeColumn int
}

// buildOptions projects the shared core onto the legacy BuildOptions,
// whose prepare method still implements sampling and cut extraction.
func (o PlanOptions) buildOptions() BuildOptions {
	return BuildOptions{
		MinBlockSize: o.MinBlockSize,
		SampleRate:   o.SampleRate,
		Cuts:         o.Cuts,
		MaxLeaves:    o.MaxLeaves,
		Seed:         o.Seed,
	}
}

// rejectSample errors when a sample rate is set for a planner that would
// otherwise silently build on the full table.
func (o PlanOptions) rejectSample(strategy string) error {
	if o.SampleRate > 0 && o.SampleRate < 1 {
		return fmt.Errorf("qd: the %s planner cannot build on a sample; set SampleRate to 0 or pre-sample the table", strategy)
	}
	return nil
}

// blockCount resolves the explicit or derived block count for the
// baseline planners.
func (o PlanOptions) blockCount(n int, strategy string) (int, error) {
	if o.NumBlocks > 0 {
		return o.NumBlocks, nil
	}
	if o.MinBlockSize < 1 {
		return 0, fmt.Errorf("qd: the %s planner needs NumBlocks or MinBlockSize", strategy)
	}
	nb := n / o.MinBlockSize
	if nb < 1 {
		nb = 1
	}
	return nb, nil
}

// Plan is a deployable layout plus the strategy metadata that produced
// it. Layout is always non-nil for a successful plan; the remaining
// fields are populated per strategy.
type Plan struct {
	// Strategy is the registry name of the planner that produced the plan.
	Strategy string
	// Layout is the materializable row→block partitioning. For the
	// twotree strategy it is T1's layout; for overlap it is the plain
	// (pre-replication) layout of the relaxed tree.
	Layout *Layout
	// Tree is the qd-tree behind the layout; nil for the tree-less
	// planners (bottomup, random, range).
	Tree *Tree
	// ACs is the advanced-cut table of the dataset the plan was built
	// for; NewEngine binds it so query execution needs no extra inputs.
	ACs []AdvCut
	// Queries is the workload the plan was optimized for.
	Queries []Query
	// RL reports the Woodblock run (best tree + learning curve).
	RL *RLResult
	// Features are the cuts selected by the bottomup planner.
	Features []Cut
	// Overlap is the multi-assignment layout of the overlap planner.
	Overlap *OverlapLayout
	// TwoTree is the replicated deployment of the twotree planner.
	TwoTree *TwoTree
	// Elapsed is the wall-clock planning time.
	Elapsed time.Duration
}

// AccessedFraction reports the fraction of tuples the plan's layout scans
// for the workload it was planned on (w == nil) or any other workload.
func (p *Plan) AccessedFraction(w []Query) float64 {
	if w == nil {
		w = p.Queries
	}
	return p.Layout.AccessedFraction(w)
}

// Planner turns a dataset into a deployable Plan. Implementations are
// stateless values; configuration lives in PlanOptions.
type Planner interface {
	Plan(ds *Dataset, opt PlanOptions) (*Plan, error)
}

// --- strategy registry ---

var (
	plannerMu      sync.RWMutex
	plannerFactory = map[string]func() Planner{}
	plannerAlias   = map[string]string{}
)

// RegisterPlanner adds a strategy under the given canonical name,
// replacing any previous registration. Commands resolve their -strategy
// flag through this registry, so external packages can plug in new layout
// strategies without touching the CLIs.
func RegisterPlanner(name string, factory func() Planner) {
	plannerMu.Lock()
	defer plannerMu.Unlock()
	plannerFactory[name] = factory
}

// RegisterPlannerAlias makes alias resolve to the canonical name in
// NewPlanner without appearing in PlannerNames.
func RegisterPlannerAlias(alias, canonical string) {
	plannerMu.Lock()
	defer plannerMu.Unlock()
	plannerAlias[alias] = canonical
}

// NewPlanner resolves a strategy name (or alias) to a Planner.
func NewPlanner(name string) (Planner, error) {
	plannerMu.RLock()
	defer plannerMu.RUnlock()
	key := name
	if canon, ok := plannerAlias[key]; ok {
		key = canon
	}
	if f, ok := plannerFactory[key]; ok {
		return f(), nil
	}
	return nil, fmt.Errorf("qd: unknown strategy %q (have %v)", name, plannerNamesLocked())
}

// PlannerNames lists the registered canonical strategy names, sorted.
func PlannerNames() []string {
	plannerMu.RLock()
	defer plannerMu.RUnlock()
	return plannerNamesLocked()
}

func plannerNamesLocked() []string {
	names := make([]string, 0, len(plannerFactory))
	for n := range plannerFactory {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterPlanner("greedy", func() Planner { return GreedyPlanner{} })
	RegisterPlanner("woodblock", func() Planner { return WoodblockPlanner{} })
	RegisterPlanner("bottomup", func() Planner { return BottomUpPlanner{} })
	RegisterPlanner("random", func() Planner { return RandomPlanner{} })
	RegisterPlanner("range", func() Planner { return RangePlanner{} })
	RegisterPlanner("overlap", func() Planner { return OverlapPlanner{} })
	RegisterPlanner("twotree", func() Planner { return TwoTreePlanner{} })
	RegisterPlannerAlias("rl", "woodblock")
	RegisterPlannerAlias("bu", "bottomup")
}

// newPlan stamps the fields every strategy shares.
func newPlan(strategy string, ds *Dataset, layout *Layout, start time.Time) *Plan {
	return &Plan{
		Strategy: strategy,
		Layout:   layout,
		ACs:      ds.ACs,
		Queries:  ds.Queries,
		Elapsed:  time.Since(start),
	}
}

// GreedyPlanner constructs a qd-tree with Algorithm 1 (Sec. 4).
type GreedyPlanner struct{}

// greedyTree is the construction core shared by the planner and the
// deprecated BuildGreedy wrapper. The returned tree is not yet deployed
// (not routed or frozen); Plan materializes the layout on top.
func greedyTree(ds *Dataset, opt PlanOptions) (*Tree, error) {
	if err := ds.check(); err != nil {
		return nil, err
	}
	build, b, cuts, err := opt.buildOptions().prepare(ds.Table, ds.Queries)
	if err != nil {
		return nil, err
	}
	return greedy.Build(build, ds.ACs, greedy.Options{
		MinSize:   b,
		Cuts:      cuts,
		Queries:   ds.Queries,
		MaxLeaves: opt.MaxLeaves,
		Criterion: opt.Criterion,
	})
}

func (GreedyPlanner) Plan(ds *Dataset, opt PlanOptions) (*Plan, error) {
	start := time.Now()
	tree, err := greedyTree(ds, opt)
	if err != nil {
		return nil, err
	}
	p := newPlan("greedy", ds, cost.FromTree("greedy", tree, ds.Table), start)
	p.Tree = tree
	return p, nil
}

// WoodblockPlanner trains the deep-RL agent of Sec. 5 and deploys the
// best tree found.
type WoodblockPlanner struct{}

// woodblockResult is the training core shared by the planner and the
// deprecated BuildWoodblock wrapper; the best tree is not yet deployed.
func woodblockResult(ds *Dataset, opt PlanOptions) (*RLResult, error) {
	if err := ds.check(); err != nil {
		return nil, err
	}
	build, b, cuts, err := opt.buildOptions().prepare(ds.Table, ds.Queries)
	if err != nil {
		return nil, err
	}
	return rl.Build(build, ds.ACs, rl.Options{
		MinSize:     b,
		Cuts:        cuts,
		Queries:     ds.Queries,
		Hidden:      opt.Hidden,
		MaxEpisodes: opt.MaxEpisodes,
		TimeBudget:  opt.TimeBudget,
		MaxLeaves:   opt.MaxLeaves,
		Seed:        opt.Seed,
		OnEpisode:   opt.OnEpisode,
	})
}

func (WoodblockPlanner) Plan(ds *Dataset, opt PlanOptions) (*Plan, error) {
	start := time.Now()
	res, err := woodblockResult(ds, opt)
	if err != nil {
		return nil, err
	}
	p := newPlan("woodblock", ds, cost.FromTree("woodblock", res.Tree, ds.Table), start)
	p.Tree = res.Tree
	p.RL = res
	return p, nil
}

// BottomUpPlanner runs the Sun et al. baseline (Sec. 2.2.2). Set
// PlanOptions.SelectivityCap to ~0.10 for the paper's tuned BU+.
type BottomUpPlanner struct{}

func (BottomUpPlanner) Plan(ds *Dataset, opt PlanOptions) (*Plan, error) {
	if err := ds.check(); err != nil {
		return nil, err
	}
	if err := opt.rejectSample("bottomup"); err != nil {
		return nil, err
	}
	_, _, cuts, err := opt.buildOptions().prepare(ds.Table, ds.Queries)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := bottomup.Build(ds.Table, ds.ACs, bottomup.Options{
		MinSize:        opt.MinBlockSize,
		Cuts:           cuts,
		Queries:        ds.Queries,
		SelectivityCap: opt.SelectivityCap,
	})
	if err != nil {
		return nil, err
	}
	p := newPlan("bottomup", ds, res.Layout, start)
	p.Features = res.Features
	return p, nil
}

// RandomPlanner shuffles rows into fixed-size blocks (the TPC-H
// baseline). It ignores the workload except for advanced-cut metadata.
type RandomPlanner struct{}

func (RandomPlanner) Plan(ds *Dataset, opt PlanOptions) (*Plan, error) {
	if err := ds.check(); err != nil {
		return nil, err
	}
	if err := opt.rejectSample("random"); err != nil {
		return nil, err
	}
	nb, err := opt.blockCount(ds.Table.N, "random")
	if err != nil {
		return nil, err
	}
	start := time.Now()
	lay, err := baselines.Random(ds.Table, nb, ds.ACs, opt.Seed)
	if err != nil {
		return nil, err
	}
	return newPlan("random", ds, lay, start), nil
}

// RangePlanner range-partitions on PlanOptions.RangeColumn (the ErrorLog
// ingest-order baseline).
type RangePlanner struct{}

func (RangePlanner) Plan(ds *Dataset, opt PlanOptions) (*Plan, error) {
	if err := ds.check(); err != nil {
		return nil, err
	}
	if err := opt.rejectSample("range"); err != nil {
		return nil, err
	}
	nb, err := opt.blockCount(ds.Table.N, "range")
	if err != nil {
		return nil, err
	}
	start := time.Now()
	lay, err := baselines.Range(ds.Table, opt.RangeColumn, nb, ds.ACs)
	if err != nil {
		return nil, err
	}
	return newPlan("range", ds, lay, start), nil
}

// OverlapPlanner constructs a data-overlap layout (Sec. 6.2): relaxed
// cuts plus small-leaf replication. Plan.Overlap holds the
// multi-assignment layout; Plan.Layout is the plain single-assignment
// routing of the same relaxed tree.
type OverlapPlanner struct{}

// overlapLayout is the construction core shared by the planner and the
// deprecated BuildOverlap wrapper.
func overlapLayout(ds *Dataset, opt PlanOptions) (*OverlapLayout, error) {
	if err := ds.check(); err != nil {
		return nil, err
	}
	if err := opt.rejectSample("overlap"); err != nil {
		return nil, err
	}
	_, b, cuts, err := opt.buildOptions().prepare(ds.Table, ds.Queries)
	if err != nil {
		return nil, err
	}
	return overlap.Build(ds.Table, ds.ACs, overlap.Options{
		MinSize: b, Cuts: cuts, Queries: ds.Queries, MaxLeaves: opt.MaxLeaves})
}

func (OverlapPlanner) Plan(ds *Dataset, opt PlanOptions) (*Plan, error) {
	start := time.Now()
	lay, err := overlapLayout(ds, opt)
	if err != nil {
		return nil, err
	}
	p := newPlan("overlap", ds, cost.FromTree("overlap", lay.Tree, ds.Table), start)
	p.Tree = lay.Tree
	p.Overlap = lay
	return p, nil
}

// TwoTreePlanner constructs the two-tree replication deployment
// (Sec. 6.3). Plan.TwoTree holds both trees; Plan.Layout is T1's layout.
type TwoTreePlanner struct{}

func (TwoTreePlanner) Plan(ds *Dataset, opt PlanOptions) (*Plan, error) {
	if err := ds.check(); err != nil {
		return nil, err
	}
	if err := opt.rejectSample("twotree"); err != nil {
		return nil, err
	}
	_, _, cuts, err := opt.buildOptions().prepare(ds.Table, ds.Queries)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	tt, err := replicate.Build(ds.Table, ds.ACs, replicate.Options{
		MinSize: opt.MinBlockSize, Cuts: cuts, Queries: ds.Queries, MaxLeaves: opt.MaxLeaves})
	if err != nil {
		return nil, err
	}
	p := newPlan("twotree", ds, tt.L1, start)
	p.Tree = tt.T1
	p.TwoTree = tt
	return p, nil
}
