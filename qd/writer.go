package qd

// The unified write path. Three implementations share one Writer surface:
//
//   - BulkWriter: the offline path — buffer rows in memory, plan a layout
//     over the full table, materialize the store in one shot. Flush is a
//     no-op (there is nothing durable before Compact).
//   - Engine: the live path over an opened store — Insert lands rows in
//     an LSM-style delta (memtable + on-disk segments beside the blocks)
//     that queries merge with the base, and Compact folds the delta into
//     the layout in place.
//   - Server: the serving path — same delta semantics, but compaction
//     materializes a fresh generation and atomically flips CURRENT, so
//     concurrent queries never block (see internal/serve).
//
// Writer replaces the router.Ingester free-standing segment spiller as the
// recommended ingest API; see the migration table in the README.

import (
	"errors"
	"fmt"

	"repro/internal/serve"
	"repro/internal/table"
)

// Writer is the unified write-path API: stream rows in, make them
// durable, fold them into the learned layout.
//
// Insert appends a batch of rows (one []int64 per row, one value per
// schema column; categorical values are dictionary codes). Inserted rows
// are immediately visible to queries on implementations that serve reads
// (Engine, Server). Flush forces buffered rows to durable storage without
// reorganizing anything. Compact folds everything inserted so far into
// the learned block layout, restoring block-skipping effectiveness.
//
// After Close (every implementation has one), all three methods fail with
// a named error — ErrWriterClosed for BulkWriter and Engine,
// ErrServerClosed for Server — instead of panicking or corrupting state.
type Writer interface {
	Insert(rows [][]int64) error
	Flush() error
	Compact() error
}

// ErrWriterClosed is returned by BulkWriter and Engine write-path methods
// after Close.
var ErrWriterClosed = errors.New("qd: writer is closed")

// ErrServerClosed is the Server-side equivalent: every Server method that
// needs the live generation returns it after Close.
var ErrServerClosed = serve.ErrClosed

// Writer conformance, checked at compile time.
var (
	_ Writer = (*BulkWriter)(nil)
	_ Writer = (*Engine)(nil)
	_ Writer = (*Server)(nil)
)

// BulkWriter is the offline bulk-load path behind the Writer API: rows
// accumulate in memory, and Compact plans a layout over everything
// inserted so far and materializes it under the writer's directory. It is
// the WriteStore + planner composition as a Writer, so load-then-serve
// and stream-then-serve code can share one code path.
//
// BulkWriter is not safe for concurrent use; it is a loading tool, not a
// serving surface.
type BulkWriter struct {
	dir      string
	planner  Planner
	popt     PlanOptions
	sopt     StoreOptions
	tbl      *Table
	queries  []Query
	acs      []AdvCut
	plan     *Plan
	store    *BlockStore
	closed   bool
	unsynced int // rows inserted since the last Compact
}

// NewBulkWriter prepares a bulk loader that will materialize its store
// under dir. The dataset seeds the schema, any initial rows, and the
// workload the layout is planned for; strategy names the registry planner
// Compact runs (the Strategy values accepted by Plan).
func NewBulkWriter(dir string, ds *Dataset, strategy string, popt PlanOptions, sopt ...StoreOptions) (*BulkWriter, error) {
	if ds == nil || ds.Table == nil {
		return nil, fmt.Errorf("qd: bulk writer needs a dataset with a table")
	}
	planner, err := NewPlanner(strategy)
	if err != nil {
		return nil, err
	}
	// Copy the seed rows so Insert never mutates the caller's table.
	tbl := table.New(ds.Table.Schema, ds.Table.N)
	tbl.Concat(ds.Table)
	w := &BulkWriter{
		dir:      dir,
		planner:  planner,
		popt:     popt,
		tbl:      tbl,
		queries:  ds.Queries,
		acs:      ds.ACs,
		unsynced: tbl.N,
	}
	if len(sopt) > 0 {
		w.sopt = sopt[0]
	}
	return w, nil
}

// Insert buffers rows in memory. They become durable at the next Compact.
func (w *BulkWriter) Insert(rows [][]int64) error {
	if w.closed {
		return ErrWriterClosed
	}
	ncols := w.tbl.Schema.NumCols()
	for i, r := range rows {
		if len(r) != ncols {
			return fmt.Errorf("qd: bulk insert row %d has %d values, schema has %d columns", i, len(r), ncols)
		}
	}
	for _, r := range rows {
		w.tbl.AppendRow(r)
	}
	w.unsynced += len(rows)
	return nil
}

// Flush is a no-op on the bulk path: rows only become durable when
// Compact plans and writes the store.
func (w *BulkWriter) Flush() error {
	if w.closed {
		return ErrWriterClosed
	}
	return nil
}

// Compact plans a layout over every row inserted so far and writes (or
// rewrites) the store directory. With nothing new since the last Compact
// it returns immediately.
func (w *BulkWriter) Compact() error {
	if w.closed {
		return ErrWriterClosed
	}
	if w.unsynced == 0 && w.store != nil {
		return nil
	}
	popt := w.popt
	if popt.MinBlockSize < 1 {
		popt.MinBlockSize = max(1, w.tbl.N/64)
	}
	plan, err := w.planner.Plan(NewDataset(nil, w.tbl).WithQueries(w.queries, w.acs), popt)
	if err != nil {
		return err
	}
	if w.store != nil {
		w.store.Close()
	}
	store, err := WriteStore(w.dir, w.tbl, plan.Layout, w.sopt)
	if err != nil {
		return err
	}
	w.plan, w.store, w.unsynced = plan, store, 0
	return nil
}

// Rows returns how many rows the writer holds (durable or not).
func (w *BulkWriter) Rows() int { return w.tbl.N }

// Plan returns the plan of the last Compact (nil before the first).
func (w *BulkWriter) Plan() *Plan { return w.plan }

// Store returns the store the last Compact materialized (nil before the
// first).
func (w *BulkWriter) Store() *BlockStore { return w.store }

// Close releases the materialized store's handles and marks the writer
// closed; it is idempotent. Rows inserted after the last Compact are
// discarded — call Compact first to keep them.
func (w *BulkWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.store != nil {
		return w.store.Close()
	}
	return nil
}
