package qd

import (
	"fmt"
	"testing"
)

// serverFixture plans a layout for a low-range workload and boots a
// serving root; high-range SQL then drifts the log.
func serverFixture(t *testing.T) (*Server, []string) {
	t.Helper()
	schema := MustSchema([]Column{{Name: "x", Kind: Numeric, Min: 0, Max: 999}})
	tbl := NewTable(schema, 4000)
	for i := 0; i < 4000; i++ {
		tbl.AppendRow([]int64{int64(i % 1000)})
	}
	var lowSQL, highSQL []string
	for i := 0; i < 4; i++ {
		lowSQL = append(lowSQL, fmt.Sprintf("x >= %d AND x < %d", i*50, i*50+50))
		highSQL = append(highSQL, fmt.Sprintf("x >= %d AND x < %d", 800+i*50, 850+i*50))
	}
	ds, err := NewDataset(schema, tbl).WithWorkload(lowSQL...)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := GreedyPlanner{}.Plan(ds, PlanOptions{MinBlockSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := InitServing(root, tbl, plan); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(root, ServeOptions{
		Plan:      PlanOptions{MinBlockSize: 100},
		MinWindow: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, highSQL
}

func TestServerFacadeDriftLoop(t *testing.T) {
	srv, highSQL := serverFixture(t)
	for _, sql := range highSQL {
		res, err := srv.QuerySQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsMatched != 200 { // 4000 rows cycle 0..999: 50-wide band = 200
			t.Fatalf("%s matched %d, want 200", sql, res.RowsMatched)
		}
	}
	rep, err := srv.Relayout(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped || srv.Generation() != 2 {
		t.Fatalf("drifted SQL workload must swap via the registry replanner: %+v", rep)
	}
	if rep.CandidateFraction >= rep.LiveFraction {
		t.Fatalf("candidate %.3f vs live %.3f", rep.CandidateFraction, rep.LiveFraction)
	}
	st := srv.Stats()
	if st.Swaps != 1 || st.Generation != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNewServerUnknownStrategy(t *testing.T) {
	if _, err := NewServer(t.TempDir(), ServeOptions{Strategy: "nope"}); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

func TestInitServingValidation(t *testing.T) {
	if err := InitServing(t.TempDir(), nil, nil); err == nil {
		t.Fatal("nil plan must error")
	}
}
