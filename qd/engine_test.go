package qd_test

import (
	"strings"
	"sync"
	"testing"

	"repro/qd"
)

// planAndMaterialize plans the micro workload greedily and writes its
// block store under a test temp dir.
func planAndMaterialize(t *testing.T) (*qd.Dataset, *qd.Plan, *qd.BlockStore) {
	t.Helper()
	ds := microDataset(t)
	plan, err := qd.GreedyPlanner{}.Plan(ds, qd.PlanOptions{MinBlockSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	store, err := qd.WriteStore(t.TempDir(), ds.Table, plan.Layout)
	if err != nil {
		t.Fatal(err)
	}
	return ds, plan, store
}

func TestEngineQueryAndWorkload(t *testing.T) {
	ds, plan, store := planAndMaterialize(t)
	eng, err := qd.NewEngine(store, plan, qd.EngineDBMS, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	res, err := eng.Query(ds.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScanned == 0 || res.RowsMatched == 0 {
		t.Errorf("query scanned %d matched %d", res.RowsScanned, res.RowsMatched)
	}
	exact := qd.PerQueryMatches(ds.Table, ds.Queries, ds.ACs)
	wr, err := eng.Workload(ds.Queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wr.Results {
		if wr.Results[i].RowsMatched != exact[i] {
			t.Errorf("%s: engine matched %d, exact %d", ds.Queries[i].Name, wr.Results[i].RowsMatched, exact[i])
		}
	}
}

// TestEngineParallelCountsIdentical: scheduling options change wall
// clock, never counters.
func TestEngineParallelCountsIdentical(t *testing.T) {
	ds, plan, store := planAndMaterialize(t)
	seqEng, err := qd.NewEngine(store, plan, qd.EngineDBMS, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parEng, err := qd.NewEngine(store, plan, qd.EngineDBMS, qd.ExecOptions{Parallelism: 4, ShareReads: true})
	if err != nil {
		t.Fatal(err)
	}
	defer seqEng.Close()
	seq, err := seqEng.Workload(ds.Queries)
	if err != nil {
		t.Fatal(err)
	}
	par, err := parEng.Workload(ds.Queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Results {
		if seq.Results[i].ScanStats != par.Results[i].ScanStats {
			t.Errorf("%s: parallel stats %+v, sequential %+v",
				ds.Queries[i].Name, par.Results[i].ScanStats, seq.Results[i].ScanStats)
		}
	}
	if par.TotalSimTime != seq.TotalSimTime {
		t.Errorf("TotalSimTime %v vs %v", par.TotalSimTime, seq.TotalSimTime)
	}
	if par.PhysicalReads > seq.PhysicalReads {
		t.Errorf("shared reads did not reduce physical reads: %d vs %d", par.PhysicalReads, seq.PhysicalReads)
	}
}

// TestEngineCloseIdempotent is the regression test for Engine.Close:
// double-Close is a no-op, and queries after Close fail loudly instead of
// reopening block handles.
func TestEngineCloseIdempotent(t *testing.T) {
	ds, plan, store := planAndMaterialize(t)
	eng, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Populate the store's handle cache.
	if _, err := eng.Query(ds.Queries[0]); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close must be a no-op: %v", err)
	}
	if _, err := eng.Query(ds.Queries[0]); err == nil {
		t.Error("Query after Close must error")
	} else if !strings.Contains(err.Error(), "closed") {
		t.Errorf("unexpected query-after-close error: %v", err)
	}
	if _, err := eng.Workload(ds.Queries); err == nil {
		t.Error("Workload after Close must error")
	}
	// The store itself stays reopenable by a fresh engine — Close released
	// the handle cache, it did not delete the blocks.
	eng2, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if _, err := eng2.Query(ds.Queries[0]); err != nil {
		t.Fatalf("fresh engine on closed store: %v", err)
	}
}

// TestEngineCloseDrainsInFlightQueries: Close must wait for running
// queries instead of yanking cached block handles from under them, and
// concurrent WithMode/Query/Close must be race-free.
func TestEngineCloseDrainsInFlightQueries(t *testing.T) {
	ds, plan, store := planAndMaterialize(t)
	eng, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if g == 0 && i == 10 {
					eng.WithMode(qd.RouteQdTree)
				}
				if _, err := eng.Query(ds.Queries[i%len(ds.Queries)]); err != nil {
					// Only the engine-closed error is acceptable once Close ran.
					if !strings.Contains(err.Error(), "closed") {
						t.Errorf("in-flight query failed: %v", err)
					}
					return
				}
			}
		}(g)
	}
	if err := eng.Close(); err != nil {
		t.Errorf("close during queries: %v", err)
	}
	wg.Wait()
}

func TestEngineConstructionValidation(t *testing.T) {
	_, plan, store := planAndMaterialize(t)
	if _, err := qd.NewEngine(nil, plan, qd.EngineSpark, qd.ExecOptions{}); err == nil {
		t.Error("nil store must error")
	}
	if _, err := qd.NewEngine(store, nil, qd.EngineSpark, qd.ExecOptions{}); err == nil {
		t.Error("nil plan must error")
	}
	if _, err := qd.NewEngine(store, &qd.Plan{}, qd.EngineSpark, qd.ExecOptions{}); err == nil {
		t.Error("plan without layout must error")
	}
}
