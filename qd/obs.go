package qd

import "repro/internal/obs"

// Observability re-exports. Every server role (standalone, shard, front
// door) exposes a Prometheus-text GET /metrics backed by a
// MetricsRegistry, records per-query trace spans into a bounded
// TraceRing behind GET /debug/traces, and returns a TraceData inline
// when a query asks for "trace": true.
type (
	// MetricsRegistry holds counters, gauges, and histograms and renders
	// them in Prometheus text exposition format.
	MetricsRegistry = obs.Registry
	// QueryTrace collects per-stage spans for one query.
	QueryTrace = obs.Trace
	// TraceData is the immutable snapshot of a finished trace.
	TraceData = obs.TraceData
	// TraceSpan is one completed pipeline stage inside a trace.
	TraceSpan = obs.Span
	// TraceRing is the bounded recent/slow trace buffer behind
	// GET /debug/traces.
	TraceRing = obs.TraceRing
)

// TraceHeader is the HTTP header propagating a trace ID from the front
// door to shards (and from clients supplying their own IDs).
const TraceHeader = obs.TraceHeader

// NewMetricsRegistry returns an empty metrics registry, for co-hosting
// several server roles behind one /metrics endpoint.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewQueryTrace starts a trace with the given ID ("" = fresh random ID).
func NewQueryTrace(id string) *QueryTrace { return obs.NewTrace(id) }
