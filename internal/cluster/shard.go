package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/serve"
)

// SelectPartialResponse is the POST /cluster/select body a store node
// returns: the unfinalized partial-aggregation state of its slice of the
// data plus the generation that served it. Trace carries the shard's own
// stage spans when the request set "trace": true (the front door imports
// them into the gathered trace).
type SelectPartialResponse struct {
	Shard      string                 `json:"shard,omitempty"`
	Generation int                    `json:"generation"`
	Partial    *exec.AggPartialResult `json:"partial"`
	Trace      *obs.TraceData         `json:"trace,omitempty"`
}

// ShardHandler mounts the store-node ("shardd") HTTP surface: the full
// standalone API of serve.Handler — a shard ingests, compacts, detects
// drift, and re-layouts on its own — plus the two endpoints a front door
// needs:
//
//	GET  /cluster/summary  → serve.Summary (pruning envelope + schema)
//	POST /cluster/select   {"sql": "SELECT ..."} → SelectPartialResponse
func ShardHandler(s *serve.Server) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", serve.Handler(s))
	mux.HandleFunc("/cluster/summary", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpErr(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, s.Summary())
	})
	mux.HandleFunc("/cluster/select", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req serve.QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpErr(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
		if !serve.IsSelect(req.SQL) {
			httpErr(w, http.StatusBadRequest, "/cluster/select takes an aggregation statement; send filters to /query")
			return
		}
		tr := obs.NewTrace(r.Header.Get(obs.TraceHeader))
		psp := tr.Start("parse")
		aq, err := s.ParseSelectSQL(req.SQL)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		psp.End()
		pr, err := s.SelectPartialTraced(aq, tr)
		if err != nil {
			httpErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp := SelectPartialResponse{
			Shard:      s.Stats().Shard,
			Generation: pr.Generation,
			Partial:    pr.AggPartialResult,
		}
		if req.Trace {
			resp.Trace = tr.Snapshot()
		}
		writeJSON(w, resp)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
