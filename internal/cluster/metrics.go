package cluster

import (
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/serve"
)

// fdMetrics is the front door's instrument set behind GET /metrics.
// Names carry the qd_fd_ prefix so a front door and a shard can co-host
// one registry without collisions.
type fdMetrics struct {
	queries       *obs.CounterVec   // qd_fd_queries_total{type}
	queryErrors   *obs.Counter      // qd_fd_query_errors_total
	shardRequests *obs.CounterVec   // qd_fd_shard_requests_total{outcome}
	stageDur      *obs.HistogramVec // qd_fd_stage_duration_seconds{stage}
	queryDur      *obs.Histogram    // qd_fd_query_duration_seconds
	slowQueries   *obs.Counter      // qd_fd_slow_queries_total
	ingestRows    *obs.Counter      // qd_fd_ingest_rows_total
	partials      *obs.Counter      // qd_fd_partial_results_total
}

func newFDMetrics(reg *obs.Registry, fd *FrontDoor) *fdMetrics {
	reg.GaugeFunc("qd_fd_shards", "Shards in the peer list.", func() float64 {
		return float64(len(fd.shards))
	})
	return &fdMetrics{
		queries:       reg.CounterVec("qd_fd_queries_total", "Cluster queries gathered, by statement type.", "type"),
		queryErrors:   reg.Counter("qd_fd_query_errors_total", "Cluster queries that failed (all owning shards lost, merge faults)."),
		shardRequests: reg.CounterVec("qd_fd_shard_requests_total", "Per-shard scatter outcomes (ok, retry, failed, pruned).", "outcome"),
		stageDur:      reg.HistogramVec("qd_fd_stage_duration_seconds", "Per-stage front-door latency (parse, shard_prune, shard, merge).", nil, "stage"),
		queryDur:      reg.Histogram("qd_fd_query_duration_seconds", "End-to-end gathered query latency.", nil),
		slowQueries:   reg.Counter("qd_fd_slow_queries_total", "Gathered queries over the slow-query threshold."),
		ingestRows:    reg.Counter("qd_fd_ingest_rows_total", "Rows routed to shard delta stores."),
		partials:      reg.Counter("qd_fd_partial_results_total", "Gathered answers missing failed shards' rows."),
	}
}

// ShardPrune is the per-shard explain record on a shard_prune span:
// which shard was skipped and the summary-envelope bound that proved it
// cannot match ("empty" = shard holds no rows).
type ShardPrune struct {
	Shard  int    `json:"shard"`
	Label  string `json:"label,omitempty"`
	Reason string `json:"reason"`
	Column string `json:"column,omitempty"`
	Op     string `json:"op,omitempty"`
	Bound  int64  `json:"bound,omitempty"`
	Min    int64  `json:"min,omitempty"`
	Max    int64  `json:"max,omitempty"`
}

// shardPruneCause mirrors Summary.MayMatch: a shard is pruned either
// because it is empty or because its envelope excludes a predicate.
func (fd *FrontDoor) shardPruneCause(st *shardState, sum serve.Summary, filter expr.Query) ShardPrune {
	p := ShardPrune{Shard: st.id, Label: sum.Shard}
	if sum.Rows == 0 {
		p.Reason = "empty"
		return p
	}
	p.Reason = "sma"
	if c := cost.SMAPruneCause(sum.Min, sum.Max, filter); c != nil {
		if c.Col >= 0 && c.Col < len(fd.schema.Cols) {
			p.Column = fd.schema.Cols[c.Col].Name
		}
		p.Op = c.Op
		p.Bound = c.Literal
		p.Min = c.Lo
		p.Max = c.Hi
	}
	return p
}

// observe finishes a gathered query's trace and feeds the instruments
// from its spans, exactly like a shard-side server does.
func (fd *FrontDoor) observe(tr *obs.Trace, typ string, err error) {
	tr.Finish()
	if err != nil {
		fd.metrics.queryErrors.Inc()
		fd.traces.Record(tr.Snapshot())
		return
	}
	fd.metrics.queries.With(typ).Inc()
	fd.metrics.queryDur.Observe(float64(tr.DurNS()) / 1e9)
	if thr := fd.slowThresh; thr > 0 && tr.DurNS() >= thr.Nanoseconds() {
		tr.MarkSlow()
		fd.slowQueries.Add(1)
		fd.metrics.slowQueries.Inc()
	}
	for _, sd := range tr.SpanDurations() {
		fd.metrics.stageDur.With(sd.Name).Observe(float64(sd.DurNS) / 1e9)
	}
	fd.traces.Record(tr.Snapshot())
}

// Metrics returns the front door's metric registry (never nil).
func (fd *FrontDoor) Metrics() *obs.Registry { return fd.reg }

// Traces returns the front door's recent/slow trace ring (never nil).
func (fd *FrontDoor) Traces() *obs.TraceRing { return fd.traces }
