package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/exec"
	"repro/internal/serve"
	"repro/internal/sqlparse"
)

func postQuery(t *testing.T, url, sql string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(serve.QueryRequest{SQL: sql})
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRowScatterTopK: a row statement spanning both shards gathers the
// union of per-shard top-k answers, re-merged and re-limited to the
// bit-identical single-node result.
func TestRowScatterTopK(t *testing.T) {
	fd, _, _ := startRangeCluster(t, FrontDoorOptions{})

	sql := "SELECT t, cat FROM t WHERE t >= 400 AND t < 600 ORDER BY t DESC LIMIT 10"
	res, err := fd.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsContacted != 2 {
		t.Fatalf("band [400,600) spans both shards, contacted %d", res.ShardsContacted)
	}
	if res.Rows == nil || len(res.Rows.Rows) != 10 {
		t.Fatalf("rows result: %+v", res.Rows)
	}

	// Ground truth: the reference executor over the same fixture rows.
	tbl := fixtureTable(1000)
	p := sqlparse.NewParser(tbl.Schema)
	stmt, err := p.ParseRowSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	truth := exec.ReferenceSelect(tbl, *stmt.Row, nil)
	for i, row := range res.Rows.Rows {
		if len(row) != 2 || row[0] != truth[i][0] || row[1] != truth[i][1] {
			t.Fatalf("row %d = %v, reference %v", i, row, truth[i])
		}
	}

	// A selective row statement is pruned at the shard level like a
	// filter: only the owning shard is contacted.
	low, err := fd.Query("SELECT t FROM t WHERE t < 100 ORDER BY t LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if low.ShardsContacted != 1 || low.ShardsPruned != 1 {
		t.Fatalf("selective row scatter contacted %d pruned %d", low.ShardsContacted, low.ShardsPruned)
	}
	for i, row := range low.Rows.Rows {
		if row[0] != int64(i) {
			t.Fatalf("low rows = %v", low.Rows.Rows)
		}
	}
}

// TestFrontDoorRowHTTP pins the HTTP row surface of the front door:
// Columns/Data with dictionary spellings, and 501 for joins.
func TestFrontDoorRowHTTP(t *testing.T) {
	fd, _, _ := startRangeCluster(t, FrontDoorOptions{})
	ts := httptest.NewServer(FrontDoorHandler(fd))
	defer ts.Close()

	resp := postQuery(t, ts.URL, "SELECT t, cat FROM t WHERE t < 3 ORDER BY t")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Columns) != 2 || qr.Columns[0] != "t" || qr.Columns[1] != "cat" {
		t.Fatalf("columns = %v", qr.Columns)
	}
	if len(qr.Data) != 3 || qr.Data[0][0] != 0 || qr.Data[2][0] != 2 {
		t.Fatalf("data = %v", qr.Data)
	}
	// cat carries a dictionary, so spellings come back beside the codes.
	if len(qr.DataStrings) != 3 || qr.DataStrings[0][1] == "" {
		t.Fatalf("data_strings = %v", qr.DataStrings)
	}

	jresp := postQuery(t, ts.URL, "SELECT a.t, b.t FROM a JOIN b ON a.t = b.t WHERE a.t < 2 AND b.t < 2")
	defer jresp.Body.Close()
	if jresp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("join status = %d, want 501", jresp.StatusCode)
	}
}
