package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// QueryResponse is the front door's POST /query reply: the merged
// cluster-wide answer in the same shape a standalone server returns,
// plus the scatter's shape. Clients must check Partial — a true value
// means failed shards' rows are missing from the answer.
type QueryResponse struct {
	serve.QueryResponse
	ShardsTotal     int          `json:"shards_total"`
	ShardsPruned    int          `json:"shards_pruned"`
	ShardsContacted int          `json:"shards_contacted"`
	ShardsFailed    int          `json:"shards_failed"`
	Retries         int          `json:"retries,omitempty"`
	Partial         bool         `json:"partial"`
	Failed          []ShardError `json:"failed,omitempty"`
}

// Note: the embedded serve.QueryResponse carries the Trace field; for a
// front-door query it holds the gathered trace — parse, shard_prune
// (naming each pruned shard and the envelope bound), one shard span per
// contacted peer with the peer's own block_prune/scan spans imported
// under it, and merge.

// IngestResponse is the front door's POST /ingest reply.
type IngestResponse struct {
	Inserted int          `json:"inserted"`
	PerShard map[int]int  `json:"per_shard"`
	Failed   []ShardError `json:"failed,omitempty"`
}

// FrontDoorHandler mounts the scatter/gather tier's HTTP surface:
//
//	POST /query         {"sql": "..."}  → merged cluster answer (QueryResponse)
//	POST /ingest        {"rows": ...}   → routed ingest (IngestResponse)
//	GET  /stats                         → front-door Stats
//	GET  /metrics                       → Prometheus text exposition
//	GET  /debug/traces                  → recent + slow gathered traces
//	POST /refresh                       → re-fetch shard summaries
//	GET  /healthz                       → 200 ok
//
// POST /query honors {"trace": true} — the reply then inlines the
// gathered trace, with each contacted shard's own spans imported — and
// the X-Qd-Trace-Id header for caller-supplied trace IDs.
//
// Error mapping: request faults are 400, two-table joins are 501 (a
// sharded scatter would miss cross-shard pairs — run joins on a single
// node), a scatter that loses every owning shard is 503, an ingest that
// loses any shard batch is 502; a scatter that loses some (not all)
// owning shards still answers 200 with "partial": true.
//
// Single-table row statements (projection, ORDER BY/LIMIT) scatter with
// top-k pushdown: each shard answers its local top-k and the front door
// re-merges with the same deterministic comparator, so the gathered
// Columns/Data are bit-identical to a single-node run when no shard
// failed.
func FrontDoorHandler(fd *FrontDoor) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req serve.QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpErr(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
		if req.SQL == "" {
			httpErr(w, http.StatusBadRequest, `body needs {"sql": "..."}`)
			return
		}
		start := time.Now()
		tr := obs.NewTrace(r.Header.Get(obs.TraceHeader))
		res, err := fd.QueryTraced(req.SQL, tr, req.Trace)
		if err != nil {
			var ce ClientError
			switch {
			case errors.Is(err, ErrJoinUnsupported):
				httpErr(w, http.StatusNotImplemented, "%v", err)
			case errors.As(err, &ce):
				httpErr(w, http.StatusBadRequest, "%v", err)
			case errors.Is(err, ErrAllShardsFailed):
				httpErr(w, http.StatusServiceUnavailable, "%v", err)
			default:
				httpErr(w, http.StatusInternalServerError, "%v", err)
			}
			return
		}
		resp := toQueryResponse(fd, res, time.Since(start))
		if req.Trace {
			resp.Trace = tr.Snapshot()
		}
		writeJSON(w, resp)
	})
	mux.Handle("/metrics", fd.Metrics().Handler())
	mux.Handle("/debug/traces", fd.Traces().Handler())
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req serve.IngestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpErr(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
		if len(req.Rows) == 0 {
			httpErr(w, http.StatusBadRequest, `body needs {"rows": [[...], ...]}`)
			return
		}
		res, err := fd.Ingest(req)
		if err != nil {
			var ce ClientError
			if errors.As(err, &ce) {
				httpErr(w, http.StatusBadRequest, "%v", err)
				return
			}
			httpErr(w, http.StatusBadGateway, "%v", err)
			return
		}
		writeJSON(w, IngestResponse{Inserted: res.Inserted, PerShard: res.PerShard, Failed: res.Failed})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpErr(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, fd.Stats())
	})
	mux.HandleFunc("/refresh", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if err := fd.Refresh(); err != nil {
			httpErr(w, http.StatusBadGateway, "%v", err)
			return
		}
		writeJSON(w, fd.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}

// toQueryResponse renders a gathered Result in the standalone response
// shape (typed rows, dictionary key spellings) plus the scatter shape.
func toQueryResponse(fd *FrontDoor, res *Result, wall time.Duration) QueryResponse {
	out := QueryResponse{
		ShardsTotal:     res.ShardsTotal,
		ShardsPruned:    res.ShardsPruned,
		ShardsContacted: res.ShardsContacted,
		ShardsFailed:    res.ShardsFailed,
		Retries:         res.Retries,
		Partial:         res.Partial,
		Failed:          res.Failed,
	}
	out.Query = res.SQL
	out.WallTimeNS = int64(wall)
	schema := fd.Schema()
	if res.Filter != nil {
		f := res.Filter
		out.BlocksScanned = f.BlocksScanned
		out.BlocksTotal = f.BlocksTotal
		out.RowsScanned = f.RowsScanned
		out.RowsTotal = f.RowsTotal
		out.RowsMatched = f.RowsMatched
		out.BytesRead = f.BytesRead
		out.SkipRate = f.SkipRate()
		out.SimTimeNS = int64(f.SimTime)
		return out
	}
	if res.Rows != nil {
		rr := res.Rows
		out.BlocksScanned = rr.BlocksScanned
		out.BlocksTotal = rr.BlocksTotal
		out.RowsScanned = rr.RowsScanned
		out.RowsTotal = rr.RowsTotal
		out.RowsMatched = rr.RowsMatched
		out.BytesRead = rr.BytesRead
		out.SkipRate = rr.SkipRate()
		out.SimTimeNS = int64(rr.SimTime)
		out.Data = rr.Rows
		hasDict := false
		for _, cr := range rr.Cols {
			col := schema.Cols[cr.Col]
			out.Columns = append(out.Columns, col.Name)
			if len(col.Dict) > 0 {
				hasDict = true
			}
		}
		if hasDict {
			out.DataStrings = make([][]string, len(rr.Rows))
			for ri, row := range rr.Rows {
				strs := make([]string, len(row))
				for j, v := range row {
					if d := schema.Cols[rr.Cols[j].Col].Dict; v >= 0 && v < int64(len(d)) {
						strs[j] = d[v]
					}
				}
				out.DataStrings[ri] = strs
			}
		}
		return out
	}
	a := res.Agg
	out.BlocksScanned = a.BlocksScanned
	out.BlocksTotal = a.BlocksTotal
	out.RowsScanned = a.RowsScanned
	out.RowsTotal = a.RowsTotal
	out.RowsMatched = a.RowsMatched
	out.BytesRead = a.BytesRead
	out.SkipRate = a.SkipRate()
	out.SimTimeNS = int64(a.SimTime)
	for _, g := range res.GroupBy {
		out.GroupBy = append(out.GroupBy, schema.Cols[g].Name)
	}
	hasDict := false
	for _, g := range res.GroupBy {
		if len(schema.Cols[g].Dict) > 0 {
			hasDict = true
		}
	}
	out.Rows = make([]serve.QueryRow, len(a.Rows))
	for i, row := range a.Rows {
		qr := serve.QueryRow{Key: row.Key, Aggs: row.Vals}
		if hasDict {
			for ki, k := range row.Key {
				dict := schema.Cols[res.GroupBy[ki]].Dict
				if k >= 0 && k < int64(len(dict)) {
					qr.KeyStrings = append(qr.KeyStrings, dict[k])
				} else {
					qr.KeyStrings = append(qr.KeyStrings, "")
				}
			}
		}
		out.Rows[i] = qr
	}
	return out
}
