package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// ErrAllShardsFailed reports a scatter in which every owning
// (non-pruned) shard failed after retries — the one condition a front
// door maps to 503. Partial failures return a Result with Partial set.
var ErrAllShardsFailed = errors.New("cluster: all owning shards failed")

// ErrJoinUnsupported reports a two-table join sent to the front door.
// Joins need one node to see both sides' rows; a sharded scatter would
// miss every cross-shard pair. The HTTP layer maps this to 501 — run the
// join against a standalone server (or one shard holding both tables).
var ErrJoinUnsupported = errors.New("cluster: joins are not supported across shards; run them on a single node")

// ClientError marks a fault in the request itself (unparsable SQL, bad
// ingest rows) as opposed to a shard-side failure; the HTTP layer maps
// it to 400.
type ClientError struct{ Err error }

func (e ClientError) Error() string { return e.Err.Error() }
func (e ClientError) Unwrap() error { return e.Err }

// FrontDoorOptions tunes the scatter client.
type FrontDoorOptions struct {
	// ACs is the advanced-cut table queries may reference; it must match
	// the table the shards were initialized with. Queries that would
	// introduce new cuts are rejected.
	ACs []expr.AdvCut
	// Timeout bounds one HTTP attempt against one shard (default 10s).
	Timeout time.Duration
	// Retries is how many extra attempts a failed shard call gets
	// (default 1; transport errors and 5xx responses are retried, 4xx —
	// the request's own fault — is not).
	Retries int
	// Client overrides the HTTP client (its Timeout is ignored; the
	// per-attempt Timeout above governs).
	Client *http.Client
	// SlowQuery is the latency threshold for slow-query accounting
	// (default 250ms; negative disables it).
	SlowQuery time.Duration
	// Metrics is the registry behind GET /metrics (nil = own registry).
	Metrics *obs.Registry
	// TraceRingSize bounds the recent/slow trace rings behind
	// GET /debug/traces (default obs.DefaultTraceRingSize).
	TraceRingSize int
}

// shardState is the front door's view of one store node: its address and
// the last summary fetched from it, under its own lock so a slow refresh
// of one shard never blocks queries touching the others.
type shardState struct {
	id   int
	addr string

	mu  sync.RWMutex
	sum serve.Summary
}

func (st *shardState) summary() serve.Summary {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.sum
}

// FrontDoor is the stateless scatter/gather tier: it owns no data, only
// the peer list, the schema (learned from the shards), and cached shard
// summaries used for shard-level pruning and ingest routing. Safe for
// concurrent use.
type FrontDoor struct {
	shards  []*shardState
	schema  *table.Schema
	acs     []expr.AdvCut
	client  *http.Client
	timeout time.Duration
	retries int

	reg        *obs.Registry
	metrics    *fdMetrics
	traces     *obs.TraceRing
	slowThresh time.Duration

	queries     atomic.Int64
	slowQueries atomic.Int64
	contacted   atomic.Int64
	pruned      atomic.Int64
	failures    atomic.Int64
	partials    atomic.Int64
	ingested    atomic.Int64
}

// NewFrontDoor connects to the given shard addresses (host:port or full
// http:// URLs), fetches every shard's summary, and verifies the shards
// agree on the schema. All peers must be reachable at startup; losing one
// later degrades gracefully per query instead.
func NewFrontDoor(addrs []string, opt FrontDoorOptions) (*FrontDoor, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: front door needs at least one shard address")
	}
	fd := &FrontDoor{
		acs:        opt.ACs,
		client:     opt.Client,
		timeout:    opt.Timeout,
		retries:    opt.Retries,
		reg:        opt.Metrics,
		traces:     obs.NewTraceRing(opt.TraceRingSize),
		slowThresh: opt.SlowQuery,
	}
	if fd.client == nil {
		fd.client = &http.Client{}
	}
	if fd.timeout <= 0 {
		fd.timeout = 10 * time.Second
	}
	if fd.slowThresh == 0 {
		fd.slowThresh = 250 * time.Millisecond
	} else if fd.slowThresh < 0 {
		fd.slowThresh = 0
	}
	if fd.reg == nil {
		fd.reg = obs.NewRegistry()
	}
	fd.metrics = newFDMetrics(fd.reg, fd)
	if fd.retries < 0 {
		fd.retries = 0
	} else if opt.Retries == 0 {
		fd.retries = 1
	}
	for i, addr := range addrs {
		fd.shards = append(fd.shards, &shardState{id: i, addr: normalizeAddr(addr)})
	}
	for _, st := range fd.shards {
		sum, err := fd.fetchSummary(st)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d (%s): %w", st.id, st.addr, err)
		}
		st.sum = sum
	}
	first := fd.shards[0].sum.Columns
	for _, st := range fd.shards[1:] {
		if !sameColumns(first, st.sum.Columns) {
			return nil, fmt.Errorf("cluster: shard %d (%s) schema differs from shard 0", st.id, st.addr)
		}
	}
	schema, err := table.NewSchema(first)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard schema: %w", err)
	}
	fd.schema = schema
	return fd, nil
}

func normalizeAddr(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimRight(addr, "/")
	}
	return "http://" + strings.TrimRight(addr, "/")
}

func sameColumns(a, b []table.Column) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Kind != b[i].Kind || a[i].Dom != b[i].Dom {
			return false
		}
	}
	return true
}

// Schema is the cluster schema learned from the shards.
func (fd *FrontDoor) Schema() *table.Schema { return fd.schema }

// NumShards is the size of the peer list.
func (fd *FrontDoor) NumShards() int { return len(fd.shards) }

// Summaries snapshots the cached shard summaries in shard-id order.
func (fd *FrontDoor) Summaries() []serve.Summary {
	out := make([]serve.Summary, len(fd.shards))
	for i, st := range fd.shards {
		out[i] = st.summary()
	}
	return out
}

// Refresh re-fetches every shard's summary. A shard that cannot be
// reached keeps its previous (conservative) summary; the error reports
// which shards failed.
func (fd *FrontDoor) Refresh() error {
	var wg sync.WaitGroup
	errs := make([]error, len(fd.shards))
	for i, st := range fd.shards {
		wg.Add(1)
		go func(i int, st *shardState) {
			defer wg.Done()
			sum, err := fd.fetchSummary(st)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d (%s): %w", st.id, st.addr, err)
				return
			}
			st.mu.Lock()
			st.sum = sum
			st.mu.Unlock()
		}(i, st)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ShardError reports one failed shard call.
type ShardError struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	Err   string `json:"error"`
}

// Result is one gathered cluster query: the merged filter or aggregation
// answer plus the scatter's shape — how many shards were pruned by the
// summary envelopes, contacted, and lost. Partial marks an answer that is
// missing failed shards' rows; bit-identity to a single-node run holds
// exactly when Partial is false.
type Result struct {
	SQL     string
	Filter  *exec.Result     // set for bare filter queries
	Agg     *exec.AggResult  // set for aggregation statements
	Rows    *exec.RowsResult // set for row-returning statements
	GroupBy []int            // schema ordinals, aggregation only

	ShardsTotal     int
	ShardsPruned    int
	ShardsContacted int
	ShardsFailed    int
	Retries         int
	Partial         bool
	Failed          []ShardError
}

// parsedStmt is one routed front-door statement: exactly one of agg,
// row, or filter is set.
type parsedStmt struct {
	agg    expr.AggQuery
	isAgg  bool
	row    expr.RowStmt
	isRow  bool
	filter expr.Query
}

// parse runs the same statement routing as a standalone server: SELECT →
// aggregation, then the row grammar, with the legacy plain-select
// fallback to the filter path; anything else → bare filter. Joins are
// rejected with ErrJoinUnsupported — a sharded scatter would miss every
// cross-shard pair. The front door's AC table seeds the parser, and a
// statement that would intern a new cut is rejected — the shards were
// not planned with it.
func (fd *FrontDoor) parse(sql string) (parsedStmt, error) {
	p := sqlparse.NewParser(fd.schema)
	p.ACs = append([]expr.AdvCut(nil), fd.acs...)
	guard := func() error {
		if len(p.ACs) > len(fd.acs) {
			return fmt.Errorf("cluster: statement introduces advanced cut %v not in the cluster's table", p.ACs[len(p.ACs)-1])
		}
		return nil
	}
	if serve.IsSelect(sql) {
		aq, aggErr := p.ParseSelect(sql)
		if aggErr == nil {
			return parsedStmt{agg: aq, isAgg: true}, guard()
		}
		p.ACs = append([]expr.AdvCut(nil), fd.acs...)
		stmt, rowErr := p.ParseRowSelect(sql)
		if rowErr == nil {
			if stmt.Join != nil {
				return parsedStmt{}, ErrJoinUnsupported
			}
			return parsedStmt{row: stmt, isRow: true}, guard()
		}
		if !serve.LegacySelectShape(sql) {
			return parsedStmt{}, aggErr
		}
		p.ACs = append([]expr.AdvCut(nil), fd.acs...)
		q, ferr := p.Parse(sql)
		if ferr != nil {
			// A parenthesis-free select list is the row shape; its error
			// names the actual problem better than the aggregate one.
			return parsedStmt{}, rowErr
		}
		return parsedStmt{filter: q}, guard()
	}
	q, err := p.Parse(sql)
	if err != nil {
		return parsedStmt{}, err
	}
	return parsedStmt{filter: q}, guard()
}

// Query parses the statement once, prunes shards whose summary envelope
// cannot match, scatters the canonical SQL to the owners, and gathers
// the partials into one cluster-wide answer.
func (fd *FrontDoor) Query(sql string) (*Result, error) {
	return fd.QueryTraced(sql, nil, false)
}

// QueryTraced is Query recording the scatter's stage spans into tr (nil
// starts a fresh internal trace — the front door traces every gathered
// query for its metrics and trace ring). With deep set, the scatter
// also asks each shard for its own spans and imports them under the
// shard-call offsets, yielding the full parse → shard_prune →
// per-shard block_prune/scan → merge picture a "trace": true client
// sees.
func (fd *FrontDoor) QueryTraced(sql string, tr *obs.Trace, deep bool) (*Result, error) {
	if tr == nil {
		tr = obs.NewTrace("")
	}
	psp := tr.Start("parse")
	ps, err := fd.parse(sql)
	if err != nil {
		if errors.Is(err, ErrJoinUnsupported) {
			return nil, err
		}
		return nil, ClientError{err}
	}
	psp.End()
	fd.queries.Add(1)
	var res *Result
	typ := "filter"
	switch {
	case ps.isAgg:
		typ = "select"
		res, err = fd.scatterAgg(ps.agg, tr, deep)
	case ps.isRow:
		typ = "rows"
		res, err = fd.scatterRows(ps.row, tr, deep)
	default:
		res, err = fd.scatterFilter(ps.filter, tr, deep)
	}
	fd.observe(tr, typ, err)
	return res, err
}

// owners splits the peer list by the pruning filter: shards whose cached
// summary may match, and the pruned remainder's cached base totals
// (rows/blocks the cluster-wide skip rate counts as skipped). The
// shard_prune span names every pruned shard and the envelope bound that
// pruned it.
func (fd *FrontDoor) owners(filter expr.Query, tr *obs.Trace) (owning []*shardState, prunedRows int64, prunedBlocks int) {
	sp := tr.Start("shard_prune")
	var pruned []ShardPrune
	for _, st := range fd.shards {
		sum := st.summary()
		if sum.MayMatch(filter) {
			owning = append(owning, st)
		} else {
			prunedRows += int64(sum.Rows)
			prunedBlocks += sum.Blocks
			fd.metrics.shardRequests.With("pruned").Inc()
			if tr != nil {
				pruned = append(pruned, fd.shardPruneCause(st, sum, filter))
			}
		}
	}
	sp.SetAttr("shards_total", len(fd.shards)).
		SetAttr("shards_owning", len(owning)).
		SetAttr("shards_pruned", len(fd.shards)-len(owning))
	if len(pruned) > 0 {
		sp.SetAttr("pruned", pruned)
	}
	sp.End()
	return owning, prunedRows, prunedBlocks
}

type shardCall struct {
	st      *shardState
	retries int
	err     error
	filter  serve.QueryResponse
	agg     SelectPartialResponse
}

// shardLabel names a shard in traces: its self-reported summary label,
// falling back to the peer index.
func shardLabel(st *shardState) string {
	if lbl := st.summary().Shard; lbl != "" {
		return lbl
	}
	return fmt.Sprintf("shard_%d", st.id)
}

// scatter fans one request out to the owning shards, bounded by the
// per-shard timeout and retry budget, and waits for all of them. Each
// call gets a "shard" span; with deep set the shards are asked for
// their own spans, which are imported under the call's start offset so
// the gathered trace shows the remote block_prune/scan work inline.
func (fd *FrontDoor) scatter(owning []*shardState, path string, body serve.QueryRequest, decodeAgg bool, tr *obs.Trace, deep bool) []*shardCall {
	body.Trace = deep
	calls := make([]*shardCall, len(owning))
	var wg sync.WaitGroup
	for i, st := range owning {
		calls[i] = &shardCall{st: st}
		wg.Add(1)
		go func(c *shardCall) {
			defer wg.Done()
			label := shardLabel(c.st)
			ssp := tr.Start("shard")
			ssp.SetAttr("shard", label).SetAttr("addr", c.st.addr)
			for attempt := 0; ; attempt++ {
				var dst any
				if decodeAgg {
					dst = &c.agg
				} else {
					dst = &c.filter
				}
				err := fd.postTraced(c.st.addr+path, body, dst, tr.ID())
				if err == nil {
					c.err = nil
					break
				}
				c.err = err
				var ce ClientError
				if errors.As(err, &ce) || attempt >= fd.retries {
					break
				}
				c.retries++
				time.Sleep(50 * time.Millisecond)
			}
			outcome := "ok"
			if c.err != nil {
				outcome = "failed"
			}
			ssp.SetAttr("outcome", outcome)
			if c.retries > 0 {
				ssp.SetAttr("retries", c.retries)
			}
			if deep && c.err == nil {
				var remote *obs.TraceData
				if decodeAgg {
					remote = c.agg.Trace
				} else {
					remote = c.filter.Trace
				}
				if remote != nil {
					tr.AddRemote(label, ssp.StartNS(), remote.Spans)
				}
			}
			ssp.End()
		}(calls[i])
	}
	wg.Wait()
	return calls
}

// gatherShape fills the scatter-shape half of a Result and returns the
// successful calls.
func (fd *FrontDoor) gatherShape(res *Result, calls []*shardCall) []*shardCall {
	var ok []*shardCall
	for _, c := range calls {
		res.Retries += c.retries
		fd.contacted.Add(1)
		if c.retries > 0 {
			fd.metrics.shardRequests.With("retry").Add(uint64(c.retries))
		}
		if c.err != nil {
			res.ShardsFailed++
			res.Failed = append(res.Failed, ShardError{Shard: c.st.id, Addr: c.st.addr, Err: c.err.Error()})
			fd.failures.Add(1)
			fd.metrics.shardRequests.With("failed").Inc()
			continue
		}
		fd.metrics.shardRequests.With("ok").Inc()
		ok = append(ok, c)
	}
	sort.Slice(res.Failed, func(i, j int) bool { return res.Failed[i].Shard < res.Failed[j].Shard })
	res.Partial = res.ShardsFailed > 0
	if res.Partial {
		fd.partials.Add(1)
		fd.metrics.partials.Inc()
	}
	return ok
}

func (fd *FrontDoor) scatterFilter(q expr.Query, tr *obs.Trace, deep bool) (*Result, error) {
	canonical := q.StringWith(fd.schema.Names(), fd.acs)
	owning, prunedRows, prunedBlocks := fd.owners(q, tr)
	res := &Result{
		SQL:          canonical,
		ShardsTotal:  len(fd.shards),
		ShardsPruned: len(fd.shards) - len(owning),
	}
	fd.pruned.Add(int64(res.ShardsPruned))
	calls := fd.scatter(owning, "/query", serve.QueryRequest{SQL: canonical}, false, tr, deep)
	msp := tr.Start("merge")
	defer msp.End()
	ok := fd.gatherShape(res, calls)
	res.ShardsContacted = len(owning)
	msp.SetAttr("shards_merged", len(ok))
	if len(owning) > 0 && len(ok) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrAllShardsFailed, canonical)
	}
	parts := make([]exec.Result, len(ok))
	for i, c := range ok {
		parts[i] = exec.Result{
			Query: canonical,
			ScanStats: exec.ScanStats{
				BlocksScanned: c.filter.BlocksScanned,
				RowsScanned:   c.filter.RowsScanned,
				RowsMatched:   c.filter.RowsMatched,
				BytesRead:     c.filter.BytesRead,
			},
			BlocksTotal: c.filter.BlocksTotal,
			RowsTotal:   c.filter.RowsTotal,
			SimTime:     time.Duration(c.filter.SimTimeNS),
			WallTime:    time.Duration(c.filter.WallTimeNS),
		}
	}
	merged := exec.MergeResults(canonical, parts...)
	// Pruned shards' rows are part of the universe the cluster skipped —
	// count them in the totals so the cluster-wide skip rate reflects
	// shard-level pruning.
	merged.RowsTotal += prunedRows
	merged.BlocksTotal += prunedBlocks
	res.Filter = &merged
	return res, nil
}

// scatterRows fans a single-table row statement out to the owning
// shards and gathers the tuples. The canonical SQL carries the ORDER
// BY/LIMIT, so each shard answers with its own local top-k (at most k
// rows cross the wire per shard); the gather re-sorts the union with
// the same deterministic comparator and re-applies the limit. Shards
// partition the rows disjointly, so the re-merged union is bit-identical
// to a single-node run whenever no shard failed.
func (fd *FrontDoor) scatterRows(stmt expr.RowStmt, tr *obs.Trace, deep bool) (*Result, error) {
	rq := stmt.Row
	canonical := stmt.StringWith(fd.schema.Names(), fd.acs)
	owning, prunedRows, prunedBlocks := fd.owners(rq.Filter, tr)
	res := &Result{
		SQL:          canonical,
		ShardsTotal:  len(fd.shards),
		ShardsPruned: len(fd.shards) - len(owning),
	}
	fd.pruned.Add(int64(res.ShardsPruned))
	calls := fd.scatter(owning, "/query", serve.QueryRequest{SQL: canonical}, false, tr, deep)
	msp := tr.Start("merge")
	defer msp.End()
	ok := fd.gatherShape(res, calls)
	res.ShardsContacted = len(owning)
	if len(owning) > 0 && len(ok) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrAllShardsFailed, canonical)
	}
	merged := &exec.RowsResult{Query: canonical, Rows: [][]int64{}}
	for _, c := range rq.Cols {
		merged.Cols = append(merged.Cols, expr.ColRef{Col: c})
	}
	for _, c := range ok {
		merged.BlocksScanned += c.filter.BlocksScanned
		merged.BlocksTotal += c.filter.BlocksTotal
		merged.RowsScanned += c.filter.RowsScanned
		merged.RowsTotal += c.filter.RowsTotal
		merged.RowsMatched += c.filter.RowsMatched
		merged.BytesRead += c.filter.BytesRead
		if st := time.Duration(c.filter.SimTimeNS); st > merged.SimTime {
			merged.SimTime = st // shards scan in parallel, like workers
		}
		merged.Rows = append(merged.Rows, c.filter.Data...)
	}
	exec.SortRows(merged.Rows, rq.OrderBy)
	if rq.Limit > 0 && len(merged.Rows) > rq.Limit {
		merged.Rows = merged.Rows[:rq.Limit]
	}
	merged.RowsTotal += prunedRows
	merged.BlocksTotal += prunedBlocks
	msp.SetAttr("shards_merged", len(ok)).SetAttr("rows_returned", len(merged.Rows))
	res.Rows = merged
	return res, nil
}

func (fd *FrontDoor) scatterAgg(aq expr.AggQuery, tr *obs.Trace, deep bool) (*Result, error) {
	canonical := aq.StringWith(fd.schema.Names(), fd.acs)
	owning, prunedRows, prunedBlocks := fd.owners(aq.Filter, tr)
	res := &Result{
		SQL:          canonical,
		GroupBy:      append([]int(nil), aq.GroupBy...),
		ShardsTotal:  len(fd.shards),
		ShardsPruned: len(fd.shards) - len(owning),
	}
	fd.pruned.Add(int64(res.ShardsPruned))
	calls := fd.scatter(owning, "/cluster/select", serve.QueryRequest{SQL: canonical}, true, tr, deep)
	msp := tr.Start("merge")
	defer msp.End()
	ok := fd.gatherShape(res, calls)
	res.ShardsContacted = len(owning)
	msp.SetAttr("shards_merged", len(ok))
	if len(owning) > 0 && len(ok) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrAllShardsFailed, canonical)
	}
	// Seed with the empty partial so an all-pruned scatter still yields
	// the result a single-node run over zero matching rows produces.
	parts := []*exec.AggPartialResult{exec.EmptyAggPartial(canonical, len(aq.Aggs), aq.GroupBy)}
	for _, c := range ok {
		if c.agg.Partial == nil {
			return nil, fmt.Errorf("cluster: shard %d returned no partial", c.st.id)
		}
		parts = append(parts, c.agg.Partial)
	}
	merged, err := exec.MergeAggPartials(aq.Aggs, parts...)
	if err != nil {
		return nil, err
	}
	merged.Query = canonical
	merged.RowsTotal += prunedRows
	merged.BlocksTotal += prunedBlocks
	res.Agg = merged.Finalize(aq.Aggs)
	return res, nil
}

// IngestResult reports one routed ingest batch.
type IngestResult struct {
	Inserted int          `json:"inserted"`
	PerShard map[int]int  `json:"per_shard"`
	Failed   []ShardError `json:"failed,omitempty"`
}

// Ingest validates the batch once against the cluster schema, routes each
// row to the shard whose summary envelope contains it (first match in
// shard-id order; rows outside every envelope go to the least-loaded
// shard), and forwards the per-shard slices. Routed rows land in the
// owning shard's delta store, making that shard unprunable until its own
// compactor folds them in — the cached summary is widened locally so
// pruning stays sound without waiting for a refresh.
func (fd *FrontDoor) Ingest(req serve.IngestRequest) (*IngestResult, error) {
	rows, err := serve.DecodeIngestRows(fd.schema, req)
	if err != nil {
		return nil, ClientError{err}
	}
	sums := fd.Summaries()
	batches := make(map[int][][]int64)
	for _, row := range rows {
		id := fd.routeRow(sums, row)
		batches[id] = append(batches[id], row)
	}
	out := &IngestResult{PerShard: make(map[int]int)}
	ids := make([]int, 0, len(batches))
	for id := range batches {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var errs []error
	for _, id := range ids {
		st := fd.shards[id]
		batch := batches[id]
		var resp serve.IngestResponse
		err := fd.postRetry(st.addr+"/ingest", ingestBody(batch), &resp)
		if err != nil {
			out.Failed = append(out.Failed, ShardError{Shard: id, Addr: st.addr, Err: err.Error()})
			errs = append(errs, fmt.Errorf("shard %d (%s): %w", id, st.addr, err))
			continue
		}
		out.Inserted += resp.Inserted
		out.PerShard[id] = resp.Inserted
		fd.ingested.Add(int64(resp.Inserted))
		fd.metrics.ingestRows.Add(uint64(resp.Inserted))
		// Widen the cached summary: the shard now has uncompacted delta
		// rows, so MayMatch must return true until the next refresh.
		st.mu.Lock()
		st.sum.DeltaRows += resp.Inserted
		st.mu.Unlock()
	}
	if len(errs) > 0 {
		return out, fmt.Errorf("cluster: ingest forwarded %d rows but lost %d shard batches: %w",
			out.Inserted, len(errs), errors.Join(errs...))
	}
	return out, nil
}

// routeRow picks the owning shard for one row: the first shard whose base
// envelope contains the row on every column, else the least-loaded shard
// (fewest base+delta rows, lowest id on ties). Correctness never depends
// on the choice — any shard's own layout adapts to what it stores — so
// routing only aims to keep envelopes tight and loads level.
func (fd *FrontDoor) routeRow(sums []serve.Summary, row []int64) int {
	for i, sum := range sums {
		if sum.Rows == 0 || len(sum.Min) != len(row) {
			continue
		}
		inside := true
		for c, v := range row {
			if v < sum.Min[c] || v > sum.Max[c] {
				inside = false
				break
			}
		}
		if inside {
			return i
		}
	}
	best, bestLoad := 0, int(^uint(0)>>1)
	for i, sum := range sums {
		if load := sum.Rows + sum.DeltaRows; load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

func ingestBody(rows [][]int64) serve.IngestRequest {
	req := serve.IngestRequest{Rows: make([][]json.RawMessage, len(rows))}
	for i, row := range rows {
		vals := make([]json.RawMessage, len(row))
		for c, v := range row {
			vals[c] = json.RawMessage(fmt.Sprintf("%d", v))
		}
		req.Rows[i] = vals
	}
	return req
}

// Stats is the front door's observability snapshot.
type Stats struct {
	Shards          int             `json:"shards"`
	Queries         int64           `json:"queries"`
	SlowQueries     int64           `json:"slow_queries"`
	ShardsContacted int64           `json:"shards_contacted"`
	ShardsPruned    int64           `json:"shards_pruned"`
	ShardFailures   int64           `json:"shard_failures"`
	PartialResults  int64           `json:"partial_results"`
	RowsIngested    int64           `json:"rows_ingested"`
	Summaries       []serve.Summary `json:"summaries"`
}

// Stats snapshots the front door's counters and cached shard summaries.
func (fd *FrontDoor) Stats() Stats {
	return Stats{
		Shards:          len(fd.shards),
		Queries:         fd.queries.Load(),
		SlowQueries:     fd.slowQueries.Load(),
		ShardsContacted: fd.contacted.Load(),
		ShardsPruned:    fd.pruned.Load(),
		ShardFailures:   fd.failures.Load(),
		PartialResults:  fd.partials.Load(),
		RowsIngested:    fd.ingested.Load(),
		Summaries:       fd.Summaries(),
	}
}

// fetchSummary pulls one shard's current summary (with the retry budget).
func (fd *FrontDoor) fetchSummary(st *shardState) (serve.Summary, error) {
	var sum serve.Summary
	err := fd.getRetry(st.addr+"/cluster/summary", &sum)
	return sum, err
}

// post issues one HTTP attempt. A 4xx response comes back as ClientError
// (not retried: the request itself is at fault); 5xx and transport
// errors are retriable shard failures.
func (fd *FrontDoor) post(url string, body any, dst any) error {
	return fd.postTraced(url, body, dst, "")
}

// postTraced is post propagating the gathered query's TraceID to the
// shard via the X-Qd-Trace-Id header, so shard-side trace rings and
// logs correlate with the front door's.
func (fd *FrontDoor) postTraced(url string, body any, dst any, traceID string) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	return fd.do(req, dst)
}

func (fd *FrontDoor) postRetry(url string, body any, dst any) error {
	var err error
	for attempt := 0; attempt <= fd.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(50 * time.Millisecond)
		}
		err = fd.post(url, body, dst)
		if err == nil {
			return nil
		}
		var ce ClientError
		if errors.As(err, &ce) {
			return err
		}
	}
	return err
}

func (fd *FrontDoor) getRetry(url string, dst any) error {
	var err error
	for attempt := 0; attempt <= fd.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(50 * time.Millisecond)
		}
		req, rerr := http.NewRequest(http.MethodGet, url, nil)
		if rerr != nil {
			return rerr
		}
		err = fd.do(req, dst)
		if err == nil {
			return nil
		}
		var ce ClientError
		if errors.As(err, &ce) {
			return err
		}
	}
	return err
}

func (fd *FrontDoor) do(req *http.Request, dst any) error {
	ctx, cancel := context.WithTimeout(req.Context(), fd.timeout)
	defer cancel()
	resp, err := fd.client.Do(req.WithContext(ctx))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg := readErrBody(resp.Body)
		err := fmt.Errorf("shard returned %d: %s", resp.StatusCode, msg)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return ClientError{err}
		}
		return err
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

// readErrBody extracts the {"error": ...} message a shard's JSON error
// responses carry, falling back to the raw body.
func readErrBody(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}
