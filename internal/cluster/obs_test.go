package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

// TestFrontDoorDeepTrace is the end-to-end tracing acceptance: a
// "trace": true query through the front door returns spans covering
// parse → shard_prune → per-shard block_prune/scan → merge, naming the
// pruned shard and the envelope bound that pruned it, with each
// contacted shard's own spans imported under its label.
func TestFrontDoorDeepTrace(t *testing.T) {
	fd, _, _ := startRangeCluster(t, FrontDoorOptions{})
	ts := httptest.NewServer(FrontDoorHandler(fd))
	defer ts.Close()

	body, _ := json.Marshal(serve.QueryRequest{SQL: "t < 100", Trace: true})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Trace == nil {
		t.Fatalf("no trace in response: %s", raw)
	}

	local := map[string]*obs.Span{}
	remoteNames := map[string]map[string]bool{} // shard label → span names
	for i := range qr.Trace.Spans {
		sp := &qr.Trace.Spans[i]
		if sp.Shard == "" {
			local[sp.Name] = sp
		} else {
			if remoteNames[sp.Shard] == nil {
				remoteNames[sp.Shard] = map[string]bool{}
			}
			remoteNames[sp.Shard][sp.Name] = true
		}
	}
	for _, want := range []string{"parse", "shard_prune", "shard", "merge"} {
		if local[want] == nil {
			t.Fatalf("missing front-door span %q in %s", want, raw)
		}
	}

	// shard_prune must name the pruned shard and its envelope bound:
	// shard 1 owns t in [500, 1000), so t < 100 excludes it via min.
	pa := local["shard_prune"].Attrs
	if int(pa["shards_pruned"].(float64)) != 1 {
		t.Fatalf("shards_pruned = %v", pa["shards_pruned"])
	}
	prunedList, ok := pa["pruned"].([]any)
	if !ok || len(prunedList) != 1 {
		t.Fatalf("pruned list = %v", pa["pruned"])
	}
	p := prunedList[0].(map[string]any)
	if p["label"] != "shard_001" || p["reason"] != "sma" {
		t.Fatalf("pruned shard = %v", p)
	}
	if p["column"] != "t" || p["op"] != "<" || p["bound"].(float64) != 100 {
		t.Fatalf("prune cause = %v, want t < 100 witness", p)
	}
	if p["min"].(float64) >= 100 == false {
		t.Fatalf("pruned shard min = %v, should be >= the bound", p["min"])
	}

	// The contacted shard's own spans ride along under its label.
	if len(remoteNames) != 1 || !remoteNames["shard_000"]["block_prune"] || !remoteNames["shard_000"]["scan"] {
		t.Fatalf("remote spans = %v, want shard_000 block_prune+scan", remoteNames)
	}

	// Without "trace": true the response carries no trace.
	body2, _ := json.Marshal(serve.QueryRequest{SQL: "t < 100"})
	resp2, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body2))
	if err != nil {
		t.Fatal(err)
	}
	raw2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if strings.Contains(string(raw2), `"trace_id"`) {
		t.Errorf("untraced query leaked a trace: %s", raw2)
	}
}

// TestFrontDoorMetrics pins the front door's /metrics families and the
// reconciliation between its stage histograms and its traces.
func TestFrontDoorMetrics(t *testing.T) {
	fd, _, _ := startRangeCluster(t, FrontDoorOptions{})
	ts := httptest.NewServer(FrontDoorHandler(fd))
	defer ts.Close()

	if _, err := fd.Query("t < 100"); err != nil {
		t.Fatal(err)
	}
	if _, err := fd.Query("SELECT COUNT(*) FROM t WHERE t < 100"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "version=0.0.4") {
		t.Fatalf("GET /metrics: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{
		`qd_fd_queries_total{type="filter"} 1`,
		`qd_fd_queries_total{type="select"} 1`,
		`qd_fd_shard_requests_total{outcome="ok"} 2`,
		`qd_fd_shard_requests_total{outcome="pruned"} 2`,
		"qd_fd_shards 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	// Per-stage histogram sums reconcile with the recorded traces.
	snap := fd.Traces().Snapshot()
	if snap.Total != 2 {
		t.Fatalf("trace ring total = %d, want 2", snap.Total)
	}
	wantSum := map[string]float64{}
	for _, td := range snap.Recent {
		for _, sp := range td.Spans {
			if sp.Shard == "" {
				wantSum[sp.Name] += float64(sp.DurNS) / 1e9
			}
		}
	}
	for stage, want := range wantSum {
		h := fd.metrics.stageDur.With(stage)
		if diff := math.Abs(h.Sum() - want); diff > 1e-12*math.Max(1, want) {
			t.Errorf("fd stage %q sum = %v, want %v", stage, h.Sum(), want)
		}
	}

	// /debug/traces serves the same ring as JSON.
	resp2, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var rs obs.RingSnapshot
	if err := json.NewDecoder(resp2.Body).Decode(&rs); err != nil {
		t.Fatal(err)
	}
	if rs.Total != 2 {
		t.Errorf("/debug/traces total = %d", rs.Total)
	}
}

// TestFrontDoorStatsSlowQueries: the -slow-ms path — with an
// always-slow threshold both Stats and the slow metric move.
func TestFrontDoorStatsSlowQueries(t *testing.T) {
	fd, _, _ := startRangeCluster(t, FrontDoorOptions{SlowQuery: 1})
	if _, err := fd.Query("t < 100"); err != nil {
		t.Fatal(err)
	}
	if st := fd.Stats(); st.SlowQueries != 1 {
		t.Errorf("Stats.SlowQueries = %d, want 1", st.SlowQueries)
	}
	if got := fd.metrics.slowQueries.Value(); got != 1 {
		t.Errorf("qd_fd_slow_queries_total = %d, want 1", got)
	}
	if snap := fd.Traces().Snapshot(); snap.SlowTotal != 1 {
		t.Errorf("slow ring total = %d, want 1", snap.SlowTotal)
	}
}

// TestClusterErrorPlumbing covers the error surfaces between the front
// door and its shards: error classification, the JSON error envelope,
// and its client-side extraction.
func TestClusterErrorPlumbing(t *testing.T) {
	fd, _, https := startRangeCluster(t, FrontDoorOptions{})
	if fd.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", fd.NumShards())
	}

	base := errors.New("boom")
	ce := ClientError{base}
	if ce.Error() != "boom" || !errors.Is(ce, base) {
		t.Errorf("ClientError wrap/unwrap broken: %v", ce)
	}

	// A malformed shard request draws a JSON {"error": ...} reply,
	// which readErrBody turns back into the message.
	resp, err := http.Post(https[0].URL+"/cluster/select", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d, want 400", resp.StatusCode)
	}
	if msg := readErrBody(resp.Body); !strings.Contains(msg, "bad JSON") {
		t.Errorf("readErrBody = %q, want the shard's message", msg)
	}
	// Non-JSON bodies fall back to the trimmed raw text.
	if got := readErrBody(strings.NewReader(" plain text \n")); got != "plain text" {
		t.Errorf("readErrBody fallback = %q", got)
	}
}
