// Package cluster scales the learned layout across store nodes: the
// qd-tree that routes queries to blocks is reused, one level up, as the
// sharding function that routes queries to machines.
//
// The subsystem has three roles:
//
//   - The coordinator (Partition / InitShards) splits a planned layout's
//     leaves into N shard assignments, balancing rows with an LPT greedy,
//     and materializes each shard as its own generation root — so every
//     shard is a full serve.Server with its own delta store, drift
//     monitor, and compactor, re-layouting independently of its peers.
//   - A store node ("shardd") is a serve.Server mounted behind
//     ShardHandler, which adds the cluster endpoints to the standalone
//     HTTP surface: GET /cluster/summary (the shard's pruning envelope +
//     schema) and POST /cluster/select (partial aggregation for
//     bit-identical gathering).
//   - The front door (FrontDoor) is stateless: it parses a query once,
//     prunes shards whose summary envelope cannot match (shard-level SMA
//     pruning, before any block-level pruning on the nodes), scatters the
//     canonical SQL to the surviving shards in parallel with per-shard
//     timeout and bounded retry, and gathers partials with the same
//     order-independent merge arithmetic the in-process worker pool uses
//     (exec.MergeAggPartials / exec.MergeResults) — so cluster answers
//     are bit-identical to a single-node run over the union of the rows.
//
// Ingest flows through the same assignment: POST /ingest on the front
// door routes each row to the shard whose envelope contains it (falling
// back to the least-loaded shard for out-of-envelope rows) and forwards
// it to that shard's delta store; the shard's own compactor later folds
// it into the learned layout.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/serve"
	"repro/internal/table"
)

// ShardAssignment records one shard's slice of a partitioned layout: the
// source-layout leaf (block) ids it owns and their total row count. Addr
// is filled when the shard is deployed (manifests written by InitShards
// leave it empty; operators or tests fill it before starting a front
// door from the manifest).
type ShardAssignment struct {
	ID     int    `json:"id"`
	Addr   string `json:"addr,omitempty"`
	Leaves []int  `json:"leaves"`
	Rows   int    `json:"rows"`
}

// Manifest is the coordinator's output: the schema plus every shard's
// assignment. It is written as manifest.json beside the shard roots.
type Manifest struct {
	NumShards int               `json:"num_shards"`
	Columns   []table.Column    `json:"columns"`
	Shards    []ShardAssignment `json:"shards"`
}

// ManifestName is the file InitShards writes beside the shard roots.
const ManifestName = "manifest.json"

// ShardRoot returns the generation-root directory of shard id under the
// cluster directory: dir/shard_000 .. dir/shard_NNN.
func ShardRoot(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("shard_%03d", id))
}

// Partition splits layout leaves (given by per-leaf row counts) into
// nshards balanced groups with the LPT greedy: leaves in descending row
// order, each to the currently lightest shard. The result is
// deterministic (ties break toward lower leaf and shard ids) and each
// group lists its leaf ids in ascending order. Empty leaves are spread
// round-robin so every leaf id is owned by exactly one shard.
func Partition(counts []int, nshards int) [][]int {
	if nshards < 1 {
		nshards = 1
	}
	order := make([]int, 0, len(counts))
	for leaf, n := range counts {
		if n > 0 {
			order = append(order, leaf)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if counts[order[i]] != counts[order[j]] {
			return counts[order[i]] > counts[order[j]]
		}
		return order[i] < order[j]
	})
	groups := make([][]int, nshards)
	load := make([]int, nshards)
	for _, leaf := range order {
		best := 0
		for s := 1; s < nshards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		groups[best] = append(groups[best], leaf)
		load[best] += counts[leaf]
	}
	next := 0
	for leaf, n := range counts {
		if n == 0 {
			groups[next%nshards] = append(groups[next%nshards], leaf)
			next++
		}
	}
	for s := range groups {
		sort.Ints(groups[s])
	}
	return groups
}

// BuildManifest partitions a layout over nshards and records the
// assignment (addresses unfilled).
func BuildManifest(layout *cost.Layout, nshards int) *Manifest {
	groups := Partition(layout.Counts, nshards)
	m := &Manifest{NumShards: len(groups)}
	for id, leaves := range groups {
		rows := 0
		for _, leaf := range leaves {
			rows += layout.Counts[leaf]
		}
		m.Shards = append(m.Shards, ShardAssignment{ID: id, Leaves: leaves, Rows: rows})
	}
	return m
}

// shardSlice extracts one shard's rows and re-indexed block assignment
// from the full table + layout: owned leaves keep their relative order,
// renumbered 0..len(leaves)-1.
func shardSlice(tbl *table.Table, layout *cost.Layout, leaves []int) (*table.Table, []int, int) {
	local := make(map[int]int, len(leaves))
	for i, leaf := range leaves {
		local[leaf] = i
	}
	var rows []int
	for r, b := range layout.BIDs {
		if _, ok := local[b]; ok {
			rows = append(rows, r)
		}
	}
	sub := tbl.Select(rows)
	bids := make([]int, 0, len(rows))
	for _, r := range rows {
		bids = append(bids, local[layout.BIDs[r]])
	}
	return sub, bids, len(leaves)
}

// InitShard materializes one shard of a partitioned layout as a
// generation root under dir (see ShardRoot): the shard's rows become
// generation 1 of its own store, servable by serve.New exactly like a
// standalone root. Deterministic: every process that initializes shard i
// from the same table + layout writes the same rows, which is what lets
// N demo shard processes bootstrap themselves independently.
func InitShard(dir string, tbl *table.Table, layout *cost.Layout, acs []expr.AdvCut, asn ShardAssignment, opts ...blockstore.WriteOptions) error {
	sub, bids, nblocks := shardSlice(tbl, layout, asn.Leaves)
	l := cost.NewLayout(fmt.Sprintf("shard_%03d", asn.ID), sub, bids, nblocks, acs)
	var opt blockstore.WriteOptions
	if len(opts) > 0 {
		opt = opts[0]
	}
	return serve.InitOpts(ShardRoot(dir, asn.ID), sub, l, opt)
}

// InitShards is the offline coordinator: partition the layout, write
// every shard root under dir, and persist the manifest. The returned
// manifest's Addr fields are empty — deployment fills them.
func InitShards(dir string, tbl *table.Table, layout *cost.Layout, acs []expr.AdvCut, nshards int, opts ...blockstore.WriteOptions) (*Manifest, error) {
	if layout == nil || len(layout.BIDs) != tbl.N {
		return nil, fmt.Errorf("cluster: layout does not assign the table's %d rows", tbl.N)
	}
	m := BuildManifest(layout, nshards)
	m.Columns = tbl.Schema.Cols
	for _, asn := range m.Shards {
		if err := InitShard(dir, tbl, layout, acs, asn, opts...); err != nil {
			return nil, fmt.Errorf("cluster: init shard %d: %w", asn.ID, err)
		}
	}
	if err := WriteManifest(dir, m); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteManifest persists a manifest beside the shard roots.
func WriteManifest(dir string, m *Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, ManifestName))
}

// LoadManifest reads a manifest written by WriteManifest.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster: parse %s: %w", ManifestName, err)
	}
	return &m, nil
}
