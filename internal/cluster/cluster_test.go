package cluster

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/serve"
	"repro/internal/table"
)

// fixtureTable builds a deterministic two-column table sorted by t, so a
// contiguous block assignment yields disjoint per-block t ranges.
func fixtureTable(n int) *table.Table {
	schema := table.MustSchema([]table.Column{
		{Name: "t", Kind: table.Numeric, Min: 0, Max: 999},
		{Name: "cat", Kind: table.Categorical, Dom: 4, Dict: []string{"a", "b", "c", "d"}},
	})
	tbl := table.New(schema, n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		tbl.AppendRow([]int64{int64(i * 1000 / n), rng.Int63n(4)})
	}
	return tbl
}

// rangeLayout assigns rows to nblocks contiguous runs (disjoint t ranges).
func rangeLayout(tbl *table.Table, nblocks int) *cost.Layout {
	bids := make([]int, tbl.N)
	for i := range bids {
		b := i * nblocks / tbl.N
		bids[i] = b
	}
	return cost.NewLayout("range", tbl, bids, nblocks, nil)
}

func TestPartitionCoversEveryLeafOnce(t *testing.T) {
	counts := []int{100, 0, 40, 70, 0, 10, 90, 25}
	for _, nshards := range []int{1, 2, 3, 4, 16} {
		groups := Partition(counts, nshards)
		if len(groups) != nshards {
			t.Fatalf("nshards=%d: got %d groups", nshards, len(groups))
		}
		seen := map[int]int{}
		for _, g := range groups {
			if !sort.IntsAreSorted(g) {
				t.Errorf("nshards=%d: group %v not sorted", nshards, g)
			}
			for _, leaf := range g {
				seen[leaf]++
			}
		}
		for leaf := range counts {
			if seen[leaf] != 1 {
				t.Fatalf("nshards=%d: leaf %d owned %d times", nshards, leaf, seen[leaf])
			}
		}
	}
}

func TestPartitionBalancesRows(t *testing.T) {
	counts := make([]int, 64)
	rng := rand.New(rand.NewSource(3))
	total := 0
	for i := range counts {
		counts[i] = 50 + rng.Intn(200)
		total += counts[i]
	}
	groups := Partition(counts, 4)
	for s, g := range groups {
		rows := 0
		for _, leaf := range g {
			rows += counts[leaf]
		}
		// LPT on many similar-sized leaves lands well within 2x of ideal.
		if ideal := total / 4; rows > 2*ideal || rows < ideal/2 {
			t.Errorf("shard %d holds %d rows, ideal %d", s, rows, ideal)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	tbl := fixtureTable(800)
	layout := rangeLayout(tbl, 8)
	dir := t.TempDir()
	m, err := InitShards(dir, tbl, layout, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards != 3 || len(m.Shards) != 3 {
		t.Fatalf("manifest shards: %+v", m)
	}
	rows := 0
	for _, asn := range m.Shards {
		rows += asn.Rows
	}
	if rows != tbl.N {
		t.Fatalf("assignments cover %d rows, table has %d", rows, tbl.N)
	}
	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShards != m.NumShards || len(got.Columns) != len(tbl.Schema.Cols) {
		t.Fatalf("round trip: %+v", got)
	}
	for i, asn := range got.Shards {
		if asn.Rows != m.Shards[i].Rows || len(asn.Leaves) != len(m.Shards[i].Leaves) {
			t.Fatalf("shard %d round trip: %+v vs %+v", i, asn, m.Shards[i])
		}
	}
}

// testConfig serves a shard root with no background monitors.
func testConfig(label string) serve.Config {
	return serve.Config{
		Replan:     serve.GreedyReplan(50),
		MinWindow:  1,
		ShardLabel: label,
	}
}

// startRangeCluster materializes a 2-shard cluster with disjoint t
// envelopes (shard 0 owns the low half, shard 1 the high half) and
// returns a front door over httptest shard servers.
func startRangeCluster(t *testing.T, opt FrontDoorOptions) (*FrontDoor, []*serve.Server, []*httptest.Server) {
	t.Helper()
	tbl := fixtureTable(1000)
	layout := rangeLayout(tbl, 4)
	dir := t.TempDir()
	assignments := []ShardAssignment{
		{ID: 0, Leaves: []int{0, 1}},
		{ID: 1, Leaves: []int{2, 3}},
	}
	var servers []*serve.Server
	var https []*httptest.Server
	var addrs []string
	for _, asn := range assignments {
		if err := InitShard(dir, tbl, layout, nil, asn); err != nil {
			t.Fatal(err)
		}
		s, err := serve.New(filepath.Join(dir, fmt.Sprintf("shard_%03d", asn.ID)), testConfig(fmt.Sprintf("shard_%03d", asn.ID)))
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(ShardHandler(s))
		servers = append(servers, s)
		https = append(https, hs)
		addrs = append(addrs, hs.URL)
	}
	t.Cleanup(func() {
		for _, hs := range https {
			hs.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	})
	fd, err := NewFrontDoor(addrs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return fd, servers, https
}

// TestShardPruning is the shard-level SMA property: a selective query
// contacts fewer shards than exist, and the pruned answer matches the
// unpruned one.
func TestShardPruning(t *testing.T) {
	fd, _, _ := startRangeCluster(t, FrontDoorOptions{})

	res, err := fd.Query("t < 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsContacted >= res.ShardsTotal {
		t.Fatalf("selective query contacted %d of %d shards — shard pruning not observable", res.ShardsContacted, res.ShardsTotal)
	}
	if res.ShardsPruned != 1 {
		t.Fatalf("ShardsPruned = %d, want 1", res.ShardsPruned)
	}
	if res.Filter.RowsMatched != 100 {
		t.Fatalf("RowsMatched = %d, want 100", res.Filter.RowsMatched)
	}
	if res.Filter.RowsTotal != 1000 {
		t.Fatalf("RowsTotal = %d, want 1000 (pruned shards count toward the universe)", res.Filter.RowsTotal)
	}
	if res.Partial {
		t.Fatal("pruned scatter must not be partial")
	}

	// A query outside every envelope contacts nobody and answers zero.
	res, err = fd.Query("t >= 5000")
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsContacted != 0 || res.Filter.RowsMatched != 0 {
		t.Fatalf("fully pruned query: contacted %d, matched %d", res.ShardsContacted, res.Filter.RowsMatched)
	}
	// Same for an aggregate: the merged result is the empty partial.
	ares, err := fd.Query("SELECT COUNT(*), MIN(t) FROM t WHERE t >= 5000")
	if err != nil {
		t.Fatal(err)
	}
	if ares.ShardsContacted != 0 {
		t.Fatalf("fully pruned aggregate contacted %d shards", ares.ShardsContacted)
	}
	if len(ares.Agg.Rows) != 1 || ares.Agg.Rows[0].Vals[0].Int != 0 || ares.Agg.Rows[0].Vals[1].Valid {
		t.Fatalf("fully pruned aggregate rows: %+v", ares.Agg.Rows)
	}
}

// TestIngestMakesShardUnprunable is the delta soundness property: rows
// routed into a shard's delta store defeat pruning until compaction, and
// the front door's cached summary widens without a refresh.
func TestIngestMakesShardUnprunable(t *testing.T) {
	fd, servers, _ := startRangeCluster(t, FrontDoorOptions{})

	// t=5000 is outside both envelopes → least-loaded routing; both
	// shards hold 500 rows, so the tie breaks to shard 0.
	ing, err := fd.Ingest(ingestBody([][]int64{{5000, 1}, {5001, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if ing.Inserted != 2 || ing.PerShard[0] != 2 {
		t.Fatalf("ingest routing: %+v", ing)
	}

	// The query that was fully pruned now must contact shard 0 and see
	// the delta rows — without any /refresh in between.
	res, err := fd.Query("t >= 5000")
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsContacted != 1 {
		t.Fatalf("delta-holding shard was pruned (contacted %d)", res.ShardsContacted)
	}
	if res.Filter.RowsMatched != 2 {
		t.Fatalf("RowsMatched = %d, want 2 delta rows", res.Filter.RowsMatched)
	}
	agg, err := fd.Query("SELECT COUNT(*), MAX(t) FROM t WHERE t >= 5000")
	if err != nil {
		t.Fatal(err)
	}
	if agg.Agg.Rows[0].Vals[0].Int != 2 || agg.Agg.Rows[0].Vals[1].Int != 5001 {
		t.Fatalf("aggregate over delta rows: %+v", agg.Agg.Rows)
	}

	// Compaction folds the delta into described blocks; after a refresh
	// the envelope covers t=5001 and the shard stays contactable.
	if _, err := servers[0].RunCompaction(true); err != nil {
		t.Fatal(err)
	}
	if err := fd.Refresh(); err != nil {
		t.Fatal(err)
	}
	res, err = fd.Query("t >= 5000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Filter.RowsMatched != 2 || res.Filter.DeltaRows != 0 {
		t.Fatalf("post-compaction: matched %d, delta rows %d", res.Filter.RowsMatched, res.Filter.DeltaRows)
	}
}

// TestGracefulDegradation kills one shard: queries still owning a live
// shard answer with the partial flag; queries whose owners are all dead
// fail with ErrAllShardsFailed (503 at the HTTP layer).
func TestGracefulDegradation(t *testing.T) {
	fd, _, https := startRangeCluster(t, FrontDoorOptions{Retries: -1, Timeout: 2 * time.Second})

	https[1].Close() // shard 1 (high t range) goes dark

	// Query owning only the dead shard → all owners failed.
	if _, err := fd.Query("t >= 900"); err == nil {
		t.Fatal("query owned only by the dead shard must fail")
	}

	// Query owning both shards → partial answer from the survivor.
	res, err := fd.Query("t >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.ShardsFailed != 1 {
		t.Fatalf("expected partial result with 1 failed shard, got %+v", res)
	}
	if res.Filter.RowsMatched != 500 {
		t.Fatalf("survivor rows: %d, want 500", res.Filter.RowsMatched)
	}
	if len(res.Failed) != 1 || res.Failed[0].Shard != 1 {
		t.Fatalf("failed shard report: %+v", res.Failed)
	}

	// Query owned only by the live shard → clean, non-partial answer.
	res, err = fd.Query("t < 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.Filter.RowsMatched != 100 {
		t.Fatalf("live-shard query: %+v", res)
	}
}

// TestConcurrentQueriesDuringRelayout is the generation-swap stress
// property (run under -race in CI): scattered queries keep answering
// exactly while shards force re-layouts underneath them.
func TestConcurrentQueriesDuringRelayout(t *testing.T) {
	fd, servers, _ := startRangeCluster(t, FrontDoorOptions{})

	// Seed each shard's workload log so forced replans have a window.
	for i := 0; i < 4; i++ {
		if _, err := fd.Query(fmt.Sprintf("t >= %d", i*200)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := fd.Query("t < 500")
				if err != nil {
					errs <- err
					return
				}
				if res.Filter.RowsMatched != 500 || res.Partial {
					errs <- fmt.Errorf("worker %d iter %d: matched %d partial %v", w, i, res.Filter.RowsMatched, res.Partial)
					return
				}
				if _, err := fd.Query("SELECT COUNT(*), AVG(t) FROM t WHERE t < 500"); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for round := 0; round < 3; round++ {
		for _, s := range servers {
			if _, err := s.Relayout(true); err != nil {
				t.Errorf("forced relayout: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
