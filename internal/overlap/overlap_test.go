package overlap

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/greedy"
	"repro/internal/workload"
)

func toCuts(ps []workload.Pred2Cut) []core.Cut {
	out := make([]core.Cut, len(ps))
	for i, p := range ps {
		if p.IsAdv {
			out[i] = core.AdvancedCut(p.Adv)
		} else {
			out[i] = core.UnaryCut(p.Pred)
		}
	}
	return out
}

// TestFig4OverlapEliminatesWaste reproduces the Sec. 6.2 scenario: without
// overlap, three of four queries read ~N extra tuples; with the center
// record replicated, every query reads ≈ N+1 tuples.
func TestFig4OverlapEliminatesWaste(t *testing.T) {
	armN := 400
	spec := workload.Fig4(armN, 1)

	// Plain qd-tree (binary cuts, b=armN): total accessed across the 4
	// queries is ≈ 4(N+1) + 3N (three queries fetch the center's block).
	plainTree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
		MinSize: armN, Cuts: toCuts(spec.Cuts), Queries: spec.Queries})
	if err != nil {
		t.Fatal(err)
	}
	plain := cost.FromTree("plain", plainTree, spec.Table)
	var plainAcc int64
	for _, q := range spec.Queries {
		plainAcc += plain.AccessedTuples(q)
	}

	lay, err := Build(spec.Table, spec.ACs, Options{
		MinSize: armN, Cuts: toCuts(spec.Cuts), Queries: spec.Queries})
	if err != nil {
		t.Fatal(err)
	}
	if err := lay.Validate(spec.Table); err != nil {
		t.Fatal(err)
	}
	var overlapAcc int64
	for _, q := range spec.Queries {
		acc := lay.AccessedTuples(q, spec.Table.Schema)
		if acc < int64(armN+1) {
			t.Fatalf("%s: accessed %d < selected %d — skipping lost matches", q.Name, acc, armN+1)
		}
		overlapAcc += acc
	}
	if overlapAcc >= plainAcc {
		t.Errorf("overlap accessed %d, plain %d; replication should help", overlapAcc, plainAcc)
	}
	// The paper's ideal: no query touches unnecessary records. Allow a
	// small slack for partition imbalance.
	ideal := int64(4 * (armN + 1))
	if float64(overlapAcc) > 1.4*float64(ideal) {
		t.Errorf("overlap accessed %d, ideal %d; too much waste remains", overlapAcc, ideal)
	}
	if lay.StorageOverhead() > 0.05 {
		t.Errorf("storage overhead %.3f; should be tiny (single replicated record)", lay.StorageOverhead())
	}
}

func TestOverlapCompletenessAfterReplication(t *testing.T) {
	spec := workload.Fig4(200, 2)
	lay, err := Build(spec.Table, spec.ACs, Options{
		MinSize: 200, Cuts: toCuts(spec.Cuts), Queries: spec.Queries})
	if err != nil {
		t.Fatal(err)
	}
	// Every query's matching rows must appear in at least one scanned
	// block (with multiplicity allowed).
	row := make([]int64, 2)
	for _, q := range spec.Queries {
		scanned := map[int]bool{}
		for _, b := range lay.BlocksFor(q, spec.Table.Schema) {
			scanned[b] = true
		}
		inScanned := map[int]bool{}
		for b := range scanned {
			for _, r := range lay.Blocks[b].Rows {
				inScanned[r] = true
			}
		}
		for r := 0; r < spec.Table.N; r++ {
			row = spec.Table.Row(r, row)
			if q.Eval(row, nil) && !inScanned[r] {
				t.Fatalf("%s: matching row %d missing from scanned blocks", q.Name, r)
			}
		}
	}
}

func TestNeighbors(t *testing.T) {
	mk := func(lo0, hi0, lo1, hi1 int64) core.Desc {
		return core.Desc{Lo: []int64{lo0, lo1}, Hi: []int64{hi0, hi1}}
	}
	if !neighbors(mk(0, 5, 0, 10), mk(5, 9, 0, 10)) {
		t.Error("adjacent boxes sharing dim 1 must be neighbors")
	}
	if neighbors(mk(0, 5, 0, 10), mk(5, 9, 0, 9)) {
		t.Error("boxes differing in two dims must not be neighbors")
	}
	if !neighbors(mk(0, 5, 0, 10), mk(0, 5, 0, 10)) {
		t.Error("identical boxes count as neighbors")
	}
	if !neighbors(mk(0, 5, 0, 10), mk(7, 9, 0, 10)) {
		t.Error("disjoint-but-aligned boxes along one dim are neighbors (frozen hulls leave gaps)")
	}
}

func TestQueryBoxExtraction(t *testing.T) {
	spec := workload.Fig4(10, 3)
	lo, hi, ok := queryBox(spec.Queries[0], 2, spec.Table.Schema)
	if !ok {
		t.Fatal("conjunctive query must yield a box")
	}
	// Q1: x <= 50, 45 <= y < 55.
	if hi[0] != 51 || lo[1] != 45 || hi[1] != 55 {
		t.Errorf("box = [%v, %v)", lo, hi)
	}
	// Disjunctive queries must be rejected.
	f3 := workload.Fig3(100, 1)
	if _, _, ok := queryBox(f3.Queries[0], 2, f3.Table.Schema); ok {
		t.Error("disjunctive query must not produce a box")
	}
}

func TestStorageOverheadZeroWithoutSmallLeaves(t *testing.T) {
	spec := workload.Fig3(2000, 4)
	lay, err := Build(spec.Table, spec.ACs, Options{
		MinSize: 20, Cuts: toCuts(spec.Cuts), Queries: spec.Queries})
	if err != nil {
		t.Fatal(err)
	}
	if err := lay.Validate(spec.Table); err != nil {
		t.Fatal(err)
	}
	if lay.StorageOverhead() > 0.5 {
		t.Errorf("excessive overhead %.3f", lay.StorageOverhead())
	}
}
