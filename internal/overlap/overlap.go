// Package overlap implements the Sec. 6.2 data-overlap extension: qd-tree
// construction with a relaxed cutting condition (one child may fall below
// the minimum block size b), followed by replication of each small leaf
// into its neighboring large blocks. Replication trades a little storage
// for large skipping gains on workloads whose queries share a small hot
// region (Fig. 4); the completeness property is what makes the redundant
// copies prunable at query time.
package overlap

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/greedy"
	"repro/internal/table"
)

// Block is one physical block of an overlap layout. Rows may appear in
// several blocks; Desc covers everything stored here (base region plus any
// absorbed small-leaf regions), preserving completeness.
type Block struct {
	Desc  core.Desc
	Rows  []int
	Small bool // originated below the size bound and was replicated away
}

// Layout is a multi-assignment partitioning: a row can live in more than
// one block (Sec. 6.2).
type Layout struct {
	Tree    *core.Tree
	Blocks  []Block
	NumRows int
	// Replicas counts duplicated row slots (extra storage consumed).
	Replicas int
}

// Options configure the overlap builder.
type Options struct {
	MinSize int
	Cuts    []core.Cut
	Queries []expr.Query
	// MaxLeaves caps construction (0 = unlimited).
	MaxLeaves int
}

// Build constructs the relaxed tree and replicates small leaves into all
// neighboring large blocks.
func Build(tbl *table.Table, acs []expr.AdvCut, opt Options) (*Layout, error) {
	tree, err := greedy.Build(tbl, acs, greedy.Options{
		MinSize:         opt.MinSize,
		Cuts:            opt.Cuts,
		Queries:         opt.Queries,
		MaxLeaves:       opt.MaxLeaves,
		AllowSmallChild: true,
	})
	if err != nil {
		return nil, err
	}
	bids := tree.RouteTable(tbl)
	tree.Freeze(tbl, bids)
	leaves := tree.Leaves()
	perLeaf := make([][]int, len(leaves))
	for r, b := range bids {
		perLeaf[b] = append(perLeaf[b], r)
	}

	lay := &Layout{Tree: tree, NumRows: tbl.N}
	// Partition leaves into the large set (>= b) and the small set.
	var smallIdx []int
	for i, leaf := range leaves {
		blk := Block{Desc: leaf.Desc.Clone(), Rows: perLeaf[i]}
		if len(perLeaf[i]) < opt.MinSize {
			blk.Small = true
			smallIdx = append(smallIdx, i)
		}
		lay.Blocks = append(lay.Blocks, blk)
	}
	// Replicate each small block into every large block it shares work
	// with: blocks that are hypercube neighbors (the paper's definition)
	// or that co-occur with the small block under some workload query —
	// exactly the blocks whose queries would otherwise fetch the small
	// block separately (Fig. 4: the center record lands in all four arm
	// blocks). Receivers widen their descriptions so completeness holds.
	for _, si := range smallIdx {
		small := &lay.Blocks[si]
		replicated := false
		for li := range lay.Blocks {
			if li == si || lay.Blocks[li].Small {
				continue
			}
			if !neighbors(small.Desc, lay.Blocks[li].Desc) &&
				!sharesQuery(small.Desc, lay.Blocks[li].Desc, opt.Queries) {
				continue
			}
			dst := &lay.Blocks[li]
			dst.Rows = append(dst.Rows, small.Rows...)
			widen(&dst.Desc, small.Desc)
			lay.Replicas += len(small.Rows)
			replicated = true
		}
		if !replicated && len(lay.Blocks) > 1 {
			// No adjacent large block: merge into the largest block to
			// avoid stranding an undersized block.
			best := -1
			for li := range lay.Blocks {
				if li == si || lay.Blocks[li].Small {
					continue
				}
				if best < 0 || len(lay.Blocks[li].Rows) > len(lay.Blocks[best].Rows) {
					best = li
				}
			}
			if best >= 0 {
				dst := &lay.Blocks[best]
				dst.Rows = append(dst.Rows, small.Rows...)
				widen(&dst.Desc, small.Desc)
				lay.Replicas += len(small.Rows)
				replicated = true
			}
		}
		if replicated {
			small.Rows = nil // storage reclaimed; copies live elsewhere
		}
	}
	return lay, nil
}

// neighbors reports whether two hypercubes share boundaries on all but one
// dimension and are adjacent (or touching) on the remaining one (Sec. 6.2's
// neighbor definition).
func neighbors(a, b core.Desc) bool {
	diff := -1
	for c := range a.Lo {
		if a.Lo[c] == b.Lo[c] && a.Hi[c] == b.Hi[c] {
			continue
		}
		if diff >= 0 {
			return false
		}
		diff = c
	}
	if diff < 0 {
		return true // identical boxes
	}
	// Adjacent intervals: one ends where the other begins (allow a gap of
	// zero between frozen hulls by comparing against each other's edges).
	return a.Hi[diff] <= b.Lo[diff] || b.Hi[diff] <= a.Lo[diff]
}

// sharesQuery reports whether some workload query intersects both
// descriptions — the signal that replication would merge their scans.
func sharesQuery(a, b core.Desc, w []expr.Query) bool {
	for _, q := range w {
		if a.QueryMayMatch(q) && b.QueryMayMatch(q) {
			return true
		}
	}
	return false
}

// widen grows dst's description to cover src's region.
func widen(dst *core.Desc, src core.Desc) {
	for c := range dst.Lo {
		if src.Lo[c] < dst.Lo[c] {
			dst.Lo[c] = src.Lo[c]
		}
		if src.Hi[c] > dst.Hi[c] {
			dst.Hi[c] = src.Hi[c]
		}
	}
	for c, m := range src.Masks {
		dst.Masks[c].UnionWith(m)
	}
	dst.AdvMay.UnionWith(src.AdvMay)
	dst.AdvMayNot.UnionWith(src.AdvMayNot)
}

// queryBox extracts the per-column interval [lo, hi) of a purely
// conjunctive range/equality query; ok is false for other shapes.
func queryBox(q expr.Query, ncols int, schema *table.Schema) (lo, hi []int64, ok bool) {
	lo = make([]int64, ncols)
	hi = make([]int64, ncols)
	for c := 0; c < ncols; c++ {
		lo[c] = schema.Cols[c].Min
		hi[c] = schema.Cols[c].Max + 1
		if schema.Cols[c].Kind == table.Categorical {
			lo[c], hi[c] = 0, schema.Cols[c].Dom
		}
	}
	if q.Root == nil {
		return lo, hi, true
	}
	var collect func(n *expr.Node) bool
	collect = func(n *expr.Node) bool {
		switch n.Kind {
		case expr.KindAnd:
			for _, c := range n.Children {
				if !collect(c) {
					return false
				}
			}
			return true
		case expr.KindPred:
			p := n.Pred
			switch p.Op {
			case expr.Lt:
				if p.Literal < hi[p.Col] {
					hi[p.Col] = p.Literal
				}
			case expr.Le:
				if p.Literal+1 < hi[p.Col] {
					hi[p.Col] = p.Literal + 1
				}
			case expr.Gt:
				if p.Literal+1 > lo[p.Col] {
					lo[p.Col] = p.Literal + 1
				}
			case expr.Ge:
				if p.Literal > lo[p.Col] {
					lo[p.Col] = p.Literal
				}
			case expr.Eq:
				if p.Literal > lo[p.Col] {
					lo[p.Col] = p.Literal
				}
				if p.Literal+1 < hi[p.Col] {
					hi[p.Col] = p.Literal + 1
				}
			default:
				return false
			}
			return true
		default:
			return false
		}
	}
	if !collect(q.Root) {
		return nil, nil, false
	}
	return lo, hi, true
}

// BlocksFor returns the blocks to scan for q. Candidates are all blocks
// intersecting the query; when one candidate's description fully covers
// the query box, completeness lets us scan that block alone (Sec. 6.2.1's
// redundant-block pruning).
func (l *Layout) BlocksFor(q expr.Query, schema *table.Schema) []int {
	var cands []int
	for i := range l.Blocks {
		if len(l.Blocks[i].Rows) == 0 {
			continue
		}
		if l.Blocks[i].Desc.QueryMayMatch(q) {
			cands = append(cands, i)
		}
	}
	ncols := len(schema.Cols)
	qlo, qhi, ok := queryBox(q, ncols, schema)
	if !ok || len(cands) <= 1 {
		return cands
	}
	best := -1
	for _, i := range cands {
		d := l.Blocks[i].Desc
		covers := true
		for c := 0; c < ncols; c++ {
			if d.Lo[c] > qlo[c] || d.Hi[c] < qhi[c] {
				covers = false
				break
			}
		}
		if covers && (best < 0 || len(l.Blocks[i].Rows) < len(l.Blocks[best].Rows)) {
			best = i
		}
	}
	if best >= 0 {
		return []int{best}
	}
	return cands
}

// AccessedTuples returns the scanned row slots for q (replicated rows in
// a scanned block each count once, matching physical I/O).
func (l *Layout) AccessedTuples(q expr.Query, schema *table.Schema) int64 {
	var n int64
	for _, b := range l.BlocksFor(q, schema) {
		n += int64(len(l.Blocks[b].Rows))
	}
	return n
}

// AccessedFraction mirrors cost.Layout.AccessedFraction for overlap
// layouts (denominator is the logical row count, not the inflated one).
func (l *Layout) AccessedFraction(w []expr.Query, schema *table.Schema) float64 {
	if len(w) == 0 || l.NumRows == 0 {
		return 0
	}
	var acc int64
	for _, q := range w {
		acc += l.AccessedTuples(q, schema)
	}
	return float64(acc) / (float64(len(w)) * float64(l.NumRows))
}

// StorageOverhead returns the fraction of extra storage consumed by
// replication (0 = none).
func (l *Layout) StorageOverhead() float64 {
	if l.NumRows == 0 {
		return 0
	}
	return float64(l.Replicas) / float64(l.NumRows)
}

// Validate checks the multi-assignment invariants: every row is stored at
// least once and every stored row satisfies its block's description.
func (l *Layout) Validate(tbl *table.Table) error {
	seen := make([]bool, tbl.N)
	row := make([]int64, tbl.Schema.NumCols())
	for bi := range l.Blocks {
		for _, r := range l.Blocks[bi].Rows {
			seen[r] = true
			row = tbl.Row(r, row)
			d := l.Blocks[bi].Desc
			for c := range row {
				if row[c] < d.Lo[c] || row[c] >= d.Hi[c] {
					return fmt.Errorf("overlap: row %d outside block %d on column %d", r, bi, c)
				}
			}
		}
	}
	for r, ok := range seen {
		if !ok {
			return fmt.Errorf("overlap: row %d stored nowhere", r)
		}
	}
	return nil
}
