package greedy

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/table"
	"repro/internal/workload"
)

func toCuts(ps []workload.Pred2Cut) []core.Cut {
	out := make([]core.Cut, len(ps))
	for i, p := range ps {
		if p.IsAdv {
			out[i] = core.AdvancedCut(p.Adv)
		} else {
			out[i] = core.UnaryCut(p.Pred)
		}
	}
	return out
}

func TestGreedyFig3MatchesPaper(t *testing.T) {
	// Sec. 5.1: Greedy cannot profit from the two cpu cuts (each alone
	// skips neither query), so it must cut only on disk, producing a
	// 2-block layout with a scan ratio near 50.5%.
	spec := workload.Fig3(20000, 1)
	tree, err := Build(spec.Table, spec.ACs, Options{
		MinSize: 100,
		Cuts:    toCuts(spec.Cuts),
		Queries: spec.Queries,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tree.Leaves()); got != 2 {
		t.Fatalf("greedy built %d leaves, want 2 (disk cut only)", got)
	}
	if tree.Root.Cut.Pred.Col != spec.Table.Schema.MustCol("disk") {
		t.Fatalf("greedy cut %v, want the disk cut", tree.Root.Cut)
	}
	layout := cost.FromTree("greedy", tree, spec.Table)
	frac := layout.AccessedFraction(spec.Queries)
	if frac < 0.45 || frac > 0.56 {
		t.Errorf("scan ratio = %.3f, paper reports ≈0.505", frac)
	}
}

func TestGreedyRespectsMinSize(t *testing.T) {
	spec := workload.Fig3(5000, 2)
	tree, err := Build(spec.Table, spec.ACs, Options{
		MinSize: 200,
		Cuts:    toCuts(spec.Cuts),
		Queries: spec.Queries,
	})
	if err != nil {
		t.Fatal(err)
	}
	bids := tree.RouteTable(spec.Table)
	counts := make(map[int]int)
	for _, b := range bids {
		counts[b]++
	}
	for b, n := range counts {
		if n < 200 {
			t.Errorf("block %d has %d rows, below b=200", b, n)
		}
	}
}

func TestGreedyImprovesOverSingleBlock(t *testing.T) {
	// On a workload with conjunctive range queries, greedy must strictly
	// improve the skipping capacity versus no partitioning at all.
	rng := rand.New(rand.NewSource(3))
	schema := table.MustSchema([]table.Column{
		{Name: "a", Kind: table.Numeric, Min: 0, Max: 999},
		{Name: "b", Kind: table.Numeric, Min: 0, Max: 999},
	})
	tbl := table.New(schema, 20000)
	for i := 0; i < 20000; i++ {
		tbl.AppendRow([]int64{int64(rng.Intn(1000)), int64(rng.Intn(1000))})
	}
	var queries []expr.Query
	var cuts []core.Cut
	for i := 0; i < 10; i++ {
		lo := int64(rng.Intn(900))
		q := expr.AndQ("q",
			expr.Pred{Col: 0, Op: expr.Ge, Literal: lo},
			expr.Pred{Col: 0, Op: expr.Lt, Literal: lo + 50})
		queries = append(queries, q)
		cuts = append(cuts,
			core.UnaryCut(expr.Pred{Col: 0, Op: expr.Ge, Literal: lo}),
			core.UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: lo + 50}))
	}
	tree, err := Build(tbl, nil, Options{MinSize: 500, Cuts: cuts, Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	layout := cost.FromTree("greedy", tree, tbl)
	if frac := layout.AccessedFraction(queries); frac > 0.5 {
		t.Errorf("greedy fraction %.3f too high for highly selective workload", frac)
	}
	if len(tree.Leaves()) < 2 {
		t.Error("greedy made no cuts on an improvable workload")
	}
}

func TestGreedyDeltaMatchesBruteForce(t *testing.T) {
	// The incremental ΔC (refs-only rescoring) must equal a brute-force
	// C(T⊕a) − C(T) computed from scratch with the Evaluator.
	spec := workload.Fig3(3000, 4)
	cuts := toCuts(spec.Cuts)
	b, err := NewBuilder(spec.Table, spec.ACs, Options{MinSize: 10, Cuts: cuts, Queries: spec.Queries})
	if err != nil {
		t.Fatal(err)
	}
	tree := core.NewTree(spec.Table.Schema, spec.ACs)
	cnt := core.NewCounter(spec.Table, spec.ACs, cuts, nil)
	st := &nodeState{node: tree.Root, counter: cnt, unskipped: b.unskippedUnder(tree.Root.Desc, nil)}
	ev := &cost.Evaluator{Queries: spec.Queries}
	for _, cut := range cuts {
		l := cnt.CountLeft(cut)
		r := cnt.Size() - l
		got := b.deltaSkip(st, cut, l, r)
		ld, rd := tree.Root.Desc.CowChildren(cut)
		want := int64(l)*int64(ev.SkippedQueries(ld)) +
			int64(r)*int64(ev.SkippedQueries(rd)) -
			int64(cnt.Size())*int64(ev.SkippedQueries(tree.Root.Desc))
		if got != want {
			t.Errorf("cut %s: incremental Δ=%d brute=%d", cut.Key(), got, want)
		}
	}
}

func TestGreedyMaxLeavesCap(t *testing.T) {
	spec := workload.Fig3(20000, 5)
	tree, err := Build(spec.Table, spec.ACs, Options{
		MinSize:   50,
		Cuts:      toCuts(spec.Cuts),
		Queries:   spec.Queries,
		MaxLeaves: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tree.Leaves()); got > 2 {
		t.Errorf("leaves = %d, cap was 2", got)
	}
}

func TestGreedyValidation(t *testing.T) {
	spec := workload.Fig3(100, 6)
	if _, err := Build(spec.Table, nil, Options{MinSize: 0, Cuts: toCuts(spec.Cuts)}); err == nil {
		t.Error("MinSize 0 must error")
	}
	if _, err := Build(spec.Table, nil, Options{MinSize: 1}); err == nil {
		t.Error("empty cut set must error")
	}
	if _, err := Build(spec.Table, nil, Options{MinSize: 1, Cuts: []core.Cut{core.AdvancedCut(3)}}); err == nil {
		t.Error("out-of-range AC must error")
	}
	if _, err := Build(spec.Table, nil, Options{MinSize: 1, Cuts: []core.Cut{core.UnaryCut(expr.Pred{Col: 99})}}); err == nil {
		t.Error("out-of-range column must error")
	}
}

func TestGreedyInfoGainAblation(t *testing.T) {
	// The InfoGain ablation criterion must still respect size bounds and
	// produce balanced cuts.
	spec := workload.Fig3(10000, 7)
	tree, err := Build(spec.Table, spec.ACs, Options{
		MinSize:   1000,
		Cuts:      toCuts(spec.Cuts),
		Queries:   spec.Queries,
		Criterion: InfoGain,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range tree.Leaves() {
		if leaf.Count != 0 && leaf.Count < 1000 {
			// Count is set during construction on the build table.
			t.Errorf("leaf with %d rows under InfoGain", leaf.Count)
		}
	}
}

func TestGreedyAllowSmallChild(t *testing.T) {
	// Sec. 6.2 relaxation: with AllowSmallChild, a split may strand fewer
	// than b rows on one side. Fig. 4's center record is the target case.
	spec := workload.Fig4(500, 8)
	tree, err := Build(spec.Table, spec.ACs, Options{
		MinSize:         500,
		Cuts:            toCuts(spec.Cuts),
		Queries:         spec.Queries,
		AllowSmallChild: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	small := 0
	for _, leaf := range tree.Leaves() {
		if leaf.Count < 500 {
			small++
		}
	}
	if small == 0 {
		t.Error("relaxed construction produced no small leaf to replicate")
	}
}

func TestTreeSubmodularCondition(t *testing.T) {
	// Fig. 3's workload contains a disjunction: greedy loses its
	// guarantee there (and indeed underperforms RL).
	fig3 := workload.Fig3(100, 9)
	if TreeSubmodular(fig3.Queries) {
		t.Error("disjunctive workload must not satisfy Lemma 1")
	}
	// A conjunctive range workload satisfies the sufficient condition.
	conj := []expr.Query{
		expr.AndQ("a", expr.Pred{Col: 0, Op: expr.Lt, Literal: 5}),
		expr.AndQ("b",
			expr.Pred{Col: 0, Op: expr.Ge, Literal: 2},
			expr.Pred{Col: 1, Op: expr.Le, Literal: 9}),
		{Name: "c", Root: expr.And(expr.NewAdv(0), expr.NewPred(expr.Pred{Col: 1, Op: expr.Gt, Literal: 1}))},
		{Name: "empty"},
	}
	if !TreeSubmodular(conj) {
		t.Error("conjunctive workload must satisfy Lemma 1")
	}
	// Nested OR inside an AND also breaks the condition.
	nested := []expr.Query{{Root: expr.And(
		expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 5}),
		expr.Or(
			expr.NewPred(expr.Pred{Col: 1, Op: expr.Lt, Literal: 3}),
			expr.NewPred(expr.Pred{Col: 1, Op: expr.Gt, Literal: 7})))}}
	if TreeSubmodular(nested) {
		t.Error("nested disjunction must not satisfy Lemma 1")
	}
}

// TestGreedyNearLowerBoundOnSubmodularWorkload: on a tree-submodular
// workload, greedy should approach the selectivity lower bound closely
// (the Theorem 2 guarantee in action).
func TestGreedyNearLowerBoundOnSubmodularWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	schema := table.MustSchema([]table.Column{
		{Name: "a", Kind: table.Numeric, Min: 0, Max: 999},
	})
	tbl := table.New(schema, 30000)
	for i := 0; i < 30000; i++ {
		tbl.AppendRow([]int64{int64(rng.Intn(1000))})
	}
	var queries []expr.Query
	var cuts []core.Cut
	for k := 0; k < 10; k++ {
		lo := int64(k * 100)
		queries = append(queries, expr.AndQ("q",
			expr.Pred{Col: 0, Op: expr.Ge, Literal: lo},
			expr.Pred{Col: 0, Op: expr.Lt, Literal: lo + 100}))
		cuts = append(cuts,
			core.UnaryCut(expr.Pred{Col: 0, Op: expr.Ge, Literal: lo}),
			core.UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: lo + 100}))
	}
	if !TreeSubmodular(queries) {
		t.Fatal("fixture must be submodular")
	}
	tree, err := Build(tbl, nil, Options{MinSize: 1500, Cuts: cuts, Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	layout := cost.FromTree("g", tree, tbl)
	frac := layout.AccessedFraction(queries)
	sel := cost.Selectivity(tbl, queries, nil)
	// Perfectly aligned cuts: greedy should reach within ~2x of the bound
	// (the paper reports within 2x on TPC-H).
	if frac > 2*sel {
		t.Errorf("greedy %.4f vs lower bound %.4f exceeds 2x on a submodular workload", frac, sel)
	}
}
