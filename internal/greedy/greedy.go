// Package greedy implements Algorithm 1 of the paper: top-down greedy
// qd-tree construction. Starting from a single root node holding all
// tuples, each splittable leaf (size ≥ 2b) is cut with the candidate
// predicate that maximizes the skipping capacity C(T ⊕ (p, n)), subject to
// both children having at least b tuples. Splitting stops when no cut
// strictly improves C(T).
//
// Because skipping is monotone in description containment, a child can only
// newly skip queries that reference the cut column, so each candidate is
// scored by re-checking just the parent's still-unskipped queries that
// mention that column. This preserves Algorithm 1's choices while cutting
// the constant factor dramatically.
package greedy

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/table"
)

// Options configure the greedy builder.
type Options struct {
	// MinSize is b, the minimum rows per block, in units of the rows of
	// the table passed to Build (scale it when building on a sample).
	MinSize int
	// Cuts is the candidate cut set P (Sec. 3.4).
	Cuts []core.Cut
	// Queries is the workload W the tree is optimized for.
	Queries []expr.Query
	// MaxLeaves caps the number of leaves; 0 means no cap.
	MaxLeaves int
	// AllowSmallChild relaxes the size constraint per Sec. 6.2: a split
	// may produce one child smaller than b (the other must reach b). Used
	// by the data-overlap extension.
	AllowSmallChild bool
	// Criterion selects the split-scoring rule; the default is the
	// paper's ΔC. InfoGain is the decision-tree-style ablation.
	Criterion Criterion
}

// Criterion selects how candidate cuts are scored.
type Criterion int

const (
	// DeltaSkip is the paper's greedy criterion: maximize C(T ⊕ (p,n)).
	DeltaSkip Criterion = iota
	// InfoGain is an ablation criterion: maximize split balance
	// (|L|·|R|), mimicking median-style decision-tree construction.
	InfoGain
)

// queryCols returns the set of column ordinals and advanced-cut indexes a
// query references.
func queryCols(q expr.Query) (cols map[int]bool, advs map[int]bool) {
	cols = make(map[int]bool)
	advs = make(map[int]bool)
	for _, p := range q.Preds() {
		cols[p.Col] = true
	}
	for _, a := range q.AdvRefs() {
		advs[a] = true
	}
	return cols, advs
}

type nodeState struct {
	node      *core.Node
	counter   *core.Counter
	unskipped []int // workload indexes not yet skipped by node.Desc
}

// Builder holds the immutable inputs of one greedy construction.
type Builder struct {
	tbl     *table.Table
	acs     []expr.AdvCut
	opt     Options
	eval    *cost.Evaluator
	refCols []map[int]bool // per-query referenced columns
	refAdvs []map[int]bool // per-query referenced advanced cuts
	inLeft  []bool         // scratch for Counter.Split
	// PerQueryWeight optionally re-weights each query's contribution to
	// the greedy criterion (used by the two-tree extension, Sec. 6.3).
	PerQueryWeight func(q int, newlySkipped int64) int64
}

// NewBuilder validates options and prepares per-query metadata.
func NewBuilder(tbl *table.Table, acs []expr.AdvCut, opt Options) (*Builder, error) {
	if opt.MinSize < 1 {
		return nil, fmt.Errorf("greedy: MinSize must be >= 1, got %d", opt.MinSize)
	}
	if len(opt.Cuts) == 0 {
		return nil, fmt.Errorf("greedy: no candidate cuts")
	}
	for _, c := range opt.Cuts {
		if c.IsAdv && c.Adv >= len(acs) {
			return nil, fmt.Errorf("greedy: cut references AC%d but only %d advanced cuts defined", c.Adv, len(acs))
		}
		if !c.IsAdv && (c.Pred.Col < 0 || c.Pred.Col >= tbl.Schema.NumCols()) {
			return nil, fmt.Errorf("greedy: cut on out-of-range column %d", c.Pred.Col)
		}
	}
	b := &Builder{
		tbl:  tbl,
		acs:  acs,
		opt:  opt,
		eval: &cost.Evaluator{Queries: opt.Queries},
	}
	for _, q := range opt.Queries {
		cols, advs := queryCols(q)
		b.refCols = append(b.refCols, cols)
		b.refAdvs = append(b.refAdvs, advs)
	}
	b.inLeft = make([]bool, tbl.N)
	return b, nil
}

// Build runs Algorithm 1 and returns the constructed qd-tree.
func Build(tbl *table.Table, acs []expr.AdvCut, opt Options) (*core.Tree, error) {
	b, err := NewBuilder(tbl, acs, opt)
	if err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// Build runs the construction loop.
func (b *Builder) Build() *core.Tree {
	tree := core.NewTree(b.tbl.Schema, b.acs)
	root := &nodeState{
		node:    tree.Root,
		counter: core.NewCounter(b.tbl, b.acs, b.opt.Cuts, nil),
	}
	root.unskipped = b.unskippedUnder(tree.Root.Desc, nil)
	tree.Root.Count = b.tbl.N

	queue := []*nodeState{root}
	leaves := 1
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		if b.opt.MaxLeaves > 0 && leaves >= b.opt.MaxLeaves {
			continue
		}
		cut, ok := b.bestCut(st)
		if !ok {
			continue
		}
		left, right := tree.Split(st.node, cut)
		lc, rc := st.counter.Split(cut, b.inLeft)
		left.Count, right.Count = lc.Size(), rc.Size()
		ls := &nodeState{node: left, counter: lc, unskipped: b.unskippedUnder(left.Desc, st.unskipped)}
		rs := &nodeState{node: right, counter: rc, unskipped: b.unskippedUnder(right.Desc, st.unskipped)}
		queue = append(queue, ls, rs)
		leaves++
	}
	tree.Leaves()
	return tree
}

// unskippedUnder returns the workload indexes whose queries still intersect
// d, drawn from the parent's unskipped set (nil = all queries).
func (b *Builder) unskippedUnder(d core.Desc, parent []int) []int {
	var out []int
	if parent == nil {
		for i, q := range b.opt.Queries {
			if d.QueryMayMatch(q) {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range parent {
		if d.QueryMayMatch(b.opt.Queries[i]) {
			out = append(out, i)
		}
	}
	return out
}

// splittable reports whether a node of the given size may be split at all.
func (b *Builder) splittable(size int) bool {
	if b.opt.AllowSmallChild {
		return size > b.opt.MinSize
	}
	return size >= 2*b.opt.MinSize
}

// legalSizes reports whether child sizes satisfy the block-size constraint.
func (b *Builder) legalSizes(l, r int) bool {
	if l == 0 || r == 0 {
		return false
	}
	if b.opt.AllowSmallChild {
		return l >= b.opt.MinSize || r >= b.opt.MinSize
	}
	return l >= b.opt.MinSize && r >= b.opt.MinSize
}

// bestCut scores every legal candidate on node st and returns the argmax.
// ok is false when no legal cut strictly improves the criterion.
func (b *Builder) bestCut(st *nodeState) (core.Cut, bool) {
	size := st.counter.Size()
	if !b.splittable(size) {
		return core.Cut{}, false
	}
	var best core.Cut
	bestScore := int64(0)
	found := false
	for _, cut := range b.opt.Cuts {
		l := st.counter.CountLeft(cut)
		r := size - l
		if !b.legalSizes(l, r) {
			continue
		}
		var score int64
		switch b.opt.Criterion {
		case InfoGain:
			score = int64(l) * int64(r)
		default:
			score = b.deltaSkip(st, cut, l, r)
		}
		if score > bestScore {
			bestScore, best, found = score, cut, true
		}
	}
	return best, found
}

// deltaSkip computes C(T ⊕ (p,n)) − C(T) for the candidate: each query
// newly skipped by a child contributes that child's size. Only the
// parent's unskipped queries referencing the cut column (or advanced cut)
// can change status — skipping is monotone under description containment.
func (b *Builder) deltaSkip(st *nodeState, cut core.Cut, l, r int) int64 {
	ld, rd := st.node.Desc.CowChildren(cut)
	var delta int64
	for _, qi := range st.unskipped {
		if !b.references(qi, cut) {
			continue
		}
		q := b.opt.Queries[qi]
		var gain int64
		if !ld.QueryMayMatch(q) {
			gain += int64(l)
		}
		if !rd.QueryMayMatch(q) {
			gain += int64(r)
		}
		if gain == 0 {
			continue
		}
		if b.PerQueryWeight != nil {
			gain = b.PerQueryWeight(qi, gain)
		}
		delta += gain
	}
	return delta
}

func (b *Builder) references(qi int, cut core.Cut) bool {
	if cut.IsAdv {
		return b.refAdvs[qi][cut.Adv]
	}
	return b.refCols[qi][cut.Pred.Col]
}

// BestCut evaluates the greedy criterion (Algorithm 1's argmax) for a
// standalone node given its description and an indexed Counter over its
// rows, without running a full Build. The adaptive-refinement extension
// uses this to split overflowing leaves in place as data arrives
// (Problem 2 / the incremental re-organization sketched in Sec. 8).
func (b *Builder) BestCut(desc core.Desc, counter *core.Counter) (core.Cut, bool) {
	st := &nodeState{
		node:      &core.Node{Desc: desc},
		counter:   counter,
		unskipped: b.unskippedUnder(desc, nil),
	}
	return b.bestCut(st)
}

// TreeSubmodular reports whether a workload satisfies the paper's Lemma 1
// sufficient condition for tree-submodularity: every query is a pure
// conjunction of unary predicates (and advanced-cut references). Under
// this condition the conjunction of two cuts cannot skip any query beyond
// Q(p1) ∪ Q(p2), so greedy construction enjoys the Theorem 2
// approximation guarantees (offline (1 − b/|V|·(b log2 e)/(2|V|))·OPT and
// the online bound). Disjunctive queries break the condition — exactly
// the Fig. 3 scenario where greedy underperforms the RL constructor.
func TreeSubmodular(queries []expr.Query) bool {
	var conjunctive func(n *expr.Node) bool
	conjunctive = func(n *expr.Node) bool {
		if n == nil {
			return true
		}
		switch n.Kind {
		case expr.KindPred, expr.KindAdv:
			return true
		case expr.KindAnd:
			for _, c := range n.Children {
				if !conjunctive(c) {
					return false
				}
			}
			return true
		case expr.KindOr:
			return false
		}
		return false
	}
	for _, q := range queries {
		if !conjunctive(q.Root) {
			return false
		}
	}
	return true
}
