// Aggregate kernels over encoded columns. Like the filter kernels in
// encoding.go, these consume a column in its on-disk encoding plus a
// SelVec selection bitmap and reduce without materializing int64 slices
// where the encoding allows it:
//
//   - RLE columns reduce once per run: SUM adds run-value × selected-run-
//     length (a popcount over the bitmap span), MIN/MAX compare each run's
//     value once if any of its rows is selected.
//   - FOR/DICT columns reduce in code space — SUM accumulates packed codes
//     and applies the frame base once per batch, MIN/MAX track codes.
//   - PLAIN columns read values at the selected positions only.
package blockstore

import (
	"math/bits"
	"sort"
)

// CountRange returns the number of selected bits in [lo, hi).
func (s *SelVec) CountRange(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-(hi-1)&63)
	if loW == hiW {
		return bits.OnesCount64(s[loW] & loMask & hiMask)
	}
	n := bits.OnesCount64(s[loW] & loMask)
	for w := loW + 1; w < hiW; w++ {
		n += bits.OnesCount64(s[w])
	}
	return n + bits.OnesCount64(s[hiW]&hiMask)
}

// ForEach invokes fn for every selected bit in [0, n), in ascending
// order. Kernels uphold the invariant that bits at and above n are zero,
// so only full words are walked.
func (s *SelVec) ForEach(n int, fn func(i int)) {
	words := (n + 63) / 64
	for w := 0; w < words; w++ {
		word := s[w]
		base := w << 6
		for word != 0 {
			fn(base + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// SumSelected returns the sum and count of the column's values at the
// selected rows of batch [start, start+n). RLE columns never decode: each
// run contributes value × selected-run-length.
func (v *ColVec) SumSelected(sel *SelVec, start, n int) (sum, cnt int64) {
	switch v.Enc {
	case EncRLE:
		r := sort.Search(len(v.runEnds), func(k int) bool { return v.runEnds[k] > int32(start) })
		for i := 0; i < n; {
			end := int(v.runEnds[r]) - start
			if end > n {
				end = n
			}
			if c := int64(sel.CountRange(i, end)); c > 0 {
				sum += v.runVals[r] * c
				cnt += c
			}
			i = end
			r++
		}
		return sum, cnt
	case EncFOR, EncDict:
		var codes uint64
		sel.ForEach(n, func(i int) {
			codes += v.code(start + i)
			cnt++
		})
		// value = base + code, so Σ values = cnt·base + Σ codes.
		return v.base*cnt + int64(codes), cnt
	}
	sel.ForEach(n, func(i int) {
		sum += v.Get(start + i)
		cnt++
	})
	return sum, cnt
}

// MinMaxSelected returns the minimum and maximum of the column's values at
// the selected rows of batch [start, start+n); ok is false when no row is
// selected. RLE columns compare once per selected run.
func (v *ColVec) MinMaxSelected(sel *SelVec, start, n int) (lo, hi int64, ok bool) {
	switch v.Enc {
	case EncRLE:
		r := sort.Search(len(v.runEnds), func(k int) bool { return v.runEnds[k] > int32(start) })
		for i := 0; i < n; {
			end := int(v.runEnds[r]) - start
			if end > n {
				end = n
			}
			if sel.CountRange(i, end) > 0 {
				val := v.runVals[r]
				if !ok || val < lo {
					lo = val
				}
				if !ok || val > hi {
					hi = val
				}
				ok = true
			}
			i = end
			r++
		}
		return lo, hi, ok
	case EncFOR, EncDict:
		var cLo, cHi uint64
		sel.ForEach(n, func(i int) {
			c := v.code(start + i)
			if !ok || c < cLo {
				cLo = c
			}
			if !ok || c > cHi {
				cHi = c
			}
			ok = true
		})
		if !ok {
			return 0, 0, false
		}
		return v.base + int64(cLo), v.base + int64(cHi), true
	}
	sel.ForEach(n, func(i int) {
		val := v.Get(start + i)
		if !ok || val < lo {
			lo = val
		}
		if !ok || val > hi {
			hi = val
		}
		ok = true
	})
	return lo, hi, ok
}
