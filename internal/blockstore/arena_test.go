package blockstore

import (
	"math/rand"
	"testing"

	"repro/internal/table"
)

// arenaTestStore writes a 5-column table chosen to hit every encoding:
// constant (RLE), tiny categorical domain (DICT), narrow numeric range
// (FOR), wide random values (plain-ish), and a ramp.
func arenaTestStore(t *testing.T, version int) *Store {
	t.Helper()
	s := table.MustSchema([]table.Column{
		{Name: "const", Kind: table.Numeric, Min: 7, Max: 7},
		{Name: "cat", Kind: table.Categorical, Dom: 3, Dict: []string{"a", "b", "c"}},
		{Name: "narrow", Kind: table.Numeric, Min: 100, Max: 131},
		{Name: "wide", Kind: table.Numeric, Min: -1 << 40, Max: 1 << 40},
		{Name: "ramp", Kind: table.Numeric, Min: 0, Max: 4000},
	})
	const n = 4000
	rng := rand.New(rand.NewSource(3))
	cols := make([][]int64, 5)
	for c := range cols {
		cols[c] = make([]int64, n)
	}
	for r := 0; r < n; r++ {
		cols[0][r] = 7
		cols[1][r] = int64(rng.Intn(3))
		cols[2][r] = 100 + int64(rng.Intn(32))
		cols[3][r] = rng.Int63n(1<<41) - 1<<40
		cols[4][r] = int64(r)
	}
	tbl, err := table.FromColumns(s, cols)
	if err != nil {
		t.Fatal(err)
	}
	bids := make([]int, n)
	for i := range bids {
		bids[i] = i / (n / 8) // 8 blocks of 500 rows
	}
	st, err := WriteOpts(t.TempDir(), tbl, bids, 8, WriteOptions{FormatVersion: version})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestReadColVecsArenaMatchesFresh reads every block through one reused
// arena — twice, so scratch aliasing across reads would show — and
// compares decoded values and bytesRead against the allocating path,
// over column subsets that include gaps (which split the coalesced
// preads).
func TestReadColVecsArenaMatchesFresh(t *testing.T) {
	for _, version := range []int{FormatV1, FormatV2} {
		st := arenaTestStore(t, version)
		defer st.Close()
		subsets := [][]int{nil, {0}, {4}, {1, 3}, {0, 2, 4}, {2, 3, 4}}
		ar := GetArena()
		defer PutArena(ar)
		for pass := 0; pass < 2; pass++ {
			for b := 0; b < st.NumBlocks(); b++ {
				for _, cols := range subsets {
					want, wantRows, wantBytes, err := st.ReadColVecs(b, cols)
					if err != nil {
						t.Fatal(err)
					}
					// Decode the fresh vectors before the arena read: if the
					// arena pass aliased their storage, the comparison below
					// would still catch it.
					wantVals := make([][]int64, len(want))
					for c, v := range want {
						if v != nil {
							wantVals[c] = v.Decode(nil)
						}
					}
					got, rows, bytes, err := st.ReadColVecsArena(b, cols, ar)
					if err != nil {
						t.Fatal(err)
					}
					if rows != wantRows || bytes != wantBytes {
						t.Fatalf("v%d block %d cols %v: rows/bytes %d/%d, want %d/%d",
							version, b, cols, rows, bytes, wantRows, wantBytes)
					}
					for c := range want {
						if (got[c] == nil) != (wantVals[c] == nil) {
							t.Fatalf("v%d block %d cols %v: col %d nil mismatch", version, b, cols, c)
						}
						if got[c] == nil {
							continue
						}
						gv := got[c].Decode(nil)
						for i := range wantVals[c] {
							if gv[i] != wantVals[c][i] {
								t.Fatalf("v%d block %d col %d row %d: %d want %d",
									version, b, c, i, gv[i], wantVals[c][i])
							}
						}
					}
				}
			}
		}
	}
}

// TestReadColVecsArenaZeroAllocs pins the headline property: once an
// arena is warm, reading blocks allocates nothing.
func TestReadColVecsArenaZeroAllocs(t *testing.T) {
	for _, version := range []int{FormatV1, FormatV2} {
		st := arenaTestStore(t, version)
		defer st.Close()
		ar := GetArena()
		defer PutArena(ar)
		for b := 0; b < st.NumBlocks(); b++ { // warm file handles + scratch
			if _, _, _, err := st.ReadColVecsArena(b, nil, ar); err != nil {
				t.Fatal(err)
			}
		}
		b := 0
		allocs := testing.AllocsPerRun(50, func() {
			if _, _, _, err := st.ReadColVecsArena(b, nil, ar); err != nil {
				t.Fatal(err)
			}
			b = (b + 1) % st.NumBlocks()
		})
		if allocs != 0 {
			t.Errorf("v%d: %v allocs per warmed arena read, want 0", version, allocs)
		}
	}
}

// TestArenaWantColsRejectsBadIndex keeps the arena path's validation in
// lockstep with wantCols.
func TestArenaWantColsRejectsBadIndex(t *testing.T) {
	st := arenaTestStore(t, FormatV2)
	defer st.Close()
	ar := GetArena()
	defer PutArena(ar)
	if _, _, _, err := st.ReadColVecsArena(0, []int{99}, ar); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, _, _, err := st.ReadColVecsArena(0, []int{-1}, ar); err == nil {
		t.Fatal("negative column accepted")
	}
}
