package blockstore

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/table"
)

// encDec encodes vals, parses the payload back, and fails on any error.
func encDec(t *testing.T, vals []int64, kind table.Kind) (Encoding, *ColVec) {
	t.Helper()
	enc, payload := encodeColumn(vals, kind)
	v, err := parseColVec(enc, len(vals), payload)
	if err != nil {
		t.Fatalf("parse %v payload: %v", enc, err)
	}
	return enc, v
}

// genColumn draws a random column shaped to exercise one encoding family.
func genColumn(rng *rand.Rand, n int) ([]int64, table.Kind) {
	vals := make([]int64, n)
	kind := table.Numeric
	switch rng.Intn(6) {
	case 0: // categorical small domain -> DICT
		kind = table.Categorical
		dom := int64(1 + rng.Intn(40))
		for i := range vals {
			vals[i] = rng.Int63n(dom)
		}
	case 1: // sorted runs -> RLE
		v := int64(rng.Intn(100))
		for i := range vals {
			if rng.Intn(50) == 0 {
				v += int64(rng.Intn(10))
			}
			vals[i] = v
		}
	case 2: // narrow numeric range -> FOR
		base := rng.Int63() - rng.Int63()
		span := int64(1 + rng.Intn(100_000))
		for i := range vals {
			vals[i] = base + rng.Int63n(span)
		}
	case 3: // wide values -> PLAIN
		for i := range vals {
			vals[i] = rng.Int63() - rng.Int63()
		}
	case 4: // constant column (width 0)
		c := rng.Int63() - rng.Int63()
		for i := range vals {
			vals[i] = c
		}
	default: // extremes
		opts := []int64{math.MinInt64, math.MaxInt64, 0, -1, 1}
		for i := range vals {
			vals[i] = opts[rng.Intn(len(opts))]
		}
	}
	return vals, kind
}

// TestEncodeDecodeProperty: decode(encode(x)) == x for every encoding the
// chooser picks, across random shapes, including Get and DecodeRange.
func TestEncodeDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := make(map[Encoding]int)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(3000)
		vals, kind := genColumn(rng, n)
		enc, v := encDec(t, vals, kind)
		seen[enc]++
		dec := v.Decode(nil)
		for i := range vals {
			if dec[i] != vals[i] {
				t.Fatalf("trial %d enc %v: row %d decoded %d want %d", trial, enc, i, dec[i], vals[i])
			}
		}
		// Random sub-range decode and point access.
		lo := rng.Intn(n)
		cnt := 1 + rng.Intn(n-lo)
		sub := make([]int64, cnt)
		v.DecodeRange(sub, lo, cnt)
		for i := 0; i < cnt; i++ {
			if sub[i] != vals[lo+i] {
				t.Fatalf("trial %d enc %v: DecodeRange[%d+%d] = %d want %d", trial, enc, lo, i, sub[i], vals[lo+i])
			}
		}
		if i := rng.Intn(n); v.Get(i) != vals[i] {
			t.Fatalf("trial %d enc %v: Get(%d) = %d want %d", trial, enc, i, v.Get(i), vals[i])
		}
	}
	for _, e := range []Encoding{EncPlain, EncFOR, EncDict, EncRLE} {
		if seen[e] == 0 {
			t.Errorf("encoding %v never chosen across trials", e)
		}
	}
}

// randPred draws a predicate whose literals straddle the column's range.
func randPred(rng *rand.Rand, vals []int64) expr.Pred {
	pick := func() int64 {
		switch rng.Intn(4) {
		case 0:
			return vals[rng.Intn(len(vals))]
		case 1:
			return vals[rng.Intn(len(vals))] + int64(rng.Intn(7)) - 3
		case 2:
			return int64(rng.Intn(1000)) - 500
		default:
			opts := []int64{math.MinInt64, math.MaxInt64, math.MinInt64 + 1, math.MaxInt64 - 1, 0}
			return opts[rng.Intn(len(opts))]
		}
	}
	ops := []expr.Op{expr.Lt, expr.Le, expr.Gt, expr.Ge, expr.Eq, expr.In}
	op := ops[rng.Intn(len(ops))]
	if op == expr.In {
		set := make([]int64, 1+rng.Intn(8))
		for i := range set {
			set[i] = pick()
		}
		return expr.NewIn(0, set)
	}
	return expr.Pred{Col: 0, Op: op, Literal: pick()}
}

// TestFilterKernelsMatchReference: every encoding's Filter agrees with
// row-at-a-time Pred.EvalValue over random columns, predicates, and batch
// offsets — the kernel-level half of the bit-identical guarantee.
func TestFilterKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(2600)
		vals, kind := genColumn(rng, n)
		enc, v := encDec(t, vals, kind)
		p := randPred(rng, vals)
		var sel SelVec
		for start := 0; start < n; start += BatchSize {
			cnt := n - start
			if cnt > BatchSize {
				cnt = BatchSize
			}
			v.Filter(p, start, cnt, &sel)
			for i := 0; i < cnt; i++ {
				want := p.EvalValue(vals[start+i])
				if sel.Get(i) != want {
					t.Fatalf("trial %d enc %v pred %v: row %d got %v want %v (val %d)",
						trial, enc, p, start+i, sel.Get(i), want, vals[start+i])
				}
			}
			for i := cnt; i < BatchSize; i++ {
				if sel.Get(i) {
					t.Fatalf("trial %d enc %v: bit %d set beyond batch count %d", trial, enc, i, cnt)
				}
			}
		}
	}
}

func TestSelVecOps(t *testing.T) {
	var s SelVec
	// SetFirst on a dirty vector must clear the bits above n (regression:
	// a full batch followed by a partial batch must not leak stale bits).
	s.SetFirst(BatchSize)
	s.SetFirst(500)
	if s.Count() != 500 {
		t.Fatalf("SetFirst(500) after SetFirst(%d): count %d", BatchSize, s.Count())
	}
	s.Zero()
	s.SetFirst(70)
	if s.Count() != 70 || !s.AllFirst(70) || s.AllFirst(71) {
		t.Fatalf("SetFirst(70): count %d", s.Count())
	}
	s.Zero()
	if !s.None() {
		t.Fatal("Zero left bits set")
	}
	s.SetRange(3, 130)
	if s.Count() != 127 || s.Get(2) || !s.Get(3) || !s.Get(129) || s.Get(130) {
		t.Fatalf("SetRange: count %d", s.Count())
	}
	var o SelVec
	o.SetRange(100, 200)
	s.And(&o)
	if s.Count() != 30 {
		t.Fatalf("And: count %d", s.Count())
	}
	o.Zero()
	o.Set(5)
	s.Or(&o)
	if s.Count() != 31 || !s.Get(5) {
		t.Fatalf("Or: count %d", s.Count())
	}
}

// FuzzEncodeDecode round-trips arbitrary fuzzer-shaped columns through the
// chooser, then checks an equality filter against the reference — the
// encoder must never panic, never lose a value, and never mis-filter.
func FuzzEncodeDecode(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, false)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255}, true)
	f.Add([]byte{128, 0, 1, 7, 7, 7, 7, 42}, false)
	f.Fuzz(func(t *testing.T, data []byte, categorical bool) {
		if len(data) == 0 {
			return
		}
		// Interpret the fuzz payload as a value stream: each byte extends
		// or perturbs the previous value so runs, narrow ranges, and wild
		// jumps all occur.
		vals := make([]int64, 0, len(data))
		v := int64(0)
		for _, b := range data {
			switch b % 4 {
			case 0:
				v += int64(b) // drift
			case 1:
				v = int64(int8(b)) // reset small
			case 2:
				v = v<<7 | int64(b) // grow wide
			case 3:
				// repeat -> runs
			}
			if categorical && v < 0 {
				v = -v
			}
			vals = append(vals, v)
		}
		kind := table.Numeric
		if categorical {
			kind = table.Categorical
		}
		enc, payload := encodeColumn(vals, kind)
		cv, err := parseColVec(enc, len(vals), payload)
		if err != nil {
			t.Fatalf("enc %v: parse own payload: %v", enc, err)
		}
		dec := cv.Decode(nil)
		for i := range vals {
			if dec[i] != vals[i] {
				t.Fatalf("enc %v: row %d decoded %d want %d", enc, i, dec[i], vals[i])
			}
		}
		p := expr.Pred{Col: 0, Op: expr.Eq, Literal: vals[len(vals)/2]}
		var sel SelVec
		for start := 0; start < len(vals); start += BatchSize {
			cnt := len(vals) - start
			if cnt > BatchSize {
				cnt = BatchSize
			}
			cv.Filter(p, start, cnt, &sel)
			for i := 0; i < cnt; i++ {
				if sel.Get(i) != (vals[start+i] == p.Literal) {
					t.Fatalf("enc %v: filter mismatch at row %d", enc, start+i)
				}
			}
		}
	})
}
