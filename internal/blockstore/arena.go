package blockstore

// Arena is a per-worker scratch reservoir for the scan hot path. One
// block read used to cost one payload allocation per wanted column plus
// a ColVec (and RLE run slices) each — per block, per query, per
// worker. An arena owns all of that storage and hands it back out on
// every read, so a steady-state scan allocates nothing per block.
//
// Contract: an Arena is single-owner (one scan worker); the vecs
// returned by Store.ReadColVecsArena — and everything they reference —
// are valid only until the same arena's next ReadColVecsArena call.
// Plain-converted delta vectors are likewise valid until ResetPlain.
// Arenas come from a process-wide sync.Pool (GetArena/PutArena) so
// concurrent queries reuse warmed buffers; ArenaPoolStats feeds the
// qd_arena_pool_* metrics.

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// colScratch is the reusable per-column storage of one arena.
type colScratch struct {
	dec     []int64 // BatchSize decode buffer (advanced cuts, projection, grouping)
	runVals []int64 // RLE run scratch, grown to the widest run count seen
	runEnds []int32
}

// Arena holds reusable scan scratch. The zero value is ready to use.
type Arena struct {
	payload   []byte // coalesced column payload buffer (+packSlack tail)
	vecs      []ColVec
	ptrs      []*ColVec
	want      []bool
	cols      []colScratch
	decodedAt []int

	// Delta-conversion space (Plain/ResetPlain).
	plainBuf  []byte
	plainOff  int
	plainVecs []ColVec
	plainN    int
}

var (
	arenaPool   = sync.Pool{New: func() any { arenaMisses.Add(1); return new(Arena) }}
	arenaGets   atomic.Uint64
	arenaMisses atomic.Uint64
)

// GetArena returns a pooled arena, allocating a fresh one on pool miss.
func GetArena() *Arena {
	arenaGets.Add(1)
	return arenaPool.Get().(*Arena)
}

// PutArena returns an arena to the pool. The caller must hold no
// references into it afterwards.
func PutArena(a *Arena) {
	if a != nil {
		arenaPool.Put(a)
	}
}

// ArenaPoolStats reports cumulative arena pool gets and misses (a miss
// allocated a fresh arena). gets-misses is the number of reuses.
func ArenaPoolStats() (gets, misses uint64) {
	return arenaGets.Load(), arenaMisses.Load()
}

// grow sizes the per-column structures for an ncols-wide schema,
// keeping existing scratch when already wide enough.
func (a *Arena) grow(ncols int) {
	if len(a.vecs) >= ncols {
		return
	}
	a.vecs = make([]ColVec, ncols)
	a.ptrs = make([]*ColVec, ncols)
	a.want = make([]bool, ncols)
	cols := make([]colScratch, ncols)
	copy(cols, a.cols) // keep already-grown decode/run buffers
	a.cols = cols
	a.decodedAt = make([]int, ncols)
}

// buffer returns the payload buffer sized to n+packSlack bytes.
func (a *Arena) buffer(n int64) []byte {
	need := int(n) + packSlack
	if cap(a.payload) < need {
		a.payload = make([]byte, need)
	}
	return a.payload[:need]
}

// wantCols is wantCols backed by arena storage.
func (a *Arena) wantCols(cols []int, ncols int) ([]bool, error) {
	a.grow(ncols)
	want := a.want[:ncols]
	if cols == nil {
		for i := range want {
			want[i] = true
		}
		return want, nil
	}
	for i := range want {
		want[i] = false
	}
	for _, c := range cols {
		if c < 0 || c >= ncols {
			return nil, errColRange(c)
		}
		want[c] = true
	}
	return want, nil
}

// DecodeBuf returns the reusable BatchSize decode buffer for column c.
// The arena must already be grown past c (any ReadColVecsArena or
// DecodedAt call does that).
func (a *Arena) DecodeBuf(c int) []int64 {
	cs := &a.cols[c]
	if cs.dec == nil {
		cs.dec = make([]int64, BatchSize)
	}
	return cs.dec
}

// DecodedAt returns the per-column batch-start memo, reset to -1 — the
// late-materialization bookkeeping projection and grouping loops share.
func (a *Arena) DecodedAt(ncols int) []int {
	a.grow(ncols)
	d := a.decodedAt[:ncols]
	for i := range d {
		d[i] = -1
	}
	return d
}

// ResetPlain recycles the delta-conversion space. Vectors from earlier
// Plain calls on this arena become invalid.
func (a *Arena) ResetPlain() {
	a.plainOff, a.plainN = 0, 0
}

// Plain converts vals into a PLAIN column vector backed by arena
// scratch — the allocation-free counterpart of PlainColVec for delta
// tables, valid until ResetPlain.
func (a *Arena) Plain(vals []int64) *ColVec {
	need := 8 * len(vals)
	if a.plainOff+need > len(a.plainBuf) {
		// Grow without copying: vectors already carved keep the old
		// backing array alive and intact.
		size := 2*len(a.plainBuf) + need
		a.plainBuf = make([]byte, size)
		a.plainOff = 0
	}
	raw := a.plainBuf[a.plainOff : a.plainOff+need : a.plainOff+need]
	a.plainOff += need
	for i, v := range vals {
		binary.LittleEndian.PutUint64(raw[8*i:], uint64(v))
	}
	if a.plainN == len(a.plainVecs) {
		a.plainVecs = append(a.plainVecs, ColVec{})
	}
	v := &a.plainVecs[a.plainN]
	a.plainN++
	*v = ColVec{Enc: EncPlain, N: len(vals), raw: raw}
	return v
}
