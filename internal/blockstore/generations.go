package blockstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/table"
)

// Generations give a store root zero-downtime re-layout semantics: each
// layout version lives in its own immutable gen_NNNNNN directory, and a
// CURRENT pointer file names the live one. A re-layout writes the next
// generation beside the live one, flips CURRENT atomically (write-temp +
// rename), and garbage-collects retired directories once readers drain —
// the storage half of the serve subsystem's log → drift → replan → swap
// loop.

// currentFile is the pointer file naming the live generation.
const currentFile = "CURRENT"

const genPrefix = "gen_"

// GenDir returns the directory of generation id under root.
func GenDir(root string, id int) string {
	return filepath.Join(root, fmt.Sprintf("%s%06d", genPrefix, id))
}

// WriteGeneration materializes a partitioned table as generation id under
// root, in the default block format (v2). The directory must not already
// exist — generations are immutable once written. The CURRENT pointer is
// not touched; call SetCurrent after the write (and any validation)
// succeeds.
func WriteGeneration(root string, id int, tbl *table.Table, bids []int, numBlocks int) (*Store, error) {
	return WriteGenerationOpts(root, id, tbl, bids, numBlocks, WriteOptions{})
}

// WriteGenerationOpts is WriteGeneration with explicit format options —
// the hook the serving subsystem uses so online re-layouts rewrite tables
// into encoded v2 generations (or pinned v1, for staged migrations).
func WriteGenerationOpts(root string, id int, tbl *table.Table, bids []int, numBlocks int, opt WriteOptions) (*Store, error) {
	if id < 1 {
		return nil, fmt.Errorf("blockstore: generation id must be >= 1 (got %d)", id)
	}
	dir := GenDir(root, id)
	if _, err := os.Stat(dir); err == nil {
		return nil, fmt.Errorf("blockstore: generation %d already exists at %s", id, dir)
	}
	return WriteOpts(dir, tbl, bids, numBlocks, opt)
}

// SetCurrent atomically points root's CURRENT file at generation id: the
// pointer is written to a temp file and renamed into place, so a reader
// never observes a partial pointer and a crash leaves the old generation
// live.
func SetCurrent(root string, id int) error {
	if _, err := os.Stat(filepath.Join(GenDir(root, id), "catalog.json")); err != nil {
		return fmt.Errorf("blockstore: cannot set CURRENT to generation %d: %w", id, err)
	}
	tmp := filepath.Join(root, currentFile+".tmp")
	if err := os.WriteFile(tmp, []byte(strconv.Itoa(id)+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(root, currentFile))
}

// CurrentGeneration reads root's CURRENT pointer.
func CurrentGeneration(root string) (int, error) {
	data, err := os.ReadFile(filepath.Join(root, currentFile))
	if err != nil {
		return 0, fmt.Errorf("blockstore: read CURRENT: %w", err)
	}
	id, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil || id < 1 {
		return 0, fmt.Errorf("blockstore: CURRENT holds %q, not a generation id", strings.TrimSpace(string(data)))
	}
	return id, nil
}

// OpenCurrent opens the live generation of a root and reports its id.
func OpenCurrent(root string) (*Store, int, error) {
	id, err := CurrentGeneration(root)
	if err != nil {
		return nil, 0, err
	}
	st, err := Open(GenDir(root, id))
	if err != nil {
		return nil, 0, fmt.Errorf("blockstore: open generation %d: %w", id, err)
	}
	return st, id, nil
}

// ListGenerations returns the generation ids present under root, sorted
// ascending. Directories that merely resemble generations (unparsable
// suffix) are ignored.
func ListGenerations(root string) ([]int, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var ids []int
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), genPrefix) {
			continue
		}
		id, err := strconv.Atoi(strings.TrimPrefix(e.Name(), genPrefix))
		if err != nil || id < 1 {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// RemoveGeneration deletes a retired generation directory. The live
// generation is refused — flip CURRENT first. This is the GC hook the
// serve subsystem calls after a swap drains.
func RemoveGeneration(root string, id int) error {
	if cur, err := CurrentGeneration(root); err == nil && cur == id {
		return fmt.Errorf("blockstore: refusing to remove live generation %d", id)
	}
	return os.RemoveAll(GenDir(root, id))
}
