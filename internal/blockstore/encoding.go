// Per-column encodings for block format v2. Each column of a block is
// written in the cheapest of four encodings, chosen at write time from the
// actual values:
//
//	PLAIN  fixed-width 8-byte little-endian values (the v1 layout)
//	FOR    frame-of-reference bit-packing: base + w-bit offsets, for
//	       numeric columns whose block-local range is narrow
//	DICT   bit-packed dictionary codes for categorical columns, reusing
//	       the dictionary persisted in the catalog (codes are already
//	       dictionary positions, so no per-block dictionary is stored)
//	RLE    run-length (value, length) pairs, for sorted or
//	       low-cardinality runs
//
// The filter kernels below evaluate predicates directly over the encoded
// representation: comparisons against FOR/DICT columns are translated into
// code space once per batch — equality on a dictionary column compares
// packed codes without decoding — and RLE evaluates each run's value once,
// filling whole spans of the selection bitmap. Selection is tracked in
// batch-of-BatchSize bitmaps (SelVec) so AND/OR combination and match
// counting are word-parallel.
package blockstore

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/expr"
	"repro/internal/table"
)

// Encoding identifies one column encoding in block format v2.
type Encoding uint8

// Column encodings. The numeric values are persisted in catalogs and block
// files and must not be renumbered.
const (
	EncPlain Encoding = 0
	EncFOR   Encoding = 1
	EncDict  Encoding = 2
	EncRLE   Encoding = 3
)

// String returns the encoding name as reported by qdbench -exp compress.
func (e Encoding) String() string {
	switch e {
	case EncPlain:
		return "plain"
	case EncFOR:
		return "for"
	case EncDict:
		return "dict"
	case EncRLE:
		return "rle"
	}
	return fmt.Sprintf("enc(%d)", uint8(e))
}

// maxPackWidth caps FOR/DICT bit widths so a single unaligned 64-bit load
// (8-byte read at bit offset 0..7) always covers a full code. Ranges wider
// than 56 bits save little over PLAIN and fall back to it.
const maxPackWidth = 56

// packSlack is the extra zero bytes kept after a packed payload so code
// extraction can issue 8-byte loads at any in-range bit offset.
const packSlack = 8

// BatchSize is the selection-bitmap batch width of the vectorized filter
// kernels: predicates are evaluated 1024 rows at a time.
const BatchSize = 1024

// batchWords is the word count of one selection batch.
const batchWords = BatchSize / 64

// SelVec is a batch-of-BatchSize selection bitmap. Kernels keep the
// invariant that bits at and above the batch's row count are zero, so
// popcounts and emptiness checks never need a mask.
type SelVec [batchWords]uint64

// Zero clears every bit.
func (s *SelVec) Zero() { *s = SelVec{} }

// SetFirst sets bits [0, n) and clears every bit above, so it upholds the
// bits-above-count-are-zero invariant even on a reused dirty vector.
func (s *SelVec) SetFirst(n int) {
	w := 0
	for ; n >= 64; w++ {
		s[w] = ^uint64(0)
		n -= 64
	}
	if n > 0 {
		s[w] = (uint64(1) << uint(n)) - 1
		w++
	}
	for ; w < batchWords; w++ {
		s[w] = 0
	}
}

// Set sets bit i.
func (s *SelVec) Set(i int) { s[i>>6] |= 1 << uint(i&63) }

// Get reports bit i.
func (s *SelVec) Get(i int) bool { return s[i>>6]&(1<<uint(i&63)) != 0 }

// SetRange sets bits [lo, hi).
func (s *SelVec) SetRange(lo, hi int) {
	for i := lo; i < hi && i&63 != 0; i++ {
		s.Set(i)
		lo++
	}
	for ; lo+64 <= hi; lo += 64 {
		s[lo>>6] = ^uint64(0)
	}
	for ; lo < hi; lo++ {
		s.Set(lo)
	}
}

// And intersects s with o in place.
func (s *SelVec) And(o *SelVec) {
	for w := range s {
		s[w] &= o[w]
	}
}

// Or unions o into s in place.
func (s *SelVec) Or(o *SelVec) {
	for w := range s {
		s[w] |= o[w]
	}
}

// None reports whether no bit is set.
func (s *SelVec) None() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (s *SelVec) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// AllFirst reports whether every bit in [0, n) is set.
func (s *SelVec) AllFirst(n int) bool {
	return s.Count() == n
}

// ColVec is one column of one block in its on-disk encoding, ready for
// kernel evaluation or decoding. Construct with parseColVec (readers) or
// encodeColumn (writers/tests).
type ColVec struct {
	Enc Encoding
	N   int // rows

	// PLAIN: raw holds N little-endian 8-byte values.
	raw []byte

	// FOR / DICT: value = base + code, code packed LSB-first at width bits.
	// DICT fixes base to 0 (codes are schema dictionary positions). packed
	// has packSlack readable bytes beyond the payload for unaligned loads.
	base   int64
	width  uint
	mask   uint64
	packed []byte

	// RLE: runVals[i] repeats for rows [runEnds[i-1], runEnds[i]).
	runVals []int64
	runEnds []int32
}

// Get returns value i (reference/debug path; kernels do not use it).
func (v *ColVec) Get(i int) int64 {
	switch v.Enc {
	case EncPlain:
		return int64(binary.LittleEndian.Uint64(v.raw[8*i:]))
	case EncFOR, EncDict:
		return v.base + int64(v.code(i))
	case EncRLE:
		r := sort.Search(len(v.runEnds), func(k int) bool { return v.runEnds[k] > int32(i) })
		return v.runVals[r]
	}
	panic("blockstore: Get on unknown encoding")
}

// code extracts the packed w-bit code of row i.
func (v *ColVec) code(i int) uint64 {
	if v.width == 0 {
		return 0
	}
	bitpos := uint(i) * v.width
	return binary.LittleEndian.Uint64(v.packed[bitpos>>3:]) >> (bitpos & 7) & v.mask
}

// Decode materializes the whole column into dst (grown if needed).
func (v *ColVec) Decode(dst []int64) []int64 {
	if cap(dst) < v.N {
		dst = make([]int64, v.N)
	}
	dst = dst[:v.N]
	v.DecodeRange(dst, 0, v.N)
	return dst
}

// DecodeRange materializes rows [start, start+n) into dst[:n].
func (v *ColVec) DecodeRange(dst []int64, start, n int) {
	switch v.Enc {
	case EncPlain:
		for i := 0; i < n; i++ {
			dst[i] = int64(binary.LittleEndian.Uint64(v.raw[8*(start+i):]))
		}
	case EncFOR, EncDict:
		if v.width == 0 {
			for i := 0; i < n; i++ {
				dst[i] = v.base
			}
			return
		}
		for i := 0; i < n; i++ {
			dst[i] = v.base + int64(v.code(start+i))
		}
	case EncRLE:
		r := sort.Search(len(v.runEnds), func(k int) bool { return v.runEnds[k] > int32(start) })
		for i := 0; i < n; {
			end := int(v.runEnds[r]) - start
			if end > n {
				end = n
			}
			val := v.runVals[r]
			for ; i < end; i++ {
				dst[i] = val
			}
			r++
		}
	}
}

// Filter evaluates predicate p over rows [start, start+n) and writes the
// selection into out (bit i = row start+i matches). out is fully
// overwritten; bits at and above n stay zero.
func (v *ColVec) Filter(p expr.Pred, start, n int, out *SelVec) {
	out.Zero()
	switch v.Enc {
	case EncPlain:
		v.filterPlain(p, start, n, out)
	case EncFOR, EncDict:
		v.filterPacked(p, start, n, out)
	case EncRLE:
		v.filterRLE(p, start, n, out)
	}
}

// filterPlain compares raw little-endian values through the 8-wide
// branch-free kernels in kernels.go. Le and Ge ride the Gt/Lt kernels
// with their output bytes inverted; In stays row-wise (set membership
// has no branch-free form worth the setup cost).
func (v *ColVec) filterPlain(p expr.Pred, start, n int, out *SelVec) {
	raw := v.raw[8*start:]
	lit := p.Literal
	switch p.Op {
	case expr.Lt:
		filterPlainLt(raw, n, lit, 0, out)
	case expr.Ge:
		filterPlainLt(raw, n, lit, 0xff, out)
	case expr.Gt:
		filterPlainGt(raw, n, lit, 0, out)
	case expr.Le:
		filterPlainGt(raw, n, lit, 0xff, out)
	case expr.Eq:
		filterPlainEq(raw, n, lit, out)
	case expr.In:
		for i := 0; i < n; i++ {
			if p.InSet(int64(binary.LittleEndian.Uint64(raw[8*i:]))) {
				out.Set(i)
			}
		}
	}
}

// filterPacked translates the predicate into code space once — literal L
// against value base+code becomes a bound on the code — then compares
// packed codes without decoding. Out-of-range literals resolve to
// all-match or no-match without touching the payload at all.
func (v *ColVec) filterPacked(p expr.Pred, start, n int, out *SelVec) {
	maxCode := v.mask // (1<<width)-1; 0 for constant columns
	switch p.Op {
	case expr.Lt, expr.Le, expr.Gt, expr.Ge, expr.Eq:
		lit, base := p.Literal, v.base
		// d = L - base, exact in uint64 whenever L >= base.
		var d uint64
		below := lit < base // literal below every representable value
		if !below {
			d = uint64(lit) - uint64(base)
		}
		// Codes and d fit in maxPackWidth < 63 bits, so the unsigned
		// branch-free kernels apply; Le/Ge invert the Gt/Lt output bytes.
		switch p.Op {
		case expr.Lt:
			if below || d == 0 {
				return // nothing is < L
			}
			if d > maxCode {
				out.SetFirst(n)
				return
			}
			v.filterPackedLt(start, n, d, 0, out)
		case expr.Le:
			if below {
				return
			}
			if d >= maxCode {
				out.SetFirst(n)
				return
			}
			v.filterPackedGt(start, n, d, 0xff, out)
		case expr.Gt:
			if below {
				out.SetFirst(n)
				return
			}
			if d >= maxCode {
				return // nothing is > L
			}
			v.filterPackedGt(start, n, d, 0, out)
		case expr.Ge:
			if below || d == 0 {
				out.SetFirst(n)
				return
			}
			if d > maxCode {
				return
			}
			v.filterPackedLt(start, n, d, 0xff, out)
		case expr.Eq:
			if below || d > maxCode {
				return
			}
			if maxCode == 0 { // constant column, and d == 0
				out.SetFirst(n)
				return
			}
			v.filterPackedEq(start, n, d, out)
		}
	case expr.In:
		// Translate the sorted literal set into code space, dropping
		// members outside the block's representable range.
		codes := make([]uint64, 0, len(p.Set))
		for _, s := range p.Set {
			if s < v.base {
				continue
			}
			if d := uint64(s) - uint64(v.base); d <= maxCode {
				codes = append(codes, d)
			}
		}
		if len(codes) == 0 {
			return
		}
		if len(codes) <= 4 {
			for i := 0; i < n; i++ {
				c := v.code(start + i)
				for _, t := range codes {
					if c == t {
						out.Set(i)
						break
					}
				}
			}
			return
		}
		for i := 0; i < n; i++ {
			c := v.code(start + i)
			k := sort.Search(len(codes), func(j int) bool { return codes[j] >= c })
			if k < len(codes) && codes[k] == c {
				out.Set(i)
			}
		}
	}
}

// filterRLE evaluates the predicate once per run and fills span bits.
func (v *ColVec) filterRLE(p expr.Pred, start, n int, out *SelVec) {
	r := sort.Search(len(v.runEnds), func(k int) bool { return v.runEnds[k] > int32(start) })
	for i := 0; i < n; {
		end := int(v.runEnds[r]) - start
		if end > n {
			end = n
		}
		if p.EvalValue(v.runVals[r]) {
			out.SetRange(i, end)
		}
		i = end
		r++
	}
}

// --- encoding (write path) ---

// encodeColumn picks the cheapest encoding for one column of one block and
// returns it with the encoded payload (no slack bytes). kind selects the
// bit-packing flavor: categorical columns pack raw dictionary codes (DICT,
// base 0), numeric columns pack offsets from the block minimum (FOR).
func encodeColumn(vals []int64, kind table.Kind) (Encoding, []byte) {
	n := len(vals)
	lo, hi := vals[0], vals[0]
	runs := 1
	for i := 1; i < n; i++ {
		v := vals[i]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		if v != vals[i-1] {
			runs++
		}
	}

	plainSize := 8 * n
	rleSize := 4 + 12*runs

	packEnc := EncFOR
	packBase := lo
	packRange := uint64(hi) - uint64(lo)
	if kind == table.Categorical && lo >= 0 {
		// DICT packs raw dictionary codes so equality filters compare the
		// literal's code directly.
		packEnc = EncDict
		packBase = 0
		packRange = uint64(hi)
	}
	width := uint(bits.Len64(packRange))
	packSize := -1
	if width <= maxPackWidth {
		header := 1 // width byte
		if packEnc == EncFOR {
			header += 8 // base
		}
		packSize = header + (n*int(width)+7)/8
	}

	best, bestSize := EncPlain, plainSize
	if rleSize < bestSize {
		best, bestSize = EncRLE, rleSize
	}
	if packSize >= 0 && packSize < bestSize {
		best = packEnc
	}

	switch best {
	case EncRLE:
		out := make([]byte, 4, rleSize)
		binary.LittleEndian.PutUint32(out, uint32(runs))
		var buf [12]byte
		start := 0
		for i := 1; i <= n; i++ {
			if i == n || vals[i] != vals[start] {
				binary.LittleEndian.PutUint64(buf[0:8], uint64(vals[start]))
				binary.LittleEndian.PutUint32(buf[8:12], uint32(i-start))
				out = append(out, buf[:]...)
				start = i
			}
		}
		return EncRLE, out
	case EncFOR, EncDict:
		var out []byte
		if best == EncFOR {
			out = make([]byte, 9, 9+(n*int(width)+7)/8)
			binary.LittleEndian.PutUint64(out, uint64(packBase))
			out[8] = byte(width)
		} else {
			out = make([]byte, 1, 1+(n*int(width)+7)/8)
			out[0] = byte(width)
		}
		var acc uint64
		var nb uint
		for _, v := range vals {
			acc |= (uint64(v) - uint64(packBase)) << nb
			nb += width
			for nb >= 8 {
				out = append(out, byte(acc))
				acc >>= 8
				nb -= 8
			}
		}
		if nb > 0 {
			out = append(out, byte(acc))
		}
		return best, out
	}
	out := make([]byte, 8*n)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return EncPlain, out
}

// parseColVec validates and wraps one encoded column payload. For packed
// encodings the payload slice must have at least packSlack readable bytes
// beyond its length (readers allocate the slack; see readPayload).
func parseColVec(enc Encoding, n int, payload []byte) (*ColVec, error) {
	v := new(ColVec)
	if err := parseColVecInto(v, enc, n, payload, nil); err != nil {
		return nil, err
	}
	return v, nil
}

// parseColVecInto parses into caller-owned storage: v is overwritten and
// cs (optional) donates reusable RLE run slices, so an arena-backed scan
// parses every block of a query with zero per-block allocations.
func parseColVecInto(v *ColVec, enc Encoding, n int, payload []byte, cs *colScratch) error {
	*v = ColVec{Enc: enc, N: n}
	switch enc {
	case EncPlain:
		if len(payload) != 8*n {
			return fmt.Errorf("blockstore: plain column holds %d bytes for %d rows", len(payload), n)
		}
		v.raw = payload
	case EncFOR, EncDict:
		header := 1
		if enc == EncFOR {
			header = 9
			if len(payload) < 9 {
				return fmt.Errorf("blockstore: truncated FOR column header")
			}
			v.base = int64(binary.LittleEndian.Uint64(payload))
		} else if len(payload) < 1 {
			return fmt.Errorf("blockstore: truncated DICT column header")
		}
		v.width = uint(payload[header-1])
		if v.width > maxPackWidth {
			return fmt.Errorf("blockstore: packed width %d exceeds max %d", v.width, maxPackWidth)
		}
		packedLen := (n*int(v.width) + 7) / 8
		if len(payload) != header+packedLen {
			return fmt.Errorf("blockstore: packed column holds %d bytes, want %d", len(payload), header+packedLen)
		}
		v.mask = (uint64(1) << v.width) - 1
		// Extend the packed slice by packSlack bytes so code extraction can
		// always load 8 bytes; any content there is shifted and masked away.
		if pk := payload[header:]; cap(pk) >= packedLen+packSlack {
			v.packed = pk[:packedLen+packSlack]
		} else {
			v.packed = make([]byte, packedLen+packSlack)
			copy(v.packed, pk)
		}
	case EncRLE:
		if len(payload) < 4 {
			return fmt.Errorf("blockstore: truncated RLE column header")
		}
		runs := int(binary.LittleEndian.Uint32(payload))
		if len(payload) != 4+12*runs {
			return fmt.Errorf("blockstore: RLE column holds %d bytes for %d runs", len(payload), runs)
		}
		if cs != nil && cap(cs.runVals) >= runs && cap(cs.runEnds) >= runs {
			v.runVals = cs.runVals[:runs]
			v.runEnds = cs.runEnds[:runs]
		} else {
			v.runVals = make([]int64, runs)
			v.runEnds = make([]int32, runs)
			if cs != nil {
				cs.runVals = v.runVals
				cs.runEnds = v.runEnds
			}
		}
		total := int32(0)
		for r := 0; r < runs; r++ {
			off := 4 + 12*r
			v.runVals[r] = int64(binary.LittleEndian.Uint64(payload[off:]))
			rl := int32(binary.LittleEndian.Uint32(payload[off+8:]))
			if rl <= 0 {
				return fmt.Errorf("blockstore: RLE run %d has length %d", r, rl)
			}
			total += rl
			v.runEnds[r] = total
		}
		if int(total) != n {
			return fmt.Errorf("blockstore: RLE runs cover %d rows of %d", total, n)
		}
	default:
		return fmt.Errorf("blockstore: unknown column encoding %d", enc)
	}
	return nil
}
