package blockstore

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

func TestParseDeltaSegName(t *testing.T) {
	if name := DeltaSegName(7); name != "delta_000007.qdb" {
		t.Fatalf("name %q", name)
	}
	for _, tc := range []struct {
		name string
		id   int
		ok   bool
	}{
		{"delta_000007.qdb", 7, true},
		{"delta_000007.qdb.quarantined", 7, true},
		{"delta_xyz.qdb", 0, false},
		{"block_000001.qdb", 0, false},
		{"delta_000001.txt", 0, false},
	} {
		id, ok := ParseDeltaSegName(tc.name)
		if ok != tc.ok || (ok && id != tc.id) {
			t.Errorf("parse %q = (%d, %v), want (%d, %v)", tc.name, id, ok, tc.id, tc.ok)
		}
	}
}

// TestOpenQuarantinesTornDeltaSegment is the crash-recovery contract: a
// store directory holding a partially written delta segment (process died
// mid-append) must open, serve the intact segments, and set the torn file
// aside with a warning instead of failing.
func TestOpenQuarantinesTornDeltaSegment(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(100, 4)
	st, err := Write(dir, spec.Table, make([]int, spec.Table.N), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Two sealed segments beside the blocks; tear the tail off the second.
	sub := spec.Table
	for id := 0; id < 2; id++ {
		if _, err := WriteSegment(filepath.Join(dir, DeltaSegName(id)), sub, []int{0, 1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	torn := filepath.Join(dir, DeltaSegName(1))
	info, err := os.Stat(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(torn, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal("torn delta segment must not fail Open:", err)
	}
	defer re.Close()
	if len(re.Delta) != 1 || re.Delta[0].ID != 0 || re.Delta[0].Rows != 3 {
		t.Fatalf("delta segments %+v, want just segment 0 with 3 rows", re.Delta)
	}
	if len(re.DeltaWarnings) != 1 {
		t.Fatalf("warnings %v, want exactly one", re.DeltaWarnings)
	}
	if _, err := os.Stat(torn + QuarantineSuffix); err != nil {
		t.Fatal("torn file must be renamed aside:", err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("torn file must no longer carry the segment name")
	}

	// Quarantined ids stay burned so a new segment never collides.
	next, err := NextDeltaSegID(dir)
	if err != nil {
		t.Fatal(err)
	}
	if next != 2 {
		t.Fatalf("next id %d, want 2", next)
	}

	// Reopening again is stable: the quarantined file is ignored.
	re2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if len(re2.Delta) != 1 || len(re2.DeltaWarnings) != 0 {
		t.Fatalf("second open: delta %+v warnings %v", re2.Delta, re2.DeltaWarnings)
	}
}

// A delta segment with the right magic but the wrong column count is
// corrupt for this store and is quarantined like a torn one.
func TestOpenQuarantinesWrongWidthSegment(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(50, 2) // 2-column schema
	if _, err := Write(dir, spec.Table, make([]int, spec.Table.N), 1); err != nil {
		t.Fatal(err)
	}
	one := workload.ErrorLogInt(workload.ErrorLogConfig{Rows: 10, NumQueries: 1, Seed: 1})
	if one.Table.Schema.NumCols() == spec.Table.Schema.NumCols() {
		t.Fatal("fixture schemas must differ in width")
	}
	if _, err := WriteSegment(filepath.Join(dir, DeltaSegName(0)), one.Table, nil); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(re.Delta) != 0 || len(re.DeltaWarnings) != 1 {
		t.Fatalf("delta %+v warnings %v, want quarantine", re.Delta, re.DeltaWarnings)
	}
}
