package blockstore

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/table"
	"repro/internal/workload"
)

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(1000, 1)
	bids := make([]int, spec.Table.N)
	for i := range bids {
		bids[i] = i % 4
	}
	st, err := Write(dir, spec.Table, bids, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumBlocks() != 4 {
		t.Fatalf("blocks = %d", st.NumBlocks())
	}
	// Read every block back and verify contents match the source rows.
	perBlock := make(map[int][]int)
	for r, b := range bids {
		perBlock[b] = append(perBlock[b], r)
	}
	for b := 0; b < 4; b++ {
		blk, err := st.ReadBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		if blk.N != len(perBlock[b]) {
			t.Fatalf("block %d rows %d want %d", b, blk.N, len(perBlock[b]))
		}
		for i, r := range perBlock[b] {
			for c := range spec.Table.Cols {
				if blk.Cols[c][i] != spec.Table.Cols[c][r] {
					t.Fatalf("block %d row %d col %d mismatch", b, i, c)
				}
			}
		}
	}
}

func TestCatalogMinMax(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(500, 2)
	bids := make([]int, spec.Table.N)
	st, err := Write(dir, spec.Table, bids, 1)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := spec.Table.MinMax(0, nil)
	if st.Blocks[0].Min[0] != lo || st.Blocks[0].Max[0] != hi {
		t.Errorf("SMA min/max %d..%d, want %d..%d", st.Blocks[0].Min[0], st.Blocks[0].Max[0], lo, hi)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(300, 3)
	bids := make([]int, spec.Table.N)
	for i := range bids {
		bids[i] = i % 3
	}
	if _, err := Write(dir, spec.Table, bids, 3); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumBlocks() != 3 || st.Schema.NumCols() != 2 {
		t.Fatalf("reopened store: blocks=%d cols=%d", st.NumBlocks(), st.Schema.NumCols())
	}
	blk, err := st.ReadBlock(1)
	if err != nil {
		t.Fatal(err)
	}
	if blk.N != 100 {
		t.Fatalf("block rows = %d", blk.N)
	}
}

func TestReadColumnsPrunes(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(400, 4)
	bids := make([]int, spec.Table.N)
	st, err := Write(dir, spec.Table, bids, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, rows, bytes1, err := st.ReadColumns(0, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 400 || data[0] != nil || data[1] == nil {
		t.Fatal("column pruning read the wrong columns")
	}
	// A pruned read is charged exactly the pruned column's encoded bytes.
	if want := st.ColBytes(0, []int{1}); bytes1 != want {
		t.Errorf("pruned read %d bytes, catalog says column 1 is %d", bytes1, want)
	}
	_, _, bytes2, err := st.ReadColumns(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := st.ColBytes(0, nil); bytes2 != want {
		t.Errorf("full read %d bytes, catalog says block is %d", bytes2, want)
	}
	if bytes1 >= bytes2 {
		t.Errorf("pruned read %d bytes, full read %d; pruning must read less", bytes1, bytes2)
	}
}

func TestEmptyBlocks(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(100, 5)
	bids := make([]int, spec.Table.N) // all rows in block 0 of 3
	st, err := Write(dir, spec.Table, bids, 3)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := st.ReadBlock(2)
	if err != nil {
		t.Fatal(err)
	}
	if blk.N != 0 {
		t.Fatalf("empty block has %d rows", blk.N)
	}
	data, rows, nb, err := st.ReadColumns(2, nil)
	if err != nil || data != nil || rows != 0 || nb != 0 {
		t.Fatal("empty block ReadColumns must return nothing")
	}
}

func TestWriteValidation(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(10, 6)
	if _, err := Write(dir, spec.Table, make([]int, 5), 1); err == nil {
		t.Error("assignment length mismatch must error")
	}
	bad := make([]int, spec.Table.N)
	bad[0] = 7
	if _, err := Write(dir, spec.Table, bad, 2); err == nil {
		t.Error("out-of-range block id must error")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("missing catalog must error")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("nope"), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("corrupt catalog must error")
	}
	os.WriteFile(filepath.Join(dir, "catalog.json"), []byte(`{"version":7}`), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("bad version must error")
	}
}

func TestCorruptBlockDetected(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(50, 7)
	st, err := Write(dir, spec.Table, make([]int, spec.Table.N), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Clobber the magic bytes.
	path := filepath.Join(dir, st.Blocks[0].File)
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("XXXX"), 0)
	f.Close()
	if _, err := st.ReadBlock(0); err == nil {
		t.Error("corrupt magic must be detected")
	}
}

func TestConcurrentReadColumns(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(2000, 8)
	bids := make([]int, spec.Table.N)
	for i := range bids {
		bids[i] = i % 8
	}
	st, err := Write(dir, spec.Table, bids, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	want, _, _, err := st.ReadColumns(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				b := (g + i) % 8
				data, rows, _, err := st.ReadColumns(b, nil)
				if err != nil {
					t.Errorf("block %d: %v", b, err)
					return
				}
				if rows != st.Blocks[b].Rows {
					t.Errorf("block %d: rows %d want %d", b, rows, st.Blocks[b].Rows)
					return
				}
				if b == 3 && data[0][0] != want[0][0] {
					t.Errorf("block 3: concurrent read diverged")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCloseThenReadReopens(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(100, 9)
	st, err := Write(dir, spec.Table, make([]int, spec.Table.N), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.ReadColumns(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The store stays usable after Close: handles reopen on demand.
	if _, rows, _, err := st.ReadColumns(0, nil); err != nil || rows != spec.Table.N {
		t.Fatalf("read after close: rows=%d err=%v", rows, err)
	}
	st.Close()
}

// TestV1WriteReadCompat pins the legacy format: a store written with
// FormatVersion 1 must round-trip through Open and read back the exact
// rows, with the v1 catalog version and no per-column metadata.
func TestV1WriteReadCompat(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(600, 11)
	bids := make([]int, spec.Table.N)
	for i := range bids {
		bids[i] = i % 5
	}
	st, err := WriteOpts(dir, spec.Table, bids, 5, WriteOptions{FormatVersion: FormatV1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Format != FormatV1 {
		t.Fatalf("written format = %d", st.Format)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Format != FormatV1 {
		t.Fatalf("reopened format = %d", re.Format)
	}
	for _, m := range re.Blocks {
		if m.Cols != nil {
			t.Fatalf("v1 block %d carries column metadata", m.ID)
		}
	}
	perBlock := make(map[int][]int)
	for r, b := range bids {
		perBlock[b] = append(perBlock[b], r)
	}
	for b := 0; b < 5; b++ {
		blk, err := re.ReadBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range perBlock[b] {
			for c := range spec.Table.Cols {
				if blk.Cols[c][i] != spec.Table.Cols[c][r] {
					t.Fatalf("v1 block %d row %d col %d mismatch", b, i, c)
				}
			}
		}
	}
}

// TestV1V2IdenticalContents writes the same partitioned table in both
// formats and verifies both stores decode to identical values while the
// v2 store occupies fewer encoded bytes.
func TestV1V2IdenticalContents(t *testing.T) {
	spec := workload.Fig3(1000, 12)
	bids := make([]int, spec.Table.N)
	for i := range bids {
		bids[i] = i % 4
	}
	v1, err := WriteOpts(t.TempDir(), spec.Table, bids, 4, WriteOptions{FormatVersion: FormatV1})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Write(t.TempDir(), spec.Table, bids, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	defer v2.Close()
	for b := 0; b < 4; b++ {
		t1, err := v1.ReadBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := v2.ReadBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		if t1.N != t2.N {
			t.Fatalf("block %d: v1 %d rows, v2 %d rows", b, t1.N, t2.N)
		}
		for c := range t1.Cols {
			for r := 0; r < t1.N; r++ {
				if t1.Cols[c][r] != t2.Cols[c][r] {
					t.Fatalf("block %d col %d row %d: v1 %d, v2 %d", b, c, r, t1.Cols[c][r], t2.Cols[c][r])
				}
			}
		}
		if v1.Blocks[b].Min[0] != v2.Blocks[b].Min[0] || v1.Blocks[b].Max[1] != v2.Blocks[b].Max[1] {
			t.Fatalf("block %d SMA metadata differs across formats", b)
		}
	}
	s1, s2 := v1.Sizes(), v2.Sizes()
	if s1.LogicalBytes != s2.LogicalBytes {
		t.Fatalf("logical sizes differ: %d vs %d", s1.LogicalBytes, s2.LogicalBytes)
	}
	if s1.EncodedBytes != s1.LogicalBytes {
		t.Errorf("v1 encoded %d != logical %d", s1.EncodedBytes, s1.LogicalBytes)
	}
	if s2.EncodedBytes >= s1.EncodedBytes {
		t.Errorf("v2 encoded %d bytes, not smaller than v1 %d", s2.EncodedBytes, s1.EncodedBytes)
	}
}

// TestColumnStats checks the per-column encoding summary a v2 store
// reports for qdbench -exp compress.
func TestColumnStats(t *testing.T) {
	spec := workload.Fig3(500, 13)
	st, err := Write(t.TempDir(), spec.Table, make([]int, spec.Table.N), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats := st.ColumnStats()
	if len(stats) != 2 {
		t.Fatalf("%d column stats", len(stats))
	}
	var total int64
	for _, cs := range stats {
		n := 0
		for _, c := range cs.Encs {
			n += c
		}
		if n != 1 {
			t.Errorf("column %s: %d encoded blocks, want 1", cs.Name, n)
		}
		if cs.Sizes.LogicalBytes != 8*500 {
			t.Errorf("column %s: logical %d", cs.Name, cs.Sizes.LogicalBytes)
		}
		total += cs.Sizes.EncodedBytes
	}
	if got := st.Sizes().EncodedBytes; got != total {
		t.Errorf("store encoded %d != per-column sum %d", got, total)
	}
}

// --- WriteSegment / ReadSegment error paths ---

func TestReadSegmentTruncatedHeader(t *testing.T) {
	spec := workload.Fig3(100, 14)
	path := filepath.Join(t.TempDir(), "seg.qdb")
	if _, err := WriteSegment(path, spec.Table, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSegment(path, spec.Table.Schema); err == nil {
		t.Error("truncated header must error")
	}
}

func TestReadSegmentTruncatedPayload(t *testing.T) {
	spec := workload.Fig3(100, 15)
	path := filepath.Join(t.TempDir(), "seg.qdb")
	n, err := WriteSegment(path, spec.Table, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, n-17); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSegment(path, spec.Table.Schema); err == nil {
		t.Error("truncated payload must error")
	}
}

func TestReadSegmentBadMagic(t *testing.T) {
	spec := workload.Fig3(50, 16)
	path := filepath.Join(t.TempDir(), "seg.qdb")
	if _, err := WriteSegment(path, spec.Table, nil); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("NOPE"), 0)
	f.Close()
	if _, err := ReadSegment(path, spec.Table.Schema); err == nil {
		t.Error("bad magic must error")
	}
}

func TestReadSegmentSchemaMismatch(t *testing.T) {
	spec := workload.Fig3(50, 17)
	path := filepath.Join(t.TempDir(), "seg.qdb")
	if _, err := WriteSegment(path, spec.Table, nil); err != nil {
		t.Fatal(err)
	}
	three := table.MustSchema([]table.Column{
		{Name: "a", Kind: table.Numeric}, {Name: "b", Kind: table.Numeric}, {Name: "c", Kind: table.Numeric},
	})
	if _, err := ReadSegment(path, three); err == nil {
		t.Error("column-count mismatch must error")
	}
}

func TestReadSegmentMissingFile(t *testing.T) {
	spec := workload.Fig3(10, 18)
	if _, err := ReadSegment(filepath.Join(t.TempDir(), "absent.qdb"), spec.Table.Schema); err == nil {
		t.Error("missing segment must error")
	}
}

func TestWriteSegmentBadPath(t *testing.T) {
	spec := workload.Fig3(10, 19)
	if _, err := WriteSegment(filepath.Join(t.TempDir(), "no", "such", "dir", "seg.qdb"), spec.Table, nil); err == nil {
		t.Error("unwritable segment path must error")
	}
}

func TestHandleCacheCapFallsBackToTransientReads(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(640, 10)
	bids := make([]int, spec.Table.N)
	for i := range bids {
		bids[i] = i % 64
	}
	st, err := Write(dir, spec.Table, bids, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.MaxOpenFiles = 8 // far fewer cached handles than blocks
	for b := 0; b < 64; b++ {
		_, rows, _, err := st.ReadColumns(b, nil)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		if rows != 10 {
			t.Fatalf("block %d: rows %d", b, rows)
		}
	}
	if got := st.nopen.Load(); got > 8 {
		t.Errorf("cached %d handles, cap 8", got)
	}
	// Re-reads past the cap still work (transient handles reopen cleanly).
	if _, rows, _, err := st.ReadColumns(63, nil); err != nil || rows != 10 {
		t.Fatalf("transient re-read: rows=%d err=%v", rows, err)
	}
}
