// Delta segments are the on-disk half of the streaming ingest path: small
// append-only v1 segment files (delta_NNNNNN.qdb) that sit beside a
// store's block files and hold rows inserted since the last compaction.
// They carry no pruning metadata and are scanned in full by every query
// (delta ∪ base); compaction routes their rows through the qd-tree into a
// fresh generation and deletes them.
//
// Because a crash can interrupt a segment write, opening a directory
// validates every delta file against its self-describing header and
// quarantines torn tails (renamed to *.quarantined) instead of failing
// the whole store open — losing an unacknowledged partial append is
// acceptable; refusing to serve the intact base and remaining delta is
// not.
package blockstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// DeltaSegPrefix / DeltaSegSuffix name the delta segment files of a
// directory: delta_NNNNNN.qdb.
const (
	DeltaSegPrefix = "delta_"
	DeltaSegSuffix = ".qdb"
	// QuarantineSuffix is appended to a torn or corrupt delta segment's
	// name when Open sets it aside.
	QuarantineSuffix = ".quarantined"
)

// DeltaSegName returns the file name of delta segment id.
func DeltaSegName(id int) string {
	return fmt.Sprintf("%s%06d%s", DeltaSegPrefix, id, DeltaSegSuffix)
}

// ParseDeltaSegName extracts the segment id from a delta segment file
// name (quarantined names included), or ok=false for other files.
func ParseDeltaSegName(name string) (id int, ok bool) {
	name = strings.TrimSuffix(name, QuarantineSuffix)
	if !strings.HasPrefix(name, DeltaSegPrefix) || !strings.HasSuffix(name, DeltaSegSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, DeltaSegPrefix), DeltaSegSuffix)
	n, err := strconv.Atoi(mid)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// DeltaSegment describes one validated delta segment file.
type DeltaSegment struct {
	ID   int
	Path string
	Rows int
}

// segmentFileSize is the exact byte size of a v1 segment holding
// nrows × ncols values: magic + shape header + per-column min/max +
// fixed-width payload.
func segmentFileSize(ncols, nrows int) int64 {
	return int64(12) + int64(16*ncols) + int64(8)*int64(ncols)*int64(nrows)
}

// checkDeltaSegment validates one delta segment file against its header:
// magic, column count, and the exact file size the header implies. A nil
// error means the file is a complete, readable segment.
func checkDeltaSegment(path string, ncols int) (rows int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	hdr := make([]byte, 12)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return 0, fmt.Errorf("short header (%d bytes)", info.Size())
	}
	if string(hdr[:4]) != magicV1 {
		return 0, fmt.Errorf("bad magic %q", hdr[:4])
	}
	fcols := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if fcols != ncols {
		return 0, fmt.Errorf("%d columns, schema has %d", fcols, ncols)
	}
	rows = int(binary.LittleEndian.Uint32(hdr[8:12]))
	if want := segmentFileSize(ncols, rows); info.Size() != want {
		return 0, fmt.Errorf("torn tail: %d bytes on disk, header implies %d", info.Size(), want)
	}
	return rows, nil
}

// ScanDeltaSegments finds and validates the delta segment files of dir.
// Complete segments are returned sorted by id; torn or corrupt files are
// renamed aside with QuarantineSuffix and reported as warnings rather
// than errors, so a crash mid-append never blocks reopening the store.
func ScanDeltaSegments(dir string, ncols int) (segs []DeltaSegment, warnings []string, err error) {
	paths, err := filepath.Glob(filepath.Join(dir, DeltaSegPrefix+"*"+DeltaSegSuffix))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	for _, path := range paths {
		id, ok := ParseDeltaSegName(filepath.Base(path))
		if !ok {
			continue
		}
		rows, verr := checkDeltaSegment(path, ncols)
		if verr != nil {
			q := path + QuarantineSuffix
			if rerr := os.Rename(path, q); rerr != nil {
				return nil, nil, fmt.Errorf("blockstore: quarantine delta segment %s: %w", path, rerr)
			}
			warnings = append(warnings, fmt.Sprintf("delta segment %s quarantined: %v", filepath.Base(path), verr))
			continue
		}
		segs = append(segs, DeltaSegment{ID: id, Path: path, Rows: rows})
	}
	return segs, warnings, nil
}

// NextDeltaSegID returns the first segment id not used by any delta
// segment file in dir — quarantined files included, so a recovered store
// never reuses the id of a file set aside for inspection.
func NextDeltaSegID(dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, DeltaSegPrefix+"*"))
	if err != nil {
		return 0, err
	}
	next := 0
	for _, path := range paths {
		if id, ok := ParseDeltaSegName(filepath.Base(path)); ok && id >= next {
			next = id + 1
		}
	}
	return next, nil
}

// PlainColVec wraps an in-memory int64 column as a PLAIN-encoded column
// vector, so the vectorized filter and aggregate kernels can scan delta
// rows that have never been encoded to disk through the exact code path
// used for base blocks.
func PlainColVec(vals []int64) *ColVec {
	raw := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(raw[8*i:], uint64(v))
	}
	return &ColVec{Enc: EncPlain, N: len(vals), raw: raw}
}
