package blockstore

import (
	"math/rand"
	"testing"
)

// TestCountRange pins the masked popcount against bit-by-bit counting.
func TestCountRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s SelVec
	for trial := 0; trial < 200; trial++ {
		s.Zero()
		for i := 0; i < BatchSize; i++ {
			if rng.Intn(3) == 0 {
				s.Set(i)
			}
		}
		lo := rng.Intn(BatchSize + 1)
		hi := rng.Intn(BatchSize + 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for i := lo; i < hi; i++ {
			if s.Get(i) {
				want++
			}
		}
		if got := s.CountRange(lo, hi); got != want {
			t.Fatalf("CountRange(%d, %d) = %d, want %d", lo, hi, got, want)
		}
	}
	if s.CountRange(10, 10) != 0 || s.CountRange(20, 10) != 0 {
		t.Error("empty/inverted range must count 0")
	}
}

// TestAggKernelsMatchReference: SumSelected and MinMaxSelected agree with
// row-at-a-time reduction over every encoding, random columns, random
// selections, and batch offsets.
func TestAggKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	seen := make(map[Encoding]int)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(2600)
		vals, kind := genColumn(rng, n)
		enc, v := encDec(t, vals, kind)
		seen[enc]++
		var sel SelVec
		density := rng.Intn(5) // 0 = empty .. 4 = full
		for start := 0; start < n; start += BatchSize {
			cnt := n - start
			if cnt > BatchSize {
				cnt = BatchSize
			}
			sel.Zero()
			for i := 0; i < cnt; i++ {
				if density == 4 || (density > 0 && rng.Intn(4) < density) {
					sel.Set(i)
				}
			}
			var wantSum, wantCnt int64
			var wantLo, wantHi int64
			wantOK := false
			for i := 0; i < cnt; i++ {
				if !sel.Get(i) {
					continue
				}
				val := vals[start+i]
				wantSum += val
				wantCnt++
				if !wantOK || val < wantLo {
					wantLo = val
				}
				if !wantOK || val > wantHi {
					wantHi = val
				}
				wantOK = true
			}
			sum, c := v.SumSelected(&sel, start, cnt)
			if sum != wantSum || c != wantCnt {
				t.Fatalf("trial %d enc %v: SumSelected = (%d, %d), want (%d, %d)", trial, enc, sum, c, wantSum, wantCnt)
			}
			lo, hi, ok := v.MinMaxSelected(&sel, start, cnt)
			if ok != wantOK || (ok && (lo != wantLo || hi != wantHi)) {
				t.Fatalf("trial %d enc %v: MinMaxSelected = (%d, %d, %v), want (%d, %d, %v)",
					trial, enc, lo, hi, ok, wantLo, wantHi, wantOK)
			}
		}
	}
	for _, e := range []Encoding{EncPlain, EncFOR, EncDict, EncRLE} {
		if seen[e] == 0 {
			t.Errorf("encoding %v never chosen across trials", e)
		}
	}
}
