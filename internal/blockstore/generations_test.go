package blockstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

func writeGen(t *testing.T, root string, id, blocks int) *Store {
	t.Helper()
	spec := workload.Fig3(300, int64(id))
	bids := make([]int, spec.Table.N)
	for i := range bids {
		bids[i] = i % blocks
	}
	st, err := WriteGeneration(root, id, spec.Table, bids, blocks)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestGenerationLifecycle(t *testing.T) {
	root := t.TempDir()
	writeGen(t, root, 1, 3)
	if err := SetCurrent(root, 1); err != nil {
		t.Fatal(err)
	}
	st, id, err := OpenCurrent(root)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 || st.NumBlocks() != 3 {
		t.Fatalf("gen=%d blocks=%d", id, st.NumBlocks())
	}
	st.Close()

	// Write the next generation beside the live one and flip CURRENT.
	writeGen(t, root, 2, 5)
	if err := SetCurrent(root, 2); err != nil {
		t.Fatal(err)
	}
	ids, err := ListGenerations(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("generations = %v", ids)
	}
	st, id, err = OpenCurrent(root)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 || st.NumBlocks() != 5 {
		t.Fatalf("gen=%d blocks=%d", id, st.NumBlocks())
	}
	st.Close()

	// GC the retired generation; the live one is protected.
	if err := RemoveGeneration(root, 2); err == nil {
		t.Fatal("removing the live generation must be refused")
	}
	if err := RemoveGeneration(root, 1); err != nil {
		t.Fatal(err)
	}
	ids, _ = ListGenerations(root)
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("after GC generations = %v", ids)
	}
}

func TestGenerationGuards(t *testing.T) {
	root := t.TempDir()
	if _, err := CurrentGeneration(root); err == nil {
		t.Error("missing CURRENT must error")
	}
	if err := SetCurrent(root, 3); err == nil {
		t.Error("pointing CURRENT at a missing generation must error")
	}
	writeGen(t, root, 1, 2)
	if _, err := WriteGeneration(root, 1, workload.Fig3(10, 1).Table, make([]int, 10), 1); err == nil {
		t.Error("rewriting an existing generation must error")
	}
	if _, err := WriteGeneration(root, 0, workload.Fig3(10, 1).Table, make([]int, 10), 1); err == nil {
		t.Error("generation 0 must be rejected")
	}
	os.WriteFile(filepath.Join(root, currentFile), []byte("banana"), 0o644)
	if _, err := CurrentGeneration(root); err == nil {
		t.Error("garbage CURRENT must error")
	}
}

func TestOpenDetectsMissingBlockFile(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(200, 11)
	bids := make([]int, spec.Table.N)
	for i := range bids {
		bids[i] = i % 4
	}
	st, err := Write(dir, spec.Table, bids, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, st.Blocks[2].File)); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	if err == nil {
		t.Fatal("open with a missing block file must error")
	}
	if !strings.Contains(err.Error(), "block 2") || !strings.Contains(err.Error(), "missing") {
		t.Errorf("error does not name the missing block: %v", err)
	}
}

func TestOpenDetectsStaleBlockFile(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(100, 12)
	if _, err := Write(dir, spec.Table, make([]int, spec.Table.N), 1); err != nil {
		t.Fatal(err)
	}
	// A leftover file from a larger, stale layout of the same directory.
	if err := os.WriteFile(filepath.Join(dir, "block_000007.qdb"), []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir)
	if err == nil {
		t.Fatal("open with an undescribed block file must error")
	}
	if !strings.Contains(err.Error(), "block_000007.qdb") {
		t.Errorf("error does not name the stale file: %v", err)
	}
}

func TestWriteInPlaceRebuildRoundTrips(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(400, 13)
	// First layout: 8 blocks.
	bids := make([]int, spec.Table.N)
	for i := range bids {
		bids[i] = i % 8
	}
	if _, err := Write(dir, spec.Table, bids, 8); err != nil {
		t.Fatal(err)
	}
	// Rebuild in place with fewer blocks: stale block files must be
	// cleaned up so the directory still opens.
	for i := range bids {
		bids[i] = i % 3
	}
	if _, err := Write(dir, spec.Table, bids, 3); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("rebuilt store must reopen: %v", err)
	}
	if st.NumBlocks() != 3 {
		t.Fatalf("blocks = %d, want 3", st.NumBlocks())
	}
}
