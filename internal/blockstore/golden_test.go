package blockstore

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/table"
)

// The golden fixture pins block format v2 on disk: a small store whose
// bytes are checked into testdata/golden_v2. The test fails if either
// direction of the format drifts — a reader change that decodes the
// checked-in bytes differently, or a writer change that no longer
// produces them — so accidental on-disk format breaks fail CI instead of
// corrupting readers in the field. Intentional format changes must bump
// the format version and regenerate the fixture:
//
//	UPDATE_GOLDEN=1 go test ./internal/blockstore -run TestGoldenV2
const goldenDir = "testdata/golden_v2"

// goldenTable regenerates the fixture's source table and block
// assignment, deterministically. Four columns are shaped to exercise all
// four encodings; block 3 stays empty.
func goldenTable() (*table.Table, []int, int) {
	rng := rand.New(rand.NewSource(99))
	schema := table.MustSchema([]table.Column{
		{Name: "wide", Kind: table.Numeric, Min: -1 << 62, Max: 1 << 62},
		{Name: "app", Kind: table.Categorical, Dom: 16, Dict: []string{
			"a00", "a01", "a02", "a03", "a04", "a05", "a06", "a07",
			"a08", "a09", "a10", "a11", "a12", "a13", "a14", "a15"}},
		{Name: "state", Kind: table.Numeric, Min: 0, Max: 1 << 30},
		{Name: "delta", Kind: table.Numeric, Min: 0, Max: 1 << 40},
	})
	const rows = 150
	tbl := table.New(schema, rows)
	// Wide run values keep bit-packing expensive so RLE wins the column.
	run := int64(7)
	for i := 0; i < rows; i++ {
		if i%30 == 29 {
			run += rng.Int63n(1 << 40)
		}
		tbl.AppendRow([]int64{
			rng.Int63() - rng.Int63(),   // wide spread -> PLAIN
			rng.Int63n(16),              // dictionary codes -> DICT
			run,                         // long runs -> RLE
			1_000_000 + rng.Int63n(512), // narrow range -> FOR
		})
	}
	bids := make([]int, rows)
	for i := range bids {
		bids[i] = i % 3
	}
	return tbl, bids, 4 // block 3 is empty
}

func TestGoldenV2Fixture(t *testing.T) {
	tbl, bids, numBlocks := goldenTable()

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.RemoveAll(goldenDir); err != nil {
			t.Fatal(err)
		}
		if _, err := Write(goldenDir, tbl, bids, numBlocks); err != nil {
			t.Fatal(err)
		}
		t.Skip("golden fixture regenerated")
	}

	st, err := Open(goldenDir)
	if err != nil {
		t.Fatalf("open golden store (run with UPDATE_GOLDEN=1 to create it): %v", err)
	}
	defer st.Close()
	if st.Format != FormatV2 {
		t.Fatalf("golden store format = %d, want %d", st.Format, FormatV2)
	}

	// Reader direction: checked-in bytes must decode to the regenerated
	// table, block by block.
	perBlock := make(map[int][]int)
	for r, b := range bids {
		perBlock[b] = append(perBlock[b], r)
	}
	for b := 0; b < numBlocks; b++ {
		blk, err := st.ReadBlock(b)
		if err != nil {
			t.Fatalf("read golden block %d: %v", b, err)
		}
		if blk.N != len(perBlock[b]) {
			t.Fatalf("golden block %d: %d rows, want %d", b, blk.N, len(perBlock[b]))
		}
		for i, r := range perBlock[b] {
			for c := range tbl.Cols {
				if blk.Cols[c][i] != tbl.Cols[c][r] {
					t.Fatalf("golden block %d row %d col %d: decoded %d want %d",
						b, i, c, blk.Cols[c][i], tbl.Cols[c][r])
				}
			}
		}
	}

	// The fixture must actually cover all four encodings, or the pin is
	// weaker than it claims.
	want := map[string]Encoding{"wide": EncPlain, "app": EncDict, "state": EncRLE, "delta": EncFOR}
	for c, cs := range st.ColumnStats() {
		if n := cs.Encs[want[cs.Name]]; n == 0 {
			t.Errorf("golden column %d (%s): encoding %v never used (%v)", c, cs.Name, want[cs.Name], cs.Encs)
		}
	}

	// Writer direction: rewriting the same table must reproduce the
	// checked-in bytes exactly, catalog included.
	dir := t.TempDir()
	if _, err := Write(dir, tbl, bids, numBlocks); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		goldenBytes, err := os.ReadFile(filepath.Join(goldenDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("writer no longer produces %s: %v", e.Name(), err)
		}
		if !bytes.Equal(goldenBytes, fresh) {
			t.Errorf("%s: freshly written bytes differ from golden fixture (format drift?)", e.Name())
		}
	}
}
