// Package blockstore persists layout blocks in a binary columnar format
// with per-block min-max (SMA) metadata — the storage substrate standing
// in for the paper's Parquet files / commercial columnar format (Sec. 7.1).
// Each leaf (or baseline block) becomes one file; a JSON catalog records
// block metadata so a store can be reopened without scanning.
//
// # Block formats
//
// Two on-disk formats coexist:
//
//   - Format v1 ("QDB1"): plain fixed-width int64 columns. The original
//     format; still written on request and always readable.
//   - Format v2 ("QDB2", the default for new writes): each column is
//     stored in the cheapest of four encodings chosen at write time
//     (PLAIN, FOR bit-packing, DICT-code bit-packing, RLE — see
//     encoding.go), behind a per-block column directory. The catalog
//     (version 2) records every column's encoding and encoded size, so
//     readers position-read exactly the bytes they need and cost models
//     can compare encoded against logical footprints.
//
// Open detects the catalog version and serves either format through the
// same Store API: ReadColVecs hands encoded columns to the vectorized
// filter kernels, ReadColumns decodes to plain int64 slices.
package blockstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/table"
)

const (
	magicV1 = "QDB1"
	magicV2 = "QDB2"
)

// Store format versions, persisted as the catalog "version" field.
const (
	FormatV1 = 1
	FormatV2 = 2
)

// WriteOptions tune how a store is materialized.
type WriteOptions struct {
	// FormatVersion selects the on-disk block format: FormatV2 (the
	// default, selected by 0) writes per-column encodings; FormatV1 writes
	// the legacy plain fixed-width layout.
	FormatVersion int
	// PlainOnly keeps the v2 container but forces every column to the
	// PLAIN encoding — useful for isolating encoding effects in benchmarks.
	PlainOnly bool
}

func (o WriteOptions) version() int {
	if o.FormatVersion == 0 {
		return FormatV2
	}
	return o.FormatVersion
}

// ColMeta is the catalog entry for one encoded column of one block
// (format v2 only; v1 catalogs carry no per-column entries).
type ColMeta struct {
	Enc   Encoding `json:"enc"`
	Bytes int64    `json:"bytes"` // encoded payload size on disk
}

// BlockMeta is the catalog entry for one block.
type BlockMeta struct {
	ID    int     `json:"id"`
	Rows  int     `json:"rows"`
	File  string  `json:"file"`
	Bytes int64   `json:"bytes"`
	Min   []int64 `json:"min"`
	Max   []int64 `json:"max"`
	// Cols describes each column's encoding and encoded size (v2 only).
	Cols []ColMeta `json:"cols,omitempty"`
}

// Store is an opened block directory. Reads are safe for concurrent use:
// each block file is opened lazily on first access, header-validated once,
// and the handle is cached and shared by all subsequent readers, which use
// positioned reads (ReadAt / pread) and never seek.
type Store struct {
	Dir    string
	Schema *table.Schema
	Blocks []BlockMeta
	// Format is the block format version (FormatV1 or FormatV2). The zero
	// value reads as v1 for compatibility with directly constructed stores.
	Format int

	// MaxOpenFiles caps the cached-handle count (0 selects a default of
	// 128). Blocks beyond the cap fall back to transient open-read-close,
	// so scans over stores with more blocks than the process fd limit
	// still complete.
	MaxOpenFiles int

	// Delta lists the validated streaming-ingest delta segments found
	// beside the blocks at Open time (delta_*.qdb); their rows belong to
	// the table but are not yet part of any block. DeltaWarnings records
	// torn or corrupt segments Open quarantined instead of failing.
	Delta         []DeltaSegment
	DeltaWarnings []string

	once  sync.Once
	files []blockHandle // lazily-opened, validated per-block handles
	nopen atomic.Int64  // cached handles currently open
}

// blockHandle caches one block's open file. The pointer is read lock-free
// on the hot path; the mutex serializes only the first open of this block
// (and Close), so concurrent opens of distinct blocks do not contend.
type blockHandle struct {
	mu sync.Mutex
	f  atomic.Pointer[os.File]
}

const defaultMaxOpenFiles = 128

type catalogJSON struct {
	Version int         `json:"version"`
	Columns []catCol    `json:"columns"`
	Blocks  []BlockMeta `json:"blocks"`
}

type catCol struct {
	Name string   `json:"name"`
	Kind int      `json:"kind"`
	Dom  int64    `json:"dom,omitempty"`
	Min  int64    `json:"min,omitempty"`
	Max  int64    `json:"max,omitempty"`
	Dict []string `json:"dict,omitempty"` // categorical dictionary, so reopened stores parse string literals
}

// Write materializes a partitioned table in the default format (v2): rows
// are grouped by block ID and each block is written as one columnar file
// with per-column encodings. Empty blocks get no file.
func Write(dir string, tbl *table.Table, bids []int, numBlocks int) (*Store, error) {
	return WriteOpts(dir, tbl, bids, numBlocks, WriteOptions{})
}

// WriteOpts is Write with explicit format options.
func WriteOpts(dir string, tbl *table.Table, bids []int, numBlocks int, opt WriteOptions) (*Store, error) {
	version := opt.version()
	if version != FormatV1 && version != FormatV2 {
		return nil, fmt.Errorf("blockstore: unsupported write format version %d", version)
	}
	if len(bids) != tbl.N {
		return nil, fmt.Errorf("blockstore: %d assignments for %d rows", len(bids), tbl.N)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	perBlock := make([][]int, numBlocks)
	for r, b := range bids {
		if b < 0 || b >= numBlocks {
			return nil, fmt.Errorf("blockstore: row %d assigned to out-of-range block %d", r, b)
		}
		perBlock[b] = append(perBlock[b], r)
	}
	st := &Store{Dir: dir, Schema: tbl.Schema, Format: version}
	for b, rows := range perBlock {
		meta := BlockMeta{ID: b, Rows: len(rows)}
		if len(rows) > 0 {
			meta.File = fmt.Sprintf("block_%06d.qdb", b)
			path := filepath.Join(dir, meta.File)
			var err error
			if version == FormatV2 {
				meta.Bytes, meta.Min, meta.Max, meta.Cols, err = writeBlockV2(path, tbl, rows, opt.PlainOnly)
			} else {
				meta.Bytes, meta.Min, meta.Max, err = writeBlockV1(path, tbl, rows)
			}
			if err != nil {
				return nil, err
			}
		}
		st.Blocks = append(st.Blocks, meta)
	}
	if err := removeStaleBlockFiles(dir, st.Blocks); err != nil {
		return nil, err
	}
	if err := st.writeCatalog(); err != nil {
		return nil, err
	}
	return st, nil
}

// removeStaleBlockFiles deletes block files a previous layout left in the
// directory that the new catalog does not describe — rewriting a store in
// place must round-trip through Open's file validation.
func removeStaleBlockFiles(dir string, blocks []BlockMeta) error {
	live := make(map[string]bool, len(blocks))
	for _, m := range blocks {
		if m.Rows > 0 {
			live[m.File] = true
		}
	}
	onDisk, err := filepath.Glob(filepath.Join(dir, "block_*.qdb"))
	if err != nil {
		return err
	}
	for _, path := range onDisk {
		if !live[filepath.Base(path)] {
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("blockstore: remove stale block file %s: %w", path, err)
			}
		}
	}
	return nil
}

func writeBlockV1(path string, tbl *table.Table, rows []int) (int64, []int64, []int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, nil, nil, err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<16)
	ncols := tbl.Schema.NumCols()
	if _, err := w.WriteString(magicV1); err != nil {
		return 0, nil, nil, err
	}
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(ncols))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(rows)))
	if _, err := w.Write(hdr); err != nil {
		return 0, nil, nil, err
	}
	mins := make([]int64, ncols)
	maxs := make([]int64, ncols)
	buf := make([]byte, 8)
	for c := 0; c < ncols; c++ {
		lo, hi, _ := tbl.MinMax(c, rows)
		mins[c], maxs[c] = lo, hi
		binary.LittleEndian.PutUint64(buf, uint64(lo))
		if _, err := w.Write(buf); err != nil {
			return 0, nil, nil, err
		}
		binary.LittleEndian.PutUint64(buf, uint64(hi))
		if _, err := w.Write(buf); err != nil {
			return 0, nil, nil, err
		}
	}
	for c := 0; c < ncols; c++ {
		col := tbl.Cols[c]
		for _, r := range rows {
			binary.LittleEndian.PutUint64(buf, uint64(col[r]))
			if _, err := w.Write(buf); err != nil {
				return 0, nil, nil, err
			}
		}
	}
	if err := w.Flush(); err != nil {
		return 0, nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		return 0, nil, nil, err
	}
	return info.Size(), mins, maxs, nil
}

// v2HeaderSize is the fixed block header: magic + shape + per-column
// min/max + per-column directory entry (encoding byte + payload size).
func v2HeaderSize(ncols int) int64 { return int64(12 + (16+9)*ncols) }

// writeBlockV2 writes one block in format v2: header, per-column min/max,
// a column directory (encoding + payload bytes), then the concatenated
// encoded payloads.
func writeBlockV2(path string, tbl *table.Table, rows []int, plainOnly bool) (int64, []int64, []int64, []ColMeta, error) {
	ncols := tbl.Schema.NumCols()
	mins := make([]int64, ncols)
	maxs := make([]int64, ncols)
	metas := make([]ColMeta, ncols)
	payloads := make([][]byte, ncols)
	vals := make([]int64, len(rows))
	for c := 0; c < ncols; c++ {
		col := tbl.Cols[c]
		for i, r := range rows {
			vals[i] = col[r]
		}
		lo, hi, _ := tbl.MinMax(c, rows)
		mins[c], maxs[c] = lo, hi
		var enc Encoding
		var payload []byte
		if plainOnly {
			payload = make([]byte, 8*len(vals))
			for i, v := range vals {
				binary.LittleEndian.PutUint64(payload[8*i:], uint64(v))
			}
		} else {
			enc, payload = encodeColumn(vals, tbl.Schema.Cols[c].Kind)
		}
		metas[c] = ColMeta{Enc: enc, Bytes: int64(len(payload))}
		payloads[c] = payload
	}

	f, err := os.Create(path)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.WriteString(magicV2); err != nil {
		return 0, nil, nil, nil, err
	}
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(ncols))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(rows)))
	if _, err := w.Write(hdr); err != nil {
		return 0, nil, nil, nil, err
	}
	buf := make([]byte, 16)
	for c := 0; c < ncols; c++ {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(mins[c]))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(maxs[c]))
		if _, err := w.Write(buf); err != nil {
			return 0, nil, nil, nil, err
		}
	}
	for c := 0; c < ncols; c++ {
		buf[0] = byte(metas[c].Enc)
		binary.LittleEndian.PutUint64(buf[1:9], uint64(metas[c].Bytes))
		if _, err := w.Write(buf[:9]); err != nil {
			return 0, nil, nil, nil, err
		}
	}
	for c := 0; c < ncols; c++ {
		if _, err := w.Write(payloads[c]); err != nil {
			return 0, nil, nil, nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return 0, nil, nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		return 0, nil, nil, nil, err
	}
	return info.Size(), mins, maxs, metas, nil
}

func (s *Store) writeCatalog() error {
	version := s.Format
	if version == 0 {
		version = FormatV1
	}
	cat := catalogJSON{Version: version, Blocks: s.Blocks}
	for _, c := range s.Schema.Cols {
		cat.Columns = append(cat.Columns, catCol{Name: c.Name, Kind: int(c.Kind), Dom: c.Dom, Min: c.Min, Max: c.Max, Dict: c.Dict})
	}
	data, err := json.Marshal(cat)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(s.Dir, "catalog.json"), data, 0o644)
}

// Open reopens a store from its catalog (format v1 or v2). The catalog is
// validated against the block files actually present in the directory: a
// non-empty block whose file is missing, or a block file the catalog does
// not describe, fails with an error naming the discrepancy — a
// half-deleted or stale generation directory must not open as a smaller
// store and silently drop rows.
func Open(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if err != nil {
		return nil, fmt.Errorf("blockstore: open catalog: %w", err)
	}
	var cat catalogJSON
	if err := json.Unmarshal(data, &cat); err != nil {
		return nil, fmt.Errorf("blockstore: decode catalog: %w", err)
	}
	if cat.Version != FormatV1 && cat.Version != FormatV2 {
		return nil, fmt.Errorf("blockstore: unsupported catalog version %d", cat.Version)
	}
	if err := validateBlockFiles(dir, cat.Blocks); err != nil {
		return nil, err
	}
	cols := make([]table.Column, len(cat.Columns))
	for i, c := range cat.Columns {
		cols[i] = table.Column{Name: c.Name, Kind: table.Kind(c.Kind), Dom: c.Dom, Min: c.Min, Max: c.Max, Dict: c.Dict}
	}
	schema, err := table.NewSchema(cols)
	if err != nil {
		return nil, err
	}
	if cat.Version == FormatV2 {
		for _, m := range cat.Blocks {
			if m.Rows > 0 && len(m.Cols) != len(cols) {
				return nil, fmt.Errorf("blockstore: v2 catalog block %d describes %d columns, schema has %d", m.ID, len(m.Cols), len(cols))
			}
		}
	}
	delta, warns, err := ScanDeltaSegments(dir, schema.NumCols())
	if err != nil {
		return nil, err
	}
	return &Store{Dir: dir, Schema: schema, Blocks: cat.Blocks, Format: cat.Version, Delta: delta, DeltaWarnings: warns}, nil
}

// validateBlockFiles cross-checks the catalog's block list against the
// block_*.qdb files on disk, in both directions.
func validateBlockFiles(dir string, blocks []BlockMeta) error {
	expected := make(map[string]int, len(blocks))
	for _, m := range blocks {
		if m.Rows == 0 {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, m.File)); err != nil {
			return fmt.Errorf("blockstore: catalog of %s lists block %d (%d rows) but its file %s is missing: %w",
				dir, m.ID, m.Rows, m.File, err)
		}
		expected[m.File] = m.ID
	}
	onDisk, err := filepath.Glob(filepath.Join(dir, "block_*.qdb"))
	if err != nil {
		return err
	}
	for _, path := range onDisk {
		name := filepath.Base(path)
		if _, ok := expected[name]; !ok {
			return fmt.Errorf("blockstore: %s holds block file %s that the catalog (%d blocks) does not describe — stale or mixed generation directory",
				dir, name, len(blocks))
		}
	}
	return nil
}

// NumBlocks returns the block count (including empty blocks).
func (s *Store) NumBlocks() int { return len(s.Blocks) }

// isV2 reports whether the store reads format v2 blocks.
func (s *Store) isV2() bool { return s.Format >= FormatV2 }

// magic returns the block-file magic the store's format requires.
func (s *Store) magic() string {
	if s.isV2() {
		return magicV2
	}
	return magicV1
}

// openValidated opens block b's file and validates its header, returning
// the handle and the block's (ncols, nrows) shape.
func (s *Store) openValidated(b int) (*os.File, int, int, error) {
	m := s.Blocks[b]
	f, err := os.Open(filepath.Join(s.Dir, m.File))
	if err != nil {
		return nil, 0, 0, err
	}
	hdr := make([]byte, 12)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, 0, 0, fmt.Errorf("blockstore: block %d header: %w", b, err)
	}
	if string(hdr[:4]) != s.magic() {
		f.Close()
		return nil, 0, 0, fmt.Errorf("blockstore: block %d bad magic %q (want %q)", b, hdr[:4], s.magic())
	}
	ncols := int(binary.LittleEndian.Uint32(hdr[4:8]))
	nrows := int(binary.LittleEndian.Uint32(hdr[8:12]))
	if ncols != s.Schema.NumCols() || nrows != m.Rows {
		f.Close()
		return nil, 0, 0, fmt.Errorf("blockstore: block %d shape mismatch (%d cols, %d rows)", b, ncols, nrows)
	}
	return f, ncols, nrows, nil
}

// readerAt returns a header-validated io.ReaderAt over block b's file, its
// (ncols, nrows) shape, and a release func the caller must invoke when the
// read is done. The reader is nil for empty blocks. Up to MaxOpenFiles
// handles are opened once, cached, and shared by every caller — concurrent
// scan workers included, since ReadAt issues positioned reads (pread)
// without touching a shared file offset — replacing the previous
// open-read-close-per-scan path. Past the cap, reads fall back to a
// transient handle that release closes, bounding fd usage on huge stores.
func (s *Store) readerAt(b int) (io.ReaderAt, int, int, func(), error) {
	noop := func() {}
	if b < 0 || b >= len(s.Blocks) {
		return nil, 0, 0, noop, fmt.Errorf("blockstore: block %d out of range", b)
	}
	m := s.Blocks[b]
	if m.Rows == 0 {
		return nil, 0, 0, noop, nil
	}
	s.once.Do(func() { s.files = make([]blockHandle, len(s.Blocks)) })
	h := &s.files[b]
	if f := h.f.Load(); f != nil {
		return f, s.Schema.NumCols(), m.Rows, noop, nil
	}
	cap := int64(s.MaxOpenFiles)
	if cap <= 0 {
		cap = defaultMaxOpenFiles
	}
	if s.nopen.Load() >= cap {
		// Cache full: transient open, closed by the caller's release.
		f, ncols, nrows, err := s.openValidated(b)
		if err != nil {
			return nil, 0, 0, noop, err
		}
		return f, ncols, nrows, func() { f.Close() }, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if f := h.f.Load(); f != nil {
		return f, s.Schema.NumCols(), m.Rows, noop, nil
	}
	// Reserve a cache slot before opening; the atomic add is the
	// authoritative cap check, so concurrent first opens of distinct
	// blocks can never leave more than MaxOpenFiles handles cached.
	if s.nopen.Add(1) > cap {
		s.nopen.Add(-1)
		f, ncols, nrows, err := s.openValidated(b)
		if err != nil {
			return nil, 0, 0, noop, err
		}
		return f, ncols, nrows, func() { f.Close() }, nil
	}
	f, ncols, nrows, err := s.openValidated(b)
	if err != nil {
		s.nopen.Add(-1)
		return nil, 0, 0, noop, err
	}
	h.f.Store(f)
	return f, ncols, nrows, noop, nil
}

// Close releases every cached block handle. The store remains usable;
// subsequent reads reopen files on demand.
func (s *Store) Close() error {
	var first error
	for i := range s.files {
		h := &s.files[i]
		h.mu.Lock()
		if f := h.f.Load(); f != nil {
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
			h.f.Store(nil)
			s.nopen.Add(-1)
		}
		h.mu.Unlock()
	}
	return first
}

// errColRange reports a column index outside the schema.
func errColRange(c int) error {
	return fmt.Errorf("blockstore: column %d out of range", c)
}

// wantCols expands a column selection (nil = all) into a per-column flag
// slice, validating indices.
func wantCols(cols []int, ncols int) ([]bool, error) {
	want := make([]bool, ncols)
	if cols == nil {
		for i := range want {
			want[i] = true
		}
		return want, nil
	}
	for _, c := range cols {
		if c < 0 || c >= ncols {
			return nil, errColRange(c)
		}
		want[c] = true
	}
	return want, nil
}

// ReadColVecs reads the given columns of block b (all when cols is nil) in
// their on-disk encoding, ready for the vectorized filter kernels.
// Unrequested columns are nil entries. bytesRead is the encoded I/O volume
// — for a v2 store this is what the column actually occupies on disk, the
// quantity engine profiles charge ByteCost against. The returned vectors
// are freshly allocated and safe to retain; hot paths should prefer
// ReadColVecsArena.
func (s *Store) ReadColVecs(b int, cols []int) (vecs []*ColVec, rows int, bytesRead int64, err error) {
	// A one-shot arena keeps a single read path; its storage simply dies
	// with this call instead of being reused.
	return s.ReadColVecsArena(b, cols, nil)
}

// ReadColVecsArena is ReadColVecs backed by caller-owned arena scratch:
// payload bytes, ColVec headers, and RLE run slices all come from ar, so
// a steady-state scan reads blocks without allocating. Runs of adjacent
// wanted columns are coalesced into one positioned read each — under
// ShareReads a full-width scan costs one pread per block instead of one
// per column. bytesRead still charges only wanted columns (gaps between
// wanted runs are neither read nor charged, identical to the per-column
// path). The returned vectors and everything they reference are valid
// only until the next ReadColVecsArena call on the same arena.
func (s *Store) ReadColVecsArena(b int, cols []int, ar *Arena) (vecs []*ColVec, rows int, bytesRead int64, err error) {
	f, ncols, nrows, release, err := s.readerAt(b)
	if err != nil || f == nil {
		return nil, 0, 0, err
	}
	defer release()
	if ar == nil {
		ar = new(Arena)
	}
	want, err := ar.wantCols(cols, ncols)
	if err != nil {
		return nil, 0, 0, err
	}
	vecs = ar.ptrs[:ncols]
	for c := range vecs {
		vecs[c] = nil
	}
	if !s.isV2() {
		// v1: fixed 8-byte columns laid out contiguously after the
		// header + per-column min/max.
		base := int64(12 + 16*ncols)
		colBytes := int64(8 * nrows)
		total := int64(0)
		for c := 0; c < ncols; c++ {
			if want[c] {
				total += colBytes
			}
		}
		payload := ar.buffer(total)
		pos := 0
		for c := 0; c < ncols; {
			if !want[c] {
				c++
				continue
			}
			r := c
			for r < ncols && want[r] {
				r++
			}
			span := int(colBytes) * (r - c)
			if _, err := f.ReadAt(payload[pos:pos+span], base+int64(c)*colBytes); err != nil {
				return nil, 0, 0, fmt.Errorf("blockstore: block %d col %d: %w", b, c, err)
			}
			for ; c < r; c++ {
				ar.vecs[c] = ColVec{Enc: EncPlain, N: nrows, raw: payload[pos : pos+int(colBytes)]}
				vecs[c] = &ar.vecs[c]
				pos += int(colBytes)
				bytesRead += colBytes
			}
		}
		return vecs, nrows, bytesRead, nil
	}
	metas := s.Blocks[b].Cols
	if len(metas) != ncols {
		return nil, 0, 0, fmt.Errorf("blockstore: block %d catalog describes %d columns, file has %d", b, len(metas), ncols)
	}
	total := int64(0)
	for c := 0; c < ncols; c++ {
		if want[c] {
			total += metas[c].Bytes
		}
	}
	// The buffer carries packSlack tail bytes past total; every column's
	// payload subslice keeps its capacity through that tail, so packed
	// parsing can extend in place (unaligned 8-byte loads) without a copy.
	payload := ar.buffer(total)
	pos := int64(0)
	off := v2HeaderSize(ncols)
	for c := 0; c < ncols; {
		if !want[c] {
			off += metas[c].Bytes
			c++
			continue
		}
		r := c
		span := int64(0)
		for r < ncols && want[r] {
			span += metas[r].Bytes
			r++
		}
		if _, err := f.ReadAt(payload[pos:pos+span], off); err != nil {
			return nil, 0, 0, fmt.Errorf("blockstore: block %d col %d: %w", b, c, err)
		}
		off += span
		for ; c < r; c++ {
			n := metas[c].Bytes
			if err := parseColVecInto(&ar.vecs[c], metas[c].Enc, nrows, payload[pos:pos+n], &ar.cols[c]); err != nil {
				return nil, 0, 0, fmt.Errorf("blockstore: block %d col %d: %w", b, c, err)
			}
			vecs[c] = &ar.vecs[c]
			pos += n
			bytesRead += n
		}
	}
	return vecs, nrows, bytesRead, nil
}

// ReadColumns reads the given columns of block b (all columns when cols is
// nil), decoded to plain int64 slices. Unrequested columns return nil
// slices — the columnar-pruning path of the DBMS engine profile. bytesRead
// reports encoded I/O volume for the cost model.
func (s *Store) ReadColumns(b int, cols []int) (data [][]int64, rows int, bytesRead int64, err error) {
	vecs, nrows, bytesRead, err := s.ReadColVecs(b, cols)
	if err != nil || vecs == nil {
		return nil, 0, 0, err
	}
	data = make([][]int64, len(vecs))
	for c, v := range vecs {
		if v != nil {
			data[c] = v.Decode(nil)
		}
	}
	return data, nrows, bytesRead, nil
}

// ColBytes returns the encoded on-disk size of the given columns of block
// b (nil = all). For v1 stores this is the logical 8 bytes per value.
func (s *Store) ColBytes(b int, cols []int) int64 {
	m := s.Blocks[b]
	if m.Rows == 0 {
		return 0
	}
	if !s.isV2() || len(m.Cols) == 0 {
		n := len(cols)
		if cols == nil {
			n = s.Schema.NumCols()
		}
		return int64(8*m.Rows) * int64(n)
	}
	var total int64
	if cols == nil {
		for _, cm := range m.Cols {
			total += cm.Bytes
		}
		return total
	}
	for _, c := range cols {
		total += m.Cols[c].Bytes
	}
	return total
}

// Sizes returns the store's total encoded (on-disk payload) and logical
// (decoded, 8 bytes per value) footprint — the compression headline of
// qdbench -exp compress.
func (s *Store) Sizes() cost.SizeStats {
	var st cost.SizeStats
	ncols := s.Schema.NumCols()
	for b, m := range s.Blocks {
		st.LogicalBytes += int64(8*m.Rows) * int64(ncols)
		st.EncodedBytes += s.ColBytes(b, nil)
	}
	return st
}

// ColumnStats summarizes one column's encodings and sizes across all
// blocks of a store.
type ColumnStats struct {
	Name  string
	Kind  table.Kind
	Encs  map[Encoding]int // blocks using each encoding
	Sizes cost.SizeStats
}

// ColumnStats reports per-column encoding choices and encoded vs logical
// sizes, in schema order.
func (s *Store) ColumnStats() []ColumnStats {
	out := make([]ColumnStats, s.Schema.NumCols())
	for c := range out {
		out[c] = ColumnStats{Name: s.Schema.Cols[c].Name, Kind: s.Schema.Cols[c].Kind, Encs: make(map[Encoding]int)}
	}
	for _, m := range s.Blocks {
		if m.Rows == 0 {
			continue
		}
		for c := range out {
			out[c].Sizes.LogicalBytes += int64(8 * m.Rows)
			if len(m.Cols) > 0 {
				out[c].Encs[m.Cols[c].Enc]++
				out[c].Sizes.EncodedBytes += m.Cols[c].Bytes
			} else {
				out[c].Encs[EncPlain]++
				out[c].Sizes.EncodedBytes += int64(8 * m.Rows)
			}
		}
	}
	return out
}

// ReadBlock reads a full block back into a table.
func (s *Store) ReadBlock(b int) (*table.Table, error) {
	data, nrows, _, err := s.ReadColumns(b, nil)
	if err != nil {
		return nil, err
	}
	if data == nil {
		return table.New(s.Schema, 0), nil
	}
	tbl, err := table.FromColumns(s.Schema, data)
	if err != nil {
		return nil, err
	}
	tbl.N = nrows
	return tbl, nil
}

// WriteSegment writes one standalone segment file holding the given rows
// of tbl (nil = all rows). Large leaves are "physically stored as multiple
// segments on storage" (Sec. 3.1); the online ingester appends segments
// per leaf as buffers fill. Segments use the v1 plain format — they are
// short-lived spill buffers, rewritten into encoded blocks at re-layout.
func WriteSegment(path string, tbl *table.Table, rows []int) (int64, error) {
	if rows == nil {
		rows = make([]int, tbl.N)
		for i := range rows {
			rows[i] = i
		}
	}
	bytes, _, _, err := writeBlockV1(path, tbl, rows)
	return bytes, err
}

// ReadSegment reads a segment written by WriteSegment.
func ReadSegment(path string, schema *table.Schema) (*table.Table, error) {
	st := &Store{Dir: "", Schema: schema, Format: FormatV1, Blocks: []BlockMeta{{ID: 0, Rows: -1, File: path}}}
	// Rows is unknown; read the header directly.
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 12)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("blockstore: segment header: %w", err)
	}
	f.Close()
	if string(hdr[:4]) != magicV1 {
		return nil, fmt.Errorf("blockstore: segment %q bad magic", path)
	}
	if int(binary.LittleEndian.Uint32(hdr[4:8])) != schema.NumCols() {
		return nil, fmt.Errorf("blockstore: segment %q column count mismatch", path)
	}
	st.Blocks[0].Rows = int(binary.LittleEndian.Uint32(hdr[8:12]))
	defer st.Close()
	return st.ReadBlock(0)
}
