package blockstore

// 8-wide unrolled, branch-free comparison kernels for the filter hot
// path. Each loop body computes eight 0/1 match bits with arithmetic
// only (no per-row branch for the CPU to predict), packs them into one
// byte, and ORs that byte into the selection bitmap word — i stays a
// multiple of 8, so the shifted byte never straddles a word boundary.
// RLE stays outside these kernels (filterRLE evaluates per run), and
// every caller zeroes `out` first, so |= writes are sufficient.
//
// Bit tricks (overflow-safe signed less-than via Hacker's Delight):
//   lt(a,b)  = msb( (a-b) ^ ((a^b) & ((a-b)^a)) )
//   ltu(a,b) = msb(a-b)            -- valid while a,b < 2^63; packed
//                                     codes are <= 2^56 (maxPackWidth)
//   eq(a,b)  = 1 ^ msb(x | -x)     where x = a^b
// The remaining operators are operand swaps and/or an XOR with 0xff
// applied to the packed byte (the scalar tails invert per row).

import (
	"encoding/binary"

	"repro/internal/expr"
)

// ltBit returns 1 if a < b (signed, overflow-safe), else 0.
func ltBit(a, b int64) uint64 {
	d := a - b
	return uint64(d^((a^b)&(d^a))) >> 63
}

// eqBit returns 1 if a == b, else 0.
func eqBit(a, b int64) uint64 {
	x := uint64(a ^ b)
	return ((x | -x) >> 63) ^ 1
}

// ltuBit returns 1 if a < b for unsigned operands below 2^63.
func ltuBit(a, b uint64) uint64 {
	return (a - b) >> 63
}

// orByte merges an 8-bit match group starting at row i (i % 8 == 0).
func (s *SelVec) orByte(i int, w uint64) {
	s[i>>6] |= w << (uint(i) & 63)
}

// plainVal loads plain value i of a raw little-endian payload.
func plainVal(raw []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(raw[8*i:]))
}

// filterPlainLt writes lt(value, lit) bits, XORed with inv (0 keeps
// Lt, 0xff turns it into Ge). Scalar tail rows invert individually.
func filterPlainLt(raw []byte, n int, lit int64, inv uint64, out *SelVec) {
	i := 0
	for ; i+8 <= n; i += 8 {
		w := ltBit(plainVal(raw, i), lit) |
			ltBit(plainVal(raw, i+1), lit)<<1 |
			ltBit(plainVal(raw, i+2), lit)<<2 |
			ltBit(plainVal(raw, i+3), lit)<<3 |
			ltBit(plainVal(raw, i+4), lit)<<4 |
			ltBit(plainVal(raw, i+5), lit)<<5 |
			ltBit(plainVal(raw, i+6), lit)<<6 |
			ltBit(plainVal(raw, i+7), lit)<<7
		out.orByte(i, w^inv)
	}
	for ; i < n; i++ {
		if (ltBit(plainVal(raw, i), lit)^inv)&1 != 0 {
			out.Set(i)
		}
	}
}

// filterPlainGt writes lt(lit, value) bits, XORed with inv (0 keeps
// Gt, 0xff turns it into Le).
func filterPlainGt(raw []byte, n int, lit int64, inv uint64, out *SelVec) {
	i := 0
	for ; i+8 <= n; i += 8 {
		w := ltBit(lit, plainVal(raw, i)) |
			ltBit(lit, plainVal(raw, i+1))<<1 |
			ltBit(lit, plainVal(raw, i+2))<<2 |
			ltBit(lit, plainVal(raw, i+3))<<3 |
			ltBit(lit, plainVal(raw, i+4))<<4 |
			ltBit(lit, plainVal(raw, i+5))<<5 |
			ltBit(lit, plainVal(raw, i+6))<<6 |
			ltBit(lit, plainVal(raw, i+7))<<7
		out.orByte(i, w^inv)
	}
	for ; i < n; i++ {
		if (ltBit(lit, plainVal(raw, i))^inv)&1 != 0 {
			out.Set(i)
		}
	}
}

// filterPlainEq writes eq(value, lit) bits.
func filterPlainEq(raw []byte, n int, lit int64, out *SelVec) {
	i := 0
	for ; i+8 <= n; i += 8 {
		w := eqBit(plainVal(raw, i), lit) |
			eqBit(plainVal(raw, i+1), lit)<<1 |
			eqBit(plainVal(raw, i+2), lit)<<2 |
			eqBit(plainVal(raw, i+3), lit)<<3 |
			eqBit(plainVal(raw, i+4), lit)<<4 |
			eqBit(plainVal(raw, i+5), lit)<<5 |
			eqBit(plainVal(raw, i+6), lit)<<6 |
			eqBit(plainVal(raw, i+7), lit)<<7
		out.orByte(i, w)
	}
	for ; i < n; i++ {
		if plainVal(raw, i) == lit {
			out.Set(i)
		}
	}
}

// filterPackedLt writes ltu(code, d) bits over packed codes, XORed
// with inv (0 keeps Lt-in-code-space, 0xff turns it into Ge).
func (v *ColVec) filterPackedLt(start, n int, d uint64, inv uint64, out *SelVec) {
	i := 0
	for ; i+8 <= n; i += 8 {
		w := ltuBit(v.code(start+i), d) |
			ltuBit(v.code(start+i+1), d)<<1 |
			ltuBit(v.code(start+i+2), d)<<2 |
			ltuBit(v.code(start+i+3), d)<<3 |
			ltuBit(v.code(start+i+4), d)<<4 |
			ltuBit(v.code(start+i+5), d)<<5 |
			ltuBit(v.code(start+i+6), d)<<6 |
			ltuBit(v.code(start+i+7), d)<<7
		out.orByte(i, w^inv)
	}
	for ; i < n; i++ {
		if (ltuBit(v.code(start+i), d)^inv)&1 != 0 {
			out.Set(i)
		}
	}
}

// filterPackedGt writes ltu(d, code) bits, XORed with inv (0 keeps Gt,
// 0xff turns it into Le).
func (v *ColVec) filterPackedGt(start, n int, d uint64, inv uint64, out *SelVec) {
	i := 0
	for ; i+8 <= n; i += 8 {
		w := ltuBit(d, v.code(start+i)) |
			ltuBit(d, v.code(start+i+1))<<1 |
			ltuBit(d, v.code(start+i+2))<<2 |
			ltuBit(d, v.code(start+i+3))<<3 |
			ltuBit(d, v.code(start+i+4))<<4 |
			ltuBit(d, v.code(start+i+5))<<5 |
			ltuBit(d, v.code(start+i+6))<<6 |
			ltuBit(d, v.code(start+i+7))<<7
		out.orByte(i, w^inv)
	}
	for ; i < n; i++ {
		if (ltuBit(d, v.code(start+i))^inv)&1 != 0 {
			out.Set(i)
		}
	}
}

// filterPackedEq writes eq(code, d) bits.
func (v *ColVec) filterPackedEq(start, n int, d uint64, out *SelVec) {
	i := 0
	for ; i+8 <= n; i += 8 {
		w := eqBit(int64(v.code(start+i)), int64(d)) |
			eqBit(int64(v.code(start+i+1)), int64(d))<<1 |
			eqBit(int64(v.code(start+i+2)), int64(d))<<2 |
			eqBit(int64(v.code(start+i+3)), int64(d))<<3 |
			eqBit(int64(v.code(start+i+4)), int64(d))<<4 |
			eqBit(int64(v.code(start+i+5)), int64(d))<<5 |
			eqBit(int64(v.code(start+i+6)), int64(d))<<6 |
			eqBit(int64(v.code(start+i+7)), int64(d))<<7
		out.orByte(i, w)
	}
	for ; i < n; i++ {
		if v.code(start+i) == d {
			out.Set(i)
		}
	}
}

// CmpSelect writes the selection of a[i] op b[i] over rows [0, n) into
// out (which must be zeroed) with the same 8-wide branch-free bodies —
// the advanced-cut (column vs column) kernel.
func CmpSelect(op expr.Op, a, b []int64, n int, out *SelVec) {
	var inv uint64
	switch op {
	case expr.Ge, expr.Le:
		inv = 0xff
	}
	switch op {
	case expr.Lt, expr.Ge: // Ge = not(Lt)
		i := 0
		for ; i+8 <= n; i += 8 {
			w := ltBit(a[i], b[i]) |
				ltBit(a[i+1], b[i+1])<<1 |
				ltBit(a[i+2], b[i+2])<<2 |
				ltBit(a[i+3], b[i+3])<<3 |
				ltBit(a[i+4], b[i+4])<<4 |
				ltBit(a[i+5], b[i+5])<<5 |
				ltBit(a[i+6], b[i+6])<<6 |
				ltBit(a[i+7], b[i+7])<<7
			out.orByte(i, w^inv)
		}
		for ; i < n; i++ {
			if (ltBit(a[i], b[i])^inv)&1 != 0 {
				out.Set(i)
			}
		}
	case expr.Gt, expr.Le: // Gt = Lt swapped, Le = not(Gt)
		i := 0
		for ; i+8 <= n; i += 8 {
			w := ltBit(b[i], a[i]) |
				ltBit(b[i+1], a[i+1])<<1 |
				ltBit(b[i+2], a[i+2])<<2 |
				ltBit(b[i+3], a[i+3])<<3 |
				ltBit(b[i+4], a[i+4])<<4 |
				ltBit(b[i+5], a[i+5])<<5 |
				ltBit(b[i+6], a[i+6])<<6 |
				ltBit(b[i+7], a[i+7])<<7
			out.orByte(i, w^inv)
		}
		for ; i < n; i++ {
			if (ltBit(b[i], a[i])^inv)&1 != 0 {
				out.Set(i)
			}
		}
	case expr.Eq:
		i := 0
		for ; i+8 <= n; i += 8 {
			w := eqBit(a[i], b[i]) |
				eqBit(a[i+1], b[i+1])<<1 |
				eqBit(a[i+2], b[i+2])<<2 |
				eqBit(a[i+3], b[i+3])<<3 |
				eqBit(a[i+4], b[i+4])<<4 |
				eqBit(a[i+5], b[i+5])<<5 |
				eqBit(a[i+6], b[i+6])<<6 |
				eqBit(a[i+7], b[i+7])<<7
			out.orByte(i, w)
		}
		for ; i < n; i++ {
			if a[i] == b[i] {
				out.Set(i)
			}
		}
	}
}
