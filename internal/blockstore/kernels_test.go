package blockstore

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/table"
)

// cmpOps are the operators the branch-free kernels implement.
var cmpOps = []expr.Op{expr.Lt, expr.Le, expr.Gt, expr.Ge, expr.Eq}

func opHolds(op expr.Op, a, b int64) bool {
	switch op {
	case expr.Lt:
		return a < b
	case expr.Le:
		return a <= b
	case expr.Gt:
		return a > b
	case expr.Ge:
		return a >= b
	case expr.Eq:
		return a == b
	}
	return false
}

// TestBitPrimitives drives the single-bit tricks through the values where
// the naive (a-b)<0 formulation overflows.
func TestBitPrimitives(t *testing.T) {
	vals := []int64{math.MinInt64, math.MinInt64 + 1, -3, -1, 0, 1, 2, 1 << 40, math.MaxInt64 - 1, math.MaxInt64}
	for _, a := range vals {
		for _, b := range vals {
			if got, want := ltBit(a, b) == 1, a < b; got != want {
				t.Errorf("ltBit(%d, %d) = %v, want %v", a, b, got, want)
			}
			if got, want := eqBit(a, b) == 1, a == b; got != want {
				t.Errorf("eqBit(%d, %d) = %v, want %v", a, b, got, want)
			}
			if a >= 0 && b >= 0 {
				if got, want := ltuBit(uint64(a), uint64(b)) == 1, a < b; got != want {
					t.Errorf("ltuBit(%d, %d) = %v, want %v", a, b, got, want)
				}
			}
		}
	}
}

// TestFilterKernelsVsScalar compares every encoding's Filter result with a
// direct scalar evaluation over adversarial data: random values, runs of
// duplicates, int64 extremes, and batch lengths that exercise both the
// 8-wide bodies and the scalar tails.
func TestFilterKernelsVsScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	datasets := map[string][]int64{
		"random":   randomInts(rng, 1000, -500, 500),
		"runs":     runInts(rng, 1000, 6),
		"extremes": extremeInts(rng, 1000),
	}
	for name, vals := range datasets {
		for _, kind := range []table.Kind{table.Numeric, table.Categorical} {
			enc, payload := encodeColumn(vals, kind)
			v, err := parseColVec(enc, len(vals), withSlack(payload))
			if err != nil {
				t.Fatalf("%s: parse %v: %v", name, enc, err)
			}
			lits := append([]int64{math.MinInt64, math.MaxInt64, vals[0], vals[1] - 1}, randomInts(rng, 8, -600, 600)...)
			for _, op := range cmpOps {
				for _, lit := range lits {
					p := expr.Pred{Op: op, Literal: lit}
					for _, span := range [][2]int{{0, len(vals)}, {0, 5}, {3, 997}, {128, 131}} {
						start, n := span[0], span[1]-span[0]
						var got SelVec
						v.Filter(p, start, n, &got)
						for i := 0; i < n; i++ {
							if got.Get(i) != opHolds(op, vals[start+i], lit) {
								t.Fatalf("%s/%v: op=%v lit=%d row %d (start %d): sel=%v val=%d",
									name, enc, op, lit, i, start, got.Get(i), vals[start+i])
							}
						}
						for i := n; i < BatchSize; i++ {
							if got.Get(i) {
								t.Fatalf("%s/%v: op=%v lit=%d: stray bit %d past n=%d", name, enc, op, lit, i, n)
							}
						}
					}
				}
			}
		}
	}
}

// TestCmpSelectVsScalar checks the column-vs-column kernel used by
// advanced cuts, extremes included.
func TestCmpSelectVsScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 7, 8, 9, 64, 1000, BatchSize} {
		a := extremeInts(rng, n)
		b := extremeInts(rng, n)
		for i := 0; i < n/3; i++ { // force equal pairs so Eq/Le/Ge see both outcomes
			j := rng.Intn(n)
			b[j] = a[j]
		}
		for _, op := range cmpOps {
			var got SelVec
			got.Zero()
			CmpSelect(op, a, b, n, &got)
			for i := 0; i < n; i++ {
				if got.Get(i) != opHolds(op, a[i], b[i]) {
					t.Fatalf("CmpSelect n=%d op=%v row %d: %d vs %d, sel=%v", n, op, i, a[i], b[i], got.Get(i))
				}
			}
			for i := n; i < BatchSize; i++ {
				if got.Get(i) {
					t.Fatalf("CmpSelect n=%d op=%v: stray bit %d", n, op, i)
				}
			}
		}
	}
}

func randomInts(rng *rand.Rand, n int, lo, hi int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = lo + rng.Int63n(hi-lo+1)
	}
	return out
}

func runInts(rng *rand.Rand, n, distinct int) []int64 {
	out := make([]int64, n)
	val := rng.Int63n(int64(distinct))
	for i := range out {
		if rng.Intn(10) == 0 {
			val = rng.Int63n(int64(distinct))
		}
		out[i] = val
	}
	return out
}

func extremeInts(rng *rand.Rand, n int) []int64 {
	spikes := []int64{math.MinInt64, math.MinInt64 + 1, -1, 0, 1, math.MaxInt64 - 1, math.MaxInt64}
	out := make([]int64, n)
	for i := range out {
		if rng.Intn(4) == 0 {
			out[i] = spikes[rng.Intn(len(spikes))]
		} else {
			out[i] = rng.Int63() - rng.Int63()
		}
	}
	return out
}

func withSlack(payload []byte) []byte {
	buf := make([]byte, len(payload), len(payload)+packSlack)
	copy(buf, payload)
	return buf
}
