package delta

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/blockstore"
)

// markerFile records an in-flight compaction inside the delta directory.
const markerFile = "COMPACTING.json"

// Marker is the crash-recovery record of one compaction: the delta
// segments folded into generation Gen. It is written (tmp + rename)
// before the CURRENT pointer flips and cleared after the segments are
// deleted. On restart the invariant is simple: if the live generation is
// at least Gen, the compaction committed and the listed segments are
// duplicates to delete; otherwise the flip never happened and the
// segments are still the only copy of their rows.
type Marker struct {
	Gen  int   `json:"gen"`
	Segs []int `json:"segs"`
}

// WriteMarker durably records m in dir via tmp + rename.
func WriteMarker(dir string, m Marker) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, markerFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, markerFile))
}

// ReadMarker returns dir's compaction marker, or (nil, nil) when none
// exists.
func ReadMarker(dir string) (*Marker, error) {
	data, err := os.ReadFile(filepath.Join(dir, markerFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m Marker
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("delta: decode compaction marker: %w", err)
	}
	return &m, nil
}

// ClearMarker removes dir's compaction marker (a no-op when absent).
func ClearMarker(dir string) error {
	err := os.Remove(filepath.Join(dir, markerFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// RemoveSegmentFiles deletes the named delta segments from dir, ignoring
// files already gone — recovery may retry a deletion that half-finished.
func RemoveSegmentFiles(dir string, ids []int) error {
	for _, id := range ids {
		err := os.Remove(filepath.Join(dir, blockstore.DeltaSegName(id)))
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	return nil
}
