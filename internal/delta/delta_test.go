package delta

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/table"
)

func testSchema() *table.Schema {
	return table.MustSchema([]table.Column{
		{Name: "x", Kind: table.Numeric, Min: 0, Max: 999},
		{Name: "s", Kind: table.Categorical, Dom: 3, Dict: []string{"a", "b", "c"}},
	})
}

func rowsOf(tables []*table.Table) [][]int64 {
	var out [][]int64
	for _, t := range tables {
		row := make([]int64, t.Schema.NumCols())
		for r := 0; r < t.N; r++ {
			row = t.Row(r, row)
			out = append(out, append([]int64(nil), row...))
		}
	}
	return out
}

func TestInsertSealsAndSnapshots(t *testing.T) {
	s, warns, err := Open(testSchema(), Options{MemtableRows: 4})
	if err != nil || len(warns) != 0 {
		t.Fatalf("open: %v %v", err, warns)
	}
	var want [][]int64
	for i := 0; i < 10; i++ {
		row := []int64{int64(i), int64(i % 3)}
		want = append(want, row)
		if err := s.Insert([][]int64{row}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Rows() != 10 || s.Segments() != 2 {
		t.Fatalf("rows=%d segments=%d, want 10/2", s.Rows(), s.Segments())
	}
	if s.RowsIngested() != 10 {
		t.Fatalf("ingested %d", s.RowsIngested())
	}
	got := rowsOf(s.Snapshot())
	if len(got) != 10 {
		t.Fatalf("snapshot rows %d", len(got))
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("row %d = %v, want %v (insertion order must be preserved)", i, got[i], want[i])
		}
	}
	if _, ok := s.Oldest(); !ok {
		t.Fatal("non-empty delta must report an oldest row")
	}
}

func TestInsertValidatesWholeBatchFirst(t *testing.T) {
	s, _, err := Open(testSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Width mismatch.
	if err := s.Insert([][]int64{{1}}); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("short row: %v, want ErrSchemaMismatch", err)
	}
	// Categorical code outside the dictionary.
	if err := s.Insert([][]int64{{1, 7}}); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("bad code: %v, want ErrSchemaMismatch", err)
	}
	// A bad row anywhere rejects the batch atomically.
	if err := s.Insert([][]int64{{1, 0}, {2, -1}}); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("mixed batch: %v, want ErrSchemaMismatch", err)
	}
	if s.Rows() != 0 {
		t.Fatalf("rejected batches must leave the store unchanged, got %d rows", s.Rows())
	}
}

func TestFlushIsIdempotentAndDurable(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(testSchema(), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert([][]int64{{1, 0}, {2, 1}, {3, 2}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // repeated flushes seal exactly once
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	files, _ := filepath.Glob(filepath.Join(dir, "delta_*.qdb"))
	if len(files) != 1 {
		t.Fatalf("segment files %v, want exactly 1", files)
	}
	if s.Segments() != 1 || s.Rows() != 3 {
		t.Fatalf("segments=%d rows=%d", s.Segments(), s.Rows())
	}
}

func TestCloseSealsAndRecoversAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(testSchema(), Options{Dir: dir, MemtableRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ { // one sealed segment + 2 buffered rows
		if err := s.Insert([][]int64{{int64(i), 0}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close must be idempotent:", err)
	}
	if err := s.Insert([][]int64{{9, 0}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("insert after close: %v, want ErrClosed", err)
	}
	if err := s.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush after close: %v, want ErrClosed", err)
	}
	if _, err := s.BeginCompaction(); !errors.Is(err, ErrClosed) {
		t.Fatalf("begin after close: %v, want ErrClosed", err)
	}

	re, warns, err := Open(testSchema(), Options{Dir: dir, MemtableRows: 4})
	if err != nil || len(warns) != 0 {
		t.Fatalf("reopen: %v %v", err, warns)
	}
	if re.Rows() != 6 {
		t.Fatalf("recovered %d rows, want all 6 (Close seals the memtable)", re.Rows())
	}
	got := rowsOf(re.Snapshot())
	for i := range got {
		if got[i][0] != int64(i) {
			t.Fatalf("recovered row %d = %v, want x=%d", i, got[i], i)
		}
	}
}

func TestReopenQuarantinesTornSegment(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(testSchema(), Options{Dir: dir, MemtableRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert([][]int64{{1, 0}, {2, 1}, {3, 2}, {4, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the second segment's tail, as a crash mid-append would.
	torn := filepath.Join(dir, blockstore.DeltaSegName(1))
	info, err := os.Stat(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(torn, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	re, warns, err := Open(testSchema(), Options{Dir: dir, MemtableRows: 2})
	if err != nil {
		t.Fatal("a torn segment must not fail Open:", err)
	}
	if len(warns) != 1 {
		t.Fatalf("warnings %v, want exactly one for the torn segment", warns)
	}
	if re.Rows() != 2 {
		t.Fatalf("recovered %d rows, want 2 (intact segment only)", re.Rows())
	}
	if _, err := os.Stat(torn + blockstore.QuarantineSuffix); err != nil {
		t.Fatal("torn segment must be renamed aside, not deleted:", err)
	}
	// The quarantined id is not reused: the next seal gets a fresh id.
	if err := re.Insert([][]int64{{5, 0}, {6, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, blockstore.DeltaSegName(2))); err != nil {
		t.Fatal("next segment must use id 2:", err)
	}
}

func TestCheckpointCompleteKeepsRacingInserts(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(testSchema(), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert([][]int64{{1, 0}, {2, 1}}); err != nil {
		t.Fatal(err)
	}
	cp, err := s.BeginCompaction()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Rows != 2 || len(cp.SegIDs()) != 1 {
		t.Fatalf("checkpoint rows=%d segs=%v", cp.Rows, cp.SegIDs())
	}
	// A racing insert lands in the next memtable and misses the checkpoint.
	if err := s.Insert([][]int64{{3, 2}}); err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 3 {
		t.Fatal("checkpointed rows must keep serving until Complete")
	}
	paths := s.Complete(cp)
	if len(paths) != 1 {
		t.Fatalf("paths %v, want the checkpointed segment file", paths)
	}
	if s.Rows() != 1 {
		t.Fatalf("after Complete rows=%d, want just the racing insert", s.Rows())
	}
	if got := rowsOf(s.Snapshot()); len(got) != 1 || got[0][0] != 3 {
		t.Fatalf("surviving rows %v, want [[3 2]]", got)
	}
}

func TestSnapshotIsImmuneToLaterInserts(t *testing.T) {
	s, _, err := Open(testSchema(), Options{MemtableRows: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert([][]int64{{1, 0}, {2, 1}}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	for i := 0; i < 100; i++ {
		if err := s.Insert([][]int64{{int64(100 + i), 0}}); err != nil {
			t.Fatal(err)
		}
	}
	got := rowsOf(snap)
	if len(got) != 2 || got[0][0] != 1 || got[1][0] != 2 {
		t.Fatalf("snapshot changed under later inserts: %v", got)
	}
}

// TestMarkerRoundTrip pins the crash-recovery record's own contract;
// how serving reconciles it is covered in internal/serve.
func TestMarkerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if m, err := ReadMarker(dir); err != nil || m != nil {
		t.Fatalf("empty dir: marker %+v err %v, want nil, nil", m, err)
	}
	if err := ClearMarker(dir); err != nil {
		t.Fatal("clearing an absent marker must be a no-op:", err)
	}
	want := Marker{Gen: 7, Segs: []int{0, 2}}
	if err := WriteMarker(dir, want); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMarker(dir)
	if err != nil || m == nil || m.Gen != 7 || len(m.Segs) != 2 {
		t.Fatalf("read back %+v err %v, want %+v", m, err, want)
	}
	if err := ClearMarker(dir); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadMarker(dir); err != nil || m != nil {
		t.Fatalf("after clear: marker %+v err %v", m, err)
	}
	// A corrupt marker is an error, not a silent nil.
	if err := os.WriteFile(filepath.Join(dir, "COMPACTING.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMarker(dir); err == nil {
		t.Fatal("corrupt marker must error")
	}
}

func TestRemoveSegmentFiles(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(testSchema(), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert([][]int64{{1, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Schema() != testSchema() && s.Schema().NumCols() != 2 {
		t.Fatal("Schema accessor")
	}
	if s.Bytes() != int64(s.Rows())*8*2 {
		t.Fatalf("Bytes %d", s.Bytes())
	}
	// id 0 exists, id 9 doesn't — both must succeed (recovery retries).
	if err := RemoveSegmentFiles(dir, []int{0, 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, blockstore.DeltaSegName(0))); !os.IsNotExist(err) {
		t.Fatal("segment 0 must be deleted")
	}
}
