// Package delta is the writable half of the LSM-style streaming ingest
// path: an in-memory memtable absorbs Insert traffic, seals into
// append-only delta segment files when full, and the sealed set is folded
// into the learned base layout by compaction (internal/serve routes the
// rows through the live qd-tree into a fresh generation; qd.Engine
// rewrites its store in place).
//
// Until compacted, delta rows are served unpruned: Snapshot returns a
// point-in-time view (sealed segment tables plus the memtable prefix)
// that internal/exec scans through the same vectorized kernels as base
// blocks, so `delta ∪ base` results stay bit-identical to the
// row-at-a-time reference.
//
// Compaction is a two-phase checkpoint: BeginCompaction seals the
// memtable and freezes the sealed set — inserts racing with a compaction
// land in the next memtable — and Complete drops the checkpointed
// segments from the view once the compacted generation is live. A marker
// file (see Marker) makes the segment deletion crash-safe.
package delta

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/blockstore"
	"repro/internal/table"
)

// ErrClosed is returned by operations on a closed Store (and surfaced by
// the qd.Writer implementations for insert-after-Close).
var ErrClosed = errors.New("delta: store is closed")

// ErrSchemaMismatch is wrapped by Insert when a row does not fit the
// schema (wrong width, or a categorical code outside the dictionary).
// HTTP ingest maps it to 400.
var ErrSchemaMismatch = errors.New("delta: row does not match the schema")

// DefaultMemtableRows is the memtable seal threshold when Options leaves
// it zero.
const DefaultMemtableRows = 4096

// Options configure Open.
type Options struct {
	// Dir is where sealed segments are persisted (delta_NNNNNN.qdb). An
	// empty Dir keeps the delta memory-only — sealed segments then live
	// on the heap and vanish with the process.
	Dir string
	// MemtableRows seals the memtable into a segment once it reaches
	// this many rows (default DefaultMemtableRows).
	MemtableRows int
}

// Segment is one sealed, immutable run of inserted rows.
type Segment struct {
	ID     int
	Path   string // "" for memory-only stores
	Rows   int
	Oldest time.Time // arrival time of the segment's oldest row

	tbl *table.Table
}

// Store is a writable delta store. It is safe for concurrent use; reads
// (Snapshot, Rows, ...) take a shared lock and never block each other.
type Store struct {
	schema  *table.Schema
	dir     string
	memRows int

	mu        sync.RWMutex
	mem       *table.Table // open memtable; rows [0, mem.N) are immutable
	memOldest time.Time    // arrival of the memtable's first row
	sealed    []*Segment
	nextID    int
	closed    bool

	rowsIngested int64 // lifetime rows accepted by Insert
}

// Open creates or reopens a delta store. With a Dir, segments found on
// disk are validated and adopted; torn or corrupt files (crash
// mid-append) are quarantined and reported as warnings, never as errors.
// Recovered segments report their Oldest as the file's modification
// time — the best durable approximation of arrival.
func Open(schema *table.Schema, opt Options) (*Store, []string, error) {
	if schema == nil {
		return nil, nil, fmt.Errorf("delta: open needs a schema")
	}
	memRows := opt.MemtableRows
	if memRows <= 0 {
		memRows = DefaultMemtableRows
	}
	s := &Store{schema: schema, dir: opt.Dir, memRows: memRows, mem: table.New(schema, memRows)}
	if opt.Dir == "" {
		return s, nil, nil
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	segs, warns, err := blockstore.ScanDeltaSegments(opt.Dir, schema.NumCols())
	if err != nil {
		return nil, nil, err
	}
	for _, ds := range segs {
		tbl, err := blockstore.ReadSegment(ds.Path, schema)
		if err != nil {
			return nil, nil, fmt.Errorf("delta: read segment %s: %w", ds.Path, err)
		}
		oldest := time.Time{}
		if info, err := os.Stat(ds.Path); err == nil {
			oldest = info.ModTime()
		}
		s.sealed = append(s.sealed, &Segment{ID: ds.ID, Path: ds.Path, Rows: tbl.N, Oldest: oldest, tbl: tbl})
	}
	if s.nextID, err = blockstore.NextDeltaSegID(opt.Dir); err != nil {
		return nil, nil, err
	}
	return s, warns, nil
}

// Schema returns the store's schema.
func (s *Store) Schema() *table.Schema { return s.schema }

// checkRow validates one row against the schema: exact width, and
// categorical values must be in-dictionary codes (numeric values are
// unconstrained — block zone maps and re-derived layout bounds absorb
// out-of-range data).
func (s *Store) checkRow(row []int64) error {
	if len(row) != s.schema.NumCols() {
		return fmt.Errorf("%w: row has %d values, schema has %d columns", ErrSchemaMismatch, len(row), s.schema.NumCols())
	}
	for c, col := range s.schema.Cols {
		if col.Kind == table.Categorical && (row[c] < 0 || row[c] >= col.Dom) {
			return fmt.Errorf("%w: column %s code %d outside dictionary [0,%d)", ErrSchemaMismatch, col.Name, row[c], col.Dom)
		}
	}
	return nil
}

// Insert appends rows to the memtable, sealing it into a segment
// whenever it reaches the configured size. The whole batch is validated
// before any row is applied, so a rejected batch leaves the store
// unchanged. Inserted rows are visible to Snapshot immediately.
func (s *Store) Insert(rows [][]int64) error {
	for _, row := range rows {
		if err := s.checkRow(row); err != nil {
			return err
		}
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, row := range rows {
		if s.mem.N == 0 {
			s.memOldest = now
		}
		s.mem.AppendRow(row)
		s.rowsIngested++
		if s.mem.N >= s.memRows {
			if err := s.sealLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// sealLocked freezes the current memtable into a sealed segment (written
// to disk when the store has a directory) and starts a fresh memtable.
// Callers hold s.mu.
func (s *Store) sealLocked() error {
	if s.mem.N == 0 {
		return nil
	}
	seg := &Segment{ID: s.nextID, Rows: s.mem.N, Oldest: s.memOldest, tbl: s.mem}
	if s.dir != "" {
		seg.Path = filepath.Join(s.dir, blockstore.DeltaSegName(seg.ID))
		if _, err := blockstore.WriteSegment(seg.Path, s.mem, nil); err != nil {
			return fmt.Errorf("delta: seal segment: %w", err)
		}
	}
	s.nextID++
	s.sealed = append(s.sealed, seg)
	s.mem = table.New(s.schema, s.memRows)
	s.memOldest = time.Time{}
	return nil
}

// Flush seals the current memtable (making its rows durable when the
// store has a directory). It is idempotent: flushing an empty memtable,
// or flushing twice, is a no-op.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.sealLocked()
}

// Rows returns the uncompacted row count (sealed segments + memtable).
func (s *Store) Rows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.mem.N
	for _, seg := range s.sealed {
		n += seg.Rows
	}
	return n
}

// Segments returns the sealed, uncompacted segment count.
func (s *Store) Segments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sealed)
}

// Bytes returns the logical footprint of the uncompacted delta rows
// (8 bytes per value).
func (s *Store) Bytes() int64 {
	return int64(s.Rows()) * 8 * int64(s.schema.NumCols())
}

// RowsIngested returns the lifetime count of rows accepted by Insert,
// compacted or not — the denominator of write amplification.
func (s *Store) RowsIngested() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rowsIngested
}

// Oldest returns the arrival time of the oldest uncompacted row — the
// data-freshness stat. ok is false when the delta is empty.
func (s *Store) Oldest() (t time.Time, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.oldestLocked()
}

func (s *Store) oldestLocked() (time.Time, bool) {
	if len(s.sealed) > 0 {
		return s.sealed[0].Oldest, true
	}
	if s.mem.N > 0 {
		return s.memOldest, true
	}
	return time.Time{}, false
}

// Snapshot returns a point-in-time view of the uncompacted delta as a
// list of immutable tables, oldest first: every sealed segment, then the
// memtable's current prefix. The view is zero-copy — sealed tables are
// frozen, and the memtable prefix is safe because rows [0, N) are never
// mutated and later appends that grow a column reallocate its backing
// array rather than write in place.
func (s *Store) Snapshot() []*table.Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*table.Table, 0, len(s.sealed)+1)
	for _, seg := range s.sealed {
		out = append(out, seg.tbl)
	}
	if n := s.mem.N; n > 0 {
		cols := make([][]int64, len(s.mem.Cols))
		for c := range cols {
			cols[c] = s.mem.Cols[c][:n:n]
		}
		out = append(out, &table.Table{Schema: s.schema, Cols: cols, N: n})
	}
	return out
}

// Checkpoint freezes the delta contents at BeginCompaction time: the
// sealed segments a compaction will fold into the base.
type Checkpoint struct {
	Segs   []*Segment
	Rows   int
	Oldest time.Time // age of the oldest row in the checkpoint
}

// Tables returns the checkpointed rows as immutable tables, oldest first.
func (cp *Checkpoint) Tables() []*table.Table {
	out := make([]*table.Table, len(cp.Segs))
	for i, seg := range cp.Segs {
		out[i] = seg.tbl
	}
	return out
}

// SegIDs returns the checkpointed segment ids.
func (cp *Checkpoint) SegIDs() []int {
	ids := make([]int, len(cp.Segs))
	for i, seg := range cp.Segs {
		ids[i] = seg.ID
	}
	return ids
}

// BeginCompaction seals the memtable and returns a checkpoint of every
// sealed segment. The checkpointed rows keep serving reads (they remain
// in Snapshot) until Complete; inserts arriving during the compaction go
// to the fresh memtable and simply miss this checkpoint — they are
// picked up by the next one.
func (s *Store) BeginCompaction() (*Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if err := s.sealLocked(); err != nil {
		return nil, err
	}
	cp := &Checkpoint{Segs: append([]*Segment(nil), s.sealed...)}
	for _, seg := range cp.Segs {
		cp.Rows += seg.Rows
	}
	if len(cp.Segs) > 0 {
		cp.Oldest = cp.Segs[0].Oldest
	}
	return cp, nil
}

// Complete drops a checkpoint's segments from the served view — called
// under the caller's swap lock once the compacted generation is live, so
// a query sees either (old base + full delta) or (new base + remaining
// delta), never both copies of a row. It returns the segment file paths
// now eligible for deletion; the caller deletes them after clearing its
// compaction marker (see Marker).
func (s *Store) Complete(cp *Checkpoint) (paths []string) {
	done := make(map[int]bool, len(cp.Segs))
	for _, seg := range cp.Segs {
		done[seg.ID] = true
		if seg.Path != "" {
			paths = append(paths, seg.Path)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	keep := s.sealed[:0]
	for _, seg := range s.sealed {
		if !done[seg.ID] {
			keep = append(keep, seg)
		}
	}
	s.sealed = keep
	return paths
}

// Close seals the memtable (persisting any buffered rows) and marks the
// store closed. Further Inserts return ErrClosed. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.sealLocked()
	s.closed = true
	return err
}
