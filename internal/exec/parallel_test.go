package exec

import (
	"sync"
	"testing"
	"time"
)

// profiles and option sets exercised by the equivalence tests.
var eqProfiles = []Profile{EngineSpark, EngineDBMS}
var eqModes = []Mode{RouteQdTree, NoRoute}
var eqOptions = []Options{
	{Parallelism: 1},
	{Parallelism: 1, ShareReads: true},
	{Parallelism: 4},
	{Parallelism: 4, ShareReads: true},
	{Parallelism: 0}, // GOMAXPROCS
}

// TestWorkloadParallelEquivalence: per-query ScanStats and SimTime from the
// batched parallel engine must be bit-identical to sequential execution for
// every profile, mode, and Options value.
func TestWorkloadParallelEquivalence(t *testing.T) {
	st, layout, spec := fixture(t)
	defer st.Close()
	for _, prof := range eqProfiles {
		for _, mode := range eqModes {
			seq, seqTotal, err := RunWorkload(st, layout, spec.Queries, spec.ACs, prof, mode)
			if err != nil {
				t.Fatal(err)
			}
			for _, opt := range eqOptions {
				wr, err := RunWorkloadOpts(st, layout, spec.Queries, spec.ACs, prof, mode, opt)
				if err != nil {
					t.Fatal(err)
				}
				if len(wr.Results) != len(seq) {
					t.Fatalf("%s/%d/%+v: %d results, want %d", prof.Name, mode, opt, len(wr.Results), len(seq))
				}
				for i := range seq {
					got, want := wr.Results[i], seq[i]
					if got.ScanStats != want.ScanStats {
						t.Errorf("%s/%d/%+v %s: stats %+v, sequential %+v",
							prof.Name, mode, opt, want.Query, got.ScanStats, want.ScanStats)
					}
					if got.SimTime != want.SimTime {
						t.Errorf("%s/%d/%+v %s: SimTime %v, sequential %v",
							prof.Name, mode, opt, want.Query, got.SimTime, want.SimTime)
					}
				}
				if wr.TotalSimTime != seqTotal {
					t.Errorf("%s/%d/%+v: TotalSimTime %v, sequential %v", prof.Name, mode, opt, wr.TotalSimTime, seqTotal)
				}
				// The parallel estimate never exceeds the single stream.
				if wr.SimTime > wr.TotalSimTime {
					t.Errorf("%s/%d/%+v: parallel SimTime %v > sequential %v", prof.Name, mode, opt, wr.SimTime, wr.TotalSimTime)
				}
			}
		}
	}
}

// TestRunOptsEquivalence: the single-query pool path reports the same
// counters as the sequential path at any parallelism.
func TestRunOptsEquivalence(t *testing.T) {
	st, layout, spec := fixture(t)
	defer st.Close()
	for _, q := range spec.Queries {
		seq, err := Run(st, layout, q, spec.ACs, EngineSpark, RouteQdTree)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 4, 8} {
			par, err := RunOpts(st, layout, q, spec.ACs, EngineSpark, RouteQdTree, Options{Parallelism: p})
			if err != nil {
				t.Fatal(err)
			}
			if par.ScanStats != seq.ScanStats {
				t.Errorf("%s p=%d: stats %+v, sequential %+v", q.Name, p, par.ScanStats, seq.ScanStats)
			}
			if par.SimTime > seq.SimTime {
				t.Errorf("%s p=%d: parallel SimTime %v exceeds sequential %v", q.Name, p, par.SimTime, seq.SimTime)
			}
		}
	}
}

// TestParallelSimTimeDeterministic: repeated parallel runs must report the
// same simulated time bit-for-bit — the model is a function of the block
// set, never of goroutine scheduling.
func TestParallelSimTimeDeterministic(t *testing.T) {
	st, layout, spec := fixture(t)
	defer st.Close()
	opt := Options{Parallelism: 4, ShareReads: true}
	first, err := RunWorkloadOpts(st, layout, spec.Queries, spec.ACs, EngineSpark, RouteQdTree, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := RunWorkloadOpts(st, layout, spec.Queries, spec.ACs, EngineSpark, RouteQdTree, opt)
		if err != nil {
			t.Fatal(err)
		}
		if again.SimTime != first.SimTime || again.TotalSimTime != first.TotalSimTime {
			t.Fatalf("run %d: SimTime %v/%v, first %v/%v",
				i, again.SimTime, again.TotalSimTime, first.SimTime, first.TotalSimTime)
		}
	}
}

// TestParallelSimTimeModel checks the documented critical-path reduction:
// max(total/N, max block cost).
func TestParallelSimTimeModel(t *testing.T) {
	cases := []struct {
		total, crit time.Duration
		workers     int
		want        time.Duration
	}{
		{100, 10, 1, 100},
		{100, 10, 4, 25},
		{100, 60, 4, 60}, // one dominant block bounds the makespan
		{100, 10, 100, 10},
		{0, 0, 8, 0},
	}
	for _, c := range cases {
		if got := parallelSimTime(c.total, c.crit, c.workers); got != c.want {
			t.Errorf("parallelSimTime(%v, %v, %d) = %v, want %v", c.total, c.crit, c.workers, got, c.want)
		}
	}
}

// TestSharedReadsReadOnceFilterMany: with ShareReads a block is read once
// no matter how many queries scan it.
func TestSharedReadsReadOnceFilterMany(t *testing.T) {
	st, layout, spec := fixture(t)
	defer st.Close()
	wr, err := RunWorkloadOpts(st, layout, spec.Queries, spec.ACs, EngineSpark, RouteQdTree, Options{Parallelism: 2, ShareReads: true})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[int]bool{}
	var logicalReads int
	for _, q := range spec.Queries {
		cands, err := candidateBlocks(st, layout, q, RouteQdTree, nil)
		if err != nil {
			t.Fatal(err)
		}
		logicalReads += len(cands)
		for _, b := range cands {
			distinct[b] = true
		}
	}
	if wr.PhysicalReads != len(distinct) {
		t.Errorf("physical reads %d, distinct candidate blocks %d", wr.PhysicalReads, len(distinct))
	}
	if logicalReads > len(distinct) && wr.PhysicalReads >= logicalReads {
		t.Errorf("shared reads saved nothing: %d physical vs %d logical", wr.PhysicalReads, logicalReads)
	}
}

// TestConcurrentScanStress scans one store from many goroutines at once —
// the race-detector target for the shared block-reader and the pool.
func TestConcurrentScanStress(t *testing.T) {
	st, layout, spec := fixture(t)
	defer st.Close()
	exact, _, err := RunWorkload(st, layout, spec.Queries, spec.ACs, EngineDBMS, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				q := spec.Queries[(g+i)%len(spec.Queries)]
				res, err := RunOpts(st, layout, q, spec.ACs, EngineDBMS, RouteQdTree, Options{Parallelism: 4})
				if err != nil {
					errs <- err
					return
				}
				if res.ScanStats != exact[(g+i)%len(spec.Queries)].ScanStats {
					t.Errorf("goroutine %d: stats diverged under concurrency", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
