package exec

import (
	"testing"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/greedy"
	"repro/internal/workload"

	"repro/internal/core"
	"repro/internal/expr"
)

func toCuts(ps []workload.Pred2Cut) []core.Cut {
	out := make([]core.Cut, len(ps))
	for i, p := range ps {
		if p.IsAdv {
			out[i] = core.AdvancedCut(p.Adv)
		} else {
			out[i] = core.UnaryCut(p.Pred)
		}
	}
	return out
}

// fixture builds a greedy qd-tree layout over Fig3 and materializes it.
func fixture(t *testing.T) (*blockstore.Store, *cost.Layout, *workload.Spec) {
	t.Helper()
	spec := workload.Fig3(5000, 1)
	tree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
		MinSize: 50, Cuts: toCuts(spec.Cuts), Queries: spec.Queries})
	if err != nil {
		t.Fatal(err)
	}
	layout := cost.FromTree("greedy", tree, spec.Table)
	st, err := blockstore.Write(t.TempDir(), spec.Table, layout.BIDs, layout.NumBlocks())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, layout, spec
}

func TestRunMatchesExactCounts(t *testing.T) {
	st, layout, spec := fixture(t)
	exact := cost.PerQueryMatches(spec.Table, spec.Queries, spec.ACs)
	for i, q := range spec.Queries {
		res, err := Run(st, layout, q, spec.ACs, EngineSpark, RouteQdTree)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsMatched != exact[i] {
			t.Errorf("%s: matched %d, exact %d", q.Name, res.RowsMatched, exact[i])
		}
		if res.RowsScanned < res.RowsMatched {
			t.Errorf("%s: scanned %d < matched %d", q.Name, res.RowsScanned, res.RowsMatched)
		}
		if res.RowsScanned != layout.AccessedTuples(q) {
			t.Errorf("%s: engine scanned %d, layout model says %d", q.Name, res.RowsScanned, layout.AccessedTuples(q))
		}
	}
}

func TestNoRouteNeverMissesMatches(t *testing.T) {
	st, layout, spec := fixture(t)
	exact := cost.PerQueryMatches(spec.Table, spec.Queries, spec.ACs)
	for i, q := range spec.Queries {
		res, err := Run(st, layout, q, spec.ACs, EngineSpark, NoRoute)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsMatched != exact[i] {
			t.Errorf("%s: no-route matched %d, exact %d", q.Name, res.RowsMatched, exact[i])
		}
	}
}

func TestRoutingNeverScansMoreThanNoRoute(t *testing.T) {
	st, layout, spec := fixture(t)
	for _, q := range spec.Queries {
		routed, err := Run(st, layout, q, spec.ACs, EngineSpark, RouteQdTree)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Run(st, layout, q, spec.ACs, EngineSpark, NoRoute)
		if err != nil {
			t.Fatal(err)
		}
		if routed.BlocksScanned > plain.BlocksScanned {
			t.Errorf("%s: routing scanned %d blocks, no-route %d", q.Name, routed.BlocksScanned, plain.BlocksScanned)
		}
	}
}

func TestColumnarProfileReadsFewerBytes(t *testing.T) {
	st, layout, spec := fixture(t)
	q := spec.Queries[1] // single-column query
	full, err := Run(st, layout, q, spec.ACs, EngineSpark, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Run(st, layout, q, spec.ACs, EngineDBMS, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.BytesRead >= full.BytesRead {
		t.Errorf("columnar read %d bytes, full read %d", pruned.BytesRead, full.BytesRead)
	}
	if pruned.RowsMatched != full.RowsMatched {
		t.Error("profiles disagree on matches")
	}
}

func TestSimTimeMonotoneInWork(t *testing.T) {
	st, layout, spec := fixture(t)
	// The full-scan query Q1 must cost at least as much as selective Q2.
	r1, err := Run(st, layout, spec.Queries[0], spec.ACs, EngineSpark, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(st, layout, spec.Queries[1], spec.ACs, EngineSpark, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	if r1.RowsScanned < r2.RowsScanned {
		t.Skip("layout made Q1 cheaper; skip ordering check")
	}
	if r1.SimTime < r2.SimTime {
		t.Errorf("sim time not monotone: %v for %d rows vs %v for %d rows",
			r1.SimTime, r1.RowsScanned, r2.SimTime, r2.RowsScanned)
	}
}

func TestRunWorkloadAggregates(t *testing.T) {
	st, layout, spec := fixture(t)
	results, total, err := RunWorkload(st, layout, spec.Queries, spec.ACs, EngineDBMS, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(spec.Queries) {
		t.Fatalf("results = %d", len(results))
	}
	var sum int64
	for _, r := range results {
		sum += int64(r.SimTime)
	}
	if int64(total) != sum {
		t.Error("aggregate sim time mismatch")
	}
}

func TestQueryColumnsIncludesACs(t *testing.T) {
	spec := workload.TPCH(workload.TPCHConfig{Rows: 100, SeedsPerTmpl: 1, Seed: 1})
	for _, q := range spec.Queries {
		cols := queryColumns(q, spec.ACs)
		for _, a := range q.AdvRefs() {
			foundL, foundR := false, false
			for _, c := range cols {
				if c == spec.ACs[a].Left {
					foundL = true
				}
				if c == spec.ACs[a].Right {
					foundR = true
				}
			}
			if !foundL || !foundR {
				t.Fatalf("%s: AC%d columns missing from read set", q.Name, a)
			}
		}
		// Sorted and unique.
		for i := 1; i < len(cols); i++ {
			if cols[i] <= cols[i-1] {
				t.Fatalf("%s: column set not sorted/unique: %v", q.Name, cols)
			}
		}
	}
}

func TestRunUnknownMode(t *testing.T) {
	st, layout, spec := fixture(t)
	if _, err := Run(st, layout, spec.Queries[0], spec.ACs, EngineSpark, Mode(99)); err == nil {
		t.Error("unknown mode must error")
	}
}

func TestNoRouteOnFullScanQueryReadsEverything(t *testing.T) {
	st, layout, spec := fixture(t)
	full := expr.Query{Name: "full"} // nil root matches all rows
	res, err := Run(st, layout, full, spec.ACs, EngineSpark, NoRoute)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScanned != int64(spec.Table.N) {
		t.Errorf("full scan read %d of %d rows", res.RowsScanned, spec.Table.N)
	}
	if res.RowsMatched != int64(spec.Table.N) {
		t.Errorf("full scan matched %d of %d rows", res.RowsMatched, spec.Table.N)
	}
}

// TestVecEmptyConjunctionPartialBatch pins the SetFirst stale-bit
// regression: an empty conjunction (expr.And() with zero children — a
// public constructor) over a block larger than one batch must count
// exactly the block's rows, not leak selection bits from the previous
// full batch into the final partial one.
func TestVecEmptyConjunctionPartialBatch(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Fig3(blockstore.BatchSize+500, 21)
	st, err := blockstore.Write(dir, spec.Table, make([]int, spec.Table.N), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	vecs, nrows, _, err := st.ReadColVecs(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var scratch vecScratch
	for _, q := range []expr.Query{
		{Name: "empty-and", Root: &expr.Node{Kind: expr.KindAnd}},
		{Name: "nil-root"},
	} {
		if got := countMatchesVec(q, nil, vecs, nrows, &scratch); got != nrows {
			t.Errorf("%s: counted %d of %d rows", q.Name, got, nrows)
		}
	}
	if got := countMatchesVec(expr.Query{Name: "empty-or", Root: &expr.Node{Kind: expr.KindOr}}, nil, vecs, nrows, &scratch); got != 0 {
		t.Errorf("empty-or: counted %d rows, want 0", got)
	}
}
