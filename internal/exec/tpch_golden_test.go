package exec

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// tpchGoldenQueries are the row-returning TPC-H statements whose exact
// output is checked into testdata/tpch_golden/. Regenerate with
//
//	UPDATE_GOLDEN=1 go test ./internal/exec -run TestTPCHGoldenRows
//
// after an intentional change, and review the diff like any other code.
var tpchGoldenQueries = []struct{ name, sql string }{
	{"top_price", "SELECT l_orderkey, l_extendedprice, l_shipdate FROM lineitem " +
		"WHERE l_shipdate >= '1995-06-01' AND l_discount BETWEEN 0.05 AND 0.07 " +
		"ORDER BY l_extendedprice DESC, l_orderkey LIMIT 15"},
	{"returns_asc", "SELECT l_quantity, l_tax, l_suppkey FROM lineitem " +
		"WHERE l_returnflag = 'R' AND l_quantity <= 3 ORDER BY l_suppkey, l_quantity LIMIT 20"},
	{"nation_join", "SELECT c.l_orderkey, s.l_orderkey, c.cn_name FROM c JOIN s ON c.cn_name = s.sn_name " +
		"WHERE c.c_mktsegment = 'BUILDING' AND c.o_totalprice > 500000 AND s.o_orderdate < '1992-03-01' " +
		"ORDER BY c.l_orderkey, s.l_orderkey LIMIT 12"},
	{"quantity_join", "SELECT a.l_partkey, b.l_partkey, a.l_quantity FROM a JOIN b ON a.l_quantity = b.l_quantity " +
		"WHERE a.l_quantity < 3 AND b.l_shipdate >= '1998-01-01' " +
		"ORDER BY a.l_partkey DESC, b.l_partkey LIMIT 10"},
}

// TestTPCHGoldenRows executes the row/join statements over the fixed
// TPC-H generator and compares against checked-in expected rows — the
// regression net for the whole parse→plan→scan→TopK/join pipeline.
func TestTPCHGoldenRows(t *testing.T) {
	spec := workload.TPCH(workload.TPCHConfig{Rows: 20_000, Seed: 7})
	tbl := spec.Table
	bids := make([]int, tbl.N)
	for i := range bids {
		bids[i] = i * 16 / tbl.N
	}
	layout := cost.NewLayout("fixed", tbl, bids, 16, spec.ACs)
	st, err := blockstore.Write(t.TempDir(), tbl, bids, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, q := range tpchGoldenQueries {
		p := sqlparse.NewParser(tbl.Schema)
		stmt, err := p.ParseRowSelect(q.sql)
		if err != nil {
			t.Fatalf("%s: parse: %v", q.name, err)
		}
		var res *RowsResult
		var truth [][]int64
		if stmt.Join != nil {
			res, err = RunJoinOpts(st, layout, *stmt.Join, p.ACs, EngineDBMS, RouteQdTree, Options{Parallelism: 2})
			truth = ReferenceJoin(tbl, *stmt.Join, p.ACs)
		} else {
			res, err = RunRowsOpts(st, layout, *stmt.Row, p.ACs, EngineDBMS, RouteQdTree, Options{Parallelism: 2})
			truth = ReferenceSelect(tbl, *stmt.Row, p.ACs)
		}
		if err != nil {
			t.Fatalf("%s: exec: %v", q.name, err)
		}
		requireSameTuples(t, q.name+"/vs-reference", res.Rows, truth)

		var b strings.Builder
		fmt.Fprintf(&b, "# %s\n", q.sql)
		for _, row := range res.Rows {
			for j, v := range row {
				if j > 0 {
					b.WriteByte('\t')
				}
				fmt.Fprintf(&b, "%d", v)
			}
			b.WriteByte('\n')
		}
		path := filepath.Join("testdata", "tpch_golden", q.name+".golden")
		if update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden file (run with UPDATE_GOLDEN=1 to create): %v", q.name, err)
		}
		if string(want) != b.String() {
			t.Errorf("%s: output diverges from %s\n--- got ---\n%s--- want ---\n%s", q.name, path, b.String(), want)
		}
	}
}
