package exec

import (
	"math"
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/workload"
)

// The steady-state allocation pins. Per-query setup (worker accs, the
// result, pool bookkeeping) may allocate; per-BLOCK work must not — that
// is the whole point of the arena pass. Measuring "allocs per block is
// zero" directly is brittle, so these tests measure the MARGINAL cost:
// the same query over a small store and over a store with ~8x the
// blocks must allocate (nearly) the same, because everything per-block
// now lives in reused arena scratch.

// allocFixture materializes Fig3(n) into contiguous 500-row blocks.
func allocFixture(t *testing.T, n int) (*blockstore.Store, *cost.Layout) {
	t.Helper()
	spec := workload.Fig3(n, 1)
	bids := make([]int, n)
	for i := range bids {
		bids[i] = i / 500
	}
	nblocks := (n + 499) / 500
	layout := cost.NewLayout("flat", spec.Table, bids, nblocks, nil)
	st, err := blockstore.Write(t.TempDir(), spec.Table, bids, nblocks)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, layout
}

// measureAllocs reports steady-state allocations per call of fn, with GC
// disabled so the arena pool is not drained mid-measurement.
func measureAllocs(t *testing.T, fn func()) float64 {
	t.Helper()
	for i := 0; i < 3; i++ {
		fn() // warm arenas, file handles, and any lazily-grown scratch
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	const runs = 20
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs
}

// matchAll selects every row without letting SMA pruning drop blocks.
var matchAll = expr.Query{Name: "all", Root: expr.NewPred(expr.Pred{Col: 0, Op: expr.Ge, Literal: math.MinInt64})}

// TestScanAllocsDoNotScaleWithBlocks pins the count-scan path (the
// parscan experiment's engine) for both profiles: 56 extra blocks may
// not cost more than a handful of extra allocations.
func TestScanAllocsDoNotScaleWithBlocks(t *testing.T) {
	smallSt, smallLay := allocFixture(t, 4000) // 8 blocks
	bigSt, bigLay := allocFixture(t, 32000)    // 64 blocks
	for _, prof := range []Profile{EngineSpark, EngineDBMS} {
		run := func(st *blockstore.Store, lay *cost.Layout) func() {
			return func() {
				res, err := RunOpts(st, lay, matchAll, nil, prof, NoRoute, Options{Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				if res.BlocksScanned == 0 {
					t.Fatal("matchAll scanned no blocks")
				}
			}
		}
		small := measureAllocs(t, run(smallSt, smallLay))
		big := measureAllocs(t, run(bigSt, bigLay))
		if extra := big - small; extra > 8 {
			t.Errorf("%s: 56 extra blocks cost %.1f extra allocs/query (small=%.1f big=%.1f); scan scratch is allocating per block",
				prof.Name, extra, small, big)
		}
	}
}

// TestAggAllocsDoNotScaleWithBlocks pins the grouped-aggregation path,
// whose per-batch decode buffers were the heaviest per-block cost before
// the arena pass. cpu's domain is fixed at 100, so group-table growth is
// identical for both stores.
func TestAggAllocsDoNotScaleWithBlocks(t *testing.T) {
	smallSt, smallLay := allocFixture(t, 4000)
	bigSt, bigLay := allocFixture(t, 32000)
	aq := expr.AggQuery{
		Name:    "bycpu",
		GroupBy: []int{0},
		Aggs:    []expr.Agg{{Func: expr.AggCountStar}, {Func: expr.AggSum, Col: 1}},
	}
	run := func(st *blockstore.Store, lay *cost.Layout) func() {
		return func() {
			res, err := RunAggOpts(st, lay, aq, nil, EngineDBMS, NoRoute, Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) == 0 {
				t.Fatal("grouped query returned no groups")
			}
		}
	}
	small := measureAllocs(t, run(smallSt, smallLay))
	big := measureAllocs(t, run(bigSt, bigLay))
	// The 8x store has ~8x the rows, so the per-group accumulators see the
	// same 100 groups; only per-block work could differ.
	if extra := big - small; extra > 8 {
		t.Errorf("grouped agg: 56 extra blocks cost %.1f extra allocs/query (small=%.1f big=%.1f)", extra, small, big)
	}
}

// TestRowScanMarginalAllocsAreEmitsOnly pins the projection path: the
// only thing allowed to scale is the emitted tuples themselves (one
// slice per matched row — those escape into the result), never the
// per-block decode scratch.
func TestRowScanMarginalAllocsAreEmitsOnly(t *testing.T) {
	smallSt, smallLay := allocFixture(t, 4000)
	bigSt, bigLay := allocFixture(t, 32000)
	rq := expr.RowQuery{
		Name:   "narrow",
		Filter: expr.Query{Root: expr.NewPred(expr.Pred{Col: 1, Op: expr.Lt, Literal: 40})}, // ~0.4% of rows
		Cols:   []int{0, 1},
	}
	var smallRows, bigRows int64
	run := func(st *blockstore.Store, lay *cost.Layout, matched *int64) func() {
		return func() {
			res, err := RunRowsOpts(st, lay, rq, nil, EngineDBMS, NoRoute, Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			*matched = res.RowsMatched
		}
	}
	small := measureAllocs(t, run(smallSt, smallLay, &smallRows))
	big := measureAllocs(t, run(bigSt, bigLay, &bigRows))
	if bigRows <= smallRows {
		t.Fatalf("fixture broken: big store matched %d rows, small %d", bigRows, smallRows)
	}
	// Allow ~3 allocs per extra emitted row (tuple + amortized sink
	// growth) plus slack; 56 extra blocks of decode scratch would blow
	// far past this.
	budget := 3*float64(bigRows-smallRows) + 16
	if extra := big - small; extra > budget {
		t.Errorf("row scan: %.1f extra allocs/query for %d extra matched rows (budget %.0f; small=%.1f big=%.1f)",
			extra, bigRows-smallRows, budget, small, big)
	}
}
