package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/table"
)

// rowWorkload draws row queries over the aggFixture schema covering
// projections, filters, ORDER BY direction mixes, and LIMITs.
func rowWorkload(rng *rand.Rand) []expr.RowQuery {
	filters := []*expr.Node{
		nil,
		expr.NewPred(expr.Pred{Col: 1, Op: expr.Ge, Literal: 5}),
		expr.And(
			expr.NewPred(expr.Pred{Col: 2, Op: expr.Gt, Literal: int64(rng.Intn(500)) - 250}),
			expr.NewPred(expr.NewIn(3, []int64{0, 2, 4})),
		),
		expr.Or(
			expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: int64(rng.Intn(4000))}),
			expr.NewPred(expr.Pred{Col: 1, Op: expr.Eq, Literal: rng.Int63n(10)}),
		),
		expr.NewAdv(0),
		expr.NewPred(expr.Pred{Col: 0, Op: expr.Gt, Literal: 1 << 30}), // fully pruned
	}
	shapes := []struct {
		cols  []int
		order []expr.OrderKey
		limit int
	}{
		{cols: []int{0, 2}},
		{cols: []int{1, 4, 2}, limit: 7}, // LIMIT without ORDER BY
		{cols: []int{2}, order: []expr.OrderKey{{Pos: 0}}},
		{cols: []int{0, 1}, order: []expr.OrderKey{{Pos: 0, Desc: true}}, limit: 13},
		{cols: []int{3, 2, 0}, order: []expr.OrderKey{{Pos: 0}, {Pos: 1, Desc: true}}, limit: 50},
		{cols: []int{4, 4, 1}, order: []expr.OrderKey{{Pos: 2}, {Pos: 0}}, limit: 9},
		{cols: []int{0}, order: []expr.OrderKey{{Pos: 0}}, limit: 1},
	}
	var out []expr.RowQuery
	i := 0
	for _, root := range filters {
		for _, s := range shapes {
			out = append(out, expr.RowQuery{
				Name:    fmt.Sprintf("row%d", i),
				Cols:    s.cols,
				Filter:  expr.Query{Root: root},
				OrderBy: s.order,
				Limit:   s.limit,
			})
			i++
		}
	}
	return out
}

// requireSameTuples asserts two projected row sets are bit-identical.
func requireSameTuples(t *testing.T, label string, got, want [][]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s row %d: width %d, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s row %d: got %v, want %v", label, i, got[i], want[i])
			}
		}
	}
}

// TestRowsMatchReference is the row-query differential property: the
// streaming late-materializing executor and the decode-everything naive
// path agree bit-for-bit with the row-at-a-time table reference across
// profiles, pruning modes, and parallelism levels.
func TestRowsMatchReference(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		st, layout, tbl, acs := aggFixture(t, seed)
		rng := rand.New(rand.NewSource(seed * 31))
		for _, rq := range rowWorkload(rng) {
			truth := ReferenceSelect(tbl, rq, acs)
			for _, mode := range []Mode{RouteQdTree, NoRoute} {
				naive, err := RunRowsNaive(st, layout, rq, acs, EngineSpark, mode)
				if err != nil {
					t.Fatal(err)
				}
				requireSameTuples(t, fmt.Sprintf("%s/naive/mode%d", rq.Name, mode), naive.Rows, truth)
				for _, prof := range []Profile{EngineSpark, EngineDBMS} {
					for _, par := range []int{1, 4} {
						label := fmt.Sprintf("%s/%s/mode%d/p%d", rq.Name, prof.Name, mode, par)
						res, err := RunRowsOpts(st, layout, rq, acs, prof, mode, Options{Parallelism: par})
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						requireSameTuples(t, label, res.Rows, truth)
						// The TopK short-circuit legitimately stops before
						// counting every survivor; elsewhere the counters agree.
						if !(rq.Limit > 0 && len(rq.OrderBy) > 0) && res.RowsMatched != naive.RowsMatched {
							t.Fatalf("%s: matched %d, naive %d", label, res.RowsMatched, naive.RowsMatched)
						}
					}
				}
			}
		}
	}
}

// joinWorkload draws self-joins over the aggFixture schema: a
// code-space key (sev, shared nil dictionaries over equal domains), a
// high-cardinality numeric key (ts, hash path), and a small categorical
// key with filters on both sides.
func joinWorkload(rng *rand.Rand) []expr.JoinQuery {
	sevGe8 := expr.Query{Root: expr.NewPred(expr.Pred{Col: 1, Op: expr.Ge, Literal: 8})}
	durGt := expr.Query{Root: expr.NewPred(expr.Pred{Col: 2, Op: expr.Gt, Literal: 800})}
	tsLt := expr.Query{Root: expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 500})}
	bigHi := expr.Query{Root: expr.NewPred(expr.Pred{Col: 4, Op: expr.Gt, Literal: 1 << 30})}
	adv := expr.Query{Root: expr.And(expr.NewAdv(0), expr.NewPred(expr.Pred{Col: 1, Op: expr.Le, Literal: 2}))}
	return []expr.JoinQuery{
		{
			Name: "join-codespace", LeftTable: "t1", RightTable: "t2",
			LeftKey: 1, RightKey: 1,
			Cols:       []expr.ColRef{{Side: 0, Col: 0}, {Side: 1, Col: 2}, {Side: 0, Col: 1}},
			LeftFilter: sevGe8, RightFilter: durGt,
			OrderBy: []expr.OrderKey{{Pos: 0}, {Pos: 1, Desc: true}},
			Limit:   40,
		},
		{
			Name: "join-hash-ts", LeftTable: "a", RightTable: "b",
			LeftKey: 0, RightKey: 0,
			Cols:       []expr.ColRef{{Side: 0, Col: 0}, {Side: 0, Col: 1}, {Side: 1, Col: 1}},
			LeftFilter: tsLt, RightFilter: tsLt,
			OrderBy: []expr.OrderKey{{Pos: 0, Desc: true}},
			Limit:   25,
		},
		{
			Name: "join-host", LeftTable: "l", RightTable: "r",
			LeftKey: 3, RightKey: 3,
			Cols:       []expr.ColRef{{Side: 0, Col: 3}, {Side: 0, Col: 4}, {Side: 1, Col: 0}},
			LeftFilter: bigHi, RightFilter: tsLt,
			Limit: 30, // LIMIT without ORDER BY: best-30 by full tuple
		},
		{
			Name: "join-adv-unlimited", LeftTable: "x", RightTable: "y",
			LeftKey: 1, RightKey: 1,
			Cols:       []expr.ColRef{{Side: 0, Col: 1}, {Side: 1, Col: 3}},
			LeftFilter: adv, RightFilter: expr.Query{Root: expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 200})},
		},
		{
			Name: "join-empty-side", LeftTable: "p", RightTable: "q",
			LeftKey: 0, RightKey: 0,
			Cols:       []expr.ColRef{{Side: 0, Col: 0}, {Side: 1, Col: 2}},
			LeftFilter: expr.Query{Root: expr.NewPred(expr.Pred{Col: 0, Op: expr.Gt, Literal: 1 << 30})},
		},
	}
}

// TestJoinMatchesReference holds the partitioned hash join (both the
// dense code-space and the hashed build) to the quadratic nested-loop
// reference across profiles, modes, and parallelism.
func TestJoinMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		st, layout, tbl, acs := aggFixture(t, seed)
		rng := rand.New(rand.NewSource(seed * 77))
		for _, jq := range joinWorkload(rng) {
			truth := ReferenceJoin(tbl, jq, acs)
			for _, mode := range []Mode{RouteQdTree, NoRoute} {
				for _, prof := range []Profile{EngineSpark, EngineDBMS} {
					for _, par := range []int{1, 4} {
						label := fmt.Sprintf("%s/%s/mode%d/p%d", jq.Name, prof.Name, mode, par)
						res, err := RunJoinOpts(st, layout, jq, acs, prof, mode, Options{Parallelism: par})
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						requireSameTuples(t, label, res.Rows, truth)
						if res.Join == nil || res.Left == nil || res.Right == nil {
							t.Fatalf("%s: join stats missing", label)
						}
						wantCode := jq.LeftKey != 0 // sev/host joins share a categorical domain; ts hashes
						if res.Join.CodeSpace != wantCode {
							t.Errorf("%s: code_space=%v, want %v", label, res.Join.CodeSpace, wantCode)
						}
						if wantPart := joinPartitions; res.Join.CodeSpace {
							if res.Join.PartitionCount != 1 {
								t.Errorf("%s: code-space partitions %d, want 1", label, res.Join.PartitionCount)
							}
						} else if res.Join.PartitionCount != wantPart {
							t.Errorf("%s: partitions %d, want %d", label, res.Join.PartitionCount, wantPart)
						}
					}
				}
			}
		}
	}
}

// TestJoinStatsAccounting pins the join counters: RowsBuild/RowsProbe
// are the per-side filter survivors, RowsMatched is the join output
// before LIMIT, and the totals count the universe twice.
func TestJoinStatsAccounting(t *testing.T) {
	st, layout, tbl, acs := aggFixture(t, 4)
	jq := joinWorkload(rand.New(rand.NewSource(9)))[0]
	res, err := RunJoin(st, layout, jq, acs, EngineDBMS, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	var wantBuild, wantProbe int64
	row := make([]int64, tbl.Schema.NumCols())
	for r := 0; r < tbl.N; r++ {
		row = tbl.Row(r, row)
		if jq.LeftFilter.Eval(row, acs) {
			wantBuild++
		}
		if jq.RightFilter.Eval(row, acs) {
			wantProbe++
		}
	}
	if res.Join.RowsBuild != wantBuild || res.Join.RowsProbe != wantProbe {
		t.Errorf("build/probe = %d/%d, want %d/%d", res.Join.RowsBuild, res.Join.RowsProbe, wantBuild, wantProbe)
	}
	full := jq
	full.Limit = 0
	fres, err := RunJoin(st, layout, full, acs, EngineDBMS, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsMatched != int64(len(fres.Rows)) {
		t.Errorf("RowsMatched %d, want pre-LIMIT output %d", res.RowsMatched, len(fres.Rows))
	}
	b, r := storeTotals(st)
	if res.BlocksTotal != 2*b || res.RowsTotal != 2*r {
		t.Errorf("totals %d/%d, want doubled %d/%d", res.BlocksTotal, res.RowsTotal, 2*b, 2*r)
	}
	if res.Left.RowsMatched != wantBuild || res.Right.RowsMatched != wantProbe {
		t.Errorf("per-side stats %d/%d, want %d/%d", res.Left.RowsMatched, res.Right.RowsMatched, wantBuild, wantProbe)
	}
}

// TestTopKShortCircuit pins the zone-map-ordered early exit: with
// blocks ranged on the sort key, an ORDER BY ... LIMIT k query stops
// after the leading blocks in both directions, yet emits exactly the
// reference rows.
func TestTopKShortCircuit(t *testing.T) {
	st, layout, tbl, acs := aggFixture(t, 13)
	for _, desc := range []bool{false, true} {
		rq := expr.RowQuery{
			Name:    fmt.Sprintf("topk-desc=%v", desc),
			Cols:    []int{0, 1},
			OrderBy: []expr.OrderKey{{Pos: 0, Desc: desc}},
			Limit:   10,
		}
		res, err := RunRowsOpts(st, layout, rq, acs, EngineDBMS, RouteQdTree, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		requireSameTuples(t, rq.Name, res.Rows, ReferenceSelect(tbl, rq, acs))
		if res.BlocksScanned >= res.BlocksTotal {
			t.Errorf("%s: scanned all %d blocks — TopK did not short-circuit", rq.Name, res.BlocksScanned)
		}
	}
	// Without a LIMIT the scan must still visit every block.
	full := expr.RowQuery{Name: "full", Cols: []int{0}, OrderBy: []expr.OrderKey{{Pos: 0}}}
	res, err := RunRows(st, layout, full, acs, EngineDBMS, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksScanned != res.BlocksTotal {
		t.Errorf("unlimited ORDER BY scanned %d of %d blocks", res.BlocksScanned, res.BlocksTotal)
	}
}

// TestRowsLateMaterialization pins the projection read set under the
// columnar profile: a two-column query over a five-column store reads
// only the filter+projection columns.
func TestRowsLateMaterialization(t *testing.T) {
	st, layout, _, acs := aggFixture(t, 17)
	rq := expr.RowQuery{
		Name:   "narrow",
		Cols:   []int{2},
		Filter: expr.Query{Root: expr.NewPred(expr.Pred{Col: 1, Op: expr.Ge, Literal: 3})},
	}
	res, err := RunRows(st, layout, rq, acs, EngineDBMS, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for b := range st.Blocks {
		want += st.ColBytes(b, []int{1, 2})
	}
	if res.BytesRead != want {
		t.Errorf("read %d bytes, want only cols {1,2} = %d", res.BytesRead, want)
	}
}

// deltaFixture splits one logical table into a base store and two
// in-memory delta tables, returning the combined table as ground truth.
func deltaFixture(t *testing.T, seed int64) (*blockstore.Store, *cost.Layout, *DeltaView, *table.Table, []expr.AdvCut) {
	t.Helper()
	st, layout, tbl, acs := aggFixture(t, seed)
	rng := rand.New(rand.NewSource(seed + 1000))
	combined := table.New(tbl.Schema, tbl.N+600)
	row := make([]int64, tbl.Schema.NumCols())
	for r := 0; r < tbl.N; r++ {
		combined.AppendRow(tbl.Row(r, row))
	}
	dv := &DeltaView{}
	for d := 0; d < 2; d++ {
		dt := table.New(tbl.Schema, 300)
		for i := 0; i < 300; i++ {
			nr := []int64{
				rng.Int63n(1 << 20),
				rng.Int63n(10),
				int64(rng.Intn(2001)) - 1000,
				rng.Int63n(5),
				int64(int32(rng.Uint32())),
			}
			dt.AppendRow(nr)
			combined.AppendRow(nr)
		}
		dv.Tables = append(dv.Tables, dt)
	}
	return st, layout, dv, combined, acs
}

// TestRowsDeltaMatchesReference: row queries and joins over base∪delta
// equal the reference over the concatenated table.
func TestRowsDeltaMatchesReference(t *testing.T) {
	st, layout, dv, combined, acs := deltaFixture(t, 2)
	rng := rand.New(rand.NewSource(55))
	for _, rq := range rowWorkload(rng)[:14] {
		truth := ReferenceSelect(combined, rq, acs)
		for _, par := range []int{1, 3} {
			res, err := RunRowsDelta(st, layout, rq, acs, EngineSpark, RouteQdTree, Options{Parallelism: par}, dv)
			if err != nil {
				t.Fatal(err)
			}
			requireSameTuples(t, fmt.Sprintf("%s/delta/p%d", rq.Name, par), res.Rows, truth)
			if res.DeltaRows != 600 {
				t.Fatalf("%s: delta rows %d, want 600", rq.Name, res.DeltaRows)
			}
		}
	}
	for _, jq := range joinWorkload(rng)[:2] {
		truth := ReferenceJoin(combined, jq, acs)
		res, err := RunJoinDelta(st, layout, jq, acs, EngineDBMS, RouteQdTree, Options{Parallelism: 2}, dv)
		if err != nil {
			t.Fatal(err)
		}
		requireSameTuples(t, jq.Name+"/delta", res.Rows, truth)
	}
}

// TestRowQueryValidation rejects malformed queries at the door.
func TestRowQueryValidation(t *testing.T) {
	st, layout, _, acs := aggFixture(t, 3)
	bad := []expr.RowQuery{
		{Name: "empty-proj"},
		{Name: "col-oob", Cols: []int{99}},
		{Name: "order-oob", Cols: []int{0}, OrderBy: []expr.OrderKey{{Pos: 3}}},
		{Name: "neg-limit", Cols: []int{0}, Limit: -1},
	}
	for _, rq := range bad {
		if _, err := RunRows(st, layout, rq, acs, EngineSpark, RouteQdTree); err == nil {
			t.Errorf("%s: must error", rq.Name)
		}
	}
	badJoins := []expr.JoinQuery{
		{Name: "j-empty", LeftKey: 0, RightKey: 0},
		{Name: "j-key-oob", LeftKey: 99, RightKey: 0, Cols: []expr.ColRef{{Side: 0, Col: 0}}},
		{Name: "j-side", LeftKey: 0, RightKey: 0, Cols: []expr.ColRef{{Side: 2, Col: 0}}},
		{Name: "j-order", LeftKey: 0, RightKey: 0, Cols: []expr.ColRef{{Side: 0, Col: 0}}, OrderBy: []expr.OrderKey{{Pos: 5}}},
	}
	for _, jq := range badJoins {
		if _, err := RunJoin(st, layout, jq, acs, EngineSpark, RouteQdTree); err == nil {
			t.Errorf("%s: must error", jq.Name)
		}
	}
}
