package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/table"
)

// aggFixture builds a table mixing run-friendly, dictionary, and plain
// columns, a simple 8-block layout, and a materialized v2 store.
func aggFixture(t *testing.T, seed int64) (*blockstore.Store, *cost.Layout, *table.Table, []expr.AdvCut) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	schema := table.MustSchema([]table.Column{
		{Name: "ts", Kind: table.Numeric, Min: 0, Max: 1 << 20},
		{Name: "sev", Kind: table.Categorical, Dom: 10},
		{Name: "dur", Kind: table.Numeric, Min: -1000, Max: 1000},
		{Name: "host", Kind: table.Categorical, Dom: 5},
		{Name: "big", Kind: table.Numeric, Min: math.MinInt32, Max: math.MaxInt32},
	})
	n := 4000 + rng.Intn(2000)
	tbl := table.New(schema, n)
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += int64(rng.Intn(5)) // mostly-sorted -> RLE/FOR blocks
		tbl.AppendRow([]int64{
			ts,
			rng.Int63n(10),
			int64(rng.Intn(2001)) - 1000,
			rng.Int63n(5),
			int64(int32(rng.Uint32())),
		})
	}
	acs := []expr.AdvCut{{Left: 0, Op: expr.Lt, Right: 4}}
	bids := make([]int, n)
	for i := range bids {
		bids[i] = i * 8 / n
	}
	layout := cost.NewLayout("fixed", tbl, bids, 8, acs)
	st, err := blockstore.Write(t.TempDir(), tbl, bids, 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, layout, tbl, acs
}

// aggWorkload draws aggregate statements covering every function, with
// and without filters and grouping.
func aggWorkload(rng *rand.Rand) []expr.AggQuery {
	filters := []*expr.Node{
		nil,
		expr.NewPred(expr.Pred{Col: 1, Op: expr.Ge, Literal: 5}),
		expr.And(
			expr.NewPred(expr.Pred{Col: 2, Op: expr.Gt, Literal: int64(rng.Intn(500)) - 250}),
			expr.NewPred(expr.NewIn(3, []int64{0, 2, 4})),
		),
		expr.Or(
			expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: int64(rng.Intn(4000))}),
			expr.NewPred(expr.Pred{Col: 1, Op: expr.Eq, Literal: rng.Int63n(10)}),
		),
		expr.NewAdv(0),
		expr.NewPred(expr.Pred{Col: 0, Op: expr.Gt, Literal: 1 << 30}), // fully pruned
	}
	groupings := [][]int{nil, {1}, {3}, {3, 1}, {0}}
	allAggs := []expr.Agg{
		{Func: expr.AggCountStar},
		{Func: expr.AggCount, Col: 2},
		{Func: expr.AggSum, Col: 2},
		{Func: expr.AggSum, Col: 0},
		{Func: expr.AggMin, Col: 4},
		{Func: expr.AggMax, Col: 4},
		{Func: expr.AggAvg, Col: 2},
		{Func: expr.AggMin, Col: 0},
	}
	var out []expr.AggQuery
	i := 0
	for _, root := range filters {
		for _, gb := range groupings {
			aggs := make([]expr.Agg, 0, 4)
			for k := 0; k < 1+rng.Intn(4); k++ {
				aggs = append(aggs, allAggs[rng.Intn(len(allAggs))])
			}
			// Always include one of each count/sum family for coverage.
			aggs = append(aggs, expr.Agg{Func: expr.AggCountStar}, expr.Agg{Func: expr.AggAvg, Col: 2})
			out = append(out, expr.AggQuery{
				Name:    fmt.Sprintf("agg%d", i),
				Aggs:    aggs,
				GroupBy: gb,
				Filter:  expr.Query{Root: root},
			})
			i++
		}
	}
	return out
}

// requireSameRows asserts two result row sets are identical (exact
// integers; AVG within 1e-9 relative error).
func requireSameRows(t *testing.T, label string, got, want []AggRow) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if len(g.Key) != len(w.Key) {
			t.Fatalf("%s row %d: key %v, want %v", label, i, g.Key, w.Key)
		}
		for k := range w.Key {
			if g.Key[k] != w.Key[k] {
				t.Fatalf("%s row %d: key %v, want %v", label, i, g.Key, w.Key)
			}
		}
		if len(g.Vals) != len(w.Vals) {
			t.Fatalf("%s row %d: %d vals, want %d", label, i, len(g.Vals), len(w.Vals))
		}
		for v := range w.Vals {
			gv, wv := g.Vals[v], w.Vals[v]
			if gv.Valid != wv.Valid || gv.Int != wv.Int {
				t.Fatalf("%s row %d val %d: got %+v, want %+v", label, i, v, gv, wv)
			}
			if wv.Float != 0 || gv.Float != 0 {
				rel := math.Abs(gv.Float - wv.Float)
				if wv.Float != 0 {
					rel /= math.Abs(wv.Float)
				}
				if rel > 1e-9 {
					t.Fatalf("%s row %d val %d: AVG %v, want %v", label, i, v, gv.Float, wv.Float)
				}
			}
		}
	}
}

// TestAggregateMatchesReference is the exec-level differential property:
// the vectorized pushdown engine, the decode-then-aggregate executor, and
// the row-at-a-time table reference agree on every query across modes and
// parallelism levels.
func TestAggregateMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		st, layout, tbl, acs := aggFixture(t, seed)
		rng := rand.New(rand.NewSource(seed * 100))
		for _, aq := range aggWorkload(rng) {
			truth := ReferenceAggregate(tbl, aq, acs)
			for _, mode := range []Mode{RouteQdTree, NoRoute} {
				naive, err := RunAggNaive(st, layout, aq, acs, EngineSpark, mode)
				if err != nil {
					t.Fatal(err)
				}
				requireSameRows(t, fmt.Sprintf("%s/naive/mode%d", aq.Name, mode), naive.Rows, truth)
				for _, prof := range []Profile{EngineSpark, EngineDBMS} {
					for _, par := range []int{1, 4} {
						label := fmt.Sprintf("%s/%s/mode%d/p%d", aq.Name, prof.Name, mode, par)
						res, err := RunAggOpts(st, layout, aq, acs, prof, mode, Options{Parallelism: par})
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						requireSameRows(t, label, res.Rows, truth)
					}
				}
			}
		}
	}
}

// TestAggregateMetadataShortcuts pins the zone-map pushdown: filterless
// COUNT/MIN/MAX queries are answered from the catalog with zero physical
// reads, and a filterless SUM reads data but still serves MIN/MAX columns
// from metadata under the columnar profile.
func TestAggregateMetadataShortcuts(t *testing.T) {
	st, layout, tbl, acs := aggFixture(t, 7)
	metaOnly := expr.AggQuery{
		Name: "meta",
		Aggs: []expr.Agg{
			{Func: expr.AggCountStar},
			{Func: expr.AggMin, Col: 0},
			{Func: expr.AggMax, Col: 4},
			{Func: expr.AggCount, Col: 2},
		},
	}
	res, err := RunAgg(st, layout, metaOnly, acs, EngineSpark, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRows(t, "meta-only", res.Rows, ReferenceAggregate(tbl, metaOnly, acs))
	if res.BlocksScanned != 0 || res.RowsScanned != 0 || res.BytesRead != 0 {
		t.Errorf("metadata-only query did physical work: %+v", res.ScanStats)
	}
	if res.SimTime != 0 {
		t.Errorf("metadata-only query charged sim time %v", res.SimTime)
	}
	if res.RowsMatched != int64(tbl.N) {
		t.Errorf("matched %d rows, want %d", res.RowsMatched, tbl.N)
	}

	// SUM forces reads; the MIN column must still not be fetched under the
	// columnar profile (it is served from zone maps).
	mixed := expr.AggQuery{
		Name: "mixed",
		Aggs: []expr.Agg{{Func: expr.AggSum, Col: 2}, {Func: expr.AggMin, Col: 4}},
	}
	mres, err := RunAgg(st, layout, mixed, acs, EngineDBMS, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRows(t, "mixed", mres.Rows, ReferenceAggregate(tbl, mixed, acs))
	if mres.BlocksScanned == 0 {
		t.Fatal("SUM must read blocks")
	}
	var sumOnly int64
	for b := range st.Blocks {
		sumOnly += st.ColBytes(b, []int{2})
	}
	if mres.BytesRead != sumOnly {
		t.Errorf("read %d bytes, want only the SUM column's %d (MIN served from zone maps)", mres.BytesRead, sumOnly)
	}
}

// TestAggregateFilteredZoneMapShortcut pins the per-block form of the
// zone-map pushdown: under a range filter, blocks whose SMA proves every
// row matches are served from catalog metadata — a filtered MIN/MAX
// query scans only the filter's boundary blocks.
func TestAggregateFilteredZoneMapShortcut(t *testing.T) {
	st, layout, tbl, acs := aggFixture(t, 21)
	// ts is non-decreasing and blocks are position-ranged, so a threshold
	// inside block 5 leaves blocks 6 and 7 wholly above it.
	threshold := tbl.Cols[0][tbl.N*5/8] + 1
	aq := expr.AggQuery{
		Name:   "zmap",
		Aggs:   []expr.Agg{{Func: expr.AggCountStar}, {Func: expr.AggMin, Col: 4}, {Func: expr.AggMax, Col: 4}},
		Filter: expr.Query{Root: expr.NewPred(expr.Pred{Col: 0, Op: expr.Ge, Literal: threshold})},
	}
	res, err := RunAggOpts(st, layout, aq, acs, EngineDBMS, RouteQdTree, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	requireSameRows(t, "filtered-zonemap", res.Rows, ReferenceAggregate(tbl, aq, acs))
	naive, err := RunAggNaive(st, layout, aq, acs, EngineDBMS, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsMatched != naive.RowsMatched {
		t.Fatalf("matched %d, naive %d", res.RowsMatched, naive.RowsMatched)
	}
	// The naive path scans every candidate; the pushdown path must have
	// answered the fully-matching blocks from metadata alone.
	if res.BlocksScanned >= naive.BlocksScanned {
		t.Errorf("pushdown scanned %d blocks, naive %d — fully-matched blocks were not served from zone maps",
			res.BlocksScanned, naive.BlocksScanned)
	}
}

// TestAggregateEmptySelection pins SQL empty-input semantics: COUNT is a
// valid 0, SUM/MIN/MAX/AVG are invalid, and GROUP BY yields no rows.
func TestAggregateEmptySelection(t *testing.T) {
	st, layout, _, acs := aggFixture(t, 9)
	none := expr.Query{Root: expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: -1})}
	global := expr.AggQuery{
		Name:   "empty",
		Aggs:   []expr.Agg{{Func: expr.AggCountStar}, {Func: expr.AggSum, Col: 2}, {Func: expr.AggMin, Col: 0}, {Func: expr.AggAvg, Col: 2}},
		Filter: none,
	}
	res, err := RunAgg(st, layout, global, acs, EngineSpark, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("global aggregate over empty selection: %d rows, want 1", len(res.Rows))
	}
	v := res.Rows[0].Vals
	if !v[0].Valid || v[0].Int != 0 {
		t.Errorf("COUNT(*) = %+v, want valid 0", v[0])
	}
	for i := 1; i < len(v); i++ {
		if v[i].Valid {
			t.Errorf("aggregate %d over empty selection must be invalid: %+v", i, v[i])
		}
	}
	grouped := global
	grouped.GroupBy = []int{1}
	gres, err := RunAgg(st, layout, grouped, acs, EngineSpark, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	if len(gres.Rows) != 0 {
		t.Errorf("grouped aggregate over empty selection: %d rows, want 0", len(gres.Rows))
	}
}

// TestAggregateColumnValidation rejects out-of-schema columns.
func TestAggregateColumnValidation(t *testing.T) {
	st, layout, _, acs := aggFixture(t, 11)
	if _, err := RunAgg(st, layout, expr.AggQuery{Aggs: []expr.Agg{{Func: expr.AggSum, Col: 99}}}, acs, EngineSpark, RouteQdTree); err == nil {
		t.Error("aggregate over unknown column must error")
	}
	if _, err := RunAgg(st, layout, expr.AggQuery{
		Aggs: []expr.Agg{{Func: expr.AggCountStar}}, GroupBy: []int{-1},
	}, acs, EngineSpark, RouteQdTree); err == nil {
		t.Error("grouping on unknown column must error")
	}
}

// TestAggregateDensePathMatchesMapPath: the code-space dense grouping and
// the generic map fallback agree — pinned by grouping on the same data
// through a categorical (dense) and numeric (map) view of one column.
func TestAggregateDensePathMatchesMapPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	catSchema := table.MustSchema([]table.Column{
		{Name: "k", Kind: table.Categorical, Dom: 7},
		{Name: "v", Kind: table.Numeric, Min: 0, Max: 1000},
	})
	numSchema := table.MustSchema([]table.Column{
		{Name: "k", Kind: table.Numeric, Min: 0, Max: 6},
		{Name: "v", Kind: table.Numeric, Min: 0, Max: 1000},
	})
	n := 3000
	catTbl, numTbl := table.New(catSchema, n), table.New(numSchema, n)
	for i := 0; i < n; i++ {
		row := []int64{rng.Int63n(7), rng.Int63n(1001)}
		catTbl.AppendRow(row)
		numTbl.AppendRow(row)
	}
	bids := make([]int, n)
	for i := range bids {
		bids[i] = i * 4 / n
	}
	aq := expr.AggQuery{
		Name:    "bykey",
		Aggs:    []expr.Agg{{Func: expr.AggCountStar}, {Func: expr.AggSum, Col: 1}, {Func: expr.AggAvg, Col: 1}},
		GroupBy: []int{0},
		Filter:  expr.Query{Root: expr.NewPred(expr.Pred{Col: 1, Op: expr.Ge, Literal: 100})},
	}
	var results [][]AggRow
	for _, tbl := range []*table.Table{catTbl, numTbl} {
		layout := cost.NewLayout("fixed", tbl, bids, 4, nil)
		st, err := blockstore.Write(t.TempDir(), tbl, bids, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunAggOpts(st, layout, aq, nil, EngineSpark, RouteQdTree, Options{Parallelism: 3})
		st.Close()
		if err != nil {
			t.Fatal(err)
		}
		requireSameRows(t, "vs-reference", res.Rows, ReferenceAggregate(tbl, aq, nil))
		results = append(results, res.Rows)
	}
	requireSameRows(t, "dense-vs-map", results[0], results[1])
}
