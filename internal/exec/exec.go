// Package exec is the scan-oriented query execution engine used to turn
// logical skipping into "physical" runtimes (Sec. 7.4.1, 7.5.1). It reads
// candidate blocks from a blockstore, evaluates the query's filter over
// them, and accounts rows/bytes/blocks plus a deterministic simulated time
// under an engine profile.
//
// Two profiles model the paper's engines:
//
//   - EngineSpark: row-group scanning over Parquet-like files — every
//     referenced block is read in full (all columns).
//   - EngineDBMS: a columnar DBMS — only the columns the query touches are
//     read (late materialization), with a lower per-row CPU cost.
//
// Simulated time is seek + bytes/bandwidth + rows×CPU, the same mechanism
// that drives the paper's wall-clock results; absolute seconds are not
// comparable to the paper's cluster, but layout orderings and ratios are.
// ByteCost charges the encoded (on-disk) bytes actually read — for block
// format v2 stores, compressed columns — while RowCost charges logical
// rows, so compression shows up as modeled scan speedup.
//
// # Vectorized filters over encoded columns
//
// Filters evaluate directly over each block's encoded columns
// (blockstore.ColVec) in batches of 1024 rows with selection bitmaps; see
// vector.go. Equality against dictionary-encoded columns compares packed
// codes without decoding, and AND skips a batch's remaining columns once
// its selection empties (late materialization). Counts are bit-identical
// to decoded row-at-a-time evaluation.
//
// # Parallel scans
//
// Candidate blocks are dispatched over a channel to a pool of scan workers
// (Options.Parallelism). Each worker accumulates its own ScanStats, merged
// once at the end, so the hot loop shares no state. Counters are exact sums
// over a fixed candidate set and therefore bit-identical to a sequential
// scan regardless of how the scheduler interleaved workers.
//
// # Deterministic parallel time accounting
//
// A parallel scan must report the same SimTime on every run, independent of
// actual goroutine scheduling. Instead of timing workers, the engine keeps
// two order-independent reductions over the deterministic per-block cost
// c(b) = SeekCost + bytes(b)·ByteCost + rows(b)·filters(b)·RowCost:
//
//	total = Σ c(b)   — the single-stream work
//	crit  = max c(b) — the critical path (one block is scanned by
//	                   exactly one worker)
//
// and models N workers as
//
//	SimTime(N) = max(total/N, crit)
//
// total/N is the throughput bound — I/O- and CPU-bound work divides evenly
// across the pool in the limit — and crit is the latency bound. For N=1
// the model degenerates to the exact sequential formula, so engine-profile
// orderings (Spark vs DBMS, qd-tree vs baseline) are preserved at every
// parallelism level.
package exec

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/obs"
)

// Profile models one execution engine.
type Profile struct {
	Name     string
	Columnar bool          // read only referenced columns
	SeekCost time.Duration // per block touched
	ByteCost time.Duration // per byte read (I/O)
	RowCost  time.Duration // per row filtered (CPU)
}

// EngineSpark approximates the distributed-Spark-over-Parquet setup of
// Fig. 5a: full block reads, per-block open overhead (remote blob store),
// moderate CPU cost. SeekCost is calibrated so that, at this repo's
// benchmark block sizes (10²–10³ rows vs the paper's 10⁵–10⁶), the
// seek:scan cost ratio matches the paper's testbed (~1–2% of a block
// read); with the paper's 8ms-per-54MB-block overheads applied to tiny
// blocks, seek time would swamp scan time and invert every comparison.
var EngineSpark = Profile{
	Name:     "spark",
	Columnar: false,
	SeekCost: 50 * time.Microsecond,
	ByteCost: 10 * time.Nanosecond, // ~100 MB/s effective scan bandwidth
	RowCost:  25 * time.Nanosecond,
}

// EngineDBMS approximates the single-node commercial columnar DBMS of
// Fig. 5b: column-pruned reads from local SSD, low per-block overhead
// (same block-size calibration note as EngineSpark).
var EngineDBMS = Profile{
	Name:     "dbms",
	Columnar: true,
	SeekCost: 5 * time.Microsecond,
	ByteCost: 2 * time.Nanosecond, // ~500 MB/s
	RowCost:  10 * time.Nanosecond,
}

// ScanStats are the physical counters of one or more block scans. They are
// exact sums over the scanned blocks, so a parallel scan reports counts
// bit-identical to a sequential scan of the same candidate set.
type ScanStats struct {
	BlocksScanned int
	RowsScanned   int64
	RowsMatched   int64
	// BytesRead is the encoded (on-disk) I/O volume — for block format v2
	// this is what the scanned columns physically occupy, the quantity
	// Profile.ByteCost charges. BytesLogical is the same data's decoded
	// footprint (8 bytes per value); BytesRead/BytesLogical is the scan's
	// effective compression ratio.
	BytesRead    int64
	BytesLogical int64
	// DeltaRows is the share of RowsScanned that came from the streaming
	// ingest delta (scanned unpruned; see delta.go). Zero for scans
	// without a delta view.
	DeltaRows int64
}

func (s *ScanStats) merge(o ScanStats) {
	s.BlocksScanned += o.BlocksScanned
	s.RowsScanned += o.RowsScanned
	s.RowsMatched += o.RowsMatched
	s.BytesRead += o.BytesRead
	s.BytesLogical += o.BytesLogical
	s.DeltaRows += o.DeltaRows
}

// simTime is the deterministic single-stream cost of the counted work.
func (s ScanStats) simTime(prof Profile) time.Duration {
	return time.Duration(s.BlocksScanned)*prof.SeekCost +
		time.Duration(s.BytesRead)*prof.ByteCost +
		time.Duration(s.RowsScanned)*prof.RowCost
}

// Result reports one query execution.
type Result struct {
	Query string
	ScanStats
	// BlocksTotal / RowsTotal are the store's non-empty block universe —
	// the denominator of the query's skip rate, surfaced so serving layers
	// can log per-query layout effectiveness without holding the store.
	BlocksTotal int
	RowsTotal   int64
	SimTime     time.Duration // deterministic cost-model time (see package doc)
	WallTime    time.Duration // measured wall clock of the scan
}

// SkipRate is the fraction of the store's rows the query skipped
// (1 = touched nothing, 0 = full scan) — the per-query form of the
// paper's accessed-percentage metric, recorded by the serving workload
// log to detect layout decay. An empty store reports 1 (the query
// touched nothing), never a divide-by-zero — a zero here would read as
// "full scan" and trip drift monitors on stores with no data.
func (r Result) SkipRate() float64 {
	if r.RowsTotal == 0 {
		return 1
	}
	return 1 - float64(r.RowsScanned)/float64(r.RowsTotal)
}

// storeTotals counts the store's non-empty blocks and their rows.
func storeTotals(store *blockstore.Store) (blocks int, rows int64) {
	for _, m := range store.Blocks {
		if m.Rows > 0 {
			blocks++
			rows += int64(m.Rows)
		}
	}
	return blocks, rows
}

// Mode selects how candidate blocks are pruned.
type Mode int

const (
	// RouteQdTree uses the layout's full semantic descriptions plus any
	// ExtraSkip — the "qd-tree routing" path that adds BID IN (...)
	// (Sec. 3.3).
	RouteQdTree Mode = iota
	// NoRoute uses only per-block min-max intervals (SMA / zone maps) —
	// the paper's "no route" configuration where the engine's default
	// partition pruning is the only skipping.
	NoRoute
)

// Options tune how a scan executes. They change scheduling only: the
// ScanStats of a scan are identical for every Options value.
type Options struct {
	// Parallelism is the scan worker pool size. 1 scans on the calling
	// goroutine; 0 or negative selects GOMAXPROCS.
	Parallelism int
	// ShareReads lets RunWorkloadOpts read each block once for all queries
	// that scan it (read-once, filter-many) instead of once per query.
	// Per-query accounting is unchanged — each query is still charged
	// exactly the bytes it alone would have read — but the workload-level
	// physical counters and SimTime reflect the shared reads.
	ShareReads bool
	// Trace, when non-nil, receives per-stage spans (block_prune, scan,
	// delta_scan, merge) with pruning-cause attributes for this
	// execution. Tracing never changes ScanStats; a nil Trace costs
	// nothing on the hot path.
	Trace *obs.Trace
}

func (o Options) workers() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// blockCost is the deterministic cost of scanning one block: one seek, the
// bytes read, and nfilters filter passes over its rows.
func blockCost(prof Profile, nbytes int64, nrows, nfilters int) time.Duration {
	return prof.SeekCost +
		time.Duration(nbytes)*prof.ByteCost +
		time.Duration(nrows)*time.Duration(nfilters)*prof.RowCost
}

// parallelSimTime reduces total work and critical-path cost to the modeled
// makespan of a pool of the given size (see package doc).
func parallelSimTime(total, crit time.Duration, workers int) time.Duration {
	if workers <= 1 {
		return total
	}
	t := total / time.Duration(workers)
	if crit > t {
		return crit
	}
	return t
}

// candidateBlocks selects the blocks query q must scan under mode, then
// drops any candidate the blockstore catalog's SMA (min/max) metadata
// proves non-matching. The sequential and parallel paths share this
// dispatch-time pruning, so both scan the exact same block set.
func candidateBlocks(store *blockstore.Store, layout *cost.Layout, q expr.Query, mode Mode, rec *pruneRecorder) ([]int, error) {
	var candidates []int
	switch mode {
	case RouteQdTree:
		candidates = layout.BlocksFor(q)
		if rec != nil {
			// Explain routing misses: any non-empty block absent from the
			// routed set. The leaf's Desc interval usually yields a single
			// predicate witness; advanced-cut routing may not.
			routed := make(map[int]bool, len(candidates))
			for _, b := range candidates {
				routed[b] = true
			}
			for b := range layout.Descs {
				if layout.Counts[b] == 0 || routed[b] {
					continue
				}
				p := BlockPrune{Block: b, By: "route"}
				if b < len(layout.Descs) {
					p = withCause(p, store.Schema, cost.MinMaxPruneCause(layout.Descs[b].Lo, layout.Descs[b].Hi, q))
				}
				rec.add(p)
			}
		}
	case NoRoute:
		for b := range layout.Descs {
			if layout.Counts[b] == 0 {
				continue
			}
			if cost.MinMaxMayMatch(layout.Descs[b].Lo, layout.Descs[b].Hi, q) {
				candidates = append(candidates, b)
			} else if rec != nil {
				rec.add(withCause(BlockPrune{Block: b, By: "sma"}, store.Schema,
					cost.MinMaxPruneCause(layout.Descs[b].Lo, layout.Descs[b].Hi, q)))
			}
		}
	default:
		return nil, fmt.Errorf("exec: unknown mode %d", mode)
	}
	out := candidates[:0]
	for _, b := range candidates {
		if b < 0 || b >= len(store.Blocks) {
			return nil, fmt.Errorf("exec: candidate block %d outside store of %d blocks", b, len(store.Blocks))
		}
		m := store.Blocks[b]
		if m.Rows == 0 {
			continue
		}
		if len(m.Min) > 0 && !cost.SMAMayMatch(m.Min, m.Max, q) {
			if rec != nil {
				rec.add(withCause(BlockPrune{Block: b, By: "sma"}, store.Schema,
					cost.SMAPruneCause(m.Min, m.Max, q)))
			}
			continue
		}
		out = append(out, b)
	}
	return out, nil
}

// runPool distributes tasks 0..n-1 over a pool of workers. fn receives the
// worker slot (for contention-free per-worker accumulators) and the task
// index. The first error stops useful work; remaining tasks are drained.
func runPool(n, workers int, fn func(worker, task int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	tasks := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := range tasks {
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				if failed {
					continue
				}
				if err := fn(slot, i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}(k)
	}
	for i := 0; i < n; i++ {
		tasks <- i
	}
	close(tasks)
	wg.Wait()
	return firstErr
}

// Run executes query q over the store under the given layout and profile,
// sequentially. It is RunOpts at Parallelism 1.
func Run(store *blockstore.Store, layout *cost.Layout, q expr.Query, acs []expr.AdvCut, prof Profile, mode Mode) (Result, error) {
	return RunOpts(store, layout, q, acs, prof, mode, Options{Parallelism: 1})
}

// RunOpts executes query q with a pool of opt.Parallelism scan workers
// pulling candidate blocks from a shared channel. ScanStats are identical
// to a sequential run; SimTime follows the deterministic parallel model of
// the package doc.
func RunOpts(store *blockstore.Store, layout *cost.Layout, q expr.Query, acs []expr.AdvCut, prof Profile, mode Mode, opt Options) (Result, error) {
	return RunDelta(store, layout, q, acs, prof, mode, opt, nil)
}

// RunDelta is RunOpts over the merged view `delta ∪ base`: base blocks
// are pruned as usual, then every table of the delta view is scanned in
// full (see delta.go). A nil view is a plain RunOpts.
func RunDelta(store *blockstore.Store, layout *cost.Layout, q expr.Query, acs []expr.AdvCut, prof Profile, mode Mode, opt Options, dv *DeltaView) (Result, error) {
	res := Result{Query: q.Name}
	res.BlocksTotal, res.RowsTotal = storeTotals(store)
	res.RowsTotal += dv.Rows()
	var rec *pruneRecorder
	if opt.Trace != nil {
		rec = &pruneRecorder{}
	}
	psp := opt.Trace.Start("block_prune")
	candidates, err := candidateBlocks(store, layout, q, mode, rec)
	rec.annotate(psp, res.BlocksTotal, len(candidates))
	psp.End()
	if err != nil {
		return res, err
	}
	var needCols []int
	if prof.Columnar {
		needCols = queryColumns(q, acs)
	}
	workers := opt.workers()
	logicalWidth := int64(8) * int64(len(needCols))
	if needCols == nil {
		logicalWidth = int64(8) * int64(store.Schema.NumCols())
	}
	type acc struct {
		stats   ScanStats
		crit    time.Duration
		scratch vecScratch
		arena   *blockstore.Arena
	}
	accs := make([]acc, max(workers, 1))
	for i := range accs {
		accs[i].arena = blockstore.GetArena()
	}
	defer func() {
		for i := range accs {
			blockstore.PutArena(accs[i].arena)
		}
	}()
	start := time.Now()
	ssp := opt.Trace.Start("scan")
	err = runPool(len(candidates), workers, func(slot, i int) error {
		a := &accs[slot]
		vecs, nrows, nbytes, err := store.ReadColVecsArena(candidates[i], needCols, a.arena)
		if err != nil {
			return err
		}
		if vecs == nil {
			return nil
		}
		a.stats.BlocksScanned++
		a.stats.RowsScanned += int64(nrows)
		a.stats.BytesRead += nbytes
		a.stats.BytesLogical += logicalWidth * int64(nrows)
		a.stats.RowsMatched += int64(countMatchesVec(q, acs, vecs, nrows, &a.scratch))
		if c := blockCost(prof, nbytes, nrows, 1); c > a.crit {
			a.crit = c
		}
		return nil
	})
	if err != nil {
		ssp.End()
		return res, err
	}
	var crit time.Duration
	for i := range accs {
		res.ScanStats.merge(accs[i].stats)
		if accs[i].crit > crit {
			crit = accs[i].crit
		}
	}
	ssp.SetAttr("blocks_scanned", res.BlocksScanned).
		SetAttr("rows_scanned", res.RowsScanned).
		SetAttr("rows_matched", res.RowsMatched).
		SetAttr("bytes_read", res.BytesRead)
	ssp.End()
	if tabs := dv.tables(); len(tabs) > 0 {
		dsp := opt.Trace.Start("delta_scan")
		for _, t := range tabs {
			accs[0].arena.ResetPlain()
			vecs, nbytes := deltaColVecs(t, needCols, accs[0].arena)
			res.BlocksScanned++
			res.DeltaRows += int64(t.N)
			res.RowsScanned += int64(t.N)
			res.BytesRead += nbytes
			res.BytesLogical += logicalWidth * int64(t.N)
			res.RowsMatched += int64(countMatchesVec(q, acs, vecs, t.N, &accs[0].scratch))
			if c := blockCost(prof, nbytes, t.N, 1); c > crit {
				crit = c
			}
		}
		dsp.SetAttr("delta_tables", len(tabs)).SetAttr("delta_rows", res.DeltaRows)
		dsp.End()
	}
	res.WallTime = time.Since(start)
	res.SimTime = parallelSimTime(res.simTime(prof), crit, workers)
	return res, nil
}

// RunWorkload executes every query sequentially and returns per-query
// results plus the aggregate simulated time. It is the compatibility
// entry point; RunWorkloadOpts is the batched parallel engine.
func RunWorkload(store *blockstore.Store, layout *cost.Layout, w []expr.Query, acs []expr.AdvCut, prof Profile, mode Mode) ([]Result, time.Duration, error) {
	out := make([]Result, 0, len(w))
	var total time.Duration
	for _, q := range w {
		r, err := Run(store, layout, q, acs, prof, mode)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, r)
		total += r.SimTime
	}
	return out, total, nil
}

// WorkloadResult reports a batched multi-query execution.
type WorkloadResult struct {
	Results []Result
	// TotalSimTime is Σ per-query SimTime — the single-stream engine time
	// RunWorkload reports, preserved here for profile-ordering comparisons.
	TotalSimTime time.Duration
	// SimTime is the deterministic estimate for the whole batch under
	// Options.Parallelism workers (and shared reads, if enabled).
	SimTime time.Duration
	// WallTime is the measured wall clock of the whole batch.
	WallTime time.Duration
	// PhysicalReads and PhysicalBytes count actual block-file reads. With
	// ShareReads they fall below the per-query sums because one read
	// serves every query that scans the block.
	PhysicalReads int
	PhysicalBytes int64
}

// RunWorkloadOpts executes a whole workload as one batch: candidates are
// pruned per query via the layout plus the store's SMA metadata, then
// dispatched to a pool of scan workers. With ShareReads, queries touching
// the same block share one physical read (read-once, filter-many).
// Per-query ScanStats and SimTime are bit-identical to sequential
// execution for every Options value.
func RunWorkloadOpts(store *blockstore.Store, layout *cost.Layout, w []expr.Query, acs []expr.AdvCut, prof Profile, mode Mode, opt Options) (*WorkloadResult, error) {
	return RunWorkloadDelta(store, layout, w, acs, prof, mode, opt, nil)
}

// RunWorkloadDelta is RunWorkloadOpts over `delta ∪ base`: after the
// batched block scan, every query additionally scans every delta table in
// full. Column conversions are shared across queries per delta table, but
// each query is charged exactly the bytes it alone references, matching
// the unshared accounting of block scans. A nil view is a plain
// RunWorkloadOpts.
func RunWorkloadDelta(store *blockstore.Store, layout *cost.Layout, w []expr.Query, acs []expr.AdvCut, prof Profile, mode Mode, opt Options, dv *DeltaView) (*WorkloadResult, error) {
	workers := opt.workers()
	cands := make([][]int, len(w))
	colsets := make([][]int, len(w))
	for i, q := range w {
		c, err := candidateBlocks(store, layout, q, mode, nil)
		if err != nil {
			return nil, err
		}
		cands[i] = c
		if prof.Columnar {
			colsets[i] = queryColumns(q, acs)
		}
	}

	// task is one physical block read evaluating one or more query filters.
	type task struct {
		block   int
		queries []int // indices into w
		cols    []int // columns to read; nil = all
	}
	var tasks []task
	if opt.ShareReads {
		byBlock := make(map[int]int) // block -> index into tasks
		for qi, cs := range cands {
			for _, b := range cs {
				ti, ok := byBlock[b]
				if !ok {
					ti = len(tasks)
					byBlock[b] = ti
					tasks = append(tasks, task{block: b})
				}
				tasks[ti].queries = append(tasks[ti].queries, qi)
			}
		}
		sort.Slice(tasks, func(i, j int) bool { return tasks[i].block < tasks[j].block })
		if prof.Columnar {
			for ti := range tasks {
				tasks[ti].cols = unionColumns(colsets, tasks[ti].queries)
			}
		}
	} else {
		for qi, cs := range cands {
			for _, b := range cs {
				tasks = append(tasks, task{block: b, queries: []int{qi}, cols: colsets[qi]})
			}
		}
	}

	type acc struct {
		perQuery  []ScanStats
		physTotal time.Duration
		crit      time.Duration
		reads     int
		bytes     int64
		scratch   vecScratch
		arena     *blockstore.Arena
	}
	accs := make([]acc, max(workers, 1))
	for i := range accs {
		accs[i].perQuery = make([]ScanStats, len(w))
		accs[i].arena = blockstore.GetArena()
	}
	defer func() {
		for i := range accs {
			blockstore.PutArena(accs[i].arena)
		}
	}()
	ncols := store.Schema.NumCols()
	start := time.Now()
	err := runPool(len(tasks), workers, func(slot, ti int) error {
		t := tasks[ti]
		a := &accs[slot]
		vecs, nrows, nbytes, err := store.ReadColVecsArena(t.block, t.cols, a.arena)
		if err != nil {
			return err
		}
		if vecs == nil {
			return nil
		}
		a.reads++
		a.bytes += nbytes
		for _, qi := range t.queries {
			s := &a.perQuery[qi]
			s.BlocksScanned++
			s.RowsScanned += int64(nrows)
			// Charge the query the bytes it alone would have read, so
			// accounting matches an unshared scan exactly.
			if prof.Columnar {
				s.BytesRead += store.ColBytes(t.block, colsets[qi])
				s.BytesLogical += int64(8*nrows) * int64(len(colsets[qi]))
			} else {
				s.BytesRead += store.ColBytes(t.block, nil)
				s.BytesLogical += int64(8*nrows) * int64(ncols)
			}
			s.RowsMatched += int64(countMatchesVec(w[qi], acs, vecs, nrows, &a.scratch))
		}
		c := blockCost(prof, nbytes, nrows, len(t.queries))
		a.physTotal += c
		if c > a.crit {
			a.crit = c
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &WorkloadResult{Results: make([]Result, len(w))}
	merged := make([]ScanStats, len(w))
	var crit, physTotal time.Duration
	for i := range accs {
		for qi := range merged {
			merged[qi].merge(accs[i].perQuery[qi])
		}
		physTotal += accs[i].physTotal
		if accs[i].crit > crit {
			crit = accs[i].crit
		}
		res.PhysicalReads += accs[i].reads
		res.PhysicalBytes += accs[i].bytes
	}
	for _, t := range dv.tables() {
		// Per-table conversion cache; arena scratch is recycled between
		// tables, and the block-scan vectors above are no longer live.
		accs[0].arena.ResetPlain()
		cache := make([]*blockstore.ColVec, ncols)
		vecFor := func(c int) *blockstore.ColVec {
			if cache[c] == nil {
				cache[c] = accs[0].arena.Plain(t.Cols[c][:t.N])
			}
			return cache[c]
		}
		for qi := range w {
			vecs := make([]*blockstore.ColVec, ncols)
			width := int64(8 * ncols)
			if prof.Columnar {
				width = int64(8 * len(colsets[qi]))
				for _, c := range colsets[qi] {
					vecs[c] = vecFor(c)
				}
			} else {
				for c := range vecs {
					vecs[c] = vecFor(c)
				}
			}
			s := &merged[qi]
			nbytes := width * int64(t.N)
			s.BlocksScanned++
			s.DeltaRows += int64(t.N)
			s.RowsScanned += int64(t.N)
			s.BytesRead += nbytes
			s.BytesLogical += nbytes
			s.RowsMatched += int64(countMatchesVec(w[qi], acs, vecs, t.N, &accs[0].scratch))
			if c := blockCost(prof, nbytes, t.N, 1); c > crit {
				crit = c
			}
			physTotal += blockCost(prof, nbytes, t.N, 1)
		}
	}
	totBlocks, totRows := storeTotals(store)
	totRows += dv.Rows()
	for qi := range merged {
		r := Result{Query: w[qi].Name, ScanStats: merged[qi], BlocksTotal: totBlocks, RowsTotal: totRows}
		r.SimTime = r.simTime(prof)
		res.Results[qi] = r
		res.TotalSimTime += r.SimTime
	}
	res.SimTime = parallelSimTime(physTotal, crit, workers)
	res.WallTime = time.Since(start)
	return res, nil
}

// unionColumns merges the sorted column sets of the given queries into one
// sorted distinct read set.
func unionColumns(colsets [][]int, queries []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, qi := range queries {
		for _, c := range colsets[qi] {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Ints(out)
	if out == nil {
		out = []int{} // non-nil: an empty read set must not mean "all columns"
	}
	return out
}

// queryColumns returns the sorted distinct columns the query reads.
func queryColumns(q expr.Query, acs []expr.AdvCut) []int {
	seen := make(map[int]bool)
	for _, p := range q.Preds() {
		seen[p.Col] = true
	}
	for _, a := range q.AdvRefs() {
		if a < len(acs) {
			seen[acs[a].Left] = true
			seen[acs[a].Right] = true
		}
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	// Insertion sort: the sets are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
