// Package exec is the scan-oriented query execution engine used to turn
// logical skipping into "physical" runtimes (Sec. 7.4.1, 7.5.1). It reads
// candidate blocks from a blockstore, evaluates the query's filter over
// them, and accounts rows/bytes/blocks plus a deterministic simulated time
// under an engine profile.
//
// Two profiles model the paper's engines:
//
//   - EngineSpark: row-group scanning over Parquet-like files — every
//     referenced block is read in full (all columns).
//   - EngineDBMS: a columnar DBMS — only the columns the query touches are
//     read (late materialization), with a lower per-row CPU cost.
//
// Simulated time is seek + bytes/bandwidth + rows×CPU, the same mechanism
// that drives the paper's wall-clock results; absolute seconds are not
// comparable to the paper's cluster, but layout orderings and ratios are.
package exec

import (
	"fmt"
	"time"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/expr"
)

// Profile models one execution engine.
type Profile struct {
	Name     string
	Columnar bool          // read only referenced columns
	SeekCost time.Duration // per block touched
	ByteCost time.Duration // per byte read (I/O)
	RowCost  time.Duration // per row filtered (CPU)
}

// EngineSpark approximates the distributed-Spark-over-Parquet setup of
// Fig. 5a: full block reads, per-block open overhead (remote blob store),
// moderate CPU cost. SeekCost is calibrated so that, at this repo's
// benchmark block sizes (10²–10³ rows vs the paper's 10⁵–10⁶), the
// seek:scan cost ratio matches the paper's testbed (~1–2% of a block
// read); with the paper's 8ms-per-54MB-block overheads applied to tiny
// blocks, seek time would swamp scan time and invert every comparison.
var EngineSpark = Profile{
	Name:     "spark",
	Columnar: false,
	SeekCost: 50 * time.Microsecond,
	ByteCost: 10 * time.Nanosecond, // ~100 MB/s effective scan bandwidth
	RowCost:  25 * time.Nanosecond,
}

// EngineDBMS approximates the single-node commercial columnar DBMS of
// Fig. 5b: column-pruned reads from local SSD, low per-block overhead
// (same block-size calibration note as EngineSpark).
var EngineDBMS = Profile{
	Name:     "dbms",
	Columnar: true,
	SeekCost: 5 * time.Microsecond,
	ByteCost: 2 * time.Nanosecond, // ~500 MB/s
	RowCost:  10 * time.Nanosecond,
}

// Result reports one query execution.
type Result struct {
	Query         string
	BlocksScanned int
	RowsScanned   int64
	RowsMatched   int64
	BytesRead     int64
	SimTime       time.Duration // deterministic cost-model time
	WallTime      time.Duration // measured wall clock of the scan
}

// Mode selects how candidate blocks are pruned.
type Mode int

const (
	// RouteQdTree uses the layout's full semantic descriptions plus any
	// ExtraSkip — the "qd-tree routing" path that adds BID IN (...)
	// (Sec. 3.3).
	RouteQdTree Mode = iota
	// NoRoute uses only per-block min-max intervals (SMA / zone maps) —
	// the paper's "no route" configuration where the engine's default
	// partition pruning is the only skipping.
	NoRoute
)

// Run executes query q over the store under the given layout and profile.
func Run(store *blockstore.Store, layout *cost.Layout, q expr.Query, acs []expr.AdvCut, prof Profile, mode Mode) (Result, error) {
	res := Result{Query: q.Name}
	var candidates []int
	switch mode {
	case RouteQdTree:
		candidates = layout.BlocksFor(q)
	case NoRoute:
		for b := range layout.Descs {
			if layout.Counts[b] == 0 {
				continue
			}
			if minMaxMayMatch(layout.Descs[b].Lo, layout.Descs[b].Hi, q) {
				candidates = append(candidates, b)
			}
		}
	default:
		return res, fmt.Errorf("exec: unknown mode %d", mode)
	}
	var needCols []int
	if prof.Columnar {
		needCols = queryColumns(q, acs)
	}
	start := time.Now()
	for _, b := range candidates {
		data, nrows, nbytes, err := store.ReadColumns(b, needCols)
		if err != nil {
			return res, err
		}
		if data == nil {
			continue
		}
		res.BlocksScanned++
		res.RowsScanned += int64(nrows)
		res.BytesRead += nbytes
		res.RowsMatched += int64(countMatches(q, acs, data, nrows))
	}
	res.WallTime = time.Since(start)
	res.SimTime = time.Duration(res.BlocksScanned)*prof.SeekCost +
		time.Duration(res.BytesRead)*prof.ByteCost +
		time.Duration(res.RowsScanned)*prof.RowCost
	return res, nil
}

// RunWorkload executes every query and returns per-query results plus the
// aggregate simulated time.
func RunWorkload(store *blockstore.Store, layout *cost.Layout, w []expr.Query, acs []expr.AdvCut, prof Profile, mode Mode) ([]Result, time.Duration, error) {
	out := make([]Result, 0, len(w))
	var total time.Duration
	for _, q := range w {
		r, err := Run(store, layout, q, acs, prof, mode)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, r)
		total += r.SimTime
	}
	return out, total, nil
}

// minMaxMayMatch is SMA-only pruning: each predicate is checked against
// the block's per-column interval; categorical masks and advanced-cut bits
// are unavailable (the "no route" path lacks dictionaries, Sec. 7.5.1).
func minMaxMayMatch(lo, hi []int64, q expr.Query) bool {
	if q.Root == nil {
		return true
	}
	var rec func(n *expr.Node) bool
	rec = func(n *expr.Node) bool {
		switch n.Kind {
		case expr.KindPred:
			p := n.Pred
			l, h := lo[p.Col], hi[p.Col] // [l, h)
			if l >= h {
				return false
			}
			switch p.Op {
			case expr.Lt:
				return l < p.Literal
			case expr.Le:
				return l <= p.Literal
			case expr.Gt:
				return h-1 > p.Literal
			case expr.Ge:
				return h-1 >= p.Literal
			case expr.Eq:
				return p.Literal >= l && p.Literal < h
			case expr.In:
				for _, v := range p.Set {
					if v >= l && v < h {
						return true
					}
				}
				return false
			}
			return true
		case expr.KindAdv:
			return true // no advanced-cut metadata without routing
		case expr.KindAnd:
			for _, c := range n.Children {
				if !rec(c) {
					return false
				}
			}
			return true
		case expr.KindOr:
			for _, c := range n.Children {
				if rec(c) {
					return true
				}
			}
			return false
		}
		return true
	}
	return rec(q.Root)
}

// queryColumns returns the sorted distinct columns the query reads.
func queryColumns(q expr.Query, acs []expr.AdvCut) []int {
	seen := make(map[int]bool)
	for _, p := range q.Preds() {
		seen[p.Col] = true
	}
	for _, a := range q.AdvRefs() {
		if a < len(acs) {
			seen[acs[a].Left] = true
			seen[acs[a].Right] = true
		}
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	// Insertion sort: the sets are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// countMatches evaluates the filter vectorized over block columns.
func countMatches(q expr.Query, acs []expr.AdvCut, data [][]int64, nrows int) int {
	sel := evalNode(q.Root, acs, data, nrows)
	if sel == nil {
		return nrows
	}
	n := 0
	for _, ok := range sel {
		if ok {
			n++
		}
	}
	return n
}

// evalNode returns the selection vector of an AST node (nil = all rows).
func evalNode(n *expr.Node, acs []expr.AdvCut, data [][]int64, nrows int) []bool {
	if n == nil {
		return nil
	}
	switch n.Kind {
	case expr.KindPred:
		sel := make([]bool, nrows)
		for i := range sel {
			sel[i] = true
		}
		n.Pred.EvalColumn(data[n.Pred.Col], sel)
		return sel
	case expr.KindAdv:
		ac := acs[n.Adv]
		sel := make([]bool, nrows)
		lc, rc := data[ac.Left], data[ac.Right]
		for i := 0; i < nrows; i++ {
			switch ac.Op {
			case expr.Lt:
				sel[i] = lc[i] < rc[i]
			case expr.Le:
				sel[i] = lc[i] <= rc[i]
			case expr.Gt:
				sel[i] = lc[i] > rc[i]
			case expr.Ge:
				sel[i] = lc[i] >= rc[i]
			case expr.Eq:
				sel[i] = lc[i] == rc[i]
			}
		}
		return sel
	case expr.KindAnd:
		var sel []bool
		for _, c := range n.Children {
			cs := evalNode(c, acs, data, nrows)
			if sel == nil {
				sel = cs
				continue
			}
			for i := range sel {
				sel[i] = sel[i] && cs[i]
			}
		}
		return sel
	case expr.KindOr:
		var sel []bool
		for _, c := range n.Children {
			cs := evalNode(c, acs, data, nrows)
			if sel == nil {
				sel = cs
				continue
			}
			for i := range sel {
				sel[i] = sel[i] || cs[i]
			}
		}
		return sel
	}
	return nil
}
