package exec

// TopK selection for ORDER BY ... LIMIT k: a bounded binary heap fed
// per batch, so a LIMIT-k query never materializes the full result.
// The heap keeps the k best rows seen with the worst kept row at the
// root; a candidate beats its way in only if it sorts before that
// root. Per-worker heaps merge contention-free after the scan pool
// drains, exactly like aggPartial.
//
// Ordering is total and deterministic: rows compare by the ORDER BY
// keys, and any tie breaks on the full projected tuple ascending.
// Fully-equal tuples are interchangeable, so the emitted rows are
// bit-identical across parallelism, block formats, and pruning modes
// — the property the differential harness pins.

import (
	"sort"

	"repro/internal/expr"
)

// rowLess builds the deterministic comparator over output tuples:
// ORDER BY keys first (Pos indexes the tuple), then the whole tuple
// ascending as the tie-break.
func rowLess(order []expr.OrderKey) func(a, b []int64) bool {
	return func(a, b []int64) bool {
		for _, k := range order {
			av, bv := a[k.Pos], b[k.Pos]
			if av != bv {
				if k.Desc {
					return av > bv
				}
				return av < bv
			}
		}
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	}
}

// SortRows sorts projected tuples into the deterministic output order
// of a row query: ORDER BY keys, ties broken on the full tuple. The
// front door re-merges per-shard TopK results with this exact order so
// a gathered answer is bit-identical to a single-node execution.
func SortRows(rows [][]int64, order []expr.OrderKey) {
	less := rowLess(order)
	sort.Slice(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
}

// rowSink collects output tuples: a bounded heap when the query has a
// LIMIT, a plain append otherwise. Each scan worker owns one sink.
type rowSink struct {
	k    int // 0 = unbounded
	less func(a, b []int64) bool
	rows [][]int64 // heap layout when k > 0 (worst kept row at [0])
}

func newRowSink(k int, less func(a, b []int64) bool) *rowSink {
	return &rowSink{k: k, less: less}
}

// add offers one tuple (ownership transfers to the sink).
func (s *rowSink) add(row []int64) {
	if s.k <= 0 {
		s.rows = append(s.rows, row)
		return
	}
	if len(s.rows) < s.k {
		s.rows = append(s.rows, row)
		s.siftUp(len(s.rows) - 1)
		return
	}
	if s.less(row, s.rows[0]) {
		s.rows[0] = row
		s.siftDown(0)
	}
}

// full reports whether the heap holds k rows (always false unbounded).
func (s *rowSink) full() bool { return s.k > 0 && len(s.rows) == s.k }

// worst returns the heap root — the row a candidate must beat.
func (s *rowSink) worst() []int64 { return s.rows[0] }

// after reports a is ordered after b (the heap's "worse" relation).
func (s *rowSink) after(a, b []int64) bool { return s.less(b, a) }

func (s *rowSink) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.after(s.rows[i], s.rows[parent]) {
			return
		}
		s.rows[i], s.rows[parent] = s.rows[parent], s.rows[i]
		i = parent
	}
}

func (s *rowSink) siftDown(i int) {
	n := len(s.rows)
	for {
		worst := i
		if l := 2*i + 1; l < n && s.after(s.rows[l], s.rows[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && s.after(s.rows[r], s.rows[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		s.rows[i], s.rows[worst] = s.rows[worst], s.rows[i]
		i = worst
	}
}

// finishSinks merges per-worker sinks into the final ordered (and
// limited) result. Always returns a non-nil slice.
func finishSinks(sinks []*rowSink, order []expr.OrderKey, limit int) [][]int64 {
	var all [][]int64
	for _, s := range sinks {
		all = append(all, s.rows...)
	}
	SortRows(all, order)
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	if all == nil {
		all = [][]int64{}
	}
	return all
}
