package exec

import (
	"math"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/table"
)

// emptyFixture materializes a zero-row store (one empty block, no files).
func emptyFixture(t *testing.T) (*blockstore.Store, *cost.Layout) {
	t.Helper()
	schema := table.MustSchema([]table.Column{{Name: "x", Kind: table.Numeric, Min: 0, Max: 9}})
	tbl := table.New(schema, 0)
	layout := cost.NewLayout("empty", tbl, nil, 1, nil)
	st, err := blockstore.Write(t.TempDir(), tbl, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, layout
}

// TestSkipRateEmptyStore: queries and aggregates over a store with no
// rows must report SkipRate 1 (touched nothing), never NaN or a
// full-scan-looking 0 that would trip drift monitors.
func TestSkipRateEmptyStore(t *testing.T) {
	st, layout := emptyFixture(t)
	q := expr.Query{Name: "q", Root: expr.NewPred(expr.Pred{Col: 0, Op: expr.Ge, Literal: 3})}
	for _, mode := range []Mode{RouteQdTree, NoRoute} {
		res, err := Run(st, layout, q, nil, EngineSpark, mode)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsTotal != 0 || res.BlocksTotal != 0 || res.RowsScanned != 0 {
			t.Fatalf("mode %d: empty store scanned something: %+v", mode, res)
		}
		if sr := res.SkipRate(); sr != 1 || math.IsNaN(sr) {
			t.Errorf("mode %d: empty-store skip rate %v, want 1", mode, sr)
		}
	}
	aq := expr.AggQuery{
		Name:   "agg",
		Aggs:   []expr.Agg{{Func: expr.AggCountStar}, {Func: expr.AggSum, Col: 0}, {Func: expr.AggAvg, Col: 0}},
		Filter: q,
	}
	ares, err := RunAgg(st, layout, aq, nil, EngineSpark, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	if sr := ares.SkipRate(); sr != 1 || math.IsNaN(sr) {
		t.Errorf("empty-store aggregate skip rate %v, want 1", sr)
	}
	if len(ares.Rows) != 1 || !ares.Rows[0].Vals[0].Valid || ares.Rows[0].Vals[0].Int != 0 {
		t.Fatalf("empty-store COUNT = %+v, want valid 0", ares.Rows)
	}
	if ares.Rows[0].Vals[1].Valid || ares.Rows[0].Vals[2].Valid {
		t.Fatalf("empty-store SUM/AVG must be invalid: %+v", ares.Rows)
	}
	// The grouped form yields no groups and no NaNs.
	aq.GroupBy = []int{0}
	gres, err := RunAgg(st, layout, aq, nil, EngineSpark, RouteQdTree)
	if err != nil {
		t.Fatal(err)
	}
	if len(gres.Rows) != 0 {
		t.Fatalf("empty-store grouped aggregate returned rows: %+v", gres.Rows)
	}
}

// TestSkipRateFullyPruned: a query whose predicate excludes every block
// scans nothing and reports SkipRate 1 on a non-empty store.
func TestSkipRateFullyPruned(t *testing.T) {
	st, layout, spec := fixture(t)
	pruned := expr.Query{Name: "none", Root: expr.NewPred(expr.Pred{Col: 0, Op: expr.Gt, Literal: 1 << 40})}
	for _, mode := range []Mode{RouteQdTree, NoRoute} {
		res, err := Run(st, layout, pruned, spec.ACs, EngineSpark, mode)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsScanned != 0 || res.BlocksScanned != 0 {
			t.Fatalf("mode %d: fully-pruned query scanned %d rows / %d blocks", mode, res.RowsScanned, res.BlocksScanned)
		}
		if res.RowsTotal != int64(spec.Table.N) {
			t.Fatalf("mode %d: RowsTotal %d, want %d", mode, res.RowsTotal, spec.Table.N)
		}
		if sr := res.SkipRate(); sr != 1 {
			t.Errorf("mode %d: fully-pruned skip rate %v, want 1", mode, sr)
		}
	}
}
