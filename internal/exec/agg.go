package exec

// Vectorized aggregation over encoded block columns — the execution layer
// behind SELECT <aggs> FROM t [WHERE ...] [GROUP BY ...].
//
// Aggregation rides the same scan pipeline as counting: candidate blocks
// are pruned by the layout (plus SMA metadata), dispatched to a worker
// pool, and each worker evaluates the filter in batch-of-1024 SelVec
// bitmaps over the block's encoded columns. On top of the selection,
// aggregates reduce where the encoding allows it without decoding:
//
//   - SUM/COUNT over RLE columns add run-value × selected-run-length
//     (ColVec.SumSelected), never touching individual rows.
//   - COUNT/MIN/MAX short-circuit to the catalog's per-block zone maps
//     when a block is fully selected — proven per block by SMA
//     subsumption (cost.SMAFullyMatches), which covers both filterless
//     queries and blocks lying wholly inside a filter's range. Such
//     blocks contribute row counts and min/max without being read; if no
//     SUM/AVG needs data either, they cost nothing at all.
//   - GROUP BY on a dictionary-encoded column groups in code space: the
//     accumulator is a dense array indexed by dictionary code (codes are
//     global dictionary positions, identical across blocks), and group
//     keys are materialized once at the end, not per row.
//
// Each worker owns a private partial-aggregate state (counts, sums,
// min/max per group), merged once after the pool drains — contention-free
// exactly like ScanStats. All reductions are order-independent integer
// arithmetic, so results are bit-identical across Parallelism settings,
// block formats, and pruning modes; AVG divides the merged exact integer
// sum by the merged exact count, so it too is deterministic.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/table"
)

// AggVal is one aggregate output cell. Valid is false when no row
// contributed (SUM/MIN/MAX/AVG over an empty selection); COUNT of an
// empty selection is a valid 0. AVG is reported in Float; every other
// function reports in Int.
type AggVal struct {
	Valid bool    `json:"valid"`
	Int   int64   `json:"int"`
	Float float64 `json:"float,omitempty"`
}

// AggRow is one result row: the group key (nil for global aggregates, in
// GROUP BY column order otherwise) and one AggVal per aggregate in
// SELECT-list order.
type AggRow struct {
	Key  []int64  `json:"key,omitempty"`
	Vals []AggVal `json:"vals"`
}

// AggResult reports one aggregate query execution. ScanStats count only
// physical work: blocks answered from catalog metadata (zone-map MIN/MAX,
// filterless COUNT) contribute RowsMatched but no scanned blocks, rows,
// or bytes.
type AggResult struct {
	Query string
	ScanStats
	BlocksTotal int
	RowsTotal   int64
	// GroupBy is the grouping column set (schema ordinals, GROUP BY order).
	GroupBy []int
	// Rows holds the result sorted by group key (one keyless row for
	// global aggregates — present even when nothing matched).
	Rows     []AggRow
	SimTime  time.Duration
	WallTime time.Duration
}

// SkipRate is the fraction of the store's rows the aggregation skipped —
// identical semantics to Result.SkipRate.
func (r *AggResult) SkipRate() float64 {
	if r.RowsTotal == 0 {
		return 1
	}
	return 1 - float64(r.RowsScanned)/float64(r.RowsTotal)
}

// aggCell accumulates one aggregate for one group. count doubles as the
// contribution counter for Valid and AVG; sum, min, and max are only
// meaningful for the functions that use them.
type aggCell struct {
	count int64
	sum   int64
	min   int64
	max   int64
}

// add folds one value into the cell (v is ignored for COUNT functions).
func (c *aggCell) add(f expr.AggFunc, v int64) {
	switch f {
	case expr.AggSum, expr.AggAvg:
		c.sum += v
	case expr.AggMin:
		if c.count == 0 || v < c.min {
			c.min = v
		}
	case expr.AggMax:
		if c.count == 0 || v > c.max {
			c.max = v
		}
	}
	c.count++
}

// addBulk folds a pre-reduced batch (sum over cnt values in [lo, hi]).
func (c *aggCell) addBulk(f expr.AggFunc, sum, lo, hi, cnt int64) {
	if cnt == 0 {
		return
	}
	switch f {
	case expr.AggSum, expr.AggAvg:
		c.sum += sum
	case expr.AggMin:
		if c.count == 0 || lo < c.min {
			c.min = lo
		}
	case expr.AggMax:
		if c.count == 0 || hi > c.max {
			c.max = hi
		}
	}
	c.count += cnt
}

// mergeCell folds src into dst for function f.
func mergeCell(f expr.AggFunc, dst *aggCell, src aggCell) {
	if src.count == 0 {
		return
	}
	switch f {
	case expr.AggMin:
		if dst.count == 0 || src.min < dst.min {
			dst.min = src.min
		}
	case expr.AggMax:
		if dst.count == 0 || src.max > dst.max {
			dst.max = src.max
		}
	}
	dst.sum += src.sum
	dst.count += src.count
}

// finalizeCell turns an accumulated cell into its output value.
func finalizeCell(f expr.AggFunc, c aggCell) AggVal {
	switch f {
	case expr.AggCountStar, expr.AggCount:
		return AggVal{Valid: true, Int: c.count}
	case expr.AggSum:
		if c.count == 0 {
			return AggVal{}
		}
		return AggVal{Valid: true, Int: c.sum}
	case expr.AggMin:
		if c.count == 0 {
			return AggVal{}
		}
		return AggVal{Valid: true, Int: c.min}
	case expr.AggMax:
		if c.count == 0 {
			return AggVal{}
		}
		return AggVal{Valid: true, Int: c.max}
	case expr.AggAvg:
		if c.count == 0 {
			return AggVal{}
		}
		return AggVal{Valid: true, Float: float64(c.sum) / float64(c.count)}
	}
	return AggVal{}
}

// aggGroup is one group's accumulator row.
type aggGroup struct {
	key   []int64
	rows  int64 // selected rows in the group (group-presence counter)
	cells []aggCell
}

// aggPartial is one worker's private aggregate state.
type aggPartial struct {
	naggs  int
	global aggGroup             // used when there is no GROUP BY
	dense  []aggGroup           // code-space groups for one small-domain column
	m      map[string]*aggGroup // general grouping fallback
	keybuf []byte
}

func newAggPartial(naggs, denseDom int) *aggPartial {
	p := &aggPartial{naggs: naggs, m: make(map[string]*aggGroup)}
	p.global.cells = make([]aggCell, naggs)
	if denseDom > 0 {
		p.dense = make([]aggGroup, denseDom)
	}
	return p
}

// groupFor returns the accumulator of the given key, creating it on first
// use. Single-column keys within the dense domain index the code-space
// array; everything else lands in the map under a packed byte key.
func (p *aggPartial) groupFor(key []int64) *aggGroup {
	if p.dense != nil && len(key) == 1 && key[0] >= 0 && key[0] < int64(len(p.dense)) {
		g := &p.dense[key[0]]
		if g.cells == nil {
			g.cells = make([]aggCell, p.naggs)
			g.key = []int64{key[0]}
		}
		return g
	}
	p.keybuf = p.keybuf[:0]
	for _, k := range key {
		for s := 0; s < 64; s += 8 {
			p.keybuf = append(p.keybuf, byte(uint64(k)>>s))
		}
	}
	g, ok := p.m[string(p.keybuf)]
	if !ok {
		g = &aggGroup{key: append([]int64(nil), key...), cells: make([]aggCell, p.naggs)}
		p.m[string(p.keybuf)] = g
	}
	return g
}

// merge folds o into p (same shape; run after the worker pool drains).
func (p *aggPartial) merge(o *aggPartial, aggs []expr.Agg) {
	mergeGroup := func(dst *aggGroup, src *aggGroup) {
		dst.rows += src.rows
		for i := range aggs {
			mergeCell(aggs[i].Func, &dst.cells[i], src.cells[i])
		}
	}
	mergeGroup(&p.global, &o.global)
	for idx := range o.dense {
		if o.dense[idx].cells == nil {
			continue
		}
		mergeGroup(p.groupFor(o.dense[idx].key), &o.dense[idx])
	}
	for _, g := range o.m {
		mergeGroup(p.groupFor(g.key), g)
	}
}

// keyLess is the lexicographic group-key order of AggResult.Rows.
func keyLess(a, b []int64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// aggPlan is the per-query execution plan shared by all scan workers.
type aggPlan struct {
	aq       expr.AggQuery
	acs      []expr.AdvCut
	grouped  bool
	denseDom int // >0: dense code-space grouping on aq.GroupBy[0]
	// Groupless queries split the aggregate list by what a fully-selected
	// block (every row provably satisfies the filter, per zone-map
	// subsumption — see cost.SMAFullyMatches) can answer from catalog
	// metadata alone: COUNT needs only the row count, MIN/MAX only the
	// per-block min/max; SUM/AVG always need the column data.
	metaAggs []int // aggregate indices servable from metadata when fully selected
	dataAggs []int // aggregate indices that always read column data
	readCols []int // read set for partially-selected blocks (nil = all columns)
	dataCols []int // read set for fully-selected blocks (nil = all columns)
}

// width is the logical decoded width of one read set.
func (pl *aggPlan) width(cols []int, ncols int) int64 {
	if cols == nil {
		return 8 * int64(ncols)
	}
	return 8 * int64(len(cols))
}

// planAgg validates the query and decides metadata shortcuts and read
// sets.
func planAgg(store *blockstore.Store, aq expr.AggQuery, acs []expr.AdvCut, prof Profile) (*aggPlan, error) {
	ncols := store.Schema.NumCols()
	for _, a := range aq.Aggs {
		if a.Func != expr.AggCountStar && (a.Col < 0 || a.Col >= ncols) {
			return nil, fmt.Errorf("exec: aggregate %s references column %d outside %d-column schema", a.Func, a.Col, ncols)
		}
	}
	for _, g := range aq.GroupBy {
		if g < 0 || g >= ncols {
			return nil, fmt.Errorf("exec: GROUP BY column %d outside %d-column schema", g, ncols)
		}
	}
	for _, a := range aq.Filter.AdvRefs() {
		if a < 0 || a >= len(acs) {
			return nil, fmt.Errorf("exec: filter references advanced cut %d but the cut table holds %d", a, len(acs))
		}
	}
	pl := &aggPlan{aq: aq, acs: acs, grouped: len(aq.GroupBy) > 0}
	for i, a := range aq.Aggs {
		switch a.Func {
		case expr.AggCountStar, expr.AggCount, expr.AggMin, expr.AggMax:
			pl.metaAggs = append(pl.metaAggs, i)
		default:
			pl.dataAggs = append(pl.dataAggs, i)
		}
	}
	if pl.grouped && len(aq.GroupBy) == 1 {
		col := store.Schema.Cols[aq.GroupBy[0]]
		if col.Kind == table.Categorical && col.Dom > 0 && col.Dom <= 65536 {
			pl.denseDom = int(col.Dom)
		}
	}
	if prof.Columnar {
		seen := make(map[int]bool)
		for _, p := range aq.Filter.Preds() {
			seen[p.Col] = true
		}
		for _, a := range aq.Filter.AdvRefs() {
			seen[acs[a].Left] = true
			seen[acs[a].Right] = true
		}
		for _, g := range aq.GroupBy {
			seen[g] = true
		}
		for _, a := range aq.Aggs {
			if a.NeedsColumn() {
				seen[a.Col] = true
			}
		}
		pl.readCols = sortedCols(seen)
		dataSeen := make(map[int]bool)
		for _, ai := range pl.dataAggs {
			dataSeen[aq.Aggs[ai].Col] = true
		}
		pl.dataCols = sortedCols(dataSeen)
	}
	return pl, nil
}

// sortedCols flattens a column set into sorted order (nil when empty).
func sortedCols(seen map[int]bool) []int {
	if len(seen) == 0 {
		return nil
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// RunAgg executes one aggregate query sequentially. It is RunAggOpts at
// Parallelism 1.
func RunAgg(store *blockstore.Store, layout *cost.Layout, aq expr.AggQuery, acs []expr.AdvCut, prof Profile, mode Mode) (*AggResult, error) {
	return RunAggOpts(store, layout, aq, acs, prof, mode, Options{Parallelism: 1})
}

// RunAggOpts executes one aggregate query with a pool of opt.Parallelism
// scan workers. Per-worker partial aggregates are merged after the pool
// drains; the result is bit-identical for every Options value, both
// block formats, and both pruning modes.
func RunAggOpts(store *blockstore.Store, layout *cost.Layout, aq expr.AggQuery, acs []expr.AdvCut, prof Profile, mode Mode, opt Options) (*AggResult, error) {
	return RunAggDelta(store, layout, aq, acs, prof, mode, opt, nil)
}

// RunAggDelta is RunAggOpts over the merged view `delta ∪ base`: after
// the pruned block scan, every delta table is aggregated in full through
// the same batch kernels (no zone-map shortcuts — delta rows carry no
// metadata). The merge arithmetic is order-independent, so results stay
// bit-identical to the reference evaluator over the concatenated table.
// A nil view is a plain RunAggOpts.
func RunAggDelta(store *blockstore.Store, layout *cost.Layout, aq expr.AggQuery, acs []expr.AdvCut, prof Profile, mode Mode, opt Options, dv *DeltaView) (*AggResult, error) {
	p, err := RunAggPartialDelta(store, layout, aq, acs, prof, mode, opt, dv)
	if err != nil {
		return nil, err
	}
	return p.Finalize(aq.Aggs), nil
}

// RunAggPartial executes one aggregate query but stops short of
// finalization, returning the mergeable per-group accumulator state — the
// shard-side entry point of distributed scatter/gather (see merge.go).
func RunAggPartial(store *blockstore.Store, layout *cost.Layout, aq expr.AggQuery, acs []expr.AdvCut, prof Profile, mode Mode, opt Options) (*AggPartialResult, error) {
	return RunAggPartialDelta(store, layout, aq, acs, prof, mode, opt, nil)
}

// RunAggPartialDelta is RunAggPartial over the merged view `delta ∪ base`.
func RunAggPartialDelta(store *blockstore.Store, layout *cost.Layout, aq expr.AggQuery, acs []expr.AdvCut, prof Profile, mode Mode, opt Options, dv *DeltaView) (*AggPartialResult, error) {
	res := &AggPartialResult{Query: aq.Name, GroupBy: append([]int(nil), aq.GroupBy...), Grouped: len(aq.GroupBy) > 0}
	res.BlocksTotal, res.RowsTotal = storeTotals(store)
	res.RowsTotal += dv.Rows()
	var rec *pruneRecorder
	if opt.Trace != nil {
		rec = &pruneRecorder{}
	}
	psp := opt.Trace.Start("block_prune")
	candidates, err := candidateBlocks(store, layout, aq.Filter, mode, rec)
	rec.annotate(psp, res.BlocksTotal, len(candidates))
	psp.End()
	if err != nil {
		return nil, err
	}
	ncols := store.Schema.NumCols()
	pl, err := planAgg(store, aq, acs, prof)
	if err != nil {
		return nil, err
	}
	start := time.Now()

	workers := opt.workers()
	readWidth := pl.width(pl.readCols, ncols)
	dataWidth := pl.width(pl.dataCols, ncols)
	type acc struct {
		stats   ScanStats
		crit    time.Duration
		scratch vecScratch
		sel     blockstore.SelVec
		part    *aggPartial
		grp     aggScratch
		arena   *blockstore.Arena
	}
	accs := make([]acc, max(workers, 1))
	for i := range accs {
		accs[i].part = newAggPartial(len(aq.Aggs), pl.denseDom)
		accs[i].arena = blockstore.GetArena()
	}
	defer func() {
		for i := range accs {
			blockstore.PutArena(accs[i].arena)
		}
	}()
	ssp := opt.Trace.Start("scan")
	err = runPool(len(candidates), workers, func(slot, i int) error {
		b := candidates[i]
		a := &accs[slot]
		m := store.Blocks[b]
		if !pl.grouped && len(m.Min) == ncols && cost.SMAFullyMatches(m.Min, m.Max, aq.Filter) {
			// Every row of this block satisfies the filter: COUNT comes
			// from the catalog row count, MIN/MAX from the zone maps, and
			// the filter columns are never read. Only SUM/AVG columns (if
			// any) are fetched, with the whole block selected.
			rows := int64(m.Rows)
			a.stats.RowsMatched += rows
			for _, ai := range pl.metaAggs {
				ag := aq.Aggs[ai]
				cell := &a.part.global.cells[ai]
				switch ag.Func {
				case expr.AggCountStar, expr.AggCount:
					cell.count += rows
				default: // AggMin / AggMax
					cell.addBulk(ag.Func, 0, m.Min[ag.Col], m.Max[ag.Col], rows)
				}
			}
			if len(pl.dataAggs) == 0 {
				return nil // answered entirely from the catalog
			}
			vecs, nrows, nbytes, err := store.ReadColVecsArena(b, pl.dataCols, a.arena)
			if err != nil {
				return err
			}
			if vecs == nil {
				return nil
			}
			a.stats.BlocksScanned++
			a.stats.RowsScanned += int64(nrows)
			a.stats.BytesRead += nbytes
			a.stats.BytesLogical += dataWidth * int64(nrows)
			aggregateFullySelected(pl, vecs, nrows, &a.sel, a.part)
			if c := blockCost(prof, nbytes, nrows, 1); c > a.crit {
				a.crit = c
			}
			return nil
		}
		vecs, nrows, nbytes, err := store.ReadColVecsArena(b, pl.readCols, a.arena)
		if err != nil {
			return err
		}
		if vecs == nil {
			return nil
		}
		a.stats.BlocksScanned++
		a.stats.RowsScanned += int64(nrows)
		a.stats.BytesRead += nbytes
		a.stats.BytesLogical += readWidth * int64(nrows)
		a.stats.RowsMatched += aggregateBlock(pl, vecs, nrows, &a.sel, &a.scratch, &a.grp, a.arena, a.part)
		if c := blockCost(prof, nbytes, nrows, 1); c > a.crit {
			a.crit = c
		}
		return nil
	})
	ssp.End()
	if err != nil {
		return nil, err
	}
	if tabs := dv.tables(); len(tabs) > 0 {
		dsp := opt.Trace.Start("delta_scan")
		for _, t := range tabs {
			a := &accs[0]
			a.arena.ResetPlain()
			vecs, nbytes := deltaColVecs(t, pl.readCols, a.arena)
			a.stats.BlocksScanned++
			a.stats.DeltaRows += int64(t.N)
			a.stats.RowsScanned += int64(t.N)
			a.stats.BytesRead += nbytes
			a.stats.BytesLogical += readWidth * int64(t.N)
			a.stats.RowsMatched += aggregateBlock(pl, vecs, t.N, &a.sel, &a.scratch, &a.grp, a.arena, a.part)
			if c := blockCost(prof, nbytes, t.N, 1); c > a.crit {
				a.crit = c
			}
		}
		dsp.SetAttr("delta_tables", len(tabs))
		dsp.End()
	}

	msp := opt.Trace.Start("merge")
	var crit time.Duration
	part := accs[0].part
	for i := range accs {
		res.ScanStats.merge(accs[i].stats)
		if accs[i].crit > crit {
			crit = accs[i].crit
		}
		if i > 0 {
			part.merge(accs[i].part, aq.Aggs)
		}
	}
	res.Global, res.Groups = exportPartial(part, pl.grouped)
	msp.SetAttr("rows_matched", res.RowsMatched).SetAttr("groups", len(res.Groups))
	msp.End()
	res.WallTime = time.Since(start)
	res.SimTime = parallelSimTime(res.simTime(prof), crit, workers)
	return res, nil
}

// aggregateFullySelected folds a block whose every row is selected:
// only SUM/AVG aggregates remain (COUNT/MIN/MAX were served from the
// block's catalog metadata), so each batch reduces with a full selection
// and no filter pass.
func aggregateFullySelected(pl *aggPlan, vecs []*blockstore.ColVec, nrows int, sel *blockstore.SelVec, part *aggPartial) {
	for start := 0; start < nrows; start += blockstore.BatchSize {
		n := nrows - start
		if n > blockstore.BatchSize {
			n = blockstore.BatchSize
		}
		sel.SetFirst(n)
		for _, ai := range pl.dataAggs {
			ag := pl.aq.Aggs[ai]
			s, c := vecs[ag.Col].SumSelected(sel, start, n)
			cell := &part.global.cells[ai]
			cell.sum += s
			cell.count += c
		}
	}
}

// aggScratch is the per-worker grouped-aggregation scratch: header
// slices whose shapes are fixed per query, reused across every block the
// worker folds.
type aggScratch struct {
	groupVals [][]int64
	aggVals   [][]int64
	key       []int64
}

// grow sizes the scratch for ngroups group columns and naggs aggregates.
func (g *aggScratch) grow(ngroups, naggs int) {
	if cap(g.groupVals) < ngroups {
		g.groupVals = make([][]int64, ngroups)
		g.key = make([]int64, ngroups)
	}
	g.groupVals = g.groupVals[:ngroups]
	g.key = g.key[:ngroups]
	if cap(g.aggVals) < naggs {
		g.aggVals = make([][]int64, naggs)
	}
	g.aggVals = g.aggVals[:naggs]
}

// aggregateBlock evaluates the filter over one block batch-by-batch and
// folds the selected rows into the worker's partial state. It returns the
// number of selected (matched) rows. Decode buffers and the per-column
// batch memo come from the worker's arena; gs provides the grouped-path
// header scratch — nothing here allocates once the worker is warm.
func aggregateBlock(pl *aggPlan, vecs []*blockstore.ColVec, nrows int, sel *blockstore.SelVec, st *vecScratch, gs *aggScratch, ar *blockstore.Arena, part *aggPartial) int64 {
	var matched int64
	root := pl.aq.Filter.Root
	var groupVals, aggVals [][]int64
	var key []int64
	var decodedAt []int // per column: batch start already decoded, -1 = none
	if pl.grouped {
		gs.grow(len(pl.aq.GroupBy), len(pl.aq.Aggs))
		groupVals, aggVals, key = gs.groupVals, gs.aggVals, gs.key
		decodedAt = ar.DecodedAt(len(vecs))
	}
	for start := 0; start < nrows; start += blockstore.BatchSize {
		n := nrows - start
		if n > blockstore.BatchSize {
			n = blockstore.BatchSize
		}
		if root == nil {
			sel.SetFirst(n)
		} else {
			evalNodeVec(root, pl.acs, vecs, start, n, sel, st)
			if sel.None() {
				continue
			}
		}
		cnt := int64(sel.Count())
		matched += cnt
		if !pl.grouped {
			part.global.rows += cnt
			for i, a := range pl.aq.Aggs {
				cell := &part.global.cells[i]
				switch a.Func {
				case expr.AggCountStar, expr.AggCount:
					cell.count += cnt
				case expr.AggSum, expr.AggAvg:
					s, c := vecs[a.Col].SumSelected(sel, start, n)
					cell.sum += s
					cell.count += c
				case expr.AggMin, expr.AggMax:
					lo, hi, ok := vecs[a.Col].MinMaxSelected(sel, start, n)
					if ok {
						cell.addBulk(a.Func, 0, lo, hi, cnt)
					}
				}
			}
			continue
		}
		// Grouped: materialize the batch of every referenced column once,
		// then fold row-at-a-time into the per-group accumulators. DICT
		// group columns decode to raw dictionary codes (base 0), so the
		// dense path below really does group in code space.
		// decode materializes a column's batch once even when the column
		// appears in several aggregates and/or the group key.
		decode := func(c int) []int64 {
			buf := ar.DecodeBuf(c)
			if decodedAt[c] != start {
				vecs[c].DecodeRange(buf, start, n)
				decodedAt[c] = start
			}
			return buf
		}
		for gi, g := range pl.aq.GroupBy {
			groupVals[gi] = decode(g)
		}
		for ai, a := range pl.aq.Aggs {
			aggVals[ai] = nil
			if a.NeedsColumn() {
				aggVals[ai] = decode(a.Col)
			}
		}
		sel.ForEach(n, func(i int) {
			for gi := range key {
				key[gi] = groupVals[gi][i]
			}
			g := part.groupFor(key)
			g.rows++
			for ai, a := range pl.aq.Aggs {
				v := int64(0)
				if aggVals[ai] != nil {
					v = aggVals[ai][i]
				}
				g.cells[ai].add(a.Func, v)
			}
		})
	}
	return matched
}
