package exec

// Exported partial-aggregate state and merge entry points — the gather
// side of distributed scatter/gather execution (internal/cluster).
//
// A shard cannot ship finalized AggResult rows: AVG is already divided,
// and MIN/MAX of an absent group is indistinguishable from a valid zero.
// Instead a shard runs RunAggPartial* and ships AggPartialResult — the
// same per-group (count, sum, min, max) cells the in-process worker pool
// accumulates — and the front door folds shard partials with
// MergeAggPartials exactly as RunAggOpts folds per-worker partials. The
// merge arithmetic is the order-independent integer arithmetic of
// aggPartial.merge, so a scatter/gather execution is bit-identical to a
// single-node run over the union of the shards' rows.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/expr"
)

// AggCellState is the mergeable accumulator of one aggregate for one
// group: contribution count, exact integer sum, and running min/max.
// Which fields are meaningful depends on the aggregate function, exactly
// as for the in-process accumulator.
type AggCellState struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

// AggGroupState is one group's partial state: the group key (nil for the
// global group), the number of selected rows, and one cell per aggregate
// in SELECT-list order.
type AggGroupState struct {
	Key   []int64        `json:"key,omitempty"`
	Rows  int64          `json:"rows"`
	Cells []AggCellState `json:"cells"`
}

// AggPartialResult is one shard's (or one node's) contribution to a
// distributed aggregation: scan stats plus unfinalized per-group
// accumulators. Finalize turns it into an AggResult; MergeAggPartials
// folds several partials into one.
type AggPartialResult struct {
	Query string `json:"query"`
	ScanStats
	BlocksTotal int   `json:"blocks_total"`
	RowsTotal   int64 `json:"rows_total"`
	// GroupBy is the grouping column set (schema ordinals, GROUP BY order);
	// Grouped distinguishes "GROUP BY over zero groups" from a global
	// aggregate.
	GroupBy []int `json:"group_by,omitempty"`
	Grouped bool  `json:"grouped"`
	// Global holds the accumulators of a non-grouped query; Groups the
	// per-group accumulators of a grouped one, sorted by key.
	Global   AggGroupState   `json:"global"`
	Groups   []AggGroupState `json:"groups,omitempty"`
	SimTime  time.Duration   `json:"sim_time_ns"`
	WallTime time.Duration   `json:"wall_time_ns"`
}

// SkipRate is the fraction of the store's rows the aggregation skipped —
// identical semantics to Result.SkipRate.
func (p *AggPartialResult) SkipRate() float64 {
	if p.RowsTotal == 0 {
		return 1
	}
	return 1 - float64(p.RowsScanned)/float64(p.RowsTotal)
}

// cellState exports one internal accumulator cell.
func cellState(c aggCell) AggCellState {
	return AggCellState{Count: c.count, Sum: c.sum, Min: c.min, Max: c.max}
}

// cellOf imports one exported cell.
func cellOf(c AggCellState) aggCell {
	return aggCell{count: c.Count, sum: c.Sum, min: c.Min, max: c.Max}
}

// groupState exports one internal group accumulator.
func groupState(g *aggGroup) AggGroupState {
	out := AggGroupState{Key: g.key, Rows: g.rows, Cells: make([]AggCellState, len(g.cells))}
	for i, c := range g.cells {
		out.Cells[i] = cellState(c)
	}
	return out
}

// exportPartial flattens a merged aggPartial into the wire shape. Grouped
// groups are sorted by key, matching AggResult row order.
func exportPartial(p *aggPartial, grouped bool) (AggGroupState, []AggGroupState) {
	global := groupState(&p.global)
	if !grouped {
		return global, nil
	}
	var groups []*aggGroup
	for idx := range p.dense {
		if p.dense[idx].cells != nil && p.dense[idx].rows > 0 {
			groups = append(groups, &p.dense[idx])
		}
	}
	for _, g := range p.m {
		if g.rows > 0 {
			groups = append(groups, g)
		}
	}
	out := make([]AggGroupState, len(groups))
	for i, g := range groups {
		out[i] = groupState(g)
	}
	sortGroupStates(out)
	return global, out
}

// sortGroupStates orders group states by lexicographic key.
func sortGroupStates(gs []AggGroupState) {
	sort.Slice(gs, func(i, j int) bool { return keyLess(gs[i].Key, gs[j].Key) })
}

// importPartial folds one exported partial into an internal accumulator.
func importPartial(dst *aggPartial, src *AggPartialResult, aggs []expr.Agg) {
	fold := func(g *aggGroup, s AggGroupState) {
		g.rows += s.Rows
		for i := range aggs {
			mergeCell(aggs[i].Func, &g.cells[i], cellOf(s.Cells[i]))
		}
	}
	fold(&dst.global, src.Global)
	for _, s := range src.Groups {
		fold(dst.groupFor(s.Key), s)
	}
}

// Finalize turns a partial into the finalized AggResult a single-node run
// would have produced over the same rows: grouped results materialize one
// row per group (sorted by key), global results one keyless row, and AVG
// divides the merged exact integer sum by the merged exact count.
func (p *AggPartialResult) Finalize(aggs []expr.Agg) *AggResult {
	res := &AggResult{
		Query:       p.Query,
		ScanStats:   p.ScanStats,
		BlocksTotal: p.BlocksTotal,
		RowsTotal:   p.RowsTotal,
		GroupBy:     append([]int(nil), p.GroupBy...),
		SimTime:     p.SimTime,
		WallTime:    p.WallTime,
	}
	if p.Grouped {
		res.Rows = make([]AggRow, len(p.Groups))
		for i, g := range p.Groups {
			vals := make([]AggVal, len(aggs))
			for ai := range aggs {
				vals[ai] = finalizeCell(aggs[ai].Func, cellOf(g.Cells[ai]))
			}
			res.Rows[i] = AggRow{Key: g.Key, Vals: vals}
		}
		return res
	}
	vals := make([]AggVal, len(aggs))
	for i := range aggs {
		vals[i] = finalizeCell(aggs[i].Func, cellOf(p.Global.Cells[i]))
	}
	res.Rows = []AggRow{{Vals: vals}}
	return res
}

// EmptyAggPartial is the partial of an aggregation that scanned no rows —
// the identity element of MergeAggPartials. Its accumulator cells carry
// the same initial state the in-process pool starts from, so seeding a
// merge with it never changes the outcome; a front door uses it when
// shard pruning leaves no shard to contact.
func EmptyAggPartial(query string, naggs int, groupBy []int) *AggPartialResult {
	out := &AggPartialResult{
		Query:   query,
		GroupBy: append([]int(nil), groupBy...),
		Grouped: len(groupBy) > 0,
	}
	out.Global, out.Groups = exportPartial(newAggPartial(naggs, 0), out.Grouped)
	return out
}

// MergeAggPartials folds shard partials into one: per-group cells merge
// with the same order-independent arithmetic as in-process worker
// partials, counters (blocks, rows, bytes) sum, and SimTime/WallTime take
// the maximum — the shards of a scatter execute concurrently, so the
// gather's critical path is the slowest shard. Partials must agree on
// aggregate count and grouping shape (they were produced by the same
// statement); a mismatch is an error, not a silent wrong answer.
func MergeAggPartials(aggs []expr.Agg, parts ...*AggPartialResult) (*AggPartialResult, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("exec: MergeAggPartials needs at least one partial")
	}
	first := parts[0]
	acc := newAggPartial(len(aggs), 0)
	out := &AggPartialResult{
		Query:   first.Query,
		GroupBy: append([]int(nil), first.GroupBy...),
		Grouped: first.Grouped,
	}
	for _, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("exec: MergeAggPartials: nil partial")
		}
		if p.Grouped != first.Grouped || len(p.GroupBy) != len(first.GroupBy) {
			return nil, fmt.Errorf("exec: MergeAggPartials: grouping shape mismatch (%v vs %v)", p.GroupBy, first.GroupBy)
		}
		if len(p.Global.Cells) != len(aggs) {
			return nil, fmt.Errorf("exec: MergeAggPartials: partial has %d aggregate cells, statement has %d", len(p.Global.Cells), len(aggs))
		}
		for _, g := range p.Groups {
			if len(g.Cells) != len(aggs) || len(g.Key) != len(first.GroupBy) {
				return nil, fmt.Errorf("exec: MergeAggPartials: malformed group state (key %v, %d cells)", g.Key, len(g.Cells))
			}
		}
		importPartial(acc, p, aggs)
		out.ScanStats.merge(p.ScanStats)
		out.BlocksTotal += p.BlocksTotal
		out.RowsTotal += p.RowsTotal
		if p.SimTime > out.SimTime {
			out.SimTime = p.SimTime
		}
		if p.WallTime > out.WallTime {
			out.WallTime = p.WallTime
		}
	}
	out.Global, out.Groups = exportPartial(acc, out.Grouped)
	return out, nil
}

// MergeResults folds per-shard filter results into the cluster-wide
// answer: counters and totals sum (the shards partition the row universe),
// SimTime/WallTime take the maximum (shards scan concurrently), and
// SkipRate derives from the merged totals.
func MergeResults(name string, parts ...Result) Result {
	out := Result{Query: name}
	for _, p := range parts {
		out.ScanStats.merge(p.ScanStats)
		out.BlocksTotal += p.BlocksTotal
		out.RowsTotal += p.RowsTotal
		if p.SimTime > out.SimTime {
			out.SimTime = p.SimTime
		}
		if p.WallTime > out.WallTime {
			out.WallTime = p.WallTime
		}
	}
	return out
}
