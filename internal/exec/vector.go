package exec

import (
	"repro/internal/blockstore"
	"repro/internal/expr"
)

// Vectorized filter evaluation over encoded block columns.
//
// The scan loop hands each candidate block's columns to countMatchesVec in
// their on-disk encoding (blockstore.ColVec) and evaluates the query's
// boolean tree in batches of blockstore.BatchSize rows, tracking selection
// in bitmaps (blockstore.SelVec):
//
//   - Unary predicates dispatch to per-encoding kernels that filter the
//     compressed representation directly — equality against a
//     dictionary-encoded column compares bit-packed codes, RLE evaluates
//     once per run — without materializing int64 slices.
//   - AND combines child bitmaps with word-wise intersection and stops as
//     soon as the batch's selection empties, so the remaining children's
//     columns are never decoded for that batch — late materialization at
//     batch granularity. OR symmetrically stops once every row matches.
//   - Advanced (column-vs-column) cuts are the only leaves that decode:
//     both columns' current batch is materialized into scratch buffers.
//
// The result is bit-identical to the decoded row-at-a-time evaluation
// (expr.Query.Eval over every row); the cross-format and equivalence tests
// hold both paths to that ground truth.

// vecScratch holds the per-worker decode buffers advanced-cut leaves use.
type vecScratch struct {
	left  [blockstore.BatchSize]int64
	right [blockstore.BatchSize]int64
}

// countMatchesVec counts the rows of a block matching q, evaluating the
// filter over encoded columns. vecs is indexed by column ordinal; entries
// for columns the query does not reference may be nil.
func countMatchesVec(q expr.Query, acs []expr.AdvCut, vecs []*blockstore.ColVec, nrows int, st *vecScratch) int {
	if q.Root == nil {
		return nrows
	}
	total := 0
	var sel blockstore.SelVec
	for start := 0; start < nrows; start += blockstore.BatchSize {
		n := nrows - start
		if n > blockstore.BatchSize {
			n = blockstore.BatchSize
		}
		evalNodeVec(q.Root, acs, vecs, start, n, &sel, st)
		total += sel.Count()
	}
	return total
}

// evalNodeVec evaluates one AST node over rows [start, start+n), writing
// the selection into out (fully overwritten; bits >= n stay zero).
func evalNodeVec(node *expr.Node, acs []expr.AdvCut, vecs []*blockstore.ColVec, start, n int, out *blockstore.SelVec, st *vecScratch) {
	if node == nil {
		out.SetFirst(n)
		return
	}
	switch node.Kind {
	case expr.KindPred:
		vecs[node.Pred.Col].Filter(node.Pred, start, n, out)
	case expr.KindAdv:
		ac := acs[node.Adv]
		lc, rc := st.left[:n], st.right[:n]
		vecs[ac.Left].DecodeRange(lc, start, n)
		vecs[ac.Right].DecodeRange(rc, start, n)
		out.Zero()
		blockstore.CmpSelect(ac.Op, lc, rc, n, out)
	case expr.KindAnd:
		if len(node.Children) == 0 {
			out.SetFirst(n) // empty conjunction is TRUE
			return
		}
		var child blockstore.SelVec
		for i, c := range node.Children {
			if i == 0 {
				evalNodeVec(c, acs, vecs, start, n, out, st)
				continue
			}
			if out.None() {
				return // batch already empty: skip (and never decode) the rest
			}
			evalNodeVec(c, acs, vecs, start, n, &child, st)
			out.And(&child)
		}
	case expr.KindOr:
		if len(node.Children) == 0 {
			out.Zero() // empty disjunction is FALSE
			return
		}
		var child blockstore.SelVec
		for i, c := range node.Children {
			if i == 0 {
				evalNodeVec(c, acs, vecs, start, n, out, st)
				continue
			}
			if out.AllFirst(n) {
				return // batch already saturated
			}
			evalNodeVec(c, acs, vecs, start, n, &child, st)
			out.Or(&child)
		}
	default:
		out.SetFirst(n)
	}
}
