package exec

// Row-returning execution: SELECT a, b FROM t [WHERE ...]
// [ORDER BY ...] [LIMIT k] over the pruned block scan pipeline.
//
// Projection is late-materializing: the filter runs over encoded
// columns in batch-of-1024 SelVec bitmaps exactly like counting, and
// only the projected columns of batches with surviving rows are
// decoded. Each worker feeds its own rowSink (bounded TopK heap when
// the query has a LIMIT), merged once after the pool drains.
//
// # Zone-map-ordered TopK short-circuit
//
// When a query has both ORDER BY and LIMIT, candidate blocks are
// visited sequentially in zone-map order of the primary sort key
// (ascending block Min for ASC, descending block Max for DESC). Once
// the heap holds k rows, a block whose best possible primary-key value
// is strictly worse than the heap's worst kept row cannot contribute —
// and neither can any later block in the visitation order, so the scan
// stops. The comparison is strict because a primary-key tie can still
// beat the heap on the full-tuple tie-break. Delta tables and blocks
// without zone maps carry no bound, so they scan first. This path is
// sequential by construction (the bound must be current when each
// block is considered), so its SimTime is the single-stream cost
// regardless of Options.Parallelism; emitted rows are bit-identical to
// the pooled path either way.

import (
	"fmt"
	"time"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/expr"
	"sort"
)

// JoinStats are the join-path physical counters (see join.go),
// surfaced through /stats and /metrics so the drift log sees join
// traffic.
type JoinStats struct {
	// RowsBuild is the number of build-side (left) rows retained after
	// the left filter; RowsProbe the number of probe-side (right) rows
	// that survived the right filter and probed the table.
	RowsBuild int64 `json:"rows_build"`
	RowsProbe int64 `json:"rows_probe"`
	// PartitionCount is the number of hash partitions the build was
	// split into; 1 on the dense code-space path.
	PartitionCount int `json:"partition_count"`
	// CodeSpace reports whether the build side stayed in dictionary
	// code space (dense array indexed by code, no hashing, no decode).
	CodeSpace bool `json:"code_space"`
}

// RowsResult reports one row-returning execution (single-table or
// join). Rows is the complete ordered output; RowsMatched counts
// filter survivors before any LIMIT — in the blocks actually visited,
// so under the TopK short-circuit it is a lower bound (stopping early
// is the whole point).
type RowsResult struct {
	Query string
	ScanStats
	BlocksTotal int
	RowsTotal   int64
	// Cols names the output columns; Side is 0 for single-table
	// queries and selects the join side otherwise.
	Cols []expr.ColRef
	Rows [][]int64
	// Left/Right split ScanStats per join side (nil for single-table
	// queries) so the drift log can record each side's filter traffic.
	Left  *ScanStats
	Right *ScanStats
	// Join carries the join-path counters (nil for single-table).
	Join *JoinStats
	// MatchedLowerBound reports that the TopK short-circuit stopped
	// before visiting every candidate block, so RowsMatched undercounts
	// and must not be compared against an exhaustive scan's counter.
	MatchedLowerBound bool
	SimTime           time.Duration
	WallTime          time.Duration
}

// SkipRate is the fraction of the store's rows the query skipped —
// identical semantics to Result.SkipRate.
func (r *RowsResult) SkipRate() float64 {
	if r.RowsTotal == 0 {
		return 1
	}
	return 1 - float64(r.RowsScanned)/float64(r.RowsTotal)
}

// rowAcc is one scan worker's private state.
type rowAcc struct {
	stats   ScanStats
	crit    time.Duration
	scratch vecScratch
	sel     blockstore.SelVec
	arena   *blockstore.Arena
	sink    *rowSink
}

// validateRowQuery bounds-checks the query against the store schema.
func validateRowQuery(store *blockstore.Store, rq expr.RowQuery, acs []expr.AdvCut) error {
	ncols := store.Schema.NumCols()
	if len(rq.Cols) == 0 {
		return fmt.Errorf("exec: row query has an empty projection")
	}
	for _, c := range rq.Cols {
		if c < 0 || c >= ncols {
			return fmt.Errorf("exec: projected column %d outside %d-column schema", c, ncols)
		}
	}
	for _, k := range rq.OrderBy {
		if k.Pos < 0 || k.Pos >= len(rq.Cols) {
			return fmt.Errorf("exec: ORDER BY position %d outside %d-column projection", k.Pos, len(rq.Cols))
		}
	}
	for _, a := range rq.Filter.AdvRefs() {
		if a < 0 || a >= len(acs) {
			return fmt.Errorf("exec: filter references advanced cut %d but the cut table holds %d", a, len(acs))
		}
	}
	if rq.Limit < 0 {
		return fmt.Errorf("exec: negative LIMIT %d", rq.Limit)
	}
	return nil
}

// rowQueryColumns is the sorted distinct read set: filter columns plus
// the projection.
func rowQueryColumns(rq expr.RowQuery, acs []expr.AdvCut) []int {
	seen := make(map[int]bool)
	for _, p := range rq.Filter.Preds() {
		seen[p.Col] = true
	}
	for _, a := range rq.Filter.AdvRefs() {
		seen[acs[a].Left] = true
		seen[acs[a].Right] = true
	}
	for _, c := range rq.Cols {
		seen[c] = true
	}
	return sortedCols(seen)
}

// RunRows executes a row query sequentially (RunRowsOpts at
// Parallelism 1).
func RunRows(store *blockstore.Store, layout *cost.Layout, rq expr.RowQuery, acs []expr.AdvCut, prof Profile, mode Mode) (*RowsResult, error) {
	return RunRowsOpts(store, layout, rq, acs, prof, mode, Options{Parallelism: 1})
}

// RunRowsOpts executes a row query with a pool of scan workers (or the
// sequential TopK path — see package comment). Emitted rows are
// bit-identical for every Options value.
func RunRowsOpts(store *blockstore.Store, layout *cost.Layout, rq expr.RowQuery, acs []expr.AdvCut, prof Profile, mode Mode, opt Options) (*RowsResult, error) {
	return RunRowsDelta(store, layout, rq, acs, prof, mode, opt, nil)
}

// RunRowsDelta is RunRowsOpts over the merged view `delta ∪ base`.
func RunRowsDelta(store *blockstore.Store, layout *cost.Layout, rq expr.RowQuery, acs []expr.AdvCut, prof Profile, mode Mode, opt Options, dv *DeltaView) (*RowsResult, error) {
	res := &RowsResult{Query: rq.Name}
	res.BlocksTotal, res.RowsTotal = storeTotals(store)
	res.RowsTotal += dv.Rows()
	res.Cols = make([]expr.ColRef, len(rq.Cols))
	for i, c := range rq.Cols {
		res.Cols[i] = expr.ColRef{Side: 0, Col: c}
	}
	if err := validateRowQuery(store, rq, acs); err != nil {
		return nil, err
	}
	var rec *pruneRecorder
	if opt.Trace != nil {
		rec = &pruneRecorder{}
	}
	psp := opt.Trace.Start("block_prune")
	candidates, err := candidateBlocks(store, layout, rq.Filter, mode, rec)
	rec.annotate(psp, res.BlocksTotal, len(candidates))
	psp.End()
	if err != nil {
		return nil, err
	}
	var readCols []int
	if prof.Columnar {
		readCols = rowQueryColumns(rq, acs)
	}
	logicalWidth := int64(8) * int64(len(readCols))
	if readCols == nil {
		logicalWidth = int64(8) * int64(store.Schema.NumCols())
	}
	less := rowLess(rq.OrderBy)
	workers := opt.workers()
	topk := rq.Limit > 0 && len(rq.OrderBy) > 0
	if topk {
		workers = 1 // the bound must be current when each block is considered
	}
	accs := make([]rowAcc, max(workers, 1))
	for i := range accs {
		accs[i].arena = blockstore.GetArena()
		accs[i].sink = newRowSink(rq.Limit, less)
	}
	defer func() {
		for i := range accs {
			blockstore.PutArena(accs[i].arena)
		}
	}()
	scanBlock := func(a *rowAcc, b int) error {
		vecs, nrows, nbytes, err := store.ReadColVecsArena(b, readCols, a.arena)
		if err != nil {
			return err
		}
		if vecs == nil {
			return nil
		}
		a.stats.BlocksScanned++
		a.stats.RowsScanned += int64(nrows)
		a.stats.BytesRead += nbytes
		a.stats.BytesLogical += logicalWidth * int64(nrows)
		a.stats.RowsMatched += projectBlock(rq.Filter.Root, acs, vecs, nrows, rq.Cols, a, a.sink.add)
		if c := blockCost(prof, nbytes, nrows, 1); c > a.crit {
			a.crit = c
		}
		return nil
	}
	scanDelta := func(a *rowAcc) {
		tabs := dv.tables()
		if len(tabs) == 0 {
			return
		}
		dsp := opt.Trace.Start("delta_scan")
		for _, t := range tabs {
			a.arena.ResetPlain()
			vecs, nbytes := deltaColVecs(t, readCols, a.arena)
			a.stats.BlocksScanned++
			a.stats.DeltaRows += int64(t.N)
			a.stats.RowsScanned += int64(t.N)
			a.stats.BytesRead += nbytes
			a.stats.BytesLogical += logicalWidth * int64(t.N)
			a.stats.RowsMatched += projectBlock(rq.Filter.Root, acs, vecs, t.N, rq.Cols, a, a.sink.add)
			if c := blockCost(prof, nbytes, t.N, 1); c > a.crit {
				a.crit = c
			}
		}
		dsp.SetAttr("delta_tables", len(tabs)).SetAttr("delta_rows", a.stats.DeltaRows)
		dsp.End()
	}

	start := time.Now()
	ssp := opt.Trace.Start("scan")
	if topk {
		// Sequential zone-map-ordered visitation: delta and unmapped
		// blocks first (no bound available), then SMA-sorted blocks
		// until the heap bound beats the next block's best value.
		pc := rq.Cols[rq.OrderBy[0].Pos]
		desc := rq.OrderBy[0].Desc
		a := &accs[0]
		scanDelta(a)
		var unmapped, mapped []int
		for _, b := range candidates {
			if m := store.Blocks[b]; pc < len(m.Min) {
				mapped = append(mapped, b)
			} else {
				unmapped = append(unmapped, b)
			}
		}
		sort.Slice(mapped, func(i, j int) bool {
			bi, bj := mapped[i], mapped[j]
			vi, vj := store.Blocks[bi].Min[pc], store.Blocks[bj].Min[pc]
			if desc {
				vi, vj = store.Blocks[bi].Max[pc], store.Blocks[bj].Max[pc]
				if vi != vj {
					return vi > vj
				}
				return bi < bj
			}
			if vi != vj {
				return vi < vj
			}
			return bi < bj
		})
		for _, b := range unmapped {
			if err := scanBlock(a, b); err != nil {
				ssp.End()
				return nil, err
			}
		}
		pruned := 0
		for i, b := range mapped {
			if a.sink.full() {
				bound := a.sink.worst()[rq.OrderBy[0].Pos]
				m := store.Blocks[b]
				if (!desc && m.Min[pc] > bound) || (desc && m.Max[pc] < bound) {
					pruned = len(mapped) - i
					break
				}
			}
			if err := scanBlock(a, b); err != nil {
				ssp.End()
				return nil, err
			}
		}
		res.MatchedLowerBound = pruned > 0
		ssp.SetAttr("topk_shortcircuit", 1).SetAttr("topk_pruned_blocks", pruned)
	} else {
		err = runPool(len(candidates), workers, func(slot, i int) error {
			return scanBlock(&accs[slot], candidates[i])
		})
		if err != nil {
			ssp.End()
			return nil, err
		}
		scanDelta(&accs[0])
	}
	var crit time.Duration
	for i := range accs {
		res.ScanStats.merge(accs[i].stats)
		if accs[i].crit > crit {
			crit = accs[i].crit
		}
	}
	ssp.SetAttr("blocks_scanned", res.BlocksScanned).
		SetAttr("rows_scanned", res.RowsScanned).
		SetAttr("rows_matched", res.RowsMatched).
		SetAttr("bytes_read", res.BytesRead)
	ssp.End()
	msp := opt.Trace.Start("merge")
	sinks := make([]*rowSink, len(accs))
	for i := range accs {
		sinks[i] = accs[i].sink
	}
	res.Rows = finishSinks(sinks, rq.OrderBy, rq.Limit)
	msp.SetAttr("rows_returned", len(res.Rows))
	msp.End()
	res.WallTime = time.Since(start)
	res.SimTime = parallelSimTime(res.simTime(prof), crit, workers)
	return res, nil
}

// projectBlock evaluates the filter over one block batch-by-batch and
// emits the projected tuple of every selected row (ownership of the
// tuple transfers to emit). Only projected columns of batches with
// survivors are decoded (late materialization). Returns the number of
// selected rows.
func projectBlock(root *expr.Node, acs []expr.AdvCut, vecs []*blockstore.ColVec, nrows int, proj []int, a *rowAcc, emit func([]int64)) int64 {
	var matched int64
	decodedAt := a.arena.DecodedAt(len(vecs))
	for start := 0; start < nrows; start += blockstore.BatchSize {
		n := nrows - start
		if n > blockstore.BatchSize {
			n = blockstore.BatchSize
		}
		if root == nil {
			a.sel.SetFirst(n)
		} else {
			evalNodeVec(root, acs, vecs, start, n, &a.sel, &a.scratch)
			if a.sel.None() {
				continue
			}
		}
		matched += int64(a.sel.Count())
		for _, c := range proj {
			if decodedAt[c] != start {
				vecs[c].DecodeRange(a.arena.DecodeBuf(c), start, n)
				decodedAt[c] = start
			}
		}
		a.sel.ForEach(n, func(i int) {
			// The emitted tuple escapes into the sink; this allocation is
			// inherent (one per matched row), unlike the scan scratch.
			out := make([]int64, len(proj))
			for j, c := range proj {
				out[j] = a.arena.DecodeBuf(c)[i]
			}
			emit(out)
		})
	}
	return matched
}
