package exec

// Merged reads over `delta ∪ base`: the streaming-ingest delta (memtable
// prefix plus sealed segments, snapshotted by internal/delta) carries no
// layout membership and no zone maps, so every query scans its rows in
// full — through the same vectorized SelVec kernels as base blocks, which
// keeps counts and aggregates bit-identical to the row-at-a-time
// reference over the concatenated table. Base blocks are pruned exactly
// as without a delta.
//
// Accounting treats each delta table as one more scanned unit: a seek,
// its plain-encoded bytes, and a filter pass over its rows enter the same
// deterministic total/critical-path reduction as block scans, and the
// delta's rows join RowsTotal — so SkipRate degrades as the delta fills,
// which is precisely the signal compaction removes. DeltaRows counts the
// delta share of RowsScanned.

import (
	"repro/internal/blockstore"
	"repro/internal/table"
)

// DeltaView is an immutable point-in-time snapshot of the uncompacted
// delta, oldest table first. A nil view means "no delta" and is accepted
// everywhere.
type DeltaView struct {
	Tables []*table.Table
}

// Rows returns the view's total row count (0 for nil).
func (d *DeltaView) Rows() int64 {
	if d == nil {
		return 0
	}
	var n int64
	for _, t := range d.Tables {
		n += int64(t.N)
	}
	return n
}

// tables returns the view's non-empty tables (nil-safe).
func (d *DeltaView) tables() []*table.Table {
	if d == nil {
		return nil
	}
	out := d.Tables[:0:0]
	for _, t := range d.Tables {
		if t.N > 0 {
			out = append(out, t)
		}
	}
	return out
}

// deltaColVecs wraps the referenced columns of one in-memory delta table
// (cols nil = all) as PLAIN column vectors, mirroring the shape
// blockstore.ReadColVecs returns for a block, and reports the plain
// byte volume converted — what the cost model charges for the scan.
// With an arena, conversion buffers come from its Plain space (valid
// until the arena's next ResetPlain) instead of fresh allocations.
func deltaColVecs(t *table.Table, cols []int, ar *blockstore.Arena) ([]*blockstore.ColVec, int64) {
	vecs := make([]*blockstore.ColVec, len(t.Cols))
	var nbytes int64
	add := func(c int) {
		if ar != nil {
			vecs[c] = ar.Plain(t.Cols[c][:t.N])
		} else {
			vecs[c] = blockstore.PlainColVec(t.Cols[c][:t.N])
		}
		nbytes += int64(8 * t.N)
	}
	if cols == nil {
		for c := range t.Cols {
			add(c)
		}
	} else {
		for _, c := range cols {
			add(c)
		}
	}
	return vecs, nbytes
}
