package exec

// Partitioned hash equi-join over the pruned scan pipeline:
//
//	SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.k = t2.k
//	  [WHERE ...] [ORDER BY ...] [LIMIT k]
//
// Both sides scan the same store — on a single-table server a join is
// a self-join with the FROM names acting as positional aliases — with
// each side's filter pruned independently through the layout, so join
// traffic exercises the learned layout twice.
//
// Build phase (left side): scan workers filter and late-materialize
// [key, projected...] tuples into private lists, merged after the pool
// drains. The merged build lands in dictionary code space when both
// key columns are categorical over one shared catalog dictionary — a
// dense table indexed by code, no hashing and no decode — and in
// hash-partitioned maps otherwise.
//
// Probe phase (right side): workers look up each surviving probe row's
// key in the (now read-only) build table and feed the assembled output
// tuples into per-worker rowSinks, merged, ordered, and limited like a
// single-table row query. All arithmetic is order-independent, so the
// emitted rows are bit-identical across parallelism, block formats,
// and pruning modes.

import (
	"fmt"
	"time"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/table"
)

// joinPartitions is the hash-path partition fan-out: enough to split
// the build across a worker pool's cache lines, small enough that tiny
// builds don't drown in empty maps.
const joinPartitions = 16

// maxDenseJoinDom bounds the code-space build table, mirroring the
// dense GROUP BY domain cap in planAgg.
const maxDenseJoinDom = 65536

func hashJoinKey(k int64) uint64 {
	return (uint64(k) * 0x9E3779B97F4A7C15) >> 17
}

// sameDict reports whether two catalog dictionaries are interchangeable
// (same codes mean the same strings), which is what lets the build stay
// in code space: equal codes compare equal exactly when the dictionaries
// agree entry-for-entry.
func sameDict(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// joinPlan is the per-query execution plan shared by all workers.
type joinPlan struct {
	jq expr.JoinQuery
	// leftProj / rightProj are the distinct schema columns each side
	// materializes (in first-appearance order); srcSide/srcIdx map each
	// output position to (side, index within that side's tuple).
	leftProj, rightProj []int
	srcSide, srcIdx     []int
	// scanL / scanR are the column sets projectBlock materializes per
	// side: the key first, then the side's projected columns.
	scanL, scanR []int
	// readL / readR are the physical column read sets (nil = all).
	readL, readR []int
	codeSpace    bool
	denseDom     int
}

func planJoin(store *blockstore.Store, jq expr.JoinQuery, acs []expr.AdvCut, prof Profile) (*joinPlan, error) {
	ncols := store.Schema.NumCols()
	if len(jq.Cols) == 0 {
		return nil, fmt.Errorf("exec: join has an empty projection")
	}
	if jq.LeftKey < 0 || jq.LeftKey >= ncols || jq.RightKey < 0 || jq.RightKey >= ncols {
		return nil, fmt.Errorf("exec: join key outside %d-column schema", ncols)
	}
	for _, cr := range jq.Cols {
		if cr.Side < 0 || cr.Side > 1 || cr.Col < 0 || cr.Col >= ncols {
			return nil, fmt.Errorf("exec: projected column {side %d, col %d} invalid", cr.Side, cr.Col)
		}
	}
	for _, k := range jq.OrderBy {
		if k.Pos < 0 || k.Pos >= len(jq.Cols) {
			return nil, fmt.Errorf("exec: ORDER BY position %d outside %d-column projection", k.Pos, len(jq.Cols))
		}
	}
	for _, f := range []expr.Query{jq.LeftFilter, jq.RightFilter} {
		for _, a := range f.AdvRefs() {
			if a < 0 || a >= len(acs) {
				return nil, fmt.Errorf("exec: filter references advanced cut %d but the cut table holds %d", a, len(acs))
			}
		}
	}
	if jq.Limit < 0 {
		return nil, fmt.Errorf("exec: negative LIMIT %d", jq.Limit)
	}
	pl := &joinPlan{jq: jq}
	leftIdx := make(map[int]int)
	rightIdx := make(map[int]int)
	pl.srcSide = make([]int, len(jq.Cols))
	pl.srcIdx = make([]int, len(jq.Cols))
	for p, cr := range jq.Cols {
		pl.srcSide[p] = cr.Side
		if cr.Side == 0 {
			i, ok := leftIdx[cr.Col]
			if !ok {
				i = len(pl.leftProj)
				leftIdx[cr.Col] = i
				pl.leftProj = append(pl.leftProj, cr.Col)
			}
			pl.srcIdx[p] = i
		} else {
			i, ok := rightIdx[cr.Col]
			if !ok {
				i = len(pl.rightProj)
				rightIdx[cr.Col] = i
				pl.rightProj = append(pl.rightProj, cr.Col)
			}
			pl.srcIdx[p] = i
		}
	}
	pl.scanL = append([]int{jq.LeftKey}, pl.leftProj...)
	pl.scanR = append([]int{jq.RightKey}, pl.rightProj...)
	lc, rc := store.Schema.Cols[jq.LeftKey], store.Schema.Cols[jq.RightKey]
	if lc.Kind == table.Categorical && rc.Kind == table.Categorical &&
		lc.Dom > 0 && lc.Dom == rc.Dom && lc.Dom <= maxDenseJoinDom &&
		sameDict(lc.Dict, rc.Dict) {
		pl.codeSpace = true
		pl.denseDom = int(lc.Dom)
	}
	if prof.Columnar {
		pl.readL = joinSideColumns(jq.LeftFilter, acs, pl.scanL)
		pl.readR = joinSideColumns(jq.RightFilter, acs, pl.scanR)
	}
	return pl, nil
}

// joinSideColumns is one side's sorted distinct physical read set:
// filter columns plus the side's materialized columns.
func joinSideColumns(f expr.Query, acs []expr.AdvCut, scan []int) []int {
	seen := make(map[int]bool)
	for _, p := range f.Preds() {
		seen[p.Col] = true
	}
	for _, a := range f.AdvRefs() {
		seen[acs[a].Left] = true
		seen[acs[a].Right] = true
	}
	for _, c := range scan {
		seen[c] = true
	}
	return sortedCols(seen)
}

// buildTable is the read-only lookup structure the probe phase shares:
// dense code-space slots or hash-partitioned maps. Each entry is a
// build tuple [key, leftProj...].
type buildTable struct {
	dense [][][]int64
	parts []map[int64][][]int64
}

func (bt *buildTable) insert(t []int64) {
	k := t[0]
	if bt.dense != nil {
		if k >= 0 && k < int64(len(bt.dense)) {
			bt.dense[k] = append(bt.dense[k], t)
		}
		return
	}
	p := hashJoinKey(k) % joinPartitions
	m := bt.parts[p]
	if m == nil {
		m = make(map[int64][][]int64)
		bt.parts[p] = m
	}
	m[k] = append(m[k], t)
}

func (bt *buildTable) lookup(k int64) [][]int64 {
	if bt.dense != nil {
		if k >= 0 && k < int64(len(bt.dense)) {
			return bt.dense[k]
		}
		return nil
	}
	return bt.parts[hashJoinKey(k)%joinPartitions][k]
}

// RunJoin executes the join sequentially (RunJoinOpts at Parallelism 1).
func RunJoin(store *blockstore.Store, layout *cost.Layout, jq expr.JoinQuery, acs []expr.AdvCut, prof Profile, mode Mode) (*RowsResult, error) {
	return RunJoinOpts(store, layout, jq, acs, prof, mode, Options{Parallelism: 1})
}

// RunJoinOpts executes the join with a pool of scan workers per phase.
func RunJoinOpts(store *blockstore.Store, layout *cost.Layout, jq expr.JoinQuery, acs []expr.AdvCut, prof Profile, mode Mode, opt Options) (*RowsResult, error) {
	return RunJoinDelta(store, layout, jq, acs, prof, mode, opt, nil)
}

// RunJoinDelta is RunJoinOpts over the merged view `delta ∪ base`:
// both join sides see base blocks plus every delta table. BlocksTotal
// and RowsTotal count the universe twice — the query's scan universe
// is left ∪ right — so SkipRate keeps its usual meaning.
func RunJoinDelta(store *blockstore.Store, layout *cost.Layout, jq expr.JoinQuery, acs []expr.AdvCut, prof Profile, mode Mode, opt Options, dv *DeltaView) (*RowsResult, error) {
	pl, err := planJoin(store, jq, acs, prof)
	if err != nil {
		return nil, err
	}
	res := &RowsResult{Query: jq.Name, Cols: append([]expr.ColRef(nil), jq.Cols...)}
	blocks, rows := storeTotals(store)
	rows += dv.Rows()
	res.BlocksTotal, res.RowsTotal = 2*blocks, 2*rows
	res.Join = &JoinStats{PartitionCount: joinPartitions, CodeSpace: pl.codeSpace}
	if pl.codeSpace {
		res.Join.PartitionCount = 1
	}
	workers := opt.workers()
	ncols := store.Schema.NumCols()
	start := time.Now()

	// scanSide runs one phase: pruned block scan plus the full delta,
	// with each worker's emit receiving [key, sideProj...] tuples.
	scanSide := func(side string, filter expr.Query, readCols, scan []int, emit []func([]int64)) (ScanStats, time.Duration, error) {
		var rec *pruneRecorder
		if opt.Trace != nil {
			rec = &pruneRecorder{}
		}
		psp := opt.Trace.Start("block_prune").SetAttr("side", side)
		candidates, err := candidateBlocks(store, layout, filter, mode, rec)
		rec.annotate(psp, blocks, len(candidates))
		psp.End()
		if err != nil {
			return ScanStats{}, 0, err
		}
		logicalWidth := int64(8) * int64(len(readCols))
		if readCols == nil {
			logicalWidth = int64(8) * int64(ncols)
		}
		accs := make([]rowAcc, max(workers, 1))
		for i := range accs {
			accs[i].arena = blockstore.GetArena()
		}
		defer func() {
			for i := range accs {
				blockstore.PutArena(accs[i].arena)
			}
		}()
		ssp := opt.Trace.Start(side + "_scan")
		err = runPool(len(candidates), workers, func(slot, i int) error {
			a := &accs[slot]
			vecs, nrows, nbytes, err := store.ReadColVecsArena(candidates[i], readCols, a.arena)
			if err != nil {
				return err
			}
			if vecs == nil {
				return nil
			}
			a.stats.BlocksScanned++
			a.stats.RowsScanned += int64(nrows)
			a.stats.BytesRead += nbytes
			a.stats.BytesLogical += logicalWidth * int64(nrows)
			a.stats.RowsMatched += projectBlock(filter.Root, acs, vecs, nrows, scan, a, emit[slot])
			if c := blockCost(prof, nbytes, nrows, 1); c > a.crit {
				a.crit = c
			}
			return nil
		})
		if err != nil {
			ssp.End()
			return ScanStats{}, 0, err
		}
		for _, t := range dv.tables() {
			a := &accs[0]
			a.arena.ResetPlain()
			vecs, nbytes := deltaColVecs(t, readCols, a.arena)
			a.stats.BlocksScanned++
			a.stats.DeltaRows += int64(t.N)
			a.stats.RowsScanned += int64(t.N)
			a.stats.BytesRead += nbytes
			a.stats.BytesLogical += logicalWidth * int64(t.N)
			a.stats.RowsMatched += projectBlock(filter.Root, acs, vecs, t.N, scan, a, emit[0])
			if c := blockCost(prof, nbytes, t.N, 1); c > a.crit {
				a.crit = c
			}
		}
		var stats ScanStats
		var crit time.Duration
		for i := range accs {
			stats.merge(accs[i].stats)
			if accs[i].crit > crit {
				crit = accs[i].crit
			}
		}
		ssp.SetAttr("blocks_scanned", stats.BlocksScanned).
			SetAttr("rows_scanned", stats.RowsScanned).
			SetAttr("rows_matched", stats.RowsMatched)
		ssp.End()
		return stats, parallelSimTime(stats.simTime(prof), crit, workers), nil
	}

	// Build: collect per-worker tuple lists, then insert into the
	// shared table once the pool is quiet.
	buildLists := make([][][]int64, max(workers, 1))
	buildEmit := make([]func([]int64), len(buildLists))
	for i := range buildLists {
		i := i
		buildEmit[i] = func(t []int64) { buildLists[i] = append(buildLists[i], t) }
	}
	leftStats, leftSim, err := scanSide("build", jq.LeftFilter, pl.readL, pl.scanL, buildEmit)
	if err != nil {
		return nil, err
	}
	bt := &buildTable{}
	if pl.codeSpace {
		bt.dense = make([][][]int64, pl.denseDom)
	} else {
		bt.parts = make([]map[int64][][]int64, joinPartitions)
	}
	for _, list := range buildLists {
		for _, t := range list {
			bt.insert(t)
		}
		res.Join.RowsBuild += int64(len(list))
	}

	// Probe: each worker assembles output tuples into its own sink.
	less := rowLess(jq.OrderBy)
	sinks := make([]*rowSink, max(workers, 1))
	probeEmit := make([]func([]int64), len(sinks))
	emitted := make([]int64, len(sinks))
	for i := range sinks {
		i := i
		sinks[i] = newRowSink(jq.Limit, less)
		probeEmit[i] = func(t []int64) {
			for _, m := range bt.lookup(t[0]) {
				out := make([]int64, len(pl.srcSide))
				for p := range out {
					if pl.srcSide[p] == 0 {
						out[p] = m[1+pl.srcIdx[p]]
					} else {
						out[p] = t[1+pl.srcIdx[p]]
					}
				}
				emitted[i]++
				sinks[i].add(out)
			}
		}
	}
	rightStats, rightSim, err := scanSide("probe", jq.RightFilter, pl.readR, pl.scanR, probeEmit)
	if err != nil {
		return nil, err
	}
	res.Join.RowsProbe = rightStats.RowsMatched

	msp := opt.Trace.Start("merge")
	res.Rows = finishSinks(sinks, jq.OrderBy, jq.Limit)
	res.Left = &leftStats
	res.Right = &rightStats
	res.ScanStats.merge(leftStats)
	res.ScanStats.merge(rightStats)
	var outRows int64
	for _, e := range emitted {
		outRows += e
	}
	// RowsMatched reports join output rows (pre-LIMIT), not the sum of
	// per-side filter survivors — that is what "the query matched".
	res.RowsMatched = outRows
	msp.SetAttr("rows_build", res.Join.RowsBuild).
		SetAttr("rows_probe", res.Join.RowsProbe).
		SetAttr("rows_returned", len(res.Rows)).
		SetAttr("code_space", pl.codeSpace)
	msp.End()
	res.WallTime = time.Since(start)
	res.SimTime = leftSim + rightSim
	return res, nil
}
