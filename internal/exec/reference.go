package exec

// Reference aggregation: a deliberately naive row-at-a-time evaluator
// used as ground truth by the differential test suite, plus a
// decode-then-aggregate store executor that models an engine without
// encoded-column pushdown. Neither path shares kernels — or accumulator
// and finalization code — with the vectorized layer in agg.go: the
// reference carries its own refCell/refGroup reduction, its own
// finalization switch, and its own key ordering, so a bug in either
// implementation shows up as a differential mismatch instead of
// cancelling out.

import (
	"sort"
	"time"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/table"
)

// refCell accumulates one aggregate for one group, independently of the
// vectorized engine's aggCell.
type refCell struct {
	n        int64 // rows folded in
	sum      int64
	min, max int64
}

// refGroup is one group's accumulator row.
type refGroup struct {
	key   []int64
	cells []refCell
}

// refState accumulates aggregates the simple way: one map of groups, one
// row at a time.
type refState struct {
	aq     expr.AggQuery
	acs    []expr.AdvCut
	global refGroup
	m      map[string]*refGroup
	keybuf []byte
	key    []int64
}

func newRefState(aq expr.AggQuery, acs []expr.AdvCut) *refState {
	return &refState{
		aq:     aq,
		acs:    acs,
		global: refGroup{cells: make([]refCell, len(aq.Aggs))},
		m:      make(map[string]*refGroup),
		key:    make([]int64, len(aq.GroupBy)),
	}
}

// addRow filters one decoded row and folds it into the state.
func (rs *refState) addRow(row []int64) bool {
	if !rs.aq.Filter.Eval(row, rs.acs) {
		return false
	}
	g := &rs.global
	if len(rs.aq.GroupBy) > 0 {
		for i, c := range rs.aq.GroupBy {
			rs.key[i] = row[c]
		}
		rs.keybuf = rs.keybuf[:0]
		for _, k := range rs.key {
			for s := 0; s < 64; s += 8 {
				rs.keybuf = append(rs.keybuf, byte(uint64(k)>>s))
			}
		}
		var ok bool
		if g, ok = rs.m[string(rs.keybuf)]; !ok {
			g = &refGroup{key: append([]int64(nil), rs.key...), cells: make([]refCell, len(rs.aq.Aggs))}
			rs.m[string(rs.keybuf)] = g
		}
	}
	for i, a := range rs.aq.Aggs {
		c := &g.cells[i]
		switch a.Func {
		case expr.AggCountStar, expr.AggCount:
			// Counting needs no value.
		case expr.AggSum, expr.AggAvg:
			c.sum += row[a.Col]
		case expr.AggMin:
			if c.n == 0 || row[a.Col] < c.min {
				c.min = row[a.Col]
			}
		case expr.AggMax:
			if c.n == 0 || row[a.Col] > c.max {
				c.max = row[a.Col]
			}
		}
		c.n++
	}
	return true
}

// refFinalize turns one reference cell into its output value, with its
// own empty-input semantics switch (COUNT of nothing is a valid 0,
// everything else is invalid).
func refFinalize(f expr.AggFunc, c refCell) AggVal {
	switch f {
	case expr.AggCountStar, expr.AggCount:
		return AggVal{Valid: true, Int: c.n}
	case expr.AggSum:
		if c.n == 0 {
			return AggVal{}
		}
		return AggVal{Valid: true, Int: c.sum}
	case expr.AggMin:
		if c.n == 0 {
			return AggVal{}
		}
		return AggVal{Valid: true, Int: c.min}
	case expr.AggMax:
		if c.n == 0 {
			return AggVal{}
		}
		return AggVal{Valid: true, Int: c.max}
	case expr.AggAvg:
		if c.n == 0 {
			return AggVal{}
		}
		return AggVal{Valid: true, Float: float64(c.sum) / float64(c.n)}
	}
	return AggVal{}
}

// rows materializes the accumulated result in the same shape and order as
// RunAggOpts: sorted by group key, or one keyless row for global
// aggregates.
func (rs *refState) rows() []AggRow {
	finalize := func(g *refGroup) []AggVal {
		vals := make([]AggVal, len(rs.aq.Aggs))
		for i, a := range rs.aq.Aggs {
			vals[i] = refFinalize(a.Func, g.cells[i])
		}
		return vals
	}
	if len(rs.aq.GroupBy) == 0 {
		return []AggRow{{Vals: finalize(&rs.global)}}
	}
	groups := make([]*refGroup, 0, len(rs.m))
	for _, g := range rs.m {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i].key, groups[j].key
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	out := make([]AggRow, len(groups))
	for i, g := range groups {
		out[i] = AggRow{Key: g.key, Vals: finalize(g)}
	}
	return out
}

// ReferenceAggregate evaluates the aggregate query over an in-memory
// table, row at a time, with no vectorization, encoding awareness, or
// metadata shortcuts — the ground truth the pushdown engine is held to.
func ReferenceAggregate(tbl *table.Table, aq expr.AggQuery, acs []expr.AdvCut) []AggRow {
	rs := newRefState(aq, acs)
	row := make([]int64, tbl.Schema.NumCols())
	for r := 0; r < tbl.N; r++ {
		row = tbl.Row(r, row)
		rs.addRow(row)
	}
	return rs.rows()
}

// RunAggNaive executes the aggregate query over a store with no pushdown:
// every candidate block is fully decoded (all columns), filtered and
// aggregated row at a time from the materialized rows. BytesRead charges
// the decoded logical footprint — the I/O a decode-then-aggregate engine
// pays before its aggregator sees a row. It is the cost baseline
// BenchmarkAggregatePushdown and qdbench -exp agg compare against, and a
// second differential witness for correctness tests.
func RunAggNaive(store *blockstore.Store, layout *cost.Layout, aq expr.AggQuery, acs []expr.AdvCut, prof Profile, mode Mode) (*AggResult, error) {
	res := &AggResult{Query: aq.Name, GroupBy: append([]int(nil), aq.GroupBy...)}
	res.BlocksTotal, res.RowsTotal = storeTotals(store)
	candidates, err := candidateBlocks(store, layout, aq.Filter, mode, nil)
	if err != nil {
		return nil, err
	}
	ncols := store.Schema.NumCols()
	rs := newRefState(aq, acs)
	row := make([]int64, ncols)
	start := time.Now()
	for _, b := range candidates {
		data, nrows, _, err := store.ReadColumns(b, nil)
		if err != nil {
			return nil, err
		}
		if data == nil {
			continue
		}
		res.BlocksScanned++
		res.RowsScanned += int64(nrows)
		logical := int64(8*nrows) * int64(ncols)
		res.BytesRead += logical
		res.BytesLogical += logical
		for r := 0; r < nrows; r++ {
			for c := 0; c < ncols; c++ {
				row[c] = data[c][r]
			}
			if rs.addRow(row) {
				res.RowsMatched++
			}
		}
	}
	res.Rows = rs.rows()
	res.WallTime = time.Since(start)
	res.SimTime = res.simTime(prof)
	return res, nil
}

// refRowLess is the reference implementation's own copy of the
// deterministic output order (ORDER BY keys, then the full tuple
// ascending) — deliberately not shared with the fast path's rowLess so
// an ordering bug cannot cancel out.
func refRowLess(order []expr.OrderKey, a, b []int64) bool {
	for _, k := range order {
		if a[k.Pos] == b[k.Pos] {
			continue
		}
		if k.Desc {
			return a[k.Pos] > b[k.Pos]
		}
		return a[k.Pos] < b[k.Pos]
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// refSortLimit orders and truncates a reference result.
func refSortLimit(rows [][]int64, order []expr.OrderKey, limit int) [][]int64 {
	sort.Slice(rows, func(i, j int) bool { return refRowLess(order, rows[i], rows[j]) })
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	if rows == nil {
		rows = [][]int64{}
	}
	return rows
}

// ReferenceSelect evaluates a row query over an in-memory table, row
// at a time: filter, project, sort everything, then cut to the LIMIT.
// It is the ground truth the streaming executor in rows.go is held to.
func ReferenceSelect(tbl *table.Table, rq expr.RowQuery, acs []expr.AdvCut) [][]int64 {
	var out [][]int64
	row := make([]int64, tbl.Schema.NumCols())
	for r := 0; r < tbl.N; r++ {
		row = tbl.Row(r, row)
		if !rq.Filter.Eval(row, acs) {
			continue
		}
		t := make([]int64, len(rq.Cols))
		for i, c := range rq.Cols {
			t[i] = row[c]
		}
		out = append(out, t)
	}
	return refSortLimit(out, rq.OrderBy, rq.Limit)
}

// ReferenceJoin evaluates an equi-join of the table with itself (the
// single-table serving shape) as a nested loop: every filtered left
// row against every filtered right row, key equality checked by value.
// Quadratic on purpose — it shares nothing with the hash-join path.
func ReferenceJoin(tbl *table.Table, jq expr.JoinQuery, acs []expr.AdvCut) [][]int64 {
	ncols := tbl.Schema.NumCols()
	var lrows, rrows [][]int64
	row := make([]int64, ncols)
	for r := 0; r < tbl.N; r++ {
		row = tbl.Row(r, row)
		if jq.LeftFilter.Eval(row, acs) {
			lrows = append(lrows, append([]int64(nil), row...))
		}
		if jq.RightFilter.Eval(row, acs) {
			rrows = append(rrows, append([]int64(nil), row...))
		}
	}
	var out [][]int64
	for _, l := range lrows {
		for _, r := range rrows {
			if l[jq.LeftKey] != r[jq.RightKey] {
				continue
			}
			t := make([]int64, len(jq.Cols))
			for i, cr := range jq.Cols {
				if cr.Side == 0 {
					t[i] = l[cr.Col]
				} else {
					t[i] = r[cr.Col]
				}
			}
			out = append(out, t)
		}
	}
	return refSortLimit(out, jq.OrderBy, jq.Limit)
}

// RunRowsNaive executes a row query over a store with no TopK and no
// late materialization: every candidate block is fully decoded, every
// matching row fully materialized, the whole result sorted, and only
// then cut to the LIMIT — the full-sort-then-limit baseline
// qdbench -exp rows holds the bounded-heap path against. BytesRead
// charges the decoded logical footprint, as in RunAggNaive.
func RunRowsNaive(store *blockstore.Store, layout *cost.Layout, rq expr.RowQuery, acs []expr.AdvCut, prof Profile, mode Mode) (*RowsResult, error) {
	res := &RowsResult{Query: rq.Name}
	res.BlocksTotal, res.RowsTotal = storeTotals(store)
	res.Cols = make([]expr.ColRef, len(rq.Cols))
	for i, c := range rq.Cols {
		res.Cols[i] = expr.ColRef{Side: 0, Col: c}
	}
	if err := validateRowQuery(store, rq, acs); err != nil {
		return nil, err
	}
	candidates, err := candidateBlocks(store, layout, rq.Filter, mode, nil)
	if err != nil {
		return nil, err
	}
	ncols := store.Schema.NumCols()
	row := make([]int64, ncols)
	var out [][]int64
	start := time.Now()
	for _, b := range candidates {
		data, nrows, _, err := store.ReadColumns(b, nil)
		if err != nil {
			return nil, err
		}
		if data == nil {
			continue
		}
		res.BlocksScanned++
		res.RowsScanned += int64(nrows)
		logical := int64(8*nrows) * int64(ncols)
		res.BytesRead += logical
		res.BytesLogical += logical
		for r := 0; r < nrows; r++ {
			for c := 0; c < ncols; c++ {
				row[c] = data[c][r]
			}
			if !rq.Filter.Eval(row, acs) {
				continue
			}
			res.RowsMatched++
			t := make([]int64, len(rq.Cols))
			for i, c := range rq.Cols {
				t[i] = row[c]
			}
			out = append(out, t)
		}
	}
	res.Rows = refSortLimit(out, rq.OrderBy, rq.Limit)
	res.WallTime = time.Since(start)
	res.SimTime = res.simTime(prof)
	return res, nil
}
