package exec

import (
	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/table"
)

// BlockPrune is the per-block explain record attached to a query
// trace's block_prune span: which block was skipped, at which stage
// ("route" = qd-tree routing, "sma" = zone-map metadata), and — when a
// single predicate witnesses the prune — the column, operator, bound,
// and the block's [Min, Max] interval for that column.
type BlockPrune struct {
	Block  int    `json:"block"`
	By     string `json:"by"`
	Column string `json:"column,omitempty"`
	Op     string `json:"op,omitempty"`
	Bound  int64  `json:"bound,omitempty"`
	Min    int64  `json:"min,omitempty"`
	Max    int64  `json:"max,omitempty"`
}

// maxPruneDetail bounds the per-block detail list on a span; counts are
// always exact, only the witness list is truncated.
const maxPruneDetail = 32

// pruneRecorder accumulates pruning decisions during candidateBlocks.
// A nil recorder disables recording at zero cost.
type pruneRecorder struct {
	routePruned int
	smaPruned   int
	truncated   bool
	detail      []BlockPrune
}

func (r *pruneRecorder) add(p BlockPrune) {
	if r == nil {
		return
	}
	switch p.By {
	case "route":
		r.routePruned++
	case "sma":
		r.smaPruned++
	}
	if len(r.detail) < maxPruneDetail {
		r.detail = append(r.detail, p)
	} else {
		r.truncated = true
	}
}

// withCause fills the witness fields of p from a prune cause (nil cause
// leaves only block/by).
func withCause(p BlockPrune, schema *table.Schema, c *cost.PruneCause) BlockPrune {
	if c == nil {
		return p
	}
	if schema != nil && c.Col >= 0 && c.Col < len(schema.Cols) {
		p.Column = schema.Cols[c.Col].Name
	}
	p.Op = c.Op
	p.Bound = c.Literal
	p.Min = c.Lo
	p.Max = c.Hi
	return p
}

// annotate writes the recorder's summary onto the block_prune span.
func (r *pruneRecorder) annotate(sp *obs.ActiveSpan, blocksTotal, candidates int) {
	if r == nil || sp == nil {
		return
	}
	sp.SetAttr("blocks_total", blocksTotal)
	sp.SetAttr("candidates", candidates)
	sp.SetAttr("pruned_route", r.routePruned)
	sp.SetAttr("pruned_sma", r.smaPruned)
	if len(r.detail) > 0 {
		sp.SetAttr("pruned", r.detail)
	}
	if r.truncated {
		sp.SetAttr("pruned_truncated", true)
	}
}
