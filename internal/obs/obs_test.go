package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheus pins the exposition format: HELP/TYPE headers,
// sorted families, sorted label values, histogram buckets cumulative
// with +Inf, _sum and _count.
func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "A counter.")
	c.Add(3)
	cv := reg.CounterVec("test_by_kind_total", "A labelled counter.", "kind")
	cv.With("b").Inc()
	cv.With("a").Add(2)
	g := reg.Gauge("test_gauge", "A gauge.")
	g.Set(1.5)
	reg.GaugeFunc("test_fn", "A callback gauge.", func() float64 { return 7 })
	h := reg.Histogram("test_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	got := sb.String()
	want := `# HELP test_by_kind_total A labelled counter.
# TYPE test_by_kind_total counter
test_by_kind_total{kind="a"} 2
test_by_kind_total{kind="b"} 1
# HELP test_fn A callback gauge.
# TYPE test_fn gauge
test_fn 7
# HELP test_gauge A gauge.
# TYPE test_gauge gauge
test_gauge 1.5
# HELP test_seconds A histogram.
# TYPE test_seconds histogram
test_seconds_bucket{le="0.1"} 1
test_seconds_bucket{le="1"} 2
test_seconds_bucket{le="+Inf"} 3
test_seconds_sum 5.55
test_seconds_count 3
# HELP test_total A counter.
# TYPE test_total counter
test_total 3
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryIdempotentAndMismatch(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x")
	b := reg.Counter("x_total", "x")
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("re-registering the same counter should share the underlying series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	reg.Gauge("x_total", "x")
}

func TestVecAndHistogramAccessors(t *testing.T) {
	reg := NewRegistry()
	gv := reg.GaugeVec("v_gauge", "labelled gauge", "role")
	gv.With("shard").Set(2.5)
	if got := gv.With("shard").Value(); got != 2.5 {
		t.Errorf("GaugeVec value = %v, want 2.5", got)
	}
	hv := reg.HistogramVec("v_seconds", "labelled histogram", []float64{1}, "stage")
	h := hv.With("scan")
	h.Observe(0.5)
	h.Observe(3) // beyond the last bound: only the implicit +Inf bucket
	if h.Count() != 2 || h.Sum() != 3.5 {
		t.Errorf("histogram count/sum = %d/%v, want 2/3.5", h.Count(), h.Sum())
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	for _, want := range []string{
		`v_gauge{role="shard"} 2.5`,
		`v_seconds_bucket{stage="scan",le="1"} 1`,
		`v_seconds_bucket{stage="scan",le="+Inf"} 2`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("h_total", "h").Inc()
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want prometheus text 0.0.4", ct)
	}
	if !strings.Contains(rr.Body.String(), "h_total 1") {
		t.Errorf("body missing counter: %s", rr.Body.String())
	}
	rr = httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/metrics", nil))
	if rr.Code != 405 {
		t.Errorf("POST /metrics = %d, want 405", rr.Code)
	}
}

// TestTraceNilSafety: every method on a nil trace and nil span is a
// no-op — the zero-cost-when-disabled contract hot paths rely on.
func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Start("scan")
	sp.SetAttr("k", 1)
	if sp.StartNS() != 0 {
		t.Error("nil span StartNS != 0")
	}
	sp.End()
	tr.Finish()
	tr.MarkSlow()
	tr.AddRemote("s", 0, nil)
	if tr.ID() != "" || tr.DurNS() != 0 || tr.Snapshot() != nil || tr.SpanDurations() != nil {
		t.Error("nil trace accessors should return zero values")
	}
}

func TestTraceSpansAndRemote(t *testing.T) {
	tr := NewTrace("cafe")
	if tr.ID() != "cafe" {
		t.Fatalf("ID = %q", tr.ID())
	}
	sp := tr.Start("scan").SetAttr("blocks", 4)
	time.Sleep(time.Millisecond)
	sp.End()
	tr.AddRemote("shard_001", sp.StartNS(), []Span{{Name: "block_prune", StartNS: 10, DurNS: 5}})
	tr.Finish()
	d1 := tr.DurNS()
	tr.Finish() // idempotent: first call wins
	if tr.DurNS() != d1 {
		t.Error("Finish not idempotent")
	}

	td := tr.Snapshot()
	if len(td.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(td.Spans))
	}
	if td.Spans[0].Name != "scan" || td.Spans[0].DurNS <= 0 {
		t.Errorf("scan span = %+v", td.Spans[0])
	}
	remote := td.Spans[1]
	if remote.Shard != "shard_001" || remote.StartNS != sp.StartNS()+10 {
		t.Errorf("remote span not rebased/labelled: %+v", remote)
	}

	// Local stage durations exclude the imported remote span.
	durs := tr.SpanDurations()
	if len(durs) != 1 || durs[0].Name != "scan" {
		t.Fatalf("SpanDurations = %+v, want just scan", durs)
	}
	if durs[0].IntAttr("blocks") != 4 || durs[0].IntAttr("missing") != 0 {
		t.Errorf("IntAttr wrong: %+v", durs[0])
	}

	// Snapshot attr maps are deep copies.
	sp.SetAttr("blocks", 99)
	if td.Spans[0].Attrs["blocks"] != 4 {
		t.Error("snapshot attrs aliased to live span")
	}
}

func TestTraceIDGeneration(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || a == b {
		t.Errorf("NewTraceID: %q vs %q", a, b)
	}
	if id := NewTrace("").ID(); len(id) != 16 {
		t.Errorf("empty-ID trace got %q", id)
	}
}

func TestTraceRing(t *testing.T) {
	ring := NewTraceRing(2)
	ring.Record(nil) // no-op
	for i := 0; i < 3; i++ {
		tr := NewTrace("")
		tr.Finish()
		if i == 1 {
			tr.MarkSlow()
		}
		ring.Record(tr.Snapshot())
	}
	snap := ring.Snapshot()
	if snap.Total != 3 || snap.SlowTotal != 1 {
		t.Fatalf("totals = %d/%d, want 3/1", snap.Total, snap.SlowTotal)
	}
	if len(snap.Recent) != 2 {
		t.Fatalf("recent = %d, want 2 (bounded)", len(snap.Recent))
	}
	if len(snap.Slow) != 1 || !snap.Slow[0].Slow {
		t.Fatalf("slow ring = %+v", snap.Slow)
	}

	rr := httptest.NewRecorder()
	ring.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /debug/traces = %d", rr.Code)
	}
	var decoded RingSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("ring JSON: %v", err)
	}
	if decoded.Total != 3 {
		t.Errorf("handler total = %d", decoded.Total)
	}
}
