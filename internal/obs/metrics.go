// Package obs is the zero-dependency observability layer for the
// serving stack: a Prometheus-text metrics registry (counters, gauges,
// fixed-bucket histograms, all with label support), per-query trace
// spans, and a bounded ring of recent/slow traces.
//
// Everything here is stdlib-only and safe for concurrent use. The
// exposition output is deterministic — families sorted by name, series
// sorted by label values — so golden tests can pin the format.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultLatencyBuckets are the histogram bounds (seconds) used for
// every stage/query latency histogram: 1µs up to ~10s, roughly
// quadrupling. Fixed at registration so golden tests can pin them.
var DefaultLatencyBuckets = []float64{
	0.000001, 0.000004, 0.000016, 0.000064, 0.000256,
	0.001, 0.004, 0.016, 0.064, 0.256, 1, 4, 10,
}

// Registry holds metric families and renders them in Prometheus text
// exposition format 0.0.4. Registration is idempotent: asking for a
// family that already exists returns the existing one (the type and
// label names must match or the call panics — that is a programming
// error, not a runtime condition).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

type family struct {
	name    string
	help    string
	typ     string // "counter" | "gauge" | "histogram"
	labels  []string
	buckets []float64 // histograms only

	mu      sync.Mutex
	series  map[string]*series
	gaugeFn func() float64 // gauge callback families have no series
}

// series is one labelled child of a family. Counters and gauges use
// val (counters as integer counts, gauges as float64 bits); histograms
// use bucketN/sumBits/count.
type series struct {
	labelVals []string
	val       atomic.Uint64

	bucketN []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func (r *Registry) family(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels,
		buckets: buckets, series: make(map[string]*series)}
	r.fams[name] = f
	return f
}

func (f *family) child(lvs []string) *series {
	if len(lvs) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(lvs)))
	}
	key := strings.Join(lvs, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelVals: append([]string(nil), lvs...)}
	if f.typ == "histogram" {
		s.bucketN = make([]atomic.Uint64, len(f.buckets))
	}
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing integer.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.val.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.s.val.Add(n) }

// Value returns the current count (for tests and stats snapshots).
func (c *Counter) Value() uint64 { return c.s.val.Load() }

// CounterVec is a family of counters keyed by label values.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values.
func (v *CounterVec) With(lvs ...string) *Counter { return &Counter{v.f.child(lvs)} }

// Gauge is a settable float64.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.val.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.val.Load()) }

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(lvs ...string) *Gauge { return &Gauge{v.f.child(lvs)} }

// Histogram is a fixed-bucket cumulative histogram. Buckets store
// per-interval counts; the cumulative view is computed at render time.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	h.s.count.Add(1)
	for {
		old := h.s.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.s.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	for i, ub := range h.buckets {
		if v <= ub {
			h.s.bucketN[i].Add(1)
			return
		}
	}
	// v > every bound: lands only in the implicit +Inf bucket (count).
}

// Sum returns the running sum of observed values (for tests).
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.s.sumBits.Load()) }

// Count returns the number of observations (for tests).
func (h *Histogram) Count() uint64 { return h.s.count.Load() }

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(lvs ...string) *Histogram {
	return &Histogram{v.f.child(lvs), v.f.buckets}
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, "counter", nil, nil)
	return &Counter{f.child(nil)}
}

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, "counter", labels, nil)}
}

// Gauge registers (or fetches) an unlabelled settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, "gauge", nil, nil)
	return &Gauge{f.child(nil)}
}

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, "gauge", labels, nil)}
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Re-registering the same name replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, "gauge", nil, nil)
	f.mu.Lock()
	f.gaugeFn = fn
	f.mu.Unlock()
}

// Histogram registers (or fetches) an unlabelled histogram with the
// given bucket upper bounds (nil = DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	f := r.family(name, help, "histogram", nil, buckets)
	return &Histogram{f.child(nil), f.buckets}
}

// HistogramVec registers (or fetches) a labelled histogram family with
// the given bucket upper bounds (nil = DefaultLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	return &HistogramVec{r.family(name, help, "histogram", labels, buckets)}
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} for the given names/values, with an
// optional extra le pair appended (histogram buckets).
func labelString(names, vals []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(vals[i]))
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `le="%s"`, le)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in text exposition format with
// deterministic ordering.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make([]*family, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)

		f.mu.Lock()
		if f.gaugeFn != nil {
			fn := f.gaugeFn
			f.mu.Unlock()
			fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(fn()))
			continue
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]*series, 0, len(keys))
		for _, k := range keys {
			children = append(children, f.series[k])
		}
		f.mu.Unlock()

		for _, s := range children {
			switch f.typ {
			case "counter":
				fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, s.labelVals, ""), s.val.Load())
			case "gauge":
				fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.labelVals, ""),
					formatFloat(math.Float64frombits(s.val.Load())))
			case "histogram":
				var cum uint64
				for i, ub := range f.buckets {
					cum += s.bucketN[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						labelString(f.labels, s.labelVals, formatFloat(ub)), cum)
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, s.labelVals, "+Inf"), s.count.Load())
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, s.labelVals, ""),
					formatFloat(math.Float64frombits(s.sumBits.Load())))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, s.labelVals, ""), s.count.Load())
			}
		}
	}
}

// Handler serves the registry at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
