package obs

import (
	"encoding/json"
	"net/http"
	"sync"
)

// TraceRing keeps bounded rings of recent and slow query traces for
// GET /debug/traces. Slow traces get their own ring so a burst of fast
// queries cannot evict the interesting ones.
type TraceRing struct {
	mu        sync.Mutex
	recent    []*TraceData
	slow      []*TraceData
	next      int
	slowNext  int
	total     uint64
	slowTotal uint64
}

// DefaultTraceRingSize is the per-ring capacity when none is given.
const DefaultTraceRingSize = 64

// NewTraceRing returns a ring holding up to capacity recent traces and
// up to capacity slow traces (capacity <= 0 uses the default).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceRingSize
	}
	return &TraceRing{
		recent: make([]*TraceData, capacity),
		slow:   make([]*TraceData, capacity),
	}
}

// Record stores a finished trace; slow traces land in both rings.
func (r *TraceRing) Record(td *TraceData) {
	if r == nil || td == nil {
		return
	}
	r.mu.Lock()
	r.recent[r.next] = td
	r.next = (r.next + 1) % len(r.recent)
	r.total++
	if td.Slow {
		r.slow[r.slowNext] = td
		r.slowNext = (r.slowNext + 1) % len(r.slow)
		r.slowTotal++
	}
	r.mu.Unlock()
}

// RingSnapshot is the JSON payload of GET /debug/traces: newest-first
// recent and slow traces plus lifetime totals.
type RingSnapshot struct {
	Total     uint64       `json:"traces_total"`
	SlowTotal uint64       `json:"slow_total"`
	Recent    []*TraceData `json:"recent"`
	Slow      []*TraceData `json:"slow"`
}

func drain(ring []*TraceData, next int) []*TraceData {
	out := make([]*TraceData, 0, len(ring))
	for i := 0; i < len(ring); i++ {
		td := ring[(next-1-i+2*len(ring))%len(ring)]
		if td == nil {
			break
		}
		out = append(out, td)
	}
	return out
}

// Snapshot returns the current ring contents, newest first.
func (r *TraceRing) Snapshot() RingSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RingSnapshot{
		Total:     r.total,
		SlowTotal: r.slowTotal,
		Recent:    drain(r.recent, r.next),
		Slow:      drain(r.slow, r.slowNext),
	}
}

// Handler serves the ring as JSON at GET /debug/traces.
func (r *TraceRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
}
