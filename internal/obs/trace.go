package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying a query's TraceID from the
// front door to the shards (and from clients that want to supply their
// own ID).
const TraceHeader = "X-Qd-Trace-Id"

// Span is one completed stage of a query: parse, shard_prune,
// block_prune, scan, delta_scan, shard, merge. StartNS is the offset
// from the start of the owning trace; attributes carry the stage's
// explain payload (blocks pruned and why, retry counts, row counts).
type Span struct {
	Name    string         `json:"name"`
	Shard   string         `json:"shard,omitempty"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// TraceData is the immutable snapshot of a finished trace — the shape
// returned inline for "trace": true and stored in the trace ring.
type TraceData struct {
	ID    string `json:"trace_id"`
	DurNS int64  `json:"dur_ns"`
	Slow  bool   `json:"slow,omitempty"`
	Spans []Span `json:"spans"`
}

// Trace collects spans for one query. A nil *Trace is valid: every
// method is a no-op, so tracing can be threaded through hot paths and
// cost nothing when disabled.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []*Span
	durNS int64
	slow  bool
}

var traceSeq atomic.Uint64

// NewTraceID returns a 16-hex-char random identifier.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", traceSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// NewTrace starts a trace with the given ID (empty = fresh random ID).
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace identifier ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a span named after a pipeline stage. The returned
// ActiveSpan is nil-safe like the trace itself.
func (t *Trace) Start(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	sp := &Span{Name: name, StartNS: time.Since(t.start).Nanoseconds()}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return &ActiveSpan{t: t, sp: sp, started: time.Now()}
}

// ActiveSpan is a span being recorded. Attrs and End may be chained;
// nil receivers are no-ops.
type ActiveSpan struct {
	t       *Trace
	sp      *Span
	started time.Time
}

// SetAttr attaches a key/value attribute to the span.
func (a *ActiveSpan) SetAttr(key string, val any) *ActiveSpan {
	if a == nil {
		return nil
	}
	a.t.mu.Lock()
	if a.sp.Attrs == nil {
		a.sp.Attrs = make(map[string]any)
	}
	a.sp.Attrs[key] = val
	a.t.mu.Unlock()
	return a
}

// StartNS returns the span's offset from the trace start — the rebase
// offset for importing a shard's spans under this call (0 for nil).
func (a *ActiveSpan) StartNS() int64 {
	if a == nil {
		return 0
	}
	a.t.mu.Lock()
	defer a.t.mu.Unlock()
	return a.sp.StartNS
}

// End closes the span, fixing its duration.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	d := time.Since(a.started).Nanoseconds()
	a.t.mu.Lock()
	a.sp.DurNS = d
	a.t.mu.Unlock()
}

// AddRemote imports spans returned by a shard, labelling them with the
// shard name and re-basing their start offsets by offsetNS (the local
// offset at which the shard call began).
func (t *Trace) AddRemote(shard string, offsetNS int64, spans []Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for _, sp := range spans {
		cp := sp
		if cp.Shard == "" {
			cp.Shard = shard
		}
		cp.StartNS += offsetNS
		t.spans = append(t.spans, &cp)
	}
	t.mu.Unlock()
}

// Finish fixes the total trace duration. Idempotent: the first call
// wins.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	d := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	if t.durNS == 0 {
		t.durNS = d
	}
	t.mu.Unlock()
}

// DurNS returns the total duration fixed by Finish (0 before Finish).
func (t *Trace) DurNS() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.durNS
}

// MarkSlow flags the trace as over the slow-query threshold; the flag
// is carried into every later Snapshot.
func (t *Trace) MarkSlow() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slow = true
	t.mu.Unlock()
}

// Snapshot returns an immutable copy of the trace (nil for a nil
// trace). Attribute maps are copied so later mutation cannot race.
func (t *Trace) Snapshot() *TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	td := &TraceData{ID: t.id, DurNS: t.durNS, Slow: t.slow,
		Spans: make([]Span, len(t.spans))}
	for i, sp := range t.spans {
		cp := *sp
		if sp.Attrs != nil {
			cp.Attrs = make(map[string]any, len(sp.Attrs))
			for k, v := range sp.Attrs {
				cp.Attrs[k] = v
			}
		}
		td.Spans[i] = cp
	}
	return td
}

// SpanDurations returns stage-name → duration for local (non-remote)
// spans, in the order recorded. Used to feed per-stage histograms so
// the exposed sums reconcile exactly with the trace.
func (t *Trace) SpanDurations() []SpanDur {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanDur, 0, len(t.spans))
	for _, sp := range t.spans {
		if sp.Shard != "" {
			continue // remote spans are observed by their own shard
		}
		out = append(out, SpanDur{Name: sp.Name, DurNS: sp.DurNS, Attrs: sp.Attrs})
	}
	return out
}

// SpanDur pairs a stage name with its duration and attributes.
type SpanDur struct {
	Name  string
	DurNS int64
	Attrs map[string]any
}

// IntAttr reads an integer attribute, tolerating the int widths spans
// are recorded with (0 when absent).
func (s SpanDur) IntAttr(key string) int64 {
	switch v := s.Attrs[key].(type) {
	case int:
		return int64(v)
	case int64:
		return v
	case float64:
		return int64(v)
	}
	return 0
}
