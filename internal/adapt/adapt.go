// Package adapt maintains a deployed qd-tree under continuous ingestion —
// the Problem 2 setting (Learned MaxSkip Partitioning) plus the
// incremental re-organization the paper sketches in Sec. 8 ("cracking
// would allow us to incrementally refine the qd-tree over time").
//
// New records route through the existing tree. When a leaf accumulates
// more than SplitFactor·b rows, the greedy criterion (Algorithm 1's
// argmax) is re-evaluated locally on that leaf's rows, and the leaf is
// split in place when a cut still improves skipping. Only the overflowing
// leaf's rows are re-organized, never the whole table.
package adapt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/greedy"
	"repro/internal/table"
)

// Options configure the adaptive maintainer.
type Options struct {
	// MinSize is b.
	MinSize int
	// SplitFactor triggers local refinement when a leaf reaches
	// SplitFactor*MinSize rows (default 4).
	SplitFactor int
	Cuts        []core.Cut
	Queries     []expr.Query
}

func (o *Options) defaults() {
	if o.SplitFactor == 0 {
		o.SplitFactor = 4
	}
}

// Adaptive wraps a qd-tree plus the routed data and refines it in place.
type Adaptive struct {
	Tree *core.Tree
	opt  Options
	acs  []expr.AdvCut
	// data accumulates every ingested row; leafRows maps leaf block ID ->
	// row indexes into data.
	data     *table.Table
	leafRows map[*core.Node][]int
	// lastTried records the leaf size at the last refinement attempt so
	// a leaf whose best cut keeps failing is not re-scored on every
	// insert (that would make ingestion quadratic).
	lastTried map[*core.Node]int
	builder   *greedy.Builder
	splits    int
}

// New wraps an existing tree and its already-routed table.
func New(t *core.Tree, tbl *table.Table, acs []expr.AdvCut, opt Options) (*Adaptive, error) {
	opt.defaults()
	if opt.MinSize < 1 {
		return nil, fmt.Errorf("adapt: MinSize must be >= 1")
	}
	if len(opt.Cuts) == 0 {
		return nil, fmt.Errorf("adapt: no candidate cuts")
	}
	builder, err := greedy.NewBuilder(tbl, acs, greedy.Options{
		MinSize: opt.MinSize, Cuts: opt.Cuts, Queries: opt.Queries})
	if err != nil {
		return nil, err
	}
	a := &Adaptive{
		Tree:      t,
		opt:       opt,
		acs:       acs,
		data:      tbl,
		leafRows:  make(map[*core.Node][]int),
		lastTried: make(map[*core.Node]int),
		builder:   builder,
	}
	bids := t.RouteTable(tbl)
	leaves := t.Leaves()
	for r, b := range bids {
		a.leafRows[leaves[b]] = append(a.leafRows[leaves[b]], r)
	}
	return a, nil
}

// Insert routes one new record, appending it to the backing table, and
// refines the target leaf if it overflowed.
func (a *Adaptive) Insert(row []int64) error {
	if len(row) != a.data.Schema.NumCols() {
		return fmt.Errorf("adapt: row has %d values, schema has %d", len(row), a.data.Schema.NumCols())
	}
	r := a.data.N
	a.data.AppendRow(row)
	leaf := a.Tree.RouteRow(row)
	a.leafRows[leaf] = append(a.leafRows[leaf], r)
	if n := len(a.leafRows[leaf]); n >= a.opt.SplitFactor*a.opt.MinSize && n >= a.lastTried[leaf]+a.lastTried[leaf]/4 {
		a.refine(leaf)
	}
	return nil
}

// InsertBatch routes a batch of new records.
func (a *Adaptive) InsertBatch(tbl *table.Table) error {
	row := make([]int64, tbl.Schema.NumCols())
	for r := 0; r < tbl.N; r++ {
		row = tbl.Row(r, row)
		if err := a.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

// refine re-runs the greedy criterion on one overflowing leaf and splits
// it (recursively) while cuts keep improving skipping.
func (a *Adaptive) refine(leaf *core.Node) {
	rows := a.leafRows[leaf]
	if len(rows) < 2*a.opt.MinSize {
		return
	}
	a.lastTried[leaf] = len(rows)
	counter := core.NewCounter(a.data, a.acs, a.opt.Cuts, rows)
	cut, ok := a.builder.BestCut(leaf.Desc, counter)
	if !ok {
		return
	}
	l, r := a.Tree.Split(leaf, cut)
	lrows, rrows := a.Tree.PartitionRows(a.data, rows, cut)
	delete(a.leafRows, leaf)
	a.leafRows[l] = lrows
	a.leafRows[r] = rrows
	l.Count, r.Count = len(lrows), len(rrows)
	a.splits++
	a.refine(l)
	a.refine(r)
}

// Splits returns the number of in-place leaf splits performed.
func (a *Adaptive) Splits() int { return a.splits }

// Rows returns the total ingested row count.
func (a *Adaptive) Rows() int { return a.data.N }

// Layout materializes the current assignment as an evaluable layout with
// tightened per-block descriptions.
func (a *Adaptive) Layout(name string) *cost.Layout {
	leaves := a.Tree.Leaves()
	bids := make([]int, a.data.N)
	for leaf, rows := range a.leafRows {
		for _, r := range rows {
			bids[r] = leaf.BlockID
		}
	}
	layout := cost.NewLayout(name, a.data, bids, len(leaves), a.acs)
	return layout
}

// Validate checks internal consistency: every row is tracked exactly once
// and sits in the leaf the tree routes it to.
func (a *Adaptive) Validate() error {
	seen := make([]bool, a.data.N)
	row := make([]int64, a.data.Schema.NumCols())
	for leaf, rows := range a.leafRows {
		if !leaf.IsLeaf() {
			return fmt.Errorf("adapt: rows tracked on internal node %d", leaf.ID)
		}
		for _, r := range rows {
			if seen[r] {
				return fmt.Errorf("adapt: row %d tracked twice", r)
			}
			seen[r] = true
			row = a.data.Row(r, row)
			if a.Tree.RouteRow(row) != leaf {
				return fmt.Errorf("adapt: row %d tracked on wrong leaf", r)
			}
		}
	}
	for r, ok := range seen {
		if !ok {
			return fmt.Errorf("adapt: row %d lost", r)
		}
	}
	return nil
}
