package adapt

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/table"
	"repro/internal/workload"
)

func toCuts(ps []workload.Pred2Cut) []core.Cut {
	out := make([]core.Cut, len(ps))
	for i, p := range ps {
		if p.IsAdv {
			out[i] = core.AdvancedCut(p.Adv)
		} else {
			out[i] = core.UnaryCut(p.Pred)
		}
	}
	return out
}

func newAdaptive(t *testing.T, n int, seed int64, minSize int) (*Adaptive, *workload.Spec) {
	t.Helper()
	spec := workload.Fig3(n, seed)
	cuts := toCuts(spec.Cuts)
	tree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
		MinSize: minSize, Cuts: cuts, Queries: spec.Queries})
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(tree, spec.Table, spec.ACs, Options{
		MinSize: minSize, Cuts: cuts, Queries: spec.Queries})
	if err != nil {
		t.Fatal(err)
	}
	return a, spec
}

func TestInsertRoutesAndTracks(t *testing.T) {
	a, spec := newAdaptive(t, 2000, 1, 100)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	before := a.Rows()
	if err := a.Insert([]int64{5, 50}); err != nil {
		t.Fatal(err)
	}
	if a.Rows() != before+1 {
		t.Fatalf("rows = %d", a.Rows())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := a.Insert([]int64{1}); err == nil {
		t.Error("short row must error")
	}
	_ = spec
}

func TestOverflowTriggersLocalSplit(t *testing.T) {
	a, spec := newAdaptive(t, 2000, 2, 100)
	leavesBefore := len(a.Tree.Leaves())
	// Pour in skewed new data that lands in one region: disk>=100 and
	// cpu in [40,60) — the big middle block overflows and must re-split.
	rng := rand.New(rand.NewSource(3))
	fresh := table.New(spec.Table.Schema, 4000)
	for i := 0; i < 4000; i++ {
		fresh.AppendRow([]int64{int64(40 + rng.Intn(20)), int64(100 + rng.Intn(9900))})
	}
	if err := a.InsertBatch(fresh); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Splits() == 0 {
		t.Log("no split triggered (cuts may not improve skipping in region); checking leaf bound instead")
	}
	leavesAfter := len(a.Tree.Leaves())
	if leavesAfter < leavesBefore {
		t.Fatalf("leaves shrank: %d -> %d", leavesBefore, leavesAfter)
	}
	// The layout must remain evaluable and conservative.
	layout := a.Layout("adaptive")
	total := 0
	for _, c := range layout.Counts {
		total += c
	}
	if total != a.Rows() {
		t.Fatalf("layout counts %d != rows %d", total, a.Rows())
	}
}

func TestRefinementImprovesSkippingOnGrowth(t *testing.T) {
	// Start with a deliberately coarse tree (huge b), then ingest enough
	// data that adaptive refinement can split: accessed fraction after
	// refinement must not exceed the frozen-tree fraction.
	spec := workload.Fig3(1000, 4)
	cuts := toCuts(spec.Cuts)
	tree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
		MinSize: 400, Cuts: cuts, Queries: spec.Queries})
	if err != nil {
		t.Fatal(err)
	}
	frozenLeaves := len(tree.Leaves())

	a, err := New(tree, spec.Table, spec.ACs, Options{
		MinSize: 50, SplitFactor: 2, Cuts: cuts, Queries: spec.Queries})
	if err != nil {
		t.Fatal(err)
	}
	growth := workload.Fig3(8000, 5).Table
	if err := a.InsertBatch(growth); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Splits() == 0 {
		t.Fatal("expected refinement splits with b shrunk from 400 to 50")
	}
	if len(a.Tree.Leaves()) <= frozenLeaves {
		t.Fatalf("tree did not grow: %d leaves", len(a.Tree.Leaves()))
	}
	layout := a.Layout("adaptive")
	if f := layout.AccessedFraction(spec.Queries); f > 0.9 {
		t.Errorf("refined layout fraction %.3f; refinement ineffective", f)
	}
	// Min-size holds for all leaves that were split by refinement (the
	// original coarse leaves may retain larger counts).
	for _, c := range layout.Counts {
		if c > 0 && c < 50 {
			t.Errorf("leaf with %d rows violates b=50", c)
		}
	}
}

func TestValidation(t *testing.T) {
	spec := workload.Fig3(500, 6)
	cuts := toCuts(spec.Cuts)
	tree := core.NewTree(spec.Table.Schema, spec.ACs)
	if _, err := New(tree, spec.Table, spec.ACs, Options{MinSize: 0, Cuts: cuts}); err == nil {
		t.Error("MinSize 0 must error")
	}
	if _, err := New(tree, spec.Table, spec.ACs, Options{MinSize: 1}); err == nil {
		t.Error("no cuts must error")
	}
}

func TestLayoutConservativeAfterManyInserts(t *testing.T) {
	a, spec := newAdaptive(t, 1500, 7, 80)
	growth := workload.Fig3(1500, 8).Table
	if err := a.InsertBatch(growth); err != nil {
		t.Fatal(err)
	}
	layout := a.Layout("adaptive")
	// Every matching row must be inside a scanned block.
	row := make([]int64, 2)
	for _, q := range spec.Queries {
		scanned := map[int]bool{}
		for _, b := range layout.BlocksFor(q) {
			scanned[b] = true
		}
		for r := 0; r < a.data.N; r++ {
			row = a.data.Row(r, row)
			if q.Eval(row, spec.ACs) && !scanned[layout.BIDs[r]] {
				t.Fatalf("%s: matching row %d in skipped block", q.Name, r)
			}
		}
	}
}
