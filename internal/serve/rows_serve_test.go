package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/expr"
)

// TestServerSelectRows runs row-returning statements through the serving
// handle: ordered tuples, the plan cache, delta visibility, per-side
// join logging, and AC rejection.
func TestServerSelectRows(t *testing.T) {
	tbl := fixtureTable(2000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	res, err := s.SelectRowsSQL("SELECT x FROM t WHERE x >= 100 AND x < 110 ORDER BY x DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	// 2000 rows cycling 0..999: each value twice, so the DESC top 5 of
	// [100,110) is 109,109,108,108,107.
	want := []int64{109, 109, 108, 108, 107}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		if len(row) != 1 || row[0] != want[i] {
			t.Fatalf("row %d = %v, want [%d]", i, row, want[i])
		}
	}
	if res.Generation != 1 {
		t.Fatalf("generation = %d", res.Generation)
	}
	if s.log.Len() != 1 || s.log.Window(1)[0].Query.Root == nil {
		t.Fatalf("row statement must land in the drift log: len=%d", s.log.Len())
	}

	// The same text again is a plan-cache hit.
	if _, err := s.SelectRowsSQL("SELECT x FROM t WHERE x >= 100 AND x < 110 ORDER BY x DESC LIMIT 5"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PlanCacheHits != 1 || st.PlanCacheMisses != 1 {
		t.Fatalf("plan cache hits=%d misses=%d, want 1/1", st.PlanCacheHits, st.PlanCacheMisses)
	}

	// Delta rows are visible before any compaction.
	if err := s.Insert([][]int64{{5}, {5}}); err != nil {
		t.Fatal(err)
	}
	dres, err := s.SelectRowsSQL("SELECT x FROM t WHERE x = 5 ORDER BY x LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(dres.Rows) != 4 {
		t.Fatalf("base 2 + delta 2 rows, got %d", len(dres.Rows))
	}

	// A self-join: both sides logged separately, build/probe stats exact.
	logBefore := s.log.Len()
	jres, err := s.SelectRowsSQL("SELECT a.x, b.x FROM a JOIN b ON a.x = b.x WHERE a.x < 2 AND b.x < 2 ORDER BY a.x, b.x")
	if err != nil {
		t.Fatal(err)
	}
	// x<2 keeps values {0,1}, twice each per side: 2*2 pairs per value.
	if len(jres.Rows) != 8 {
		t.Fatalf("join rows = %d, want 8", len(jres.Rows))
	}
	if jres.Join == nil || jres.Join.RowsBuild != 4 || jres.Join.RowsProbe != 4 {
		t.Fatalf("join stats = %+v", jres.Join)
	}
	if s.log.Len() != logBefore+2 {
		t.Fatalf("join must log one entry per side: %d -> %d", logBefore, s.log.Len())
	}
	w := s.log.Window(2)
	if w[0].Name[len(w[0].Name)-5:] != "#left" || w[1].Name[len(w[1].Name)-6:] != "#right" {
		t.Fatalf("side entries = %q, %q", w[0].Name, w[1].Name)
	}

	// Out-of-range advanced cuts are rejected before execution.
	if _, err := s.SelectRows(expr.RowStmt{Row: &expr.RowQuery{
		Cols:   []int{0},
		Filter: expr.Query{Root: expr.NewAdv(7)},
	}}); err == nil {
		t.Error("out-of-range advanced cut must be rejected")
	}
}

// TestServerSelectRowsDrivesDrift: pure join traffic fills the drift
// window (one entry per side) and triggers a re-layout, exactly like
// filter and aggregate queries.
func TestServerSelectRowsDrivesDrift(t *testing.T) {
	tbl := fixtureTable(2000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Drifted join traffic over workload B's band.
	for i := 0; i < 4; i++ {
		if _, err := s.SelectRowsSQL("SELECT a.x, b.x FROM a JOIN b ON a.x = b.x " +
			"WHERE a.x >= 800 AND a.x < 1000 AND b.x >= 800 AND b.x < 1000 LIMIT 5"); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Relayout(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped {
		t.Fatalf("drifted join window must trigger a swap: %+v", rep)
	}
	// Row statements answered after the swap see the new generation.
	res, err := s.SelectRowsSQL("SELECT x FROM t WHERE x >= 990 ORDER BY x LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != rep.Generation {
		t.Fatalf("generation %d, want %d", res.Generation, rep.Generation)
	}
	if len(res.Rows) != 3 || res.Rows[0][0] != 990 {
		t.Fatalf("post-swap rows = %v", res.Rows)
	}
}

// TestHTTPRowQuery pins the POST /query row surface: ordered tuples in
// Columns/Data, alias-qualified join columns with build/probe stats, and
// 400 on row-grammar client faults.
func TestHTTPRowQuery(t *testing.T) {
	_, ts := newHTTPFixture(t)

	resp := postJSON(t, ts.URL+"/query", QueryRequest{SQL: "SELECT x FROM t WHERE x >= 100 AND x < 110 ORDER BY x DESC LIMIT 3"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Columns) != 1 || qr.Columns[0] != "x" {
		t.Fatalf("columns = %v", qr.Columns)
	}
	if len(qr.Data) != 3 || qr.Data[0][0] != 109 || qr.Data[2][0] != 108 {
		t.Fatalf("data = %v", qr.Data)
	}
	if qr.Rows != nil || qr.Join != nil {
		t.Fatalf("row response must carry neither agg rows nor join stats: %+v", qr)
	}

	jresp := postJSON(t, ts.URL+"/query", QueryRequest{SQL: "SELECT a.x, b.x FROM a JOIN b ON a.x = b.x WHERE a.x < 2 AND b.x < 2 ORDER BY a.x, b.x LIMIT 4"})
	defer jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("join status %d", jresp.StatusCode)
	}
	var jr QueryResponse
	if err := json.NewDecoder(jresp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.Columns) != 2 || jr.Columns[0] != "a.x" || jr.Columns[1] != "b.x" {
		t.Fatalf("join columns = %v", jr.Columns)
	}
	if jr.Join == nil || jr.Join.RowsBuild != 4 || len(jr.Data) != 4 {
		t.Fatalf("join response = %+v", jr)
	}

	// Row-grammar faults are the client's: 400, not 500.
	bresp := postJSON(t, ts.URL+"/query", QueryRequest{SQL: "SELECT x FROM t ORDER BY nosuch"})
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ORDER BY status %d, want 400", bresp.StatusCode)
	}
}
