package serve

import (
	"sync"
	"testing"

	"repro/internal/blockstore"
)

// TestArenaPoolStressUnderChurn hammers the scan-arena pool from
// concurrent count, aggregate, and row queries while ingest and forced
// relayouts swap the generation underneath. Under CI's -race run this is
// the proof that pooled scan scratch is never shared between live
// goroutines and that arena reads stay correct across a store swap.
func TestArenaPoolStressUnderChurn(t *testing.T) {
	tbl := fixtureTable(6000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const (
		workers = 4
		iters   = 25
	)
	var wg sync.WaitGroup
	errc := make(chan error, 3*workers+1)
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := s.QuerySQL("x >= 100 AND x < 300"); err != nil {
					fail(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := s.SelectSQL("SELECT COUNT(*), MIN(x), AVG(x) FROM t WHERE x < 500"); err != nil {
					fail(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := s.SelectRowsSQL("SELECT x FROM t WHERE x >= 900 ORDER BY x DESC LIMIT 7"); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := s.Insert([][]int64{{int64(i * 100)}}); err != nil {
				fail(err)
				return
			}
			if _, err := s.Relayout(true); err != nil {
				fail(err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	gets, misses := blockstore.ArenaPoolStats()
	if gets == 0 {
		t.Fatal("queries ran but the arena pool saw no gets")
	}
	if misses > gets {
		t.Fatalf("arena pool misses %d exceed gets %d", misses, gets)
	}
}
