package serve

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/expr"
)

// Report is the outcome of one drift check: the estimated scan cost of
// the live layout vs a freshly replanned candidate over the logged window,
// and what the server did about it.
type Report struct {
	// Window is the number of logged queries the check replanned.
	Window int `json:"window"`
	// LiveFraction / CandidateFraction are the estimated accessed
	// fractions (Table 2 metric: scanned tuples / window·|table|) of the
	// live and candidate layouts over the window.
	LiveFraction      float64 `json:"live_fraction"`
	CandidateFraction float64 `json:"candidate_fraction"`
	// Improvement is the relative cost reduction the candidate offers:
	// (live - candidate) / live. 0 when the live layout scans nothing.
	Improvement float64 `json:"improvement"`
	// Threshold is the configured minimum improvement for a swap.
	Threshold float64 `json:"threshold"`
	// Swapped reports whether the candidate was materialized and hot-swapped.
	Swapped bool `json:"swapped"`
	// Generation is the live generation after the check.
	Generation int `json:"generation"`
	// Reason explains the decision in one line.
	Reason string `json:"reason"`
}

// assess compares the live layout against a candidate over a window and
// decides whether the improvement crosses the threshold. It is pure — the
// server performs the actual rewrite and swap.
func assess(live, cand *cost.Layout, w []expr.Query, threshold float64) Report {
	r := Report{
		Window:            len(w),
		LiveFraction:      live.AccessedFraction(w),
		CandidateFraction: cand.AccessedFraction(w),
		Threshold:         threshold,
	}
	if r.LiveFraction > 0 {
		r.Improvement = (r.LiveFraction - r.CandidateFraction) / r.LiveFraction
	}
	if r.Improvement >= threshold {
		r.Reason = fmt.Sprintf("candidate cuts estimated scan cost %.1f%% → %.1f%% (%.1f%% better, threshold %.1f%%)",
			r.LiveFraction*100, r.CandidateFraction*100, r.Improvement*100, threshold*100)
	} else {
		r.Reason = fmt.Sprintf("candidate improvement %.1f%% below threshold %.1f%%; keeping live layout",
			r.Improvement*100, threshold*100)
	}
	return r
}
