package serve

import (
	"fmt"
	"testing"
)

// TestPlanCacheCanonicalKey: whitespace/case variants of one statement
// are one plan — the first spelling misses and parses, every other
// spelling resolves to the same cached statement as a hit.
func TestPlanCacheCanonicalKey(t *testing.T) {
	tbl := fixtureTable(2000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a := "SELECT x FROM t WHERE x >= 100 AND x < 110 ORDER BY x DESC LIMIT 5"
	b := "select   x from t where x>=100 and x<110 order by x desc limit 5"
	sa, err := s.ParseRowSelectSQL(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := s.ParseRowSelectSQL(b)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PlanCacheMisses != 1 || st.PlanCacheHits != 1 {
		t.Fatalf("two spellings of one statement: misses=%d hits=%d, want 1/1", st.PlanCacheMisses, st.PlanCacheHits)
	}
	if sa.Row == nil || sb.Row == nil || sa.Row != sb.Row {
		t.Fatalf("both spellings must share one cached plan: %p vs %p", sa.Row, sb.Row)
	}

	// The raw spellings are aliased, so repeating either is a map hit.
	for _, sql := range []string{a, b, a} {
		if _, err := s.ParseRowSelectSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	if st = s.Stats(); st.PlanCacheMisses != 1 || st.PlanCacheHits != 4 {
		t.Fatalf("repeats: misses=%d hits=%d, want 1/4", st.PlanCacheMisses, st.PlanCacheHits)
	}

	// Distinct statements still miss independently and stay bounded.
	for i := 0; i < planCacheCapacity+16; i++ {
		sql := fmt.Sprintf("SELECT x FROM t WHERE x < %d LIMIT 1", i+1)
		if _, err := s.ParseRowSelectSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	s.plans.mu.Lock()
	n := len(s.plans.m)
	s.plans.mu.Unlock()
	if n > planCacheCapacity {
		t.Fatalf("cache grew past capacity: %d > %d", n, planCacheCapacity)
	}
}
