package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// metricsGolden pins the /metrics exposition contract: every family a
// standalone server registers, its type, and the label sets its series
// use once the server has served traffic. Renaming a metric or changing
// its labels must be a conscious change here.
var metricsGolden = []string{
	"qd_arena_pool_gets|gauge|",
	"qd_arena_pool_misses|gauge|",
	"qd_blocks_scanned_total|counter|",
	"qd_blocks_skipped_total|counter|reason",
	"qd_blocks|gauge|",
	"qd_bytes_read_total|counter|",
	"qd_compacted_rows_total|counter|",
	"qd_compaction_bytes_written_total|counter|",
	"qd_compactions_total|counter|outcome",
	"qd_delta_bytes|gauge|",
	"qd_delta_rows|gauge|",
	"qd_freshness_seconds|gauge|",
	"qd_generation|gauge|",
	"qd_ingest_rows_total|counter|",
	"qd_join_build_rows_total|counter|",
	"qd_join_probe_rows_total|counter|",
	"qd_plan_cache_total|counter|outcome",
	"qd_queries_total|counter|type",
	"qd_query_duration_seconds|histogram|type",
	// qd_query_errors_total is labelled {type}, but label keys only
	// render once a series exists and no query errors in this test.
	"qd_query_errors_total|counter|",
	"qd_relayouts_total|counter|outcome",
	"qd_rows_matched_total|counter|",
	"qd_rows_scanned_total|counter|source",
	"qd_rows|gauge|",
	"qd_slow_queries_total|counter|",
	"qd_stage_duration_seconds|histogram|stage",
}

// scrapeFamilies parses exposition text into "name|type|labels" entries
// plus the set of label keys actually used per family.
func scrapeFamilies(t *testing.T, text string) []string {
	t.Helper()
	types := map[string]string{}
	labels := map[string]map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			labels[parts[2]] = map[string]bool{}
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		lset := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				t.Fatalf("malformed series line: %q", line)
			}
			lset = line[i+1 : j]
			name = line[:i]
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
		}
		fam := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if s := strings.TrimSuffix(name, suf); s != name && types[s] == "histogram" {
				fam = s
			}
		}
		if _, ok := types[fam]; !ok {
			t.Fatalf("series %q has no TYPE header", line)
		}
		for _, pair := range strings.Split(lset, ",") {
			if pair == "" {
				continue
			}
			k := pair[:strings.IndexByte(pair, '=')]
			if k != "le" {
				labels[fam][k] = true
			}
		}
	}
	var out []string
	for name, typ := range types {
		var ks []string
		for k := range labels[name] {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		out = append(out, name+"|"+typ+"|"+strings.Join(ks, ","))
	}
	sort.Strings(out)
	return out
}

// TestMetricsGolden drives a query, an ingest, a compaction, and a
// relayout, then pins the full family/type/label-set contract of
// GET /metrics.
func TestMetricsGolden(t *testing.T) {
	tbl := fixtureTable(4000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.Query(bandQuery("g", 100, 150)); err != nil {
		t.Fatal(err)
	}
	// The same row statement twice: a plan-cache miss then a hit, and a
	// join to move the build/probe counters.
	for i := 0; i < 2; i++ {
		if _, err := s.SelectRowsSQL("SELECT x FROM t WHERE x < 50 ORDER BY x DESC LIMIT 5"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.SelectRowsSQL("SELECT a.x FROM a JOIN b ON a.x = b.x WHERE a.x < 2 AND b.x < 2 LIMIT 4"); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert([][]int64{{77}, {78}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Relayout(true); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	s.Metrics().WritePrometheus(&sb)
	got := scrapeFamilies(t, sb.String())
	want := append([]string(nil), metricsGolden...)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("metric families changed:\n got: %v\nwant: %v", got, want)
	}

	// A counter must have moved for the query that ran.
	if !strings.Contains(sb.String(), `qd_queries_total{type="filter"} 1`) {
		t.Errorf("qd_queries_total did not move:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "qd_ingest_rows_total 2") {
		t.Errorf("qd_ingest_rows_total did not move")
	}
	if !strings.Contains(sb.String(), `qd_queries_total{type="rows"} 2`) {
		t.Errorf("qd_queries_total{type=rows} did not move:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `qd_plan_cache_total{outcome="hit"} 1`) ||
		!strings.Contains(sb.String(), `qd_plan_cache_total{outcome="miss"} 2`) {
		t.Errorf("plan-cache counters wrong:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `qd_queries_total{type="join"} 1`) {
		t.Errorf("qd_queries_total{type=join} did not move")
	}
}

// TestTraceResponseSchema pins the JSON shape "trace": true returns:
// span names covering the pipeline, block_prune naming pruned blocks
// and the SMA column/bound that pruned them.
func TestTraceResponseSchema(t *testing.T) {
	_, ts := newHTTPFixture(t)
	resp := postJSON(t, ts.URL+"/query", QueryRequest{SQL: "x >= 100 AND x < 150", Trace: true})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	var qr struct {
		Trace *struct {
			TraceID string `json:"trace_id"`
			DurNS   int64  `json:"dur_ns"`
			Spans   []struct {
				Name    string         `json:"name"`
				StartNS int64          `json:"start_ns"`
				DurNS   int64          `json:"dur_ns"`
				Attrs   map[string]any `json:"attrs"`
			} `json:"spans"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Trace == nil {
		t.Fatalf("no trace in response: %s", raw)
	}
	if len(qr.Trace.TraceID) != 16 || qr.Trace.DurNS <= 0 {
		t.Errorf("trace header = %q/%d", qr.Trace.TraceID, qr.Trace.DurNS)
	}
	byName := map[string]map[string]any{}
	for _, sp := range qr.Trace.Spans {
		byName[sp.Name] = sp.Attrs
	}
	for _, want := range []string{"parse", "block_prune", "scan"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("missing span %q in %s", want, raw)
		}
	}
	pa := byName["block_prune"]
	if pa["blocks_total"] == nil || pa["candidates"] == nil {
		t.Fatalf("block_prune attrs missing totals: %v", pa)
	}
	prunedList, ok := pa["pruned"].([]any)
	if !ok || len(prunedList) == 0 {
		t.Fatalf("block_prune names no pruned blocks: %v", pa)
	}
	first, ok := prunedList[0].(map[string]any)
	if !ok || first["block"] == nil || first["by"] == nil {
		t.Fatalf("pruned entry shape: %v", prunedList[0])
	}
	// At least one pruned block must carry its SMA witness: the column
	// and bound that proved it cannot match.
	withCause := false
	for _, p := range prunedList {
		m := p.(map[string]any)
		if m["column"] == "x" && m["op"] != nil {
			withCause = true
		}
	}
	if !withCause {
		t.Errorf("no pruned block names its SMA column/bound: %v", prunedList)
	}

	// A caller-supplied trace ID must round-trip.
	req, _ := http.NewRequest("POST", ts.URL+"/query",
		strings.NewReader(`{"sql": "x >= 100 AND x < 150", "trace": true}`))
	req.Header.Set(obs.TraceHeader, "deadbeefdeadbeef")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw2, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(raw2), `"trace_id":"deadbeefdeadbeef"`) {
		t.Errorf("supplied trace ID not honored: %s", raw2)
	}
}

// TestStageHistogramsReconcile: per-stage histogram sums must equal the
// summed span durations of the traces that fed them — the exposed
// latency breakdown is the trace, aggregated.
func TestStageHistogramsReconcile(t *testing.T) {
	tbl := fixtureTable(4000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	wantSum := map[string]float64{}
	wantN := map[string]uint64{}
	for i := 0; i < 3; i++ {
		tr := obs.NewTrace("")
		if _, err := s.QueryTraced(bandQuery("r", 100, 150), tr); err != nil {
			t.Fatal(err)
		}
		for _, sd := range tr.SpanDurations() {
			wantSum[sd.Name] += float64(sd.DurNS) / 1e9
			wantN[sd.Name]++
		}
	}
	for stage, want := range wantSum {
		h := s.metrics.stageDur.With(stage)
		if h.Count() != wantN[stage] {
			t.Errorf("stage %q count = %d, want %d", stage, h.Count(), wantN[stage])
		}
		if diff := math.Abs(h.Sum() - want); diff > 1e-12*math.Max(1, math.Abs(want)) {
			t.Errorf("stage %q sum = %v, want %v (traces)", stage, h.Sum(), want)
		}
	}
	if len(wantSum) == 0 {
		t.Fatal("traced queries recorded no spans")
	}
}

// TestSlowQueryAccounting: a zero-duration threshold is impossible to
// build via config (0 = default), so use a tiny positive one and a
// query that must exceed it... instead, drive the threshold negative
// (disabled) and positive-small, and check Stats/metrics agree.
func TestSlowQueryAccounting(t *testing.T) {
	tbl := fixtureTable(4000)
	root := newTestRoot(t, tbl, workloadA())
	cfg := testConfig()
	cfg.SlowQuery = time.Nanosecond // everything is slow
	s, err := New(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 2; i++ {
		if _, err := s.Query(bandQuery("s", 0, 100)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.SlowQueries != 2 {
		t.Errorf("Stats.SlowQueries = %d, want 2", st.SlowQueries)
	}
	if st.SlowThresholdMS <= 0 {
		t.Errorf("Stats.SlowThresholdMS = %v", st.SlowThresholdMS)
	}
	if got := s.metrics.slowQueries.Value(); got != 2 {
		t.Errorf("qd_slow_queries_total = %d, want 2", got)
	}
	snap := s.Traces().Snapshot()
	if snap.SlowTotal != 2 || len(snap.Slow) != 2 {
		t.Errorf("slow trace ring = %d/%d, want 2/2", snap.SlowTotal, len(snap.Slow))
	}

	// Disabled threshold: nothing is slow.
	cfg2 := testConfig()
	cfg2.SlowQuery = -1
	root2 := newTestRoot(t, fixtureTable(2000), workloadA())
	s2, err := New(root2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Query(bandQuery("s", 0, 100)); err != nil {
		t.Fatal(err)
	}
	if st2 := s2.Stats(); st2.SlowQueries != 0 || st2.SlowThresholdMS != 0 {
		t.Errorf("disabled threshold: %+v", st2)
	}
}

// TestObsConcurrentStress hammers the observability read endpoints while
// queries, inserts, forced relayouts, and compactions run — the torn-read
// audit's regression test; -race makes any unsynchronized access fail.
func TestObsConcurrentStress(t *testing.T) {
	tbl := fixtureTable(4000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := Handler(s)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	get := func(path string) {
		req, _ := http.NewRequest("GET", path, nil)
		rr := &respSink{}
		h.ServeHTTP(rr, req)
	}
	for _, path := range []string{"/stats", "/metrics", "/debug/traces"} {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					get(p)
				}
			}
		}(path)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := s.Query(workloadB()[i%4]); err != nil {
					t.Error(err)
					return
				}
				_ = s.Insert([][]int64{{int64(i % 1000)}})
				i++
			}
		}
	}()
	for i := 0; i < 4; i++ {
		if _, err := s.Relayout(true); err != nil {
			t.Fatal(err)
		}
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// respSink is a no-alloc ResponseWriter for the stress loop.
type respSink struct{ h http.Header }

func (r *respSink) Header() http.Header {
	if r.h == nil {
		r.h = make(http.Header)
	}
	return r.h
}
func (r *respSink) Write(b []byte) (int, error) { return len(b), nil }
func (r *respSink) WriteHeader(int)             {}
