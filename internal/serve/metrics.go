package serve

import (
	"time"

	"repro/internal/blockstore"
	"repro/internal/exec"
	"repro/internal/obs"
)

// serverMetrics is the per-server instrument set exposed at GET
// /metrics. Metric names and label sets are pinned by a golden test —
// renaming one is an observability-breaking change.
type serverMetrics struct {
	queries       *obs.CounterVec   // qd_queries_total{type}
	queryErrors   *obs.CounterVec   // qd_query_errors_total{type}
	stageDur      *obs.HistogramVec // qd_stage_duration_seconds{stage}
	queryDur      *obs.HistogramVec // qd_query_duration_seconds{type}
	slowQueries   *obs.Counter      // qd_slow_queries_total
	blocksScanned *obs.Counter      // qd_blocks_scanned_total
	blocksSkipped *obs.CounterVec   // qd_blocks_skipped_total{reason}
	rowsScanned   *obs.CounterVec   // qd_rows_scanned_total{source}
	rowsMatched   *obs.Counter      // qd_rows_matched_total
	bytesRead     *obs.Counter      // qd_bytes_read_total
	joinBuildRows *obs.Counter      // qd_join_build_rows_total
	joinProbeRows *obs.Counter      // qd_join_probe_rows_total
	planCache     *obs.CounterVec   // qd_plan_cache_total{outcome}
	ingestRows    *obs.Counter      // qd_ingest_rows_total
	relayouts     *obs.CounterVec   // qd_relayouts_total{outcome}
	compactions   *obs.CounterVec   // qd_compactions_total{outcome}
	compactedRows *obs.Counter      // qd_compacted_rows_total
	compactBytes  *obs.Counter      // qd_compaction_bytes_written_total
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		queries:       reg.CounterVec("qd_queries_total", "Queries served, by statement type.", "type"),
		queryErrors:   reg.CounterVec("qd_query_errors_total", "Queries that failed during execution, by statement type.", "type"),
		stageDur:      reg.HistogramVec("qd_stage_duration_seconds", "Per-stage query latency (parse, block_prune, scan, delta_scan, merge).", nil, "stage"),
		queryDur:      reg.HistogramVec("qd_query_duration_seconds", "End-to-end query latency, by statement type.", nil, "type"),
		slowQueries:   reg.Counter("qd_slow_queries_total", "Queries over the slow-query threshold."),
		blocksScanned: reg.Counter("qd_blocks_scanned_total", "Blocks physically scanned."),
		blocksSkipped: reg.CounterVec("qd_blocks_skipped_total", "Blocks skipped without reading, by pruning stage (route = qd-tree routing, sma = zone maps).", "reason"),
		rowsScanned:   reg.CounterVec("qd_rows_scanned_total", "Rows scanned, by source (base = learned layout, delta = uncompacted ingest).", "source"),
		rowsMatched:   reg.Counter("qd_rows_matched_total", "Rows matching query filters."),
		bytesRead:     reg.Counter("qd_bytes_read_total", "Encoded bytes read from block stores."),
		joinBuildRows: reg.Counter("qd_join_build_rows_total", "Rows inserted into join build tables."),
		joinProbeRows: reg.Counter("qd_join_probe_rows_total", "Rows probed against join build tables."),
		planCache:     reg.CounterVec("qd_plan_cache_total", "Row-statement plan cache lookups, by outcome (hit, miss).", "outcome"),
		ingestRows:    reg.Counter("qd_ingest_rows_total", "Rows accepted into the delta store."),
		relayouts:     reg.CounterVec("qd_relayouts_total", "Drift-check cycles, by outcome (swapped, skipped, failed).", "outcome"),
		compactions:   reg.CounterVec("qd_compactions_total", "Compaction cycles, by outcome (swapped, skipped, failed).", "outcome"),
		compactedRows: reg.Counter("qd_compacted_rows_total", "Delta rows folded into fresh generations."),
		compactBytes:  reg.Counter("qd_compaction_bytes_written_total", "On-disk bytes written by compaction generations."),
	}
}

// registerGauges wires scrape-time gauges to the live server state.
// Gauge callbacks take s.mu.RLock briefly; scrapes never block queries
// longer than a pointer read.
func (s *Server) registerGauges(reg *obs.Registry) {
	reg.GaugeFunc("qd_generation", "Live generation id.", func() float64 {
		return float64(s.Generation())
	})
	reg.GaugeFunc("qd_rows", "Served rows (base + uncompacted delta).", func() float64 {
		return float64(s.Rows())
	})
	reg.GaugeFunc("qd_blocks", "Blocks in the live generation.", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(s.gen.layout.NumBlocks())
	})
	reg.GaugeFunc("qd_delta_rows", "Uncompacted delta rows.", func() float64 {
		return float64(s.delta.Rows())
	})
	reg.GaugeFunc("qd_delta_bytes", "On-disk bytes of sealed delta segments.", func() float64 {
		return float64(s.delta.Bytes())
	})
	reg.GaugeFunc("qd_freshness_seconds", "Age of the oldest uncompacted row (0 when the delta is empty).", func() float64 {
		if oldest, ok := s.delta.Oldest(); ok {
			return time.Since(oldest).Seconds()
		}
		return 0
	})
	// Scan-arena pool health (process-wide): gets-misses is the number of
	// reads served from warmed scratch instead of fresh allocations.
	reg.GaugeFunc("qd_arena_pool_gets", "Cumulative scan-arena pool gets.", func() float64 {
		gets, _ := blockstore.ArenaPoolStats()
		return float64(gets)
	})
	reg.GaugeFunc("qd_arena_pool_misses", "Cumulative scan-arena pool misses (each allocated a fresh arena).", func() float64 {
		_, misses := blockstore.ArenaPoolStats()
		return float64(misses)
	})
}

// observeQuery finishes a query's trace and feeds every instrument from
// it: the per-stage histograms observe the exact span durations, so the
// exposed sums reconcile with the trace a client sees for the same
// query. Returns the finished snapshot for the ring and the response.
func (s *Server) observeQuery(tr *obs.Trace, typ string, st exec.ScanStats, err error) *obs.TraceData {
	tr.Finish()
	if err != nil {
		s.metrics.queryErrors.With(typ).Inc()
		return nil
	}
	s.metrics.queries.With(typ).Inc()
	s.metrics.queryDur.With(typ).Observe(float64(tr.DurNS()) / 1e9)
	if thr := s.cfg.SlowQuery; thr > 0 && tr.DurNS() >= thr.Nanoseconds() {
		tr.MarkSlow()
		s.slowQueries.Add(1)
		s.metrics.slowQueries.Inc()
	}
	for _, sd := range tr.SpanDurations() {
		s.metrics.stageDur.With(sd.Name).Observe(float64(sd.DurNS) / 1e9)
		if sd.Name == "block_prune" {
			if n := sd.IntAttr("pruned_route"); n > 0 {
				s.metrics.blocksSkipped.With("route").Add(uint64(n))
			}
			if n := sd.IntAttr("pruned_sma"); n > 0 {
				s.metrics.blocksSkipped.With("sma").Add(uint64(n))
			}
		}
	}
	s.metrics.blocksScanned.Add(uint64(st.BlocksScanned))
	s.metrics.rowsScanned.With("base").Add(uint64(st.RowsScanned - st.DeltaRows))
	if st.DeltaRows > 0 {
		s.metrics.rowsScanned.With("delta").Add(uint64(st.DeltaRows))
	}
	s.metrics.rowsMatched.Add(uint64(st.RowsMatched))
	s.metrics.bytesRead.Add(uint64(st.BytesRead))
	td := tr.Snapshot()
	s.traces.Record(td)
	return td
}

// Metrics returns the server's metric registry (never nil).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Traces returns the server's recent/slow trace ring (never nil).
func (s *Server) Traces() *obs.TraceRing { return s.traces }
