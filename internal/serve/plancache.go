package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/expr"
)

// planCacheCapacity bounds the row-statement plan cache. Row dashboards
// repeat a small set of statements verbatim; a few hundred entries holds
// every hot plan while an adversarial stream of distinct statements
// cannot grow the map without bound.
const planCacheCapacity = 256

// planCache memoizes parsed row statements. Lookups are by raw SQL
// text; entries are stored under the statement's canonical rendering
// *and* the raw spelling that produced them, so whitespace/case
// variants of one statement share a single plan instead of each
// burning a FIFO slot on a miss. A parsed RowStmt is immutable once
// built (the executor only reads it), so a cached value can be handed
// to concurrent queries as-is. Safe for concurrent use.
//
// The cache key deliberately excludes schema and AC state: both are
// fixed for a server's lifetime (generation swaps change the layout, not
// the schema), so a cached plan can never go stale.
type planCache struct {
	mu    sync.Mutex
	m     map[string]expr.RowStmt
	order []string // insertion order; index 0 evicts first

	hits   atomic.Uint64
	misses atomic.Uint64
}

func newPlanCache() *planCache {
	return &planCache{m: make(map[string]expr.RowStmt, planCacheCapacity)}
}

// get returns the cached statement for the raw SQL spelling. It does
// not count the lookup: only the caller knows whether a raw-text miss
// turns into a canonical-key hit after parsing.
func (c *planCache) get(sql string) (expr.RowStmt, bool) {
	c.mu.Lock()
	stmt, ok := c.m[sql]
	c.mu.Unlock()
	return stmt, ok
}

// hit / miss record the outcome of one logical lookup.
func (c *planCache) hit()  { c.hits.Add(1) }
func (c *planCache) miss() { c.misses.Add(1) }

// intern stores stmt under its canonical rendering and aliases the raw
// spelling to it. If another spelling already interned the same
// canonical statement, that cached copy wins and intern reports true —
// the caller should count a hit, not a miss.
func (c *planCache) intern(raw, canon string, stmt expr.RowStmt) (expr.RowStmt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cached, ok := c.m[canon]; ok {
		if raw != canon {
			c.insert(raw, cached)
		}
		return cached, true
	}
	c.insert(canon, stmt)
	if raw != canon {
		c.insert(raw, stmt)
	}
	return stmt, false
}

// insert adds one key, evicting the oldest entry once the cache is full
// (FIFO — repeat dashboards re-insert their statements on the next
// miss, so recency tracking buys little here). Callers hold c.mu.
func (c *planCache) insert(key string, stmt expr.RowStmt) {
	if _, ok := c.m[key]; ok {
		return
	}
	if len(c.order) >= planCacheCapacity {
		delete(c.m, c.order[0])
		c.order = c.order[1:]
	}
	c.m[key] = stmt
	c.order = append(c.order, key)
}
