package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/expr"
)

// planCacheCapacity bounds the row-statement plan cache. Row dashboards
// repeat a small set of statements verbatim; a few hundred entries holds
// every hot plan while an adversarial stream of distinct statements
// cannot grow the map without bound.
const planCacheCapacity = 256

// planCache memoizes parsed row statements keyed on the raw SQL text. A
// parsed RowStmt is immutable once built (the executor only reads it),
// so a cached value can be handed to concurrent queries as-is. Safe for
// concurrent use.
//
// The cache key deliberately excludes schema and AC state: both are
// fixed for a server's lifetime (generation swaps change the layout, not
// the schema), so a cached plan can never go stale.
type planCache struct {
	mu    sync.Mutex
	m     map[string]expr.RowStmt
	order []string // insertion order; index 0 evicts first

	hits   atomic.Uint64
	misses atomic.Uint64
}

func newPlanCache() *planCache {
	return &planCache{m: make(map[string]expr.RowStmt, planCacheCapacity)}
}

// get returns the cached statement for sql, counting the hit or miss.
func (c *planCache) get(sql string) (expr.RowStmt, bool) {
	c.mu.Lock()
	stmt, ok := c.m[sql]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return stmt, ok
}

// put stores a successfully parsed statement, evicting the oldest entry
// once the cache is full (FIFO — repeat dashboards re-insert their
// statements on the next miss, so recency tracking buys little here).
func (c *planCache) put(sql string, stmt expr.RowStmt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[sql]; ok {
		return
	}
	if len(c.order) >= planCacheCapacity {
		delete(c.m, c.order[0])
		c.order = c.order[1:]
	}
	c.m[sql] = stmt
	c.order = append(c.order, sql)
}
