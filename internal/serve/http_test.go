package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func newHTTPFixture(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	tbl := fixtureTable(2000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPQuery(t *testing.T) {
	_, ts := newHTTPFixture(t)
	resp := postJSON(t, ts.URL+"/query", QueryRequest{SQL: "x >= 100 AND x < 150"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowsMatched != 100 { // 2000 rows cycle 0..999: each value twice
		t.Fatalf("matched %d, want 100", qr.RowsMatched)
	}
	if qr.Generation != 1 || qr.SkipRate <= 0 {
		t.Fatalf("response = %+v", qr)
	}
}

func TestHTTPQueryErrors(t *testing.T) {
	_, ts := newHTTPFixture(t)
	for _, body := range []any{QueryRequest{}, QueryRequest{SQL: "bogus !!"}, QueryRequest{SQL: "nope > 3"}} {
		resp := postJSON(t, ts.URL+"/query", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %+v: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status %d", resp.StatusCode)
	}
}

func TestHTTPStatsAndRelayout(t *testing.T) {
	s, ts := newHTTPFixture(t)
	// Log drifted traffic, then force a cycle over HTTP.
	for _, q := range workloadB() {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	resp := postJSON(t, ts.URL+"/relayout", map[string]any{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("relayout status %d", resp.StatusCode)
	}
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped || rep.Generation != 2 {
		t.Fatalf("report = %+v", rep)
	}

	resp2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Generation != 2 || st.Swaps != 1 || st.Queries != 4 {
		t.Fatalf("stats = %+v", st)
	}

	// Gated relayout right after a swap: window is now well-served.
	resp3 := postJSON(t, ts.URL+"/relayout", RelayoutRequest{Force: new(bool)})
	defer resp3.Body.Close()
	var rep2 Report
	json.NewDecoder(resp3.Body).Decode(&rep2)
	if rep2.Swapped {
		t.Fatalf("gated relayout after swap must not swap again: %+v", rep2)
	}
}

func TestHTTPRelayoutMalformedBody(t *testing.T) {
	_, ts := newHTTPFixture(t)
	resp, err := http.Post(ts.URL+"/relayout", "application/json", bytes.NewReader([]byte(`{"force": fals`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed /relayout body: status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, ts := newHTTPFixture(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}
