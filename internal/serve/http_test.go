package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/table"
)

func newHTTPFixture(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	tbl := fixtureTable(2000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPQuery(t *testing.T) {
	_, ts := newHTTPFixture(t)
	resp := postJSON(t, ts.URL+"/query", QueryRequest{SQL: "x >= 100 AND x < 150"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowsMatched != 100 { // 2000 rows cycle 0..999: each value twice
		t.Fatalf("matched %d, want 100", qr.RowsMatched)
	}
	if qr.Generation != 1 || qr.SkipRate <= 0 {
		t.Fatalf("response = %+v", qr)
	}
}

func TestHTTPQueryErrors(t *testing.T) {
	_, ts := newHTTPFixture(t)
	for _, body := range []any{QueryRequest{}, QueryRequest{SQL: "bogus !!"}, QueryRequest{SQL: "nope > 3"}} {
		resp := postJSON(t, ts.URL+"/query", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %+v: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status %d", resp.StatusCode)
	}
}

func TestHTTPStatsAndRelayout(t *testing.T) {
	s, ts := newHTTPFixture(t)
	// Log drifted traffic, then force a cycle over HTTP.
	for _, q := range workloadB() {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	resp := postJSON(t, ts.URL+"/relayout", map[string]any{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("relayout status %d", resp.StatusCode)
	}
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped || rep.Generation != 2 {
		t.Fatalf("report = %+v", rep)
	}

	resp2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Generation != 2 || st.Swaps != 1 || st.Queries != 4 {
		t.Fatalf("stats = %+v", st)
	}

	// Gated relayout right after a swap: window is now well-served.
	resp3 := postJSON(t, ts.URL+"/relayout", RelayoutRequest{Force: new(bool)})
	defer resp3.Body.Close()
	var rep2 Report
	json.NewDecoder(resp3.Body).Decode(&rep2)
	if rep2.Swapped {
		t.Fatalf("gated relayout after swap must not swap again: %+v", rep2)
	}
}

func TestHTTPRelayoutMalformedBody(t *testing.T) {
	_, ts := newHTTPFixture(t)
	resp, err := http.Post(ts.URL+"/relayout", "application/json", bytes.NewReader([]byte(`{"force": fals`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed /relayout body: status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, ts := newHTTPFixture(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestHTTPIngestAndCompact(t *testing.T) {
	s, ts := newHTTPFixture(t)

	resp := postJSON(t, ts.URL+"/ingest", IngestRequest{Rows: [][]json.RawMessage{
		{json.RawMessage("500")}, {json.RawMessage("500")}, {json.RawMessage("500")},
	}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Inserted != 3 || ir.DeltaRows != 3 {
		t.Fatalf("ingest response %+v", ir)
	}

	// The rows answer queries before any compaction.
	q := postJSON(t, ts.URL+"/query", QueryRequest{SQL: "x >= 500 AND x < 501"})
	defer q.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(q.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowsMatched != 5 { // 2 base (2000 rows cycle 0..999) + 3 ingested
		t.Fatalf("matched %d, want 5", qr.RowsMatched)
	}

	// Force a compaction over the wire; the rows remain visible.
	c := postJSON(t, ts.URL+"/compact", struct{}{})
	defer c.Body.Close()
	if c.StatusCode != http.StatusOK {
		t.Fatalf("compact status %d", c.StatusCode)
	}
	var rep CompactReport
	if err := json.NewDecoder(c.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped || rep.Rows != 3 {
		t.Fatalf("compact report %+v", rep)
	}
	q2 := postJSON(t, ts.URL+"/query", QueryRequest{SQL: "x >= 500 AND x < 501"})
	defer q2.Body.Close()
	if err := json.NewDecoder(q2.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowsMatched != 5 || qr.Generation != rep.Generation {
		t.Fatalf("post-compaction query %+v, want 5 matches from generation %d", qr, rep.Generation)
	}

	// Stats surface the ingest counters.
	st, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var stats Stats
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.RowsIngested != 3 || stats.Compactions != 1 || stats.DeltaRows != 0 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.WriteAmplification <= 0 {
		t.Fatalf("write amplification %v, want > 0 after a compaction", stats.WriteAmplification)
	}
	_ = s
}

func TestHTTPIngestErrors(t *testing.T) {
	_, ts := newHTTPFixture(t)
	for name, body := range map[string]IngestRequest{
		"no rows":        {},
		"short row":      {Rows: [][]json.RawMessage{{}}},
		"wide row":       {Rows: [][]json.RawMessage{{json.RawMessage("1"), json.RawMessage("2")}}},
		"bad value":      {Rows: [][]json.RawMessage{{json.RawMessage("1.5")}}},
		"unknown column": {Columns: []string{"nope"}, Rows: [][]json.RawMessage{{json.RawMessage("1")}}},
	} {
		resp := postJSON(t, ts.URL+"/ingest", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest: status %d, want 405", resp.StatusCode)
	}
}

// DecodeIngestRows maps named column order and dictionary strings onto
// schema-ordered coded rows.
func TestDecodeIngestRows(t *testing.T) {
	schema := table.MustSchema([]table.Column{
		{Name: "x", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "svc", Kind: table.Categorical, Dom: 2, Dict: []string{"auth", "web"}},
	})
	rows, err := DecodeIngestRows(schema, IngestRequest{
		Columns: []string{"svc", "x"}, // reversed on the wire
		Rows: [][]json.RawMessage{
			{json.RawMessage(`"web"`), json.RawMessage("7")},
			{json.RawMessage("0"), json.RawMessage("9")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != 7 || rows[0][1] != 1 || rows[1][0] != 9 || rows[1][1] != 0 {
		t.Fatalf("decoded %v", rows)
	}
	for name, req := range map[string]IngestRequest{
		"partial columns": {Columns: []string{"x"}, Rows: [][]json.RawMessage{{json.RawMessage("1")}}},
		"dup column":      {Columns: []string{"x", "x"}, Rows: [][]json.RawMessage{{json.RawMessage("1"), json.RawMessage("2")}}},
		"bad dict string": {Rows: [][]json.RawMessage{{json.RawMessage("1"), json.RawMessage(`"db"`)}}},
	} {
		if _, err := DecodeIngestRows(schema, req); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

// Error responses are structured JSON: every 4xx/5xx from the serving
// API must carry Content-Type application/json and a non-empty "error"
// message, so cluster front doors and scripted clients never have to
// scrape free-text bodies.
func TestHTTPErrorBodiesAreJSON(t *testing.T) {
	_, ts := newHTTPFixture(t)
	cases := []struct {
		name string
		url  string
		body any
		code int
	}{
		{"query empty sql", ts.URL + "/query", QueryRequest{}, http.StatusBadRequest},
		{"query parse error", ts.URL + "/query", QueryRequest{SQL: "bogus !!"}, http.StatusBadRequest},
		{"query unknown column", ts.URL + "/query", QueryRequest{SQL: "nope > 3"}, http.StatusBadRequest},
		{"ingest no rows", ts.URL + "/ingest", IngestRequest{}, http.StatusBadRequest},
		{"ingest bad value", ts.URL + "/ingest",
			IngestRequest{Rows: [][]json.RawMessage{{json.RawMessage("1.5")}}}, http.StatusBadRequest},
		{"ingest unknown column", ts.URL + "/ingest",
			IngestRequest{Columns: []string{"nope"}, Rows: [][]json.RawMessage{{json.RawMessage("1")}}},
			http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, tc.url, tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.code {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.code)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			var body struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if body.Error == "" {
				t.Fatal("error body has no \"error\" message")
			}
		})
	}

	// Method misuse answers with the same structured shape.
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status %d, want 405", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET /query: Content-Type %q, want application/json", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("GET /query: structured error body missing (err %v, body %+v)", err, body)
	}
}
