package serve

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/table"
)

// fixtureTable builds a 1-column table with x cycling 0..999: every value
// band holds the same row count, so band queries have predictable
// selectivity.
func fixtureTable(n int) *table.Table {
	schema := table.MustSchema([]table.Column{
		{Name: "x", Kind: table.Numeric, Min: 0, Max: 999},
	})
	tbl := table.New(schema, n)
	for i := 0; i < n; i++ {
		tbl.AppendRow([]int64{int64(i % 1000)})
	}
	return tbl
}

// bandQuery selects x ∈ [lo, hi).
func bandQuery(name string, lo, hi int64) expr.Query {
	return expr.AndQ(name,
		expr.Pred{Col: 0, Op: expr.Ge, Literal: lo},
		expr.Pred{Col: 0, Op: expr.Lt, Literal: hi})
}

// Workload A lives in x ∈ [0, 200); workload B has drifted to [800, 1000).
// A layout planned for A leaves [200, 1000) as coarse blocks, so B scans
// most of the table until a re-layout.
func workloadA() []expr.Query {
	var w []expr.Query
	for i := 0; i < 4; i++ {
		lo := int64(i * 50)
		w = append(w, bandQuery(fmt.Sprintf("a%d", i), lo, lo+50))
	}
	return w
}

func workloadB() []expr.Query {
	var w []expr.Query
	for i := 0; i < 4; i++ {
		lo := int64(800 + i*50)
		w = append(w, bandQuery(fmt.Sprintf("b%d", i), lo, lo+50))
	}
	return w
}

// newTestRoot initializes a generation root with a layout planned for the
// given workload.
func newTestRoot(t *testing.T, tbl *table.Table, planned []expr.Query) string {
	t.Helper()
	root := t.TempDir()
	lay, err := GreedyReplan(100)(tbl, nil, planned)
	if err != nil {
		t.Fatal(err)
	}
	if err := Init(root, tbl, lay); err != nil {
		t.Fatal(err)
	}
	return root
}

func testConfig() Config {
	return Config{
		Replan:         GreedyReplan(100),
		LogCapacity:    256,
		MinWindow:      4,
		MinImprovement: 0.10,
	}
}

func TestLogRing(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 10; i++ {
		l.Record(Entry{Name: fmt.Sprintf("q%d", i)})
	}
	if l.Len() != 4 || l.Total() != 10 {
		t.Fatalf("len=%d total=%d", l.Len(), l.Total())
	}
	w := l.Window(0)
	if len(w) != 4 {
		t.Fatalf("window len %d", len(w))
	}
	for i, e := range w {
		if want := fmt.Sprintf("q%d", 6+i); e.Name != want || e.Seq != uint64(6+i) {
			t.Fatalf("window[%d] = %q seq %d, want %q seq %d", i, e.Name, e.Seq, want, 6+i)
		}
	}
	if got := len(l.Window(2)); got != 2 {
		t.Fatalf("window(2) len %d", got)
	}
	if got := len(l.Queries(3)); got != 3 {
		t.Fatalf("queries(3) len %d", got)
	}
}

func TestServeAndLogStats(t *testing.T) {
	tbl := fixtureTable(4000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	want := cost.PerQueryMatches(tbl, workloadA(), nil)
	for i, q := range workloadA() {
		res, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsMatched != want[i] {
			t.Fatalf("query %s matched %d, want %d", q.Name, res.RowsMatched, want[i])
		}
		if res.SkipRate() <= 0 {
			t.Errorf("query %s skip rate %.2f; layout planned for this workload must skip", q.Name, res.SkipRate())
		}
	}
	st := s.Stats()
	if st.Queries != 4 || st.Logged != 4 || st.Generation != 1 || st.Swaps != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WindowSkipRate <= 0 {
		t.Errorf("window skip rate %.2f", st.WindowSkipRate)
	}
	if s.Rows() != 4000 {
		t.Fatalf("rows = %d", s.Rows())
	}
}

func TestQuerySQL(t *testing.T) {
	tbl := fixtureTable(2000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.QuerySQL("x >= 10 AND x < 20")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsMatched != 20 { // 2000 rows cycle 0..999: each value twice
		t.Fatalf("matched %d, want 20", res.RowsMatched)
	}
	if _, err := s.QuerySQL("nope >= 1"); err == nil {
		t.Error("unknown column must error")
	}
	if _, err := s.QuerySQL("x > x"); err == nil {
		t.Error("advanced cut absent from the server's table must be rejected")
	}
}

func TestQueryRejectsUnknownAdvRef(t *testing.T) {
	tbl := fixtureTable(1000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q := expr.Query{Name: "adv", Root: expr.NewAdv(0)}
	if _, err := s.Query(q); err == nil {
		t.Fatal("advanced ref beyond the server's AC table must error")
	}
}

// TestDriftTriggersRelayout is the acceptance scenario: workload B
// replayed against a layout planned for workload A crosses the drift
// threshold, the background-style check replans and swaps, and estimated
// scan cost on the window measurably improves.
func TestDriftTriggersRelayout(t *testing.T) {
	tbl := fixtureTable(4000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for _, q := range workloadB() {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	before := s.log.MeanSkipRate(0)
	rep, err := s.Relayout(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped {
		t.Fatalf("drifted workload must trigger a swap: %+v", rep)
	}
	if rep.CandidateFraction >= rep.LiveFraction {
		t.Fatalf("candidate %.3f not better than live %.3f", rep.CandidateFraction, rep.LiveFraction)
	}
	if rep.Improvement < 0.5 {
		t.Fatalf("improvement %.3f suspiciously small for a fully drifted window", rep.Improvement)
	}
	if rep.Generation != 2 || s.Generation() != 2 {
		t.Fatalf("generation = %d / %d", rep.Generation, s.Generation())
	}

	// The swap is visible on disk: CURRENT flipped, old generation GC'd.
	if id, _ := blockstore.CurrentGeneration(root); id != 2 {
		t.Fatalf("CURRENT = %d", id)
	}
	if ids, _ := blockstore.ListGenerations(root); len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("generations on disk = %v", ids)
	}

	// Queries keep answering correctly and now skip far more.
	want := cost.PerQueryMatches(tbl, workloadB(), nil)
	for i, q := range workloadB() {
		res, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsMatched != want[i] {
			t.Fatalf("post-swap query %s matched %d, want %d", q.Name, res.RowsMatched, want[i])
		}
	}
	after := s.log.MeanSkipRate(4)
	if after <= before {
		t.Fatalf("skip rate did not improve: before %.3f after %.3f", before, after)
	}
}

func TestRelayoutGates(t *testing.T) {
	tbl := fixtureTable(4000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Empty log: nothing to replan.
	rep, err := s.Relayout(false)
	if err != nil || rep.Swapped {
		t.Fatalf("empty-log check: %+v, %v", rep, err)
	}

	// Below MinWindow: the monitor path holds off.
	if _, err := s.Query(workloadA()[0]); err != nil {
		t.Fatal(err)
	}
	rep, err = s.Relayout(false)
	if err != nil || rep.Swapped || !strings.Contains(rep.Reason, "MinWindow") {
		t.Fatalf("tiny-window check: %+v, %v", rep, err)
	}

	// Same workload the layout was planned for: improvement ~0, no swap.
	for _, q := range workloadA() {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	rep, err = s.Relayout(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swapped {
		t.Fatalf("un-drifted workload must not swap: %+v", rep)
	}
	if s.Generation() != 1 {
		t.Fatalf("generation moved to %d without drift", s.Generation())
	}

	// Forced: both gates bypassed, swap happens regardless.
	rep, err = s.Relayout(true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped || s.Generation() != 2 {
		t.Fatalf("forced relayout must swap: %+v gen=%d", rep, s.Generation())
	}
}

func TestNegativeThresholdMeansAnyImprovement(t *testing.T) {
	cfg := testConfig()
	cfg.MinImprovement = -1
	cfg.fillDefaults()
	if cfg.MinImprovement != 0 {
		t.Fatalf("negative threshold resolved to %v, want 0", cfg.MinImprovement)
	}
	cfg = testConfig()
	cfg.MinImprovement = 0
	cfg.fillDefaults()
	if cfg.MinImprovement != 0.10 {
		t.Fatalf("zero threshold resolved to %v, want default 0.10", cfg.MinImprovement)
	}
}

func TestExplicitWindowGrowsLog(t *testing.T) {
	cfg := testConfig()
	cfg.LogCapacity = 100
	cfg.WindowSize = 400
	cfg.fillDefaults()
	if cfg.LogCapacity != 400 || cfg.WindowSize != 400 {
		t.Fatalf("log=%d window=%d, want 400/400", cfg.LogCapacity, cfg.WindowSize)
	}
}

// At "any improvement" (negative threshold), an identical candidate must
// NOT swap on the gated path — a steady workload would otherwise rewrite
// the table on every tick.
func TestZeroImprovementDoesNotSwapAtAnyThreshold(t *testing.T) {
	tbl := fixtureTable(4000)
	root := newTestRoot(t, tbl, workloadA())
	cfg := testConfig()
	cfg.MinImprovement = -1
	s, err := New(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for r := 0; r < 2; r++ {
		for _, q := range workloadA() {
			if _, err := s.Query(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep, err := s.Relayout(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swapped {
		t.Fatalf("identical candidate swapped under 'any improvement': %+v", rep)
	}
}

func TestStatsClearsStaleError(t *testing.T) {
	tbl := fixtureTable(2000)
	root := newTestRoot(t, tbl, workloadA())
	cfg := testConfig()
	failing := true
	inner := cfg.Replan
	cfg.Replan = func(tb *table.Table, acs []expr.AdvCut, w []expr.Query) (*cost.Layout, error) {
		if failing {
			return nil, fmt.Errorf("injected replan failure")
		}
		return inner(tb, acs, w)
	}
	s, err := New(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Query(workloadA()[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Relayout(true); err == nil {
		t.Fatal("injected failure must surface")
	}
	if st := s.Stats(); st.LastError == "" {
		t.Fatal("failed check must publish LastError")
	}
	failing = false
	if _, err := s.Relayout(true); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.LastError != "" {
		t.Fatalf("successful check must clear LastError, still %q", st.LastError)
	}
}

func TestBackgroundMonitorSwapsOnDrift(t *testing.T) {
	tbl := fixtureTable(4000)
	root := newTestRoot(t, tbl, workloadA())
	cfg := testConfig()
	cfg.CheckInterval = 5 * time.Millisecond
	s, err := New(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Swaps == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("monitor never swapped; stats = %+v", s.Stats())
		}
		for _, q := range workloadB() {
			if _, err := s.Query(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.Generation < 2 || st.LastCheck == nil {
		t.Fatalf("stats after auto swap = %+v", st)
	}
}

func TestReopenAfterSwap(t *testing.T) {
	tbl := fixtureTable(2000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range workloadB() {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if rep, err := s.Relayout(true); err != nil || !rep.Swapped {
		t.Fatalf("relayout: %+v, %v", rep, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close must be idempotent:", err)
	}
	if _, err := s.Query(workloadA()[0]); err == nil {
		t.Fatal("query after Close must error")
	}

	s2, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Generation() != 2 || s2.Rows() != 2000 {
		t.Fatalf("reopened gen=%d rows=%d", s2.Generation(), s2.Rows())
	}
	want := cost.PerQueryMatches(tbl, workloadB(), nil)
	res, err := s2.Query(workloadB()[0])
	if err != nil || res.RowsMatched != want[0] {
		t.Fatalf("reopened query: matched=%d want=%d err=%v", res.RowsMatched, want[0], err)
	}
}

// TestConcurrentQuerySwapRace is the zero-downtime guarantee under -race:
// queries run continuously from many goroutines while forced relayouts
// swap generations. Every query must succeed, and every result must match
// the sequential ground truth (match counts are layout-invariant).
func TestConcurrentQuerySwapRace(t *testing.T) {
	tbl := fixtureTable(4000)
	root := newTestRoot(t, tbl, workloadA())
	cfg := testConfig()
	cfg.LogCapacity = 64
	s, err := New(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	queries := append(workloadA(), workloadB()...)
	want := cost.PerQueryMatches(tbl, queries, nil)

	const (
		readers          = 8
		queriesPerReader = 150
		swaps            = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers*queriesPerReader+swaps)
	start := make(chan struct{})

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < queriesPerReader; i++ {
				qi := (g + i) % len(queries)
				res, err := s.Query(queries[qi])
				if err != nil {
					errs <- fmt.Errorf("reader %d query %d: %w", g, i, err)
					return
				}
				if res.RowsMatched != want[qi] {
					errs <- fmt.Errorf("reader %d: query %s matched %d, want %d (gen %d)",
						g, queries[qi].Name, res.RowsMatched, want[qi], s.Generation())
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < swaps; i++ {
			// Wait for fresh traffic so a forced cycle always has a window.
			for s.log.Total() < uint64((i+1)*8) {
				time.Sleep(time.Millisecond)
			}
			if rep, err := s.Relayout(true); err != nil {
				errs <- fmt.Errorf("relayout %d: %w", i, err)
				return
			} else if !rep.Swapped {
				errs <- fmt.Errorf("relayout %d did not swap: %+v", i, rep)
				return
			}
		}
	}()
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.Stats()
	if st.Swaps != swaps || st.Generation != 1+swaps {
		t.Fatalf("swaps=%d generation=%d, want %d/%d", st.Swaps, st.Generation, swaps, 1+swaps)
	}
	if st.Queries != readers*queriesPerReader {
		t.Fatalf("served %d queries, want %d (zero may fail during swaps)", st.Queries, readers*queriesPerReader)
	}
	// Disk state is consistent: only the live generation (plus none kept)
	// remains, and it reopens.
	ids, err := blockstore.ListGenerations(root)
	if err != nil || len(ids) != 1 || ids[0] != st.Generation {
		t.Fatalf("generations = %v (err %v), want just %d", ids, err, st.Generation)
	}
	if _, _, err := blockstore.OpenCurrent(root); err != nil {
		t.Fatal(err)
	}
}

func TestNewRequiresReplanAndCurrent(t *testing.T) {
	if _, err := New(t.TempDir(), Config{}); err == nil {
		t.Error("missing Replan must error")
	}
	if _, err := New(t.TempDir(), Config{Replan: GreedyReplan(10)}); err == nil {
		t.Error("root without CURRENT must error")
	}
	if _, err := os.Stat("/"); err != nil {
		t.Skip("fs sanity")
	}
}

// TestSummaryEnvelopeAndPartials covers the shard-facing surface a
// cluster front door consumes: the envelope summary, its MayMatch
// pruning contract, and the unfinalized partial-aggregation path.
func TestSummaryEnvelopeAndPartials(t *testing.T) {
	tbl := fixtureTable(2000)
	root := newTestRoot(t, tbl, workloadA())
	cfg := testConfig()
	cfg.ShardLabel = "shard_007"
	s, err := New(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sum := s.Summary()
	if sum.Shard != "shard_007" || sum.Rows != 2000 || sum.Blocks == 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Min[0] != 0 || sum.Max[0] != 999 {
		t.Fatalf("envelope = [%d, %d], want [0, 999]", sum.Min[0], sum.Max[0])
	}
	if !sum.MayMatch(bandQuery("hit", 100, 150)) {
		t.Error("in-envelope query must not be pruned")
	}
	if sum.MayMatch(bandQuery("miss", 5000, 6000)) {
		t.Error("out-of-envelope query should be pruned")
	}

	// Uncompacted delta rows make the shard unprunable: the envelope
	// only describes base blocks.
	if err := s.Insert([][]int64{{42}}); err != nil {
		t.Fatal(err)
	}
	sum2 := s.Summary()
	if sum2.DeltaRows != 1 || !sum2.MayMatch(bandQuery("miss", 5000, 6000)) {
		t.Errorf("delta rows must defeat pruning: %+v", sum2)
	}

	// SelectPartial returns mergeable accumulator state, not finals.
	aq := expr.AggQuery{
		Name:   "cnt",
		Aggs:   []expr.Agg{{Func: expr.AggCountStar}},
		Filter: bandQuery("band", 0, 200),
	}
	pr, err := s.SelectPartial(aq)
	if err != nil {
		t.Fatal(err)
	}
	if pr.AggPartialResult == nil || pr.Generation != sum.Generation {
		t.Fatalf("partial = %+v", pr)
	}
	if pr.Grouped {
		t.Error("global aggregate must not be grouped")
	}

	if got := s.log.String(); !strings.Contains(got, "serve.Log{") {
		t.Errorf("Log.String = %q", got)
	}
}
