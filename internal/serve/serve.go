package serve

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockstore"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/greedy"
	"repro/internal/obs"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// ErrClosed is returned by operations on a closed Server.
var ErrClosed = errors.New("serve: server is closed")

// ReplanFunc plans a fresh layout for the logged query window over the
// served table. The returned layout's BIDs must assign every row of tbl.
// Repeated queries in the window are intentional: a query executed often
// weighs proportionally more in the replan, exactly as frequency weights
// the paper's workload cost (Eq. 1).
type ReplanFunc func(tbl *table.Table, acs []expr.AdvCut, window []expr.Query) (*cost.Layout, error)

// Config tunes a Server. The zero value of every field except Replan is
// usable; New fills defaults.
type Config struct {
	// Profile / Mode / ExecOptions configure physical execution, exactly as
	// for a standalone engine.
	Profile     exec.Profile
	Mode        exec.Mode
	ExecOptions exec.Options
	// ACs is the advanced-cut table queries may reference. Queries that
	// reference cuts beyond it are rejected (the layout's descriptions
	// carry no metadata for them).
	ACs []expr.AdvCut
	// LogCapacity bounds the sliding workload log (default 1024).
	LogCapacity int
	// WindowSize is how many logged queries a drift check replans
	// (default: LogCapacity; an explicit value larger than LogCapacity
	// grows the log to hold it).
	WindowSize int
	// MinWindow is the minimum logged-query count before the background
	// monitor replans at all (default 16). Forced relayouts ignore it.
	MinWindow int
	// MinImprovement is the relative estimated-cost reduction a candidate
	// must offer before the monitor swaps it in. 0 selects the default of
	// 0.10 (10%); a negative value means swap on any improvement at all.
	MinImprovement float64
	// CheckInterval is the background drift-monitor period; 0 disables the
	// monitor (drift checks then happen only via Relayout).
	CheckInterval time.Duration
	// KeepGenerations is how many retired generations survive GC after a
	// swap (default 0: only the live generation is kept on disk).
	KeepGenerations int
	// StoreWrite selects the block format of rewritten generations. The
	// zero value emits format v2 (per-column encodings), so every online
	// re-layout also migrates the table to the compressed format — a v1
	// store becomes v2 at its first swap with no downtime.
	StoreWrite blockstore.WriteOptions
	// MemtableRows seals the ingest memtable into an on-disk delta
	// segment at this row count (default delta.DefaultMemtableRows).
	MemtableRows int
	// CompactRows is the uncompacted delta size past which the background
	// compactor folds the delta into a fresh generation (default 65536).
	// Forced compactions (Compact, POST /compact) ignore it.
	CompactRows int
	// CompactInterval is the background compactor's check period; 0
	// disables it (compactions then happen only via Compact /
	// RunCompaction).
	CompactInterval time.Duration
	// ShardLabel names this server's role in a cluster (e.g. "shard-2").
	// Empty for standalone servers; when set it is reported in Stats and
	// Summary so cluster-level observability can attribute per-shard work.
	ShardLabel string
	// SlowQuery is the latency threshold past which a query is counted in
	// Stats.SlowQueries and copied into the slow half of the trace ring
	// (default 250ms; negative disables slow-query accounting).
	SlowQuery time.Duration
	// Metrics is the registry /metrics scrapes. Nil gets the server its
	// own registry; pass one in to co-host several servers' metrics.
	Metrics *obs.Registry
	// TraceRingSize bounds the recent and slow trace rings behind
	// GET /debug/traces (default obs.DefaultTraceRingSize).
	TraceRingSize int
	// Replan plans the candidate layout for a window. Required; see
	// GreedyReplan for the default strategy.
	Replan ReplanFunc
}

func (c *Config) fillDefaults() {
	if c.Profile.Name == "" {
		c.Profile = exec.EngineSpark
	}
	if c.LogCapacity <= 0 {
		c.LogCapacity = 1024
	}
	if c.WindowSize <= 0 {
		c.WindowSize = c.LogCapacity
	} else if c.WindowSize > c.LogCapacity {
		// An explicit window must be honored: grow the log to hold it
		// rather than silently shrinking the drift window.
		c.LogCapacity = c.WindowSize
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 16
	}
	if c.MinImprovement == 0 {
		c.MinImprovement = 0.10
	} else if c.MinImprovement < 0 {
		c.MinImprovement = 0
	}
	if c.CompactRows <= 0 {
		c.CompactRows = 1 << 16
	}
	if c.SlowQuery == 0 {
		c.SlowQuery = 250 * time.Millisecond
	} else if c.SlowQuery < 0 {
		c.SlowQuery = 0
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
}

// generation binds one immutable on-disk layout version to its in-memory
// routing metadata.
type generation struct {
	id     int
	store  *blockstore.Store
	layout *cost.Layout
}

// Server is the live serving handle: concurrent queries execute against
// the current generation while the drift monitor replans and swaps
// generations underneath, with zero failed queries. Create with New,
// bootstrap a root with Init.
type Server struct {
	cfg  Config
	root string
	tbl  *table.Table // served rows, block order of the boot generation

	log *Log

	// plans memoizes parsed row statements by their SQL text, so repeat
	// dashboards skip the parser entirely. Schema and ACs are fixed for
	// the server's lifetime, so entries never go stale.
	plans *planCache

	// mu guards the generation handle: queries hold the read lock for the
	// scan's duration; a swap takes the write lock only for the pointer
	// flip, after the new generation is fully materialized — so in-flight
	// queries drain on the old generation and new ones start on the new
	// one, and the old store is closed only once no reader can hold it.
	mu     sync.RWMutex
	gen    *generation
	closed bool

	// relayoutMu serializes drift checks, compactions, and Close, so at
	// most one candidate generation is ever being built.
	relayoutMu sync.Mutex

	// delta absorbs Insert traffic; its snapshot is merged into every
	// query (delta ∪ base) until a compaction folds it into a fresh
	// generation. Lock order: s.mu before the delta store's internal lock.
	delta      *delta.Store
	deltaWarns []string

	// reg/metrics/traces are the observability surface: the Prometheus
	// registry behind GET /metrics, its instrument set, and the
	// recent/slow trace ring behind GET /debug/traces.
	reg     *obs.Registry
	metrics *serverMetrics
	traces  *obs.TraceRing

	queries       atomic.Uint64
	slowQueries   atomic.Uint64
	swaps         atomic.Uint64
	compactions   atomic.Uint64
	compactedRows atomic.Int64
	// compactBytes is the cumulative on-disk size of generations written
	// by compactions — the numerator of write amplification (denominator:
	// logical bytes ever ingested).
	compactBytes atomic.Int64
	lastReport   atomic.Pointer[Report]
	lastCompact  atomic.Pointer[CompactReport]
	lastErr      atomic.Pointer[string]

	stop        chan struct{}
	stopOnce    sync.Once
	monitorDone chan struct{}
	compactDone chan struct{}
}

// Init bootstraps a generation root: the layout is materialized as
// generation 1 and CURRENT is pointed at it. The root is then servable by
// New.
func Init(root string, tbl *table.Table, l *cost.Layout) error {
	return InitOpts(root, tbl, l, blockstore.WriteOptions{})
}

// InitOpts is Init with explicit store-write options (block format,
// encodings) for the bootstrap generation.
func InitOpts(root string, tbl *table.Table, l *cost.Layout, opt blockstore.WriteOptions) error {
	if _, err := blockstore.WriteGenerationOpts(root, 1, tbl, l.BIDs, l.NumBlocks(), opt); err != nil {
		return err
	}
	return blockstore.SetCurrent(root, 1)
}

// New opens the live generation under root and starts serving. The table
// is read back from the generation's blocks and held in memory — it is
// both the scan substrate's ground truth and the input to background
// re-layouts. If cfg.CheckInterval > 0 a background drift monitor starts;
// Close stops it.
func New(root string, cfg Config) (*Server, error) {
	if cfg.Replan == nil {
		return nil, fmt.Errorf("serve: Config.Replan is required (see GreedyReplan)")
	}
	cfg.fillDefaults()
	store, id, err := blockstore.OpenCurrent(root)
	if err != nil {
		return nil, err
	}
	tbl, bids, err := loadTable(store)
	if err != nil {
		store.Close()
		return nil, err
	}
	// Crash recovery for a compaction interrupted between the CURRENT flip
	// and segment deletion: if the live generation reached the marker's,
	// the flip committed and the listed segments are duplicates of rows
	// already in the base; otherwise the flip never happened and the
	// segments are still the only copy of their rows.
	deltaDir := deltaDir(root)
	if m, merr := delta.ReadMarker(deltaDir); merr != nil {
		store.Close()
		return nil, merr
	} else if m != nil {
		if id >= m.Gen {
			if err := delta.RemoveSegmentFiles(deltaDir, m.Segs); err != nil {
				store.Close()
				return nil, err
			}
		}
		if err := delta.ClearMarker(deltaDir); err != nil {
			store.Close()
			return nil, err
		}
	}
	dst, warns, err := delta.Open(tbl.Schema, delta.Options{Dir: deltaDir, MemtableRows: cfg.MemtableRows})
	if err != nil {
		store.Close()
		return nil, err
	}
	layout := cost.NewLayout(genName(id), tbl, bids, store.NumBlocks(), cfg.ACs)
	s := &Server{
		cfg:        cfg,
		root:       root,
		tbl:        tbl,
		log:        NewLog(cfg.LogCapacity),
		plans:      newPlanCache(),
		gen:        &generation{id: id, store: store, layout: layout},
		delta:      dst,
		deltaWarns: warns,
		reg:        cfg.Metrics,
		traces:     obs.NewTraceRing(cfg.TraceRingSize),
		stop:       make(chan struct{}),
	}
	s.metrics = newServerMetrics(s.reg)
	s.registerGauges(s.reg)
	if cfg.CheckInterval > 0 {
		s.monitorDone = make(chan struct{})
		go s.monitor(cfg.CheckInterval)
	}
	if cfg.CompactInterval > 0 {
		s.compactDone = make(chan struct{})
		go s.compactor(cfg.CompactInterval)
	}
	return s, nil
}

// deltaDir is where a root's delta segments live, beside its generations.
func deltaDir(root string) string { return filepath.Join(root, "delta") }

func genName(id int) string { return fmt.Sprintf("gen_%06d", id) }

// loadTable reads every block of a store back into one table, returning
// the per-row block assignment implied by block order.
func loadTable(store *blockstore.Store) (*table.Table, []int, error) {
	total := 0
	for _, m := range store.Blocks {
		total += m.Rows
	}
	tbl := table.New(store.Schema, total)
	bids := make([]int, 0, total)
	for b := range store.Blocks {
		blk, err := store.ReadBlock(b)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: load block %d: %w", b, err)
		}
		tbl.Concat(blk)
		for i := 0; i < blk.N; i++ {
			bids = append(bids, b)
		}
	}
	return tbl, bids, nil
}

// table returns the served base table — the pointer is swapped by
// compaction, so readers go through the generation lock.
func (s *Server) table() *table.Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tbl
}

// Schema returns the served table's schema.
func (s *Server) Schema() *table.Schema { return s.table().Schema }

// Rows returns the served row count: base rows plus uncompacted delta
// rows.
func (s *Server) Rows() int { return s.table().N + s.delta.Rows() }

// Insert appends rows to the live delta store; they are visible to
// queries immediately and are folded into the learned layout by the next
// compaction. The batch is atomic: schema mismatches (wrapping
// delta.ErrSchemaMismatch) reject the whole batch.
func (s *Server) Insert(rows [][]int64) error {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if err := s.delta.Insert(rows); err != nil {
		return err
	}
	s.metrics.ingestRows.Add(uint64(len(rows)))
	return nil
}

// Flush seals the delta memtable into an on-disk segment, making
// buffered inserts durable without waiting for a compaction.
func (s *Server) Flush() error {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	return s.delta.Flush()
}

// deltaView snapshots the uncompacted delta for a merged read; callers
// hold s.mu.RLock, pairing the view with the generation it is served
// beside.
func (s *Server) deltaView() *exec.DeltaView {
	tbls := s.delta.Snapshot()
	if len(tbls) == 0 {
		return nil
	}
	return &exec.DeltaView{Tables: tbls}
}

// Generation returns the live generation id.
func (s *Server) Generation() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen.id
}

// QueryResult is one served query's scan stats plus the generation that
// actually served it — which may already be retired by the time the
// caller reads the result.
type QueryResult struct {
	exec.Result
	Generation int
}

// Query executes one query against the live generation and records it in
// the workload log. Safe for concurrent use, including across generation
// swaps: a query runs entirely on the generation it acquired.
func (s *Server) Query(q expr.Query) (QueryResult, error) {
	return s.QueryTraced(q, nil)
}

// QueryTraced is Query recording stage spans into tr (nil starts a
// fresh internal trace — every query is traced so the metrics, the
// trace ring, and inline "trace": true responses all agree).
func (s *Server) QueryTraced(q expr.Query, tr *obs.Trace) (QueryResult, error) {
	for _, a := range q.AdvRefs() {
		if a >= len(s.cfg.ACs) {
			return QueryResult{}, fmt.Errorf("serve: query references advanced cut %d but the server holds %d", a, len(s.cfg.ACs))
		}
	}
	if tr == nil {
		tr = obs.NewTrace("")
	}
	opt := s.cfg.ExecOptions
	opt.Trace = tr
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return QueryResult{}, ErrClosed
	}
	g := s.gen
	res, err := exec.RunDelta(g.store, g.layout, q, s.cfg.ACs, s.cfg.Profile, s.cfg.Mode, opt, s.deltaView())
	s.mu.RUnlock()
	s.observeQuery(tr, "filter", res.ScanStats, err)
	if err != nil {
		return QueryResult{Result: res, Generation: g.id}, err
	}
	s.queries.Add(1)
	s.log.Record(Entry{
		Name:       q.Name,
		Query:      q,
		Generation: g.id,
		Blocks:     res.BlocksScanned,
		Rows:       res.RowsScanned,
		Matched:    res.RowsMatched,
		Bytes:      res.BytesRead,
		SkipRate:   res.SkipRate(),
		SimTime:    res.SimTime,
	})
	return QueryResult{Result: res, Generation: g.id}, nil
}

// SelectResult is one served aggregation: typed result rows plus scan
// stats and the generation that served it.
type SelectResult struct {
	*exec.AggResult
	Generation int
}

// Select executes one aggregation statement against the live generation
// and records its filter and scan cost in the workload log — aggregate
// traffic therefore drives drift detection and background re-layouts
// exactly like plain filter queries. Safe for concurrent use across
// generation swaps.
func (s *Server) Select(aq expr.AggQuery) (SelectResult, error) {
	return s.SelectTraced(aq, nil)
}

// SelectTraced is Select recording stage spans into tr (nil starts a
// fresh internal trace).
func (s *Server) SelectTraced(aq expr.AggQuery, tr *obs.Trace) (SelectResult, error) {
	for _, a := range aq.Filter.AdvRefs() {
		if a >= len(s.cfg.ACs) {
			return SelectResult{}, fmt.Errorf("serve: query references advanced cut %d but the server holds %d", a, len(s.cfg.ACs))
		}
	}
	if tr == nil {
		tr = obs.NewTrace("")
	}
	opt := s.cfg.ExecOptions
	opt.Trace = tr
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return SelectResult{}, ErrClosed
	}
	g := s.gen
	res, err := exec.RunAggDelta(g.store, g.layout, aq, s.cfg.ACs, s.cfg.Profile, s.cfg.Mode, opt, s.deltaView())
	s.mu.RUnlock()
	var st exec.ScanStats
	if res != nil {
		st = res.ScanStats
	}
	s.observeQuery(tr, "select", st, err)
	if err != nil {
		return SelectResult{}, err
	}
	s.queries.Add(1)
	name := aq.Name
	if name == "" {
		name = aq.StringWith(s.Schema().Names(), s.cfg.ACs)
	}
	s.log.Record(Entry{
		Name:       name,
		Query:      aq.Filter,
		Generation: g.id,
		Blocks:     res.BlocksScanned,
		Rows:       res.RowsScanned,
		Matched:    res.RowsMatched,
		Bytes:      res.BytesRead,
		SkipRate:   res.SkipRate(),
		SimTime:    res.SimTime,
	})
	return SelectResult{AggResult: res, Generation: g.id}, nil
}

// SelectSQL parses one aggregation statement against the served schema
// and executes it.
func (s *Server) SelectSQL(sql string) (SelectResult, error) {
	aq, err := s.ParseSelectSQL(sql)
	if err != nil {
		return SelectResult{}, err
	}
	return s.Select(aq)
}

// ParseSelectSQL parses one aggregation statement without executing it.
// Like ParseSQL, statements that introduce advanced cuts the server was
// not configured with are rejected.
func (s *Server) ParseSelectSQL(sql string) (expr.AggQuery, error) {
	p := sqlparse.NewParser(s.Schema())
	p.ACs = append([]expr.AdvCut(nil), s.cfg.ACs...)
	aq, err := p.ParseSelect(sql)
	if err != nil {
		return expr.AggQuery{}, err
	}
	if len(p.ACs) > len(s.cfg.ACs) {
		return expr.AggQuery{}, fmt.Errorf("serve: query %q introduces an advanced cut the server was not configured with", sql)
	}
	if aq.Name == "" {
		aq.Name = sql
	}
	return aq, nil
}

// SelectRowsResult is one served row-returning statement: ordered output
// tuples plus scan (and, for joins, build/probe) stats and the generation
// that served them.
type SelectRowsResult struct {
	*exec.RowsResult
	Generation int
}

// SelectRows executes one row-returning statement (single-table
// projection with optional ORDER BY/LIMIT, or a two-table equi-join)
// against the live generation, merging uncompacted delta rows exactly
// like the filter and aggregate paths. Each side of a join is logged
// into the drift window separately — join traffic therefore pulls
// re-layouts toward both build and probe filters, not a blended average.
func (s *Server) SelectRows(stmt expr.RowStmt) (SelectRowsResult, error) {
	return s.SelectRowsTraced(stmt, nil)
}

// SelectRowsTraced is SelectRows recording stage spans into tr (nil
// starts a fresh internal trace).
func (s *Server) SelectRowsTraced(stmt expr.RowStmt, tr *obs.Trace) (SelectRowsResult, error) {
	var refs []int
	typ := "rows"
	switch {
	case stmt.Join != nil:
		typ = "join"
		refs = append(stmt.Join.LeftFilter.AdvRefs(), stmt.Join.RightFilter.AdvRefs()...)
	case stmt.Row != nil:
		refs = stmt.Row.Filter.AdvRefs()
	default:
		return SelectRowsResult{}, fmt.Errorf("serve: empty row statement")
	}
	for _, a := range refs {
		if a >= len(s.cfg.ACs) {
			return SelectRowsResult{}, fmt.Errorf("serve: query references advanced cut %d but the server holds %d", a, len(s.cfg.ACs))
		}
	}
	if tr == nil {
		tr = obs.NewTrace("")
	}
	opt := s.cfg.ExecOptions
	opt.Trace = tr
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return SelectRowsResult{}, ErrClosed
	}
	g := s.gen
	var res *exec.RowsResult
	var err error
	if stmt.Join != nil {
		res, err = exec.RunJoinDelta(g.store, g.layout, *stmt.Join, s.cfg.ACs, s.cfg.Profile, s.cfg.Mode, opt, s.deltaView())
	} else {
		res, err = exec.RunRowsDelta(g.store, g.layout, *stmt.Row, s.cfg.ACs, s.cfg.Profile, s.cfg.Mode, opt, s.deltaView())
	}
	s.mu.RUnlock()
	var st exec.ScanStats
	if res != nil {
		st = res.ScanStats
	}
	s.observeQuery(tr, typ, st, err)
	if err != nil {
		return SelectRowsResult{}, err
	}
	s.queries.Add(1)
	name := stmt.Name()
	if name == "" {
		name = stmt.StringWith(s.Schema().Names(), s.cfg.ACs)
	}
	if jq := stmt.Join; jq != nil {
		s.metrics.joinBuildRows.Add(uint64(res.Join.RowsBuild))
		s.metrics.joinProbeRows.Add(uint64(res.Join.RowsProbe))
		// One drift-log entry per side, so the replanner sees the filter
		// that actually pruned each scan. The shared sim time is split
		// evenly; per-side scan stats are exact.
		sides := []struct {
			tag string
			q   expr.Query
			st  *exec.ScanStats
		}{
			{"#left", jq.LeftFilter, res.Left},
			{"#right", jq.RightFilter, res.Right},
		}
		for _, side := range sides {
			half := res.RowsTotal / 2
			skip := 1.0
			if half > 0 {
				skip = 1 - float64(side.st.RowsScanned)/float64(half)
			}
			s.log.Record(Entry{
				Name:       name + side.tag,
				Query:      side.q,
				Generation: g.id,
				Blocks:     side.st.BlocksScanned,
				Rows:       side.st.RowsScanned,
				Matched:    side.st.RowsMatched,
				Bytes:      side.st.BytesRead,
				SkipRate:   skip,
				SimTime:    res.SimTime / 2,
			})
		}
	} else {
		s.log.Record(Entry{
			Name:       name,
			Query:      stmt.Row.Filter,
			Generation: g.id,
			Blocks:     res.BlocksScanned,
			Rows:       res.RowsScanned,
			Matched:    res.RowsMatched,
			Bytes:      res.BytesRead,
			SkipRate:   res.SkipRate(),
			SimTime:    res.SimTime,
		})
	}
	return SelectRowsResult{RowsResult: res, Generation: g.id}, nil
}

// SelectRowsSQL parses one row-returning statement against the served
// schema (through the plan cache) and executes it.
func (s *Server) SelectRowsSQL(sql string) (SelectRowsResult, error) {
	stmt, err := s.ParseRowSelectSQL(sql)
	if err != nil {
		return SelectRowsResult{}, err
	}
	return s.SelectRows(stmt)
}

// ParseRowSelectSQL parses one row-returning statement without
// executing it, memoizing successful parses in the plan cache. The
// lookup is by raw SQL text, but entries are keyed on the statement's
// canonical rendering with the raw spelling aliased to it — so a
// repeated dashboard statement costs one map lookup, and whitespace or
// case variants of the same statement resolve to one shared plan (a
// hit) instead of each burning a cache slot. Statements that introduce
// advanced cuts the server was not configured with are rejected (and
// never cached).
func (s *Server) ParseRowSelectSQL(sql string) (expr.RowStmt, error) {
	if stmt, ok := s.plans.get(sql); ok {
		s.plans.hit()
		s.metrics.planCache.With("hit").Inc()
		return stmt, nil
	}
	p := sqlparse.NewParser(s.Schema())
	p.ACs = append([]expr.AdvCut(nil), s.cfg.ACs...)
	stmt, err := p.ParseRowSelect(sql)
	if err != nil {
		s.plans.miss()
		s.metrics.planCache.With("miss").Inc()
		return expr.RowStmt{}, err
	}
	if len(p.ACs) > len(s.cfg.ACs) {
		s.plans.miss()
		s.metrics.planCache.With("miss").Inc()
		return expr.RowStmt{}, fmt.Errorf("serve: query %q introduces an advanced cut the server was not configured with", sql)
	}
	if stmt.Row != nil && stmt.Row.Name == "" {
		stmt.Row.Name = sql
	}
	if stmt.Join != nil && stmt.Join.Name == "" {
		stmt.Join.Name = sql
	}
	canon := stmt.StringWith(s.Schema().Names(), s.cfg.ACs)
	cached, aliased := s.plans.intern(sql, canon, stmt)
	if aliased {
		s.plans.hit()
		s.metrics.planCache.With("hit").Inc()
	} else {
		s.plans.miss()
		s.metrics.planCache.With("miss").Inc()
	}
	return cached, nil
}

// QuerySQL parses one SQL WHERE clause (or full SELECT) against the served
// schema and executes it. Queries that introduce advanced cuts absent from
// the server's table are rejected — the live layout has no skipping
// metadata for them.
func (s *Server) QuerySQL(sql string) (QueryResult, error) {
	q, err := s.ParseSQL(sql)
	if err != nil {
		return QueryResult{}, err
	}
	return s.Query(q)
}

// ParseSQL parses one SQL WHERE clause against the served schema without
// executing it. Errors here are client faults (malformed SQL, unknown
// columns, unsupported advanced cuts) — the HTTP layer maps them to 400
// while execution errors map to 500.
func (s *Server) ParseSQL(sql string) (expr.Query, error) {
	p := sqlparse.NewParser(s.Schema())
	p.ACs = append([]expr.AdvCut(nil), s.cfg.ACs...)
	q, err := p.Parse(sql)
	if err != nil {
		return expr.Query{}, err
	}
	if len(p.ACs) > len(s.cfg.ACs) {
		return expr.Query{}, fmt.Errorf("serve: query %q introduces an advanced cut the server was not configured with", sql)
	}
	if q.Name == "" {
		q.Name = sql
	}
	return q, nil
}

// Relayout runs one drift-check cycle synchronously. With force=false it
// behaves exactly like a background tick: the window must reach MinWindow
// and the candidate must beat MinImprovement. With force=true both gates
// are bypassed — the window (whatever is logged) is replanned and the
// candidate is swapped in unconditionally, which is the POST /relayout
// escape hatch for operators who know the workload has moved.
func (s *Server) Relayout(force bool) (Report, error) {
	s.relayoutMu.Lock()
	defer s.relayoutMu.Unlock()

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Report{}, ErrClosed
	}
	live := s.gen
	tbl := s.tbl
	s.mu.RUnlock()

	window := s.log.Queries(s.cfg.WindowSize)
	rep := Report{Window: len(window), Threshold: s.cfg.MinImprovement, Generation: live.id}
	if len(window) == 0 {
		rep.Reason = "workload log is empty; nothing to replan"
		s.finishCheck(rep, nil)
		return rep, nil
	}
	if !force && len(window) < s.cfg.MinWindow {
		rep.Reason = fmt.Sprintf("window %d below MinWindow %d", len(window), s.cfg.MinWindow)
		s.finishCheck(rep, nil)
		return rep, nil
	}

	cand, err := s.cfg.Replan(tbl, s.cfg.ACs, window)
	if err != nil {
		rep.Reason = "replan failed"
		err = fmt.Errorf("serve: replan over %d-query window: %w", len(window), err)
		s.finishCheck(rep, err)
		return rep, err
	}
	if len(cand.BIDs) != tbl.N {
		rep.Reason = "replan returned a layout for a different table"
		err = fmt.Errorf("serve: replanned layout assigns %d rows, table has %d", len(cand.BIDs), tbl.N)
		s.finishCheck(rep, err)
		return rep, err
	}
	rep = assess(live.layout, cand, window, s.cfg.MinImprovement)
	rep.Generation = live.id
	// A gated swap needs strictly positive improvement even at threshold
	// 0 ("any improvement"), or a steady workload would rewrite the table
	// on every tick for an identical candidate.
	if !force && (rep.Improvement < s.cfg.MinImprovement || rep.Improvement <= 0) {
		s.finishCheck(rep, nil)
		return rep, nil
	}
	if force {
		rep.Reason = "forced relayout: " + rep.Reason
	}

	// Materialize the candidate as the next generation, then flip. The id
	// skips past any directory already on disk (e.g. a partial write from
	// a failed cycle), so one bad cycle cannot wedge every later one.
	newID := s.nextGenID(live.id)
	cand.Name = genName(newID)
	store, err := blockstore.WriteGenerationOpts(s.root, newID, tbl, cand.BIDs, cand.NumBlocks(), s.cfg.StoreWrite)
	if err != nil {
		rep.Reason = "generation write failed"
		s.finishCheck(rep, err)
		return rep, err
	}
	if err := blockstore.SetCurrent(s.root, newID); err != nil {
		store.Close()
		blockstore.RemoveGeneration(s.root, newID)
		rep.Reason = "CURRENT flip failed"
		s.finishCheck(rep, err)
		return rep, err
	}
	next := &generation{id: newID, store: store, layout: cand}
	s.mu.Lock()
	old := s.gen
	s.gen = next
	s.mu.Unlock()
	// No new query can acquire old past this point and mu.Lock drained the
	// in-flight ones, so the old generation can be released and collected.
	old.store.Close()
	s.gcGenerations(newID)
	s.swaps.Add(1)
	rep.Swapped = true
	rep.Generation = newID
	s.finishCheck(rep, nil)
	return rep, nil
}

// nextGenID picks the next generation id, skipping past any directory
// already on disk (e.g. a partial write from a failed cycle).
func (s *Server) nextGenID(liveID int) int {
	newID := liveID + 1
	if ids, lerr := blockstore.ListGenerations(s.root); lerr == nil {
		for _, id := range ids {
			if id >= newID {
				newID = id + 1
			}
		}
	}
	return newID
}

// gcGenerations removes retired generation directories, keeping the live
// one and the cfg.KeepGenerations most recent retirees.
func (s *Server) gcGenerations(liveID int) {
	ids, err := blockstore.ListGenerations(s.root)
	if err != nil {
		return
	}
	var retired []int
	for _, id := range ids {
		if id != liveID {
			retired = append(retired, id)
		}
	}
	for i := 0; i < len(retired)-s.cfg.KeepGenerations; i++ {
		blockstore.RemoveGeneration(s.root, retired[i])
	}
}

// finishCheck publishes the report for Stats; a successful check clears
// any error a previous cycle left behind.
func (s *Server) finishCheck(rep Report, err error) {
	switch {
	case err != nil:
		s.metrics.relayouts.With("failed").Inc()
	case rep.Swapped:
		s.metrics.relayouts.With("swapped").Inc()
	default:
		s.metrics.relayouts.With("skipped").Inc()
	}
	s.lastReport.Store(&rep)
	if err != nil {
		msg := err.Error()
		s.lastErr.Store(&msg)
	} else {
		s.lastErr.Store(nil)
	}
}

// monitor is the background drift loop: one no-force Relayout per tick.
func (s *Server) monitor(interval time.Duration) {
	defer close(s.monitorDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Relayout(false) // outcome lands in Stats via finishCheck
		}
	}
}

// Stats is a point-in-time snapshot of the serving subsystem.
type Stats struct {
	Shard      string `json:"shard,omitempty"`
	Generation int    `json:"generation"`
	Rows       int    `json:"rows"`
	Blocks     int    `json:"blocks"`
	Queries    uint64 `json:"queries"`
	// SlowQueries counts queries whose end-to-end latency reached
	// SlowThresholdMS (the -slow-ms flag); the trace ring's slow half
	// uses the same threshold, so both always agree on what "slow" means.
	SlowQueries     uint64  `json:"slow_queries"`
	SlowThresholdMS float64 `json:"slow_threshold_ms"`
	Swaps           uint64  `json:"swaps"`
	Logged          int     `json:"logged"`
	LogTotal        uint64  `json:"log_total"`
	WindowSkipRate  float64 `json:"window_skip_rate"`
	// PlanCacheHits/Misses count row-statement plan-cache lookups; a
	// hot dashboard should converge to hits ≈ queries.
	PlanCacheHits   uint64  `json:"plan_cache_hits"`
	PlanCacheMisses uint64  `json:"plan_cache_misses"`
	LastCheck       *Report `json:"last_check,omitempty"`
	LastError       string  `json:"last_error,omitempty"`

	// Streaming ingest. DeltaRows/DeltaSegments/DeltaBytes describe the
	// uncompacted delta (Rows above includes DeltaRows);
	// FreshnessSeconds is the age of the oldest uncompacted row (0 when
	// the delta is empty); WriteAmplification is cumulative compaction
	// bytes written over logical bytes ingested.
	DeltaRows          int            `json:"delta_rows"`
	DeltaSegments      int            `json:"delta_segments"`
	DeltaBytes         int64          `json:"delta_bytes"`
	DeltaWarnings      []string       `json:"delta_warnings,omitempty"`
	RowsIngested       int64          `json:"rows_ingested"`
	Compactions        uint64         `json:"compactions"`
	CompactedRows      int64          `json:"compacted_rows"`
	FreshnessSeconds   float64        `json:"freshness_seconds"`
	WriteAmplification float64        `json:"write_amplification"`
	LastCompact        *CompactReport `json:"last_compact,omitempty"`
}

// Stats snapshots the live counters.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	gen := s.gen
	tbl := s.tbl
	s.mu.RUnlock()
	deltaRows := s.delta.Rows()
	st := Stats{
		Shard:              s.cfg.ShardLabel,
		Generation:         gen.id,
		Rows:               tbl.N + deltaRows,
		Blocks:             gen.layout.NumBlocks(),
		Queries:            s.queries.Load(),
		SlowQueries:        s.slowQueries.Load(),
		SlowThresholdMS:    float64(s.cfg.SlowQuery) / float64(time.Millisecond),
		Swaps:              s.swaps.Load(),
		Logged:             s.log.Len(),
		LogTotal:           s.log.Total(),
		WindowSkipRate:     s.log.MeanSkipRate(s.cfg.WindowSize),
		PlanCacheHits:      s.plans.hits.Load(),
		PlanCacheMisses:    s.plans.misses.Load(),
		LastCheck:          s.lastReport.Load(),
		DeltaRows:          deltaRows,
		DeltaSegments:      s.delta.Segments(),
		DeltaBytes:         s.delta.Bytes(),
		DeltaWarnings:      s.deltaWarns,
		RowsIngested:       s.delta.RowsIngested(),
		Compactions:        s.compactions.Load(),
		CompactedRows:      s.compactedRows.Load(),
		WriteAmplification: s.writeAmp(),
		LastCompact:        s.lastCompact.Load(),
	}
	if oldest, ok := s.delta.Oldest(); ok {
		st.FreshnessSeconds = time.Since(oldest).Seconds()
	}
	if msg := s.lastErr.Load(); msg != nil {
		st.LastError = *msg
	}
	return st
}

// Close stops the drift monitor and the compactor, waits for in-flight
// queries and any running relayout or compaction to drain, seals the
// delta memtable (buffered inserts become durable segments), and releases
// the live generation's store. Idempotent. The background loops are
// stopped before relayoutMu is taken — taking the lock first would
// deadlock against a tick blocked on it.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.monitorDone != nil {
		<-s.monitorDone
	}
	if s.compactDone != nil {
		<-s.compactDone
	}
	s.relayoutMu.Lock()
	defer s.relayoutMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	gen := s.gen
	s.mu.Unlock()
	return errors.Join(s.delta.Close(), gen.store.Close())
}

// GreedyReplan returns the default replanner: Algorithm 1 (Sec. 4) over
// the window's extracted cuts, with minBlockSize as b.
func GreedyReplan(minBlockSize int) ReplanFunc {
	return func(tbl *table.Table, acs []expr.AdvCut, window []expr.Query) (*cost.Layout, error) {
		tree, err := greedy.Build(tbl, acs, greedy.Options{
			MinSize: minBlockSize,
			Cuts:    core.ExtractCuts(window),
			Queries: window,
		})
		if err != nil {
			return nil, err
		}
		return cost.FromTree("greedy", tree, tbl), nil
	}
}
