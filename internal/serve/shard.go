package serve

// Shard-role surface of a Server: when a Server runs as one store node of
// a cluster (internal/cluster), the front door needs two things beyond
// the standalone API — a shard-level pruning summary (so selective
// queries skip whole shards before any block-level pruning happens) and
// partial aggregation (so AVG/MIN/MAX gather bit-identically across
// shards; see exec/merge.go).

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/table"
)

// Summary is one shard's pruning metadata: the inclusive per-column
// min/max envelope of its base blocks (the union of its block-level SMA
// zone maps) plus the uncompacted delta row count. A front door may skip
// the shard for a query only when the envelope cannot match AND the
// delta is empty — delta rows carry no metadata, so any uncompacted
// ingest makes the shard unprunable until the next compaction folds it
// into described blocks. Columns carries the schema so a stateless front
// door can parse queries without local configuration.
type Summary struct {
	Shard      string         `json:"shard,omitempty"`
	Generation int            `json:"generation"`
	Rows       int            `json:"rows"` // base rows (excludes delta)
	DeltaRows  int            `json:"delta_rows"`
	Blocks     int            `json:"blocks"`
	Min        []int64        `json:"min,omitempty"` // per-column inclusive min over base blocks
	Max        []int64        `json:"max,omitempty"` // per-column inclusive max over base blocks
	Columns    []table.Column `json:"columns"`
}

// MayMatch reports whether the shard may hold rows matching q: true when
// the query's filter intersects the base envelope or any uncompacted
// delta rows exist. Conservative — false is a proof of emptiness.
func (sm *Summary) MayMatch(q expr.Query) bool {
	if sm.DeltaRows > 0 {
		return true
	}
	if sm.Rows == 0 {
		return false
	}
	return cost.SMAMayMatch(sm.Min, sm.Max, q)
}

// Summary snapshots the live generation's envelope. The catalog's
// per-block SMA metadata (exact min/max per column, categoricals
// included) is merged over non-empty blocks; a generation swap or
// compaction changes the result, so cluster front doors refresh
// periodically and after routing ingest.
func (s *Server) Summary() Summary {
	s.mu.RLock()
	gen := s.gen
	closed := s.closed
	s.mu.RUnlock()
	sum := Summary{
		Shard:      s.cfg.ShardLabel,
		Generation: gen.id,
		DeltaRows:  s.delta.Rows(),
		Columns:    s.Schema().Cols,
	}
	if closed {
		return sum
	}
	for _, m := range gen.store.Blocks {
		if m.Rows == 0 || len(m.Min) == 0 {
			continue
		}
		sum.Blocks++
		if sum.Rows == 0 {
			sum.Min = append([]int64(nil), m.Min...)
			sum.Max = append([]int64(nil), m.Max...)
		} else {
			for c := range sum.Min {
				if m.Min[c] < sum.Min[c] {
					sum.Min[c] = m.Min[c]
				}
				if m.Max[c] > sum.Max[c] {
					sum.Max[c] = m.Max[c]
				}
			}
		}
		sum.Rows += m.Rows
	}
	return sum
}

// PartialResult is one served partial aggregation: mergeable per-group
// accumulator state plus the generation that served it.
type PartialResult struct {
	*exec.AggPartialResult
	Generation int
}

// SelectPartial executes one aggregation statement against the live
// generation but returns the unfinalized partial state — the shard-side
// half of distributed scatter/gather. Like Select, the execution lands in
// the workload log, so scattered aggregate traffic drives each shard's
// own drift detection and re-layouts.
func (s *Server) SelectPartial(aq expr.AggQuery) (PartialResult, error) {
	return s.SelectPartialTraced(aq, nil)
}

// SelectPartialTraced is SelectPartial recording stage spans into tr
// (nil starts a fresh internal trace).
func (s *Server) SelectPartialTraced(aq expr.AggQuery, tr *obs.Trace) (PartialResult, error) {
	for _, a := range aq.Filter.AdvRefs() {
		if a >= len(s.cfg.ACs) {
			return PartialResult{}, fmt.Errorf("serve: query references advanced cut %d but the server holds %d", a, len(s.cfg.ACs))
		}
	}
	if tr == nil {
		tr = obs.NewTrace("")
	}
	opt := s.cfg.ExecOptions
	opt.Trace = tr
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return PartialResult{}, ErrClosed
	}
	g := s.gen
	res, err := exec.RunAggPartialDelta(g.store, g.layout, aq, s.cfg.ACs, s.cfg.Profile, s.cfg.Mode, opt, s.deltaView())
	s.mu.RUnlock()
	var st exec.ScanStats
	if res != nil {
		st = res.ScanStats
	}
	s.observeQuery(tr, "select_partial", st, err)
	if err != nil {
		return PartialResult{}, err
	}
	s.queries.Add(1)
	name := aq.Name
	if name == "" {
		name = aq.StringWith(s.Schema().Names(), s.cfg.ACs)
	}
	s.log.Record(Entry{
		Name:       name,
		Query:      aq.Filter,
		Generation: g.id,
		Blocks:     res.BlocksScanned,
		Rows:       res.RowsScanned,
		Matched:    res.RowsMatched,
		Bytes:      res.BytesRead,
		SkipRate:   res.SkipRate(),
		SimTime:    res.SimTime,
	})
	return PartialResult{AggPartialResult: res, Generation: g.id}, nil
}
