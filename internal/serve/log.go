// Package serve is the online serving subsystem: it wraps a materialized
// qd-tree layout behind a concurrency-safe, hot-swappable handle, records
// every executed query into a sliding workload log, and runs a background
// drift monitor that replans the logged window and — when the candidate
// layout beats the live one by a configurable margin — rewrites the block
// store into a new generation and swaps it in with zero failed queries.
//
// The paper learns a layout from a fixed workload (Sec. 3–5); this package
// closes the production loop the paper leaves offline:
//
//	queries → workload log → drift check → replan → new generation → swap
//
// Generations are immutable directories under one root (see
// blockstore.WriteGeneration); the swap flips an in-memory handle and the
// on-disk CURRENT pointer, in-flight queries drain on the old generation,
// and retired generations are garbage-collected.
package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/expr"
)

// Entry is one logged query execution: the query itself (so the window can
// be replanned) plus the per-query stats the executor surfaced.
type Entry struct {
	Seq        uint64        // monotone sequence number across the log's life
	Name       string        // query name (or SQL text for HTTP queries)
	Query      expr.Query    // the executed query
	Generation int           // layout generation that served it
	Blocks     int           // blocks scanned
	Rows       int64         // rows scanned
	Matched    int64         // rows matched
	Bytes      int64         // bytes read
	SkipRate   float64       // fraction of store rows skipped (1 = touched nothing)
	SimTime    time.Duration // deterministic cost-model time
}

// Log is the sliding workload log: a fixed-capacity ring buffer of the
// most recent query executions. Safe for concurrent use.
type Log struct {
	mu    sync.Mutex
	buf   []Entry // ring storage
	size  int     // entries currently held (≤ cap(buf))
	total uint64  // entries ever recorded; next seq number
}

// NewLog returns a log keeping the last capacity entries.
func NewLog(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{buf: make([]Entry, capacity)}
}

// Record appends one execution, evicting the oldest entry when full, and
// stamps the entry's sequence number.
func (l *Log) Record(e Entry) {
	l.mu.Lock()
	e.Seq = l.total
	l.buf[l.total%uint64(len(l.buf))] = e
	l.total++
	if l.size < len(l.buf) {
		l.size++
	}
	l.mu.Unlock()
}

// Len is the number of entries currently held.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Total is the number of entries ever recorded.
func (l *Log) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Window returns a copy of the most recent n entries (all held entries
// when n <= 0 or n exceeds the held count), oldest first.
func (l *Log) Window(n int) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.size {
		n = l.size
	}
	out := make([]Entry, n)
	for i := 0; i < n; i++ {
		// The newest entry is at total-1; walk back n entries.
		idx := (l.total - uint64(n) + uint64(i)) % uint64(len(l.buf))
		out[i] = l.buf[idx]
	}
	return out
}

// Queries projects the most recent n logged entries to their queries,
// oldest first — the window the drift monitor replans.
func (l *Log) Queries(n int) []expr.Query {
	w := l.Window(n)
	out := make([]expr.Query, len(w))
	for i, e := range w {
		out[i] = e.Query
	}
	return out
}

// MeanSkipRate averages the skip rate over the most recent n entries
// (all when n <= 0). Returns 0 with an empty log.
func (l *Log) MeanSkipRate(n int) float64 {
	w := l.Window(n)
	if len(w) == 0 {
		return 0
	}
	var sum float64
	for _, e := range w {
		sum += e.SkipRate
	}
	return sum / float64(len(w))
}

// String summarizes the log for diagnostics.
func (l *Log) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return fmt.Sprintf("serve.Log{held=%d cap=%d total=%d}", l.size, len(l.buf), l.total)
}
