package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/delta"
)

// insertRows builds n rows with the fixture schema, all carrying value x.
func insertRows(n int, x int64) [][]int64 {
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{x}
	}
	return rows
}

func TestInsertVisibleBeforeCompaction(t *testing.T) {
	tbl := fixtureTable(2000) // x cycles 0..999: every value twice
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	q := bandQuery("probe", 500, 501)
	res, err := s.Query(q)
	if err != nil || res.RowsMatched != 2 {
		t.Fatalf("base: matched %d err %v, want 2", res.RowsMatched, err)
	}
	if err := s.Insert(insertRows(5, 500)); err != nil {
		t.Fatal(err)
	}
	res, err = s.Query(q)
	if err != nil || res.RowsMatched != 7 {
		t.Fatalf("after insert: matched %d err %v, want 7 (visible immediately)", res.RowsMatched, err)
	}
	if res.DeltaRows != 5 {
		t.Fatalf("DeltaRows %d, want 5", res.DeltaRows)
	}
	if s.Rows() != 2005 {
		t.Fatalf("Rows() %d, want 2005", s.Rows())
	}
	st := s.Stats()
	if st.DeltaRows != 5 || st.RowsIngested != 5 || st.FreshnessSeconds <= 0 {
		t.Fatalf("stats %+v: want 5 delta rows and positive freshness", st)
	}
	if st.Compactions != 0 || st.WriteAmplification != 0 {
		t.Fatalf("no compaction ran yet: %+v", st)
	}
}

func TestCompactionFoldsDeltaIntoFreshGeneration(t *testing.T) {
	tbl := fixtureTable(2000)
	root := newTestRoot(t, tbl, workloadA())
	cfg := testConfig()
	cfg.MemtableRows = 4 // several sealed segments
	s, err := New(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Insert(insertRows(10, 500)); err != nil {
		t.Fatal(err)
	}
	// Log some traffic so the compaction has a window to replan over.
	for _, q := range workloadA() {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.RunCompaction(true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped || rep.Rows != 10 || rep.Generation != 2 {
		t.Fatalf("report %+v, want swap of 10 rows into generation 2", rep)
	}
	if rep.Routed != "replan" && rep.Routed != "tree" {
		t.Fatalf("routed %q", rep.Routed)
	}
	if rep.BytesWritten <= 0 || rep.WriteAmplification <= 0 {
		t.Fatalf("report %+v: compaction must account its writes", rep)
	}

	// The folded rows still answer queries, now from the base.
	res, err := s.Query(bandQuery("probe", 500, 501))
	if err != nil || res.RowsMatched != 12 {
		t.Fatalf("post-compaction: matched %d err %v, want 12", res.RowsMatched, err)
	}
	if res.DeltaRows != 0 {
		t.Fatalf("post-compaction DeltaRows %d, want 0", res.DeltaRows)
	}
	st := s.Stats()
	if st.DeltaRows != 0 || st.Compactions != 1 || st.CompactedRows != 10 {
		t.Fatalf("stats %+v", st)
	}
	if st.LastCompact == nil || !st.LastCompact.Swapped {
		t.Fatalf("LastCompact %+v", st.LastCompact)
	}
	// Segment files are gone and the marker is cleared.
	segs, _ := filepath.Glob(filepath.Join(deltaDir(root), "delta_*.qdb"))
	if len(segs) != 0 {
		t.Fatalf("segment files survive compaction: %v", segs)
	}
	if m, err := delta.ReadMarker(deltaDir(root)); err != nil || m != nil {
		t.Fatalf("marker %+v err %v, want cleared", m, err)
	}
	// The store reopens: exactly one generation, consistent catalog.
	if _, _, err := blockstore.OpenCurrent(root); err != nil {
		t.Fatal(err)
	}
}

func TestCompactionGates(t *testing.T) {
	tbl := fixtureTable(1000)
	root := newTestRoot(t, tbl, workloadA())
	cfg := testConfig()
	cfg.CompactRows = 100
	s, err := New(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rep, err := s.RunCompaction(false)
	if err != nil || rep.Swapped {
		t.Fatalf("empty delta: %+v err %v, want gated", rep, err)
	}
	if err := s.Insert(insertRows(10, 1)); err != nil {
		t.Fatal(err)
	}
	rep, err = s.RunCompaction(false)
	if err != nil || rep.Swapped {
		t.Fatalf("below CompactRows: %+v err %v, want gated", rep, err)
	}
	rep, err = s.RunCompaction(true)
	if err != nil || !rep.Swapped {
		t.Fatalf("forced: %+v err %v, want swap", rep, err)
	}
}

// TestMarkerRecovery pins the crash-recovery invariant: a marker whose
// generation is live (or older) means the flip committed, so the listed
// segments are duplicates and are deleted; a marker naming a generation
// that never became live means the segments are still the only copy.
func TestMarkerRecovery(t *testing.T) {
	tbl := fixtureTable(1000)
	root := newTestRoot(t, tbl, workloadA())
	dd := deltaDir(root)

	// Seed two durable segments.
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(insertRows(6, 42)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dd, "delta_*.qdb"))
	if len(segs) == 0 {
		t.Fatal("fixture needs durable segments")
	}

	// Crash case A: flip never committed (marker names a future gen).
	// Segments must survive.
	if err := delta.WriteMarker(dd, delta.Marker{Gen: 99, Segs: []int{0}}); err != nil {
		t.Fatal(err)
	}
	s, err = New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().DeltaRows; got != 6 {
		t.Fatalf("pre-flip crash: delta rows %d, want 6 kept", got)
	}
	if m, _ := delta.ReadMarker(dd); m != nil {
		t.Fatal("marker must be cleared after recovery")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash case B: flip committed (marker names the live gen), crash
	// before segment deletion. The listed segments are duplicates and
	// must be dropped.
	if err := delta.WriteMarker(dd, delta.Marker{Gen: 1, Segs: []int{0}}); err != nil {
		t.Fatal(err)
	}
	s, err = New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Stats().DeltaRows; got != 0 {
		t.Fatalf("post-flip crash: delta rows %d, want 0 (duplicates deleted)", got)
	}
	if _, err := os.Stat(filepath.Join(dd, blockstore.DeltaSegName(0))); !os.IsNotExist(err) {
		t.Fatal("duplicate segment file must be deleted")
	}
	if m, _ := delta.ReadMarker(dd); m != nil {
		t.Fatal("marker must be cleared after recovery")
	}
}

func TestInsertAfterCloseReturnsErrClosed(t *testing.T) {
	tbl := fixtureTable(500)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(insertRows(1, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("insert after close: %v, want ErrClosed", err)
	}
	if err := s.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush after close: %v, want ErrClosed", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("compact after close: %v, want ErrClosed", err)
	}
}

// TestConcurrentInsertQueryCompactRace extends TestConcurrentQuerySwapRace
// to the write path: 8 readers verify ground-truth counts while an insert
// stream and 5 forced compactions run. Bands the writer never touches
// must match exactly on every read; the written band must grow
// monotonically; the final state must be exact.
func TestConcurrentInsertQueryCompactRace(t *testing.T) {
	tbl := fixtureTable(4000) // every value 0..999 appears 4 times
	root := newTestRoot(t, tbl, workloadA())
	cfg := testConfig()
	cfg.MemtableRows = 16
	s, err := New(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const (
		readers     = 8
		reads       = 120
		compactions = 5
		batches     = 40
		batchRows   = 5
	)
	stable := bandQuery("stable", 0, 200) // writer never inserts here: always 800
	hot := bandQuery("hot", 500, 501)     // writer only inserts x=500: base 4, grows

	var inserted atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, readers+2)
	start := make(chan struct{})

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			lastHot := int64(0)
			for i := 0; i < reads; i++ {
				res, err := s.Query(stable)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", g, err)
					return
				}
				if res.RowsMatched != 800 {
					errs <- fmt.Errorf("reader %d: stable band matched %d, want 800", g, res.RowsMatched)
					return
				}
				// Lower bound published before the read began; the count
				// may exceed it (concurrent inserts) but never shrink.
				lo := 4 + inserted.Load()
				res, err = s.Query(hot)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", g, err)
					return
				}
				if res.RowsMatched < lastHot || res.RowsMatched < lo {
					errs <- fmt.Errorf("reader %d: hot band shrank: matched %d, floor %d, last %d",
						g, res.RowsMatched, lo, lastHot)
					return
				}
				lastHot = res.RowsMatched
			}
		}(g)
	}
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		<-start
		for b := 0; b < batches; b++ {
			if err := s.Insert(insertRows(batchRows, 500)); err != nil {
				errs <- fmt.Errorf("insert batch %d: %w", b, err)
				return
			}
			inserted.Add(batchRows)
		}
	}()
	wg.Add(1)
	go func() { // compactor
		defer wg.Done()
		<-start
		for i := 0; i < compactions; i++ {
			if _, err := s.RunCompaction(true); err != nil {
				errs <- fmt.Errorf("compaction %d: %w", i, err)
				return
			}
		}
	}()
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Final state is exact once the stream has drained.
	res, err := s.Query(hot)
	if err != nil || res.RowsMatched != 4+batches*batchRows {
		t.Fatalf("final hot count %d err %v, want %d", res.RowsMatched, err, 4+batches*batchRows)
	}
	if _, err := s.RunCompaction(true); err != nil {
		t.Fatal(err)
	}
	res, err = s.Query(hot)
	if err != nil || res.RowsMatched != 4+batches*batchRows || res.DeltaRows != 0 {
		t.Fatalf("post-final-compaction: %+v err %v", res.Result, err)
	}
	if s.Rows() != 4000+batches*batchRows {
		t.Fatalf("Rows() %d", s.Rows())
	}
	// Disk is consistent and reopenable.
	if _, _, err := blockstore.OpenCurrent(root); err != nil {
		t.Fatal(err)
	}
}
