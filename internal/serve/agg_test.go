package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/expr"
)

// TestServerSelect runs aggregation statements through the serving handle
// and checks the typed rows plus their effect on the workload log.
func TestServerSelect(t *testing.T) {
	tbl := fixtureTable(2000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	res, err := s.SelectSQL("SELECT COUNT(*), SUM(x), MIN(x), MAX(x), AVG(x) FROM t WHERE x >= 100 AND x < 150")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	v := res.Rows[0].Vals
	// 2000 rows cycling 0..999: every value in [100,150) appears twice.
	if v[0].Int != 100 || v[1].Int != 12450 || v[2].Int != 100 || v[3].Int != 149 {
		t.Fatalf("aggregates = %+v", v)
	}
	if v[4].Float != 124.5 {
		t.Fatalf("AVG = %v, want 124.5", v[4].Float)
	}
	if res.Generation != 1 {
		t.Fatalf("generation = %d", res.Generation)
	}
	if res.SkipRate() <= 0 {
		t.Fatalf("aggregate on planned workload must skip; got %.2f", res.SkipRate())
	}

	// The statement landed in the drift window with its filter and cost.
	if s.log.Len() != 1 {
		t.Fatalf("log holds %d entries", s.log.Len())
	}
	e := s.log.Window(1)[0]
	if e.Matched != 100 || e.SkipRate <= 0 || e.Query.Root == nil {
		t.Fatalf("logged entry = %+v", e)
	}

	// Grouped statement.
	gres, err := s.SelectSQL("SELECT x, COUNT(*) FROM t WHERE x >= 100 AND x < 103 GROUP BY x")
	if err != nil {
		t.Fatal(err)
	}
	if len(gres.Rows) != 3 {
		t.Fatalf("group rows = %d", len(gres.Rows))
	}
	for i, row := range gres.Rows {
		if row.Key[0] != int64(100+i) || row.Vals[0].Int != 2 {
			t.Fatalf("group row %d = %+v", i, row)
		}
	}

	// Statement errors are client faults.
	if _, err := s.SelectSQL("SELECT NOPE(x) FROM t"); err == nil {
		t.Error("unknown aggregate must error")
	}
	if _, err := s.Select(expr.AggQuery{
		Aggs:   []expr.Agg{{Func: expr.AggCountStar}},
		Filter: expr.Query{Root: expr.NewAdv(7)},
	}); err == nil {
		t.Error("out-of-range advanced cut must be rejected")
	}
}

// TestServerSelectDrivesDrift: pure aggregate traffic fills the drift
// window and triggers a re-layout, exactly like filter queries.
func TestServerSelectDrivesDrift(t *testing.T) {
	tbl := fixtureTable(2000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Drifted aggregate traffic over workload B's band.
	for i := 0; i < 4; i++ {
		if _, err := s.Select(expr.AggQuery{
			Name:   "drift",
			Aggs:   []expr.Agg{{Func: expr.AggSum, Col: 0}},
			Filter: expr.Query{Root: bandQuery("b", 800, 1000).Root},
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Relayout(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped {
		t.Fatalf("drifted aggregate window must trigger a swap: %+v", rep)
	}
	// Aggregates answered after the swap see the new generation.
	res, err := s.SelectSQL("SELECT COUNT(*) FROM t WHERE x >= 800")
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != rep.Generation {
		t.Fatalf("generation %d, want %d", res.Generation, rep.Generation)
	}
	if res.Rows[0].Vals[0].Int != 400 {
		t.Fatalf("COUNT = %d, want 400", res.Rows[0].Vals[0].Int)
	}
}

// TestStatsNoDivideByZero pins the serve-log guards: a fresh server with
// zero logged queries reports finite stats, and a fully-pruned query logs
// skip rate 1 without perturbing the window average with NaNs.
func TestStatsNoDivideByZero(t *testing.T) {
	tbl := fixtureTable(2000)
	root := newTestRoot(t, tbl, workloadA())
	s, err := New(root, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	st := s.Stats()
	if st.WindowSkipRate != 0 || st.Queries != 0 {
		t.Fatalf("fresh server stats = %+v", st)
	}
	// A drift check over an empty log must not divide by zero either.
	rep, err := s.Relayout(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swapped {
		t.Fatalf("empty-window relayout swapped: %+v", rep)
	}

	// Fully-pruned query: x is in [0, 999], so nothing matches.
	res, err := s.QuerySQL("x > 5000")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScanned != 0 || res.SkipRate() != 1 {
		t.Fatalf("fully-pruned query: %+v skip %v", res.ScanStats, res.SkipRate())
	}
	if got := s.log.MeanSkipRate(0); got != 1 {
		t.Fatalf("window skip rate %v, want 1", got)
	}
	ares, err := s.SelectSQL("SELECT COUNT(*), AVG(x) FROM t WHERE x > 5000")
	if err != nil {
		t.Fatal(err)
	}
	if ares.SkipRate() != 1 || ares.Rows[0].Vals[0].Int != 0 || ares.Rows[0].Vals[1].Valid {
		t.Fatalf("fully-pruned aggregate: %+v", ares.Rows)
	}
}

// TestHTTPAggregateQuery drives POST /query with a SELECT statement and
// checks the typed-rows response shape.
func TestHTTPAggregateQuery(t *testing.T) {
	_, ts := newHTTPFixture(t)
	resp := postJSON(t, ts.URL+"/query", QueryRequest{SQL: "SELECT x, COUNT(*), AVG(x) FROM t WHERE x >= 100 AND x < 102 GROUP BY x"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.GroupBy) != 1 || qr.GroupBy[0] != "x" {
		t.Fatalf("group_by = %v", qr.GroupBy)
	}
	if len(qr.Rows) != 2 {
		t.Fatalf("rows = %+v", qr.Rows)
	}
	for i, row := range qr.Rows {
		if row.Key[0] != int64(100+i) || row.Aggs[0].Int != 2 || row.Aggs[1].Float != float64(100+i) {
			t.Fatalf("row %d = %+v", i, row)
		}
	}
	if qr.RowsMatched != 4 || qr.Generation != 1 {
		t.Fatalf("response = %+v", qr)
	}

	// Malformed aggregation statements are 400s.
	bad := postJSON(t, ts.URL+"/query", QueryRequest{SQL: "SELECT y FROM t"})
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad SELECT status %d, want 400", bad.StatusCode)
	}

	// Legacy SELECT-spelled filter queries (Parse skips to WHERE) keep
	// working: they fall back to the filter path and return scan stats.
	legacy := postJSON(t, ts.URL+"/query", QueryRequest{SQL: "SELECT * FROM t WHERE x >= 100 AND x < 150"})
	defer legacy.Body.Close()
	if legacy.StatusCode != http.StatusOK {
		t.Fatalf("legacy SELECT filter status %d, want 200", legacy.StatusCode)
	}
	var lr QueryResponse
	if err := json.NewDecoder(legacy.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if lr.RowsMatched != 100 || lr.Rows != nil {
		t.Fatalf("legacy SELECT filter response = %+v", lr)
	}

	// A malformed aggregation (function call in the select list) must NOT
	// fall back to the filter path: the typo surfaces as a 400, not a
	// silently-successful match count.
	typo := postJSON(t, ts.URL+"/query", QueryRequest{SQL: "SELECT SUM(nope) FROM t WHERE x >= 100"})
	typo.Body.Close()
	if typo.StatusCode != http.StatusBadRequest {
		t.Fatalf("aggregate typo status %d, want 400 (must not fall back to filter path)", typo.StatusCode)
	}
}
