package serve

// Background compaction: the LSM-style fold of the streaming-ingest delta
// into the learned base layout. A compaction checkpoints the delta (seals
// the memtable; inserts racing with the compaction land in the next one),
// routes base ∪ delta rows into a candidate layout — through the live
// generation's qd-tree when it has one, else via the configured replanner
// over the logged window — materializes the result as a fresh generation,
// and reuses the atomic CURRENT flip of re-layout, so queries never block
// and always see either (old base + full delta) or (new base + remaining
// delta), never both copies of a row.
//
// Crash safety: a marker naming the folded segments is written before the
// CURRENT flip and cleared after the segment files are deleted; see
// delta.Marker for the recovery invariant New applies.

import (
	"fmt"
	"os"
	"time"

	"repro/internal/blockstore"
	"repro/internal/cost"
	"repro/internal/delta"
	"repro/internal/table"
)

// CompactReport is the outcome of one compaction cycle.
type CompactReport struct {
	// Rows is how many delta rows the cycle folded into the base (0 when
	// the cycle was gated or the delta was empty).
	Rows int `json:"rows"`
	// Generation is the live generation after the cycle.
	Generation int  `json:"generation"`
	Swapped    bool `json:"swapped"`
	// Routed says how delta rows found their blocks: "tree" (routed
	// through the live layout's qd-tree), "replan" (fresh plan over the
	// logged window), or "append" (no tree and no logged queries — delta
	// rows land in one new block).
	Routed string `json:"routed,omitempty"`
	Reason string `json:"reason,omitempty"`
	// BytesWritten is the new generation's on-disk size.
	BytesWritten int64 `json:"bytes_written"`
	// FreshnessSeconds is the age of the oldest folded row when the cycle
	// started — the staleness the compaction erased.
	FreshnessSeconds float64 `json:"freshness_seconds"`
	// WriteAmplification is the server's cumulative write amplification
	// after the cycle (see Server.writeAmp).
	WriteAmplification float64 `json:"write_amplification"`
}

// Compact forces one compaction cycle, folding every uncompacted delta
// row into a fresh generation regardless of the CompactRows gate. It is
// the qd.Writer surface of the compactor (POST /compact over HTTP).
func (s *Server) Compact() error {
	_, err := s.RunCompaction(true)
	return err
}

// RunCompaction runs one compaction cycle synchronously. With force=false
// it behaves like a background tick: the delta must hold at least
// CompactRows rows. Compactions, drift relayouts, and Close serialize on
// the same lock, so at most one candidate generation is ever in flight.
func (s *Server) RunCompaction(force bool) (CompactReport, error) {
	s.relayoutMu.Lock()
	defer s.relayoutMu.Unlock()

	s.mu.RLock()
	closed := s.closed
	live := s.gen
	base := s.tbl
	s.mu.RUnlock()
	if closed {
		return CompactReport{}, ErrClosed
	}
	rep := CompactReport{Generation: live.id}
	if n := s.delta.Rows(); n == 0 {
		rep.Reason = "delta is empty; nothing to compact"
		s.finishCompact(rep, nil)
		return rep, nil
	} else if !force && n < s.cfg.CompactRows {
		rep.Reason = fmt.Sprintf("delta %d rows below CompactRows %d", n, s.cfg.CompactRows)
		s.finishCompact(rep, nil)
		return rep, nil
	}

	cp, err := s.delta.BeginCompaction()
	if err != nil {
		s.finishCompact(rep, err)
		return rep, err
	}
	rep.Rows = cp.Rows
	if !cp.Oldest.IsZero() {
		rep.FreshnessSeconds = time.Since(cp.Oldest).Seconds()
	}

	merged := table.New(base.Schema, base.N+cp.Rows)
	merged.Concat(base)
	for _, t := range cp.Tables() {
		merged.Concat(t)
	}

	newID := s.nextGenID(live.id)
	cand, routed, err := s.compactionLayout(live.layout, merged, newID)
	if err != nil {
		rep.Reason = "compaction layout failed"
		s.finishCompact(rep, err)
		return rep, err
	}
	rep.Routed = routed

	store, err := blockstore.WriteGenerationOpts(s.root, newID, merged, cand.BIDs, cand.NumBlocks(), s.cfg.StoreWrite)
	if err != nil {
		rep.Reason = "generation write failed"
		s.finishCompact(rep, err)
		return rep, err
	}
	var written int64
	for _, m := range store.Blocks {
		written += m.Bytes
	}
	// The marker must be durable before the flip: once CURRENT names the
	// new generation, the checkpointed segments are duplicate copies that
	// recovery is allowed to delete.
	if err := delta.WriteMarker(deltaDir(s.root), delta.Marker{Gen: newID, Segs: cp.SegIDs()}); err != nil {
		store.Close()
		blockstore.RemoveGeneration(s.root, newID)
		rep.Reason = "compaction marker write failed"
		s.finishCompact(rep, err)
		return rep, err
	}
	if err := blockstore.SetCurrent(s.root, newID); err != nil {
		store.Close()
		blockstore.RemoveGeneration(s.root, newID)
		delta.ClearMarker(deltaDir(s.root))
		rep.Reason = "CURRENT flip failed"
		s.finishCompact(rep, err)
		return rep, err
	}

	next := &generation{id: newID, store: store, layout: cand}
	s.mu.Lock()
	old := s.gen
	s.gen = next
	s.tbl = merged
	// Dropping the checkpoint under the same lock as the pointer flip
	// keeps the served view duplicate-free at every instant.
	paths := s.delta.Complete(cp)
	s.mu.Unlock()

	old.store.Close()
	s.gcGenerations(newID)
	for _, p := range paths {
		os.Remove(p)
	}
	delta.ClearMarker(deltaDir(s.root))

	s.compactions.Add(1)
	s.compactedRows.Add(int64(cp.Rows))
	s.compactBytes.Add(written)
	s.metrics.compactedRows.Add(uint64(cp.Rows))
	s.metrics.compactBytes.Add(uint64(written))
	rep.Swapped = true
	rep.Generation = newID
	rep.BytesWritten = written
	rep.WriteAmplification = s.writeAmp()
	s.finishCompact(rep, nil)
	return rep, nil
}

// compactionLayout routes base ∪ delta rows into the next generation's
// layout. Preference order: the live layout's qd-tree (the replanned
// semantic descriptions route new rows exactly like the paper's online
// ingest), a fresh replan over the logged window, and — with neither a
// tree nor logged queries — appending the delta rows as one new block
// after the unchanged base blocks.
func (s *Server) compactionLayout(liveLayout *cost.Layout, merged *table.Table, newID int) (*cost.Layout, string, error) {
	name := genName(newID)
	if liveLayout.Tree != nil {
		return cost.FromTree(name, liveLayout.Tree, merged), "tree", nil
	}
	if window := s.log.Queries(s.cfg.WindowSize); len(window) > 0 {
		cand, err := s.cfg.Replan(merged, s.cfg.ACs, window)
		if err != nil {
			return nil, "", fmt.Errorf("serve: compaction replan over %d-query window: %w", len(window), err)
		}
		if len(cand.BIDs) != merged.N {
			return nil, "", fmt.Errorf("serve: compaction replan assigns %d rows, merged table has %d", len(cand.BIDs), merged.N)
		}
		cand.Name = name
		return cand, "replan", nil
	}
	nblocks := liveLayout.NumBlocks()
	bids := make([]int, merged.N)
	copy(bids, liveLayout.BIDs)
	for r := len(liveLayout.BIDs); r < merged.N; r++ {
		bids[r] = nblocks
	}
	return cost.NewLayout(name, merged, bids, nblocks+1, s.cfg.ACs), "append", nil
}

// writeAmp is cumulative write amplification: every byte compactions
// wrote to disk over the logical footprint of the delta rows they folded
// in. The base rewrite dominates — folding a small delta rewrites the
// whole table, which is exactly the cost the stat is meant to surface.
func (s *Server) writeAmp() float64 {
	folded := 8 * int64(s.Schema().NumCols()) * s.compactedRows.Load()
	if folded == 0 {
		return 0
	}
	return float64(s.compactBytes.Load()) / float64(folded)
}

// finishCompact publishes the report for Stats; errors share the
// LastError slot with drift checks.
func (s *Server) finishCompact(rep CompactReport, err error) {
	switch {
	case err != nil:
		s.metrics.compactions.With("failed").Inc()
	case rep.Swapped:
		s.metrics.compactions.With("swapped").Inc()
	default:
		s.metrics.compactions.With("skipped").Inc()
	}
	s.lastCompact.Store(&rep)
	if err != nil {
		msg := err.Error()
		s.lastErr.Store(&msg)
	}
}

// compactor is the background compaction loop: each tick folds the delta
// once it has accumulated CompactRows rows.
func (s *Server) compactor(interval time.Duration) {
	defer close(s.compactDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if s.delta.Rows() >= s.cfg.CompactRows {
				s.RunCompaction(false) // outcome lands in Stats via finishCompact
			}
		}
	}
}
