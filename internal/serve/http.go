package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/table"
)

// IsSelect reports whether the SQL text starts with the SELECT keyword
// (as opposed to a bare filter expression). The keyword must end at a
// word boundary so a filter on a column named e.g. "selector" is not
// misrouted to the aggregation parser. Exported so the cluster front
// door routes statements exactly like a standalone server.
func IsSelect(sql string) bool {
	trimmed := strings.TrimSpace(sql)
	if len(trimmed) < 6 || !strings.EqualFold(trimmed[:6], "SELECT") {
		return false
	}
	if len(trimmed) == 6 {
		return true
	}
	c := trimmed[6]
	return !(c == '_' || c >= '0' && c <= '9' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z')
}

// LegacySelectShape reports whether the statement's select list (the text
// between SELECT and the first FROM) is the pre-aggregation shape — plain
// identifiers or * with no function calls — and therefore eligible for
// the skip-to-WHERE filter fallback. Exported for the cluster front door.
func LegacySelectShape(sql string) bool {
	rest := strings.TrimSpace(sql)[6:]
	upper := strings.ToUpper(rest)
	from := strings.Index(upper, " FROM ")
	if from < 0 {
		return false
	}
	return !strings.ContainsAny(rest[:from], "()")
}

// HTTP/JSON surface of a Server, mounted by cmd/qdserve:
//
//	POST /query    {"sql": "severity >= 8"}  → per-query scan stats
//	POST /query    {"sql": "SELECT ..."}     → scan stats + typed rows
//	POST /ingest   {"rows": [[...], ...]}    → insert rows into the delta
//	GET  /stats                              → Stats snapshot
//	POST /relayout {"force": true|false}     → run one drift-check cycle
//	POST /compact  {"force": true|false}     → run one compaction cycle
//	GET  /metrics                            → Prometheus text exposition
//	GET  /debug/traces                       → recent + slow trace rings
//	GET  /healthz                            → 200 ok
//
// A /query body with "trace": true returns the query's span-level trace
// inline (an EXPLAIN ANALYZE for the learned layout). The TraceID is
// taken from the X-Qd-Trace-Id request header when present — the
// cluster front door propagates its own ID to shards this way — and
// generated otherwise.
//
// A /query body whose SQL starts with SELECT first tries the
// aggregation grammar (COUNT/SUM/MIN/MAX/AVG, optional GROUP BY), then
// the row grammar (projection lists, ORDER BY ... LIMIT, two-table
// equi-joins) — row statements answer with the ordered tuples in
// Columns/Data. Any other SQL is a bare filter answered as a match
// count. All three are logged into the drift window.
//
// /relayout with an empty body forces the cycle (the operator asked for
// it); pass {"force": false} for a gated check identical to a monitor
// tick.

// QueryRequest is the POST /query body. Trace asks for the query's
// span-level trace inline in the response.
type QueryRequest struct {
	SQL   string `json:"sql"`
	Trace bool   `json:"trace,omitempty"`
}

// QueryRow is one typed result row of an aggregation query. Key holds the
// raw group-key values; KeyStrings their dictionary spellings where the
// grouping column has one.
type QueryRow struct {
	Key        []int64       `json:"key,omitempty"`
	KeyStrings []string      `json:"key_strings,omitempty"`
	Aggs       []exec.AggVal `json:"aggs"`
}

// QueryResponse reports one served query. GroupBy and Rows are present
// only for aggregation statements.
type QueryResponse struct {
	Query         string     `json:"query"`
	Generation    int        `json:"generation"`
	BlocksScanned int        `json:"blocks_scanned"`
	BlocksTotal   int        `json:"blocks_total"`
	RowsScanned   int64      `json:"rows_scanned"`
	RowsTotal     int64      `json:"rows_total"`
	RowsMatched   int64      `json:"rows_matched"`
	BytesRead     int64      `json:"bytes_read"`
	SkipRate      float64    `json:"skip_rate"`
	SimTimeNS     int64      `json:"sim_time_ns"`
	WallTimeNS    int64      `json:"wall_time_ns"`
	GroupBy       []string   `json:"group_by,omitempty"`
	Rows          []QueryRow `json:"rows,omitempty"`
	// Columns/Data are present only for row-returning statements:
	// Columns names each output column (alias-qualified for joins) and
	// Data holds the ordered tuples. DataStrings carries the dictionary
	// spellings when any projected column has one ("" for the rest).
	// Join reports build/probe stats when the statement was a join.
	Columns     []string        `json:"columns,omitempty"`
	Data        [][]int64       `json:"data,omitempty"`
	DataStrings [][]string      `json:"data_strings,omitempty"`
	Join        *exec.JoinStats `json:"join,omitempty"`
	// Trace is present when the request carried "trace": true.
	Trace *obs.TraceData `json:"trace,omitempty"`
}

// RelayoutRequest is the POST /relayout body. An empty body means force.
type RelayoutRequest struct {
	Force *bool `json:"force"`
}

// IngestRequest is the POST /ingest body. Each row lists one value per
// column: numeric columns take JSON integers, categorical columns take
// either the dictionary string or its integer code. Columns, when
// present, names every schema column and gives the order the row values
// use; absent, rows are in schema order.
type IngestRequest struct {
	Columns []string            `json:"columns,omitempty"`
	Rows    [][]json.RawMessage `json:"rows"`
}

// IngestResponse reports one accepted ingest batch.
type IngestResponse struct {
	Inserted  int `json:"inserted"`
	DeltaRows int `json:"delta_rows"`
}

// DecodeIngestRows validates and decodes an ingest batch against the
// served schema. All errors here are client faults (400). Exported so the
// cluster front door validates batches once before routing rows to
// shards.
func DecodeIngestRows(schema *table.Schema, req IngestRequest) ([][]int64, error) {
	ncols := schema.NumCols()
	order := make([]int, ncols) // position in request row → schema ordinal
	for i := range order {
		order[i] = i
	}
	if req.Columns != nil {
		if len(req.Columns) != ncols {
			return nil, fmt.Errorf("columns names %d of %d schema columns — every column is required", len(req.Columns), ncols)
		}
		seen := make(map[int]bool, ncols)
		for i, name := range req.Columns {
			c := schema.Col(name)
			if c < 0 {
				return nil, fmt.Errorf("unknown column %q", name)
			}
			if seen[c] {
				return nil, fmt.Errorf("column %q named twice", name)
			}
			seen[c] = true
			order[i] = c
		}
	}
	rows := make([][]int64, len(req.Rows))
	for ri, raw := range req.Rows {
		if len(raw) != ncols {
			return nil, fmt.Errorf("row %d has %d values, schema has %d columns", ri, len(raw), ncols)
		}
		row := make([]int64, ncols)
		for i, rv := range raw {
			c := order[i]
			var sval string
			if err := json.Unmarshal(rv, &sval); err == nil {
				code := schema.Code(c, sval)
				if code < 0 {
					return nil, fmt.Errorf("row %d column %s: %q is not in the dictionary", ri, schema.Cols[c].Name, sval)
				}
				row[c] = code
				continue
			}
			var ival int64
			if err := json.Unmarshal(rv, &ival); err != nil {
				return nil, fmt.Errorf("row %d column %s: want an integer or a dictionary string, got %s", ri, schema.Cols[c].Name, string(rv))
			}
			row[c] = ival
		}
		rows[ri] = row
	}
	return rows, nil
}

// Handler mounts the server's HTTP/JSON API.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpErr(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
		if req.SQL == "" {
			httpErr(w, http.StatusBadRequest, `body needs {"sql": "..."}`)
			return
		}
		// Every query is traced (the trace also feeds the metrics and the
		// ring); "trace": true only controls inline return. The parse span
		// joins the same trace so histogram sums reconcile with it.
		tr := obs.NewTrace(r.Header.Get(obs.TraceHeader))
		if IsSelect(req.SQL) {
			psp := tr.Start("parse")
			aq, err := s.ParseSelectSQL(req.SQL)
			if err != nil {
				// Not a parsable aggregation statement — try the row grammar
				// (projections, ORDER BY/LIMIT, joins) next.
				stmt, rerr := s.ParseRowSelectSQL(req.SQL)
				if rerr == nil {
					psp.End()
					serveRowStmt(w, s, stmt, tr, req.Trace)
					return
				}
				// Legacy clients send "SELECT x FROM t WHERE <filter>" or
				// "SELECT * FROM ..." expecting the filter path (Parse skips
				// everything up to WHERE) — keep honoring that shape. A
				// select list that contains a function call expressed
				// aggregation intent, so its parse error must surface, not
				// be silently answered as a bare match count.
				if LegacySelectShape(req.SQL) {
					if q, ferr := s.ParseSQL(req.SQL); ferr == nil {
						psp.End()
						serveFilterQuery(w, s, q, tr, req.Trace)
						return
					}
					// A parenthesis-free select list is the row shape; its
					// parse error names the actual problem (unknown column,
					// bad ORDER BY, ...) better than the aggregate error.
					httpErr(w, http.StatusBadRequest, "%v", rerr)
					return
				}
				httpErr(w, http.StatusBadRequest, "%v", err)
				return
			}
			psp.End()
			start := time.Now()
			res, err := s.SelectTraced(aq, tr)
			if err != nil {
				httpErr(w, http.StatusInternalServerError, "%v", err)
				return
			}
			resp := QueryResponse{
				Query:         res.Query,
				Generation:    res.Generation,
				BlocksScanned: res.BlocksScanned,
				BlocksTotal:   res.BlocksTotal,
				RowsScanned:   res.RowsScanned,
				RowsTotal:     res.RowsTotal,
				RowsMatched:   res.RowsMatched,
				BytesRead:     res.BytesRead,
				SkipRate:      res.SkipRate(),
				SimTimeNS:     int64(res.SimTime),
				WallTimeNS:    int64(time.Since(start)),
				Rows:          make([]QueryRow, len(res.Rows)),
			}
			schema := s.Schema()
			for _, g := range res.GroupBy {
				resp.GroupBy = append(resp.GroupBy, schema.Cols[g].Name)
			}
			hasDict := false
			for _, g := range res.GroupBy {
				if len(schema.Cols[g].Dict) > 0 {
					hasDict = true
				}
			}
			for i, row := range res.Rows {
				qr := QueryRow{Key: row.Key, Aggs: row.Vals}
				if hasDict {
					for ki, k := range row.Key {
						dict := schema.Cols[res.GroupBy[ki]].Dict
						if k >= 0 && k < int64(len(dict)) {
							qr.KeyStrings = append(qr.KeyStrings, dict[k])
						} else {
							qr.KeyStrings = append(qr.KeyStrings, "")
						}
					}
				}
				resp.Rows[i] = qr
			}
			if req.Trace {
				resp.Trace = tr.Snapshot()
			}
			writeJSON(w, resp)
			return
		}
		psp := tr.Start("parse")
		q, err := s.ParseSQL(req.SQL)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		psp.End()
		serveFilterQuery(w, s, q, tr, req.Trace)
	})
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req IngestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpErr(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
		if len(req.Rows) == 0 {
			httpErr(w, http.StatusBadRequest, `body needs {"rows": [[...], ...]}`)
			return
		}
		rows, err := DecodeIngestRows(s.Schema(), req)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := s.Insert(rows); err != nil {
			// A schema mismatch the decoder could not see (e.g. an integer
			// categorical code outside the dictionary) is still the
			// client's fault.
			if errors.Is(err, delta.ErrSchemaMismatch) {
				httpErr(w, http.StatusBadRequest, "%v", err)
			} else {
				httpErr(w, http.StatusInternalServerError, "%v", err)
			}
			return
		}
		writeJSON(w, IngestResponse{Inserted: len(rows), DeltaRows: s.delta.Rows()})
	})
	mux.HandleFunc("/compact", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		// Same convention as /relayout: empty body = force.
		force := true
		var req RelayoutRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
			httpErr(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		} else if req.Force != nil {
			force = *req.Force
		}
		rep, err := s.RunCompaction(force)
		if err != nil {
			httpErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, rep)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpErr(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("/relayout", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		// Empty body = force; a non-empty body must parse — a mangled
		// {"force": false} must not silently become an unconditional swap.
		force := true
		var req RelayoutRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
			httpErr(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		} else if req.Force != nil {
			force = *req.Force
		}
		rep, err := s.Relayout(force)
		if err != nil {
			httpErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, rep)
	})
	mux.Handle("/metrics", s.Metrics().Handler())
	mux.Handle("/debug/traces", s.Traces().Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// serveFilterQuery executes a parsed filter query and writes its scan
// stats. A failure after a successful parse is an execution/storage
// fault on our side, not the client's — it maps to 500.
func serveFilterQuery(w http.ResponseWriter, s *Server, q expr.Query, tr *obs.Trace, wantTrace bool) {
	start := time.Now()
	res, err := s.QueryTraced(q, tr)
	if err != nil {
		httpErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := QueryResponse{
		Query:         res.Query,
		Generation:    res.Generation,
		BlocksScanned: res.BlocksScanned,
		BlocksTotal:   res.BlocksTotal,
		RowsScanned:   res.RowsScanned,
		RowsTotal:     res.RowsTotal,
		RowsMatched:   res.RowsMatched,
		BytesRead:     res.BytesRead,
		SkipRate:      res.SkipRate(),
		SimTimeNS:     int64(res.SimTime),
		WallTimeNS:    int64(time.Since(start)),
	}
	if wantTrace {
		resp.Trace = tr.Snapshot()
	}
	writeJSON(w, resp)
}

// serveRowStmt executes a parsed row-returning statement and writes the
// ordered tuples beside the scan stats. Column names are alias-qualified
// for joins so `SELECT c.x, s.x FROM c JOIN s ...` stays unambiguous.
func serveRowStmt(w http.ResponseWriter, s *Server, stmt expr.RowStmt, tr *obs.Trace, wantTrace bool) {
	start := time.Now()
	res, err := s.SelectRowsTraced(stmt, tr)
	if err != nil {
		httpErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := QueryResponse{
		Query:         res.Query,
		Generation:    res.Generation,
		BlocksScanned: res.BlocksScanned,
		BlocksTotal:   res.BlocksTotal,
		RowsScanned:   res.RowsScanned,
		RowsTotal:     res.RowsTotal,
		RowsMatched:   res.RowsMatched,
		BytesRead:     res.BytesRead,
		SkipRate:      res.SkipRate(),
		SimTimeNS:     int64(res.SimTime),
		WallTimeNS:    int64(time.Since(start)),
		Data:          res.Rows,
		Join:          res.Join,
	}
	schema := s.Schema()
	names := make([]string, len(res.Cols))
	dicts := make([][]string, len(res.Cols))
	hasDict := false
	for i, cr := range res.Cols {
		col := schema.Cols[cr.Col]
		if jq := stmt.Join; jq != nil {
			alias := jq.LeftTable
			if cr.Side == 1 {
				alias = jq.RightTable
			}
			names[i] = alias + "." + col.Name
		} else {
			names[i] = col.Name
		}
		dicts[i] = col.Dict
		if len(col.Dict) > 0 {
			hasDict = true
		}
	}
	resp.Columns = names
	if hasDict {
		resp.DataStrings = make([][]string, len(res.Rows))
		for ri, row := range res.Rows {
			out := make([]string, len(row))
			for j, v := range row {
				if d := dicts[j]; v >= 0 && v < int64(len(d)) {
					out[j] = d[v]
				}
			}
			resp.DataStrings[ri] = out
		}
	}
	if wantTrace {
		resp.Trace = tr.Snapshot()
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
