package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// HTTP/JSON surface of a Server, mounted by cmd/qdserve:
//
//	POST /query    {"sql": "severity >= 8"}  → per-query scan stats
//	GET  /stats                              → Stats snapshot
//	POST /relayout {"force": true|false}     → run one drift-check cycle
//	GET  /healthz                            → 200 ok
//
// /relayout with an empty body forces the cycle (the operator asked for
// it); pass {"force": false} for a gated check identical to a monitor
// tick.

// QueryRequest is the POST /query body.
type QueryRequest struct {
	SQL string `json:"sql"`
}

// QueryResponse reports one served query.
type QueryResponse struct {
	Query         string  `json:"query"`
	Generation    int     `json:"generation"`
	BlocksScanned int     `json:"blocks_scanned"`
	BlocksTotal   int     `json:"blocks_total"`
	RowsScanned   int64   `json:"rows_scanned"`
	RowsMatched   int64   `json:"rows_matched"`
	BytesRead     int64   `json:"bytes_read"`
	SkipRate      float64 `json:"skip_rate"`
	SimTimeNS     int64   `json:"sim_time_ns"`
	WallTimeNS    int64   `json:"wall_time_ns"`
}

// RelayoutRequest is the POST /relayout body. An empty body means force.
type RelayoutRequest struct {
	Force *bool `json:"force"`
}

// Handler mounts the server's HTTP/JSON API.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpErr(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
		if req.SQL == "" {
			httpErr(w, http.StatusBadRequest, `body needs {"sql": "..."}`)
			return
		}
		q, err := s.ParseSQL(req.SQL)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		start := time.Now()
		res, err := s.Query(q)
		if err != nil {
			// Parsing succeeded; a failure here is an execution/storage
			// fault on our side, not the client's.
			httpErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, QueryResponse{
			Query:         res.Query,
			Generation:    res.Generation,
			BlocksScanned: res.BlocksScanned,
			BlocksTotal:   res.BlocksTotal,
			RowsScanned:   res.RowsScanned,
			RowsMatched:   res.RowsMatched,
			BytesRead:     res.BytesRead,
			SkipRate:      res.SkipRate(),
			SimTimeNS:     int64(res.SimTime),
			WallTimeNS:    int64(time.Since(start)),
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpErr(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("/relayout", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		// Empty body = force; a non-empty body must parse — a mangled
		// {"force": false} must not silently become an unconditional swap.
		force := true
		var req RelayoutRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
			httpErr(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		} else if req.Force != nil {
			force = *req.Force
		}
		rep, err := s.Relayout(force)
		if err != nil {
			httpErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, rep)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
