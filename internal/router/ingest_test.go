package router

import (
	"errors"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/workload"
)

func TestIngesterFlushesSegments(t *testing.T) {
	tree, spec := buildTree(t, 3000)
	in, err := NewIngester(tree, t.TempDir(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Ingest(spec.Table); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if in.Buffered() != 0 {
		t.Fatalf("buffered = %d after Flush", in.Buffered())
	}
	total := 0
	for _, s := range in.Segments() {
		if s.Rows == 0 || s.Rows > 100 {
			t.Fatalf("segment with %d rows (threshold 100)", s.Rows)
		}
		total += s.Rows
	}
	if total != spec.Table.N {
		t.Fatalf("segments hold %d rows, want %d", total, spec.Table.N)
	}
}

func TestIngesterLeafContentsMatchRouting(t *testing.T) {
	tree, spec := buildTree(t, 2000)
	want := tree.RouteTable(spec.Table)
	in, err := NewIngester(tree, t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Ingest(spec.Table); err != nil {
		t.Fatal(err)
	}
	// Per-leaf expected counts.
	counts := map[int]int{}
	for _, b := range want {
		counts[b]++
	}
	for leaf, wantN := range counts {
		got, err := in.ReadLeaf(leaf)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != wantN {
			t.Fatalf("leaf %d holds %d rows, want %d", leaf, got.N, wantN)
		}
		// Every read-back row must route back to this leaf.
		row := make([]int64, got.Schema.NumCols())
		for i := 0; i < got.N; i++ {
			row = got.Row(i, row)
			if tree.RouteRow(row).BlockID != leaf {
				t.Fatalf("leaf %d contains a foreign row", leaf)
			}
		}
	}
}

func TestIngesterConcurrent(t *testing.T) {
	tree, spec := buildTree(t, 4000)
	in, err := NewIngester(tree, t.TempDir(), 128)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	chunk := spec.Table.N / 4
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			hi := lo + chunk
			if hi > spec.Table.N {
				hi = spec.Table.N
			}
			sub := spec.Table.Select(rangeInts(lo, hi))
			if err := in.Ingest(sub); err != nil {
				t.Error(err)
			}
		}(w * chunk)
	}
	wg.Wait()
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range in.Segments() {
		total += s.Rows
	}
	if total != spec.Table.N {
		t.Fatalf("concurrent ingest lost rows: %d of %d", total, spec.Table.N)
	}
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestIngesterValidation(t *testing.T) {
	tree, _ := buildTree(t, 100)
	if _, err := NewIngester(tree, t.TempDir(), 0); err == nil {
		t.Error("SegmentRows 0 must error")
	}
}

func TestIngesterSegmentsSurviveReopen(t *testing.T) {
	tree, spec := buildTree(t, 500)
	dir := t.TempDir()
	in, err := NewIngester(tree, dir, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Ingest(spec.Table); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	// Segments are plain blockstore files readable by path.
	segs := in.Segments()
	if len(segs) == 0 {
		t.Fatal("no segments written")
	}
	got, err := in.ReadLeaf(segs[0].Leaf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N == 0 {
		t.Fatal("segment read back empty")
	}
}

// TestIngesterFlushIdempotentAndClose pins the shutdown contract: a
// second Flush with nothing buffered writes no new segments, Close
// flushes and is idempotent, and Ingest after Close fails with ErrClosed
// instead of racing file writes against shutdown.
func TestIngesterFlushIdempotentAndClose(t *testing.T) {
	tree, spec := buildTree(t, 800)
	in, err := NewIngester(tree, t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Ingest(spec.Table); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	n := len(in.Segments())
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(in.Segments()); got != n {
		t.Fatalf("idempotent Flush grew segments %d -> %d", n, got)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal("Close must be idempotent:", err)
	}
	if err := in.Ingest(spec.Table); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after Close = %v, want ErrClosed", err)
	}
	if got := len(in.Segments()); got != n {
		t.Fatalf("close wrote unexpected segments %d -> %d", n, got)
	}
}

func TestFlushAggregatesPerLeafErrors(t *testing.T) {
	// A hand-built 4-leaf tree guarantees several leaves hold buffered rows.
	spec := workload.Fig3(1000, 1)
	tree := core.NewTree(spec.Table.Schema, spec.ACs)
	l, r := tree.Split(tree.Root, core.UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 50}))
	tree.Split(l, core.UnaryCut(expr.Pred{Col: 1, Op: expr.Lt, Literal: 5000}))
	tree.Split(r, core.UnaryCut(expr.Pred{Col: 1, Op: expr.Lt, Literal: 5000}))
	dir := t.TempDir()
	// Segment threshold above any leaf's row count: everything stays
	// buffered until Flush.
	in, err := NewIngester(tree, dir, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Ingest(spec.Table); err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for leaf := range in.buffers {
		if in.buffers[leaf].N > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("test needs >= 2 buffered leaves, have %d", nonEmpty)
	}
	// Yank the directory: every per-leaf segment write now fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	err = in.Flush()
	if err == nil {
		t.Fatal("flush into a removed directory must error")
	}
	// The error must report every failed leaf, not just the first.
	if got := strings.Count(err.Error(), "router: flush leaf"); got != nonEmpty {
		t.Errorf("error reports %d leaves, want %d: %v", got, nonEmpty, err)
	}
}
