// Package router implements the online half of Fig. 1: the data router
// that assigns incoming records to blocks through a learned qd-tree
// (Sec. 3.1 — batched, multi-threaded, with locked per-leaf appends), and
// the query router that rewrites queries with an explicit BID IN (...)
// list (Sec. 3.3). Figure 6 measures both.
package router

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/table"
)

// DataRouter ingests record batches through a qd-tree.
type DataRouter struct {
	Tree *core.Tree
	mu   []sync.Mutex // one per leaf
	// Buffers[leaf] collects routed row indexes ("each leaf represents a
	// set of physical blocks to be persisted").
	Buffers [][]int
}

// NewDataRouter prepares per-leaf buffers and locks.
func NewDataRouter(t *core.Tree) *DataRouter {
	n := len(t.Leaves())
	return &DataRouter{Tree: t, mu: make([]sync.Mutex, n), Buffers: make([][]int, n)}
}

// RouteBatch routes rows [lo, hi) of tbl: it partitions the batch down the
// tree column-at-a-time and appends each leaf's share under that leaf's
// lock. Safe for concurrent use.
func (d *DataRouter) RouteBatch(tbl *table.Table, lo, hi int) {
	rows := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		rows = append(rows, r)
	}
	d.routeRec(d.Tree.Root, tbl, rows)
}

func (d *DataRouter) routeRec(n *core.Node, tbl *table.Table, rows []int) {
	if len(rows) == 0 {
		return
	}
	if n.IsLeaf() {
		d.mu[n.BlockID].Lock()
		d.Buffers[n.BlockID] = append(d.Buffers[n.BlockID], rows...)
		d.mu[n.BlockID].Unlock()
		return
	}
	left, right := d.Tree.PartitionRows(tbl, rows, *n.Cut)
	d.routeRec(n.Left, tbl, left)
	d.routeRec(n.Right, tbl, right)
}

// Routed returns the total routed record count.
func (d *DataRouter) Routed() int {
	n := 0
	for i := range d.Buffers {
		d.mu[i].Lock()
		n += len(d.Buffers[i])
		d.mu[i].Unlock()
	}
	return n
}

// ThroughputResult reports one Fig. 6a measurement.
type ThroughputResult struct {
	Threads   int
	Records   int
	Elapsed   time.Duration
	RecordsPS float64
}

// MeasureThroughput routes the whole table with the given thread count and
// batch size, returning records/second (the Fig. 6a series).
func MeasureThroughput(t *core.Tree, tbl *table.Table, threads, batch int) ThroughputResult {
	if threads < 1 {
		threads = 1
	}
	if batch < 1 {
		batch = 4096
	}
	d := NewDataRouter(t)
	var next int
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				lo := next
				next += batch
				mu.Unlock()
				if lo >= tbl.N {
					return
				}
				hi := lo + batch
				if hi > tbl.N {
					hi = tbl.N
				}
				d.RouteBatch(tbl, lo, hi)
			}
		}()
	}
	wg.Wait()
	el := time.Since(start)
	return ThroughputResult{
		Threads:   threads,
		Records:   tbl.N,
		Elapsed:   el,
		RecordsPS: float64(tbl.N) / el.Seconds(),
	}
}

// QueryRouter intercepts queries and produces pruned BID lists (Sec. 3.3).
type QueryRouter struct {
	Tree *core.Tree
}

// Route returns the sorted list of intersecting block IDs for q.
func (qr *QueryRouter) Route(q expr.Query) []int {
	bids := qr.Tree.QueryBlocks(q)
	sort.Ints(bids)
	return bids
}

// Rewrite augments a SQL string with the explicit BID IN (...) clause that
// modern databases use for partition pruning without engine changes.
func (qr *QueryRouter) Rewrite(sql string, q expr.Query) string {
	bids := qr.Route(q)
	parts := make([]string, len(bids))
	for i, b := range bids {
		parts[i] = fmt.Sprintf("%d", b)
	}
	clause := fmt.Sprintf("BID IN (%s)", strings.Join(parts, ","))
	upper := strings.ToUpper(sql)
	if strings.Contains(upper, "WHERE") {
		return sql + " AND " + clause
	}
	return sql + " WHERE " + clause
}

// Latencies measures per-query routing time (the Fig. 6b CDF): the time
// to check each query against every leaf's semantic description.
func Latencies(t *core.Tree, w []expr.Query) []time.Duration {
	out := make([]time.Duration, len(w))
	qr := &QueryRouter{Tree: t}
	for i, q := range w {
		start := time.Now()
		qr.Route(q)
		out[i] = time.Since(start)
	}
	return out
}

// CDF returns the values sorted ascending together with cumulative
// fractions, for rendering latency / speedup CDFs (Figs. 6b, 7c).
func CDF(values []float64) (sorted []float64, fractions []float64) {
	sorted = append([]float64(nil), values...)
	sort.Float64s(sorted)
	fractions = make([]float64, len(sorted))
	for i := range sorted {
		fractions[i] = float64(i+1) / float64(len(sorted))
	}
	return sorted, fractions
}
