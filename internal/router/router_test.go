package router

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/workload"
)

func buildTree(t *testing.T, n int) (*core.Tree, *workload.Spec) {
	t.Helper()
	spec := workload.Fig3(n, 1)
	cuts := make([]core.Cut, len(spec.Cuts))
	for i, p := range spec.Cuts {
		cuts[i] = core.UnaryCut(p.Pred)
	}
	tree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
		MinSize: 50, Cuts: cuts, Queries: spec.Queries})
	if err != nil {
		t.Fatal(err)
	}
	return tree, spec
}

func TestRouteBatchMatchesRouteTable(t *testing.T) {
	tree, spec := buildTree(t, 3000)
	want := tree.RouteTable(spec.Table)
	d := NewDataRouter(tree)
	d.RouteBatch(spec.Table, 0, spec.Table.N)
	if d.Routed() != spec.Table.N {
		t.Fatalf("routed %d of %d", d.Routed(), spec.Table.N)
	}
	for b, rows := range d.Buffers {
		for _, r := range rows {
			if want[r] != b {
				t.Fatalf("row %d routed to %d, want %d", r, b, want[r])
			}
		}
	}
}

func TestParallelRoutingIsCorrect(t *testing.T) {
	tree, spec := buildTree(t, 5000)
	want := tree.RouteTable(spec.Table)
	for _, threads := range []int{1, 2, 4, 8} {
		res := MeasureThroughput(tree, spec.Table, threads, 256)
		if res.Records != spec.Table.N || res.RecordsPS <= 0 {
			t.Fatalf("threads=%d: bad result %+v", threads, res)
		}
		// Re-route with a fresh router to validate buffers directly.
		d := NewDataRouter(tree)
		done := make(chan struct{}, threads)
		per := (spec.Table.N + threads - 1) / threads
		for w := 0; w < threads; w++ {
			go func(lo int) {
				hi := lo + per
				if hi > spec.Table.N {
					hi = spec.Table.N
				}
				if lo < hi {
					d.RouteBatch(spec.Table, lo, hi)
				}
				done <- struct{}{}
			}(w * per)
		}
		for w := 0; w < threads; w++ {
			<-done
		}
		if d.Routed() != spec.Table.N {
			t.Fatalf("threads=%d: routed %d", threads, d.Routed())
		}
		for b, rows := range d.Buffers {
			for _, r := range rows {
				if want[r] != b {
					t.Fatalf("threads=%d: row %d misrouted", threads, r)
				}
			}
		}
	}
}

func TestQueryRouterMatchesTree(t *testing.T) {
	tree, spec := buildTree(t, 2000)
	bids := tree.RouteTable(spec.Table)
	tree.Freeze(spec.Table, bids)
	qr := &QueryRouter{Tree: tree}
	for _, q := range spec.Queries {
		got := qr.Route(q)
		want := tree.QueryBlocks(q)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("%s: %v vs %v", q.Name, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: %v vs %v", q.Name, got, want)
			}
		}
	}
}

func TestRewriteAddsBIDClause(t *testing.T) {
	tree, spec := buildTree(t, 1000)
	qr := &QueryRouter{Tree: tree}
	out := qr.Rewrite("SELECT * FROM t WHERE disk < 100", spec.Queries[1])
	if !strings.Contains(out, "AND BID IN (") {
		t.Errorf("rewrite = %q", out)
	}
	out2 := qr.Rewrite("SELECT * FROM t", spec.Queries[1])
	if !strings.Contains(out2, "WHERE BID IN (") {
		t.Errorf("rewrite without WHERE = %q", out2)
	}
}

func TestLatenciesShape(t *testing.T) {
	tree, spec := buildTree(t, 1000)
	ls := Latencies(tree, spec.Queries)
	if len(ls) != len(spec.Queries) {
		t.Fatalf("latencies = %d", len(ls))
	}
	for _, l := range ls {
		if l < 0 {
			t.Fatal("negative latency")
		}
	}
}

func TestCDF(t *testing.T) {
	vals, fracs := CDF([]float64{3, 1, 2})
	if vals[0] != 1 || vals[2] != 3 {
		t.Fatalf("sorted = %v", vals)
	}
	if fracs[0] != 1.0/3 || fracs[2] != 1.0 {
		t.Fatalf("fractions = %v", fracs)
	}
}
