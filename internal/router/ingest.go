package router

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/blockstore"
	"repro/internal/core"
	"repro/internal/table"
)

// ErrClosed is returned by Ingest after Close — previously an ingest into
// a closed ingester could race buffer flushes against shutdown and fail
// with confusing file errors.
var ErrClosed = errors.New("router: ingester is closed")

// Ingester is the online ingestion path of Fig. 1: records stream through
// a deployed qd-tree into per-leaf buffers, and full buffers are flushed
// to disk as columnar segments ("large blocks may be physically stored as
// multiple segments on storage", Sec. 3.1). Safe for concurrent Ingest
// calls; each leaf has its own lock.
type Ingester struct {
	Tree *core.Tree
	// SegmentRows is the flush threshold per leaf buffer.
	SegmentRows int
	Dir         string

	mu      []sync.Mutex
	buffers []*table.Table
	segMu   sync.Mutex
	segs    []Segment
	nextSeg int
	closed  atomic.Bool
}

// Segment records one flushed segment file.
type Segment struct {
	Leaf int // block ID the segment belongs to
	Path string
	Rows int
}

// NewIngester prepares an ingester writing segments under dir.
func NewIngester(t *core.Tree, dir string, segmentRows int) (*Ingester, error) {
	if segmentRows < 1 {
		return nil, fmt.Errorf("router: SegmentRows must be >= 1")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	n := len(t.Leaves())
	in := &Ingester{
		Tree:        t,
		SegmentRows: segmentRows,
		Dir:         dir,
		mu:          make([]sync.Mutex, n),
		buffers:     make([]*table.Table, n),
	}
	for i := range in.buffers {
		in.buffers[i] = table.New(t.Schema, segmentRows)
	}
	return in, nil
}

// Ingest routes every row of tbl into leaf buffers, flushing any buffer
// that reaches the segment threshold. After Close it returns ErrClosed.
func (in *Ingester) Ingest(tbl *table.Table) error {
	if in.closed.Load() {
		return ErrClosed
	}
	rows := make([]int, tbl.N)
	for i := range rows {
		rows[i] = i
	}
	return in.ingestRec(in.Tree.Root, tbl, rows)
}

func (in *Ingester) ingestRec(n *core.Node, tbl *table.Table, rows []int) error {
	if len(rows) == 0 {
		return nil
	}
	if n.IsLeaf() {
		return in.appendLeaf(n.BlockID, tbl, rows)
	}
	left, right := in.Tree.PartitionRows(tbl, rows, *n.Cut)
	if err := in.ingestRec(n.Left, tbl, left); err != nil {
		return err
	}
	return in.ingestRec(n.Right, tbl, right)
}

func (in *Ingester) appendLeaf(leaf int, tbl *table.Table, rows []int) error {
	in.mu[leaf].Lock()
	defer in.mu[leaf].Unlock()
	buf := in.buffers[leaf]
	row := make([]int64, tbl.Schema.NumCols())
	for _, r := range rows {
		row = tbl.Row(r, row)
		buf.AppendRow(row)
		if buf.N >= in.SegmentRows {
			if err := in.flushLocked(leaf); err != nil {
				return err
			}
			buf = in.buffers[leaf]
		}
	}
	return nil
}

// flushLocked writes the leaf's buffer as a new segment; caller holds the
// leaf lock.
func (in *Ingester) flushLocked(leaf int) error {
	buf := in.buffers[leaf]
	if buf.N == 0 {
		return nil
	}
	in.segMu.Lock()
	id := in.nextSeg
	in.nextSeg++
	in.segMu.Unlock()
	path := filepath.Join(in.Dir, fmt.Sprintf("leaf_%06d_seg_%06d.qdb", leaf, id))
	if _, err := blockstore.WriteSegment(path, buf, nil); err != nil {
		return err
	}
	in.segMu.Lock()
	in.segs = append(in.segs, Segment{Leaf: leaf, Path: path, Rows: buf.N})
	in.segMu.Unlock()
	in.buffers[leaf] = table.New(in.Tree.Schema, in.SegmentRows)
	return nil
}

// Flush forces all non-empty buffers to disk (call at end of a batch or
// on shutdown). Every leaf is attempted even if an earlier one fails; the
// returned error joins each per-leaf failure, so a partial flush reports
// exactly which leaves kept their buffers. Flush is idempotent — empty
// buffers are skipped, so repeated calls (including after Close, whose
// own flush already emptied everything) write nothing twice.
func (in *Ingester) Flush() error {
	var errs []error
	for leaf := range in.buffers {
		in.mu[leaf].Lock()
		err := in.flushLocked(leaf)
		in.mu[leaf].Unlock()
		if err != nil {
			errs = append(errs, fmt.Errorf("router: flush leaf %d: %w", leaf, err))
		}
	}
	return errors.Join(errs...)
}

// Close flushes every buffer and marks the ingester closed: later Ingest
// calls return ErrClosed instead of appending to dead buffers, and later
// Flush calls are no-ops. Close is idempotent; it returns the final
// flush's error, if any.
func (in *Ingester) Close() error {
	if in.closed.Swap(true) {
		return nil
	}
	return in.Flush()
}

// Segments returns the flushed segment catalog (copy).
func (in *Ingester) Segments() []Segment {
	in.segMu.Lock()
	defer in.segMu.Unlock()
	return append([]Segment(nil), in.segs...)
}

// Buffered returns the number of rows currently held in memory.
func (in *Ingester) Buffered() int {
	n := 0
	for leaf := range in.buffers {
		in.mu[leaf].Lock()
		n += in.buffers[leaf].N
		in.mu[leaf].Unlock()
	}
	return n
}

// ReadLeaf reads back every segment of a leaf as one table — what a scan
// of that block would see.
func (in *Ingester) ReadLeaf(leaf int) (*table.Table, error) {
	out := table.New(in.Tree.Schema, 0)
	for _, seg := range in.Segments() {
		if seg.Leaf != leaf {
			continue
		}
		part, err := blockstore.ReadSegment(seg.Path, in.Tree.Schema)
		if err != nil {
			return nil, err
		}
		out.Concat(part)
	}
	in.mu[leaf].Lock()
	out.Concat(in.buffers[leaf])
	in.mu[leaf].Unlock()
	return out, nil
}
