// Package bottomup implements the state-of-the-art row-grouping baseline
// of Sun et al. (SIGMOD 2014) as described in Sec. 2.2.2 and configured in
// Sec. 7.3: feature selection with subsumption-aware frequency
// discounting, per-row feature bitmap vectors, and bottom-up greedy
// merging of unique vectors until every block reaches the minimum size b.
//
// BU+ — the paper's tuned variant — additionally rejects features whose
// selectivity exceeds a cap (10% in the paper), fixing the failure mode
// where a frequent-but-unselective predicate crowds out useful features.
package bottomup

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/table"
)

// Options configure the Bottom-Up builder.
type Options struct {
	MinSize     int // b, minimum rows per block
	MaxFeatures int // M, feature budget (paper: 15)
	MinFreq     int // selection threshold (default 1)
	// SelectivityCap, when > 0, enables the BU+ tuning: features whose
	// match fraction exceeds the cap are discarded (paper uses 0.10).
	SelectivityCap float64
	// MaxVectors caps the number of unique feature vectors entering the
	// quadratic merge phase; rarer vectors are pre-merged into their
	// nearest (Hamming) frequent neighbor. The original algorithm is
	// quadratic in unique vectors — the paper reports 71–565 minute
	// build times — so a cap keeps the reproduction tractable.
	MaxVectors int
	Cuts       []core.Cut // candidate feature pool (same search space as qd-tree, Sec. 7.3)
	Queries    []expr.Query
}

func (o *Options) defaults() {
	if o.MaxFeatures == 0 {
		o.MaxFeatures = 15
	}
	if o.MinFreq == 0 {
		o.MinFreq = 1
	}
	if o.MaxVectors == 0 {
		o.MaxVectors = 256
	}
}

// Result reports the layout and the selected features.
type Result struct {
	Layout   *cost.Layout
	Features []core.Cut
	// QueriesPerFeature[i] lists workload indexes subsumed by feature i.
	QueriesPerFeature [][]int
}

// predImplies reports whether p1 ⇒ p2 for two predicates on the same
// column (every value satisfying p1 satisfies p2). Conservative: false
// negatives only.
func predImplies(p1, p2 expr.Pred) bool {
	if p1.Col != p2.Col {
		return false
	}
	// Enumerate p1's value set when finite.
	var vals []int64
	switch p1.Op {
	case expr.Eq:
		vals = []int64{p1.Literal}
	case expr.In:
		vals = p1.Set
	}
	if vals != nil {
		for _, v := range vals {
			if !p2.EvalValue(v) {
				return false
			}
		}
		return true
	}
	switch p2.Op {
	case expr.Lt:
		return (p1.Op == expr.Lt && p1.Literal <= p2.Literal) ||
			(p1.Op == expr.Le && p1.Literal < p2.Literal)
	case expr.Le:
		return (p1.Op == expr.Lt && p1.Literal <= p2.Literal+1) ||
			(p1.Op == expr.Le && p1.Literal <= p2.Literal)
	case expr.Gt:
		return (p1.Op == expr.Gt && p1.Literal >= p2.Literal) ||
			(p1.Op == expr.Ge && p1.Literal > p2.Literal)
	case expr.Ge:
		return (p1.Op == expr.Gt && p1.Literal >= p2.Literal-1) ||
			(p1.Op == expr.Ge && p1.Literal >= p2.Literal)
	}
	return false
}

// nodeImplies reports whether query AST node n ⇒ feature f.
func nodeImplies(n *expr.Node, f core.Cut) bool {
	switch n.Kind {
	case expr.KindPred:
		return !f.IsAdv && predImplies(n.Pred, f.Pred)
	case expr.KindAdv:
		return f.IsAdv && f.Adv == n.Adv
	case expr.KindAnd:
		for _, c := range n.Children {
			if nodeImplies(c, f) {
				return true
			}
		}
		return false
	case expr.KindOr:
		for _, c := range n.Children {
			if !nodeImplies(c, f) {
				return false
			}
		}
		return len(n.Children) > 0
	}
	return false
}

// Subsumes reports whether feature f subsumes query q: every row matching
// q matches f, so a block with no f-rows skips q (Sec. 2.2.2).
func Subsumes(f core.Cut, q expr.Query) bool {
	if q.Root == nil {
		return false
	}
	return nodeImplies(q.Root, f)
}

// featureSubsumes reports f1 ⊇ f2 as predicates (f2 implies f1), the
// partial order used for the topological selection sort.
func featureSubsumes(f1, f2 core.Cut) bool {
	if f1.IsAdv || f2.IsAdv {
		return f1.IsAdv && f2.IsAdv && f1.Adv == f2.Adv
	}
	return predImplies(f2.Pred, f1.Pred)
}

// selectivity returns the fraction of rows matching the cut.
func selectivity(tbl *table.Table, acs []expr.AdvCut, c core.Cut) float64 {
	if tbl.N == 0 {
		return 0
	}
	n := 0
	row := make([]int64, tbl.Schema.NumCols())
	for r := 0; r < tbl.N; r++ {
		row = tbl.Row(r, row)
		if c.Eval(row, acs) {
			n++
		}
	}
	return float64(n) / float64(tbl.N)
}

// SelectFeatures runs the paper's feature-selection procedure
// (Sec. 7.3): topological order by subsumption, frequency = #subsumed
// queries, discounting shared queries, optional BU+ selectivity cap.
func SelectFeatures(tbl *table.Table, acs []expr.AdvCut, opt Options) ([]core.Cut, [][]int) {
	opt.defaults()
	type cand struct {
		cut  core.Cut
		qs   []int
		freq int
		dead bool
	}
	var cands []*cand
	for _, c := range opt.Cuts {
		if opt.SelectivityCap > 0 && selectivity(tbl, acs, c) > opt.SelectivityCap {
			continue // BU+ tuning
		}
		var qs []int
		for qi, q := range opt.Queries {
			if Subsumes(c, q) {
				qs = append(qs, qi)
			}
		}
		cands = append(cands, &cand{cut: c, qs: qs, freq: len(qs)})
	}
	var feats []core.Cut
	var featQs [][]int
	for len(feats) < opt.MaxFeatures {
		// Pick the highest-frequency candidate not subsumed by another
		// live candidate (topological order).
		best := -1
		for i, c := range cands {
			if c.dead || c.freq < opt.MinFreq {
				continue
			}
			subsumed := false
			for j, o := range cands {
				if j == i || o.dead {
					continue
				}
				if featureSubsumes(o.cut, c.cut) && !featureSubsumes(c.cut, o.cut) {
					subsumed = true
					break
				}
			}
			if subsumed {
				continue
			}
			if best < 0 || c.freq > cands[best].freq {
				best = i
			}
		}
		if best < 0 {
			// Fall back to any live candidate (cycle of mutual
			// subsumption or only subsumed candidates remain).
			for i, c := range cands {
				if !c.dead && c.freq >= opt.MinFreq && (best < 0 || c.freq > cands[best].freq) {
					best = i
				}
			}
		}
		if best < 0 {
			break
		}
		chosen := cands[best]
		chosen.dead = true
		feats = append(feats, chosen.cut)
		featQs = append(featQs, chosen.qs)
		// Discount candidates sharing subsumed queries with the choice.
		inChosen := make(map[int]bool, len(chosen.qs))
		for _, q := range chosen.qs {
			inChosen[q] = true
		}
		for _, o := range cands {
			if o.dead {
				continue
			}
			shared := 0
			for _, q := range o.qs {
				if inChosen[q] {
					shared++
				}
			}
			o.freq -= shared
		}
	}
	return feats, featQs
}

// vec is a feature bitmap (M ≤ 64 so one word suffices; the paper's M=15).
type vec = uint64

// Build runs the full Bottom-Up pipeline and returns the layout.
func Build(tbl *table.Table, acs []expr.AdvCut, opt Options) (*Result, error) {
	opt.defaults()
	if opt.MinSize < 1 {
		return nil, fmt.Errorf("bottomup: MinSize must be >= 1")
	}
	if opt.MaxFeatures > 64 {
		return nil, fmt.Errorf("bottomup: MaxFeatures %d exceeds 64-bit vectors", opt.MaxFeatures)
	}
	if tbl.N == 0 {
		return nil, fmt.Errorf("bottomup: empty table")
	}
	feats, featQs := SelectFeatures(tbl, acs, opt)
	// With no usable features everything collapses into one block.
	rowVecs := make([]vec, tbl.N)
	for fi, f := range feats {
		if f.IsAdv {
			ac := acs[f.Adv]
			for r := 0; r < tbl.N; r++ {
				if acEval(ac, tbl, r) {
					rowVecs[r] |= 1 << uint(fi)
				}
			}
			continue
		}
		col := tbl.Cols[f.Pred.Col]
		p := f.Pred
		for r := 0; r < tbl.N; r++ {
			if p.EvalValue(col[r]) {
				rowVecs[r] |= 1 << uint(fi)
			}
		}
	}

	// Group rows by unique vector ("convert tuples into unique binary
	// feature vectors and record the weight of each", Sec. 2.2.2).
	groups := make(map[vec]int)
	var uniq []vec
	var weight []int
	for _, v := range rowVecs {
		gi, ok := groups[v]
		if !ok {
			gi = len(uniq)
			groups[v] = gi
			uniq = append(uniq, v)
			weight = append(weight, 0)
		}
		weight[gi]++
	}

	// Pre-merge the rarest vectors into their nearest frequent neighbor
	// when exceeding the tractability cap.
	vecBlock := make([]int, len(uniq)) // unique-vector -> block id (pre-merge identity)
	for i := range vecBlock {
		vecBlock[i] = i
	}
	if len(uniq) > opt.MaxVectors {
		order := make([]int, len(uniq))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return weight[order[a]] > weight[order[b]] })
		keep := order[:opt.MaxVectors]
		keepSet := make(map[int]bool, len(keep))
		for _, k := range keep {
			keepSet[k] = true
		}
		for _, gi := range order[opt.MaxVectors:] {
			bestK, bestD := keep[0], 65
			for _, k := range keep {
				if d := bits.OnesCount64(uniq[gi] ^ uniq[k]); d < bestD {
					bestK, bestD = k, d
				}
			}
			vecBlock[gi] = bestK
		}
		_ = keepSet
	}

	// Blocks: id -> {bitmap, size}; start from surviving vectors.
	type block struct {
		bm    vec
		size  int
		skip  int
		alive bool
	}
	blockOf := make(map[int]int) // unique-vector index -> block index
	var blks []*block
	for gi := range uniq {
		root := vecBlock[gi]
		bi, ok := blockOf[root]
		if !ok {
			bi = len(blks)
			blockOf[root] = bi
			blks = append(blks, &block{alive: true})
		}
		blks[bi].bm |= uniq[gi]
		blks[bi].size += weight[gi]
		blockOf[gi] = bi
	}

	// A query q is skipped by a block iff some subsuming feature's bit is
	// zero, i.e. qMask[q] &^ bm != 0 where qMask is the OR of q's
	// subsuming features. Queries with equal masks are interchangeable,
	// so group them: skipExact(bm) = Σ_m count[m]·[m &^ bm ≠ 0].
	maskCount := make(map[vec]int)
	for qi := range opt.Queries {
		var m vec
		for fi, qs := range featQs {
			for _, q := range qs {
				if q == qi {
					m |= 1 << uint(fi)
					break
				}
			}
		}
		if m != 0 {
			maskCount[m]++
		}
	}
	masks := make([]vec, 0, len(maskCount))
	mcnt := make([]int, 0, len(maskCount))
	for m, c := range maskCount {
		masks = append(masks, m)
		mcnt = append(mcnt, c)
	}
	skipExact := func(bm vec) int {
		n := 0
		for i, m := range masks {
			if m&^bm != 0 {
				n += mcnt[i]
			}
		}
		return n
	}

	// Greedy merging: repeatedly merge the pair with the lowest penalty
	// where at least one block is below b. Each block caches its own skip
	// count; only the union bitmap's count is computed per pair.
	penalty := func(a, b *block) int64 {
		su := int64(skipExact(a.bm | b.bm))
		return int64(a.size)*(int64(a.skip)-su) + int64(b.size)*(int64(b.skip)-su)
	}
	liveCount := func() int {
		n := 0
		for _, b := range blks {
			if b.alive {
				n++
			}
		}
		return n
	}
	for {
		var need []*block
		var needIdx []int
		for i, b := range blks {
			if b.alive && b.size < opt.MinSize {
				need = append(need, b)
				needIdx = append(needIdx, i)
			}
		}
		if len(need) == 0 || liveCount() <= 1 {
			break
		}
		// Find the global min-penalty pair involving a small block.
		bestI, bestJ := -1, -1
		var bestP int64
		for ni, a := range need {
			ai := needIdx[ni]
			for j, b := range blks {
				if !b.alive || j == ai {
					continue
				}
				p := penalty(a, b)
				if bestI < 0 || p < bestP || (p == bestP && j < bestJ) {
					bestI, bestJ, bestP = ai, j, p
				}
			}
		}
		if bestI < 0 {
			break
		}
		// Merge bestJ into bestI.
		blks[bestI].bm |= blks[bestJ].bm
		blks[bestI].size += blks[bestJ].size
		blks[bestI].skip = skipExact(blks[bestI].bm)
		blks[bestJ].alive = false
		for gi, bi := range blockOf {
			if bi == bestJ {
				blockOf[gi] = bestI
			}
		}
	}

	// Compact block ids and emit per-row assignment.
	remap := make(map[int]int)
	for _, bi := range blockOf {
		if _, ok := remap[bi]; !ok && blks[bi].alive {
			remap[bi] = len(remap)
		}
	}
	numBlocks := len(remap)
	if numBlocks == 0 {
		numBlocks = 1
	}
	bids := make([]int, tbl.N)
	finalBM := make([]vec, numBlocks)
	for r, v := range rowVecs {
		bi := blockOf[groups[v]]
		nb := remap[bi]
		bids[r] = nb
		finalBM[nb] = blks[bi].bm
	}

	layout := cost.NewLayout("bottom-up", tbl, bids, numBlocks, acs)
	layout.ExtraSkip = func(blockID int, q expr.Query) bool {
		// Feature-bitmap skipping: q is skipped when a subsuming feature
		// has bit zero in the block.
		for fi, f := range feats {
			if finalBM[blockID]&(1<<uint(fi)) != 0 {
				continue
			}
			if Subsumes(f, q) {
				return true
			}
		}
		return false
	}
	return &Result{Layout: layout, Features: feats, QueriesPerFeature: featQs}, nil
}

func acEval(ac expr.AdvCut, tbl *table.Table, r int) bool {
	l, rr := tbl.Cols[ac.Left][r], tbl.Cols[ac.Right][r]
	switch ac.Op {
	case expr.Lt:
		return l < rr
	case expr.Le:
		return l <= rr
	case expr.Gt:
		return l > rr
	case expr.Ge:
		return l >= rr
	case expr.Eq:
		return l == rr
	}
	return false
}
