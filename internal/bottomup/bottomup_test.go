package bottomup

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/table"
	"repro/internal/workload"
)

func toCuts(ps []workload.Pred2Cut) []core.Cut {
	out := make([]core.Cut, len(ps))
	for i, p := range ps {
		if p.IsAdv {
			out[i] = core.AdvancedCut(p.Adv)
		} else {
			out[i] = core.UnaryCut(p.Pred)
		}
	}
	return out
}

func TestPredImplies(t *testing.T) {
	cases := []struct {
		p1, p2 expr.Pred
		want   bool
	}{
		{expr.Pred{Col: 0, Op: expr.Lt, Literal: 5}, expr.Pred{Col: 0, Op: expr.Lt, Literal: 10}, true},
		{expr.Pred{Col: 0, Op: expr.Lt, Literal: 10}, expr.Pred{Col: 0, Op: expr.Lt, Literal: 5}, false},
		{expr.Pred{Col: 0, Op: expr.Lt, Literal: 10}, expr.Pred{Col: 1, Op: expr.Lt, Literal: 10}, false},
		{expr.Pred{Col: 0, Op: expr.Eq, Literal: 3}, expr.Pred{Col: 0, Op: expr.Lt, Literal: 10}, true},
		{expr.Pred{Col: 0, Op: expr.Eq, Literal: 30}, expr.Pred{Col: 0, Op: expr.Lt, Literal: 10}, false},
		{expr.NewIn(0, []int64{1, 2}), expr.NewIn(0, []int64{1, 2, 3}), true},
		{expr.NewIn(0, []int64{1, 4}), expr.NewIn(0, []int64{1, 2, 3}), false},
		{expr.Pred{Col: 0, Op: expr.Le, Literal: 9}, expr.Pred{Col: 0, Op: expr.Lt, Literal: 10}, true},
		{expr.Pred{Col: 0, Op: expr.Gt, Literal: 10}, expr.Pred{Col: 0, Op: expr.Ge, Literal: 10}, true},
		{expr.Pred{Col: 0, Op: expr.Ge, Literal: 10}, expr.Pred{Col: 0, Op: expr.Gt, Literal: 10}, false},
		{expr.Pred{Col: 0, Op: expr.Ge, Literal: 11}, expr.Pred{Col: 0, Op: expr.Gt, Literal: 10}, true},
		{expr.Pred{Col: 0, Op: expr.Eq, Literal: 7}, expr.Pred{Col: 0, Op: expr.Eq, Literal: 7}, true},
	}
	for _, c := range cases {
		if got := predImplies(c.p1, c.p2); got != c.want {
			t.Errorf("%v => %v: got %v, want %v", c.p1, c.p2, got, c.want)
		}
	}
}

func TestSubsumes(t *testing.T) {
	// A conjunctive query is subsumed by any of its conjuncts' relaxations.
	f := core.UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 10})
	q := expr.AndQ("q",
		expr.Pred{Col: 0, Op: expr.Lt, Literal: 5},
		expr.Pred{Col: 1, Op: expr.Eq, Literal: 3})
	if !Subsumes(f, q) {
		t.Error("conjunct implies feature: must subsume")
	}
	// An OR query is subsumed only if every disjunct implies the feature.
	qOr := expr.Query{Root: expr.Or(
		expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 5}),
		expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 50}))}
	if Subsumes(f, qOr) {
		t.Error("one disjunct escapes the feature: must not subsume")
	}
	qOr2 := expr.Query{Root: expr.Or(
		expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 5}),
		expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 8}))}
	if !Subsumes(f, qOr2) {
		t.Error("both disjuncts imply the feature: must subsume")
	}
	// Advanced-cut features subsume queries referencing them.
	fa := core.AdvancedCut(1)
	qa := expr.Query{Root: expr.And(expr.NewAdv(1), expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 3}))}
	if !Subsumes(fa, qa) {
		t.Error("AC feature must subsume AC query")
	}
	if Subsumes(fa, expr.Query{Root: expr.NewAdv(0)}) {
		t.Error("different AC must not subsume")
	}
	if Subsumes(f, expr.Query{}) {
		t.Error("nil-root query must not be subsumed")
	}
}

// semanticImpliesCheck: property test that predImplies is sound — if it
// claims implication, no value may violate it.
func TestPredImpliesSound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ops := []expr.Op{expr.Lt, expr.Le, expr.Gt, expr.Ge, expr.Eq}
	for trial := 0; trial < 2000; trial++ {
		p1 := expr.Pred{Col: 0, Op: ops[rng.Intn(len(ops))], Literal: int64(rng.Intn(20))}
		p2 := expr.Pred{Col: 0, Op: ops[rng.Intn(len(ops))], Literal: int64(rng.Intn(20))}
		if !predImplies(p1, p2) {
			continue
		}
		for v := int64(-5); v < 25; v++ {
			if p1.EvalValue(v) && !p2.EvalValue(v) {
				t.Fatalf("%v claimed to imply %v but %d violates", p1, p2, v)
			}
		}
	}
}

func TestSelectFeaturesBUPlusFiltersUnselective(t *testing.T) {
	// Reproduce the Sec. 7.5 failure mode: an unselective feature with
	// huge frequency must be dropped by BU+ but chosen by untuned BU.
	schema := table.MustSchema([]table.Column{
		{Name: "wide", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "rare", Kind: table.Categorical, Dom: 100},
	})
	rng := rand.New(rand.NewSource(1))
	tbl := table.New(schema, 5000)
	for i := 0; i < 5000; i++ {
		tbl.AppendRow([]int64{int64(rng.Intn(100)), int64(rng.Intn(100))})
	}
	// Every query includes the unselective wide<90 (90% of rows) plus a
	// selective rare=k.
	var queries []expr.Query
	var cuts []core.Cut
	cuts = append(cuts, core.UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 90}))
	for k := 0; k < 20; k++ {
		queries = append(queries, expr.AndQ("q",
			expr.Pred{Col: 0, Op: expr.Lt, Literal: 90},
			expr.Pred{Col: 1, Op: expr.Eq, Literal: int64(k)}))
		cuts = append(cuts, core.UnaryCut(expr.Pred{Col: 1, Op: expr.Eq, Literal: int64(k)}))
	}
	plain, _ := SelectFeatures(tbl, nil, Options{MinSize: 10, Cuts: cuts, Queries: queries, MaxFeatures: 5})
	foundWide := false
	for _, f := range plain {
		if !f.IsAdv && f.Pred.Col == 0 {
			foundWide = true
		}
	}
	if !foundWide {
		t.Error("untuned BU should pick the frequent unselective feature first")
	}
	tuned, _ := SelectFeatures(tbl, nil, Options{MinSize: 10, Cuts: cuts, Queries: queries, MaxFeatures: 5, SelectivityCap: 0.10})
	for _, f := range tuned {
		if !f.IsAdv && f.Pred.Col == 0 {
			t.Error("BU+ must reject the 90-percent-selectivity feature")
		}
	}
}

func TestBuildBlocksMeetMinSize(t *testing.T) {
	spec := workload.Fig3(8000, 2)
	res, err := Build(spec.Table, spec.ACs, Options{
		MinSize: 400,
		Cuts:    toCuts(spec.Cuts),
		Queries: spec.Queries,
	})
	if err != nil {
		t.Fatal(err)
	}
	for b, n := range res.Layout.Counts {
		if n > 0 && n < 400 && res.Layout.NumBlocks() > 1 {
			t.Errorf("block %d has %d rows < 400", b, n)
		}
	}
	total := 0
	for _, n := range res.Layout.Counts {
		total += n
	}
	if total != spec.Table.N {
		t.Fatalf("counts sum %d != %d", total, spec.Table.N)
	}
}

func TestBuildSkippingIsSound(t *testing.T) {
	// Bitmap-based ExtraSkip must never skip a block containing a match.
	spec := workload.Fig3(6000, 3)
	res, err := Build(spec.Table, spec.ACs, Options{
		MinSize: 100,
		Cuts:    toCuts(spec.Cuts),
		Queries: spec.Queries,
	})
	if err != nil {
		t.Fatal(err)
	}
	row := make([]int64, spec.Table.Schema.NumCols())
	for _, q := range spec.Queries {
		scanned := make(map[int]bool)
		for _, b := range res.Layout.BlocksFor(q) {
			scanned[b] = true
		}
		for r := 0; r < spec.Table.N; r++ {
			row = spec.Table.Row(r, row)
			if q.Eval(row, spec.ACs) && !scanned[res.Layout.BIDs[r]] {
				t.Fatalf("%s: matching row %d in skipped block", q.Name, r)
			}
		}
	}
}

func TestBuildBeatsRandomOnSelectiveWorkload(t *testing.T) {
	// Sanity: Bottom-Up must beat a random shuffle on a feature-friendly
	// workload (the Sec. 7 orderings: Baseline > Bottom-Up > qd-tree).
	rng := rand.New(rand.NewSource(4))
	schema := table.MustSchema([]table.Column{
		{Name: "k", Kind: table.Categorical, Dom: 16},
		{Name: "v", Kind: table.Numeric, Min: 0, Max: 999},
	})
	tbl := table.New(schema, 10000)
	for i := 0; i < 10000; i++ {
		tbl.AppendRow([]int64{int64(rng.Intn(16)), int64(rng.Intn(1000))})
	}
	var queries []expr.Query
	var cuts []core.Cut
	for k := 0; k < 16; k++ {
		queries = append(queries, expr.AndQ("q", expr.Pred{Col: 0, Op: expr.Eq, Literal: int64(k)}))
		cuts = append(cuts, core.UnaryCut(expr.Pred{Col: 0, Op: expr.Eq, Literal: int64(k)}))
	}
	res, err := Build(tbl, nil, Options{MinSize: 500, Cuts: cuts, Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	frac := res.Layout.AccessedFraction(queries)
	if frac > 0.5 {
		t.Errorf("bottom-up fraction %.3f; should be far below full scan on 16-way point workload", frac)
	}
}

func TestBuildValidation(t *testing.T) {
	spec := workload.Fig3(100, 5)
	if _, err := Build(spec.Table, nil, Options{MinSize: 0, Cuts: toCuts(spec.Cuts)}); err == nil {
		t.Error("MinSize 0 must error")
	}
	if _, err := Build(spec.Table, nil, Options{MinSize: 1, MaxFeatures: 70, Cuts: toCuts(spec.Cuts)}); err == nil {
		t.Error("MaxFeatures > 64 must error")
	}
	empty := table.New(spec.Table.Schema, 0)
	if _, err := Build(empty, nil, Options{MinSize: 1, Cuts: toCuts(spec.Cuts)}); err == nil {
		t.Error("empty table must error")
	}
}

func TestBuildNoFeaturesFallsBackToOneBlock(t *testing.T) {
	// With a selectivity cap of ~0, all features are rejected and the
	// result must be a single block (the untuned-BU 100% row of Table 2).
	spec := workload.Fig3(2000, 6)
	res, err := Build(spec.Table, spec.ACs, Options{
		MinSize:        100,
		Cuts:           toCuts(spec.Cuts),
		Queries:        spec.Queries,
		SelectivityCap: 1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Layout.NumBlocks() != 1 {
		t.Errorf("blocks = %d, want 1", res.Layout.NumBlocks())
	}
	if f := res.Layout.AccessedFraction(spec.Queries); f != 1.0 {
		t.Errorf("fraction = %.3f, want 1.0", f)
	}
}

func TestMaxVectorsPreMerge(t *testing.T) {
	// Force the pre-merge path with a tiny vector cap; layout must stay
	// sound and complete.
	spec := workload.Fig3(4000, 7)
	res, err := Build(spec.Table, spec.ACs, Options{
		MinSize:    200,
		Cuts:       toCuts(spec.Cuts),
		Queries:    spec.Queries,
		MaxVectors: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.Layout.Counts {
		total += n
	}
	if total != spec.Table.N {
		t.Fatalf("pre-merge lost rows: %d != %d", total, spec.Table.N)
	}
}

func TestLayoutComparableToGreedy(t *testing.T) {
	// Table 2 ordering on the Fig3 micro: greedy qd-tree <= bottom-up
	// accessed fraction (qd-tree should never lose on its home turf).
	spec := workload.Fig3(8000, 8)
	res, err := Build(spec.Table, spec.ACs, Options{
		MinSize: 80,
		Cuts:    toCuts(spec.Cuts),
		Queries: spec.Queries,
	})
	if err != nil {
		t.Fatal(err)
	}
	buFrac := res.Layout.AccessedFraction(spec.Queries)
	if buFrac <= 0 || buFrac > 1 {
		t.Fatalf("fraction out of range: %f", buFrac)
	}
	if buFrac < cost.Selectivity(spec.Table, spec.Queries, spec.ACs) {
		t.Error("fraction below selectivity lower bound")
	}
}
